package mao_test

import (
	"strings"
	"testing"

	"mao"
)

const facadeSrc = `
	.text
	.type f,@function
f:
	movl $5, %eax
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	addl $1, %eax
.Lz:
	ret
	.size f,.-f
`

func TestFacadeParseAndPipeline(t *testing.T) {
	u, err := mao.ParseString("f.s", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := mao.RunPipeline(u, "REDTEST")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Get("REDTEST", "removed") != 1 {
		t.Errorf("stats:\n%s", stats)
	}
	if strings.Contains(u.String(), "testl") {
		t.Error("redundant test survived the pipeline")
	}
}

func TestFacadeRelaxAndMeasure(t *testing.T) {
	u, err := mao.ParseString("f.s", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := mao.Relax(u)
	if err != nil {
		t.Fatal(err)
	}
	if layout.SectionEnd[".text"] == 0 {
		t.Error("empty layout")
	}
	for _, model := range []*mao.CPUModel{mao.Core2(), mao.Opteron(), mao.P4()} {
		c, err := mao.Measure(u, "f", model, 0)
		if err != nil {
			t.Fatalf("%s: %v", model.Name, err)
		}
		if c.Cycles == 0 || c.Insts == 0 {
			t.Errorf("%s: empty counters", model.Name)
		}
	}
}

func TestFacadePassCatalog(t *testing.T) {
	names := mao.Passes()
	want := []string{"REDZEXT", "REDTEST", "REDMOV", "ADDADD", "LOOP16", "LSD",
		"BRALIGN", "NOPIN", "NOPKILL", "PREFNTA", "INSTRUMENT", "SIMADDR",
		"SCHED", "DCE", "CONSTFOLD", "LFIND", "ASM"}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("pass %s missing from catalog %v", w, names)
		}
	}
}

func TestFacadeBadPipeline(t *testing.T) {
	u, err := mao.ParseString("f.s", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mao.RunPipeline(u, "NOSUCH"); err == nil {
		t.Error("unknown pass accepted")
	}
}
