package mao_test

import (
	"strings"
	"testing"

	"mao"
	"mao/internal/pass"
	"mao/internal/verify"
	"mao/internal/x86/decode"
)

// differentialSpecs are the pass pipelines the parse-side/decode-side
// differential runs under. Three passes are deliberately absent, each
// for a structural reason rather than a bug:
//
//   - DCE and NOPKILL: the decoded IR represents inter-block padding
//     as concrete NOP instructions in unlabeled (hence unreachable)
//     positions, which those passes legitimately delete — the
//     parse-side unit keeps the padding as alignment directives
//     instead, so byte identity cannot hold by design.
//   - SCHED: the parse side retains every source label, including
//     unreferenced ones, and labels are scheduling barriers; the
//     decoded unit has labels only at branch targets, so SCHED finds
//     different (equally valid) instruction orders.
//
// TestDecodedExcludedPasses pins those three to "certified sound,
// never grows the image" on decoded units instead.
var differentialSpecs = []string{
	"",
	"REDTEST",
	"REDMOV",
	"REDZEXT",
	"ADDADD",
	"CONSTFOLD",
	"REDZEXT:REDTEST:REDMOV:ADDADD:CONSTFOLD",
}

// selfContained reports whether every direct branch in the unit
// targets a label defined in the unit. A fixture with an unresolved
// target (e.g. cmd/mao/testdata/check/bad.s's jne .Lmissing) cannot
// hold byte identity: the parse side emits the forced long form with a
// zero placeholder, while the decoded unit sees a concrete nearby
// target and legitimately relaxes the branch short.
func selfContained(u *mao.Unit) bool {
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if sym, ok := n.Inst.BranchTarget(); ok && u.FindLabel(sym) == nil {
				return false
			}
		}
	}
	return true
}

// runSpec parses/optimizes the unit under spec and returns the .text
// image. hook (optional) certifies every invocation.
func runSpec(t *testing.T, u *mao.Unit, spec string, workers int, hook pass.Hook) []byte {
	t.Helper()
	mgr, err := pass.NewManager(spec)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Workers = workers
	mgr.Hook = hook
	if _, err := mgr.Run(u); err != nil {
		t.Fatal(err)
	}
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	layout, err := mao.Relax(u)
	if err != nil {
		t.Fatal(err)
	}
	return layout.Image(u, ".text")
}

// TestDecodeDifferential pins the binary front end against the parser
// front end: for every corpus fixture and every pass spec, the
// parse-side pipeline's .text image, decoded back to IR and pushed
// through the same spec again, must re-emit the identical bytes — at
// workers 1 and 8 — and MAOVERIFY must certify every decoded-pipeline
// invocation clean. (Specs are first checked to be idempotent on the
// parse side; a spec that keeps transforming its own output cannot be
// compared this way and would be a bug of its own.)
func TestDecodeDifferential(t *testing.T) {
	for _, path := range roundtripSources(t) {
		for _, spec := range differentialSpecs {
			name := path + "/" + spec
			if spec == "" {
				name = path + "/none"
			}
			t.Run(name, func(t *testing.T) {
				u1, err := mao.ParseFile(path)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if !selfContained(u1) {
					t.Skip("fixture branches to symbols it does not define")
				}
				ref := runSpec(t, u1, spec, 1, nil)
				if len(ref) == 0 {
					t.Skip("fixture has no .text bytes")
				}

				// Idempotence guard: the spec applied to its own output
				// must be a fixpoint, or the decode-side comparison
				// below compares apples to oranges.
				again := runSpec(t, u1, spec, 1, nil)
				if string(again) != string(ref) {
					t.Fatalf("spec %q is not idempotent on the parse side", spec)
				}

				for _, workers := range []int{1, 8} {
					ud, err := mao.DecodeBinary(path+".bin", ref, 0, nil)
					if err != nil {
						t.Fatalf("decode of parse-side image: %v", err)
					}
					cert := &verify.Certifier{}
					out := runSpec(t, ud, spec, workers, cert)
					if string(out) != string(ref) {
						t.Errorf("workers=%d: decoded pipeline image differs (%d vs %d bytes)",
							workers, len(out), len(ref))
					}
					for _, v := range cert.Violations {
						t.Errorf("workers=%d: MAOVERIFY violation: %v", workers, v)
					}
				}
			})
		}
	}
}

// TestDecodedExcludedPasses: the passes excluded from the byte-identity
// differential still run soundly on decoded units — NOPKILL/DCE delete
// the lifted padding NOPs, SCHED reorders within the decoded blocks,
// MAOVERIFY certifies every invocation, and the re-encoded image never
// grows.
func TestDecodedExcludedPasses(t *testing.T) {
	for _, path := range roundtripSources(t) {
		t.Run(path, func(t *testing.T) {
			u1, err := mao.ParseFile(path)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ref := runSpec(t, u1, "", 1, nil)
			if len(ref) == 0 {
				t.Skip("fixture has no .text bytes")
			}
			ud, err := mao.DecodeBinary(path+".bin", ref, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			cert := &verify.Certifier{}
			out := runSpec(t, ud, "NOPKILL:DCE:SCHED", 1, cert)
			if len(out) > len(ref) {
				t.Errorf("NOPKILL:DCE:SCHED grew the image: %d -> %d bytes", len(ref), len(out))
			}
			for _, v := range cert.Violations {
				t.Errorf("MAOVERIFY violation: %v", v)
			}
		})
	}
}

// TestDecodeProvenanceSurvivesPipeline: nodes untouched by passes keep
// their MAODEC[offset] byte-range provenance through a full pipeline,
// so `mao -binary --explain` can attribute optimized instructions to
// input byte ranges.
func TestDecodeProvenanceSurvivesPipeline(t *testing.T) {
	u1, err := mao.ParseFile("internal/corpus/testdata/wl_164_gzip.s")
	if err != nil {
		t.Fatal(err)
	}
	ref := runSpec(t, u1, "", 1, nil)
	ud, err := mao.DecodeBinary("gzip.bin", ref, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mao.RunPipelineParallel(ud, "REDTEST:REDMOV", mao.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lin := range mao.Explain(ud) {
		if strings.HasPrefix(lin.Origin, decode.LiftPass+"[") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no instruction retained MAODEC provenance after the pipeline")
	}
}
