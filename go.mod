module mao

go 1.23
