package mao_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mao"
)

// TestConcurrentPipelines runs RunPipelineParallel from many goroutines
// over distinct units simultaneously — the usage pattern of the maod
// service worker pool. Under -race this pins down that the pass
// registry, the shared encoding cache, and per-run statistics carry no
// cross-invocation state: every goroutine must see exactly the output
// and stats a solo run produces.
func TestConcurrentPipelines(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("internal", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	specs := []string{"REDTEST:REDMOV", "DCE:CONSTFOLD", "SCHED", "LOOP16"}

	type combo struct{ fixture, spec string }
	var combos []combo
	sources := map[string]string{}
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		sources[fx] = string(b)
		for _, spec := range specs {
			combos = append(combos, combo{fx, spec})
		}
	}

	// Reference outputs from sequential solo runs.
	wantAsm := map[combo]string{}
	wantStats := map[combo]string{}
	for _, c := range combos {
		u, err := mao.ParseString(c.fixture, sources[c.fixture])
		if err != nil {
			t.Fatal(err)
		}
		st, err := mao.RunPipeline(u, c.spec)
		if err != nil {
			t.Fatalf("%s %s: %v", c.fixture, c.spec, err)
		}
		wantAsm[c] = u.String()
		wantStats[c] = st.String()
	}

	// Hammer: every combination three times over, all goroutines
	// sharing one encoding cache, with per-pipeline parallelism on top.
	shared := mao.NewCache()
	const replicas = 3
	var wg sync.WaitGroup
	errs := make(chan string, len(combos)*replicas)
	for rep := 0; rep < replicas; rep++ {
		for _, c := range combos {
			wg.Add(1)
			go func(c combo, rep int) {
				defer wg.Done()
				u, err := mao.ParseString(c.fixture, sources[c.fixture])
				if err != nil {
					errs <- fmt.Sprintf("%v %s parse: %v", c, "", err)
					return
				}
				opts := mao.Options{Workers: 1 + rep} // vary worker counts
				if rep%2 == 0 {
					opts.Cache = shared
				}
				st, err := mao.RunPipelineParallel(u, c.spec, opts)
				if err != nil {
					errs <- fmt.Sprintf("%v rep=%d: %v", c, rep, err)
					return
				}
				if got := u.String(); got != wantAsm[c] {
					errs <- fmt.Sprintf("%v rep=%d: output differs from solo run", c, rep)
				}
				// RELAXCACHE counters vary with cache sharing; every
				// real pass counter must match the solo run exactly.
				got, want := st.String(), wantStats[c]
				if stripRelaxcache(got) != stripRelaxcache(want) {
					errs <- fmt.Sprintf("%v rep=%d: stats differ from solo run:\n got %q\nwant %q",
						c, rep, got, want)
				}
			}(c, rep)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// stripRelaxcache drops RELAXCACHE.* lines from a stats rendering: hit
// and miss counts legitimately depend on what other goroutines already
// encoded into a shared cache.
func stripRelaxcache(stats string) string {
	var keep []string
	for _, line := range strings.Split(stats, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "RELAXCACHE") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}
