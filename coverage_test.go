package mao_test

// Cross-layer coverage audit: for every instruction form the parser
// accepts, the side-effect tables, the encoder and (where a safe
// context exists) the executor must all handle it. The audit catches
// the classic drift failure of multi-table designs — an opcode added
// to one layer but not the others.

import (
	"fmt"
	"strings"
	"testing"

	"mao"
	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/uarch"
	"mao/internal/uarch/sim"
	"mao/internal/x86/encode"
	"mao/internal/x86/sidefx"
)

// coverage lists one canonical instance of every supported instruction
// form. run=false marks forms that cannot execute standalone (control
// transfers out, privileged stops).
var coverage = []struct {
	src string
	run bool
}{
	{"movb $1, %al", true}, {"movw $2, %cx", true}, {"movl $3, %edx", true},
	{"movq $4, %rsi", true}, {"movabsq $12345678901234, %rdi", true},
	{"movl %eax, %ebx", true}, {"movq (%rsp), %rax", true},
	{"movl %eax, -8(%rsp)", true},
	{"movzbl %al, %ebx", true}, {"movzbw %al, %bx", true},
	{"movzwl %cx, %edx", true}, {"movzbq %al, %rbx", true},
	{"movzwq %cx, %rdx", true},
	{"movsbl %al, %ebx", true}, {"movsbw %al, %bx", true},
	{"movswl %cx, %edx", true}, {"movsbq %al, %rbx", true},
	{"movswq %cx, %rdx", true}, {"movslq %edx, %rcx", true},
	{"leaq 4(%rax,%rbx,2), %rcx", true}, {"leal 4(%rdx), %esi", true},
	// Stack operations execute as balanced pairs (the audited form is
	// the first instruction of each entry).
	{"pushq %rbx\n\tpopq %rbx", true},
	{"popq %rcx\n\tsubq $8, %rsp", false}, // audited statically; balance via run=false
	{"pushq $42\n\tpopq %rcx", true},
	{"pushq (%rsp)\n\tpopq %rdx", true},
	{"pushq %rax\n\tpopq -16(%rsp)", true},
	{"xchgq %rax, %rbx", true}, {"xchgl %ecx, %edx", true},
	{"xchgb %al, %bl", true}, {"xchgl %esi, -4(%rsp)", true},
	{"cmovel %eax, %ebx", true}, {"cmovneq %rcx, %rdx", true},
	{"addb $1, %al", true}, {"addw $2, %cx", true}, {"addl $3, %edx", true},
	{"addq $4, %rsi", true}, {"addl %eax, %ebx", true},
	{"addq (%rsp), %rax", true}, {"addl %eax, -8(%rsp)", true},
	{"subl $5, %edi", true}, {"adcl $0, %eax", true}, {"sbbl $0, %ebx", true},
	{"cmpl $7, %ecx", true}, {"cmpq %rax, %rbx", true},
	{"incl %eax", true}, {"incq -8(%rsp)", true},
	{"decl %ebx", true}, {"negl %ecx", true}, {"notq %rdx", true},
	{"imulq %rbx", true}, {"imull %esi, %edi", true},
	{"imulq $9, %rax, %rbx", true}, {"mull %ecx", true},
	{"idivl %ecx", false /* needs dividend setup */}, {"divq %rbx", false},
	{"andl $15, %eax", true}, {"orl %ebx, %ecx", true},
	{"xorq %rdx, %rdx", true}, {"testl %eax, %eax", true},
	{"testb $1, %al", true},
	{"shlb $1, %al", true}, {"shlw $2, %cx", true}, {"shll $3, %edx", true},
	{"shlq $4, %rsi", true}, {"shrl %cl, %ebx", true},
	{"sarl %edx", true}, {"roll $5, %eax", true}, {"rorq $6, %rbx", true},
	{"jmp .Lcov", false}, {"je .Lcov", false}, {"call .Lcov", false},
	{"ret", false}, {"leave", false},
	{"jmp *%rax", false}, {"call *(%rsp)", false},
	{"sete %al", true}, {"setg %bl", true}, {"setbe -1(%rsp)", true},
	{"cltq", true}, {"cltd", true}, {"cqto", true}, {"cwtl", true},
	{"nop", true}, {"nopw", true}, {"nopl (%rax)", false /* operand unread but needs rax mapped? no — nop never reads */},
	{"ud2", false}, {"hlt", false}, {"pause", true},
	{"prefetchnta (%rsp)", true}, {"prefetcht0 (%rsp)", true},
	{"prefetcht1 (%rsp)", true}, {"prefetcht2 (%rsp)", true},
	{"movss %xmm0, %xmm1", true}, {"movss (%rsp), %xmm2", true},
	{"movss %xmm3, -8(%rsp)", true},
	{"movsd %xmm0, %xmm1", true}, {"movsd (%rsp), %xmm2", true},
	{"movaps %xmm1, %xmm2", true}, {"movups (%rsp), %xmm3", true},
	{"movdqa %xmm4, %xmm5", true}, {"movdqu %xmm6, -16(%rsp)", true},
	{"movd %eax, %xmm0", true}, {"movd %xmm1, %ebx", true},
	{"movq %rax, %xmm0", true}, {"movq %xmm0, %rbx", true},
	{"movq %xmm1, %xmm2", true},
	{"addss %xmm0, %xmm1", true}, {"addsd %xmm2, %xmm3", true},
	{"subss %xmm0, %xmm1", true}, {"subsd %xmm2, %xmm3", true},
	{"mulss %xmm0, %xmm1", true}, {"mulsd %xmm2, %xmm3", true},
	{"divss %xmm0, %xmm1", false /* operands are zero */},
	{"divsd %xmm2, %xmm3", false},
	{"sqrtss %xmm0, %xmm1", true}, {"sqrtsd %xmm2, %xmm3", true},
	{"xorps %xmm0, %xmm0", true}, {"xorpd %xmm1, %xmm1", true},
	{"andps %xmm2, %xmm3", true}, {"andpd %xmm4, %xmm5", true},
	{"pxor %xmm6, %xmm6", true},
	{"ucomiss %xmm0, %xmm1", true}, {"ucomisd %xmm2, %xmm3", true},
	{"comiss %xmm4, %xmm5", true}, {"comisd %xmm6, %xmm7", true},
	{"cvtsi2ssl %eax, %xmm0", true}, {"cvtsi2sdq %rbx, %xmm1", true},
	{"cvttss2si %xmm0, %ecx", true}, {"cvttsd2si %xmm1, %rdx", true},
	{"cvtss2sd %xmm0, %xmm1", true}, {"cvtsd2ss %xmm2, %xmm3", true},
	{"lock addl $1, -4(%rsp)", true}, {"lock xchgq %rax, (%rsp)", true},
}

func parseOne(t *testing.T, src string) *ir.Node {
	t.Helper()
	u, err := asm.ParseString("cov.s", src+"\n.Lcov:\n")
	if err != nil {
		t.Fatalf("%q does not parse: %v", src, err)
	}
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			return n
		}
	}
	t.Fatalf("%q parsed to nothing", src)
	return nil
}

func TestOpcodeCoverageSideEffects(t *testing.T) {
	for _, c := range coverage {
		n := parseOne(t, c.src)
		if !sidefx.Known(n.Inst) {
			t.Errorf("side-effect tables do not cover %q", c.src)
		}
	}
}

func TestOpcodeCoverageEncoder(t *testing.T) {
	for _, c := range coverage {
		n := parseOne(t, c.src)
		ctx := &encode.Ctx{SymAddr: func(string) (int64, bool) { return 64, true }}
		b, err := encode.Encode(n.Inst, ctx)
		if err != nil {
			t.Errorf("encoder does not cover %q: %v", c.src, err)
			continue
		}
		if len(b) == 0 || len(b) > 15 {
			t.Errorf("%q encoded to %d bytes", c.src, len(b))
		}
	}
}

func TestOpcodeCoverageExecutor(t *testing.T) {
	for _, c := range coverage {
		if !c.run {
			continue
		}
		src := fmt.Sprintf(`
	.text
	.type f,@function
f:
	subq $64, %%rsp
	%s
	addq $64, %%rsp
	ret
	.size f,.-f
`, c.src)
		u, err := asm.ParseString("cov.s", src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if _, err := mao.Measure(u, "f", mao.Core2(), 10000); err != nil {
			t.Errorf("executor does not cover %q: %v", c.src, err)
		}
	}
}

// TestOpcodeCoverageSimulator: every covered instruction must have a
// sane execution class under both models.
func TestOpcodeCoverageSimulator(t *testing.T) {
	for _, model := range []*uarch.CPUModel{uarch.Core2(), uarch.Opteron(), uarch.P4()} {
		for _, c := range coverage {
			n := parseOne(t, c.src)
			cl := model.Class(n.Inst)
			if cl.Latency < 1 || cl.Latency > 64 {
				t.Errorf("%s: %q latency %d out of range", model.Name, c.src, cl.Latency)
			}
			if cl.Ports == 0 {
				t.Errorf("%s: %q has no execution ports", model.Name, c.src)
			}
		}
	}
}

// TestCoverageListItselfIsCanonical: each entry must round-trip
// through print/parse unchanged after first normalization, keeping the
// audit list meaningful.
func TestCoverageListItselfIsCanonical(t *testing.T) {
	for _, c := range coverage {
		n := parseOne(t, c.src)
		text := n.Inst.String()
		n2 := parseOne(t, text)
		if n2.Inst.String() != text {
			t.Errorf("%q is not print/parse stable (%q -> %q)", c.src, text, n2.Inst.String())
		}
	}
}

// TestLayoutImageMatchesLengths: for the whole coverage list laid out
// as one unit, every instruction's recorded length must equal its
// encoding length and the section image must be exactly their sum.
func TestLayoutImageMatchesLengths(t *testing.T) {
	var b strings.Builder
	b.WriteString("\t.text\n")
	for _, c := range coverage {
		b.WriteString("\t" + c.src + "\n")
	}
	b.WriteString(".Lcov:\n\tret\n")
	u, err := asm.ParseString("cov.s", b.String())
	if err != nil {
		t.Fatal(err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind != ir.NodeInst {
			continue
		}
		if len(layout.Bytes(n)) != layout.Len(n) {
			t.Errorf("%v: bytes %d != len %d", n.Inst, len(layout.Bytes(n)), layout.Len(n))
		}
		sum += int64(layout.Len(n))
	}
	if got := layout.SectionEnd[".text"]; got != sum {
		t.Errorf("section end %d != instruction sum %d", got, sum)
	}
	// Simulating the static layout must also be internally consistent.
	_ = sim.New(uarch.Core2())
}
