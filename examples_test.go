package mao_test

// Smoke test: every example must build and run successfully, so the
// documentation's entry points cannot rot.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least 3 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
