#!/bin/sh
# ci.sh — the checks CI runs, runnable locally with ./ci.sh.
#
#   gofmt       formatting must be canonical
#   go vet      static analysis
#   go build    everything compiles
#   go test     full test suite under the race detector
#   race-stress the concurrency-bearing packages (the parallel pass
#               manager with its per-worker relax.State pool, the
#               shared encode cache, the incremental relaxation
#               differential suite at 8 workers and the maod service)
#               repeated under the race detector to shake out
#               scheduling-dependent races
#   maolint     pass bodies may mutate the IR only through the
#               pass.Ctx helpers — raw ir.List calls break provenance
#               and fragment dirtying silently
#   fuzz smoke  the parser fuzz target runs briefly, so the committed
#               seeds keep passing and the harness cannot rot; the
#               verifier's zero-false-positive fuzz gate
#               (FuzzVerifyEquiv) and the decoder's decode↔encode
#               oracle (FuzzDecodeEncodeRoundtrip) run briefly for the
#               same reason
#   decode-roundtrip
#               every corpus fixture is assembled to raw machine code
#               (mao -emit-binary), lifted back through the binary
#               front end (mao -binary), and re-emitted — the image
#               must be byte-identical, closing the
#               decode→IR→encode loop on real input
#   maod smoke  boot the daemon, probe /healthz and /metrics, run one
#               optimization, then SIGTERM and require a clean drain
#               (exit 0)
#   fleet smoke boot 2 maod shards behind a real maorouter, stream the
#               corpus as a maoar1 archive through the router and
#               byte-compare the records against a direct single
#               daemon (topology must be invisible in the bytes), then
#               SIGTERM one shard mid maoload run and require hitless
#               rerouting (no 5xx, no transport errors, rebalances
#               counted on the router's metrics)
#   scope smoke boot 2 shards (debug planes on) behind a maorouter,
#               run zipf maoload with tracing originated at the
#               client, then validate the whole observability surface
#               against checked-in schemas: the cross-process
#               ?trace=1 / ?trace=chrome span trees (router hop span
#               present, inbound trace ID preserved), the
#               /debug/scope flight-recorder views on every plane,
#               the access-log shard/cache stamps, the queue-wait +
#               runtime-health metrics series, and maotop -once -json
#   bench smoke every benchmark runs once, so the committed benchmarks
#               (including the worker-scaling and cache benchmarks)
#               cannot silently rot
#   bench regression
#               maobench -json re-measures the repeated-relaxation,
#               repeated-pipeline and warm-memo benchmarks and fails
#               on a >2x ns/op regression against the checked-in
#               BENCH_relax.json / BENCH_pipeline.json /
#               BENCH_memo.json baselines — the guard that incremental
#               relaxation and pipeline memoization never silently
#               degrade back to full rebuilds
#   memo verify maobench -memo replays the corpus through the memo
#               repeatedly and fails unless every replay is
#               byte-identical to its cold run with a hit rate
#               above 0.9 — memoized answers must be observationally
#               indistinguishable from recomputation
#   self-lint   mao --check over the committed corpus fixtures: the
#               checker must parse and lint generator output without
#               error-severity diagnostics (warnings are expected —
#               synthetic workloads take ABI liberties on purpose)
#   self-verify mao -verify over the committed corpus fixtures under
#               the full pass pipeline: every pass invocation must
#               certify clean (exit 0) — the translation validator's
#               zero-false-positive contract, asserted on real input
#   trace smoke mao --explain=json and -trace-chrome over a corpus
#               fixture, with both artifacts validated against the
#               checked-in schemas (internal/trace/testdata), so the
#               observability formats cannot drift silently
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "files need gofmt:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== race-stress: parallel pass manager + per-worker relax state + encode cache + service"
go test -race -count=3 ./internal/pass/ ./internal/relax/
go test -race -count=2 ./internal/serve/
# The differential suite drives the pooled per-worker relax.States at 8
# workers with tracing on; repeat it specifically under the detector.
go test -race -count=2 -run 'TestDifferentialAfterPasses' ./internal/relax/

echo "== maolint: passes mutate IR only through pass.Ctx helpers"
go run ./cmd/maolint ./internal/passes

echo "== fuzz smoke: parser"
go test -run '^$' -fuzz FuzzParseString -fuzztime 10s ./internal/asm/

echo "== fuzz smoke: verifier zero-false-positive gate"
go test -run '^$' -fuzz FuzzVerifyEquiv -fuzztime 10s ./internal/verify/

echo "== fuzz smoke: decode↔encode oracle"
go test -run '^$' -fuzz FuzzDecodeEncodeRoundtrip -fuzztime 10s ./internal/x86/decode/

echo "== benchmark smoke run"
go test -run '^$' -bench . -benchtime=1x ./...

echo "== bench regression: relaxation + pipeline vs checked-in baselines"
benchdir=$(mktemp -d)
go run ./cmd/maobench -json -outdir "$benchdir" -baseline .
rm -rf "$benchdir"

echo "== memo verify: warm replays byte-identical to cold runs, hit rate > 0.9"
go run ./cmd/maobench -memo -scale 0.05

echo "== self-lint corpus fixtures (mao --check)"
bin=$(mktemp -d)/mao
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/mao
for f in internal/corpus/testdata/*.s; do
	echo "-- $f"
	"$bin" --check "$f"
done

echo "== self-verify corpus fixtures (mao -verify, full pipeline)"
for f in internal/corpus/testdata/*.s; do
	echo "-- $f"
	"$bin" -verify --mao=REDTEST:REDMOV:REDZEXT:ADDADD:SCHED "$f" >/dev/null
done

echo "== decode-roundtrip: corpus assembled, lifted back, re-emitted byte-identically"
bindir=$(dirname "$bin")
for f in internal/corpus/testdata/*.s; do
	echo "-- $f"
	"$bin" -emit-binary "$bindir/rt.bin" "$f"
	"$bin" -binary -emit-binary "$bindir/rt2.bin" "$bindir/rt.bin"
	cmp "$bindir/rt.bin" "$bindir/rt2.bin" ||
		{ echo "decode roundtrip not byte-identical for $f" >&2; exit 1; }
done

echo "== trace smoke: --explain and Chrome trace export validate against their schemas"
tracedir=$(dirname "$bin")
fixture=internal/corpus/testdata/wl_164_gzip.s
"$bin" --mao=REDTEST:NOPKILL:LOOP16 --explain=json -trace-chrome "$tracedir/pipeline.trace" \
	"$fixture" >"$tracedir/explain.json"
go run ./internal/trace/schemacheck -schema internal/trace/testdata/explain.schema.json \
	"$tracedir/explain.json"
go run ./internal/trace/schemacheck -schema internal/trace/testdata/chrome_trace.schema.json \
	"$tracedir/pipeline.trace"
# --explain must attribute: the pipeline above synthesizes alignment
# nodes, so at least one "origin" must appear in the lineage.
grep -q '"origin":"LOOP16\[2\]"' "$tracedir/explain.json" ||
	{ echo "--explain=json carries no LOOP16[2] origin" >&2; exit 1; }

echo "== maod smoke: boot, probe, optimize, drain"
maod_bin=$(dirname "$bin")/maod
go build -o "$maod_bin" ./cmd/maod
maod_log=$(dirname "$bin")/maod.log
"$maod_bin" -addr 127.0.0.1:0 -quiet >"$maod_log" 2>&1 &
maod_pid=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's/^maod: listening on //p' "$maod_log")
	[ -n "$addr" ] && break
	sleep 0.1
done
[ -n "$addr" ] || { echo "maod never announced its address" >&2; cat "$maod_log" >&2; exit 1; }
base="http://$addr"
curl -fsS "$base/healthz" | grep -q ok
curl -fsS "$base/metrics" | grep -q '^maod_queue_depth'
printf '{"source":"\\t.text\\nf:\\n\\tsubl $16, %%r15d\\n\\ttestl %%r15d, %%r15d\\n\\tret\\n","spec":"REDTEST"}' |
	curl -fsS -X POST -H 'Content-Type: application/json' --data-binary @- "$base/v1/optimize" |
	grep -q '"assembly"'
kill -TERM "$maod_pid"
wait "$maod_pid" || { echo "maod did not drain cleanly (exit $?)" >&2; cat "$maod_log" >&2; exit 1; }
grep -q drained "$maod_log" || { echo "maod drain not logged" >&2; cat "$maod_log" >&2; exit 1; }

echo "== fleet smoke: 2 shards + maorouter, archive parity, reroute on shard death"
fleet=$(dirname "$bin")
go build -o "$fleet/maorouter" ./cmd/maorouter
go build -o "$fleet/maoload" ./cmd/maoload

# start_maod <logfile>: boots a daemon in the background, leaving its
# base URL in $maod_url and its pid in $maod_started_pid (no command
# substitution — a subshell would lose $!).
start_maod() {
	_log=$1
	"$maod_bin" -addr 127.0.0.1:0 -quiet >"$_log" 2>&1 &
	maod_started_pid=$!
	_a=""
	for _ in $(seq 1 100); do
		_a=$(sed -n 's/^maod: listening on //p' "$_log")
		[ -n "$_a" ] && break
		sleep 0.1
	done
	[ -n "$_a" ] || { echo "maod never announced its address" >&2; cat "$_log" >&2; exit 1; }
	maod_url="http://$_a"
}

start_maod "$fleet/shard1.log"; shard1=$maod_url; shard1_pid=$maod_started_pid
start_maod "$fleet/shard2.log"; shard2=$maod_url; shard2_pid=$maod_started_pid
start_maod "$fleet/direct.log"; direct=$maod_url; direct_pid=$maod_started_pid

"$fleet/maorouter" -addr 127.0.0.1:0 -shards "$shard1,$shard2" \
	-probe-interval 100ms >"$fleet/router.log" 2>&1 &
router_pid=$!
router=""
for _ in $(seq 1 100); do
	router=$(sed -n 's/^maorouter: listening on \([^ ]*\).*/\1/p' "$fleet/router.log")
	[ -n "$router" ] && break
	sleep 0.1
done
[ -n "$router" ] || { echo "maorouter never announced its address" >&2; cat "$fleet/router.log" >&2; exit 1; }
router="http://$router"

# Frame the corpus as one maoar1 archive: magic, name length, source
# length, newline, then name and source bytes back to back.
archive=$fleet/corpus.maoar
: >"$archive"
for f in internal/corpus/testdata/*.s; do
	printf 'maoar1 %d %d\n' "$(printf %s "$f" | wc -c)" "$(wc -c <"$f")" >>"$archive"
	printf %s "$f" >>"$archive"
	cat "$f" >>"$archive"
done

# The same archive through the router and through a single direct
# daemon must carry identical per-unit records. Completion order is
# timing-dependent and the cached flag / cache verdict vary (a unit
# can hit, miss, or coalesce onto a sibling's in-flight run), so: drop
# the trailer, strip "cached" and "cache", sort by record.
stream_records() {
	curl -fsS -X POST -H 'Content-Type: application/x-mao-archive' \
		--data-binary @"$archive" "$1/v1/optimize/archive?spec=REDTEST:REDMOV" |
		grep -v '"done"' |
		sed -e 's/,"cached":true//' -e 's/,"cache":"hit"//' -e 's/,"cache":"miss"//' \
			-e 's/,"cache":"coalesced"//' |
		sort
}
stream_records "$router" >"$fleet/via_router.ndjson"
stream_records "$direct" >"$fleet/via_direct.ndjson"
[ -s "$fleet/via_router.ndjson" ] || { echo "empty archive stream via router" >&2; exit 1; }
cmp "$fleet/via_router.ndjson" "$fleet/via_direct.ndjson" ||
	{ echo "archive via router differs from direct daemon" >&2; exit 1; }

# Kill shard1 mid maoload run: maod drains gracefully (503 to new
# work), the router fails the drained shard over, and the run must
# stay hitless — every request 200, rebalances visible on /metrics.
"$fleet/maoload" -addr "$router" -router -c 4 -duration 3s -n 0 \
	-clients 8 -zipf 1.2 -spec REDTEST internal/corpus/testdata/*.s \
	>"$fleet/load.log" 2>&1 &
load_pid=$!
sleep 1
kill -TERM "$shard1_pid"
wait "$load_pid" || { echo "maoload through the router failed" >&2; cat "$fleet/load.log" >&2; exit 1; }
grep -Eq 'classes: 2xx [0-9]+  4xx 0  5xx 0  transport-errors 0' "$fleet/load.log" ||
	{ echo "shard death was not hitless" >&2; cat "$fleet/load.log" >&2; exit 1; }
wait "$shard1_pid" || { echo "shard1 did not drain cleanly" >&2; cat "$fleet/shard1.log" >&2; exit 1; }
curl -fsS "$router/metrics" >"$fleet/router_metrics.txt"
grep -Eq 'maorouter_rebalances_total [1-9]' "$fleet/router_metrics.txt" ||
	{ echo "router never rebalanced after shard death" >&2; cat "$fleet/router_metrics.txt" >&2; exit 1; }
grep -q "maorouter_shard_healthy{shard=\"$shard1\"} 0" "$fleet/router_metrics.txt" ||
	{ echo "dead shard still marked healthy" >&2; cat "$fleet/router_metrics.txt" >&2; exit 1; }

kill -TERM "$router_pid" "$shard2_pid" "$direct_pid"
wait "$router_pid" || { echo "maorouter did not drain cleanly" >&2; cat "$fleet/router.log" >&2; exit 1; }
wait "$shard2_pid" "$direct_pid" 2>/dev/null || true

echo "== scope smoke: fleet tracing, flight recorders, maotop vs checked-in schemas"
go build -o "$fleet/maotop" ./cmd/maotop

# start_scoped_maod <logfile>: a shard with its debug plane on, both
# addresses parsed from the log ($maod_url, $maod_debug).
start_scoped_maod() {
	_log=$1
	"$maod_bin" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -quiet >"$_log" 2>&1 &
	maod_started_pid=$!
	_a=""
	_d=""
	for _ in $(seq 1 100); do
		_a=$(sed -n 's/^maod: listening on //p' "$_log")
		_d=$(sed -n 's/^maod: debug (pprof, scope) listening on //p' "$_log")
		[ -n "$_a" ] && [ -n "$_d" ] && break
		sleep 0.1
	done
	[ -n "$_a" ] && [ -n "$_d" ] ||
		{ echo "maod never announced its addresses" >&2; cat "$_log" >&2; exit 1; }
	maod_url="http://$_a"
	maod_debug="http://$_d"
}

start_scoped_maod "$fleet/sshard1.log"; sshard1=$maod_url; sshard1_dbg=$maod_debug; sshard1_pid=$maod_started_pid
start_scoped_maod "$fleet/sshard2.log"; sshard2=$maod_url; sshard2_dbg=$maod_debug; sshard2_pid=$maod_started_pid

"$fleet/maorouter" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 -shards "$sshard1,$sshard2" \
	-probe-interval 100ms >"$fleet/srouter.log" 2>&1 &
srouter_pid=$!
srouter=""
srouter_dbg=""
for _ in $(seq 1 100); do
	srouter=$(sed -n 's/^maorouter: listening on \([^ ]*\).*/\1/p' "$fleet/srouter.log")
	srouter_dbg=$(sed -n 's/^maorouter: debug (pprof, scope) listening on //p' "$fleet/srouter.log")
	[ -n "$srouter" ] && [ -n "$srouter_dbg" ] && break
	sleep 0.1
done
[ -n "$srouter" ] && [ -n "$srouter_dbg" ] ||
	{ echo "maorouter never announced its addresses" >&2; cat "$fleet/srouter.log" >&2; exit 1; }
srouter="http://$srouter"
srouter_dbg="http://$srouter_dbg"

# Zipf load with tracing on: maoload originates X-Mao-Trace per
# request and fails itself if no response carries a span tree.
"$fleet/maoload" -addr "$srouter" -router -trace -c 4 -n 40 \
	-clients 4 -zipf 1.2 -spec REDTEST internal/corpus/testdata/*.s \
	>"$fleet/sload.log" 2>&1 ||
	{ echo "traced maoload through the router failed" >&2; cat "$fleet/sload.log" >&2; exit 1; }
grep -q 'traces: .* responses carried a span tree' "$fleet/sload.log" ||
	{ echo "maoload reported no traces" >&2; cat "$fleet/sload.log" >&2; exit 1; }

# Archive streaming latency: time-to-first-record is reported
# separately from total latency.
"$fleet/maoload" -addr "$srouter" -archive -c 2 -n 4 \
	-spec REDTEST internal/corpus/testdata/*.s >"$fleet/sarchive.log" 2>&1 ||
	{ echo "archive maoload failed" >&2; cat "$fleet/sarchive.log" >&2; exit 1; }
grep -q 'time-to-first-record: p50' "$fleet/sarchive.log" ||
	{ echo "no time-to-first-record report" >&2; cat "$fleet/sarchive.log" >&2; exit 1; }

# One traced request with a pinned context: the cross-process span
# tree must validate against the checked-in schemas, contain the
# router's hop span, and keep the inbound trace ID end to end.
trace_id=00112233445566778899aabbccddeeff
printf '{"source":"\\t.text\\nf:\\n\\tsubl $16, %%r15d\\n\\ttestl %%r15d, %%r15d\\n\\tret\\n","spec":"REDTEST"}' >"$fleet/req.json"
curl -fsS -X POST -H 'Content-Type: application/json' -H "X-Mao-Trace: $trace_id-0123456789abcdef" \
	--data-binary @"$fleet/req.json" "$srouter/v1/optimize?trace=1" >"$fleet/strace.json"
go run ./internal/trace/schemacheck -schema internal/scope/testdata/scope_trace.schema.json \
	"$fleet/strace.json"
grep -q '"kind":"hop"' "$fleet/strace.json" ||
	{ echo "trace lacks the router hop span" >&2; cat "$fleet/strace.json" >&2; exit 1; }
grep -q "\"trace_id\":\"$trace_id\"" "$fleet/strace.json" ||
	{ echo "inbound trace ID lost across the fleet" >&2; cat "$fleet/strace.json" >&2; exit 1; }
curl -fsS -X POST -H 'Content-Type: application/json' -H "X-Mao-Trace: $trace_id-0123456789abcdef" \
	--data-binary @"$fleet/req.json" "$srouter/v1/optimize?trace=chrome" >"$fleet/strace_chrome.json"
go run ./internal/trace/schemacheck -schema internal/scope/testdata/scope_chrome.schema.json \
	"$fleet/strace_chrome.json"

# Router access log: every proxied request is stamped with its shard
# and cache verdict.
grep -q '"shard":"http' "$fleet/srouter.log" ||
	{ echo "router access log lacks shard stamps" >&2; cat "$fleet/srouter.log" >&2; exit 1; }
grep -Eq '"cache":"(hit|miss|coalesced)"' "$fleet/srouter.log" ||
	{ echo "router access log lacks cache verdicts" >&2; cat "$fleet/srouter.log" >&2; exit 1; }

# Both exposition planes carry the queue-wait split and Go runtime
# health series.
curl -fsS "$sshard1/metrics" >"$fleet/sshard1_metrics.txt"
grep -q '^maod_queue_wait_seconds_bucket' "$fleet/sshard1_metrics.txt" ||
	{ echo "no maod_queue_wait_seconds histogram" >&2; exit 1; }
grep -q '^maod_go_goroutines' "$fleet/sshard1_metrics.txt" ||
	{ echo "no maod runtime health series" >&2; exit 1; }
curl -fsS "$srouter/metrics" | grep -q '^maorouter_go_goroutines' ||
	{ echo "no maorouter runtime health series" >&2; exit 1; }

# Flight recorders on every plane validate against the pinned schema.
for dbg in "$srouter_dbg" "$sshard1_dbg" "$sshard2_dbg"; do
	for view in recent slowest errors; do
		curl -fsS "$dbg/debug/scope/$view" >"$fleet/flight.json"
		go run ./internal/trace/schemacheck -schema internal/scope/testdata/scope_flight.schema.json \
			"$fleet/flight.json"
	done
done

# maotop aggregates the whole fleet; its -once -json output (which
# also fails on any unparseable /metrics page) matches its schema.
"$fleet/maotop" -router "$srouter" -debug "$srouter_dbg,$sshard1_dbg,$sshard2_dbg" \
	-once -json >"$fleet/maotop.json" ||
	{ echo "maotop -once failed" >&2; cat "$fleet/maotop.json" >&2; exit 1; }
go run ./internal/trace/schemacheck -schema internal/scope/testdata/maotop.schema.json \
	"$fleet/maotop.json"

kill -TERM "$srouter_pid" "$sshard1_pid" "$sshard2_pid"
wait "$srouter_pid" "$sshard1_pid" "$sshard2_pid" 2>/dev/null || true

echo "CI OK"
