#!/bin/sh
# ci.sh — the checks CI runs, runnable locally with ./ci.sh.
#
#   gofmt       formatting must be canonical
#   go vet      static analysis
#   go build    everything compiles
#   go test     full test suite under the race detector
#   race-stress the concurrency-bearing packages (the parallel pass
#               manager and the shared encode cache) repeated under the
#               race detector to shake out scheduling-dependent races
#   bench smoke every benchmark runs once, so the committed benchmarks
#               (including the worker-scaling and cache benchmarks)
#               cannot silently rot
#   self-lint   mao --check over the committed corpus fixtures: the
#               checker must parse and lint generator output without
#               error-severity diagnostics (warnings are expected —
#               synthetic workloads take ABI liberties on purpose)
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "files need gofmt:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== race-stress: parallel pass manager + encode cache"
go test -race -count=3 ./internal/pass/ ./internal/relax/

echo "== benchmark smoke run"
go test -run '^$' -bench . -benchtime=1x ./...

echo "== self-lint corpus fixtures (mao --check)"
bin=$(mktemp -d)/mao
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/mao
for f in internal/corpus/testdata/*.s; do
	echo "-- $f"
	"$bin" --check "$f"
done

echo "CI OK"
