// Instrument demonstrates the dynamic-instrumentation support of paper
// Section III-E.l: the INSTRUMENT pass plants a single 5-byte nop at
// every function entry and exit, padded so it never crosses a cache
// line — the precondition for atomically overwriting it with a 5-byte
// branch to trampoline code at run time. The example verifies every
// probe's placement from the relaxed layout and measures the overhead.
package main

import (
	"fmt"
	"log"

	"mao"
	"mao/internal/corpus"
)

func main() {
	wl := corpus.Workload{
		Name: "instr_demo", Seed: 99, ColdFuncs: 3,
		Hot: []corpus.Hotspot{
			{Kind: corpus.ShortLoop, Offset: 9, Trips: 40, Entries: 50},
			{Kind: corpus.DiluterLoop, Trips: 4000},
		},
		Patterns: corpus.PatternMix{PlainTest: 12, RedZext: 6},
	}
	u, err := mao.ParseString("demo.s", corpus.Generate(wl))
	if err != nil {
		log.Fatal(err)
	}

	before, err := mao.Measure(u, wl.EntryName(), mao.Core2(), 0)
	if err != nil {
		log.Fatal(err)
	}

	stats, err := mao.RunPipeline(u, "INSTRUMENT")
	if err != nil {
		log.Fatal(err)
	}

	layout, err := mao.Relax(u)
	if err != nil {
		log.Fatal(err)
	}

	const lineSize = 32
	probes := 0
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if n.Inst.IsNop() && layout.Len(n) == 5 {
				probes++
				a := layout.Addr(n)
				crosses := a/lineSize != (a+4)/lineSize
				fmt.Printf("probe in %-22s at %#06x..%#06x  crosses line: %v\n",
					f.Name, a, a+4, crosses)
				if crosses {
					log.Fatalf("probe at %#x is not atomically patchable", a)
				}
			}
		}
	}

	after, err := mao.Measure(u, wl.EntryName(), mao.Core2(), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplanted %d probes (%d entry/exit points), %d pad bytes\n",
		probes, stats.Get("INSTRUMENT", "entry_exit_points"),
		stats.Get("INSTRUMENT", "pad_nops"))
	delta := (float64(before.Cycles) - float64(after.Cycles)) / float64(before.Cycles) * 100
	fmt.Printf("cycles %d -> %d (%+.2f%%; paper: no overall degradation)\n",
		before.Cycles, after.Cycles, delta)
}
