// Loop-align demonstrates the alignment optimizations of paper
// Section III-C on the simulated Core-2: a short loop crossing a
// 16-byte decode line (LOOP16 material) and a bigger loop straddling
// the Loop Stream Detector's four-line window (the Figure 4/5
// scenario). Both are measured before and after the passes.
package main

import (
	"fmt"
	"log"

	"mao"
)

// shortLoop is the 252.eon-style loop: 9 bytes of body placed 9 bytes
// past a 16-byte boundary, so every iteration decodes from two lines.
const shortLoop = `
	.text
	.type short_loop,@function
short_loop:
	leaq buf(%rip), %rdi
	movl $400, %r13d
.Louter:
	movl $40, %ecx
	.p2align 5
	movl %r11d, %r11d
	movl %r11d, %r11d
	movl %r11d, %r11d
.Ltop:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Ltop
	decl %r13d
	jne .Louter
	ret
	.size short_loop,.-short_loop
	.data
buf:
	.zero 4096
`

// lsdLoop straddles five decode lines as placed; shifted into four it
// streams from the LSD (paper Figures 4 and 5).
const lsdLoop = `
	.text
	.type lsd_loop,@function
lsd_loop:
	xorl %eax, %eax
	.p2align 5
	movl %r11d, %r11d
	movl %r11d, %r11d
	movl %r11d, %r11d
	movl %r11d, %r11d
	movl %r11d, %r11d
.Ltop:
	addl $100000, %r8d
	addl $100000, %r9d
	addl $100000, %r10d
	addl $100000, %r14d
	addl $100000, %r15d
	addl $100000, %ebx
	addl $100000, %ecx
	addl $1, %eax
	cmpl $2000, %eax
	jl .Ltop
	ret
	.size lsd_loop,.-lsd_loop
`

func measure(name, src, entry, pipeline string) {
	u, err := mao.ParseString(name, src)
	if err != nil {
		log.Fatal(err)
	}
	base, err := mao.Measure(u, entry, mao.Core2(), 0)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := mao.RunPipeline(u, pipeline)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := mao.Measure(u, entry, mao.Core2(), 0)
	if err != nil {
		log.Fatal(err)
	}
	delta := (float64(base.Cycles) - float64(opt.Cycles)) / float64(base.Cycles) * 100
	fmt.Printf("%s with %s:\n", name, pipeline)
	fmt.Printf("  cycles %8d -> %8d  (%+.2f%%)\n", base.Cycles, opt.Cycles, delta)
	fmt.Printf("  decode lines %8d -> %8d, LSD uops %d -> %d\n",
		base.DecodeLines, opt.DecodeLines, base.LSDUops, opt.LSDUops)
	fmt.Printf("  transformations: %s\n", oneLine(stats.String()))
}

func oneLine(s string) string {
	out := ""
	for _, r := range s {
		if r == '\n' {
			out += "; "
		} else {
			out += string(r)
		}
	}
	return out
}

func main() {
	measure("short_loop", shortLoop, "short_loop", "LOOP16")
	fmt.Println()
	measure("lsd_loop", lsdLoop, "lsd_loop", "LSD")
}
