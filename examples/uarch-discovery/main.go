// Uarch-discovery runs the paper's Section IV parameter-detection
// framework against the simulated Core-2 and Opteron models,
// reproducing the Figure 6 instruction-latency case study and then
// discovering structures the manuals would not document: the LSD
// window, the branch-predictor index granularity, and the forwarding
// bandwidth. Every answer is checked against the simulator's
// configured ground truth.
package main

import (
	"fmt"
	"log"

	"mao"
	"mao/internal/mbench"
)

func main() {
	for _, model := range []*mao.CPUModel{mao.Core2(), mao.Opteron()} {
		proc := mbench.NewProcessor(model)
		fmt.Printf("=== %s ===\n", model.Name)

		// Figure 6: InstructionLatency via a CYCLE dependence chain.
		for _, tpl := range []string{"addl %r, %w", "imull %r, %w"} {
			lat, err := mbench.InstructionLatency(proc, tpl)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("latency %-16s = %d cycle(s)\n", tpl, lat)
		}

		lsd, err := mbench.DetectLSDWindow(proc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LSD window           = %d lines (ground truth: %d)\n",
			lsd, model.LSDMaxLines)

		gran, err := mbench.DetectBranchAliasGranularity(proc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predictor granularity = %d bytes (ground truth: PC>>%d = %d)\n",
			gran, model.BPIndexShift, 1<<model.BPIndexShift)

		fwd, err := mbench.DetectForwardingBandwidth(proc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("forwarding bandwidth  = %d (ground truth: %d)\n\n",
			fwd, model.FwdBandwidth)
	}
}
