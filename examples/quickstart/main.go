// Quickstart: parse an assembly file, run a small optimization
// pipeline, and emit the result — MAO's core parse→optimize→emit flow
// on the paper's own Section III-B pattern examples.
package main

import (
	"fmt"
	"log"

	"mao"
)

// src carries one instance of each peephole pattern from paper
// Section III-B: a redundant zero-extension, a redundant test, a
// repeated load, and a foldable add/add chain.
const src = `
	.text
	.type compute,@function
compute:
	# III-B.a: the andl already zero-extended %eax.
	andl $255, %eax
	mov %eax, %eax
	# III-B.b: the subl already set the flags the je consumes.
	subl $16, %r15d
	testl %r15d, %r15d
	je .Ldone
	# III-B.c: the second load can reuse %rdx.
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
	addq %rcx, %rax
	# III-B.d: two add-immediates fold into one.
	addq $8, %rdi
	movq %rax, %rsi
	addq $16, %rdi
.Ldone:
	ret
	.size compute,.-compute
`

func main() {
	u, err := mao.ParseString("quickstart.s", src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== input ==")
	fmt.Print(u)

	stats, err := mao.RunPipeline(u, "REDZEXT:REDTEST:REDMOV:ADDADD")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== after REDZEXT:REDTEST:REDMOV:ADDADD ==")
	fmt.Print(u)

	fmt.Println("\n== transformations ==")
	fmt.Print(stats)

	// Relaxation gives byte-accurate addresses and encodings — the
	// capability every alignment pass builds on.
	layout, err := mao.Relax(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized .text size: %d bytes\n", layout.SectionEnd[".text"])
}
