// Redundant-elim reproduces the paper's Section III-B workflow on the
// synthetic stand-in for the Google core library: count how many
// redundant zero-extensions, tests and repeated loads the pattern
// passes find, and verify the transformed code still computes the
// same results under the functional executor.
package main

import (
	"fmt"
	"log"

	"mao"
	"mao/internal/corpus"
	"mao/internal/x86"
)

func main() {
	// A 5% scale of the paper's corpus keeps this example fast; run
	// cmd/maobench -experiment counts-static -scale 1 for the full
	// numbers.
	wl := corpus.CoreLibrary(0.05)
	u, err := mao.ParseString("corelib.s", corpus.Generate(wl))
	if err != nil {
		log.Fatal(err)
	}

	totalTests := 0
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if n.Inst.Op == x86.OpTEST {
				totalTests++
			}
		}
	}

	// Execute before optimizing to capture reference results.
	before, err := mao.Measure(u, wl.EntryName(), mao.Core2(), 0)
	if err != nil {
		log.Fatal(err)
	}

	stats, err := mao.RunPipeline(u, "REDZEXT:REDTEST:REDMOV:ADDADD")
	if err != nil {
		log.Fatal(err)
	}

	after, err := mao.Measure(u, wl.EntryName(), mao.Core2(), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corpus: %d functions, %d test instructions\n",
		len(u.Functions()), totalTests)
	fmt.Printf("redundant zero-extensions removed: %d\n", stats.Get("REDZEXT", "removed"))
	redT := stats.Get("REDTEST", "removed")
	fmt.Printf("redundant tests removed:           %d (%.1f%% of all tests; paper: 24%%)\n",
		redT, float64(redT)/float64(totalTests)*100)
	fmt.Printf("repeated loads rewritten/removed:  %d\n",
		stats.Get("REDMOV", "rewritten")+stats.Get("REDMOV", "removed"))
	fmt.Printf("add/add chains folded:             %d\n", stats.Get("ADDADD", "folded"))
	fmt.Printf("\ninstructions executed: %d -> %d\n", before.Insts, after.Insts)
	fmt.Printf("simulated cycles:      %d -> %d\n", before.Cycles, after.Cycles)
}
