package mao_test

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation (each delegating to the shared experiment
// implementations that cmd/maobench also runs), plus component
// micro-benchmarks for the infrastructure itself.
//
// Experiment benchmarks run at a reduced corpus scale so `go test
// -bench=.` completes quickly; `cmd/maobench -scale 1` regenerates the
// full-size tables. The experiments are deterministic, so the bench
// timings measure harness cost while the *results* (recorded in
// EXPERIMENTS.md) come from the experiment output itself.

import (
	"fmt"
	"io"
	"testing"

	"mao"
	"mao/internal/bench"
	"mao/internal/corpus"
	"mao/internal/experiments"
	"mao/internal/relax"
	"mao/internal/uarch"
)

const benchScale = 0.05

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e := experiments.Find(name)
	if e == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// --- paper tables and figures, one benchmark each ---------------------------

func BenchmarkFig1NOP(b *testing.B)          { runExperiment(b, "fig1-nop") }
func BenchmarkRelaxExample(b *testing.B)     { runExperiment(b, "relax") }
func BenchmarkCFGIndirect(b *testing.B)      { runExperiment(b, "cfg-indirect") }
func BenchmarkStaticCounts(b *testing.B)     { runExperiment(b, "counts-static") }
func BenchmarkFig45LSD(b *testing.B)         { runExperiment(b, "fig45-lsd") }
func BenchmarkSchedHash(b *testing.B)        { runExperiment(b, "sched-hash") }
func BenchmarkEonRegress(b *testing.B)       { runExperiment(b, "eon-regress") }
func BenchmarkLoop16Core2(b *testing.B)      { runExperiment(b, "loop16-core2") }
func BenchmarkLoop16Opteron(b *testing.B)    { runExperiment(b, "loop16-opteron") }
func BenchmarkSpec2006Opteron(b *testing.B)  { runExperiment(b, "spec2006-opteron") }
func BenchmarkSchedSuite(b *testing.B)       { runExperiment(b, "sched-suite") }
func BenchmarkFig7Aggregate(b *testing.B)    { runExperiment(b, "fig7-aggregate") }
func BenchmarkNopKillSize(b *testing.B)      { runExperiment(b, "nopkill-size") }
func BenchmarkSimAddrGain(b *testing.B)      { runExperiment(b, "simaddr-gain") }
func BenchmarkInstrumentation(b *testing.B)  { runExperiment(b, "instrument") }
func BenchmarkCompileTimeRatio(b *testing.B) { runExperiment(b, "compile-time") }

// --- extension experiments (anecdotes + ablations) ---------------------------

func BenchmarkBrAlign(b *testing.B)   { runExperiment(b, "bralign") }
func BenchmarkPrefNTA(b *testing.B)   { runExperiment(b, "prefnta") }
func BenchmarkNopinP4(b *testing.B)   { runExperiment(b, "nopin-p4") }
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// --- infrastructure micro-benchmarks -----------------------------------------

// BenchmarkParse measures parser throughput on the synthetic corpus.
func BenchmarkParse(b *testing.B) {
	src := corpus.Generate(corpus.CoreLibrary(benchScale))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mao.ParseString("bench.s", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelax measures repeated relaxation on the corpus.
func BenchmarkRelax(b *testing.B) {
	src := corpus.Generate(corpus.CoreLibrary(benchScale))
	u, err := mao.ParseString("bench.s", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mao.Relax(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatternPasses measures the peephole pipeline.
func BenchmarkPatternPasses(b *testing.B) {
	src := corpus.Generate(corpus.CoreLibrary(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := mao.ParseString("bench.s", src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mao.RunPipeline(u, "REDZEXT:REDTEST:REDMOV:ADDADD"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineWorkers measures the parallel per-function pipeline
// at several worker counts over a scheduling-heavy pipeline (SCHED
// dominates, so the fan-out has real work to distribute). The emitted
// unit is identical at every worker count; only wall-clock changes.
func BenchmarkPipelineWorkers(b *testing.B) {
	src := corpus.Generate(corpus.CoreLibrary(0.5))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				u, err := mao.ParseString("bench.s", src)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				_, err = mao.RunPipelineParallel(u,
					"REDZEXT:REDTEST:REDMOV:ADDADD:DCE:CONSTFOLD:SCHED",
					mao.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRelaxCache measures relaxation with a cold cache, and then
// re-relaxation of the unchanged unit through a warm cache — the
// repeated-pipeline workload the cache exists for.
func BenchmarkRelaxCache(b *testing.B) {
	src := corpus.Generate(corpus.CoreLibrary(0.5))
	u, err := mao.ParseString("bench.s", src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mao.Relax(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := mao.NewCache()
		if _, err := relax.Relax(u, &relax.Options{Cache: c}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := relax.Relax(u, &relax.Options{Cache: c}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(c.HitRate()*100, "hit%")
	})
}

// BenchmarkSimulate measures executor+simulator throughput.
func BenchmarkSimulate(b *testing.B) {
	wl := corpus.Spec2000Int(benchScale)[1] // vpr-like
	u, err := bench.Prepare(wl)
	if err != nil {
		b.Fatal(err)
	}
	var insts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := mao.Measure(u, wl.EntryName(), uarch.Core2(), 0)
		if err != nil {
			b.Fatal(err)
		}
		insts = int64(c.Insts)
	}
	b.ReportMetric(float64(insts), "dyn-insts/op")
}
