package pass

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/x86"
)

// genUnit builds a unit with n small functions f0..f(n-1).
func genUnit(t testing.TB, n int) *ir.Unit {
	t.Helper()
	var b strings.Builder
	b.WriteString("\t.text\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, ".globl f%d\n.type f%d, @function\nf%d:\n", i, i, i)
		fmt.Fprintf(&b, "\tmovl\t$%d, %%eax\n\taddl\t$1, %%eax\n\tnop\n\tret\n", i)
		fmt.Fprintf(&b, ".size f%d, .-f%d\n", i, i)
	}
	u, err := asm.ParseString("gen.s", b.String())
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// parFake is a ParallelSafe FuncPass that inserts a nop at the top of
// every function, counts, and traces — enough surface to observe
// output, stats and trace determinism.
type parFake struct {
	failOn map[string]bool // function names whose RunFunc errors
}

func (*parFake) Name() string        { return "PARFAKE" }
func (*parFake) Description() string { return "test: parallel-safe mutator" }
func (*parFake) ParallelSafe() bool  { return true }
func (p *parFake) RunFunc(ctx *Ctx, f *ir.Function) (bool, error) {
	if p.failOn[f.Name] {
		return false, fmt.Errorf("induced failure")
	}
	insts := f.Instructions()
	if len(insts) == 0 {
		return false, nil
	}
	nop := x86.NewInst(x86.Mnem{Op: x86.OpNOP})
	f.Unit().List.InsertBefore(ir.InstNode(nop), insts[0])
	ctx.Trace(1, "%s: inserted nop", f.Name)
	ctx.Count("nops", 1)
	ctx.Count("insts", len(insts))
	return true, nil
}

func runParFake(t *testing.T, workers, funcs int, failOn map[string]bool) (string, *Stats, string, error) {
	t.Helper()
	u := genUnit(t, funcs)
	var trace bytes.Buffer
	m := &Manager{
		Pipeline: []Invocation{{
			Pass: &parFake{failOn: failOn},
			Opts: NewOptions("trace", "1"),
		}},
		TraceW:  &trace,
		Workers: workers,
	}
	stats, err := m.Run(u)
	return u.String(), stats, trace.String(), err
}

func TestParallelDeterminism(t *testing.T) {
	baseOut, baseStats, baseTrace, err := runParFake(t, 1, 23, nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Get("PARFAKE", "nops") != 23 {
		t.Fatalf("sequential stats wrong:\n%s", baseStats)
	}
	if !strings.Contains(baseTrace, "[PARFAKE] f0: inserted nop") {
		t.Fatalf("trace missing: %q", baseTrace)
	}
	for _, workers := range []int{2, 8, 0} {
		out, stats, trace, err := runParFake(t, workers, 23, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out != baseOut {
			t.Errorf("workers=%d: emitted assembly differs from sequential", workers)
		}
		if stats.String() != baseStats.String() {
			t.Errorf("workers=%d: stats differ:\n%s\nvs\n%s", workers, stats, baseStats)
		}
		if trace != baseTrace {
			t.Errorf("workers=%d: trace differs:\n%q\nvs\n%q", workers, trace, baseTrace)
		}
	}
}

// TestParallelErrorIndexStable: the error reported under any worker
// count names the lowest-index failing function and carries the stable
// pipeline invocation index.
func TestParallelErrorIndexStable(t *testing.T) {
	fail := map[string]bool{"f19": true, "f3": true, "f11": true}
	for _, workers := range []int{1, 2, 8} {
		_, _, _, err := runParFake(t, workers, 23, fail)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		want := "PARFAKE[0] on f3: induced failure"
		if err.Error() != want {
			t.Errorf("workers=%d: error %q, want %q", workers, err, want)
		}
	}
}

// orderHook records the bracketing sequence of pipeline invocations.
type orderHook struct{ events []string }

func (h *orderHook) BeforePass(u *ir.Unit, name string, index int) error {
	h.events = append(h.events, fmt.Sprintf("before %s[%d]", name, index))
	return nil
}
func (h *orderHook) AfterPass(u *ir.Unit, name string, index int) error {
	h.events = append(h.events, fmt.Sprintf("after %s[%d]", name, index))
	return nil
}

// TestParallelHookBracketing: hooks bracket whole invocations, so a
// certifier observes the same sequence at any worker count.
func TestParallelHookBracketing(t *testing.T) {
	for _, workers := range []int{1, 8} {
		u := genUnit(t, 12)
		h := &orderHook{}
		m := &Manager{
			Pipeline: []Invocation{
				{Pass: &parFake{}, Opts: NewOptions()},
				{Pass: &parFake{}, Opts: NewOptions()},
			},
			Hook:    h,
			Workers: workers,
		}
		if _, err := m.Run(u); err != nil {
			t.Fatal(err)
		}
		want := "before PARFAKE[0] after PARFAKE[0] before PARFAKE[1] after PARFAKE[1]"
		if got := strings.Join(h.events, " "); got != want {
			t.Errorf("workers=%d: hook order %q, want %q", workers, got, want)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Add("P", "x", 2)
	b.Add("P", "x", 3)
	b.Add("Q", "y", 1)
	a.Merge(b)
	if a.Get("P", "x") != 5 || a.Get("Q", "y") != 1 {
		t.Errorf("merge wrong:\n%s", a)
	}
	a.Merge(nil) // must not panic
}
