// Package pass implements MAO's pass framework: a registry of named
// optimization and analysis passes, per-pass options, a tracing
// facility, transformation statistics, and a manager that runs a
// ':'-separated pass pipeline parsed from the MAO command-line syntax
//
//	--mao=LFIND=trace[2]:REDTEST:ASM=o[out.s]
//
// Passes come in two kinds, mirroring the original: function passes,
// invoked once per identified function, and unit passes, which process
// the whole IR (reading input and emitting output are unit passes).
package pass

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mao/internal/ir"
	"mao/internal/memo"
	"mao/internal/relax"
	"mao/internal/trace"
)

// Pass is the common interface of all passes.
type Pass interface {
	// Name is the registry key, canonically upper-case (e.g. "REDTEST").
	Name() string
	// Description is a one-line summary shown by pass listings.
	Description() string
}

// FuncPass is a pass invoked for every function in the unit.
type FuncPass interface {
	Pass
	// RunFunc transforms one function, reporting whether it changed
	// anything.
	RunFunc(ctx *Ctx, f *ir.Function) (changed bool, err error)
}

// UnitPass is a pass invoked once for the whole unit.
type UnitPass interface {
	Pass
	RunUnit(ctx *Ctx) (changed bool, err error)
}

// ParallelSafe marks a FuncPass whose RunFunc reads and mutates only
// the span of the function it is given — no whole-unit relaxation, no
// cross-function state, deterministic output per function. The manager
// fans such passes out across its worker pool; every other FuncPass
// runs function-at-a-time in file order. Passes that consult unit-wide
// layout addresses (LSD, BRALIGN, INSTRUMENT) must not implement it:
// their decisions for one function depend on the sizes of all the
// others, so concurrent mutation would be nondeterministic.
type ParallelSafe interface {
	ParallelSafe() bool
}

func isParallelSafe(p Pass) bool {
	ps, ok := p.(ParallelSafe)
	return ok && ps.ParallelSafe()
}

// Ctx carries everything a pass invocation can reach: the unit, the
// parsed options of this invocation, tracing, and the statistics
// sink.
type Ctx struct {
	Unit  *ir.Unit
	Opts  *Options
	Stats *Stats

	// TraceW receives trace output; nil silences tracing regardless
	// of level.
	TraceW io.Writer

	// Cache is the pipeline's shared relaxation/encoding cache (nil
	// when the manager runs uncached). Passes that relax internally
	// (LOOP16, LSD, BRALIGN, INSTRUMENT) thread it into their
	// relax.Options so repeated layout computations skip re-encoding
	// unchanged instructions.
	Cache *relax.Cache

	// Relax is the invocation's reusable relaxation state. Passes that
	// relax internally thread it into their relax.Options (alongside
	// Cache), so probe loops — relax, edit, relax again — rescan only
	// the fragments each edit touched instead of re-walking the unit.
	// The Ctx mutation helpers keep it notified of edits; a nil state
	// is valid everywhere and simply disables incrementality.
	Relax *relax.State

	ctx       context.Context
	passName  string
	passIndex int
}

// Context returns the context of the pipeline run this invocation
// belongs to (context.Background for programmatic invocations built
// with NewCtx). Long-running passes should poll it and abort early
// when it is done; the manager itself checks it between passes and
// between functions.
func (c *Ctx) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// NewCtx builds a pass invocation context for programmatic invocation
// outside a Manager pipeline — e.g. for passes that need data injected
// on the instance (SIMADDR samples, PREFNTA profiles) before running.
func NewCtx(u *ir.Unit, passName string, opts *Options, stats *Stats) *Ctx {
	return &Ctx{
		Unit: u, Opts: opts, Stats: stats,
		Relax:     relax.NewState(),
		passName:  passName,
		passIndex: -1,
	}
}

// Trace emits a trace record when the invocation's trace level is at
// least level. Every line of the record — including the continuation
// lines of a multi-line payload — carries the "[NAME]" prefix, and the
// whole record is emitted in a single Write. The two together keep
// traces attributable under concurrency: a pass tracing across
// functions from worker goroutines can never interleave partial or
// unprefixed lines into another worker's output, whether it writes to
// the manager's per-function buffer or to a shared writer.
func (c *Ctx) Trace(level int, format string, args ...any) {
	if c.TraceW == nil || c.Opts.TraceLevel() < level {
		return
	}
	msg := fmt.Sprintf(format, args...)
	var b strings.Builder
	for first := true; first || msg != ""; first = false {
		line := msg
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			line, msg = msg[:i], msg[i+1:]
		} else {
			msg = ""
		}
		b.WriteByte('[')
		b.WriteString(c.passName)
		b.WriteString("] ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	io.WriteString(c.TraceW, b.String())
}

// syncWriter serializes Write calls to the manager's trace sink. The
// manager routes every context it hands out through one (or through a
// per-function buffer in the parallel path), so trace records from
// concurrent writers append atomically instead of interleaving.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// Count adds n to the named statistic of the current pass (e.g. the
// number of patterns rewritten — the data behind the paper's Figure 7).
func (c *Ctx) Count(key string, n int) {
	if c.Stats != nil {
		c.Stats.Add(c.passName, key, n)
	}
}

// Stats accumulates per-pass counters across a pipeline run. A Stats
// is not safe for concurrent use; the parallel manager gives every
// worker a private sink and merges them deterministically afterwards
// (counter addition is commutative, so the merged totals are identical
// at any worker count).
type Stats struct {
	counters map[string]map[string]int
}

// NewStats returns an empty statistics sink.
func NewStats() *Stats { return &Stats{counters: make(map[string]map[string]int)} }

// Add increments pass/key by n.
func (s *Stats) Add(pass, key string, n int) {
	m := s.counters[pass]
	if m == nil {
		m = make(map[string]int)
		s.counters[pass] = m
	}
	m[key] += n
}

// Get returns the value of pass/key.
func (s *Stats) Get(pass, key string) int { return s.counters[pass][key] }

// Merge adds every counter of o into s.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	for p, m := range o.counters {
		for k, v := range m {
			s.Add(p, k, v)
		}
	}
}

// Map returns a deep copy of all counters as pass → key → count.
// The snapshot is independent of s (callers may serialize it — e.g.
// the optimization service returns it as the per-request stats JSON —
// while the pipeline keeps counting).
func (s *Stats) Map() map[string]map[string]int {
	out := make(map[string]map[string]int, len(s.counters))
	for p, m := range s.counters {
		cp := make(map[string]int, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[p] = cp
	}
	return out
}

// Total returns the sum of all counters of one pass.
func (s *Stats) Total(pass string) int {
	t := 0
	for _, v := range s.counters[pass] {
		t += v
	}
	return t
}

// String renders all counters deterministically.
func (s *Stats) String() string {
	var passes []string
	for p := range s.counters {
		passes = append(passes, p)
	}
	sort.Strings(passes)
	var b strings.Builder
	for _, p := range passes {
		var keys []string
		for k := range s.counters[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s.%s = %d\n", p, k, s.counters[p][k])
		}
	}
	return b.String()
}

// Options holds one pass invocation's key/value options.
type Options struct{ m map[string]string }

// NewOptions builds an option set from explicit pairs (tests and
// programmatic invocation).
func NewOptions(pairs ...string) *Options {
	o := &Options{m: make(map[string]string)}
	for i := 0; i+1 < len(pairs); i += 2 {
		o.m[pairs[i]] = pairs[i+1]
	}
	return o
}

// String returns the option's value or def when absent.
func (o *Options) String(key, def string) string {
	if o == nil {
		return def
	}
	if v, ok := o.m[key]; ok {
		return v
	}
	return def
}

// Int returns the option parsed as an integer, or def.
func (o *Options) Int(key string, def int) int {
	if o == nil {
		return def
	}
	v, ok := o.m[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// Bool returns the option parsed as a boolean. A key present with no
// value counts as true.
func (o *Options) Bool(key string, def bool) bool {
	if o == nil {
		return def
	}
	v, ok := o.m[key]
	if !ok {
		return def
	}
	if v == "" {
		return true
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def
	}
	return b
}

// TraceLevel returns the invocation's trace level (the "trace[N]"
// option).
func (o *Options) TraceLevel() int { return o.Int("trace", 0) }

// registry of pass factories, guarded by registryMu: built-in passes
// register from init functions, but plugins (cmd/mao -plugin) and
// tests register at arbitrary times, possibly while another goroutine
// resolves a pipeline.
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Pass{}
)

// Register adds a pass factory under its name. It panics on duplicate
// registration (a programming error).
func Register(factory func() Pass) {
	name := factory().Name()
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("pass: duplicate registration of " + name)
	}
	registry[name] = factory
}

// Lookup returns a new instance of the named pass, or nil.
func Lookup(name string) Pass {
	registryMu.RLock()
	f, ok := registry[strings.ToUpper(name)]
	registryMu.RUnlock()
	if ok {
		return f()
	}
	return nil
}

// Names returns all registered pass names, sorted.
func Names() []string {
	registryMu.RLock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	registryMu.RUnlock()
	sort.Strings(out)
	return out
}

// Invocation is one parsed pipeline element: a pass and its options.
type Invocation struct {
	Pass Pass
	Opts *Options
}

// ParsePipeline parses the MAO option syntax "P1=k[v]:P2:P3=k[v],k2[v2]"
// into an ordered pass list. Each pass spec is NAME or NAME=opts where
// opts is a comma-separated list of key[value] (value optional).
func ParsePipeline(spec string) ([]Invocation, error) {
	var out []Invocation
	for _, ps := range splitPipeline(spec) {
		if ps == "" {
			continue
		}
		name, optStr, _ := strings.Cut(ps, "=")
		p := Lookup(name)
		if p == nil {
			return nil, fmt.Errorf("pass: unknown pass %q (known: %s)",
				name, strings.Join(Names(), ", "))
		}
		opts := &Options{m: make(map[string]string)}
		if optStr != "" {
			for _, kv := range strings.Split(optStr, ",") {
				if kv == "" {
					continue
				}
				key, val, err := parseOpt(kv)
				if err != nil {
					return nil, fmt.Errorf("pass %s: %v", name, err)
				}
				opts.m[key] = val
			}
		}
		out = append(out, Invocation{Pass: p, Opts: opts})
	}
	return out, nil
}

// splitPipeline splits on ':' outside of brackets (option values may
// contain path colons, e.g. ASM=o[C:/out.s] never occurs on our
// platforms but robustness is cheap).
func splitPipeline(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
			}
		case ':':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// parseOpt parses "key[value]" or bare "key".
func parseOpt(s string) (key, val string, err error) {
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return "", "", fmt.Errorf("malformed option %q", s)
		}
		return s[:i], s[i+1 : len(s)-1], nil
	}
	return s, "", nil
}

// Hook observes pipeline execution around every pass invocation. The
// static-verification certifier (mao/internal/check) implements it to
// snapshot invariants before each pass and re-check them after; other
// implementations may time passes or log progress. An error from either
// method aborts the pipeline, attributed to the observed invocation.
type Hook interface {
	// BeforePass runs before invocation index of the pipeline.
	BeforePass(u *ir.Unit, name string, index int) error
	// AfterPass runs after the invocation completed successfully.
	AfterPass(u *ir.Unit, name string, index int) error
}

// Hooks composes several Hooks into one: each method runs the
// receivers in order and stops at the first error. It lets a pipeline
// stack the static certifier and the translation validator (or any
// other observers) on the Manager's single Hook field.
type Hooks []Hook

// BeforePass runs every hook's BeforePass in order.
func (hs Hooks) BeforePass(u *ir.Unit, name string, index int) error {
	for _, h := range hs {
		if err := h.BeforePass(u, name, index); err != nil {
			return err
		}
	}
	return nil
}

// AfterPass runs every hook's AfterPass in order.
func (hs Hooks) AfterPass(u *ir.Unit, name string, index int) error {
	for _, h := range hs {
		if err := h.AfterPass(u, name, index); err != nil {
			return err
		}
	}
	return nil
}

// Manager runs a pipeline over a unit.
type Manager struct {
	Pipeline []Invocation
	TraceW   io.Writer

	// Hook, when non-nil, is invoked around every pass invocation.
	// Hooks bracket whole invocations — BeforePass runs before the
	// first function is processed and AfterPass after the last — so
	// per-invocation attribution (the check.Certifier) is unaffected
	// by how the functions inside are scheduled.
	Hook Hook

	// Workers bounds the worker pool that ParallelSafe function
	// passes shard a unit's functions across. 0 selects
	// runtime.GOMAXPROCS(0); 1 forces fully sequential execution.
	// Output and merged statistics are byte-identical at any worker
	// count; only wall-clock time changes.
	Workers int

	// Cache, when non-nil, memoizes position-independent instruction
	// encodings across the relaxations the pipeline (and its passes)
	// perform. The manager enforces the invalidation protocol: after
	// a FuncPass reports changing a function, that function's span is
	// invalidated; after a UnitPass reports a change, the whole node
	// tier is. Run records the per-run hit/miss deltas in the
	// returned Stats under the pseudo-pass RELAXCACHE.
	Cache *relax.Cache

	// RelaxState, when non-nil, carries fragment-based relaxation
	// state across this manager's runs: successive pipelines over the
	// same unit rescan only what changed. It backs the serial contexts
	// of a run (unit passes, non-parallel function passes); parallel
	// workers draw their own states from an internal pool instead,
	// since a State is single-goroutine. A manager with RelaxState set
	// must not run pipelines concurrently.
	RelaxState *relax.State

	// relaxPool recycles per-worker (and, when RelaxState is unset,
	// per-run) relaxation states, so repeated runs through one manager
	// reuse fragment partitions without any sharing across goroutines.
	relaxPool sync.Pool

	// Memo, when non-nil, is the content-addressed per-function
	// pipeline memo (see internal/memo). Before running, the manager
	// fingerprints every function of the unit; if all of them hit, the
	// pipeline is skipped and the memoized optimized spans are spliced
	// in — byte-identical to running cold. After a successful cold run
	// the manager fills the memo. Memoization silently disengages for
	// runs it cannot shortcut faithfully: pipelines with effectful
	// passes (ASM, CHECK) or dump options, managers with a Hook (the
	// certifier must observe every invocation), and units whose runs
	// mutate content outside function spans. Memoized runs report the
	// pseudo-pass MEMO in their Stats instead of per-pass counters.
	Memo *memo.Memo

	// memoState caches the pipeline's memoizability and the
	// repeat-run record backing the version fast path.
	memoState memoState

	// Tracer, when non-nil, collects structured spans: one for the
	// pipeline run, one per pass invocation, and one per function of
	// each function-pass invocation. Span collection is byte- and
	// stats-transparent (output and merged Stats are identical with
	// the tracer on or off, at any worker count) and the disabled-mode
	// cost is a nil check per potential span. Workers record into
	// private storage; the manager adds spans in deterministic
	// (invocation, function) order, so only the recorded times vary
	// between runs.
	Tracer *trace.Collector
}

// NewManager parses a pipeline spec into a runnable manager.
func NewManager(spec string) (*Manager, error) {
	pl, err := ParsePipeline(spec)
	if err != nil {
		return nil, err
	}
	return &Manager{Pipeline: pl}, nil
}

// Run executes the pipeline over u, returning the accumulated
// statistics. It is RunContext with a background context.
//
// Every invocation understands two standard options in addition to its
// own, mirroring the original framework's common base-class
// functionality: dump_before[path] and dump_after[path] write the
// unit's current assembly to the named file (or stderr for an empty
// value) around the pass.
// Errors from a pass (or from a Hook observing it) are wrapped with
// the pass name and its pipeline invocation index — "REDTEST[2]: ..."
// — so failures in long pipelines are attributable to the offending
// invocation.
func (m *Manager) Run(u *ir.Unit) (*Stats, error) {
	return m.RunContext(context.Background(), u)
}

// RunContext is Run under a context: the pipeline aborts between
// passes — and, for function passes, between functions — once ctx is
// done, returning ctx's error wrapped with the invocation that was
// about to run (so errors.Is(err, context.DeadlineExceeded) and
// friends see through it). A unit whose pipeline was aborted is left
// partially transformed but structurally intact; the optimization
// service discards such units rather than emitting them.
func (m *Manager) RunContext(runCtx context.Context, u *ir.Unit) (*Stats, error) {
	if runCtx == nil {
		runCtx = context.Background()
	}
	stats := NewStats()
	baseHits, baseMisses := m.Cache.Counters()

	// Memo consult. The version fast path answers a repeat run over
	// the same, unedited unit without even re-fingerprinting it; the
	// content path computes per-function fingerprints and, when every
	// function hits, splices the memoized spans instead of running the
	// pipeline. Hooked runs bypass the memo entirely: the certifier
	// and validator must observe every invocation.
	var plan *memo.Plan
	memoHit := false
	startVersion := int64(0)
	if m.Memo != nil && m.Hook == nil {
		if s, ok := m.memoFast(u); ok {
			return s, nil
		}
		startVersion = u.List.Version()
		plan = m.memoPlan(u)
	}

	// The relaxation state serial contexts of this run share: the
	// manager's configured one, or a pooled state so repeated runs
	// through the same manager still relax incrementally.
	relaxState := m.RelaxState
	if relaxState == nil {
		relaxState = m.acquireRelax()
		defer m.releaseRelax(relaxState)
	}

	// The trace writer every context of this run shares: nil when
	// tracing is off, otherwise a serializing wrapper so concurrent
	// writers (unit passes running helper goroutines, programmatic
	// sharing) append whole records.
	traceW := io.Writer(nil)
	if m.TraceW != nil {
		traceW = &syncWriter{w: m.TraceW}
	}

	// Root span of the pipeline run, finished on every exit path.
	rootSpan := -1
	if m.Tracer.Enabled() {
		rootSpan = m.Tracer.Add(trace.Span{
			Kind:        trace.KindPipeline,
			Start:       m.Tracer.Now(),
			NodesBefore: u.List.Len(),
			Parent:      -1,
		})
		defer func() {
			end, nodes := m.Tracer.Now(), u.List.Len()
			m.Tracer.Update(rootSpan, func(s *trace.Span) {
				s.Dur = end - s.Start
				s.NodesAfter = nodes
			})
		}()
	}

	if plan != nil {
		if hit, ok := m.Memo.Lookup(plan); ok {
			spliced, err := hit.Splice(u)
			if err != nil {
				return stats, fmt.Errorf("memo: splice: %w", err)
			}
			stats.Add("MEMO", "functions", plan.Functions())
			stats.Add("MEMO", "spliced", spliced)
			memoHit = true
		}
	}

	// A memo hit empties the pipeline for this run: the spliced unit
	// already is the pipeline's output.
	pipeline := m.Pipeline
	if memoHit {
		pipeline = nil
	}
	for idx, inv := range pipeline {
		name := inv.Pass.Name()
		if err := runCtx.Err(); err != nil {
			return stats, fmt.Errorf("%s[%d]: %w", name, idx, err)
		}
		ctx := &Ctx{
			Unit:      u,
			Opts:      inv.Opts,
			Stats:     stats,
			TraceW:    traceW,
			Cache:     m.Cache,
			Relax:     relaxState,
			ctx:       runCtx,
			passName:  name,
			passIndex: idx,
		}
		if err := dumpIR(u, inv, "dump_before"); err != nil {
			return stats, err
		}
		if m.Hook != nil {
			if err := m.Hook.BeforePass(u, name, idx); err != nil {
				return stats, fmt.Errorf("%s[%d]: %w", name, idx, err)
			}
		}

		// Invocation span: added before the pass runs (children refer
		// to it as parent), finished after.
		invSpan := -1
		var invStats *Stats
		if m.Tracer.Enabled() {
			invSpan = m.Tracer.Add(trace.Span{
				Kind:        trace.KindInvocation,
				Ref:         trace.Ref{Pass: name, Index: idx},
				Start:       m.Tracer.Now(),
				NodesBefore: u.List.Len(),
				Parent:      rootSpan,
			})
			// The invocation gets a private stats sink, merged into the
			// run's sink afterwards — counter addition is commutative
			// and ordered, so totals are identical to the untraced run,
			// and the sink's content is exactly this span's delta.
			invStats = NewStats()
			ctx.Stats = invStats
		}
		finishInv := func(changed bool, withStats bool) {
			if invSpan < 0 {
				return
			}
			end, nodes := m.Tracer.Now(), u.List.Len()
			var sm map[string]int
			if withStats {
				sm = invStats.Map()[name]
			}
			m.Tracer.Update(invSpan, func(s *trace.Span) {
				s.Dur = end - s.Start
				s.NodesAfter = nodes
				s.Changed = changed
				s.Stats = sm
			})
			stats.Merge(invStats)
		}

		switch p := inv.Pass.(type) {
		case UnitPass:
			changed, err := p.RunUnit(ctx)
			finishInv(changed, true)
			if err != nil {
				return stats, fmt.Errorf("%s[%d]: %w", name, idx, err)
			}
			if changed {
				m.Cache.InvalidateAll()
			}
		case FuncPass:
			err := m.runFuncPass(runCtx, u, p, ctx, idx, invSpan)
			// Function spans carry the per-function stats; the
			// invocation span only aggregates wall time and IR delta.
			finishInv(false, false)
			if err != nil {
				return stats, err
			}
		default:
			finishInv(false, false)
			return stats, fmt.Errorf("%s[%d]: pass implements neither FuncPass nor UnitPass", name, idx)
		}
		if m.Hook != nil {
			if err := m.Hook.AfterPass(u, name, idx); err != nil {
				return stats, fmt.Errorf("%s[%d]: %w", name, idx, err)
			}
		}
		if err := dumpIR(u, inv, "dump_after"); err != nil {
			return stats, err
		}
	}
	if m.Cache != nil {
		hits, misses := m.Cache.Counters()
		stats.Add("RELAXCACHE", "hits", int(hits-baseHits))
		stats.Add("RELAXCACHE", "misses", int(misses-baseMisses))
	}
	if plan != nil {
		if !memoHit {
			m.Memo.Fill(plan, u)
		}
		// A run that left the unit's version untouched proved the
		// pipeline is a no-op on this content; remember it so repeat
		// runs skip even the fingerprinting.
		if u.List.Version() == startVersion {
			m.memoRemember(u, plan.Functions(), stats)
		} else {
			m.memoForget()
		}
	}
	return stats, nil
}

// acquireRelax takes a relaxation state from the manager's pool.
func (m *Manager) acquireRelax() *relax.State {
	if v := m.relaxPool.Get(); v != nil {
		return v.(*relax.State)
	}
	return relax.NewState()
}

func (m *Manager) releaseRelax(s *relax.State) { m.relaxPool.Put(s) }

// dumpIR implements the dump_before/dump_after standard options.
func dumpIR(u *ir.Unit, inv Invocation, key string) error {
	if _, present := inv.Opts.m[key]; !present {
		return nil
	}
	path := inv.Opts.String(key, "")
	w := io.Writer(os.Stderr)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("pass %s: %s: %w", inv.Pass.Name(), key, err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# IR %s pass %s\n", strings.TrimPrefix(key, "dump_"), inv.Pass.Name())
	_, err := u.WriteTo(w)
	return err
}
