package pass

import "mao/internal/ir"

// This file is the provenance-stamping surface of the pass framework.
// Passes mutate the IR through these Ctx helpers instead of reaching
// into ir.List directly; each helper performs the structural edit and
// stamps the node's ir.Provenance record with this invocation's
// NAME[idx] reference. `mao --explain` and the maod explain=1 response
// render those records as per-instruction lineage.
//
// The stamping is unconditional — a provenance record is two small
// structs behind one pointer, and keeping it always-on means the
// lineage is available after any run, not only specially-instrumented
// ones. Emitted assembly is unaffected (provenance never renders
// outside --explain), which the differential tests pin.
//
// Parallel safety: the helpers only touch the node being edited and
// the unit list (whose structural ops are internally serialized), so
// ParallelSafe passes may call them from worker goroutines exactly as
// they previously called ir.List methods.
//
// The helpers also notify the invocation's relaxation state (Ctx.Relax)
// about every edit, so the next layout computation rescans only the
// fragments the edit touched. Passes that bypass the helpers still get
// correct layouts — the state detects unnotified edits through the
// list's version counter and falls back to a full rebuild — they just
// forfeit the incremental path.

// Ref returns this invocation's reference: the pass name plus its
// pipeline invocation index. Programmatic contexts built with NewCtx
// have index -1 (rendered "NAME[?]").
func (c *Ctx) Ref() ir.PassRef { return ir.PassRef{Pass: c.passName, Index: c.passIndex} }

func (c *Ctx) stampNew(n *ir.Node) *ir.Node {
	ref := c.Ref()
	n.Prov = &ir.Provenance{Origin: ref, LastMut: ref}
	return n
}

// InsertBefore links the freshly synthesized node n into the unit list
// immediately before at and stamps this invocation as its origin and
// last mutator.
func (c *Ctx) InsertBefore(n, at *ir.Node) *ir.Node {
	c.Unit.List.InsertBefore(n, at)
	c.Relax.NodeInserted(n)
	return c.stampNew(n)
}

// InsertAfter links the freshly synthesized node n immediately after
// at and stamps this invocation as its origin and last mutator.
func (c *Ctx) InsertAfter(n, at *ir.Node) *ir.Node {
	c.Unit.List.InsertAfter(n, at)
	c.Relax.NodeInserted(n)
	return c.stampNew(n)
}

// Append links the freshly synthesized node n at the end of the unit
// list and stamps this invocation as its origin and last mutator.
func (c *Ctx) Append(n *ir.Node) *ir.Node {
	c.Unit.List.Append(n)
	c.Relax.NodeInserted(n)
	return c.stampNew(n)
}

// Delete unlinks n from the unit list. A deleted node leaves no
// lineage behind (there is no node to carry it); passes report
// deletions through their statistics counters, which the span of this
// invocation captures.
func (c *Ctx) Delete(n *ir.Node) {
	c.Unit.List.Remove(n)
	c.Relax.NodeRemoved(n)
}

// Rewrite records an in-place mutation of n (opcode or operand
// change): the node keeps its origin — a source line or the pass that
// created it — and this invocation becomes its last mutator. Call it
// after editing n.Inst. The list cannot observe in-place edits itself,
// so Rewrite also bumps its version counter on the node's behalf.
func (c *Ctx) Rewrite(n *ir.Node) {
	if n.Prov == nil {
		n.Prov = &ir.Provenance{}
	}
	n.Prov.LastMut = c.Ref()
	c.Unit.List.BumpVersion()
	c.Relax.NodeMutated(n)
}

// MoveBefore relinks the existing node n immediately before at. The
// node is not new, so its origin is preserved; this invocation becomes
// its last mutator (SCHED's reordering shows up in lineage this way).
func (c *Ctx) MoveBefore(n, at *ir.Node) {
	c.Unit.List.Remove(n)
	c.Relax.NodeRemoved(n)
	c.Unit.List.InsertBefore(n, at)
	c.Relax.NodeInserted(n)
	c.Rewrite(n)
}

// MoveToEnd relinks the existing node n to the end of the unit list,
// preserving origin and stamping this invocation as last mutator.
func (c *Ctx) MoveToEnd(n *ir.Node) {
	c.Unit.List.Remove(n)
	c.Relax.NodeRemoved(n)
	c.Unit.List.Append(n)
	c.Relax.NodeInserted(n)
	c.Rewrite(n)
}
