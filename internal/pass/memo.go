package pass

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mao/internal/ir"
	"mao/internal/memo"
)

// This file wires the content-addressed pipeline memo (internal/memo)
// into the manager. A memoized manager fingerprints the unit's
// functions before running; when every function hits, the pipeline is
// skipped and the memoized optimized spans are spliced in as cloned
// IR — byte-identical to a cold run, which the differential suites
// pin across corpus × specs × worker counts.

// Effectful marks passes whose invocation has effects outside the
// unit's IR — file emission (ASM), diagnostic output (CHECK). Their
// presence in a pipeline disables memoization of the run: skipping
// the pipeline would skip the effect.
type Effectful interface {
	Effectful() bool
}

func isEffectful(p Pass) bool {
	e, ok := p.(Effectful)
	return ok && e.Effectful()
}

// CatalogVersion returns a fingerprint of the registered pass
// catalog. It changes whenever the set of registered passes does, so
// memo keys composed with it can never resurrect results produced by
// a different catalog. (Semantic changes to a pass's implementation
// are covered by the memo package's format version, bumped on
// incompatible changes.)
func CatalogVersion() string {
	h := sha256.New()
	for _, n := range Names() {
		fmt.Fprintf(h, "pass:%d:%s", len(n), n)
	}
	return "catalog/" + hex.EncodeToString(h.Sum(nil))
}

// memoSeen records the outcome of the last memoized run that left the
// unit's content untouched, keyed by the list version. While the
// version is unchanged, re-running the pipeline is provably a no-op
// (every list edit — structural or reported via BumpVersion — bumps
// it; unnotified in-place edits are outside the IR mutation contract,
// exactly as for incremental relaxation), so repeat runs return
// immediately with a copy of the recorded statistics.
type memoSeen struct {
	unit    *ir.Unit
	version int64
	nfns    int
	stats   map[string]map[string]int
}

// memoState is the manager's lazily computed memoization config plus
// the repeat-run record.
type memoState struct {
	once      sync.Once
	signature string // canonical pipeline spec baked into keys
	enabled   bool   // no effectful passes, no dump options
	local     bool   // every pass is a ParallelSafe FuncPass

	mu   sync.Mutex
	last *memoSeen
}

// memoConfig resolves (and caches) whether this pipeline is
// memoizable and in which key mode.
func (m *Manager) memoConfig() (signature string, local, enabled bool) {
	m.memoState.once.Do(func() {
		st := &m.memoState
		st.enabled = true
		st.local = true
		var sig strings.Builder
		for i, inv := range m.Pipeline {
			if isEffectful(inv.Pass) {
				st.enabled = false
				return
			}
			if _, ok := inv.Opts.m["dump_before"]; ok {
				st.enabled = false
				return
			}
			if _, ok := inv.Opts.m["dump_after"]; ok {
				st.enabled = false
				return
			}
			switch inv.Pass.(type) {
			case UnitPass:
				st.local = false
			case FuncPass:
				if !isParallelSafe(inv.Pass) {
					st.local = false
				}
			default:
				st.enabled = false
				return
			}
			if i > 0 {
				sig.WriteByte(':')
			}
			sig.WriteString(inv.Pass.Name())
			keys := make([]string, 0, len(inv.Opts.m))
			for k := range inv.Opts.m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for j, k := range keys {
				if j == 0 {
					sig.WriteByte('=')
				} else {
					sig.WriteByte(',')
				}
				fmt.Fprintf(&sig, "%s[%s]", k, inv.Opts.m[k])
			}
		}
		st.signature = sig.String()
	})
	return m.memoState.signature, m.memoState.local, m.memoState.enabled
}

// memoPlan fingerprints u for this pipeline, or returns nil when the
// run is not memoizable (effectful passes, dump options, hooks, or a
// unit with no functions).
func (m *Manager) memoPlan(u *ir.Unit) *memo.Plan {
	sig, local, enabled := m.memoConfig()
	if !enabled {
		return nil
	}
	return m.Memo.NewPlan(u, sig, local)
}

// memoFast answers a repeat run over the same, unedited unit from the
// last recorded outcome: same unit pointer, same list version — the
// content cannot have changed, so neither can the result.
func (m *Manager) memoFast(u *ir.Unit) (*Stats, bool) {
	st := &m.memoState
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.last == nil || st.last.unit != u || st.last.version != u.List.Version() {
		return nil, false
	}
	m.Memo.CountHits(st.last.nfns)
	out := NewStats()
	for p, kv := range st.last.stats {
		for k, v := range kv {
			out.Add(p, k, v)
		}
	}
	return out, true
}

// memoRemember records this run's outcome for the repeat-run fast
// path. Only runs that left the unit's version untouched qualify —
// the caller checks that.
func (m *Manager) memoRemember(u *ir.Unit, nfns int, stats *Stats) {
	st := &m.memoState
	st.mu.Lock()
	st.last = &memoSeen{unit: u, version: u.List.Version(), nfns: nfns, stats: stats.Map()}
	st.mu.Unlock()
}

// memoForget drops the repeat-run record (the unit changed during the
// run, so the record would never match anyway; dropping it keeps the
// manager from pinning the unit).
func (m *Manager) memoForget() {
	st := &m.memoState
	st.mu.Lock()
	st.last = nil
	st.mu.Unlock()
}
