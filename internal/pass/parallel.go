package pass

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mao/internal/ir"
	"mao/internal/trace"
)

// funcNodeCount counts the nodes of a function's span (including
// interleaved fragments) without allocating — the IR-size figure a
// function span records.
func funcNodeCount(f *ir.Function) int {
	n := 0
	for e := f.EntryLabel(); e != nil; e = e.Next() {
		n++
		if e == f.End() {
			break
		}
	}
	return n
}

// runFuncPass executes one FuncPass invocation over every function of
// the unit, sharding across the manager's worker pool when the pass is
// ParallelSafe. ctx is the invocation's template context (options,
// trace writer, stats sink, invocation index); invSpan is the index of
// the invocation's span when the manager traces (-1 otherwise). The
// results are indistinguishable from sequential execution at any
// worker count:
//
//   - Each worker mutates only its own function spans (the ParallelSafe
//     contract), so the unit's node list ends up byte-identical.
//   - Each function's invocation gets a private Stats sink; they are
//     merged in function order, and counter addition is commutative, so
//     the merged totals match the sequential run exactly.
//   - Trace output is buffered per function and flushed in function
//     order, so traces interleave exactly as they would sequentially.
//   - Trace spans are recorded into the per-function result slot and
//     added to the collector in function order, so the span stream is
//     deterministic; only wall times and worker ids vary.
//   - On failure, the error reported is the one from the lowest-index
//     failing function, wrapped "NAME[idx] on fname" with idx the
//     pipeline invocation index — the same stable attribution the
//     sequential path produces. (Unlike the sequential path, functions
//     after the failing one may already have been transformed; an
//     erroring pipeline leaves the unit in an unspecified state either
//     way.)
//
// Cache coherence: whenever a function's RunFunc reports a change, the
// function's span is invalidated in the manager's relaxation cache
// before the pipeline proceeds.
//
// Cancellation: once runCtx is done no further function is started
// (sequential path) or claimed (parallel path); functions already in
// flight run to completion, and the context error is reported with
// the same "NAME[idx]" attribution as a pass failure.
func (m *Manager) runFuncPass(runCtx context.Context, u *ir.Unit, p FuncPass, ctx *Ctx, idx int, invSpan int) error {
	name := p.Name()
	funcs := u.Functions()
	tracing := m.Tracer.Enabled()

	workers := m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(funcs) {
		workers = len(funcs)
	}

	if workers <= 1 || !isParallelSafe(p) {
		sink := ctx.Stats
		for _, f := range funcs {
			if err := runCtx.Err(); err != nil {
				return fmt.Errorf("%s[%d]: %w", name, idx, err)
			}
			var start time.Duration
			var nodesBefore int
			if tracing {
				// Private per-function sink so the span records its own
				// stats delta; merged immediately after, in order.
				ctx.Stats = NewStats()
				nodesBefore = funcNodeCount(f)
				start = m.Tracer.Now()
			}
			changed, err := p.RunFunc(ctx, f)
			if tracing {
				dur := m.Tracer.Now() - start
				m.Tracer.Add(trace.Span{
					Kind:        trace.KindFunction,
					Ref:         trace.Ref{Pass: name, Index: idx},
					Function:    f.Name,
					Start:       start,
					Dur:         dur,
					NodesBefore: nodesBefore,
					NodesAfter:  funcNodeCount(f),
					Changed:     changed,
					Stats:       ctx.Stats.Map()[name],
					Parent:      invSpan,
				})
				sink.Merge(ctx.Stats)
			}
			if changed {
				m.Cache.InvalidateFunction(f)
			}
			if err != nil {
				return fmt.Errorf("%s[%d] on %s: %w", name, idx, f.Name, err)
			}
		}
		ctx.Stats = sink
		// A cancellation that lands during the last function is still
		// this invocation's error (matching the parallel path), not the
		// next pass's.
		if err := runCtx.Err(); err != nil {
			return fmt.Errorf("%s[%d]: %w", name, idx, err)
		}
		return nil
	}

	// Parallel path: one result slot per function, claimed by index so
	// the work distribution is dynamic but the merge order is fixed.
	type result struct {
		stats   *Stats
		trace   bytes.Buffer
		span    trace.Span
		changed bool
		err     error
	}
	results := make([]result, len(funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Each worker owns one relaxation state for its lifetime (a
			// State is single-goroutine); the pool carries partitions
			// across invocations and runs.
			wRelax := m.acquireRelax()
			defer m.releaseRelax(wRelax)
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(funcs) {
					return
				}
				r := &results[i]
				r.stats = NewStats()
				fctx := &Ctx{
					Unit:      u,
					Opts:      ctx.Opts,
					Stats:     r.stats,
					Cache:     m.Cache,
					Relax:     wRelax,
					ctx:       runCtx,
					passName:  name,
					passIndex: idx,
				}
				if ctx.TraceW != nil {
					fctx.TraceW = &r.trace
				}
				var nodesBefore int
				var start time.Duration
				if tracing {
					nodesBefore = funcNodeCount(funcs[i])
					start = m.Tracer.Now()
				}
				r.changed, r.err = p.RunFunc(fctx, funcs[i])
				if tracing {
					r.span = trace.Span{
						Kind:        trace.KindFunction,
						Ref:         trace.Ref{Pass: name, Index: idx},
						Function:    funcs[i].Name,
						Worker:      worker,
						Start:       start,
						Dur:         m.Tracer.Now() - start,
						NodesBefore: nodesBefore,
						NodesAfter:  funcNodeCount(funcs[i]),
						Changed:     r.changed,
						Parent:      invSpan,
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var firstErr error
	for i, f := range funcs {
		r := &results[i]
		if r.stats == nil {
			continue // never claimed (cancellation)
		}
		if ctx.TraceW != nil && r.trace.Len() > 0 {
			if _, err := ctx.TraceW.Write(r.trace.Bytes()); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s[%d]: trace: %w", name, idx, err)
			}
		}
		if tracing {
			r.span.Stats = r.stats.Map()[name]
			m.Tracer.Add(r.span)
		}
		ctx.Stats.Merge(r.stats)
		if r.changed {
			m.Cache.InvalidateFunction(f)
		}
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s[%d] on %s: %w", name, idx, f.Name, r.err)
		}
	}
	if firstErr == nil {
		if err := runCtx.Err(); err != nil {
			firstErr = fmt.Errorf("%s[%d]: %w", name, idx, err)
		}
	}
	return firstErr
}
