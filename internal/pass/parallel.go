package pass

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mao/internal/ir"
)

// runFuncPass executes one FuncPass invocation over every function of
// the unit, sharding across the manager's worker pool when the pass is
// ParallelSafe. The results are indistinguishable from sequential
// execution at any worker count:
//
//   - Each worker mutates only its own function spans (the ParallelSafe
//     contract), so the unit's node list ends up byte-identical.
//   - Each function's invocation gets a private Stats sink; they are
//     merged in function order, and counter addition is commutative, so
//     the merged totals match the sequential run exactly.
//   - Trace output is buffered per function and flushed in function
//     order, so traces interleave exactly as they would sequentially.
//   - On failure, the error reported is the one from the lowest-index
//     failing function, wrapped "NAME[idx] on fname" with idx the
//     pipeline invocation index — the same stable attribution the
//     sequential path produces. (Unlike the sequential path, functions
//     after the failing one may already have been transformed; an
//     erroring pipeline leaves the unit in an unspecified state either
//     way.)
//
// Cache coherence: whenever a function's RunFunc reports a change, the
// function's span is invalidated in the manager's relaxation cache
// before the pipeline proceeds.
//
// Cancellation: once runCtx is done no further function is started
// (sequential path) or claimed (parallel path); functions already in
// flight run to completion, and the context error is reported with
// the same "NAME[idx]" attribution as a pass failure.
func (m *Manager) runFuncPass(runCtx context.Context, u *ir.Unit, p FuncPass, inv Invocation, idx int, stats *Stats) error {
	name := p.Name()
	funcs := u.Functions()

	workers := m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(funcs) {
		workers = len(funcs)
	}

	if workers <= 1 || !isParallelSafe(p) {
		ctx := &Ctx{
			Unit:     u,
			Opts:     inv.Opts,
			Stats:    stats,
			TraceW:   m.TraceW,
			Cache:    m.Cache,
			ctx:      runCtx,
			passName: name,
		}
		for _, f := range funcs {
			if err := runCtx.Err(); err != nil {
				return fmt.Errorf("%s[%d]: %w", name, idx, err)
			}
			changed, err := p.RunFunc(ctx, f)
			if changed {
				m.Cache.InvalidateFunction(f)
			}
			if err != nil {
				return fmt.Errorf("%s[%d] on %s: %w", name, idx, f.Name, err)
			}
		}
		// A cancellation that lands during the last function is still
		// this invocation's error (matching the parallel path), not the
		// next pass's.
		if err := runCtx.Err(); err != nil {
			return fmt.Errorf("%s[%d]: %w", name, idx, err)
		}
		return nil
	}

	// Parallel path: one result slot per function, claimed by index so
	// the work distribution is dynamic but the merge order is fixed.
	type result struct {
		stats   *Stats
		trace   bytes.Buffer
		changed bool
		err     error
	}
	results := make([]result, len(funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(funcs) {
					return
				}
				r := &results[i]
				r.stats = NewStats()
				ctx := &Ctx{
					Unit:     u,
					Opts:     inv.Opts,
					Stats:    r.stats,
					Cache:    m.Cache,
					ctx:      runCtx,
					passName: name,
				}
				if m.TraceW != nil {
					ctx.TraceW = &r.trace
				}
				r.changed, r.err = p.RunFunc(ctx, funcs[i])
			}
		}()
	}
	wg.Wait()

	var firstErr error
	for i, f := range funcs {
		r := &results[i]
		if m.TraceW != nil && r.trace.Len() > 0 {
			if _, err := m.TraceW.Write(r.trace.Bytes()); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s[%d]: trace: %w", name, idx, err)
			}
		}
		stats.Merge(r.stats)
		if r.changed {
			m.Cache.InvalidateFunction(f)
		}
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s[%d] on %s: %w", name, idx, f.Name, r.err)
		}
	}
	if firstErr == nil {
		if err := runCtx.Err(); err != nil {
			firstErr = fmt.Errorf("%s[%d]: %w", name, idx, err)
		}
	}
	return firstErr
}
