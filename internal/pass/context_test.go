package pass

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"mao/internal/ir"
)

// countFuncPass counts RunFunc invocations; cancelAfter, when > 0,
// cancels the run's context after that many invocations.
type countFuncPass struct {
	name        string
	runs        *atomic.Int64
	cancelAfter int64
	cancel      context.CancelFunc
	parallel    bool
}

func (p *countFuncPass) Name() string        { return p.name }
func (p *countFuncPass) Description() string { return "test func pass counting invocations" }
func (p *countFuncPass) ParallelSafe() bool  { return p.parallel }
func (p *countFuncPass) RunFunc(ctx *Ctx, f *ir.Function) (bool, error) {
	n := p.runs.Add(1)
	if p.cancelAfter > 0 && n == p.cancelAfter {
		p.cancel()
	}
	return false, nil
}

// unitWithFuncs builds a unit with n recognized (empty) functions.
func unitWithFuncs(t *testing.T, n int) *ir.Unit {
	t.Helper()
	u := ir.NewUnit("t.s")
	for i := 0; i < n; i++ {
		name := "f" + string(rune('a'+i))
		u.Append(ir.DirectiveNode(".type", name, "@function"))
		u.Append(ir.LabelNode(name))
		u.Append(ir.DirectiveNode(".size", name+",.-"+name))
	}
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	var runs atomic.Int64
	testRegister(func() Pass { return &countFuncPass{name: "TESTCTX", runs: &runs} })
	mgr, err := NewManager("TESTCTX")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = mgr.RunContext(ctx, unitWithFuncs(t, 3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "TESTCTX[0]:") {
		t.Errorf("error %q lacks invocation attribution", err)
	}
	if runs.Load() != 0 {
		t.Errorf("pass ran %d times under a pre-canceled context", runs.Load())
	}
}

func TestRunContextCancelMidSequential(t *testing.T) {
	var runs atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	testRegister(func() Pass {
		return &countFuncPass{name: "TESTCTXSEQ", runs: &runs, cancelAfter: 2, cancel: cancel}
	})
	mgr, err := NewManager("TESTCTXSEQ")
	if err != nil {
		t.Fatal(err)
	}
	mgr.Workers = 1
	_, err = mgr.RunContext(ctx, unitWithFuncs(t, 8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The canceling invocation completes; no further function starts.
	if got := runs.Load(); got != 2 {
		t.Errorf("ran %d functions, want exactly 2 (cancel point)", got)
	}
}

func TestRunContextCancelMidParallel(t *testing.T) {
	var runs atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	testRegister(func() Pass {
		return &countFuncPass{
			name: "TESTCTXPAR", runs: &runs,
			cancelAfter: 1, cancel: cancel, parallel: true,
		}
	})
	mgr, err := NewManager("TESTCTXPAR")
	if err != nil {
		t.Fatal(err)
	}
	mgr.Workers = 4
	_, err = mgr.RunContext(ctx, unitWithFuncs(t, 16))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "TESTCTXPAR[0]:") {
		t.Errorf("error %q lacks invocation attribution", err)
	}
	// In-flight functions (at most one per worker at the cancel point)
	// finish; the rest are never claimed.
	if got := runs.Load(); got >= 16 {
		t.Errorf("all %d functions ran despite cancellation", got)
	}
}

func TestRunContextStopsBetweenPasses(t *testing.T) {
	var runs atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	testRegister(func() Pass {
		return &countFuncPass{name: "TESTCTXA", runs: &runs, cancelAfter: 1, cancel: cancel}
	})
	testRegister(func() Pass { return &countFuncPass{name: "TESTCTXB", runs: &runs} })
	mgr, err := NewManager("TESTCTXA:TESTCTXB")
	if err != nil {
		t.Fatal(err)
	}
	mgr.Workers = 1
	_, err = mgr.RunContext(ctx, unitWithFuncs(t, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "TESTCTXA[0]:") {
		t.Errorf("cancellation attributed to %q, want the pass whose run canceled", err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("second pass ran despite cancellation (total runs %d)", got)
	}
}

func TestCtxContextDefaultsToBackground(t *testing.T) {
	ctx := NewCtx(ir.NewUnit("t.s"), "P", NewOptions(), NewStats())
	if ctx.Context() != context.Background() {
		t.Error("NewCtx context is not Background")
	}
}

func TestStatsMapSnapshot(t *testing.T) {
	s := NewStats()
	s.Add("A", "x", 2)
	m := s.Map()
	s.Add("A", "x", 3)
	if m["A"]["x"] != 2 {
		t.Errorf("snapshot mutated: %v", m)
	}
	if s.Get("A", "x") != 5 {
		t.Errorf("source wrong: %d", s.Get("A", "x"))
	}
}
