package pass

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"mao/internal/ir"
)

type fakePass struct {
	name string
	ran  *[]string
}

func (f *fakePass) Name() string        { return f.name }
func (f *fakePass) Description() string { return "test pass" }
func (f *fakePass) RunUnit(ctx *Ctx) (bool, error) {
	*f.ran = append(*f.ran, f.name+"/"+ctx.Opts.String("o", ""))
	ctx.Count("runs", 1)
	return false, nil
}

// testRegister (re)binds a test-pass factory, overwriting any earlier
// binding of the same name so tests survive -count=N re-runs in one
// process (each run registers fresh closures).
func testRegister(factory func() Pass) {
	name := factory().Name()
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = factory
}

func TestRegistryAndPipeline(t *testing.T) {
	var fakeRan []string
	testRegister(func() Pass { return &fakePass{"TESTA", &fakeRan} })
	testRegister(func() Pass { return &fakePass{"TESTB", &fakeRan} })
	ran := &fakeRan

	mgr, err := NewManager("TESTA=o[x]:TESTB:TESTA=o[y],trace[2]")
	if err != nil {
		t.Fatal(err)
	}
	u := ir.NewUnit("t.s")
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	stats, err := mgr.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"TESTA/x", "TESTB/", "TESTA/y"}
	if strings.Join(*ran, " ") != strings.Join(want, " ") {
		t.Errorf("ran %v, want %v", *ran, want)
	}
	if stats.Get("TESTA", "runs") != 2 || stats.Get("TESTB", "runs") != 1 {
		t.Errorf("stats wrong:\n%s", stats)
	}
}

func TestUnknownPass(t *testing.T) {
	if _, err := NewManager("NOSUCHPASS"); err == nil {
		t.Error("unknown pass accepted")
	}
}

func TestOptionTypes(t *testing.T) {
	invs, err := ParsePipeline("TESTA=trace[3],flag,count[42],b[false]")
	if err != nil {
		t.Fatal(err)
	}
	o := invs[0].Opts
	if o.TraceLevel() != 3 {
		t.Errorf("trace = %d", o.TraceLevel())
	}
	if !o.Bool("flag", false) {
		t.Error("bare option must read as true")
	}
	if o.Int("count", 0) != 42 {
		t.Error("int option wrong")
	}
	if o.Bool("b", true) {
		t.Error("b[false] must be false")
	}
	if o.String("missing", "d") != "d" {
		t.Error("default not returned")
	}
}

func TestTraceRespectsLevel(t *testing.T) {
	var sb strings.Builder
	ctx := &Ctx{Opts: NewOptions("trace", "1"), TraceW: &sb, passName: "P"}
	ctx.Trace(1, "visible %d", 1)
	ctx.Trace(2, "hidden")
	out := sb.String()
	if !strings.Contains(out, "visible 1") || strings.Contains(out, "hidden") {
		t.Errorf("trace output wrong: %q", out)
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	s.Add("B", "x", 2)
	s.Add("A", "y", 1)
	s.Add("B", "x", 3)
	out := s.String()
	if !strings.Contains(out, "A.y = 1") || !strings.Contains(out, "B.x = 5") {
		t.Errorf("stats output: %q", out)
	}
	if s.Total("B") != 5 {
		t.Errorf("Total = %d", s.Total("B"))
	}
}

func TestParsePipelineMalformed(t *testing.T) {
	testRegister(func() Pass { var r []string; return &fakePass{"TESTC", &r} })
	if _, err := ParsePipeline("TESTC=bad[unterminated"); err == nil {
		t.Error("malformed option accepted")
	}
}

type failPass struct {
	name string
	err  error
}

func (f *failPass) Name() string               { return f.name }
func (f *failPass) Description() string        { return "test pass that fails" }
func (f *failPass) RunUnit(*Ctx) (bool, error) { return false, f.err }

type failFuncPass struct {
	name string
	err  error
}

func (f *failFuncPass) Name() string        { return f.name }
func (f *failFuncPass) Description() string { return "test func pass that fails" }
func (f *failFuncPass) RunFunc(_ *Ctx, fn *ir.Function) (bool, error) {
	return false, f.err
}

// unitWithFunc builds a unit containing one recognized function.
func unitWithFunc(t *testing.T, name string) *ir.Unit {
	t.Helper()
	u := ir.NewUnit("t.s")
	u.Append(ir.DirectiveNode(".type", name, "@function"))
	u.Append(ir.LabelNode(name))
	u.Append(ir.DirectiveNode(".size", name+",.-"+name))
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestErrorWrappedWithInvocation(t *testing.T) {
	base := errors.New("boom")
	var ran []string
	testRegister(func() Pass { return &fakePass{"TESTOK", &ran} })
	testRegister(func() Pass { return &failPass{"TESTFAIL", base} })

	mgr, err := NewManager("TESTOK:TESTOK:TESTFAIL")
	if err != nil {
		t.Fatal(err)
	}
	u := ir.NewUnit("t.s")
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Run(u)
	if err == nil {
		t.Fatal("failing pipeline succeeded")
	}
	if !strings.Contains(err.Error(), "TESTFAIL[2]:") {
		t.Errorf("error %q lacks pass name and invocation index", err)
	}
	if !errors.Is(err, base) {
		t.Error("wrapped error lost the cause chain")
	}
}

func TestFuncPassErrorNamesFunction(t *testing.T) {
	base := errors.New("bad function")
	testRegister(func() Pass { return &failFuncPass{"TESTFFAIL", base} })
	mgr, err := NewManager("TESTFFAIL")
	if err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Run(unitWithFunc(t, "myfunc"))
	if err == nil {
		t.Fatal("failing pipeline succeeded")
	}
	if !strings.Contains(err.Error(), "TESTFFAIL[0] on myfunc:") {
		t.Errorf("error %q lacks pass, index and function", err)
	}
	if !errors.Is(err, base) {
		t.Error("wrapped error lost the cause chain")
	}
}

// recordHook records hook callbacks and optionally fails.
type recordHook struct {
	calls     []string
	failAfter string // pass name whose AfterPass errors
}

func (h *recordHook) BeforePass(u *ir.Unit, name string, index int) error {
	h.calls = append(h.calls, fmt.Sprintf("before %s[%d]", name, index))
	return nil
}

func (h *recordHook) AfterPass(u *ir.Unit, name string, index int) error {
	h.calls = append(h.calls, fmt.Sprintf("after %s[%d]", name, index))
	if name == h.failAfter {
		return errors.New("invariant broken")
	}
	return nil
}

func TestHookObservesEveryInvocation(t *testing.T) {
	var ran []string
	testRegister(func() Pass { return &fakePass{"TESTHOOK", &ran} })
	mgr, err := NewManager("TESTHOOK:TESTHOOK")
	if err != nil {
		t.Fatal(err)
	}
	h := &recordHook{}
	mgr.Hook = h
	u := ir.NewUnit("t.s")
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(u); err != nil {
		t.Fatal(err)
	}
	want := "before TESTHOOK[0] after TESTHOOK[0] before TESTHOOK[1] after TESTHOOK[1]"
	if got := strings.Join(h.calls, " "); got != want {
		t.Errorf("hook calls = %q, want %q", got, want)
	}
}

func TestHookErrorAttributed(t *testing.T) {
	var ran []string
	testRegister(func() Pass { return &fakePass{"TESTHOOKF", &ran} })
	mgr, err := NewManager("TESTHOOKF")
	if err != nil {
		t.Fatal(err)
	}
	mgr.Hook = &recordHook{failAfter: "TESTHOOKF"}
	u := ir.NewUnit("t.s")
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Run(u)
	if err == nil || !strings.Contains(err.Error(), "TESTHOOKF[0]: invariant broken") {
		t.Errorf("hook error not attributed: %v", err)
	}
}

func TestDumpOptions(t *testing.T) {
	testRegister(func() Pass { var r []string; return &fakePass{"TESTDUMP", &r} })
	dir := t.TempDir()
	before := dir + "/before.s"
	after := dir + "/after.s"
	mgr, err := NewManager("TESTDUMP=dump_before[" + before + "],dump_after[" + after + "]")
	if err != nil {
		t.Fatal(err)
	}
	u := ir.NewUnit("t.s")
	u.Append(ir.LabelNode("x"))
	if err := u.Analyze(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(u); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{before, after} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("dump %s missing: %v", path, err)
		}
		if !strings.Contains(string(b), "x:") {
			t.Errorf("dump %s lacks IR content:\n%s", path, b)
		}
	}
}
