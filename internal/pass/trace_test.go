package pass

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mao/internal/ir"
	"mao/internal/trace"
	"mao/internal/x86"
)

// mlFake traces a multi-line payload per function — the regression
// surface for the continuation-line prefix fix.
type mlFake struct{}

func (*mlFake) Name() string        { return "MLFAKE" }
func (*mlFake) Description() string { return "test: multi-line tracer" }
func (*mlFake) ParallelSafe() bool  { return true }
func (*mlFake) RunFunc(ctx *Ctx, f *ir.Function) (bool, error) {
	ctx.Trace(1, "%s begin\n  detail a\n  detail b", f.Name)
	return false, nil
}

// TestTraceMultilinePrefix: every line of a multi-line trace record —
// including continuation lines — carries the "[NAME]" prefix, at any
// worker count.
func TestTraceMultilinePrefix(t *testing.T) {
	for _, workers := range []int{1, 8} {
		u := genUnit(t, 16)
		var buf bytes.Buffer
		m := &Manager{
			Pipeline: []Invocation{{Pass: &mlFake{}, Opts: NewOptions("trace", "1")}},
			TraceW:   &buf,
			Workers:  workers,
		}
		if _, err := m.Run(u); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		if len(lines) != 16*3 {
			t.Fatalf("workers=%d: got %d trace lines, want %d", workers, len(lines), 16*3)
		}
		for _, l := range lines {
			if !strings.HasPrefix(l, "[MLFAKE] ") {
				t.Errorf("workers=%d: unprefixed trace line %q", workers, l)
			}
		}
	}
}

// goroutineTracer is a UnitPass whose RunUnit traces concurrently from
// several goroutines through the same Ctx — the shared-writer
// interleaving scenario the syncWriter fix addresses.
type goroutineTracer struct{}

func (*goroutineTracer) Name() string        { return "GOTRACE" }
func (*goroutineTracer) Description() string { return "test: concurrent unit-pass tracer" }
func (p *goroutineTracer) RunUnit(ctx *Ctx) (bool, error) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx.Trace(1, "g%d record %d\ncontinued %d", g, i, i)
			}
		}(g)
	}
	wg.Wait()
	return false, nil
}

// TestTraceConcurrentWritersWholeRecords: records written concurrently
// to the manager's shared trace sink never interleave partially — each
// record's two lines are adjacent and every line is prefixed.
func TestTraceConcurrentWritersWholeRecords(t *testing.T) {
	u := genUnit(t, 1)
	var buf bytes.Buffer
	m := &Manager{
		Pipeline: []Invocation{{Pass: &goroutineTracer{}, Opts: NewOptions("trace", "1")}},
		TraceW:   &buf,
	}
	if _, err := m.Run(u); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8*50*2 {
		t.Fatalf("got %d trace lines, want %d", len(lines), 8*50*2)
	}
	for i := 0; i < len(lines); i += 2 {
		var g, n int
		if _, err := fmt.Sscanf(lines[i], "[GOTRACE] g%d record %d", &g, &n); err != nil {
			t.Fatalf("line %d: malformed record start %q", i, lines[i])
		}
		want := fmt.Sprintf("[GOTRACE] continued %d", n)
		if lines[i+1] != want {
			t.Fatalf("line %d: record interleaved: %q then %q (want %q)",
				i, lines[i], lines[i+1], want)
		}
	}
}

// normalize zeroes the per-run nondeterministic span fields (wall
// times, worker ids), leaving everything the determinism contract pins.
func normalize(spans []trace.Span) []trace.Span {
	out := make([]trace.Span, len(spans))
	copy(out, spans)
	for i := range out {
		out[i].Start, out[i].Dur, out[i].Worker = 0, 0, 0
	}
	return out
}

func runTraced(t *testing.T, workers int) (string, *Stats, []trace.Span) {
	t.Helper()
	u := genUnit(t, 9)
	col := trace.NewCollector()
	m := &Manager{
		Pipeline: []Invocation{
			{Pass: &parFake{}, Opts: NewOptions()},
			{Pass: &parFake{}, Opts: NewOptions()},
		},
		Workers: workers,
		Tracer:  col,
	}
	stats, err := m.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	return u.String(), stats, col.Spans()
}

// TestSpanDeterminism: the span stream (modulo times and worker ids)
// is identical at any worker count, and its hierarchy is
// pipeline → invocation → function in (invocation, function) order.
func TestSpanDeterminism(t *testing.T) {
	_, _, base := runTraced(t, 1)

	// 1 pipeline + 2 invocations + 2×9 functions.
	if len(base) != 1+2+18 {
		t.Fatalf("got %d spans, want %d", len(base), 1+2+18)
	}
	if base[0].Kind != trace.KindPipeline || base[0].Parent != -1 {
		t.Fatalf("span 0 not pipeline root: %+v", base[0])
	}
	for inv := 0; inv < 2; inv++ {
		is := base[1+inv*10]
		if is.Kind != trace.KindInvocation || is.Parent != 0 ||
			is.Ref.Pass != "PARFAKE" || is.Ref.Index != inv {
			t.Fatalf("invocation span %d wrong: %+v", inv, is)
		}
		for f := 0; f < 9; f++ {
			fs := base[2+inv*10+f]
			if fs.Kind != trace.KindFunction || fs.Parent != 1+inv*10 {
				t.Fatalf("function span inv=%d f=%d wrong: %+v", inv, f, fs)
			}
			if want := fmt.Sprintf("f%d", f); fs.Function != want {
				t.Fatalf("function span order: got %q, want %q", fs.Function, want)
			}
			if !fs.Changed || fs.Stats["nops"] != 1 {
				t.Fatalf("function span missing stats: %+v", fs)
			}
			if fs.NodesAfter != fs.NodesBefore+1 {
				t.Fatalf("function span IR delta wrong: %+v", fs)
			}
		}
	}

	for _, workers := range []int{2, 8} {
		_, _, spans := runTraced(t, workers)
		if !reflect.DeepEqual(normalize(base), normalize(spans)) {
			t.Errorf("workers=%d: span stream differs from sequential", workers)
		}
	}
}

// TestTracerTransparency: enabling the tracer changes neither the
// emitted assembly nor the merged statistics, at any worker count.
func TestTracerTransparency(t *testing.T) {
	for _, workers := range []int{1, 8} {
		plain := func() (string, *Stats) {
			u := genUnit(t, 9)
			m := &Manager{
				Pipeline: []Invocation{{Pass: &parFake{}, Opts: NewOptions()}},
				Workers:  workers,
			}
			stats, err := m.Run(u)
			if err != nil {
				t.Fatal(err)
			}
			return u.String(), stats
		}
		baseOut, baseStats := plain()
		tracedOut, tracedStats, _ := func() (string, *Stats, []trace.Span) {
			u := genUnit(t, 9)
			m := &Manager{
				Pipeline: []Invocation{{Pass: &parFake{}, Opts: NewOptions()}},
				Workers:  workers,
				Tracer:   trace.NewCollector(),
			}
			stats, err := m.Run(u)
			if err != nil {
				t.Fatal(err)
			}
			return u.String(), stats, m.Tracer.Spans()
		}()
		if tracedOut != baseOut {
			t.Errorf("workers=%d: tracer changed emitted assembly", workers)
		}
		if tracedStats.String() != baseStats.String() {
			t.Errorf("workers=%d: tracer changed stats:\n%s\nvs\n%s",
				workers, tracedStats, baseStats)
		}
	}
}

// provFake exercises every provenance helper: inserts a nop (origin
// stamp), rewrites the first mov (last-mutator stamp), deletes nothing.
type provFake struct{}

func (*provFake) Name() string        { return "PROVFAKE" }
func (*provFake) Description() string { return "test: provenance stamper" }
func (*provFake) ParallelSafe() bool  { return true }
func (p *provFake) RunFunc(ctx *Ctx, f *ir.Function) (bool, error) {
	insts := f.Instructions()
	if len(insts) == 0 {
		return false, nil
	}
	nop := x86.NewInst(x86.Mnem{Op: x86.OpNOP})
	ctx.InsertBefore(ir.InstNode(nop), insts[0])
	ctx.Rewrite(insts[0])
	return true, nil
}

// TestProvenanceStamping: synthesized nodes carry Origin=LastMut=
// NAME[idx]; rewritten source nodes keep a zero Origin (their source
// line) and gain LastMut; untouched nodes carry no record at all.
func TestProvenanceStamping(t *testing.T) {
	for _, workers := range []int{1, 8} {
		u := genUnit(t, 4)
		m := &Manager{
			Pipeline: []Invocation{{Pass: &provFake{}, Opts: NewOptions()}},
			Workers:  workers,
		}
		if _, err := m.Run(u); err != nil {
			t.Fatal(err)
		}
		want := ir.PassRef{Pass: "PROVFAKE", Index: 0}
		var synthesized, rewritten, untouched int
		for n := u.List.Front(); n != nil; n = n.Next() {
			switch {
			case n.Prov == nil:
				untouched++
			case n.Prov.Origin == want && n.Prov.LastMut == want && n.Line == 0:
				synthesized++
			case n.Prov.Origin.IsZero() && n.Prov.LastMut == want && n.Line > 0:
				rewritten++
			default:
				t.Fatalf("workers=%d: unexpected provenance %+v on %v (line %d)",
					workers, n.Prov, n, n.Line)
			}
		}
		if synthesized != 4 || rewritten != 4 {
			t.Fatalf("workers=%d: synthesized=%d rewritten=%d, want 4/4",
				workers, synthesized, rewritten)
		}
		if untouched == 0 {
			t.Fatalf("workers=%d: no untouched nodes left", workers)
		}
		if got := want.String(); got != "PROVFAKE[0]" {
			t.Fatalf("PassRef.String() = %q", got)
		}
	}
}

// noopPass does nothing — the span-overhead benchmark's unit of work,
// so the benchmark measures pure framework cost.
type noopPass struct{}

func (*noopPass) Name() string                             { return "NOOP" }
func (*noopPass) Description() string                      { return "test: no-op" }
func (*noopPass) ParallelSafe() bool                       { return true }
func (*noopPass) RunFunc(*Ctx, *ir.Function) (bool, error) { return false, nil }

// BenchmarkSpanOverhead compares a pipeline run with the tracer
// disabled (nil Collector — the production default) against one
// collecting spans. The disabled case must stay within noise of the
// pre-tracing framework: its per-span cost is a nil check.
func BenchmarkSpanOverhead(b *testing.B) {
	u := genUnit(b, 32)
	pipeline := []Invocation{
		{Pass: &noopPass{}, Opts: NewOptions()},
		{Pass: &noopPass{}, Opts: NewOptions()},
		{Pass: &noopPass{}, Opts: NewOptions()},
		{Pass: &noopPass{}, Opts: NewOptions()},
	}
	b.Run("disabled", func(b *testing.B) {
		m := &Manager{Pipeline: pipeline, Workers: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Run(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := &Manager{Pipeline: pipeline, Workers: 1, Tracer: trace.NewCollector()}
			if _, err := m.Run(u); err != nil {
				b.Fatal(err)
			}
		}
	})
}
