// Package experiments implements every table and figure reproduction
// from the paper, as named experiments shared by cmd/maobench and the
// repository's benchmark suite. Each experiment prints a paper-style
// table; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mao/internal/asm"
	"mao/internal/bench"
	"mao/internal/cfg"
	"mao/internal/corpus"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/passes"
	"mao/internal/relax"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
	"mao/internal/uarch/sim"
	"mao/internal/x86"
)

// Experiment is one reproducible paper result.
type Experiment struct {
	Name  string
	Title string
	Run   func(w io.Writer, scale float64) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig1-nop", "Figure 1: high-impact NOP in the mcf hot loop", Fig1NOP},
		{"relax", "Section II: repeated relaxation example", RelaxExample},
		{"cfg-indirect", "Section II: indirect-branch resolution (246/320 -> 4/320)", CFGIndirect},
		{"counts-static", "Section III-B: static pattern counts on the core library", StaticCounts},
		{"fig45-lsd", "Figures 4/5: LSD decode-line fitting (2x)", Fig45LSD},
		{"sched-hash", "Section III-F: hashing microbenchmark scheduling", SchedHash},
		{"eon-regress", "Section V-B: 252.eon regressions (NOPIN/NOPKILL/REDTEST)", EonRegress},
		{"loop16-core2", "Section V-B: LOOP16 on the Core-2 model", Loop16Core2},
		{"loop16-opteron", "Section V-B: LOOP16 on the Opteron model", Loop16Opteron},
		{"spec2006-opteron", "Section V-B: REDMOV/REDTEST/NOPKILL on SPEC2006 (Opteron)", Spec2006Opteron},
		{"sched-suite", "Section V-B: SCHED across SPEC2006", SchedSuite},
		{"fig7-aggregate", "Figure 7: transformation counts and aggregate performance", Fig7Aggregate},
		{"nopkill-size", "Section III-E.j: NOPKILL code-size effect (~1%)", NopKillSize},
		{"simaddr-gain", "Section III-E.m: address-sample multiplication (4.1-6.3x)", SimAddrGain},
		{"instrument", "Section III-E.l: instrumentation-point overhead", Instrument},
		{"compile-time", "Section V-A: MAO pipeline vs parse-only time", CompileTime},
		{"bralign", "Section III-C.g: branch-alias separation (image benchmark, 3%)", BrAlign},
		{"prefnta", "Section III-E.k: inverse prefetching end-to-end", PrefNTA},
		{"nopin-p4", "Section III-E.i: Nopinizer blind search on the P4 model", NopinP4},
		{"ablations", "DESIGN.md ablations: LSD, predictor shift, forwarding, cost functions, relaxation", Ablations},
	}
}

// Find returns the named experiment, or nil.
func Find(name string) *Experiment {
	for _, e := range All() {
		if e.Name == name {
			return &e
		}
	}
	return nil
}

// measureSrc assembles, optionally optimizes, and simulates a source
// string.
func measureSrc(src, pipeline, entry string, model *uarch.CPUModel) (*sim.Counters, error) {
	u, err := asm.ParseString("exp.s", src)
	if err != nil {
		return nil, err
	}
	if _, err := bench.Optimize(u, pipeline); err != nil {
		return nil, err
	}
	c, _, _, err := bench.Measure(u, entry, model)
	return c, err
}

// ---------------------------------------------------------------------------

// Fig1NOP reproduces the paper's introduction example: inserting a
// single NOP right before .L5 in the twice-unrolled 181.mcf hot loop
// speeds the loop up (~5% on the authors' Core-2 silicon, attributed
// to an undocumented branch-predictor structure). On the simulated
// Core-2 the same insertion helps through a different but equally
// cliff-like front-end mechanism: the one-byte shift changes which
// instructions straddle 16-byte fetch-line boundaries, repacking the
// decode groups and saving a cycle per iteration. Either way the
// paper's headline stands — one NOP, a measurable speedup, and no way
// for a conventional compiler to see it.
func Fig1NOP(w io.Writer, scale float64) error {
	prog := func(nop string) string {
		return `
	.text
	.type f,@function
f:
	leaq buf(%rip), %rdi
	leaq out(%rip), %rsi
	movl $6000, %r10d
	.p2align 5
.Louter:
	cmpl $0, %r10d
	jle .Ldone
	movl $4, %r9d
	xorl %r8d, %r8d
	nop
	nop
	nop
.L3:
	movsbl 1(%rdi,%r8,4), %edx
	movsbl (%rdi,%r8,4), %eax
	movl %edx, (%rsi,%r8,4)
	addq $1, %r8
` + nop + `.L5:
	movsbl 1(%rdi,%r8,4), %edx
	movsbl (%rdi,%r8,4), %eax
	movl %edx, (%rsi,%r8,4)
	addq $1, %r8
	cmpl %r8d, %r9d
	jg .L3
	decl %r10d
	jmp .Louter
.Ldone:
	ret
	.size f,.-f
	.data
buf:
	.zero 16384
out:
	.zero 16384
`
	}
	model := uarch.Core2()
	without, err := measureSrc(prog(""), "", "f", model)
	if err != nil {
		return err
	}
	with, err := measureSrc(prog("\tnop\n"), "", "f", model)
	if err != nil {
		return err
	}
	d := bench.DeltaPct(without, with)
	fmt.Fprintf(w, "Figure 1 (mcf unrolled loop, Core-2 model):\n")
	fmt.Fprintf(w, "  without nop: %8d cycles (%d mispredicts, %d lines)\n",
		without.Cycles, without.Mispredicts, without.DecodeLines)
	fmt.Fprintf(w, "  with nop:    %8d cycles (%d mispredicts, %d lines)\n",
		with.Cycles, with.Mispredicts, with.DecodeLines)
	fmt.Fprintf(w, "  speedup from inserting one nop: %+.2f%%  (paper: ~5%%)\n", d)
	return nil
}

// RelaxExample prints the Section II relaxation listings byte-for-byte.
func RelaxExample(w io.Writer, scale float64) error {
	src := `
	push %rbp
	mov %rsp,%rbp
	movl $0x5,-0x4(%rbp)
	jmp .Lcheck
.Lbody:
	addl $0x1,-0x4(%rbp)
	subl $0x1,-0x4(%rbp)
	.skip 119
.Lcheck:
	cmpl $0x0,-0x4(%rbp)
	jne .Lbody
`
	show := func(title, text string) error {
		u, err := asm.ParseString("relax.s", text)
		if err != nil {
			return err
		}
		layout, err := relax.Relax(u, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (relaxation converged in %d iterations):\n", title, layout.Iterations)
		for n := u.List.Front(); n != nil; n = n.Next() {
			if n.Kind != ir.NodeInst {
				continue
			}
			fmt.Fprintf(w, "  %4x: %-24x %s\n", layout.Addr(n), layout.Bytes(n), n.Inst)
		}
		return nil
	}
	if err := show("before nop insertion", src); err != nil {
		return err
	}
	return show("after nop insertion", strings.Replace(src, ".Lcheck:", "\tnop\n.Lcheck:", 1))
}

// CFGIndirect reproduces the indirect-branch resolution story: with
// only the direct jump-table pattern most branches are unresolved;
// adding the reaching-definition pattern leaves ~1.2%.
func CFGIndirect(w io.Writer, scale float64) error {
	u, err := bench.Prepare(corpus.CoreLibrary(scale))
	if err != nil {
		return err
	}
	count := func(useDataflow bool) (resolved, unresolved int) {
		for _, f := range u.Functions() {
			g := cfg.BuildWith(f, cfg.Options{ResolveWithDataflow: useDataflow})
			unresolved += len(g.Unresolved)
			resolved += indirectCount(f) - len(g.Unresolved)
		}
		return
	}
	total := 0
	for _, f := range u.Functions() {
		total += indirectCount(f)
	}
	_, u1 := count(false)
	_, u2 := count(true)
	fmt.Fprintf(w, "indirect branches in corpus:            %4d (paper: 320)\n", total)
	fmt.Fprintf(w, "unresolved with direct pattern only:    %4d (paper: 246)\n", u1)
	fmt.Fprintf(w, "unresolved with reaching-defs pattern:  %4d (paper: 4, 1.2%%)\n", u2)
	if total > 0 {
		fmt.Fprintf(w, "residual rate:                          %4.1f%%\n",
			float64(u2)/float64(total)*100)
	}
	return nil
}

// StaticCounts reproduces the Section III-B pattern counts.
func StaticCounts(w io.Writer, scale float64) error {
	u, err := bench.Prepare(corpus.CoreLibrary(scale))
	if err != nil {
		return err
	}
	totalTests := 0
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if n.Inst.Op == x86.OpTEST {
				totalTests++
			}
		}
	}
	stats, err := bench.Optimize(u, "REDZEXT:REDTEST:REDMOV:ADDADD")
	if err != nil {
		return err
	}
	redT := stats.Get("REDTEST", "removed")
	fmt.Fprintf(w, "scale %.3f of the paper's core library:\n", scale)
	fmt.Fprintf(w, "  redundant zero-extensions removed: %6d (paper: ~1000)\n",
		stats.Get("REDZEXT", "removed"))
	fmt.Fprintf(w, "  test instructions total:           %6d (paper: 79763)\n", totalTests)
	pct := 0.0
	if totalTests > 0 {
		pct = float64(redT) / float64(totalTests) * 100
	}
	fmt.Fprintf(w, "  redundant tests removed:           %6d = %.1f%% (paper: 19272 = 24%%)\n", redT, pct)
	fmt.Fprintf(w, "  repeated loads rewritten/removed:  %6d (paper: 13362)\n",
		stats.Get("REDMOV", "rewritten")+stats.Get("REDMOV", "removed"))
	fmt.Fprintf(w, "  add/add chains folded:             %6d\n", stats.Get("ADDADD", "folded"))
	return nil
}

// Fig45LSD reproduces the Figure 4/5 experiment: a three-block loop
// spanning six decode lines, then shifted by NOP insertion to span
// four, reproducing the ~2x LSD speedup.
func Fig45LSD(w io.Writer, scale float64) error {
	limit := 3000 + int(300000*scale)
	prog := func(pad int) string {
		var b strings.Builder
		b.WriteString("\t.text\n\t.type f,@function\nf:\n")
		b.WriteString("\tmovl $3000, %r10d\n\tmovl $1, %ecx\n")
		b.WriteString("\t.p2align 5\n")
		for i := 0; i < pad; i++ {
			b.WriteString("\tnop\n")
		}
		// The paper's three-basic-block loop (Figure 4: l0/l1/l2 with
		// two internal forward branches and a backward jl), sized to
		// span 6 decode lines as placed and 4 when shifted by 6 nops.
		b.WriteString(`
.L0:
	cmpl %r14d, %edx
	jne .L1
	addl $100000, %ebx
	addl $9, %esi
	.p2align 3
.L1:
	addl $7, %r9d
	movl %r14d, %edx
	addl $100000, %edi
	cmpl %edx, %ecx
	jne .L2
	addl $100000, %r15d
	.p2align 3
.L2:
	addl $1, %r10d
	addl $9, %r8d
	addl $1, %esi
	addl $1, %r14d
	cmpl $LIMIT, %r10d
	jl .L0
	ret
	.size f,.-f
`)
		return strings.Replace(b.String(), "$LIMIT", fmt.Sprintf("$%d", limit), 1)
	}
	model := uarch.Core2()
	bad, err := measureSrc(prog(12), "", "f", model)
	if err != nil {
		return err
	}
	good, err := measureSrc(prog(12+6), "", "f", model)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4 layout (straddling): %8d cycles, LSD uops %d\n", bad.Cycles, bad.LSDUops)
	fmt.Fprintf(w, "Figure 5 layout (+6 nops):    %8d cycles, LSD uops %d\n", good.Cycles, good.LSDUops)
	fmt.Fprintf(w, "speedup: %.2fx (paper: ~2x)\n", float64(bad.Cycles)/float64(good.Cycles))
	return nil
}

// SchedHash reproduces the hashing-microbenchmark scheduling result.
func SchedHash(w io.Writer, scale float64) error {
	wld := corpus.Workload{Name: "hash_ub", Seed: 5, ColdFuncs: 1,
		Hot: []corpus.Hotspot{{Kind: corpus.SchedChain, Trips: 4000, Body: 2}}}
	model := uarch.Core2()
	base, opt, d, err := bench.Compare(wld, "SCHED", model)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hashing microbenchmark (Core-2 model):\n")
	fmt.Fprintf(w, "  baseline:  %8d cycles, RS_FULL stalls %6d\n",
		base.Counters.Cycles, base.Counters.RSFullStalls)
	fmt.Fprintf(w, "  scheduled: %8d cycles, RS_FULL stalls %6d (%d insts moved)\n",
		opt.Counters.Cycles, opt.Counters.RSFullStalls, opt.Stats.Get("SCHED", "moved"))
	fmt.Fprintf(w, "  speedup: %+.2f%% (paper: 15%%; stall counts must drop)\n", d)
	return nil
}

// table runs a workload list against one pipeline/model and prints
// paper-style rows.
func table(w io.Writer, title string, wls []corpus.Workload, pipelines []string, model *uarch.CPUModel) error {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s", "Benchmark")
	for _, p := range pipelines {
		fmt.Fprintf(w, "%12s", strings.SplitN(p, "=", 2)[0])
	}
	fmt.Fprintln(w)
	for _, wl := range wls {
		fmt.Fprintf(w, "%-16s", wl.Lang+"/"+wl.Name)
		base, err := bench.RunWorkload(wl, "", model)
		if err != nil {
			return err
		}
		for _, p := range pipelines {
			opt, err := bench.RunWorkload(wl, p, model)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%+11.2f%%", bench.DeltaPct(base.Counters, opt.Counters))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func pick(wls []corpus.Workload, names ...string) []corpus.Workload {
	var out []corpus.Workload
	for _, n := range names {
		for _, w := range wls {
			if strings.Contains(w.Name, n) {
				out = append(out, w)
			}
		}
	}
	return out
}

// EonRegress reproduces the first Section V-B table.
func EonRegress(w io.Writer, scale float64) error {
	wls := pick(corpus.Spec2000Int(scale), "eon")
	return table(w, "252.eon regressions on Core-2 (paper: NOPIN -9.23, NOPKILL -5.34, REDTEST -5.97):",
		wls, []string{"NOPIN=seed[1],density[4]", "NOPKILL", "REDTEST"}, uarch.Core2())
}

// Loop16Core2 reproduces the second Section V-B table.
func Loop16Core2(w io.Writer, scale float64) error {
	wls := pick(corpus.Spec2000Int(scale), "eon", "vpr", "gcc", "twolf")
	return table(w, "LOOP16 on Core-2 (paper: eon -4.43, vpr +1.25, gcc +1.41, twolf +1.18):",
		wls, []string{"LOOP16"}, uarch.Core2())
}

// Loop16Opteron reproduces the third Section V-B table.
func Loop16Opteron(w io.Writer, scale float64) error {
	wls := pick(corpus.Spec2000Int(scale), "eon", "mcf", "crafty")
	return table(w, "LOOP16 on Opteron (paper: eon -5.86, mcf +2.47, crafty +2.45):",
		wls, []string{"LOOP16"}, uarch.Opteron())
}

// Spec2006Opteron reproduces the dealII/calculix table.
func Spec2006Opteron(w io.Writer, scale float64) error {
	wls := pick(corpus.Spec2006Subset(scale), "dealII", "calculix")
	return table(w, "SPEC2006 on Opteron (paper: dealII +2.78/+3.21/-0.12, calculix +20.12/+20.58/-8.81):",
		wls, []string{"REDMOV", "REDTEST", "NOPKILL"}, uarch.Opteron())
}

// SchedSuite reproduces the SCHED table.
func SchedSuite(w io.Writer, scale float64) error {
	wls := pick(corpus.Spec2006Subset(scale), "bwaves", "zeusmp", "xalancbmk", "429.mcf", "h264ref")
	return table(w, "SCHED (paper: bwaves +1.29, zeusmp +1.20, xalancbmk +1.25, mcf +1.43, h264ref +1.75):",
		wls, []string{"SCHED"}, uarch.Core2())
}

// Fig7Aggregate reproduces Figure 7: per-benchmark transformation
// counts under the combined pipeline, and the aggregate performance.
func Fig7Aggregate(w io.Writer, scale float64) error {
	const pipeline = "LOOP16:NOPIN=seed[3],density[2]:REDMOV:REDTEST:SCHED"
	model := uarch.Core2()
	wls := corpus.Spec2000Int(scale)

	fmt.Fprintf(w, "Figure 7 (combined pipeline %s):\n", pipeline)
	fmt.Fprintf(w, "%-14s %5s %7s %5s %5s %7s %9s\n", "Benchmark", "L", "NOP", "M", "T", "SCHED", "Perf")
	var deltas, deltasNoPerl []float64
	for _, wl := range wls {
		base, err := bench.RunWorkload(wl, "", model)
		if err != nil {
			return err
		}
		opt, err := bench.RunWorkload(wl, pipeline, model)
		if err != nil {
			return err
		}
		d := bench.DeltaPct(base.Counters, opt.Counters)
		deltas = append(deltas, d)
		if !strings.Contains(wl.Name, "perlbmk") {
			deltasNoPerl = append(deltasNoPerl, d)
		}
		s := opt.Stats
		fmt.Fprintf(w, "%-14s %5d %7d %5d %5d %7d %+8.2f%%\n", wl.Name,
			s.Get("LOOP16", "aligned"),
			s.Get("NOPIN", "inserted"),
			s.Get("REDMOV", "rewritten")+s.Get("REDMOV", "removed"),
			s.Get("REDTEST", "removed"),
			s.Get("SCHED", "moved"),
			d)
	}
	fmt.Fprintf(w, "%-14s %37s %+8.2f%% (paper: +0.38%%)\n", "Geomean", "", bench.Geomean(deltas))
	fmt.Fprintf(w, "%-14s %37s %+8.2f%% (paper: +0.61%%)\n", "Geomean w/o perlbmk", "", bench.Geomean(deltasNoPerl))
	return nil
}

// NopKillSize reproduces the ~1% code-size improvement.
func NopKillSize(w io.Writer, scale float64) error {
	var before, after int64
	for _, wl := range corpus.Spec2000Int(scale) {
		u, err := bench.Prepare(wl)
		if err != nil {
			return err
		}
		l1, err := relax.Relax(u, nil)
		if err != nil {
			return err
		}
		before += l1.SectionEnd[".text"]
		if _, err := bench.Optimize(u, "NOPKILL"); err != nil {
			return err
		}
		l2, err := relax.Relax(u, nil)
		if err != nil {
			return err
		}
		after += l2.SectionEnd[".text"]
	}
	fmt.Fprintf(w, "text bytes before NOPKILL: %d\n", before)
	fmt.Fprintf(w, "text bytes after NOPKILL:  %d\n", after)
	fmt.Fprintf(w, "code-size reduction: %.2f%% (paper: ~1%%)\n",
		float64(before-after)/float64(before)*100)
	return nil
}

// SimAddrGain reproduces the 4.1-6.3x address-sample multiplication.
func SimAddrGain(w io.Writer, scale float64) error {
	wls := pick(corpus.Spec2000Int(scale), "gzip", "vpr", "mcf", "twolf")
	fmt.Fprintf(w, "address-sample multiplication (paper: 4.1x - 6.3x):\n")
	for _, wl := range wls {
		u, err := bench.Prepare(wl)
		if err != nil {
			return err
		}
		layout, err := relax.Relax(u, nil)
		if err != nil {
			return err
		}
		res, err := exec.Run(&exec.Config{
			Unit: u, Layout: layout, Entry: wl.EntryName(),
			MaxInsts: bench.MaxInsts, SampleEvery: 97,
		})
		if err != nil {
			return err
		}
		p := pass.Lookup("SIMADDR")
		sa := p.(interface {
			SetSamples([]passes.RegSnapshot)
			Gain() float64
		})
		var snaps []passes.RegSnapshot
		for _, s := range res.Samples {
			snaps = append(snaps, passes.RegSnapshot{Node: s.Node, GPR: s.GPR})
		}
		sa.SetSamples(snaps)
		stats := pass.NewStats()
		for _, f := range u.Functions() {
			ctx := pass.NewCtx(u, "SIMADDR", pass.NewOptions(), stats)
			if _, err := p.(pass.FuncPass).RunFunc(ctx, f); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "  %-14s samples %5d -> recovered addrs (fwd %d, bwd %d, direct %d), gain %.1fx\n",
			wl.Name, len(res.Samples),
			stats.Get("SIMADDR", "forward_addrs"),
			stats.Get("SIMADDR", "backward_addrs"),
			stats.Get("SIMADDR", "sampled_addrs"),
			sa.Gain())
	}
	return nil
}

// Instrument reproduces the III-E.l result: all entry/exit points get
// patchable 5-byte probes and overall runtime is not degraded much.
func Instrument(w io.Writer, scale float64) error {
	model := uarch.Core2()
	var worst float64
	for _, wl := range pick(corpus.Spec2000Int(scale), "gzip", "vpr", "mcf") {
		_, opt, d, err := bench.Compare(wl, "INSTRUMENT", model)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-14s probes %4d, pads %4d, delta %+.2f%%\n", wl.Name,
			opt.Stats.Get("INSTRUMENT", "entry_exit_points"),
			opt.Stats.Get("INSTRUMENT", "pad_nops"), d)
		if -d > worst {
			worst = -d
		}
	}
	fmt.Fprintf(w, "worst degradation %.2f%% (paper: no overall degradation; one +8%% surprise)\n", worst)
	return nil
}

// CompileTime reproduces the Section V-A measurement shape: a full
// pass pipeline costs a small multiple of parse-only processing.
func CompileTime(w io.Writer, scale float64) error {
	wl := corpus.CoreLibrary(scale)
	src := corpus.Generate(wl)

	parseOnly := timeIt(func() error {
		_, err := asm.ParseString("cl.s", src)
		return err
	})
	fullPipe := timeIt(func() error {
		u, err := asm.ParseString("cl.s", src)
		if err != nil {
			return err
		}
		_, err = bench.Optimize(u, "REDZEXT:REDTEST:REDMOV:ADDADD:LOOP16:SCHED")
		if err != nil {
			return err
		}
		_, err = relax.Relax(u, nil)
		return err
	})
	fmt.Fprintf(w, "parse-only (the 'gas' baseline): %v\n", parseOnly)
	fmt.Fprintf(w, "full MAO pipeline:               %v\n", fullPipe)
	fmt.Fprintf(w, "slowdown: %.1fx (paper: ~5x gas)\n", float64(fullPipe)/float64(parseOnly))
	return nil
}

// timeIt measures the wall time of one action, panicking on error
// (experiments are driver code).
func timeIt(f func() error) time.Duration {
	start := time.Now()
	if err := f(); err != nil {
		panic(err)
	}
	return time.Since(start)
}

// --- small helpers ----------------------------------------------------------

func indirectCount(f *ir.Function) int {
	n := 0
	for _, in := range f.Instructions() {
		if in.Inst.IsIndirectBranch() && in.Inst.Op == x86.OpJMP {
			n++
		}
	}
	return n
}

// sortedNames is used by maobench's list mode.
func SortedNames() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
