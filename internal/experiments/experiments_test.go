package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRun smoke-tests every experiment at a tiny corpus
// scale: each must complete and produce output mentioning its topic.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, 0.02); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
		})
	}
}

// TestRelaxExperimentMatchesPaper pins the Section II listings: the
// byte-for-byte encodings the paper prints must appear in the output.
func TestRelaxExperimentMatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	if err := RelaxExample(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"eb7f",         // jmp rel8 before insertion
		"e980000000",   // jmp rel32 after insertion
		"0f8576ffffff", // the paper's post-insertion jne encoding
	} {
		if !strings.Contains(out, want) {
			t.Errorf("relax output missing %q:\n%s", want, out)
		}
	}
}

// TestResultShapes asserts the qualitative paper results at a reduced
// scale: signs of the headline numbers, not magnitudes.
func TestResultShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig45LSD(&buf, 0.05); err != nil {
		t.Fatal(err)
	}
	var speedup float64
	if i := strings.Index(buf.String(), "speedup: "); i < 0 {
		t.Fatalf("fig45 output malformed:\n%s", buf.String())
	} else {
		fmt.Sscanf(buf.String()[i:], "speedup: %f", &speedup)
	}
	if speedup < 1.5 {
		t.Errorf("fig45 LSD speedup %.2f, want >= 1.5 (paper ~2x)", speedup)
	}

	buf.Reset()
	if err := SchedHash(&buf, 0.05); err != nil {
		t.Fatal(err)
	}
	var sched float64
	if i := strings.Index(buf.String(), "speedup: "); i < 0 {
		t.Fatalf("sched-hash output malformed:\n%s", buf.String())
	} else {
		fmt.Sscanf(buf.String()[i:], "speedup: %f%%", &sched)
	}
	if sched < 10 {
		t.Errorf("sched-hash speedup %.2f%%, want >= 10%% (paper 15%%)", sched)
	}

	buf.Reset()
	if err := StaticCounts(&buf, 0.05); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "24.2% (paper: 19272 = 24%)") {
		t.Errorf("static counts ratio drifted:\n%s", buf.String())
	}
}

func TestFind(t *testing.T) {
	if Find("fig1-nop") == nil {
		t.Error("fig1-nop not found")
	}
	if Find("nope") != nil {
		t.Error("bogus experiment found")
	}
	if len(SortedNames()) != len(All()) {
		t.Error("SortedNames incomplete")
	}
}
