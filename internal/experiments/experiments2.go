package experiments

// Additional reproductions and ablations beyond the paper's numbered
// tables: the branch-alignment anecdote (III-C.g), inverse prefetching
// end-to-end (III-E.k), the Nopinizer's blind search on the P4 model
// (III-E.i), and sensitivity ablations for the design choices called
// out in DESIGN.md.

import (
	"fmt"
	"io"

	"mao/internal/bench"
	"mao/internal/corpus"
	"mao/internal/pass"
	"mao/internal/passes"
	"mao/internal/relax"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
	"mao/internal/uarch/pmu"
)

// BrAlign reproduces the Section III-C.g anecdote: a two-deep nest of
// short-running loops places both back branches in the same PC>>5
// bucket; separating them by NOP insertion recovered 3% on a full
// image-manipulation benchmark.
func BrAlign(w io.Writer, scale float64) error {
	wl := corpus.Workload{
		Name: "image_bench", Seed: 31, ColdFuncs: 2,
		Hot: []corpus.Hotspot{
			{Kind: corpus.NestedShort, Offset: 0, Trips: 1200},
			{Kind: corpus.DiluterLoop, Trips: 140000},
		},
		Patterns: corpus.PatternMix{PlainTest: 10},
	}
	model := uarch.Core2()
	base, opt, d, err := bench.Compare(wl, "BRALIGN", model)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "image-manipulation stand-in (Core-2 model):\n")
	fmt.Fprintf(w, "  baseline: %8d cycles, %6d mispredicts\n",
		base.Counters.Cycles, base.Counters.Mispredicts)
	fmt.Fprintf(w, "  BRALIGN:  %8d cycles, %6d mispredicts (%d pairs separated, %d nops)\n",
		opt.Counters.Cycles, opt.Counters.Mispredicts,
		opt.Stats.Get("BRALIGN", "separated"), opt.Stats.Get("BRALIGN", "nops"))
	fmt.Fprintf(w, "  speedup: %+.2f%% (paper: 3%%)\n", d)
	return nil
}

// PrefNTA reproduces Section III-E.k end to end: the reuse-distance
// profiler identifies the streaming loads, the PREFNTA pass plants
// prefetchnta hints, and the cache model confines the stream to a
// single way — reducing misses on the re-used working set.
func PrefNTA(w io.Writer, scale float64) error {
	wl := corpus.Workload{
		Name: "pollute", Seed: 41, ColdFuncs: 1,
		Hot: []corpus.Hotspot{
			{Kind: corpus.StreamScan, Trips: 60, Body: 256, Entries: 20},
		},
	}
	model := uarch.Core2()
	model.CacheSets = 8 // a small L1 so pollution is visible
	model.CacheWays = 4

	u, err := bench.Prepare(wl)
	if err != nil {
		return err
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		return err
	}

	// Profile: run once, collect the trace, compute reuse distances.
	res, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: wl.EntryName(),
		MaxInsts: bench.MaxInsts, CollectTrace: true,
	})
	if err != nil {
		return err
	}
	profile := pmu.ReuseProfile(u, res.Trace, model.CacheLineBytes)

	before, _, _, err := bench.Measure(u, wl.EntryName(), model)
	if err != nil {
		return err
	}

	// Plant the hints via the pass, using the profile programmatically
	// (the paper's "novel memory reuse distance profiler" flow).
	p := pass.Lookup("PREFNTA")
	p.(interface{ SetProfile([]passes.ReuseSite) }).SetProfile(profile)
	stats := pass.NewStats()
	for _, f := range u.Functions() {
		ctx := pass.NewCtx(u, "PREFNTA", pass.NewOptions("mindist", "512", "minfootprint", "64"), stats)
		if _, err := p.(pass.FuncPass).RunFunc(ctx, f); err != nil {
			return err
		}
	}
	if err := u.Analyze(); err != nil {
		return err
	}

	after, _, _, err := bench.Measure(u, wl.EntryName(), model)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "profiled %d load sites; %d prefetchnta hints planted\n",
		len(profile), stats.Get("PREFNTA", "prefetches"))
	fmt.Fprintf(w, "  L1 misses: %6d -> %6d\n", before.CacheMisses, after.CacheMisses)
	fmt.Fprintf(w, "  cycles:    %6d -> %6d (%+.2f%%)\n",
		before.Cycles, after.Cycles, bench.DeltaPct(before, after))
	fmt.Fprintf(w, "(paper: technique promising, detailed in a follow-up paper)\n")
	return nil
}

// NopinP4 reproduces the Section III-E.i methodology: run many seeded
// random NOP-insertion experiments on the P4-like model and report the
// best layout found — the blind-optimization search that uncovered an
// unexplained 4% on the authors' Pentium 4.
func NopinP4(w io.Writer, scale float64) error {
	wl := corpus.Workload{
		Name: "compress", Seed: 51, ColdFuncs: 2,
		Hot: []corpus.Hotspot{
			// A placement-sensitive loop left misaligned: random
			// insertion can shift it either way.
			{Kind: corpus.TightLoop, Offset: 30, Trips: 12000},
			{Kind: corpus.DiluterLoop, Trips: 25000},
		},
		Patterns: corpus.PatternMix{PlainTest: 8},
	}
	model := uarch.P4()

	base, err := bench.RunWorkload(wl, "", model)
	if err != nil {
		return err
	}
	bestSeed, bestDelta := 0, -1e9
	var worst float64
	trials := 12
	for seed := 1; seed <= trials; seed++ {
		pipe := fmt.Sprintf("NOPIN=seed[%d],density[6]", seed)
		opt, err := bench.RunWorkload(wl, pipe, model)
		if err != nil {
			return err
		}
		d := bench.DeltaPct(base.Counters, opt.Counters)
		if d > bestDelta {
			bestDelta, bestSeed = d, seed
		}
		if d < worst {
			worst = d
		}
	}
	fmt.Fprintf(w, "%d random NOP-insertion experiments on the P4 model:\n", trials)
	fmt.Fprintf(w, "  best:  seed %d at %+.2f%% (paper: a 4%% opportunity, cause unknown)\n",
		bestSeed, bestDelta)
	fmt.Fprintf(w, "  worst: %+.2f%%\n", worst)
	if bestDelta <= 0 {
		fmt.Fprintf(w, "  (no positive layout found at this density)\n")
	}
	return nil
}

// Ablations quantifies the design choices DESIGN.md calls out by
// re-running key experiments with individual mechanisms varied.
func Ablations(w io.Writer, scale float64) error {
	// 1. LSD on/off: the mcf-style loop's LOOP16 gain on Core-2 is
	// hidden by the LSD; disabling it exposes the full effect.
	mcf := corpus.Workload{Name: "mcf_abl", Seed: 61, ColdFuncs: 1,
		Hot: []corpus.Hotspot{
			{Kind: corpus.ShortLoop, Offset: 25, Trips: 300, Entries: 12},
			{Kind: corpus.DiluterLoop, Trips: 8000},
		}}
	withLSD := uarch.Core2()
	noLSD := uarch.Core2()
	noLSD.HasLSD = false
	_, _, dLSD, err := bench.Compare(mcf, "LOOP16", withLSD)
	if err != nil {
		return err
	}
	_, _, dNoLSD, err := bench.Compare(mcf, "LOOP16", noLSD)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "LSD ablation (LOOP16 on the mcf-style loop, Core-2):\n")
	fmt.Fprintf(w, "  LSD on:  %+6.2f%%   LSD off: %+6.2f%%  (the LSD hides misalignment)\n",
		dLSD, dNoLSD)

	// 2. Predictor index shift: the eon alignment trap only fires
	// when the shifted branch shares a bucket; changing the shift
	// moves the cliff.
	eon := corpus.Workload{Name: "eon_abl", Seed: 62, ColdFuncs: 1,
		Hot: []corpus.Hotspot{
			{Kind: corpus.AlignTrap, Offset: 32, Entries: 60},
			{Kind: corpus.DiluterLoop, Trips: 6000},
		}}
	fmt.Fprintf(w, "predictor-shift ablation (REDTEST on the eon trap):\n")
	for _, shift := range []uint{4, 5, 6} {
		m := uarch.Core2()
		m.BPIndexShift = shift
		_, _, d, err := bench.Compare(eon, "REDTEST", m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  PC>>%d: %+6.2f%%\n", shift, d)
	}

	// 3. Forwarding bandwidth: SCHED's hash gain exists only while
	// the bandwidth is scarce.
	hash := corpus.Workload{Name: "hash_abl", Seed: 63, ColdFuncs: 1,
		Hot: []corpus.Hotspot{{Kind: corpus.SchedChain, Trips: 4000, Body: 2}}}
	fmt.Fprintf(w, "forwarding-bandwidth ablation (SCHED on the hash kernel):\n")
	for _, bw := range []int{1, 2, 3} {
		m := uarch.Core2()
		m.FwdBandwidth = bw
		_, _, d, err := bench.Compare(hash, "SCHED", m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  bandwidth %d: %+6.2f%%\n", bw, d)
	}

	// 4. Scheduler cost functions.
	fmt.Fprintf(w, "scheduler cost-function ablation (hash kernel, Core-2):\n")
	for _, fn := range []string{"naive", "critpath", "ports"} {
		_, _, d, err := bench.Compare(hash, "SCHED=costfn["+fn+"]", uarch.Core2())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  costfn %-9s %+6.2f%%\n", fn, d)
	}

	// 5. Relaxation behaviour: iteration counts across the corpus
	// (the paper: "almost every relaxation succeeds in a few
	// iterations, and it never fails").
	maxIter, total, n := 0, 0, 0
	for _, wl := range corpus.Spec2000Int(scale) {
		u, err := bench.Prepare(wl)
		if err != nil {
			return err
		}
		layout, err := relax.Relax(u, nil)
		if err != nil {
			return err
		}
		total += layout.Iterations
		n++
		if layout.Iterations > maxIter {
			maxIter = layout.Iterations
		}
	}
	fmt.Fprintf(w, "relaxation iterations across %d units: mean %.1f, max %d (limit 100)\n",
		n, float64(total)/float64(n), maxIter)
	return nil
}
