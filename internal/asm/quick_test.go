package asm

import (
	"math/rand/v2"
	"testing"

	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

func relaxUnit(u *ir.Unit) (*relax.Layout, error) { return relax.Relax(u, nil) }

// randInst generates a random — but always valid and encodable —
// instruction from the ALU/mov/lea/shift families, across widths,
// operand kinds and addressing modes.
func randInst(rng *rand.Rand) *x86.Inst {
	gpr := func(w x86.Width) x86.Reg {
		return x86.GPR64[rng.IntN(len(x86.GPR64))].WithWidth(w)
	}
	width := []x86.Width{x86.W8, x86.W16, x86.W32, x86.W64}[rng.IntN(4)]
	mem := func() x86.Operand {
		m := x86.Mem{Disp: int64(rng.IntN(512) - 256)}
		if rng.IntN(4) > 0 {
			m.Base = gpr(x86.W64)
			// rsp cannot be an index; avoid it there.
			if rng.IntN(2) == 0 {
				for {
					m.Index = gpr(x86.W64)
					if m.Index != x86.RSP {
						break
					}
				}
				m.Scale = []uint8{1, 2, 4, 8}[rng.IntN(4)]
			}
		} else {
			// Absolute addressing requires a displacement form.
			m.Base = x86.RIP
		}
		return x86.MemOp(m)
	}
	regOp := func() x86.Operand { return x86.RegOp(gpr(width)) }
	immFor := func(w x86.Width) x86.Operand {
		switch w {
		case x86.W8:
			return x86.Imm(int64(rng.IntN(256) - 128))
		case x86.W16:
			return x86.Imm(int64(rng.IntN(1<<16)) - 1<<15)
		default:
			return x86.Imm(int64(rng.Int32()))
		}
	}

	aluOps := []x86.Op{x86.OpADD, x86.OpSUB, x86.OpAND, x86.OpOR,
		x86.OpXOR, x86.OpCMP, x86.OpADC, x86.OpSBB}
	switch rng.IntN(7) {
	case 0: // alu reg, reg
		return x86.NewInst(x86.Mnem{Op: aluOps[rng.IntN(len(aluOps))], Width: width},
			regOp(), regOp())
	case 1: // alu imm, reg
		return x86.NewInst(x86.Mnem{Op: aluOps[rng.IntN(len(aluOps))], Width: width},
			immFor(width), regOp())
	case 2: // alu mem, reg / reg, mem
		if rng.IntN(2) == 0 {
			return x86.NewInst(x86.Mnem{Op: aluOps[rng.IntN(len(aluOps))], Width: width},
				mem(), regOp())
		}
		return x86.NewInst(x86.Mnem{Op: aluOps[rng.IntN(len(aluOps))], Width: width},
			regOp(), mem())
	case 3: // mov in all directions
		switch rng.IntN(3) {
		case 0:
			return x86.NewInst(x86.Mnem{Op: x86.OpMOV, Width: width}, regOp(), mem())
		case 1:
			return x86.NewInst(x86.Mnem{Op: x86.OpMOV, Width: width}, mem(), regOp())
		default:
			return x86.NewInst(x86.Mnem{Op: x86.OpMOV, Width: width}, immFor(width), regOp())
		}
	case 4: // lea
		w := []x86.Width{x86.W32, x86.W64}[rng.IntN(2)]
		return x86.NewInst(x86.Mnem{Op: x86.OpLEA, Width: w}, mem(), x86.RegOp(gpr(w)))
	case 5: // shift imm
		shifts := []x86.Op{x86.OpSHL, x86.OpSHR, x86.OpSAR, x86.OpROL, x86.OpROR}
		maxSh := int64(width)*8 - 1
		return x86.NewInst(x86.Mnem{Op: shifts[rng.IntN(len(shifts))], Width: width},
			x86.Imm(1+rng.Int64N(maxSh)), regOp())
	default: // unary
		unary := []x86.Op{x86.OpINC, x86.OpDEC, x86.OpNEG, x86.OpNOT}
		return x86.NewInst(x86.Mnem{Op: unary[rng.IntN(len(unary))], Width: width},
			regOp())
	}
}

// TestRandomInstructionRoundTrip: for thousands of random
// instructions, print -> parse must reproduce the instruction (same
// canonical printing) and the reparsed instruction must encode to the
// same bytes. This pins the printer, parser and encoder against each
// other across the whole operand space.
func TestRandomInstructionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	for i := 0; i < 5000; i++ {
		in := randInst(rng)

		// High-byte + REX conflicts are legitimately unencodable;
		// regenerate (W8 random regs can pick ah..bh alongside r8b).
		b1, err := encode.Encode(in, nil)
		if err != nil {
			continue
		}

		text := in.String()
		u, err := ParseString("q.s", text)
		if err != nil {
			t.Fatalf("#%d: %q does not reparse: %v", i, text, err)
		}
		var re *x86.Inst
		for n := u.List.Front(); n != nil; n = n.Next() {
			if n.Kind == ir.NodeInst {
				re = n.Inst
			}
		}
		if re == nil {
			t.Fatalf("#%d: %q parsed to no instruction", i, text)
		}
		if got := re.String(); got != text {
			t.Fatalf("#%d: print/parse not stable: %q -> %q", i, text, got)
		}
		b2, err := encode.Encode(re, nil)
		if err != nil {
			t.Fatalf("#%d: reparsed %q does not encode: %v", i, text, err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("#%d: %q encodings differ: %x vs %x", i, text, b1, b2)
		}
	}
}

// TestRandomProgramRelaxes: random straight-line programs with a few
// branches sprinkled in must always relax to a fixpoint and produce
// monotone addresses.
func TestRandomProgramRelaxes(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 50; trial++ {
		u := ir.NewUnit("rand.s")
		u.Append(ir.DirectiveNode(".text"))
		n := 20 + rng.IntN(60)
		for i := 0; i < n; i++ {
			if rng.IntN(8) == 0 {
				u.Append(ir.LabelNode(labelName(trial, i)))
			}
			u.Append(ir.InstNode(randInst(rng)))
		}
		u.Append(ir.LabelNode(labelName(trial, n)))
		u.Append(ir.InstNode(x86.NewInst(x86.Mnem{Op: x86.OpRET})))
		if err := u.Analyze(); err != nil {
			t.Fatal(err)
		}
		// Reparse from text to exercise the full path.
		u2, err := ParseString("rand.s", u.String())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkMonotoneLayout(t, u2)
	}
}

func labelName(trial, i int) string {
	return ".Lr" + string(rune('a'+trial%26)) + string(rune('a'+i%26)) +
		string(rune('0'+(i/26)%10))
}

func checkMonotoneLayout(t *testing.T, u *ir.Unit) {
	t.Helper()
	layout, err := relaxUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind != ir.NodeInst {
			continue
		}
		a := layout.Addr(n)
		if a < last {
			t.Fatalf("addresses not monotone: %d after %d", a, last)
		}
		if layout.Len(n) <= 0 || layout.Len(n) > 15 {
			t.Fatalf("bad length %d for %v", layout.Len(n), n.Inst)
		}
		last = a + int64(layout.Len(n))
	}
}
