// Package asm parses textual x86-64 assembly in AT&T syntax into the
// MAO IR. It plays the role gas' parser plays for the original MAO:
// every instruction becomes a single concrete struct (x86.Inst) and
// every directive and label becomes an IR node, so that the optimizer
// can reconstruct a byte-equivalent file after transformation.
//
// The parser accepts the dialect GCC and Clang emit: labels (including
// local .L labels), the common assembler directives, '#' comments,
// multiple statements per line separated by ';', and the full AT&T
// operand grammar (immediates, registers, memory references with
// base/index/scale and symbolic displacements, and '*' indirect branch
// targets).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"mao/internal/ir"
	"mao/internal/x86"
)

// ParseError describes a parse failure with its source position.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// ParseString parses assembly source into a fresh, analyzed unit.
func ParseString(name, src string) (*ir.Unit, error) {
	p := &parser{file: name, unit: ir.NewUnit(name)}
	if err := p.parse(src); err != nil {
		return nil, err
	}
	if err := p.unit.Analyze(); err != nil {
		return nil, err
	}
	return p.unit, nil
}

type parser struct {
	file  string
	unit  *ir.Unit
	line  int
	intel bool // inside .intel_syntax mode
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{File: p.file, Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// append adds a node to the unit stamped with the current source line,
// so diagnostics can report file:line positions.
func (p *parser) append(n *ir.Node) {
	n.Line = p.line
	p.unit.Append(n)
}

func (p *parser) parse(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := stripComment(raw)
		for _, stmt := range splitTop(line, ';') {
			if err := p.statement(strings.TrimSpace(stmt)); err != nil {
				return err
			}
		}
	}
	return nil
}

// statement handles one label/directive/instruction statement.
func (p *parser) statement(s string) error {
	for s != "" {
		// Leading labels: "name:" possibly followed by more text.
		name, rest, ok := cutLabel(s)
		if !ok {
			break
		}
		p.append(ir.LabelNode(name))
		s = strings.TrimSpace(rest)
	}
	if s == "" {
		return nil
	}
	if s[0] == '.' {
		// No x86 mnemonic starts with '.', so this is a directive.
		return p.directive(s)
	}
	if p.intel {
		return p.intelInstruction(s)
	}
	return p.instruction(s)
}

// cutLabel splits a leading "ident:" off s. Identifiers follow gas
// rules: letters, digits, '_', '.', '$'; the first rune must not be a
// digit (numeric local labels are not supported).
func cutLabel(s string) (name, rest string, ok bool) {
	i := 0
	for i < len(s) && isIdentChar(s[i]) {
		i++
	}
	if i == 0 || i >= len(s) || s[i] != ':' {
		return "", "", false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '$' || c == '@' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) directive(s string) error {
	name := s
	var rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		name, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	var args []string
	if rest != "" {
		for _, a := range splitTop(rest, ',') {
			args = append(args, strings.TrimSpace(a))
		}
	}
	// Syntax-mode switches are consumed by the parser itself; the IR
	// always holds (and emits) AT&T.
	switch name {
	case ".intel_syntax":
		p.intel = true
		return nil
	case ".att_syntax":
		p.intel = false
		return nil
	}
	p.append(ir.DirectiveNode(name, args...))
	return nil
}

func (p *parser) instruction(s string) error {
	mnemonic := s
	var rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)

	lock := false
	if mnemonic == "lock" {
		lock = true
		s = rest
		if i := strings.IndexAny(s, " \t"); i >= 0 {
			mnemonic, rest = strings.ToLower(s[:i]), strings.TrimSpace(s[i+1:])
		} else {
			mnemonic, rest = strings.ToLower(s), ""
		}
		if mnemonic == "" {
			return p.errf("lock prefix without instruction")
		}
	}

	m, ok := x86.ParseMnemonic(mnemonic)
	if !ok {
		return p.errf("unknown mnemonic %q", mnemonic)
	}

	var args []x86.Operand
	branch := m.Op.IsBranch()
	if rest != "" {
		for _, a := range splitTop(rest, ',') {
			op, err := p.parseOperand(strings.TrimSpace(a), branch)
			if err != nil {
				return err
			}
			args = append(args, op)
		}
	}

	// AT&T "movq" with an xmm operand is the SSE movq, not the GPR
	// move; likewise a suffix-less "mov" between xmm registers.
	if (m.Op == x86.OpMOV || m.Op == x86.OpMOVQX) && hasXMM(args) {
		m = x86.Mnem{Op: x86.OpMOVQX}
	}

	in := x86.NewInst(m, args...)
	in.Lock = lock
	p.append(ir.InstNode(in))
	return nil
}

func hasXMM(args []x86.Operand) bool {
	for _, a := range args {
		if a.Kind == x86.KindReg && a.Reg.IsXMM() {
			return true
		}
	}
	return false
}

// parseOperand parses one AT&T operand. branch selects the bare-symbol
// interpretation: branch targets become labels, data references become
// absolute memory operands.
func (p *parser) parseOperand(s string, branch bool) (x86.Operand, error) {
	if s == "" {
		return x86.Operand{}, p.errf("empty operand")
	}
	if s[0] == '*' {
		op, err := p.parseOperand(strings.TrimSpace(s[1:]), false)
		if err != nil {
			return op, err
		}
		op.Star = true
		return op, nil
	}
	switch s[0] {
	case '$':
		body := s[1:]
		if v, err := parseInt(body); err == nil {
			return x86.Imm(v), nil
		}
		// Symbolic immediate ($sym or $sym+off); stored with the
		// symbol in Sym so emission reproduces it.
		sym, off, err := parseSymExpr(body)
		if err != nil {
			return x86.Operand{}, p.errf("bad immediate %q", s)
		}
		return x86.Operand{Kind: x86.KindImm, Sym: sym, Imm: off}, nil
	case '%':
		r, ok := x86.RegByName(strings.ToLower(s[1:]))
		if !ok {
			return x86.Operand{}, p.errf("unknown register %q", s)
		}
		return x86.RegOp(r), nil
	}
	if i := strings.IndexByte(s, '('); i >= 0 {
		return p.parseMem(s[:i], s[i:])
	}
	// Bare expression: number, symbol, or symbol±offset.
	if v, err := parseInt(s); err == nil {
		if branch {
			return x86.Operand{}, p.errf("numeric branch target %q not supported", s)
		}
		return x86.MemOp(x86.Mem{Disp: v}), nil
	}
	sym, off, err := parseSymExpr(s)
	if err != nil {
		return x86.Operand{}, p.errf("bad operand %q", s)
	}
	if branch {
		return x86.Operand{Kind: x86.KindLabel, Sym: sym, Off: off}, nil
	}
	return x86.MemOp(x86.Mem{Sym: sym, Disp: off}), nil
}

// parseMem parses disp(base,index,scale). disp may be empty, numeric,
// or symbolic (sym, sym+4, sym-4).
func (p *parser) parseMem(disp, paren string) (x86.Operand, error) {
	var m x86.Mem
	disp = strings.TrimSpace(disp)
	if disp != "" {
		if v, err := parseInt(disp); err == nil {
			m.Disp = v
		} else {
			sym, off, err := parseSymExpr(disp)
			if err != nil {
				return x86.Operand{}, p.errf("bad displacement %q", disp)
			}
			m.Sym, m.Disp = sym, off
		}
	}
	if !strings.HasPrefix(paren, "(") || !strings.HasSuffix(paren, ")") {
		return x86.Operand{}, p.errf("bad memory operand %q", disp+paren)
	}
	inner := paren[1 : len(paren)-1]
	parts := strings.Split(inner, ",")
	if len(parts) > 3 {
		return x86.Operand{}, p.errf("too many memory components in %q", paren)
	}
	getReg := func(s string) (x86.Reg, error) {
		s = strings.TrimSpace(s)
		if s == "" {
			return x86.RegNone, nil
		}
		if !strings.HasPrefix(s, "%") {
			return x86.RegNone, p.errf("expected register, got %q", s)
		}
		r, ok := x86.RegByName(strings.ToLower(s[1:]))
		if !ok {
			return x86.RegNone, p.errf("unknown register %q", s)
		}
		return r, nil
	}
	var err error
	if m.Base, err = getReg(parts[0]); err != nil {
		return x86.Operand{}, err
	}
	if len(parts) >= 2 {
		if m.Index, err = getReg(parts[1]); err != nil {
			return x86.Operand{}, err
		}
	}
	m.Scale = 1
	if len(parts) == 3 {
		sc := strings.TrimSpace(parts[2])
		if sc != "" {
			v, err := strconv.Atoi(sc)
			if err != nil || (v != 1 && v != 2 && v != 4 && v != 8) {
				return x86.Operand{}, p.errf("bad scale %q", sc)
			}
			m.Scale = uint8(v)
		}
	}
	return x86.MemOp(m), nil
}

// parseInt parses decimal, hex (0x), octal (0o/leading 0) and binary
// (0b) integer literals with an optional sign, into an int64 with
// wraparound semantics for large unsigned values (gas accepts
// 0xffffffffffffffff).
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	if s == "" {
		return 0, fmt.Errorf("empty integer")
	}
	u, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	v := int64(u)
	if neg {
		v = -v
	}
	return v, nil
}

// parseSymExpr parses sym, sym+off or sym-off.
func parseSymExpr(s string) (sym string, off int64, err error) {
	i := 0
	for i < len(s) && isIdentChar(s[i]) {
		i++
	}
	if i == 0 || (s[0] >= '0' && s[0] <= '9') {
		return "", 0, fmt.Errorf("bad symbol in %q", s)
	}
	sym = s[:i]
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return sym, 0, nil
	}
	if rest[0] != '+' && rest[0] != '-' {
		return "", 0, fmt.Errorf("bad symbol expression %q", s)
	}
	off, err = parseInt(rest)
	if err != nil {
		return "", 0, err
	}
	return sym, off, nil
}

// stripComment removes a '#' comment, respecting string literals.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

// splitTop splits s on sep occurring at paren depth zero and outside
// string literals.
func splitTop(s string, sep byte) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '"' && s[i-1] != '\\' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == sep && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}
