package asm

import (
	"strings"

	"mao/internal/ir"
	"mao/internal/x86"
)

// Intel-syntax support. Like gas (and therefore like the original
// MAO), the parser accepts Intel-syntax input when the file switches
// modes with ".intel_syntax noprefix" (back with ".att_syntax").
// Instructions are normalized into the same IR — and therefore emit
// as AT&T — so passes never see the difference.

// intelSizes maps Intel memory-size prefixes to operand widths.
var intelSizes = map[string]x86.Width{
	"byte": x86.W8, "word": x86.W16, "dword": x86.W32, "qword": x86.W64,
}

// intelInstruction parses one Intel-syntax instruction statement.
func (p *parser) intelInstruction(s string) error {
	mnemonic := s
	var rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = strings.ToLower(s[:i]), strings.TrimSpace(s[i+1:])
	} else {
		mnemonic = strings.ToLower(mnemonic)
	}

	m, srcWidth, ok := intelMnemonic(mnemonic)
	if !ok {
		return p.errf("unknown mnemonic %q", mnemonic)
	}

	var args []x86.Operand
	var memWidth x86.Width
	branch := m.Op.IsBranch()
	if rest != "" {
		for _, a := range splitTop(rest, ',') {
			op, w, err := p.parseIntelOperand(strings.TrimSpace(a), branch)
			if err != nil {
				return err
			}
			if w != x86.W0 {
				memWidth = w
			}
			args = append(args, op)
		}
	}

	// Intel order is destination-first; the IR stores AT&T order.
	for i, j := 0, len(args)-1; i < j; i, j = i+1, j-1 {
		args[i], args[j] = args[j], args[i]
	}

	if srcWidth != x86.W0 {
		m.SrcWidth = srcWidth
	}
	if m.Op == x86.OpMOVZX || m.Op == x86.OpMOVSX {
		// The size prefix (or source register) gives the SOURCE
		// width; the destination register gives the operand width.
		if m.SrcWidth == x86.W0 {
			if len(args) > 0 && args[0].Kind == x86.KindReg {
				m.SrcWidth = args[0].Reg.Width()
			} else if memWidth != x86.W0 {
				m.SrcWidth = memWidth
			}
		}
		if len(args) == 2 && args[1].Kind == x86.KindReg {
			m.Width = args[1].Reg.Width()
		}
	} else if m.Width == x86.W0 {
		m.Width = memWidth
	}
	if (m.Op == x86.OpMOV || m.Op == x86.OpMOVQX) && hasXMM(args) {
		m = x86.Mnem{Op: x86.OpMOVQX}
	}

	in := x86.NewInst(m, args...)
	p.append(ir.InstNode(in))
	return nil
}

// intelMnemonic decodes an Intel mnemonic: no width suffixes; movzx
// and movsx carry the width in their operands.
func intelMnemonic(m string) (x86.Mnem, x86.Width, bool) {
	switch m {
	case "movzx":
		return x86.Mnem{Op: x86.OpMOVZX}, x86.W0, true
	case "movsx", "movsxd":
		return x86.Mnem{Op: x86.OpMOVSX}, x86.W0, true
	}
	mn, ok := x86.ParseMnemonic(m)
	if !ok {
		return x86.Mnem{}, 0, false
	}
	return mn, x86.W0, true
}

// parseIntelOperand parses one Intel operand, returning any memory
// size ("dword ptr") it carried.
func (p *parser) parseIntelOperand(s string, branch bool) (x86.Operand, x86.Width, error) {
	lower := strings.ToLower(s)

	// Optional "SIZE ptr" prefix.
	for name, w := range intelSizes {
		if strings.HasPrefix(lower, name+" ") {
			rest := strings.TrimSpace(s[len(name):])
			if strings.HasPrefix(strings.ToLower(rest), "ptr") {
				rest = strings.TrimSpace(rest[3:])
			}
			op, _, err := p.parseIntelOperand(rest, branch)
			return op, w, err
		}
	}

	// Bracketed memory reference.
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return x86.Operand{}, 0, p.errf("unterminated memory operand %q", s)
		}
		m, err := p.parseIntelMem(s[1 : len(s)-1])
		if err != nil {
			return x86.Operand{}, 0, err
		}
		return x86.MemOp(m), 0, nil
	}

	// Optional AT&T-style % prefix is tolerated in Intel mode.
	name := strings.TrimPrefix(lower, "%")
	if r, ok := x86.RegByName(name); ok {
		return x86.RegOp(r), 0, nil
	}
	if v, err := parseInt(s); err == nil {
		if branch {
			return x86.Operand{}, 0, p.errf("numeric branch target %q not supported", s)
		}
		return x86.Imm(v), 0, nil
	}
	sym, off, err := parseSymExpr(s)
	if err != nil {
		return x86.Operand{}, 0, p.errf("bad operand %q", s)
	}
	if branch {
		return x86.Operand{Kind: x86.KindLabel, Sym: sym, Off: off}, 0, nil
	}
	// Bare symbol in Intel mode is a memory reference (rip-relative in
	// 64-bit position-independent practice).
	return x86.MemOp(x86.Mem{Sym: sym, Disp: off, Base: x86.RIP}), 0, nil
}

// parseIntelMem parses the inside of [...]: a '+'/'-' separated sum of
// a base register, an index*scale term, and displacements/symbols.
func (p *parser) parseIntelMem(s string) (x86.Mem, error) {
	var m x86.Mem
	m.Scale = 1
	sign := int64(1)

	term := func(t string) error {
		t = strings.TrimSpace(t)
		if t == "" {
			return p.errf("empty term in memory operand")
		}
		lower := strings.ToLower(strings.TrimPrefix(t, "%"))

		// index*scale (either order).
		if i := strings.IndexByte(t, '*'); i >= 0 {
			a := strings.TrimSpace(t[:i])
			b := strings.TrimSpace(t[i+1:])
			regStr, scaleStr := a, b
			if _, err := parseInt(a); err == nil {
				regStr, scaleStr = b, a
			}
			r, ok := x86.RegByName(strings.ToLower(strings.TrimPrefix(regStr, "%")))
			if !ok {
				return p.errf("bad index register %q", regStr)
			}
			sc, err := parseInt(scaleStr)
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return p.errf("bad scale %q", scaleStr)
			}
			if m.Index != x86.RegNone {
				return p.errf("two index terms in memory operand")
			}
			m.Index, m.Scale = r, uint8(sc)
			return nil
		}
		if r, ok := x86.RegByName(lower); ok {
			if m.Base == x86.RegNone {
				m.Base = r
			} else if m.Index == x86.RegNone {
				m.Index = r
				m.Scale = 1
			} else {
				return p.errf("three registers in memory operand")
			}
			return nil
		}
		if v, err := parseInt(t); err == nil {
			m.Disp += sign * v
			return nil
		}
		sym, off, err := parseSymExpr(t)
		if err != nil {
			return p.errf("bad memory term %q", t)
		}
		if m.Sym != "" {
			return p.errf("two symbols in memory operand")
		}
		m.Sym = sym
		m.Disp += sign * off
		return nil
	}

	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '+' || s[i] == '-' {
			if i > start {
				if err := term(s[start:i]); err != nil {
					return m, err
				}
			}
			if i < len(s) && s[i] == '-' {
				sign = -1
			} else {
				sign = 1
			}
			start = i + 1
		}
	}
	return m, nil
}
