package asm

import (
	"testing"

	"mao/internal/ir"
	"mao/internal/x86"
)

// TestIntelSyntaxEquivalence parses semantically identical programs in
// both syntaxes and compares the normalized (AT&T) emissions.
func TestIntelSyntaxEquivalence(t *testing.T) {
	att := `
	.text
	mov %eax, %eax
	movl $5, %eax
	addq $8, %rsp
	movq 24(%rsp), %rdx
	movl %edx, (%rsi,%r8,4)
	movsbl 1(%rdi,%r8,4), %edx
	leaq 2(%rdx), %r8
	cmpl %r8d, %r9d
	jg .L3
.L3:
	testl %r15d, %r15d
	shrl $12, %edi
	movzwl 6(%rax), %ecx
	ret
`
	intel := `
	.text
	.intel_syntax noprefix
	mov eax, eax
	mov eax, 5
	add rsp, 8
	mov rdx, qword ptr [rsp+24]
	mov dword ptr [rsi+r8*4], edx
	movsx edx, byte ptr [rdi+r8*4+1]
	lea r8, [rdx+2]
	cmp r9d, r8d
	jg .L3
.L3:
	test r15d, r15d
	shr edi, 12
	movzx ecx, word ptr [rax+6]
	ret
	.att_syntax
`
	u1, err := ParseString("att.s", att)
	if err != nil {
		t.Fatalf("AT&T: %v", err)
	}
	u2, err := ParseString("intel.s", intel)
	if err != nil {
		t.Fatalf("Intel: %v", err)
	}
	if got, want := u2.String(), u1.String(); got != want {
		t.Errorf("Intel parse does not normalize to the AT&T program:\n--- att ---\n%s\n--- intel ---\n%s", want, got)
	}
}

func TestIntelOperandForms(t *testing.T) {
	cases := []struct {
		intel string
		att   string // expected canonical printing
	}{
		{"mov rax, rbx", "movq\t%rbx, %rax"},
		{"mov eax, 100", "movl\t$100, %eax"},
		{"add dword ptr [rbp-4], 1", "addl\t$1, -4(%rbp)"},
		{"mov rcx, [rax+rbx*8-16]", "movq\t-16(%rax,%rbx,8), %rcx"},
		{"mov rcx, [8*rbx+rax]", "movq\t(%rax,%rbx,8), %rcx"},
		{"imul edx, esi", "imull\t%esi, %edx"},
		{"movsxd rax, edi", "movslq\t%edi, %rax"},
		{"xor r8d, r8d", "xorl\t%r8d, %r8d"},
		{"inc qword ptr [rsp]", "incq\t(%rsp)"},
		{"jmp .Lx", "jmp\t.Lx"},
	}
	for _, c := range cases {
		src := ".intel_syntax noprefix\n" + c.intel + "\n.Lx:\n"
		u, err := ParseString("i.s", src)
		if err != nil {
			t.Errorf("%q: %v", c.intel, err)
			continue
		}
		var in *x86.Inst
		for n := u.List.Front(); n != nil; n = n.Next() {
			if n.Kind == ir.NodeInst {
				in = n.Inst
				break
			}
		}
		if in == nil {
			t.Errorf("%q parsed to nothing", c.intel)
			continue
		}
		if got := in.String(); got != c.att {
			t.Errorf("%q => %q, want %q", c.intel, got, c.att)
		}
	}
}

func TestIntelSyntaxErrors(t *testing.T) {
	bad := []string{
		"mov eax, [rax+rbx*3]",   // bad scale
		"mov eax, [rax+rbx+rcx]", // three registers
		"mov eax, [rax",          // unterminated
		"frobnicate eax",         // unknown mnemonic
	}
	for _, s := range bad {
		src := ".intel_syntax noprefix\n" + s + "\n"
		if _, err := ParseString("bad.s", src); err == nil {
			t.Errorf("%q accepted", s)
		}
	}
}

func TestSyntaxModeSwitching(t *testing.T) {
	src := `
	movl $1, %eax
	.intel_syntax noprefix
	mov ebx, 2
	.att_syntax
	movl $3, %ecx
`
	u, err := ParseString("mix.s", src)
	if err != nil {
		t.Fatal(err)
	}
	var insts []string
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			insts = append(insts, n.Inst.String())
		}
	}
	want := []string{"movl\t$1, %eax", "movl\t$2, %ebx", "movl\t$3, %ecx"}
	if len(insts) != 3 {
		t.Fatalf("insts: %v", insts)
	}
	for i := range want {
		if insts[i] != want[i] {
			t.Errorf("inst %d = %q, want %q", i, insts[i], want[i])
		}
	}
}
