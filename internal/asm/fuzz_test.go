package asm

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseString fuzzes the assembly parser, seeded with the corpus
// fixtures. Invariants under arbitrary input:
//
//  1. ParseString never panics — it returns an error for anything it
//     cannot represent.
//  2. What it does accept round-trips: the printed form reparses, and
//     printing again is a fixpoint (parser and printer are exact
//     inverses over everything the printer produces — the property the
//     assembly-to-assembly design rests on).
func FuzzParseString(f *testing.F) {
	fixtures, err := filepath.Glob(filepath.Join("..", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		f.Fatalf("no corpus fixtures: %v", err)
	}
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	// Hand seeds poking at parser corners: prefixes, jump tables,
	// quoted symbols, broken operands, CRLF, stray bytes.
	for _, seed := range []string{
		"",
		"\t.text\nf:\n\tret\n",
		"\tlock addl $1, (%rax)\n",
		"\tmovq 24(%rsp,%rbx,8), %rdx\n",
		"\t.section .rodata\n\t.quad .L1-.L0\n",
		"\tjmp *.LJT(,%rax,8)\n",
		"a: b: c:\n",
		"\t.byte 0x90\r\n\trep movsb\n",
		"\tmovl $'x, %eax\n",
		"\t.ascii \"unterminated",
		"\tfld %st(1)\n\tnopw %cs:0(%rax,%rax)\n",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseString("fuzz.s", src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		emit1 := u.String()
		u2, err := ParseString("fuzz2.s", emit1)
		if err != nil {
			t.Fatalf("own output does not reparse: %v\n--- emitted ---\n%s", err, emit1)
		}
		if emit2 := u2.String(); emit2 != emit1 {
			t.Fatalf("print/reparse/print not a fixpoint\n--- first ---\n%s--- second ---\n%s", emit1, emit2)
		}
	})
}
