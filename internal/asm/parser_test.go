package asm

import (
	"strings"
	"testing"

	"mao/internal/ir"
	"mao/internal/x86"
)

func mustParse(t *testing.T, src string) *ir.Unit {
	t.Helper()
	u, err := ParseString("test.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u
}

func onlyInst(t *testing.T, src string) *x86.Inst {
	t.Helper()
	u := mustParse(t, src)
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			return n.Inst
		}
	}
	t.Fatalf("no instruction in %q", src)
	return nil
}

// The paper's Figure 1 snippet (181.mcf hot loop).
const fig1 = `
.L3:	movsbl 1(%rdi,%r8,4),%edx
	movsbl (%rdi,%r8,4),%eax
	movl %edx, (%rsi,%r8,4)
	addq $1, %r8
	nop
.L5:	movsbl 1(%rdi,%r8,4),%edx
	movsbl (%rdi,%r8,4),%eax
	movl %edx, (%rsi,%r8,4)
	addq $1, %r8
	cmpl %r8d, %r9d
	jg .L3
`

func TestParseFig1(t *testing.T) {
	u := mustParse(t, fig1)
	var insts []*x86.Inst
	var labels []string
	for n := u.List.Front(); n != nil; n = n.Next() {
		switch n.Kind {
		case ir.NodeInst:
			insts = append(insts, n.Inst)
		case ir.NodeLabel:
			labels = append(labels, n.Label)
		}
	}
	if len(insts) != 11 {
		t.Fatalf("got %d instructions, want 11", len(insts))
	}
	if len(labels) != 2 || labels[0] != ".L3" || labels[1] != ".L5" {
		t.Fatalf("labels = %v", labels)
	}
	first := insts[0]
	if first.Op != x86.OpMOVSX || first.Width != x86.W32 || first.SrcWidth != x86.W8 {
		t.Errorf("movsbl parsed as %+v", first.Mnem())
	}
	mem := first.Args[0].Mem
	if mem.Disp != 1 || mem.Base != x86.RDI || mem.Index != x86.R8 || mem.Scale != 4 {
		t.Errorf("memory operand = %+v", mem)
	}
	last := insts[10]
	if last.Op != x86.OpJCC || last.Cond != x86.CondG {
		t.Errorf("jg parsed as %+v", last.Mnem())
	}
	if tgt, ok := last.BranchTarget(); !ok || tgt != ".L3" {
		t.Errorf("branch target = %q, %v", tgt, ok)
	}
}

// The paper's Section II relaxation example.
const relaxExample = `
	push %rbp
	mov %rsp,%rbp
	movl $0x5,-0x4(%rbp)
	jmp .Lcheck
.Lbody:
	addl $0x1,-0x4(%rbp)
	subl $0x1,-0x4(%rbp)
.Lcheck:
	cmpl $0x0,-0x4(%rbp)
	jne .Lbody
`

func TestParseRelaxExample(t *testing.T) {
	u := mustParse(t, relaxExample)
	n := 0
	for m := u.List.Front(); m != nil; m = m.Next() {
		if m.Kind == ir.NodeInst {
			n++
		}
	}
	if n != 8 {
		t.Fatalf("got %d instructions, want 8", n)
	}
}

func TestOperandForms(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical printing
	}{
		{"mov %eax, %eax", "movl\t%eax, %eax"},
		{"andl $255,%eax", "andl\t$255, %eax"},
		{"subl $16, %r15d", "subl\t$16, %r15d"},
		{"testl %r15d, %r15d", "testl\t%r15d, %r15d"},
		{"movq 24(%rsp), %rdx", "movq\t24(%rsp), %rdx"},
		{"movq %rdx, %rcx", "movq\t%rdx, %rcx"},
		{"movss %xmm0,(%rdi,%rax,4)", "movss\t%xmm0, (%rdi,%rax,4)"},
		{"add $0x1,%rax", "addq\t$1, %rax"},
		{"cmp $0x8,%rax", "cmpq\t$8, %rax"},
		{"jne .L5", "jne\t.L5"},
		{"shrl $12, %edi", "shrl\t$12, %edi"},
		{"leal (%r8, %rdi), %ebx", "leal\t(%r8,%rdi,1), %ebx"},
		{"leal 2(%rdx), %r8d", "leal\t2(%rdx), %r8d"},
		{"xorb $01, %dl", "xorb\t$1, %dl"},
		{"sarl %ecx", "sarl\t%ecx"},
		{"call printf", "call\tprintf"},
		{"jmp *%rax", "jmp\t*%rax"},
		{"jmp *.Ltab(,%rdi,8)", "jmp\t*.Ltab(,%rdi,8)"},
		{"call *16(%rbx)", "call\t*16(%rbx)"},
		{"movl counter(%rip), %eax", "movl\tcounter(%rip), %eax"},
		{"movl counter+4(%rip), %eax", "movl\tcounter+4(%rip), %eax"},
		{"prefetchnta (%r9)", "prefetchnta\t(%r9)"},
		{"lock addl $1, (%rdi)", "lock addl\t$1, (%rdi)"},
		{"movabsq $81985529216486895, %r10", "movabsq\t$81985529216486895, %r10"},
		{"cmovle %eax, %ebx", "cmovle\t%eax, %ebx"},
		{"sete %al", "sete\t%al"},
		{"movzwl %ax, %ecx", "movzwl\t%ax, %ecx"},
		{"movslq %edi, %rax", "movslq\t%edi, %rax"},
		{"cvtsi2sdq %rax, %xmm0", "cvtsi2sdq\t%rax, %xmm0"},
		{"movq %xmm0, %rax", "movq\t%xmm0, %rax"},
		{"ret", "ret"},
		{"mov var, %eax", "movl\tvar, %eax"},
	}
	for _, c := range cases {
		in := onlyInst(t, c.src)
		if got := in.String(); got != c.want {
			t.Errorf("%q => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate %eax",
		"mov %nosuch, %eax",
		"mov $zz+, %eax",
		"movl 4(%rsp,%rbx,3), %eax", // bad scale
		"movl (%rsp,%rbx,8,9), %eax",
		"lock",
	}
	for _, src := range bad {
		if _, err := ParseString("bad.s", src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "bad.s:1") {
			t.Errorf("error %v lacks position", err)
		}
	}
}

func TestDirectives(t *testing.T) {
	src := `	.file "x.c"
	.text
	.globl main
	.type main, @function
main:
	.cfi_startproc
	ret
	.cfi_endproc
	.size main, .-main
	.section .rodata.str1.1,"aMS",@progbits,1
.LC0:
	.string "hello, world"
	.p2align 4,,15
`
	u := mustParse(t, src)
	f := u.Function("main")
	if f == nil {
		t.Fatal("function main not recognized")
	}
	if got := len(f.Instructions()); got != 1 {
		t.Errorf("main has %d instructions, want 1", got)
	}
	// The .string directive with a comma inside quotes must stay one arg.
	var strDir *ir.Node
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeDirective && n.Dir.Name == ".string" {
			strDir = n
		}
	}
	if strDir == nil || len(strDir.Dir.Args) != 1 || strDir.Dir.Args[0] != `"hello, world"` {
		t.Errorf(".string parsed wrong: %+v", strDir)
	}
}

func TestCommentsAndSeparators(t *testing.T) {
	src := "nop # this instruction speeds up\nnop; nop ; nop\n.string \"a # b\"\n"
	u := mustParse(t, src)
	insts := 0
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			insts++
		}
	}
	if insts != 4 {
		t.Errorf("got %d instructions, want 4", insts)
	}
}

func TestLabelOnSameLineAsInst(t *testing.T) {
	u := mustParse(t, ".L5: movsbl 1(%rdi,%r8,4),%edx")
	front := u.List.Front()
	if front.Kind != ir.NodeLabel || front.Label != ".L5" {
		t.Fatalf("front = %v", front)
	}
	if next := front.Next(); next == nil || next.Kind != ir.NodeInst {
		t.Fatalf("instruction after label missing")
	}
}

// Round-trip property: parse -> print -> parse -> print must be a
// fixed point (our analog of the paper's disassemble-and-compare
// verification in Section III-A).
func TestRoundTripFixedPoint(t *testing.T) {
	for _, src := range []string{fig1, relaxExample} {
		u1 := mustParse(t, src)
		s1 := u1.String()
		u2 := mustParse(t, s1)
		s2 := u2.String()
		if s1 != s2 {
			t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
		}
	}
}

func TestNegativeAndHexImmediates(t *testing.T) {
	in := onlyInst(t, "addq $-8, %rsp")
	if in.Args[0].Imm != -8 {
		t.Errorf("imm = %d", in.Args[0].Imm)
	}
	in = onlyInst(t, "movq $0xffffffffffffffff, %rax")
	if in.Args[0].Imm != -1 {
		t.Errorf("wraparound imm = %d", in.Args[0].Imm)
	}
}

func TestSymbolicImmediate(t *testing.T) {
	in := onlyInst(t, "movl $sym+4, %eax")
	a := in.Args[0]
	if a.Kind != x86.KindImm || a.Sym != "sym" || a.Imm != 4 {
		t.Errorf("symbolic immediate parsed as %+v", a)
	}
}
