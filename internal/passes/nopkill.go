package passes

import (
	"mao/internal/ir"
	"mao/internal/pass"
)

func init() {
	pass.Register(func() pass.Pass {
		return &nopKill{base: base{"NOPKILL", "remove alignment directives and nop instructions"}}
	})
}

// nopKill implements the paper's III-E.j experiment. Compilers insert
// alignment directives based on rough micro-architectural assumptions
// (align branch targets to 8 or 16 bytes); the assembler materializes
// them as variable-length nops. This pass removes them to measure how
// effective they actually are. The paper found the performance effect
// in the noise on several platforms, with a ~1% code-size improvement.
//
// Options: aligns[0] keeps alignment directives; nops[0] keeps nop
// instructions.
type nopKill struct {
	base
	parallelSafe
}

func (p *nopKill) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	killAligns := ctx.Opts.Bool("aligns", true)
	killNops := ctx.Opts.Bool("nops", true)

	changed := false
	for _, n := range f.CodeEntries() {
		switch n.Kind {
		case ir.NodeDirective:
			if _, isAlign := n.IsAlignDirective(); isAlign && killAligns {
				ctx.Trace(2, "%s: removing %v", f.Name, n.Dir)
				ctx.Delete(n)
				ctx.Count("aligns", 1)
				changed = true
			}
		case ir.NodeInst:
			if n.Inst.IsNop() && killNops {
				ctx.Trace(2, "%s: removing %v", f.Name, n.Inst)
				ctx.Delete(n)
				ctx.Count("nops", 1)
				changed = true
			}
		}
	}
	return changed, nil
}
