package passes

import (
	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass {
		return &addAdd{base: base{"ADDADD", "fold add/sub immediate chains on the same register"}}
	})
}

// addAdd implements the paper's III-B.d pattern:
//
//	add/sub $IMM1, rX
//	... no re-definition/use of rX, no use of condition codes
//	add/sub $IMM2, rX
//
// folds to a single add/sub with the combined constant. The combined
// result value is identical, but the intermediate flag settings
// differ, so every flag bit live after the second op must be one of
// SF/ZF/PF (which depend only on the final value), and no instruction
// in between may read flags.
type addAdd struct {
	base
	parallelSafe
}

func (p *addAdd) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	g := cfg.Build(f)
	live := dataflow.Live(g)

	changed := false
	for _, b := range g.Blocks {
	scan:
		for i := 0; i < len(b.Insts); i++ {
			first := b.Insts[i].Inst
			imm1, reg, ok := addSubImm(first)
			if !ok {
				continue
			}
			for j := i + 1; j < len(b.Insts); j++ {
				n := b.Insts[j]
				in := n.Inst
				if imm2, reg2, ok := addSubImm(in); ok && reg2 == reg && in.Width == first.Width {
					if live.FlagsLiveOut(n)&^(x86.SF|x86.ZF|x86.PF) != 0 {
						continue scan
					}
					sum := imm1 + imm2
					if sum < -1<<31 || sum > 1<<31-1 {
						continue scan // folded constant must stay imm32
					}
					ctx.Trace(2, "%s: folding %v + %v => add $%d", f.Name, first, in, sum)
					in.Op = x86.OpADD
					in.Args[0] = x86.Imm(sum)
					ctx.Rewrite(n)
					ctx.Delete(b.Insts[i])
					b.Insts = append(b.Insts[:i], b.Insts[i+1:]...)
					ctx.Count("folded", 1)
					changed = true
					i--
					continue scan
				}
				d := dataflow.InstDefUse(in)
				if d.FlagUses != 0 || d.Uses.Has(reg) || d.Defs.Has(reg) || d.Barrier {
					continue scan
				}
			}
		}
	}
	return changed, nil
}

// addSubImm matches "add $imm, reg" / "sub $imm, reg" and returns the
// signed contribution (negated for sub).
func addSubImm(in *x86.Inst) (imm int64, reg x86.Reg, ok bool) {
	if in.Op != x86.OpADD && in.Op != x86.OpSUB {
		return 0, 0, false
	}
	if len(in.Args) != 2 || in.Args[0].Kind != x86.KindImm ||
		in.Args[0].Sym != "" || in.Args[1].Kind != x86.KindReg {
		return 0, 0, false
	}
	imm = in.Args[0].Imm
	if in.Op == x86.OpSUB {
		imm = -imm
	}
	return imm, in.Args[1].Reg, true
}
