package passes

import (
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass {
		return &simAddr{base: base{"SIMADDR", "multiply PMU address samples by forward/backward instruction simulation"}}
	})
}

// RegSnapshot is one PMU-style sample: the sampled instruction node
// plus the general-purpose register file at that instant.
type RegSnapshot struct {
	Node *ir.Node
	GPR  [16]uint64
}

// RecoveredAddr is one effective address obtained by simulation.
type RecoveredAddr struct {
	Node *ir.Node
	Addr uint64
}

// simAddr implements the paper's III-E.m technique, built for the
// RACEZ sampling race detector: each PMU sample carries the register
// file, so the addresses of *neighbouring* memory instructions can be
// recovered by simulating a small instruction subset forward and
// backward from the sample point. For the paper's benchmarks this
// multiplied the effective-address sample count by 4.1–6.3x without
// raising the sampling frequency.
//
// Options: window[N] limits the simulation distance (default 16).
type simAddr struct {
	base
	snapshots []RegSnapshot
	recovered []RecoveredAddr
	direct    int // addresses observed directly at sample points
}

// SetSamples provides the PMU samples before the pass runs.
func (p *simAddr) SetSamples(snaps []RegSnapshot) { p.snapshots = snaps }

// Recovered returns every address recovered by the last run, including
// the directly sampled ones.
func (p *simAddr) Recovered() []RecoveredAddr { return p.recovered }

// Gain returns the effective-address multiplication factor the paper
// reports: all recovered addresses (direct + simulated) divided by the
// directly sampled ones.
func (p *simAddr) Gain() float64 {
	if p.direct == 0 {
		return 0
	}
	return float64(len(p.recovered)) / float64(p.direct)
}

func (p *simAddr) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	window := ctx.Opts.Int("window", 16)

	// Index nodes to find samples belonging to this function.
	inFunc := make(map[*ir.Node]bool)
	for _, n := range f.Instructions() {
		inFunc[n] = true
	}

	for _, snap := range p.snapshots {
		if !inFunc[snap.Node] {
			continue
		}

		// The sampled instruction's own address (if any) counts as
		// directly observed — that is all plain PMU sampling gets.
		regs := newKnownRegs(snap.GPR)
		if addr, ok := regs.memAddr(snap.Node.Inst); ok {
			p.recovered = append(p.recovered, RecoveredAddr{snap.Node, addr})
			p.direct++
			ctx.Count("sampled_addrs", 1)
		}

		// Forward simulation.
		fregs := newKnownRegs(snap.GPR)
		fregs.apply(snap.Node.Inst) // effects of the sampled instruction itself
		n := snap.Node.NextInst()
		for i := 0; i < window && n != nil; i++ {
			in := n.Inst
			if in.Op.IsBranch() {
				break
			}
			if addr, ok := fregs.memAddr(in); ok {
				p.recovered = append(p.recovered, RecoveredAddr{n, addr})
				ctx.Count("forward_addrs", 1)
			}
			fregs.apply(in)
			n = n.NextInst()
		}

		// Backward simulation: invert invertible register effects.
		bregs := newKnownRegs(snap.GPR)
		n = snap.Node.PrevInst()
		for i := 0; i < window && n != nil; i++ {
			in := n.Inst
			if in.Op.IsBranch() {
				break
			}
			if !bregs.unapply(in) {
				break // non-invertible definition of a needed register
			}
			if addr, ok := bregs.memAddr(in); ok {
				p.recovered = append(p.recovered, RecoveredAddr{n, addr})
				ctx.Count("backward_addrs", 1)
			}
			n = n.PrevInst()
		}
	}
	return false, nil
}

// knownRegs tracks which GPR families have known 64-bit values during
// the lightweight simulation.
type knownRegs struct {
	val   [16]uint64
	known [16]bool
}

func newKnownRegs(gpr [16]uint64) *knownRegs {
	k := &knownRegs{val: gpr}
	for i := range k.known {
		k.known[i] = true
	}
	return k
}

func (k *knownRegs) get(r x86.Reg) (uint64, bool) {
	n := r.Family().Num()
	if !k.known[n] {
		return 0, false
	}
	full := k.val[n]
	switch r.Width() {
	case x86.W32:
		return full & 0xFFFFFFFF, true
	case x86.W16:
		return full & 0xFFFF, true
	case x86.W8:
		if r.IsHighByte() {
			return (full >> 8) & 0xFF, true
		}
		return full & 0xFF, true
	}
	return full, true
}

func (k *knownRegs) kill(r x86.Reg) { k.known[r.Family().Num()] = false }

func (k *knownRegs) set(r x86.Reg, v uint64) {
	n := r.Family().Num()
	if r.Width() == x86.W64 {
		k.val[n], k.known[n] = v, true
		return
	}
	if r.Width() == x86.W32 {
		k.val[n], k.known[n] = v&0xFFFFFFFF, true
		return
	}
	// Partial writes need the previous value.
	if !k.known[n] {
		return
	}
	switch r.Width() {
	case x86.W16:
		k.val[n] = k.val[n]&^uint64(0xFFFF) | v&0xFFFF
	case x86.W8:
		if r.IsHighByte() {
			k.val[n] = k.val[n]&^uint64(0xFF00) | (v&0xFF)<<8
		} else {
			k.val[n] = k.val[n]&^uint64(0xFF) | v&0xFF
		}
	}
}

// memAddr computes the effective address of the instruction's memory
// operand when all address registers are known. Absolute symbols and
// RIP-relative references are skipped (the hardware sample already
// carries those statically).
func (k *knownRegs) memAddr(in *x86.Inst) (uint64, bool) {
	if in.Op == x86.OpLEA || in.Op.IsBranch() {
		return 0, false
	}
	mem, _ := in.MemArg()
	if mem == nil || mem.Star || mem.Mem.Sym != "" {
		return 0, false
	}
	m := mem.Mem
	if m.Base == x86.RegNone && m.Index == x86.RegNone {
		return 0, false
	}
	addr := uint64(m.Disp)
	if m.Base != x86.RegNone && m.Base != x86.RIP {
		v, ok := k.get(m.Base)
		if !ok {
			return 0, false
		}
		addr += v
	}
	if m.Index != x86.RegNone {
		v, ok := k.get(m.Index)
		if !ok {
			return 0, false
		}
		addr += v * uint64(m.EffScale())
	}
	return addr, true
}

// apply simulates the register effects of the small supported subset
// forward; everything else conservatively kills its destination.
func (k *knownRegs) apply(in *x86.Inst) {
	dst := in.Dst()
	if dst.Kind != x86.KindReg || !dst.Reg.IsGPR() {
		if in.Op == x86.OpCALL {
			// Calls clobber the caller-saved world.
			for _, r := range []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RSI,
				x86.RDI, x86.R8, x86.R9, x86.R10, x86.R11} {
				k.kill(r)
			}
		}
		return
	}
	switch in.Op {
	case x86.OpMOV, x86.OpMOVABS:
		src := in.Src()
		switch {
		case src.Kind == x86.KindImm && src.Sym == "":
			k.set(dst.Reg, uint64(src.Imm))
		case src.Kind == x86.KindReg && src.Reg.IsGPR():
			if v, ok := k.get(src.Reg); ok {
				k.set(dst.Reg, v)
			} else {
				k.kill(dst.Reg)
			}
		default:
			k.kill(dst.Reg) // loads produce unknown values
		}
	case x86.OpADD, x86.OpSUB:
		src := in.Src()
		if src.Kind == x86.KindImm && src.Sym == "" {
			if v, ok := k.get(dst.Reg); ok {
				if in.Op == x86.OpADD {
					k.set(dst.Reg, v+uint64(src.Imm))
				} else {
					k.set(dst.Reg, v-uint64(src.Imm))
				}
				return
			}
		}
		k.kill(dst.Reg)
	case x86.OpINC:
		if v, ok := k.get(dst.Reg); ok {
			k.set(dst.Reg, v+1)
			return
		}
		k.kill(dst.Reg)
	case x86.OpDEC:
		if v, ok := k.get(dst.Reg); ok {
			k.set(dst.Reg, v-1)
			return
		}
		k.kill(dst.Reg)
	case x86.OpLEA:
		if addr, ok := k.leaAddr(in); ok {
			k.set(dst.Reg, addr)
			return
		}
		k.kill(dst.Reg)
	default:
		k.kill(dst.Reg)
	}
}

func (k *knownRegs) leaAddr(in *x86.Inst) (uint64, bool) {
	m := in.Src().Mem
	if m.Sym != "" {
		return 0, false
	}
	addr := uint64(m.Disp)
	if m.Base != x86.RegNone && m.Base != x86.RIP {
		v, ok := k.get(m.Base)
		if !ok {
			return 0, false
		}
		addr += v
	}
	if m.Index != x86.RegNone {
		v, ok := k.get(m.Index)
		if !ok {
			return 0, false
		}
		addr += v * uint64(m.EffScale())
	}
	return addr, true
}

// unapply inverts an instruction's register effects walking backward.
// Invertible: add/sub/inc/dec with immediate on a known register.
// Non-destructive instructions (stores, cmp, test) pass through.
// Anything else that writes a register makes that register unknown
// before the instruction; if the write is invertible the pre-value is
// reconstructed. Returns false only for instructions that cannot be
// stepped across safely (calls).
func (k *knownRegs) unapply(in *x86.Inst) bool {
	if in.Op == x86.OpCALL {
		return false
	}
	dst := in.Dst()
	if dst.Kind != x86.KindReg || !dst.Reg.IsGPR() {
		return true // stores and flag-only ops don't change registers
	}
	switch in.Op {
	case x86.OpADD, x86.OpSUB:
		src := in.Src()
		if src.Kind == x86.KindImm && src.Sym == "" {
			if v, ok := k.get(dst.Reg); ok {
				if in.Op == x86.OpADD {
					k.set(dst.Reg, v-uint64(src.Imm))
				} else {
					k.set(dst.Reg, v+uint64(src.Imm))
				}
				return true
			}
		}
		k.kill(dst.Reg)
	case x86.OpINC:
		if v, ok := k.get(dst.Reg); ok {
			k.set(dst.Reg, v-1)
			return true
		}
		k.kill(dst.Reg)
	case x86.OpDEC:
		if v, ok := k.get(dst.Reg); ok {
			k.set(dst.Reg, v+1)
			return true
		}
		k.kill(dst.Reg)
	case x86.OpCMP, x86.OpTEST:
		// No register effects.
	default:
		// The pre-instruction value of the destination is unknown.
		k.kill(dst.Reg)
	}
	return true
}
