package passes

import (
	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass {
		return &redMem{base: base{"REDMOV", "rewrite repeated identical loads as register moves"}}
	})
}

// redMem implements the paper's III-B.c pattern. Because of phase
// ordering and register allocation, GCC emits repeated loads:
//
//	movq 24(%rsp), %rdx
//	movq 24(%rsp), %rcx
//
// The second load can reuse the first's register:
//
//	movq 24(%rsp), %rdx
//	movq %rdx, %rcx
//
// which is two bytes shorter and performs one explicit memory access.
// Soundness (MAO has no alias analysis, so everything is syntactic):
// between the two loads there must be no store, no barrier, no write
// to the first destination, and no write to the address registers.
// When both loads target the same register the second is removed
// outright.
type redMem struct {
	base
	parallelSafe
}

func (p *redMem) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	g := cfg.Build(f)

	changed := false
	for _, b := range g.Blocks {
		for i := 0; i < len(b.Insts); i++ {
			first := b.Insts[i].Inst
			if !isRegLoad(first) {
				continue
			}
			mem := first.Args[0].Mem
			dst := first.Args[1].Reg

			for j := i + 1; j < len(b.Insts); j++ {
				n := b.Insts[j]
				in := n.Inst
				if isRegLoad(in) && in.Width == first.Width && sameMem(in.Args[0].Mem, mem) {
					second := in.Args[1].Reg
					if second == dst {
						ctx.Trace(2, "%s: removing fully redundant %v", f.Name, in)
						ctx.Delete(n)
						b.Insts = append(b.Insts[:j], b.Insts[j+1:]...)
						j--
						ctx.Count("removed", 1)
						changed = true
						continue
					}
					ctx.Trace(2, "%s: rewriting %v -> mov %s, %s", f.Name, in, dst.ATT(), second.ATT())
					in.Args[0] = x86.RegOp(dst)
					ctx.Rewrite(n)
					ctx.Count("rewritten", 1)
					changed = true
					continue
				}
				if killsLoadPattern(in, mem, dst) {
					break
				}
			}
		}
	}
	return changed, nil
}

// isRegLoad matches "mov mem, reg" of GPRs.
func isRegLoad(in *x86.Inst) bool {
	return in.Op == x86.OpMOV && len(in.Args) == 2 &&
		in.Args[0].Kind == x86.KindMem && !in.Args[0].Star &&
		in.Args[1].Kind == x86.KindReg && in.Args[1].Reg.IsGPR()
}

// killsLoadPattern reports whether in invalidates reuse of a value
// loaded from mem into dst.
func killsLoadPattern(in *x86.Inst, mem x86.Mem, dst x86.Reg) bool {
	d := dataflow.InstDefUse(in)
	if d.Barrier || d.MemDef {
		return true
	}
	if d.Defs.Has(dst) {
		return true
	}
	if mem.Base != x86.RegNone && mem.Base != x86.RIP && d.Defs.Has(mem.Base) {
		return true
	}
	if mem.Index != x86.RegNone && d.Defs.Has(mem.Index) {
		return true
	}
	return false
}
