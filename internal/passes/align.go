package passes

import (
	"fmt"
	"sort"

	"mao/internal/cfg"
	"mao/internal/ir"
	"mao/internal/loops"
	"mao/internal/pass"
	"mao/internal/relax"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

func init() {
	pass.Register(func() pass.Pass {
		return &loop16{base{"LOOP16", "align short loops to 16-byte decode-line boundaries"}}
	})
	pass.Register(func() pass.Pass {
		return &lsdFit{base{"LSD", "fit hot loops into the Loop Stream Detector's decode-line window"}}
	})
	pass.Register(func() pass.Pass {
		return &brAlign{base{"BRALIGN", "separate branches aliasing in PC>>5-indexed predictor buckets"}}
	})
}

// loopExtent computes a loop's [start, end) address range, requiring a
// contiguous body. ok is false for non-contiguous or empty loops.
func loopExtent(l *loops.Loop, layout *relax.Layout) (start, end int64, ok bool) {
	blocks := l.AllBlocks()
	if len(blocks) == 0 || l.Header == nil {
		return 0, 0, false
	}
	start, end = -1, -1
	var covered int64
	for _, b := range blocks {
		for _, n := range b.Insts {
			a := layout.Addr(n)
			ln := int64(layout.Len(n))
			if start == -1 || a < start {
				start = a
			}
			if a+ln > end {
				end = a + ln
			}
			covered += ln
		}
	}
	if start < 0 || end <= start {
		return 0, 0, false
	}
	// Contiguity: the loop's instructions must fill the whole range
	// (labels and non-emitting directives occupy no bytes).
	if covered != end-start {
		return 0, 0, false
	}
	return start, end, true
}

// headerLabelNode finds the IR label node of the loop header.
func headerLabelNode(f *ir.Function, l *loops.Loop) *ir.Node {
	if l.Header == nil || l.Header.Label == "" {
		return nil
	}
	return f.Unit().FindLabel(l.Header.Label)
}

// loop16 implements the paper's III-C.e optimization. The Core-2
// front end decodes instructions in 16-byte chunks; a short loop body
// crossing a 16-byte boundary decodes as two lines instead of one,
// which degraded 252.eon by 7% between GCC releases. Aligning short
// loops to 16 bytes restores single-line decode.
//
// Options: size[N] maximum body size to align (default 16).
type loop16 struct{ base }

// RunUnit relaxes the unit once and processes every function against
// that layout. Insertions shift later code, but the inserted alignment
// directives are self-correcting, and the misalignment decision is a
// heuristic anyway — one relaxation per invocation keeps the pass
// linear in unit size (relaxing per function would be quadratic).
func (p *loop16) RunUnit(ctx *pass.Ctx) (bool, error) {
	maxSize := int64(ctx.Opts.Int("size", 16))

	layout, err := relax.Relax(ctx.Unit, &relax.Options{Cache: ctx.Cache, State: ctx.Relax})
	if err != nil {
		return false, err
	}

	changed := false
	for _, f := range ctx.Unit.Functions() {
		g := cfg.Build(f)
		lsg := loops.Find(g)
		for _, l := range lsg.InnerLoops() {
			head := headerLabelNode(f, l)
			if head == nil {
				continue
			}
			start, end, ok := loopExtent(l, layout)
			if !ok || end-start > maxSize {
				continue
			}
			if start%16 == 0 {
				continue // already aligned
			}
			if prev := head.Prev(); prev != nil {
				if _, isAlign := prev.IsAlignDirective(); isAlign {
					continue // already explicitly aligned
				}
			}
			ctx.Trace(2, "%s: aligning loop %s (size %d, at %#x)", f.Name, l.Header, end-start, start)
			ctx.InsertBefore(ir.DirectiveNode(".p2align", "4"), head)
			ctx.Count("aligned", 1)
			changed = true
		}
	}
	return changed, nil
}

// lsdFit implements the paper's III-C.f optimization. The Loop Stream
// Detector streams loops from a small buffer, bypassing fetch and
// decode, but only if the loop spans at most four 16-byte decode
// lines (and runs enough iterations, with simple branching — dynamic
// conditions the static pass cannot see). A loop whose size would fit
// four lines but whose placement straddles five or six gets NOPs
// inserted before it to shift it into a window; the paper's Figure 4/5
// example gains 2x from exactly this.
//
// Options: lines[N] decode-line budget (default 4), linesize[N]
// (default 16).
type lsdFit struct{ base }

func (p *lsdFit) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	maxLines := int64(ctx.Opts.Int("lines", 4))
	lineSize := int64(ctx.Opts.Int("linesize", 16))

	changed := false
	fixed := map[string]bool{}
	// Fixing one loop shifts everything after it, so re-relax and
	// re-scan until no fixable loop remains.
	for iter := 0; iter < 32; iter++ {
		layout, err := relax.Relax(f.Unit(), &relax.Options{Cache: ctx.Cache, State: ctx.Relax})
		if err != nil {
			return changed, err
		}
		g := cfg.Build(f)
		lsg := loops.Find(g)

		inner := lsg.InnerLoops()
		sort.Slice(inner, func(i, j int) bool {
			hi, hj := headerLabelNode(f, inner[i]), headerLabelNode(f, inner[j])
			if hi == nil || hj == nil {
				return hi != nil
			}
			return layout.Addr(hi) < layout.Addr(hj)
		})

		again := false
		for _, l := range inner {
			head := headerLabelNode(f, l)
			if head == nil || fixed[l.Header.Label] {
				continue
			}
			start, end, ok := loopExtent(l, layout)
			if !ok {
				continue
			}
			size := end - start
			spans := func(s int64) int64 { return (s%lineSize+size-1)/lineSize + 1 }
			if spans(start) <= maxLines {
				continue
			}
			// Find the smallest shift bringing the loop into budget.
			shift := int64(-1)
			for k := int64(1); k < lineSize; k++ {
				if spans(start+k) <= maxLines {
					shift = k
					break
				}
			}
			fixed[l.Header.Label] = true
			if shift < 0 {
				ctx.Trace(2, "%s: loop %s too large for %d lines (size %d)",
					f.Name, l.Header, maxLines, size)
				continue
			}
			ctx.Trace(2, "%s: shifting loop %s by %d nops (%d -> %d lines)",
				f.Name, l.Header, shift, spans(start), spans(start+shift))
			for _, nop := range encode.OneByteNops(int(shift)) {
				ctx.InsertBefore(ir.InstNode(nop), head)
			}
			ctx.Count("shifted", 1)
			ctx.Count("nops", int(shift))
			changed = true
			again = true
			break // re-relax before judging later loops
		}
		if !again {
			return changed, nil
		}
	}
	return changed, fmt.Errorf("LSD: did not stabilize")
}

// brAlign implements the paper's III-C.g optimization. On many Intel
// platforms branch-predictor structures are indexed by PC>>5, so two
// back branches inside the same 32-byte bucket share prediction state;
// with two short-running nested loops this aliasing confuses the
// predictor constantly. The pass moves the second branch into the next
// bucket by inserting NOPs in front of it.
//
// Options: shift[N] index shift (default 5).
type brAlign struct{ base }

func (p *brAlign) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	shift := uint(ctx.Opts.Int("shift", 5))
	bucket := func(a int64) int64 { return a >> shift }

	changed := false
	for iter := 0; iter < 32; iter++ {
		layout, err := relax.Relax(f.Unit(), &relax.Options{Cache: ctx.Cache, State: ctx.Relax})
		if err != nil {
			return changed, err
		}

		// Collect conditional back branches in address order.
		var backs []*ir.Node
		for _, n := range f.Instructions() {
			in := n.Inst
			if in.Op != x86.OpJCC {
				continue
			}
			tgt, ok := in.BranchTarget()
			if !ok {
				continue
			}
			taddr, known := layout.SymAddr(tgt)
			if known && taddr <= layout.Addr(n) {
				backs = append(backs, n)
			}
		}
		sort.Slice(backs, func(i, j int) bool { return layout.Addr(backs[i]) < layout.Addr(backs[j]) })

		again := false
		for i := 1; i < len(backs); i++ {
			a, b := layout.Addr(backs[i-1]), layout.Addr(backs[i])
			if bucket(a) != bucket(b) {
				continue
			}
			pad := (bucket(b)+1)<<shift - b
			ctx.Trace(2, "%s: branches at %#x/%#x alias (bucket %d); padding %d",
				f.Name, a, b, bucket(a), pad)
			for _, nop := range encode.OneByteNops(int(pad)) {
				ctx.InsertBefore(ir.InstNode(nop), backs[i])
			}
			ctx.Count("separated", 1)
			ctx.Count("nops", int(pad))
			changed = true
			again = true
			break
		}
		if !again {
			return changed, nil
		}
	}
	return changed, fmt.Errorf("BRALIGN: did not stabilize")
}
