package passes

import (
	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass { return &dce{base: base{"DCE", "remove unreachable code"}} })
	pass.Register(func() pass.Pass {
		return &constFold{base: base{"CONSTFOLD", "fold constants through mov-immediate chains"}}
	})
}

// dce implements the unreachable-code-elimination part of the paper's
// scalar optimizations (Section III-D). Blocks unreachable from the
// function entry are deleted. Functions with unresolved indirect
// branches are skipped — the CFG's edges are incomplete there, so
// "unreachable" cannot be trusted.
type dce struct {
	base
	parallelSafe
}

func (p *dce) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	g := cfg.Build(f)
	if f.Unresolved {
		ctx.Trace(1, "%s: skipped (unresolved indirect branches)", f.Name)
		return false, nil
	}
	if len(g.Blocks) == 0 {
		return false, nil
	}

	reachable := make(map[*cfg.BasicBlock]bool)
	var visit func(b *cfg.BasicBlock)
	visit = func(b *cfg.BasicBlock) {
		if reachable[b] {
			return
		}
		reachable[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Blocks[0])

	changed := false
	for _, b := range g.Blocks {
		if reachable[b] {
			continue
		}
		// A labeled block may be targeted from outside the function
		// (e.g. by address-taken labels); only unlabeled blocks and
		// compiler-local labels are safe to delete.
		if b.Label != "" && !isLocalLabel(b.Label) {
			continue
		}
		for _, n := range b.Insts {
			ctx.Trace(2, "%s: removing unreachable %v", f.Name, n.Inst)
			ctx.Delete(n)
			ctx.Count("removed", 1)
			changed = true
		}
	}
	return changed, nil
}

func isLocalLabel(l string) bool { return len(l) >= 2 && l[0] == '.' && l[1] == 'L' }

// constFold folds immediate chains at the assembly level:
//
//	movl $A, r ... addl $B, r   =>   movl $A+B, r
//
// provided nothing between uses or redefines r, nothing reads the
// intermediate flags, and the arithmetic flags of the folded op are
// dead afterwards (mov sets no flags where add set them). There is
// typically not much opportunity left in compiler output, but the
// paper keeps a standard scalar set for the benefit of simple code
// generators feeding MAO.
type constFold struct {
	base
	parallelSafe
}

func (p *constFold) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	g := cfg.Build(f)
	live := dataflow.Live(g)

	changed := false
	for _, b := range g.Blocks {
	scan:
		for i := 0; i < len(b.Insts); i++ {
			mov := b.Insts[i].Inst
			movImm, reg, ok := movImmReg(mov)
			if !ok {
				continue
			}
			for j := i + 1; j < len(b.Insts); j++ {
				n := b.Insts[j]
				in := n.Inst
				if add, reg2, ok := addSubImm(in); ok && reg2 == reg && in.Width == mov.Width {
					if live.FlagsLiveOut(n) != 0 {
						continue scan
					}
					folded := movImm + add
					if mov.Width == x86.W32 {
						folded = int64(int32(folded))
					}
					if folded < -1<<31 || folded > 1<<31-1 {
						continue scan
					}
					ctx.Trace(2, "%s: folding %v through %v", f.Name, mov, in)
					in.Op = x86.OpMOV
					in.Args[0] = x86.Imm(folded)
					ctx.Rewrite(n)
					ctx.Delete(b.Insts[i])
					b.Insts = append(b.Insts[:i], b.Insts[i+1:]...)
					ctx.Count("folded", 1)
					changed = true
					i--
					continue scan
				}
				d := dataflow.InstDefUse(in)
				if d.FlagUses != 0 || d.Uses.Has(reg) || d.Defs.Has(reg) || d.Barrier {
					continue scan
				}
			}
		}
	}
	return changed, nil
}

// movImmReg matches "mov $imm, reg".
func movImmReg(in *x86.Inst) (int64, x86.Reg, bool) {
	if in.Op != x86.OpMOV || len(in.Args) != 2 {
		return 0, 0, false
	}
	if in.Args[0].Kind != x86.KindImm || in.Args[0].Sym != "" ||
		in.Args[1].Kind != x86.KindReg {
		return 0, 0, false
	}
	return in.Args[0].Imm, in.Args[1].Reg, true
}
