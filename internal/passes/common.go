// Package passes implements MAO's optimization and analysis pass
// catalog: the pattern-matching peepholes of paper Section III-B, the
// alignment optimizations of III-C, the scalar optimizations of III-D,
// the experimental passes of III-E, and the scheduling pass of III-F.
//
// Importing this package registers every pass with the pass framework;
// pipelines are then assembled by name:
//
//	mgr, _ := pass.NewManager("REDTEST:REDMOV:ASM=o[out.s]")
package passes

import (
	"mao/internal/dataflow"
	"mao/internal/x86"
)

// base provides the Name/Description plumbing shared by all passes.
type base struct {
	name, desc string
}

func (b base) Name() string        { return b.name }
func (b base) Description() string { return b.desc }

// parallelSafe is embedded by function passes whose RunFunc touches
// only the span of the function it is given (no whole-unit relaxation,
// no mutable pass-instance state shared across functions). It marks
// them pass.ParallelSafe, letting the manager shard the unit across
// its worker pool. Passes that relax the whole unit (LSD, BRALIGN,
// INSTRUMENT) or accumulate per-unit state (SIMADDR) must not embed it.
type parallelSafe struct{}

func (parallelSafe) ParallelSafe() bool { return true }

// writesRegFamily reports whether the instruction writes any register
// aliasing r.
func writesRegFamily(in *x86.Inst, r x86.Reg) bool {
	d := dataflow.InstDefUse(in)
	return d.Defs.Has(r)
}

// usesRegFamily reports whether the instruction reads any register
// aliasing r.
func usesRegFamily(in *x86.Inst, r x86.Reg) bool {
	d := dataflow.InstDefUse(in)
	return d.Uses.Has(r)
}

// sameMem reports whether two memory references are syntactically
// identical (the only memory equivalence MAO reasons about — it has no
// alias analysis).
func sameMem(a, b x86.Mem) bool {
	return a.Disp == b.Disp && a.Sym == b.Sym && a.Base == b.Base &&
		a.Index == b.Index && a.EffScale() == b.EffScale()
}

// resultFlagsOps lists the opcodes whose SF/ZF/PF reflect their result
// value — the precondition for removing a following "test r, r".
// and/or/xor additionally define CF=OF=0 exactly as test does.
var resultFlagsOps = map[x86.Op]bool{
	x86.OpADD: true, x86.OpSUB: true, x86.OpADC: true, x86.OpSBB: true,
	x86.OpAND: true, x86.OpOR: true, x86.OpXOR: true,
	x86.OpINC: true, x86.OpDEC: true, x86.OpNEG: true,
}

// zeroesCFOF lists opcodes that define CF=OF=0 like test does.
var zeroesCFOF = map[x86.Op]bool{
	x86.OpAND: true, x86.OpOR: true, x86.OpXOR: true,
}
