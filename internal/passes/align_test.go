package passes

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/x86"
)

// relaxOf re-relaxes the unit after a pass ran.
func relaxOf(t *testing.T, u *ir.Unit) *relax.Layout {
	t.Helper()
	l, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatalf("relax: %v", err)
	}
	return l
}

// --- LOOP16 -------------------------------------------------------------

func TestLoop16AlignsShortLoop(t *testing.T) {
	// 13 bytes of prologue leave the loop head misaligned; the body
	// (movss 5 + add 4 + cmp 4 + jne 2 = 15 bytes) fits one decode
	// line once aligned. This mirrors the paper's 252.eon loop.
	u, stats := runPass(t, "LOOP16", `
	nop
	nop
	nop
	nop
	nop
.Lloop:
	movss %xmm0, (%rdi,%rax,4)
	addq $1, %rax
	cmpq $8, %rax
	jne .Lloop
	ret
`)
	if stats.Get("LOOP16", "aligned") != 1 {
		t.Fatalf("aligned = %d, want 1\n%s", stats.Get("LOOP16", "aligned"), u)
	}
	l := relaxOf(t, u)
	head := u.FindLabel(".Lloop")
	if addr := l.Addr(head); addr%16 != 0 {
		t.Errorf("loop head at %#x, want 16-byte aligned", addr)
	}
}

func TestLoop16SkipsAlignedLoop(t *testing.T) {
	_, stats := runPass(t, "LOOP16", `
.Lloop:
	movss %xmm0, (%rdi,%rax,4)
	addq $1, %rax
	cmpq $8, %rax
	jne .Lloop
	ret
`)
	if stats.Get("LOOP16", "aligned") != 0 {
		t.Error("already-aligned loop must be left alone")
	}
}

func TestLoop16SkipsBigLoop(t *testing.T) {
	var body strings.Builder
	body.WriteString("\tnop\n.Lloop:\n")
	for i := 0; i < 10; i++ {
		body.WriteString("\taddq $100000, %rax\n") // 7 bytes each
	}
	body.WriteString("\tjne .Lloop\n\tret\n")
	_, stats := runPass(t, "LOOP16", body.String())
	if stats.Get("LOOP16", "aligned") != 0 {
		t.Error("loop larger than 16 bytes must not be aligned by LOOP16")
	}
}

// --- LSD ------------------------------------------------------------------

func TestLSDShiftsStraddlingLoop(t *testing.T) {
	// A ~60-byte loop placed at offset 9 spans 5 lines
	// ((9%16 + 60 - 1)/16 + 1 = 5); shifting it fits 4.
	var body strings.Builder
	body.WriteString("\tnop\n\tnop\n\tnop\n\tnop\n\tnop\n\tnop\n\tnop\n\tnop\n\tnop\n")
	body.WriteString(".Lloop:\n")
	for i := 0; i < 14; i++ {
		body.WriteString("\taddq $1, %rax\n") // 4 bytes each = 56
	}
	body.WriteString("\tjne .Lloop\n") // +2 = 58 bytes total
	body.WriteString("\tret\n")

	u, stats := runPass(t, "LSD", body.String())
	if stats.Get("LSD", "shifted") != 1 {
		t.Fatalf("shifted = %d, want 1\n%s", stats.Get("LSD", "shifted"), u)
	}
	l := relaxOf(t, u)
	head := u.FindLabel(".Lloop")
	start := l.Addr(head)
	var end int64
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if n.Inst.Op == x86.OpJCC {
				end = l.Addr(n) + int64(l.Len(n))
			}
		}
	}
	size := end - start
	lines := (start%16+size-1)/16 + 1
	if lines > 4 {
		t.Errorf("loop still spans %d lines (start %#x size %d)", lines, start, size)
	}
}

func TestLSDLeavesFittingLoop(t *testing.T) {
	_, stats := runPass(t, "LSD", `
.Lloop:
	addq $1, %rax
	jne .Lloop
	ret
`)
	if stats.Get("LSD", "shifted") != 0 {
		t.Error("loop already within the LSD window must be untouched")
	}
}

func TestLSDGivesUpOnHugeLoop(t *testing.T) {
	var body strings.Builder
	body.WriteString(".Lloop:\n")
	for i := 0; i < 30; i++ {
		body.WriteString("\taddq $1, %rax\n") // 120 bytes > 64
	}
	body.WriteString("\tjne .Lloop\n\tret\n")
	_, stats := runPass(t, "LSD", body.String())
	if stats.Get("LSD", "shifted") != 0 {
		t.Error("loop that can never fit must not be shifted")
	}
}

// --- BRALIGN -----------------------------------------------------------------

func TestBrAlignSeparatesAliasedBranches(t *testing.T) {
	// Two-deep nest of short loops: both back branches land in the
	// same 32-byte bucket, as in the paper's image-benchmark example.
	u, stats := runPass(t, "BRALIGN", `
.Louter:
	movl $2, %edx
.Linner:
	addl $1, %eax
	addl $2, %ebx
	decl %edx
	jne .Linner
	decl %ecx
	jne .Louter
	ret
`)
	if stats.Get("BRALIGN", "separated") != 1 {
		t.Fatalf("separated = %d, want 1\n%s", stats.Get("BRALIGN", "separated"), u)
	}
	l := relaxOf(t, u)
	var branchAddrs []int64
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if n.Inst.Op == x86.OpJCC {
				branchAddrs = append(branchAddrs, l.Addr(n))
			}
		}
	}
	if len(branchAddrs) != 2 {
		t.Fatalf("branches = %d", len(branchAddrs))
	}
	if branchAddrs[0]>>5 == branchAddrs[1]>>5 {
		t.Errorf("branches still alias: %#x and %#x", branchAddrs[0], branchAddrs[1])
	}
}

func TestBrAlignLeavesSeparatedBranches(t *testing.T) {
	// Layout places the first back branch at byte 27 (bucket 0) and
	// the second at byte 34 (bucket 1): no aliasing, nothing to do.
	var body strings.Builder
	body.WriteString(".Louter:\n\tmovl $2, %edx\n.Linner:\n")
	for i := 0; i < 5; i++ {
		body.WriteString("\taddq $1, %rax\n") // 4 bytes each
	}
	body.WriteString("\tdecl %edx\n\tjne .Linner\n\tdecl %ecx\n")
	body.WriteString("\tnop\n\tnop\n\tnop\n")
	body.WriteString("\tjne .Louter\n\tret\n")
	u, stats := runPass(t, "BRALIGN", body.String())
	if stats.Get("BRALIGN", "separated") != 0 {
		l := relaxOf(t, u)
		var addrs []int64
		for _, f := range u.Functions() {
			for _, n := range f.Instructions() {
				if n.Inst.Op == x86.OpJCC {
					addrs = append(addrs, l.Addr(n))
				}
			}
		}
		t.Errorf("branches in different buckets must be untouched (addrs %#x)", addrs)
	}
}

// --- INSTRUMENT -----------------------------------------------------------------

func TestInstrumentPlantsProbes(t *testing.T) {
	u, stats := runPass(t, "INSTRUMENT", `
	movl $1, %eax
	testl %edi, %edi
	je .Lout
	movl $2, %eax
.Lout:
	ret
`)
	if got := stats.Get("INSTRUMENT", "entry_exit_points"); got != 2 {
		t.Fatalf("probes = %d, want 2 (entry + one ret)", got)
	}
	l := relaxOf(t, u)
	probes := 0
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if n.Inst.Op == x86.OpNOP && l.Len(n) == 5 {
				probes++
				a := l.Addr(n)
				if a/32 != (a+4)/32 {
					t.Errorf("probe at %#x crosses a 32-byte line", a)
				}
			}
		}
	}
	if probes != 2 {
		t.Errorf("found %d five-byte probes, want 2", probes)
	}
}

func TestInstrumentPadsAcrossLineBoundary(t *testing.T) {
	// 29 bytes of padding put the pre-ret probe at offset 34 without
	// padding... construct a function whose ret-probe would straddle:
	// entry probe (5) + 25 bytes of body = 30; a probe at 30 crosses
	// the 32-byte line, forcing pad nops.
	var body strings.Builder
	for i := 0; i < 6; i++ {
		body.WriteString("\taddq $1, %rax\n") // 24 bytes
	}
	body.WriteString("\tnop\n\tret\n")
	u, stats := runPass(t, "INSTRUMENT", body.String())
	if stats.Get("INSTRUMENT", "pad_nops") == 0 {
		t.Fatalf("expected pad nops\n%s", u)
	}
	l := relaxOf(t, u)
	for _, f := range u.Functions() {
		for _, n := range f.Instructions() {
			if n.Inst.Op == x86.OpNOP && l.Len(n) == 5 {
				if a := l.Addr(n); a/32 != (a+4)/32 {
					t.Errorf("probe at %#x still crosses line", a)
				}
			}
		}
	}
}

// --- PREFNTA ----------------------------------------------------------------------

func TestPrefNTAFromProfileFile(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "reuse.prof")
	// Instruction index 1 is the load from (%rsi).
	if err := os.WriteFile(prof, []byte("# reuse profile\nf 1 100000\nf 0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	u, stats := runPass(t, "PREFNTA=profile["+prof+"],mindist[4096]", `
	movq (%rdi), %rax
	movq (%rsi), %rbx
	ret
`)
	if stats.Get("PREFNTA", "prefetches") != 1 {
		t.Fatalf("prefetches = %d, want 1\n%s", stats.Get("PREFNTA", "prefetches"), u)
	}
	insts := instStrings(u)
	if insts[1] != "prefetchnta\t(%rsi)" {
		t.Errorf("prefetch placement wrong: %v", insts)
	}
}

func TestPrefNTAIdempotent(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "reuse.prof")
	if err := os.WriteFile(prof, []byte("f 0 100000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pipeline := "PREFNTA=profile[" + prof + "]"
	u, _ := runPass(t, pipeline+":"+pipeline, "\tmovq (%rdi), %rax\n\tret\n")
	count := 0
	for _, s := range instStrings(u) {
		if strings.HasPrefix(s, "prefetchnta") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("prefetch count = %d, want 1 (idempotence)", count)
	}
}
