package passes

import (
	"math/rand/v2"

	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86/encode"
)

func init() {
	pass.Register(func() pass.Pass {
		return &nopin{base: base{"NOPIN", "Nopinizer: insert random nop sequences to expose micro-architectural cliffs"}}
	})
}

// nopin is the Nopinizer of paper Section III-E.i, inspired by blind
// optimization: it inserts random sequences of nop instructions into
// the code stream so that code gets shifted around enough to expose
// micro-architectural cliffs (alias constraints, branch-predictor
// limitations). A seed makes experiments repeatable.
//
// Options:
//
//	seed[N]    PRNG seed (default 1)
//	density[P] insertion probability in percent per instruction
//	           (default 10)
//	maxlen[L]  maximum nop-sequence length in instructions (default 1)
type nopin struct {
	base
	parallelSafe
}

func (p *nopin) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	seed := uint64(ctx.Opts.Int("seed", 1))
	density := ctx.Opts.Int("density", 10)
	maxLen := ctx.Opts.Int("maxlen", 1)
	if maxLen < 1 {
		maxLen = 1
	}

	// The stream is derived from the seed and the function name so
	// that the insertion pattern is stable per function regardless of
	// file-level context.
	h := seed
	for _, c := range f.Name {
		h = h*131 + uint64(c)
	}
	rng := rand.New(rand.NewPCG(seed, h))

	changed := false
	for _, n := range f.Instructions() {
		if rng.IntN(100) >= density {
			continue
		}
		count := 1 + rng.IntN(maxLen)
		for _, nop := range encode.OneByteNops(count) {
			ctx.InsertBefore(ir.InstNode(nop), n)
		}
		ctx.Count("inserted", count)
		changed = true
	}
	return changed, nil
}
