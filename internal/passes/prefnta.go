package passes

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass {
		return &prefNTA{base: base{"PREFNTA", "inverse prefetching: make low-reuse loads non-temporal via prefetchnta"}}
	})
}

// ReuseSite identifies one load instruction by function name and
// instruction index (position among the function's instructions), with
// its profiled reuse distance (dynamic instructions between touches of
// the same cache line) and footprint (distinct lines the site touched).
type ReuseSite struct {
	Function  string
	Index     int
	Distance  int64
	Footprint int64
}

// prefNTA implements the paper's III-E.k technique: on Core-2, a load
// preceded by a prefetchnta to the same address becomes non-temporal
// and replaces only a single way of the associative caches, reducing
// cache pollution. A memory reuse-distance profiler identifies loads
// with little reuse; this pass plants the prefetchnta instructions.
//
// Profiles come either programmatically (SetProfile, as the pmu
// package produces them) or from a file via the profile[path] option,
// one "function index distance" triple per line. mindist[N] sets the
// reuse-distance threshold above which a load is considered
// low-reuse (default 4096).
type prefNTA struct {
	base
	parallelSafe
	profile []ReuseSite
}

// SetProfile injects a reuse-distance profile programmatically.
func (p *prefNTA) SetProfile(sites []ReuseSite) { p.profile = sites }

func (p *prefNTA) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	minDist := int64(ctx.Opts.Int("mindist", 4096))
	minFoot := int64(ctx.Opts.Int("minfootprint", 0))
	sites := p.profile
	if path := ctx.Opts.String("profile", ""); path != "" {
		loaded, err := LoadReuseProfile(path)
		if err != nil {
			return false, err
		}
		// Copy before appending: p.profile's backing array is shared
		// across concurrent RunFunc calls.
		sites = append(append([]ReuseSite(nil), sites...), loaded...)
	}

	want := make(map[int]bool)
	for _, s := range sites {
		if s.Function == f.Name && s.Distance >= minDist && s.Footprint >= minFoot {
			want[s.Index] = true
		}
	}
	if len(want) == 0 {
		return false, nil
	}

	changed := false
	for idx, n := range f.Instructions() {
		if !want[idx] {
			continue
		}
		in := n.Inst
		if in.Op == x86.OpPREFETCHNTA || in.Op == x86.OpPREFETCHT0 ||
			in.Op == x86.OpPREFETCHT1 || in.Op == x86.OpPREFETCHT2 {
			continue // never prefetch a prefetch
		}
		mem, _ := in.MemArg()
		if mem == nil || !in.ReadsMemory() || in.Op.IsBranch() {
			continue
		}
		// Skip if the previous instruction is already the prefetch.
		if prev := n.PrevInst(); prev != nil && prev.Inst.Op == x86.OpPREFETCHNTA &&
			len(prev.Inst.Args) == 1 && sameMem(prev.Inst.Args[0].Mem, mem.Mem) {
			continue
		}
		pf := x86.NewInst(x86.Mnem{Op: x86.OpPREFETCHNTA}, x86.MemOp(mem.Mem))
		ctx.InsertBefore(ir.InstNode(pf), n)
		ctx.Trace(2, "%s: non-temporal hint for %v (site %d)", f.Name, in, idx)
		ctx.Count("prefetches", 1)
		changed = true
	}
	return changed, nil
}

// LoadReuseProfile reads a reuse-distance profile file: one
// "function index distance" triple per line, '#' comments allowed.
func LoadReuseProfile(path string) ([]ReuseSite, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()

	var out []ReuseSite
	sc := bufio.NewScanner(fh)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want 'function index distance [footprint]'", path, lineNo)
		}
		var s ReuseSite
		s.Function = fields[0]
		if _, err := fmt.Sscanf(fields[1], "%d", &s.Index); err != nil {
			return nil, fmt.Errorf("%s:%d: bad index %q", path, lineNo, fields[1])
		}
		if _, err := fmt.Sscanf(fields[2], "%d", &s.Distance); err != nil {
			return nil, fmt.Errorf("%s:%d: bad distance %q", path, lineNo, fields[2])
		}
		if len(fields) == 4 {
			if _, err := fmt.Sscanf(fields[3], "%d", &s.Footprint); err != nil {
				return nil, fmt.Errorf("%s:%d: bad footprint %q", path, lineNo, fields[3])
			}
		}
		out = append(out, s)
	}
	return out, sc.Err()
}
