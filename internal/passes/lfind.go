package passes

import (
	"fmt"
	"os"
	"path/filepath"

	"mao/internal/cfg"
	"mao/internal/ir"
	"mao/internal/loops"
	"mao/internal/pass"
)

func init() {
	pass.Register(func() pass.Pass {
		return &lfind{base: base{"LFIND", "analysis: recognize loops and report the loop structure graph"}}
	})
}

// lfind is the loop-finding analysis pass used as the command-line
// example in the paper ("--mao=LFIND=trace[0]:ASM=o[/dev/null]"). It
// builds the CFG and the Havlak loop structure graph and reports what
// it found via tracing and statistics. The dot[dir] option writes
// each function's CFG in Graphviz format to dir/<function>.dot.
type lfind struct {
	base
	parallelSafe
}

func (p *lfind) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	g := cfg.Build(f)
	lsg := loops.Find(g)

	if dir := ctx.Opts.String("dot", ""); dir != "" {
		path := filepath.Join(dir, f.Name+".dot")
		if err := os.WriteFile(path, []byte(g.DOT()), 0o644); err != nil {
			return false, fmt.Errorf("LFIND: %w", err)
		}
		ctx.Trace(1, "wrote %s", path)
	}

	ctx.Trace(1, "Func: %s: %d blocks, %d loops", f.Name, len(g.Blocks), len(lsg.Loops))
	for _, l := range lsg.Loops {
		kind := "reducible"
		if !l.Reducible {
			kind = "IRREDUCIBLE"
		}
		ctx.Trace(2, "  loop header=%v depth=%d blocks=%d %s",
			l.Header, l.Depth, len(l.Blocks), kind)
	}

	ctx.Count("loops", len(lsg.Loops))
	ctx.Count("innermost", len(lsg.InnerLoops()))
	for _, l := range lsg.Loops {
		if !l.Reducible {
			ctx.Count("irreducible", 1)
		}
	}
	if f.Unresolved {
		ctx.Count("unresolved_functions", 1)
	}
	return false, nil
}
