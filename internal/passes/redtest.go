package passes

import (
	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass {
		return &redTest{base: base{"REDTEST", "remove redundant test instructions after flag-setting arithmetic"}}
	})
}

// redTest implements the paper's III-B.b pattern: GCC does not model
// the x86 condition codes well and emits
//
//	subl  $16, %r15d
//	testl %r15d, %r15d   # redundant: subl already set the flags
//
// Removal is sound when three conditions hold:
//
//  1. Walking back from the test (within its block), the first
//     instruction touching the flags or the tested register is an
//     arithmetic op whose destination IS the tested register and whose
//     SF/ZF/PF reflect its result (add/sub/and/or/xor/inc/dec/neg...),
//     at the same operand width.
//  2. Nothing between that op and the test reads flags.
//  3. Every flag bit live after the test is one the preceding op
//     defines identically to test: SF/ZF/PF always; CF/OF only for
//     the logical ops that zero them like test does.
//
// This is the "precise condition-code model" the paper credits for
// finding 19272 redundant tests (24%) in the Google core library.
type redTest struct {
	base
	parallelSafe
}

func (p *redTest) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	g := cfg.Build(f)
	live := dataflow.Live(g)

	changed := false
	for _, b := range g.Blocks {
		for i, n := range b.Insts {
			in := n.Inst
			if !isSelfTest(in) {
				continue
			}
			reg := in.Args[0].Reg
			def := findFlagSource(b, i, reg)
			if def == nil {
				continue
			}
			identical := x86.SF | x86.ZF | x86.PF
			if zeroesCFOF[def.Inst.Op] {
				identical |= x86.CF | x86.OF
			}
			if live.FlagsLiveOut(n)&^identical != 0 {
				ctx.Trace(3, "%s: keeping %v: consumer reads %v", f.Name, in,
					live.FlagsLiveOut(n)&^identical)
				continue
			}
			ctx.Trace(2, "%s: removing %v (flags set by %v)", f.Name, in, def.Inst)
			ctx.Delete(n)
			ctx.Count("removed", 1)
			changed = true
		}
	}
	return changed, nil
}

// isSelfTest matches "test r, r" with both operands the same register.
func isSelfTest(in *x86.Inst) bool {
	return in.Op == x86.OpTEST && len(in.Args) == 2 &&
		in.Args[0].Kind == x86.KindReg && in.Args[1].Kind == x86.KindReg &&
		in.Args[0].Reg == in.Args[1].Reg
}

// findFlagSource walks backward from b.Insts[i] looking for the
// instruction that determines the flags test would set, subject to the
// soundness conditions above. It returns nil when no qualifying
// instruction exists.
func findFlagSource(b *cfg.BasicBlock, i int, reg x86.Reg) *ir.Node {
	testWidth := reg.Width()
	for j := i - 1; j >= 0; j-- {
		n := b.Insts[j]
		in := n.Inst
		d := dataflow.InstDefUse(in)
		if d.FlagUses != 0 {
			return nil // someone between reads flags; structure too complex
		}
		touchesReg := d.Defs.Has(reg)
		touchesFlags := d.FlagDefs != 0
		if !touchesReg && !touchesFlags {
			continue
		}
		// The first toucher must be: result-flag arithmetic, writing
		// exactly the tested register at the tested width, with fully
		// defined SF/ZF/PF.
		if !resultFlagsOps[in.Op] || d.Barrier {
			return nil
		}
		if len(in.Args) == 0 {
			return nil
		}
		dst := in.Args[len(in.Args)-1]
		if dst.Kind != x86.KindReg || dst.Reg != reg || in.Width != testWidth {
			return nil
		}
		return n
	}
	return nil
}
