package passes

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

// paperSimAddrExample is the III-E.m instruction sequence:
//
//	IP1: mov -0x08(%rbp), %edx
//	IP2: mov %edx, (%rax)
//	IP3: addl 0x1, -0x4(%rbp)
const paperSimAddrExample = `
	mov -0x08(%rbp), %edx
	mov %edx, (%rax)
	addl $0x1, -0x4(%rbp)
	ret
`

func runSimAddr(t *testing.T, body string, snaps func(f *ir.Function) []RegSnapshot, opts string) (*simAddr, *pass.Stats) {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	f := u.Function("f")
	p := pass.Lookup("SIMADDR").(*simAddr)
	p.SetSamples(snaps(f))

	stats := pass.NewStats()
	ctx := pass.NewCtx(u, "SIMADDR", optsOf(t, opts), stats)
	if _, err := p.RunFunc(ctx, f); err != nil {
		t.Fatal(err)
	}
	return p, stats
}

// optsOf builds an Options via the pipeline parser.
func optsOf(t *testing.T, opts string) *pass.Options {
	t.Helper()
	spec := "SIMADDR"
	if opts != "" {
		spec += "=" + opts
	}
	invs, err := pass.ParsePipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	return invs[0].Opts
}

func TestSimAddrForward(t *testing.T) {
	// Sample at IP1 with rax known: forward simulation recovers IP2's
	// store address through %rax, exactly the paper's example.
	p, _ := runSimAddr(t, paperSimAddrExample, func(f *ir.Function) []RegSnapshot {
		insts := f.Instructions()
		var snap RegSnapshot
		snap.Node = insts[0]
		snap.GPR[x86.RAX.Num()] = 0x1000
		snap.GPR[x86.RBP.Num()] = 0x7000
		return []RegSnapshot{snap}
	}, "")
	var addrs []uint64
	for _, r := range p.Recovered() {
		addrs = append(addrs, r.Addr)
	}
	// Directly sampled: IP1's own -8(%rbp) = 0x6FF8. Forward: IP2's
	// (%rax) = 0x1000 and IP3's -4(%rbp) = 0x6FFC.
	want := map[uint64]bool{0x6FF8: true, 0x1000: true, 0x6FFC: true}
	for _, a := range addrs {
		delete(want, a)
	}
	if len(want) != 0 {
		t.Errorf("missing recovered addresses %v (got %#x)", want, addrs)
	}
	if p.Gain() < 3 {
		t.Errorf("gain = %.1f, want 3x on this sample", p.Gain())
	}
}

func TestSimAddrBackward(t *testing.T) {
	// Sample at IP3: backward simulation recovers IP2's address via
	// the still-live %rax (the paper's backward case).
	p, stats := runSimAddr(t, paperSimAddrExample, func(f *ir.Function) []RegSnapshot {
		insts := f.Instructions()
		var snap RegSnapshot
		snap.Node = insts[2]
		snap.GPR[x86.RAX.Num()] = 0x2000
		snap.GPR[x86.RBP.Num()] = 0x7000
		return []RegSnapshot{snap}
	}, "")
	found := false
	for _, r := range p.Recovered() {
		if r.Addr == 0x2000 {
			found = true
		}
	}
	if !found {
		t.Errorf("backward simulation missed (%%rax) address; got %+v", p.Recovered())
	}
	if stats.Get("SIMADDR", "backward_addrs") == 0 {
		t.Error("no backward addresses counted")
	}
}

func TestSimAddrInvertsArithmetic(t *testing.T) {
	// Walking backward across "addq $32, %rax" must reconstruct the
	// pre-add value for the earlier load's address.
	body := `
	movq (%rax), %rcx
	addq $32, %rax
	movq (%rax), %rdx
	ret
`
	p, _ := runSimAddr(t, body, func(f *ir.Function) []RegSnapshot {
		insts := f.Instructions()
		var snap RegSnapshot
		snap.Node = insts[2] // second load; rax already advanced
		snap.GPR[x86.RAX.Num()] = 0x5020
		return []RegSnapshot{snap}
	}, "")
	want := map[uint64]bool{0x5020: true, 0x5000: true}
	for _, r := range p.Recovered() {
		delete(want, r.Addr)
	}
	if len(want) != 0 {
		t.Errorf("missing %v; recovered %+v", want, p.Recovered())
	}
}

func TestSimAddrStopsAtUnknowns(t *testing.T) {
	// A load into the base register kills forward recovery past it,
	// and a call stops backward recovery.
	body := `
	movq (%rbx), %rbx
	movq (%rbx), %rcx
	ret
`
	p, _ := runSimAddr(t, body, func(f *ir.Function) []RegSnapshot {
		insts := f.Instructions()
		var snap RegSnapshot
		snap.Node = insts[0]
		snap.GPR[x86.RBX.Num()] = 0x3000
		return []RegSnapshot{snap}
	}, "")
	for _, r := range p.Recovered() {
		if r.Node.Inst.String() == "movq\t(%rbx), %rcx" {
			t.Error("second load's address depends on an unknown loaded value")
		}
	}
}

func TestSimAddrWindowOption(t *testing.T) {
	body := `
	movq (%rax), %rcx
	nop
	nop
	nop
	movq 8(%rax), %rdx
	ret
`
	snaps := func(f *ir.Function) []RegSnapshot {
		var snap RegSnapshot
		snap.Node = f.Instructions()[0]
		snap.GPR[x86.RAX.Num()] = 0x4000
		return []RegSnapshot{snap}
	}
	wide, _ := runSimAddr(t, body, snaps, "window[8]")
	if len(wide.Recovered()) != 2 {
		t.Errorf("window 8 recovered %d, want 2", len(wide.Recovered()))
	}
	narrow, _ := runSimAddr(t, body, snaps, "window[2]")
	if len(narrow.Recovered()) != 1 {
		t.Errorf("window 2 recovered %d, want 1", len(narrow.Recovered()))
	}
}
