package passes

import (
	"fmt"

	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/relax"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

func init() {
	pass.Register(func() pass.Pass {
		return &instrument{base{"INSTRUMENT", "plant patchable 5-byte nops at function entry and exit points"}}
	})
}

// instrument implements the paper's III-E.l experiment: dynamic binary
// instrumentation wants to overwrite code with a 5-byte branch to
// trampoline code atomically. That is only safe if a single 5-byte
// instruction already sits at the instrumentation point and does not
// cross a cache line. The pass plants a 5-byte nop at every function
// entry and immediately before every return, padding with 1-byte nops
// when the 5-byte nop would straddle a cache-line boundary.
//
// Options: linesize[N] cache-line size (default 32).
type instrument struct{ base }

func (p *instrument) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	lineSize := int64(ctx.Opts.Int("linesize", 32))

	// Plant the probes first: one after the entry label, one before
	// each ret.
	var probes []*ir.Node
	entry := f.EntryLabel()
	if entry == nil {
		return false, nil
	}
	probe := func(at *ir.Node, before bool) {
		n := ir.InstNode(encode.Nop(5))
		if before {
			ctx.InsertBefore(n, at)
		} else {
			ctx.InsertAfter(n, at)
		}
		probes = append(probes, n)
	}
	probe(entry, false)
	for _, n := range f.Instructions() {
		if n.Inst.Op == x86.OpRET && !n.Inst.IsNop() {
			probe(n, true)
		}
	}
	ctx.Count("entry_exit_points", len(probes))

	// Now iterate: any probe crossing a cache line gets 1-byte nops in
	// front until it fits. Each insertion can shift later probes, so
	// re-relax until stable.
	for iter := 0; iter < 64; iter++ {
		layout, err := relax.Relax(f.Unit(), &relax.Options{Cache: ctx.Cache, State: ctx.Relax})
		if err != nil {
			return true, err
		}
		moved := false
		for _, n := range probes {
			a := layout.Addr(n)
			if a/lineSize == (a+4)/lineSize {
				continue
			}
			pad := lineSize - a%lineSize // bytes to the next line start
			ctx.Trace(2, "%s: probe at %#x crosses %d-byte line; padding %d",
				f.Name, a, lineSize, pad)
			for _, nop := range encode.OneByteNops(int(pad)) {
				ctx.InsertBefore(ir.InstNode(nop), n)
			}
			ctx.Count("pad_nops", int(pad))
			moved = true
			break
		}
		if !moved {
			return true, nil
		}
	}
	return true, fmt.Errorf("INSTRUMENT: did not stabilize")
}
