package passes

import (
	"fmt"
	"os"

	"mao/internal/pass"
)

func init() {
	pass.Register(func() pass.Pass { return &asmOut{base{"ASM", "emit the unit as textual assembly"}} })
}

// asmOut is the assembly-emission pass, invoked like the original:
//
//	--mao=REDTEST:ASM=o[out.s]
//
// The o option names the output file ("-" or absent = stdout). As in
// the paper, analysis-only pipelines simply omit the pass.
type asmOut struct{ base }

// Effectful: emission writes outside the IR, so pipelines containing
// ASM are never answered from the memo (a hit would skip the write).
func (p *asmOut) Effectful() bool { return true }

func (p *asmOut) RunUnit(ctx *pass.Ctx) (bool, error) {
	path := ctx.Opts.String("o", "-")
	if path == "-" {
		_, err := ctx.Unit.WriteTo(os.Stdout)
		return false, err
	}
	f, err := os.Create(path)
	if err != nil {
		return false, fmt.Errorf("ASM: %w", err)
	}
	defer f.Close()
	if _, err := ctx.Unit.WriteTo(f); err != nil {
		return false, err
	}
	ctx.Trace(1, "wrote %s", path)
	return false, f.Sync()
}
