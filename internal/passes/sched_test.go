package passes

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/pass"
)

// paperHashBlock is the Section III-F hashing microbenchmark block:
// the xorl feeds three instructions with no dependencies among them.
const paperHashBlock = `
	xorl %edi, %ebx
	subl %ebx, %ecx
	subl %ebx, %edx
	movl %ebx, %edi
	shrl $12, %edi
	xorl %edi, %edx
	ret
`

// runSchedTracked parses body, captures the original instruction node
// order, runs SCHED, and verifies that every dependent pair kept its
// relative order — the scheduler's core invariant.
func runSchedTracked(t *testing.T, pipeline, body string) {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := u.Function("f")
	orig := f.Instructions()
	origPos := make(map[*ir.Node]int, len(orig))
	for i, n := range orig {
		origPos[n] = i
	}

	mgr, err := pass.NewManager(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(u); err != nil {
		t.Fatal(err)
	}

	finalPos := make(map[*ir.Node]int)
	for i, n := range f.Instructions() {
		finalPos[n] = i
	}
	if len(finalPos) != len(origPos) {
		t.Fatalf("scheduler changed instruction count: %d -> %d", len(origPos), len(finalPos))
	}
	for i := 0; i < len(orig); i++ {
		di := dataflow.InstDefUse(orig[i].Inst)
		for j := i + 1; j < len(orig); j++ {
			dj := dataflow.InstDefUse(orig[j].Inst)
			// Flag WAW between writers with dead defs is legitimately
			// reorderable, so it is not checked here; the exec-based
			// semantics-preservation property test covers it.
			dep := di.Defs&dj.Uses != 0 || di.Uses&dj.Defs != 0 ||
				di.Defs&dj.Defs != 0 ||
				di.FlagDefs&dj.FlagUses != 0 ||
				di.FlagUses&dj.FlagDefs != 0 ||
				(di.MemDef && (dj.MemUse || dj.MemDef)) ||
				(di.MemUse && dj.MemDef) ||
				di.Barrier || dj.Barrier
			if dep && finalPos[orig[i]] > finalPos[orig[j]] {
				t.Errorf("dependent pair reordered:\n  %v\n  %v", orig[i].Inst, orig[j].Inst)
			}
		}
	}
}

func TestSchedPreservesDependences(t *testing.T) {
	runSchedTracked(t, "SCHED", paperHashBlock)
	runSchedTracked(t, "SCHED=costfn[ports]", paperHashBlock)
	runSchedTracked(t, "SCHED", `
	movq (%rdi), %rax
	addq %rax, %rbx
	movq %rbx, (%rdi)
	movq (%rsi), %rcx
	imulq %rcx, %rdx
	leaq (%rdx,%rbx), %r8
	cmpq %r8, %r9
	je .Lx
	nop
.Lx:
	ret
`)
}

func TestSchedHashBlockHoistsCriticalPath(t *testing.T) {
	u, _ := runPass(t, "SCHED", paperHashBlock)
	insts := instStrings(u)
	// The critical path is xorl -> movl -> shrl -> xorl (height 4);
	// the two subl sinks (height 1) must not stay ahead of the movl
	// chain under the critical-path cost function.
	var movPos, sub1Pos int
	for i, s := range insts {
		if strings.HasPrefix(s, "movl\t%ebx, %edi") {
			movPos = i
		}
		if strings.HasPrefix(s, "subl\t%ebx, %ecx") {
			sub1Pos = i
		}
	}
	if movPos > sub1Pos {
		t.Errorf("critical-path instruction scheduled after sink:\n%s",
			strings.Join(insts, "\n"))
	}
}

func TestSchedNaiveKeepsOrder(t *testing.T) {
	u, stats := runPass(t, "SCHED=costfn[naive]", paperHashBlock)
	if stats.Get("SCHED", "moved") != 0 {
		t.Errorf("naive cost function must keep original order:\n%s",
			strings.Join(instStrings(u), "\n"))
	}
}

func TestSchedKeepsTerminatorLast(t *testing.T) {
	u, _ := runPass(t, "SCHED", `
	movl $1, %eax
	imull %esi, %edi
	movl $2, %ebx
	movl $3, %ecx
	jne .Lx
.Lx:
	ret
`)
	insts := instStrings(u)
	// jne must still be immediately before ret.
	if !strings.HasPrefix(insts[len(insts)-2], "jne") {
		t.Errorf("terminator moved:\n%s", strings.Join(insts, "\n"))
	}
}

func TestSchedSkipsBlocksWithCalls(t *testing.T) {
	_, stats := runPass(t, "SCHED", `
	movl $1, %eax
	call g
	movl $2, %ebx
	movl $3, %ecx
	ret
`)
	if stats.Get("SCHED", "moved") != 0 {
		t.Error("blocks with calls must not be scheduled")
	}
}

func TestSchedDoesNotReorderStores(t *testing.T) {
	u, _ := runPass(t, "SCHED", `
	movq %rax, (%rdi)
	movq %rbx, (%rsi)
	movq (%rdx), %rcx
	imull %r8d, %r9d
	ret
`)
	insts := instStrings(u)
	s1, s2, ld := -1, -1, -1
	for i, s := range insts {
		switch {
		case strings.HasPrefix(s, "movq\t%rax, (%rdi)"):
			s1 = i
		case strings.HasPrefix(s, "movq\t%rbx, (%rsi)"):
			s2 = i
		case strings.HasPrefix(s, "movq\t(%rdx), %rcx"):
			ld = i
		}
	}
	if s1 > s2 || s2 > ld {
		t.Errorf("memory order violated:\n%s", strings.Join(insts, "\n"))
	}
}

func TestSchedFlagDependence(t *testing.T) {
	// The cmp/jcc pair's flag dependence: nothing that writes flags
	// may slip between cmp and the terminator consuming it. The
	// terminator is pinned, so verify no flag-writer ends up after
	// the cmp.
	u, _ := runPass(t, "SCHED", `
	movl $1, %eax
	imull %esi, %r10d
	cmpl %r8d, %r9d
	je .Lx
.Lx:
	ret
`)
	insts := instStrings(u)
	cmpPos, imulPos := -1, -1
	for i, s := range insts {
		if strings.HasPrefix(s, "cmpl") {
			cmpPos = i
		}
		if strings.HasPrefix(s, "imull") {
			imulPos = i
		}
	}
	if imulPos > cmpPos {
		t.Errorf("flag-writing imull scheduled after cmp:\n%s", strings.Join(insts, "\n"))
	}
}

func TestSchedPortsVariantRuns(t *testing.T) {
	u, _ := runPass(t, "SCHED=costfn[ports]", `
	leaq (%r8,%rdi), %rbx
	movq %rbx, %rcx
	sarq %rcx
	movq %rcx, %rdx
	xorb $1, %dl
	leaq 2(%rdx), %r8
	ret
`)
	// The paper's port-constrained block: correctness only — the lea
	// chain is fully serial, so order must be unchanged.
	insts := instStrings(u)
	want := []string{"leaq", "movq", "sarq", "movq", "xorb", "leaq", "ret"}
	for i, w := range want {
		if !strings.HasPrefix(insts[i], w) {
			t.Fatalf("serial chain reordered:\n%s", strings.Join(insts, "\n"))
		}
	}
}

func TestSchedIndependentChainsMayInterleave(t *testing.T) {
	// Two independent dependence chains; the scheduler may interleave
	// them but must keep each chain in order.
	runSchedTracked(t, "SCHED", `
	movl $1, %eax
	imull %eax, %eax
	addl %eax, %eax
	movl $2, %ebx
	imull %ebx, %ebx
	addl %ebx, %ebx
	ret
`)
}
