package passes

import (
	"sort"

	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass {
		return &sched{base: base{"SCHED", "list scheduling within basic blocks (critical-path cost function)"}}
	})
}

// sched implements the paper's Section III-F scheduling pass: a
// framework for list scheduling at the assembly instruction level
// within single basic blocks. Changing the cost function implements
// different heuristics; the default cost function ensures that, when
// scheduling successors of an instruction with multiple fan-outs, the
// instructions on the critical path are given a higher priority. In
// the paper this recovered 15% on a hashing microbenchmark whose
// degradation correlated with RESOURCE_STALLS:RS_FULL — a result-
// forwarding bandwidth limitation.
//
// Options:
//
//	costfn[critpath|naive|ports]  scheduling heuristic (default critpath)
type sched struct {
	base
	parallelSafe
}

// schedLatency is the scheduler's static latency estimate per opcode —
// deliberately coarse; the point of the pass is relative priority, not
// cycle accuracy.
func schedLatency(in *x86.Inst) int {
	switch in.Op {
	case x86.OpIMUL, x86.OpMUL:
		return 3
	case x86.OpIDIV, x86.OpDIV:
		return 20
	case x86.OpADDSS, x86.OpADDSD, x86.OpSUBSS, x86.OpSUBSD:
		return 3
	case x86.OpMULSS, x86.OpMULSD:
		return 5
	case x86.OpDIVSS, x86.OpDIVSD, x86.OpSQRTSS, x86.OpSQRTSD:
		return 20
	case x86.OpCVTSI2SS, x86.OpCVTSI2SD, x86.OpCVTTSS2SI, x86.OpCVTTSD2SI:
		return 4
	}
	if in.ReadsMemory() {
		return 4 // L1 load-to-use
	}
	return 1
}

// schedPorts returns the execution ports an instruction can issue to,
// mirroring the paper's Core-2 observation that lea executes only on
// port 0 while shifts execute on ports 0 and 5.
func schedPorts(in *x86.Inst) []int {
	switch {
	case in.Op == x86.OpLEA:
		return []int{0}
	case in.Op == x86.OpSHL || in.Op == x86.OpSHR || in.Op == x86.OpSAR ||
		in.Op == x86.OpROL || in.Op == x86.OpROR:
		return []int{0, 5}
	case in.ReadsMemory():
		return []int{2}
	case in.WritesMemory():
		return []int{3}
	case in.Op.IsSSE():
		return []int{0, 1}
	default:
		return []int{0, 1, 5}
	}
}

type depNode struct {
	node    *ir.Node
	index   int // original position
	preds   map[int]bool
	succs   []int
	height  int // critical-path length to block end
	latency int
}

func (p *sched) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	costFn := ctx.Opts.String("costfn", "critpath")

	g := cfg.Build(f)
	live := dataflow.Live(g)
	changed := false
	for _, b := range g.Blocks {
		if p.scheduleBlock(ctx, f, b, costFn, live) {
			changed = true
		}
	}
	return changed, nil
}

// scheduleBlock reorders one block's instructions respecting all
// dependences. The terminator (and anything after a barrier structure
// we refuse to move) stays in place.
func (p *sched) scheduleBlock(ctx *pass.Ctx, f *ir.Function, b *cfg.BasicBlock, costFn string, live *dataflow.Liveness) bool {
	insts := b.Insts
	// Exclude the terminator from scheduling.
	n := len(insts)
	if term := b.Terminator(); term != nil {
		n--
	}
	if n < 3 {
		return false
	}
	body := insts[:n]

	// Refuse blocks containing barriers or unknown-effect
	// instructions — not worth the risk for a micro-architectural
	// pass.
	nodes := make([]*depNode, n)
	for i, x := range body {
		d := dataflow.InstDefUse(x.Inst)
		if d.Barrier {
			return false
		}
		nodes[i] = &depNode{node: x, index: i, preds: make(map[int]bool), latency: schedLatency(x.Inst)}
	}

	// Flag defs are overwhelmingly dead on x86 (every ALU op writes
	// them); serializing all flag writers would forbid any useful
	// schedule. A flag def is LIVE only when the next flag-touching
	// instruction after it (in original order) — or the terminator /
	// a successor block — READS flags; a def followed first by
	// another writer is dead and needs no WAW ordering. Every writer
	// still gets an edge to each live def after it, keeping the
	// consumed def last.
	flagsLiveAfterBody := x86.Flags(0)
	if n > 0 {
		flagsLiveAfterBody = live.FlagsLiveOut(body[n-1])
	}
	liveFlagDef := make([]bool, n)
	pendingReader := flagsLiveAfterBody != 0
	for i := n - 1; i >= 0; i-- {
		d := dataflow.InstDefUse(body[i].Inst)
		liveFlagDef[i] = d.FlagDefs != 0 && pendingReader
		if d.FlagUses != 0 {
			pendingReader = true
		} else if d.FlagDefs != 0 {
			pendingReader = false
		}
	}

	// Dependence edges. Memory: loads may reorder among themselves;
	// any store serializes against all other memory operations
	// (syntactic model, no alias analysis).
	for i := 0; i < n; i++ {
		di := dataflow.InstDefUse(body[i].Inst)
		for j := i + 1; j < n; j++ {
			dj := dataflow.InstDefUse(body[j].Inst)
			raw := di.Defs&dj.Uses != 0 || di.FlagDefs&dj.FlagUses != 0
			war := di.Uses&dj.Defs != 0 || di.FlagUses&dj.FlagDefs != 0
			waw := di.Defs&dj.Defs != 0 ||
				(di.FlagDefs&dj.FlagDefs != 0 && liveFlagDef[j])
			mem := (di.MemDef && (dj.MemUse || dj.MemDef)) ||
				(di.MemUse && dj.MemDef)
			if raw || war || waw || mem {
				if !nodes[j].preds[i] {
					nodes[j].preds[i] = true
					nodes[i].succs = append(nodes[i].succs, j)
				}
			}
		}
	}

	// Critical-path heights (backward).
	for i := n - 1; i >= 0; i-- {
		h := nodes[i].latency
		for _, s := range nodes[i].succs {
			if v := nodes[i].latency + nodes[s].height; v > h {
				h = v
			}
		}
		nodes[i].height = h
	}

	// List scheduling.
	indeg := make([]int, n)
	for i := range nodes {
		indeg[i] = len(nodes[i].preds)
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	portBusy := make(map[int]bool) // ports taken in the current issue group
	groupSize := 0
	const issueWidth = 3

	for len(ready) > 0 {
		sort.Slice(ready, func(a, c int) bool {
			x, y := nodes[ready[a]], nodes[ready[c]]
			switch costFn {
			case "naive":
				return x.index < y.index
			case "ports":
				// Prefer instructions whose ports are free this
				// group, then critical path.
				fx, fy := portFree(portBusy, x.node.Inst), portFree(portBusy, y.node.Inst)
				if fx != fy {
					return fx
				}
				fallthrough
			default: // critpath
				if x.height != y.height {
					return x.height > y.height
				}
				return x.index < y.index
			}
		})
		pick := ready[0]
		ready = ready[1:]
		order = append(order, pick)

		if costFn == "ports" {
			for _, pt := range schedPorts(nodes[pick].node.Inst) {
				if !portBusy[pt] {
					portBusy[pt] = true
					break
				}
			}
			groupSize++
			if groupSize == issueWidth {
				groupSize = 0
				portBusy = make(map[int]bool)
			}
		}
		for _, s := range nodes[pick].succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}

	// Count movement and rebuild the block if anything moved.
	moved := 0
	for pos, idx := range order {
		if idx != pos {
			moved++
		}
	}
	if moved == 0 {
		return false
	}
	ctx.Count("moved", moved)
	ctx.Trace(2, "%s: block %v: reordered %d of %d instructions", f.Name, b, moved, n)

	// Relink IR nodes in the new order, anchored before the node that
	// followed the last body instruction.
	var anchor *ir.Node
	if n < len(insts) {
		anchor = insts[n] // the terminator
	} else {
		anchor = body[n-1].Next()
	}
	newBody := make([]*ir.Node, 0, n)
	for _, idx := range order {
		x := nodes[idx].node
		if anchor != nil {
			ctx.MoveBefore(x, anchor)
		} else {
			ctx.MoveToEnd(x)
		}
		newBody = append(newBody, x)
	}
	b.Insts = append(newBody, insts[n:]...)
	return true
}

// portFree reports whether any of the instruction's ports is free.
func portFree(busy map[int]bool, in *x86.Inst) bool {
	for _, p := range schedPorts(in) {
		if !busy[p] {
			return true
		}
	}
	return false
}
