package passes

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/pass"
)

// runPass parses a function body, runs one pass over it, and returns
// the resulting unit and stats.
func runPass(t *testing.T, pipeline, body string) (*ir.Unit, *pass.Stats) {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mgr, err := pass.NewManager(pipeline)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	stats, err := mgr.Run(u)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return u, stats
}

func instStrings(u *ir.Unit) []string {
	var out []string
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			out = append(out, n.Inst.String())
		}
	}
	return out
}

func countInsts(u *ir.Unit) int { return len(instStrings(u)) }

// --- REDZEXT -----------------------------------------------------------

func TestRedZextRemoves(t *testing.T) {
	u, stats := runPass(t, "REDZEXT", `
	andl $255, %eax
	mov %eax, %eax
	movl %eax, %ebx
	ret
`)
	if stats.Get("REDZEXT", "removed") != 1 {
		t.Fatalf("removed = %d, want 1", stats.Get("REDZEXT", "removed"))
	}
	for _, s := range instStrings(u) {
		if s == "movl\t%eax, %eax" {
			t.Error("redundant zero-extension still present")
		}
	}
}

func TestRedZextKeepsArgumentExtension(t *testing.T) {
	// No reaching def: the self-move zero-extends an incoming
	// argument whose upper bits the ABI leaves undefined.
	_, stats := runPass(t, "REDZEXT", `
	mov %edi, %edi
	movq %rdi, %rax
	ret
`)
	if stats.Get("REDZEXT", "removed") != 0 {
		t.Error("must not remove zero-extension of incoming argument")
	}
}

func TestRedZextKeepsAfter64BitDef(t *testing.T) {
	_, stats := runPass(t, "REDZEXT", `
	movq $-1, %rax
	mov %eax, %eax
	movq %rax, %rbx
	ret
`)
	if stats.Get("REDZEXT", "removed") != 0 {
		t.Error("must not remove zero-extension after 64-bit def")
	}
}

func TestRedZextMergePoint(t *testing.T) {
	// Both reaching defs are 32-bit: removable even across the merge.
	_, stats := runPass(t, "REDZEXT", `
	testl %edi, %edi
	je .Lelse
	movl $1, %eax
	jmp .Lj
.Lelse:
	movl $2, %eax
.Lj:
	mov %eax, %eax
	ret
`)
	if stats.Get("REDZEXT", "removed") != 1 {
		t.Error("merge of 32-bit defs must still allow removal")
	}
	// One 64-bit def poisons the merge.
	_, stats = runPass(t, "REDZEXT", `
	testl %edi, %edi
	je .Lelse
	movq $-1, %rax
	jmp .Lj
.Lelse:
	movl $2, %eax
.Lj:
	mov %eax, %eax
	ret
`)
	if stats.Get("REDZEXT", "removed") != 0 {
		t.Error("64-bit def on one path must block removal")
	}
}

// --- REDTEST -----------------------------------------------------------

func TestRedTestRemoves(t *testing.T) {
	u, stats := runPass(t, "REDTEST", `
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movl $1, %eax
.Lz:
	ret
`)
	if stats.Get("REDTEST", "removed") != 1 {
		t.Fatalf("removed = %d, want 1", stats.Get("REDTEST", "removed"))
	}
	for _, s := range instStrings(u) {
		if strings.HasPrefix(s, "testl") {
			t.Error("redundant test still present")
		}
	}
}

func TestRedTestKeepsWhenCarryConsumed(t *testing.T) {
	// jb reads CF; sub's CF is the borrow, test's CF is 0 — removal
	// would change behaviour.
	_, stats := runPass(t, "REDTEST", `
	subl $16, %r15d
	testl %r15d, %r15d
	jb .Lz
	movl $1, %eax
.Lz:
	ret
`)
	if stats.Get("REDTEST", "removed") != 0 {
		t.Error("must keep test when CF is consumed")
	}
}

func TestRedTestAfterLogicalOpWithCarryConsumer(t *testing.T) {
	// andl zeroes CF/OF exactly like test: removal is fine even with
	// a CF consumer.
	_, stats := runPass(t, "REDTEST", `
	andl $15, %ecx
	testl %ecx, %ecx
	jbe .Lz
	movl $1, %eax
.Lz:
	ret
`)
	if stats.Get("REDTEST", "removed") != 1 {
		t.Error("test after andl is removable even with CF consumer")
	}
}

func TestRedTestWidthMismatch(t *testing.T) {
	_, stats := runPass(t, "REDTEST", `
	subq $16, %r15
	testl %r15d, %r15d
	je .Lz
	movl $1, %eax
.Lz:
	ret
`)
	if stats.Get("REDTEST", "removed") != 0 {
		t.Error("width mismatch must block removal")
	}
}

func TestRedTestInterveningFlagWrite(t *testing.T) {
	_, stats := runPass(t, "REDTEST", `
	subl $16, %r15d
	addl $1, %ebx
	testl %r15d, %r15d
	je .Lz
	nop
.Lz:
	ret
`)
	if stats.Get("REDTEST", "removed") != 0 {
		t.Error("intervening flag writer must block removal")
	}
}

func TestRedTestMovBetweenIsFine(t *testing.T) {
	// mov writes no flags and not the tested register: transparent.
	_, stats := runPass(t, "REDTEST", `
	subl $16, %r15d
	movl %r15d, %ebx
	testl %r15d, %r15d
	je .Lz
	nop
.Lz:
	ret
`)
	if stats.Get("REDTEST", "removed") != 1 {
		t.Error("flag-transparent instructions must not block removal")
	}
}

// --- REDMOV ------------------------------------------------------------

func TestRedMovRewrites(t *testing.T) {
	u, stats := runPass(t, "REDMOV", `
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
	ret
`)
	if stats.Get("REDMOV", "rewritten") != 1 {
		t.Fatalf("rewritten = %d, want 1", stats.Get("REDMOV", "rewritten"))
	}
	insts := instStrings(u)
	if insts[1] != "movq\t%rdx, %rcx" {
		t.Errorf("second load = %q, want movq %%rdx, %%rcx", insts[1])
	}
}

func TestRedMovRemovesIdentical(t *testing.T) {
	u, stats := runPass(t, "REDMOV", `
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rdx
	ret
`)
	if stats.Get("REDMOV", "removed") != 1 || countInsts(u) != 2 {
		t.Error("identical reload must be removed")
	}
}

func TestRedMovBlockedByStore(t *testing.T) {
	_, stats := runPass(t, "REDMOV", `
	movq 24(%rsp), %rdx
	movq %rax, 8(%rbx)
	movq 24(%rsp), %rcx
	ret
`)
	if stats.Total("REDMOV") != 0 {
		t.Error("intervening store must block reuse (no alias analysis)")
	}
}

func TestRedMovBlockedByCall(t *testing.T) {
	_, stats := runPass(t, "REDMOV", `
	movq 24(%rsp), %rdx
	call g
	movq 24(%rsp), %rcx
	ret
`)
	if stats.Total("REDMOV") != 0 {
		t.Error("call must block reuse")
	}
}

func TestRedMovBlockedByDstClobber(t *testing.T) {
	_, stats := runPass(t, "REDMOV", `
	movq 24(%rsp), %rdx
	addq $1, %rdx
	movq 24(%rsp), %rcx
	ret
`)
	if stats.Total("REDMOV") != 0 {
		t.Error("clobbered first destination must block reuse")
	}
}

func TestRedMovBlockedByBaseClobber(t *testing.T) {
	_, stats := runPass(t, "REDMOV", `
	movq 24(%rsp), %rdx
	addq $8, %rsp
	movq 24(%rsp), %rcx
	ret
`)
	if stats.Total("REDMOV") != 0 {
		t.Error("clobbered base register must block reuse")
	}
}

// --- ADDADD ------------------------------------------------------------

func TestAddAddFolds(t *testing.T) {
	u, stats := runPass(t, "ADDADD", `
	addq $8, %rax
	movq %rbx, %rcx
	addq $16, %rax
	ret
`)
	if stats.Get("ADDADD", "folded") != 1 {
		t.Fatalf("folded = %d, want 1", stats.Get("ADDADD", "folded"))
	}
	insts := instStrings(u)
	if len(insts) != 3 || insts[1] != "addq\t$24, %rax" {
		t.Errorf("fold result wrong: %v", insts)
	}
}

func TestAddSubFolds(t *testing.T) {
	u, _ := runPass(t, "ADDADD", `
	addq $8, %rax
	subq $3, %rax
	ret
`)
	insts := instStrings(u)
	if len(insts) != 2 || insts[0] != "addq\t$5, %rax" {
		t.Errorf("add/sub fold wrong: %v", insts)
	}
}

func TestAddAddBlockedByUse(t *testing.T) {
	_, stats := runPass(t, "ADDADD", `
	addq $8, %rax
	movq %rax, %rcx
	addq $16, %rax
	ret
`)
	if stats.Total("ADDADD") != 0 {
		t.Error("intervening use must block folding")
	}
}

func TestAddAddBlockedByFlagRead(t *testing.T) {
	_, stats := runPass(t, "ADDADD", `
	addq $8, %rax
	jc .Lx
	addq $16, %rax
.Lx:
	ret
`)
	if stats.Total("ADDADD") != 0 {
		t.Error("condition-code use must block folding")
	}
}

func TestAddAddBlockedByLiveCarry(t *testing.T) {
	_, stats := runPass(t, "ADDADD", `
	addq $8, %rax
	addq $16, %rax
	jc .Lx
	nop
.Lx:
	ret
`)
	if stats.Total("ADDADD") != 0 {
		t.Error("live CF after second add must block folding")
	}
}

func TestAddAddChain(t *testing.T) {
	u, stats := runPass(t, "ADDADD", `
	addq $1, %rax
	addq $2, %rax
	addq $3, %rax
	ret
`)
	if stats.Get("ADDADD", "folded") != 2 {
		t.Errorf("folded = %d, want 2", stats.Get("ADDADD", "folded"))
	}
	insts := instStrings(u)
	if len(insts) != 2 || insts[0] != "addq\t$6, %rax" {
		t.Errorf("chain fold wrong: %v", insts)
	}
}

// --- NOPKILL / NOPIN -----------------------------------------------------

func TestNopKill(t *testing.T) {
	u, stats := runPass(t, "NOPKILL", `
	.p2align 4,,15
	nop
	movl $1, %eax
	.balign 8
	ret
`)
	if stats.Get("NOPKILL", "aligns") != 2 || stats.Get("NOPKILL", "nops") != 1 {
		t.Errorf("stats: %s", stats)
	}
	if countInsts(u) != 2 {
		t.Errorf("insts = %d, want 2", countInsts(u))
	}
}

func TestNopKillKeepsWithOptions(t *testing.T) {
	_, stats := runPass(t, "NOPKILL=nops[0]", `
	.p2align 4
	nop
	ret
`)
	if stats.Get("NOPKILL", "nops") != 0 || stats.Get("NOPKILL", "aligns") != 1 {
		t.Errorf("stats: %s", stats)
	}
}

func TestNopinDeterministic(t *testing.T) {
	body := "\tmovl $1, %eax\n\tmovl $2, %ebx\n\taddl %ebx, %eax\n\tret\n"
	u1, s1 := runPass(t, "NOPIN=seed[7],density[50],maxlen[3]", body)
	u2, s2 := runPass(t, "NOPIN=seed[7],density[50],maxlen[3]", body)
	if s1.Get("NOPIN", "inserted") == 0 {
		t.Fatal("seed 7 at 50% density inserted nothing")
	}
	if s1.Get("NOPIN", "inserted") != s2.Get("NOPIN", "inserted") {
		t.Error("same seed must insert the same count")
	}
	if u1.String() != u2.String() {
		t.Error("same seed must give identical output")
	}
	u3, _ := runPass(t, "NOPIN=seed[8],density[50],maxlen[3]", body)
	if u1.String() == u3.String() {
		t.Error("different seeds should perturb differently")
	}
}

// --- DCE / CONSTFOLD ------------------------------------------------------

func TestDCERemovesUnreachable(t *testing.T) {
	u, stats := runPass(t, "DCE", `
	jmp .Lend
	movl $1, %eax
	addl $2, %eax
.Lend:
	ret
`)
	if stats.Get("DCE", "removed") != 2 {
		t.Fatalf("removed = %d, want 2", stats.Get("DCE", "removed"))
	}
	if countInsts(u) != 2 {
		t.Errorf("insts = %d", countInsts(u))
	}
}

func TestDCESkipsUnresolved(t *testing.T) {
	_, stats := runPass(t, "DCE", `
	jmp *%rax
	movl $1, %eax
	ret
`)
	if stats.Get("DCE", "removed") != 0 {
		t.Error("unresolved function must not be DCE'd")
	}
}

func TestConstFold(t *testing.T) {
	u, stats := runPass(t, "CONSTFOLD", `
	movl $5, %eax
	addl $3, %eax
	movl %eax, %ebx
	ret
`)
	if stats.Get("CONSTFOLD", "folded") != 1 {
		t.Fatalf("folded = %d, want 1", stats.Get("CONSTFOLD", "folded"))
	}
	insts := instStrings(u)
	if insts[0] != "movl\t$8, %eax" {
		t.Errorf("fold result: %v", insts)
	}
}

func TestConstFoldBlockedByLiveFlags(t *testing.T) {
	_, stats := runPass(t, "CONSTFOLD", `
	movl $5, %eax
	addl $3, %eax
	je .Lx
	nop
.Lx:
	ret
`)
	if stats.Total("CONSTFOLD") != 0 {
		t.Error("live flags after add must block folding to mov")
	}
}

// --- LFIND ----------------------------------------------------------------

func TestLFind(t *testing.T) {
	_, stats := runPass(t, "LFIND", `
.Louter:
	movl $0, %edx
.Linner:
	addl $1, %eax
	decl %edx
	jne .Linner
	decl %ecx
	jne .Louter
	ret
`)
	if stats.Get("LFIND", "loops") != 2 {
		t.Errorf("loops = %d, want 2", stats.Get("LFIND", "loops"))
	}
	if stats.Get("LFIND", "innermost") != 1 {
		t.Errorf("innermost = %d, want 1", stats.Get("LFIND", "innermost"))
	}
}

// --- pipeline composition ---------------------------------------------------

func TestCombinedPipeline(t *testing.T) {
	u, stats := runPass(t, "REDTEST:REDMOV:ADDADD", `
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	addq $1, %rbx
	addq $2, %rbx
.Lz:
	ret
`)
	if stats.Get("REDTEST", "removed") != 1 ||
		stats.Get("REDMOV", "rewritten") != 1 ||
		stats.Get("ADDADD", "folded") != 1 {
		t.Errorf("pipeline stats:\n%s", stats)
	}
	if countInsts(u) != 6 {
		t.Errorf("insts = %d, want 6", countInsts(u))
	}
}
