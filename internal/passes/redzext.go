package passes

import (
	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

func init() {
	pass.Register(func() pass.Pass {
		return &redZext{base: base{"REDZEXT", "remove redundant zero-extension moves (mov %eNN, %eNN)"}}
	})
}

// redZext implements the paper's III-B.a pattern: GCC 4.3/4.4 does not
// model zero-extension well and emits sequences like
//
//	andl $255, %eax
//	mov  %eax, %eax     # redundant: the andl already zero-extended
//
// The self-move is redundant exactly when every definition reaching it
// is a 32-bit GPR write to the same register family, because 32-bit
// writes already zero bits 32–63. Incoming function arguments (no
// reaching definition) disqualify: the ABI leaves their upper bits
// undefined, and the self-move is GCC's way of zero-extending them.
type redZext struct {
	base
	parallelSafe
}

func (p *redZext) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	g := cfg.Build(f)
	reach := dataflow.Reach(g)

	changed := false
	for _, n := range f.Instructions() {
		in := n.Inst
		if !isSelfMove32(in) {
			continue
		}
		defs := reach.DefsReaching(n, in.Args[0].Reg)
		if len(defs) == 0 {
			continue // likely an incoming argument; the move matters
		}
		ok := true
		for _, d := range defs {
			if !zeroExtends32(d.Inst, in.Args[0].Reg) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		ctx.Trace(2, "%s: removing %v (all reaching defs zero-extend)", f.Name, in)
		ctx.Delete(n)
		ctx.Count("removed", 1)
		changed = true
	}
	return changed, nil
}

// isSelfMove32 matches "movl %rX, %rX" for a 32-bit GPR.
func isSelfMove32(in *x86.Inst) bool {
	return in.Op == x86.OpMOV && in.Width == x86.W32 &&
		len(in.Args) == 2 &&
		in.Args[0].Kind == x86.KindReg && in.Args[1].Kind == x86.KindReg &&
		in.Args[0].Reg == in.Args[1].Reg &&
		in.Args[0].Reg.Width() == x86.W32
}

// zeroExtends32 reports whether in writes reg's family via a 32-bit
// register destination (which zero-extends to 64 bits).
func zeroExtends32(in *x86.Inst, reg x86.Reg) bool {
	if in.Op.IsBranch() || len(in.Args) == 0 {
		return false
	}
	dst := in.Args[len(in.Args)-1]
	if dst.Kind != x86.KindReg || dst.Reg.Family() != reg.Family() {
		return false
	}
	// A 32-bit destination always zero-extends; movzbl/movzwl land
	// here too via Width. 64-bit writes leave garbage possible only
	// if the value itself exceeds 32 bits — not knowable, so only
	// 32-bit writes qualify.
	return dst.Reg.Width() == x86.W32 && in.Width == x86.W32
}
