package passes

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/relax"
	"mao/internal/uarch/exec"
	"mao/internal/x86"
)

// The differential semantics harness: every registered pass is run over
// every corpus fixture, and the fixture is executed to architectural
// completion before and after. A correct optimization must leave the
// architectural end-state — registers, flags, program-visible memory —
// identical.
//
// Two classes of end-state difference are legitimate and handled
// explicitly rather than papered over with a weak comparison:
//
//   - Code addresses. Passes that change instruction sizes move every
//     label, so values that are code pointers (jump-table dispatch
//     residue in a scratch register) differ numerically while denoting
//     the same program points. Such values are compared as "both are
//     text addresses".
//   - Dead flags. A pass that removes or folds a flag-writer whose
//     flags are dead at function exit (REDTEST removing a test, ADDADD
//     merging adds, CONSTFOLD deleting arithmetic) legitimately changes
//     the final EFLAGS; those passes are exempt from the flags check,
//     and only those.
//
// The stack is excluded from the memory comparison: it holds return
// addresses (code pointers) and dead spill slots by construction.

// diffFlagsExempt lists the passes allowed to change the *final* (dead)
// flags state, with the reason.
var diffFlagsExempt = map[string]string{
	"REDTEST":   "removes test whose CF/OF=0 the preceding arithmetic need not reproduce",
	"ADDADD":    "a folded add's carry/overflow differ from the last unfolded add's",
	"CONSTFOLD": "folds flag-writing arithmetic into flag-neutral mov-immediates",
}

// diffFixtures returns the corpus slice the harness executes — the
// same three SPEC-2000-like workloads the corpus golden tests pin.
func diffFixtures() []corpus.Workload {
	return corpus.Spec2000Int(0.05)[:3]
}

// archState is the comparable architectural end-state of one run.
type archState struct {
	gpr      [16]uint64
	xmm      [16]uint64
	flags    x86.Flags
	state    *exec.State
	stores   map[uint64]int // non-stack stored addr -> widest access
	executed int64
}

const stackWindow = exec.StackTop - 0x100000

func isStackAddr(a uint64) bool { return a >= stackWindow && a <= exec.StackTop }

// isTextAddr reports whether v lies in the executor's text mapping —
// i.e. is a code pointer, whose numeric value is layout-dependent.
func isTextAddr(v uint64) bool { return v >= exec.TextBase && v < exec.DataBase }

// runToCompletion relaxes and executes u's entry and captures the
// architectural end-state.
func runToCompletion(u *ir.Unit, entry string) (*archState, error) {
	layout, err := relax.Relax(u, nil)
	if err != nil {
		return nil, err
	}
	st := &archState{stores: make(map[uint64]int)}
	res, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: entry,
		MaxInsts: 4_000_000,
		OnEvent: func(ev exec.Event) {
			if ev.HasStore && !isStackAddr(ev.StoreAddr) {
				if ev.AccessLen > st.stores[ev.StoreAddr] {
					st.stores[ev.StoreAddr] = ev.AccessLen
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	st.gpr = res.State.GPR
	st.xmm = res.State.XMM
	st.flags = res.State.Flags
	st.state = res.State
	st.executed = res.Executed
	return st, nil
}

// equivalentValue compares one architectural value across the two
// layouts: bit-identical, or a code pointer in both.
func equivalentValue(a, b uint64) bool {
	return a == b || (isTextAddr(a) && isTextAddr(b))
}

var (
	diffBaseOnce  sync.Once
	diffBaselines map[string]*archState
	diffBaseErr   error
)

// baseline computes (once) the unoptimized end-state of every fixture.
func baseline(t *testing.T, name string) *archState {
	t.Helper()
	diffBaseOnce.Do(func() {
		diffBaselines = make(map[string]*archState)
		for _, wl := range diffFixtures() {
			u, err := asm.ParseString(wl.Name+".s", corpus.Generate(wl))
			if err != nil {
				diffBaseErr = err
				return
			}
			st, err := runToCompletion(u, wl.EntryName())
			if err != nil {
				diffBaseErr = fmt.Errorf("baseline %s: %w", wl.Name, err)
				return
			}
			diffBaselines[wl.Name] = st
		}
	})
	if diffBaseErr != nil {
		t.Fatal(diffBaseErr)
	}
	return diffBaselines[name]
}

// passOptions returns per-pass options needed to run the pass inertly
// in the harness (output passes write to the test's temp dir).
func passOptions(t *testing.T, name string) *pass.Options {
	switch name {
	case "ASM":
		return pass.NewOptions("o", filepath.Join(t.TempDir(), "out.s"))
	}
	return pass.NewOptions()
}

// TestDifferentialSemantics is the harness entry: one subtest per
// (registered pass, corpus fixture).
func TestDifferentialSemantics(t *testing.T) {
	for _, name := range pass.Names() {
		for _, wl := range diffFixtures() {
			t.Run(name+"/"+wl.Name, func(t *testing.T) {
				base := baseline(t, wl.Name)

				u, err := asm.ParseString(wl.Name+".s", corpus.Generate(wl))
				if err != nil {
					t.Fatal(err)
				}
				p := pass.Lookup(name)
				if p == nil {
					t.Fatalf("pass %s vanished from the registry", name)
				}
				mgr := &pass.Manager{Pipeline: []pass.Invocation{
					{Pass: p, Opts: passOptions(t, name)},
				}}
				if _, err := mgr.Run(u); err != nil {
					t.Fatalf("pass: %v", err)
				}
				if err := u.Analyze(); err != nil {
					t.Fatalf("re-analyze: %v", err)
				}

				opt, err := runToCompletion(u, wl.EntryName())
				if err != nil {
					t.Fatalf("executing optimized unit: %v", err)
				}
				compareArchState(t, name, base, opt)
			})
		}
	}
}

func compareArchState(t *testing.T, passName string, base, opt *archState) {
	t.Helper()
	for i := 0; i < 16; i++ {
		if !equivalentValue(base.gpr[i], opt.gpr[i]) {
			t.Errorf("GPR %d: %#x (base) vs %#x (after %s)", i, base.gpr[i], opt.gpr[i], passName)
		}
		if base.xmm[i] != opt.xmm[i] {
			t.Errorf("XMM %d: %#x (base) vs %#x (after %s)", i, base.xmm[i], opt.xmm[i], passName)
		}
	}
	if base.flags != opt.flags {
		if reason, exempt := diffFlagsExempt[passName]; exempt {
			t.Logf("flags differ (%v vs %v): exempt — %s", base.flags, opt.flags, reason)
		} else {
			t.Errorf("flags: %v (base) vs %v (after %s)", base.flags, opt.flags, passName)
		}
	}
	// Every address the baseline program stored to must hold an
	// equivalent value after optimization. (The optimized run may
	// store to *more* addresses — e.g. INSTRUMENT's counters — which
	// is fine; it must not corrupt the program's own data.)
	for addr, width := range base.stores {
		vb := base.state.ReadMem(addr, width)
		vo := opt.state.ReadMem(addr, width)
		if !equivalentValue(vb, vo) {
			t.Errorf("mem[%#x]/%d: %#x (base) vs %#x (after %s)", addr, width, vb, vo, passName)
		}
	}
	if opt.executed <= 0 {
		t.Errorf("optimized run executed %d instructions", opt.executed)
	}
}
