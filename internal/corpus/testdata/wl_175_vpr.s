# synthetic workload "175.vpr" (seed 1001)
	.text
	.type wl_175_vpr_hot0,@function
wl_175_vpr_hot0:
	movl $20, %r13d
	xorps %xmm0, %xmm0
	leaq wl_175_vpr_buf(%rip), %rdi
.Lwl_175_vpr_o1:
	movl $40, %ecx
	.p2align 5
	movl %r11d, %r11d
	movl %r11d, %r11d
	movl %r11d, %r11d
.Lwl_175_vpr_t2:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_175_vpr_t2
	decl %r13d
	jne .Lwl_175_vpr_o1
	ret
	.size wl_175_vpr_hot0,.-wl_175_vpr_hot0
	.type wl_175_vpr_hot1,@function
wl_175_vpr_hot1:
	.p2align 5
	movl $101, %r13d
.Lwl_175_vpr_o3:
	xorl %eax, %eax
.Lwl_175_vpr_t4:
	addl $1, %ecx
	addl $2, %edx
	addl $3, %esi
	addl $4, %edi
	addl $5, %ecx
	addl $6, %edx
	addl $7, %esi
	addl $1, %edi
	addl $2, %ecx
	addl $3, %edx
	addl $4, %esi
	addl $5, %edi
	addl $6, %ecx
	addl $1, %eax
	cmpl $120, %eax
	jl .Lwl_175_vpr_t4
	decl %r13d
	jne .Lwl_175_vpr_o3
	ret
	.size wl_175_vpr_hot1,.-wl_175_vpr_hot1
	.type wl_175_vpr_hot2,@function
wl_175_vpr_hot2:
	movl $1, %r13d
	xorps %xmm0, %xmm0
	leaq wl_175_vpr_buf(%rip), %rdi
.Lwl_175_vpr_o5:
	movl $2, %ecx
	.p2align 5
	movl %r11d, %r11d
.Lwl_175_vpr_t6:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_175_vpr_t6
	decl %r13d
	jne .Lwl_175_vpr_o5
	ret
	.size wl_175_vpr_hot2,.-wl_175_vpr_hot2
	.type wl_175_vpr_cold0,@function
wl_175_vpr_cold0:
	push %rbx
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	movl $51, %ebx
	testl %ebx, %ebx
	je .Lwl_175_vpr_pt7
	addl $1, %edx
.Lwl_175_vpr_pt7:
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	movl $205, %edx
	movq wl_175_vpr_ws+56(%rip), %rdx
	movq wl_175_vpr_ws+56(%rip), %rcx
	addq $3, %rcx
	subl $16, %ebx
	testl %ebx, %ebx
	je .Lwl_175_vpr_rt8
	addl $1, %ecx
.Lwl_175_vpr_rt8:
	addq $3, %rcx
	jmp .Lwl_175_vpr_its9
.Lwl_175_vpr_itd10:
	xorl %edi, %edi
	jmp *wl_175_vpr_tab(,%rdi,8)
.Lwl_175_vpr_its9:
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	addq $3, %rcx
	addq $39, %rcx
	movq %rdx, %rbx
	addq $50, %rcx
	movl $873, %edx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	addq $3, %rcx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	pop %rbx
	ret
	.size wl_175_vpr_cold0,.-wl_175_vpr_cold0
	.type main_wl_175_vpr,@function
main_wl_175_vpr:
	push %rbx
	push %r12
	push %r13
	push %r14
	push %r15
	call wl_175_vpr_hot0
	call wl_175_vpr_hot1
	call wl_175_vpr_hot2
	call wl_175_vpr_cold0
	pop %r15
	pop %r14
	pop %r13
	pop %r12
	pop %rbx
	ret
	.size main_wl_175_vpr,.-main_wl_175_vpr
	.data
	.p2align 6
wl_175_vpr_ws:
	.zero 2048
wl_175_vpr_buf:
	.zero 65536
wl_175_vpr_tab:
	.quad wl_175_vpr_ret
	.quad wl_175_vpr_ret
	.quad wl_175_vpr_ret
	.quad wl_175_vpr_ret
	.quad wl_175_vpr_ret
	.quad wl_175_vpr_ret
	.quad wl_175_vpr_ret
	.quad wl_175_vpr_ret
	.text
wl_175_vpr_ret:
	ret
