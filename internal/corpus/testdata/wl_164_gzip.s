# synthetic workload "164.gzip" (seed 1000)
	.text
	.type wl_164_gzip_hot0,@function
wl_164_gzip_hot0:
	movl $20, %r13d
	xorps %xmm0, %xmm0
	leaq wl_164_gzip_buf(%rip), %rdi
.Lwl_164_gzip_o1:
	movl $40, %ecx
	.p2align 5
	movl %r11d, %r11d
	movl %r11d, %r11d
	movl %r11d, %r11d
.Lwl_164_gzip_t2:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_164_gzip_t2
	decl %r13d
	jne .Lwl_164_gzip_o1
	ret
	.size wl_164_gzip_hot0,.-wl_164_gzip_hot0
	.type wl_164_gzip_hot1,@function
wl_164_gzip_hot1:
	.p2align 5
	movl $300, %r9d
	movl $1, %ebx
.Lwl_164_gzip_t3:
	imull $-1640531527, %ebx, %ebx
	subl %ebx, %ecx
	subl %ebx, %edx
	movl %ebx, %esi
	shrl $12, %esi
	xorl %esi, %ebx
	decl %r9d
	jne .Lwl_164_gzip_t3
	ret
	.size wl_164_gzip_hot1,.-wl_164_gzip_hot1
	.type wl_164_gzip_hot2,@function
wl_164_gzip_hot2:
	.p2align 5
	movl $101, %r13d
.Lwl_164_gzip_o4:
	xorl %eax, %eax
.Lwl_164_gzip_t5:
	addl $1, %ecx
	addl $2, %edx
	addl $3, %esi
	addl $4, %edi
	addl $5, %ecx
	addl $6, %edx
	addl $7, %esi
	addl $1, %edi
	addl $2, %ecx
	addl $3, %edx
	addl $4, %esi
	addl $5, %edi
	addl $6, %ecx
	addl $1, %eax
	cmpl $120, %eax
	jl .Lwl_164_gzip_t5
	decl %r13d
	jne .Lwl_164_gzip_o4
	ret
	.size wl_164_gzip_hot2,.-wl_164_gzip_hot2
	.type wl_164_gzip_hot3,@function
wl_164_gzip_hot3:
	movl $1, %r13d
	xorps %xmm0, %xmm0
	leaq wl_164_gzip_buf(%rip), %rdi
.Lwl_164_gzip_o6:
	movl $2, %ecx
	.p2align 5
	movl %r11d, %r11d
.Lwl_164_gzip_t7:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_164_gzip_t7
	decl %r13d
	jne .Lwl_164_gzip_o6
	ret
	.size wl_164_gzip_hot3,.-wl_164_gzip_hot3
	.type wl_164_gzip_cold0,@function
wl_164_gzip_cold0:
	push %rbx
	movl $597, %edx
	addq $14, %rcx
	movq %rdx, %rbx
	addq $23, %rcx
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	movl $89, %ebx
	testl %ebx, %ebx
	je .Lwl_164_gzip_pt8
	addl $1, %edx
.Lwl_164_gzip_pt8:
	movl $74, %edx
	jmp .Lwl_164_gzip_its9
.Lwl_164_gzip_itd10:
	xorl %edi, %edi
	jmp *wl_164_gzip_tab(,%rdi,8)
.Lwl_164_gzip_its9:
	movl $346, %edx
	andl $255, %eax
	mov %eax, %eax
	movl $966, %ecx
	subl $16, %ebx
	testl %ebx, %ebx
	je .Lwl_164_gzip_rt11
	addl $1, %ecx
.Lwl_164_gzip_rt11:
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	pop %rbx
	ret
	.size wl_164_gzip_cold0,.-wl_164_gzip_cold0
	.type main_wl_164_gzip,@function
main_wl_164_gzip:
	push %rbx
	push %r12
	push %r13
	push %r14
	push %r15
	call wl_164_gzip_hot0
	call wl_164_gzip_hot1
	call wl_164_gzip_hot2
	call wl_164_gzip_hot3
	call wl_164_gzip_cold0
	pop %r15
	pop %r14
	pop %r13
	pop %r12
	pop %rbx
	ret
	.size main_wl_164_gzip,.-main_wl_164_gzip
	.data
	.p2align 6
wl_164_gzip_ws:
	.zero 2048
wl_164_gzip_buf:
	.zero 65536
wl_164_gzip_tab:
	.quad wl_164_gzip_ret
	.quad wl_164_gzip_ret
	.quad wl_164_gzip_ret
	.quad wl_164_gzip_ret
	.quad wl_164_gzip_ret
	.quad wl_164_gzip_ret
	.quad wl_164_gzip_ret
	.quad wl_164_gzip_ret
	.text
wl_164_gzip_ret:
	ret
