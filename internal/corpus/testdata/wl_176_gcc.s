# synthetic workload "176.gcc" (seed 1002)
	.text
	.type wl_176_gcc_hot0,@function
wl_176_gcc_hot0:
	movl $22, %r13d
	xorps %xmm0, %xmm0
	leaq wl_176_gcc_buf(%rip), %rdi
.Lwl_176_gcc_o1:
	movl $40, %ecx
	.p2align 5
	movl %r11d, %r11d
	movl %r11d, %r11d
	movl %r11d, %r11d
.Lwl_176_gcc_t2:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_176_gcc_t2
	decl %r13d
	jne .Lwl_176_gcc_o1
	ret
	.size wl_176_gcc_hot0,.-wl_176_gcc_hot0
	.type wl_176_gcc_hot1,@function
wl_176_gcc_hot1:
	.p2align 5
	movl $300, %r12d
	.p2align 5
.Lwl_176_gcc_o3:
	movl $1, %edx
.Lwl_176_gcc_i4:
	addl $1, %eax
	addl $2, %ebx
	decl %edx
	jne .Lwl_176_gcc_i4
	decl %r12d
	jne .Lwl_176_gcc_o3
	ret
	.size wl_176_gcc_hot1,.-wl_176_gcc_hot1
	.type wl_176_gcc_hot2,@function
wl_176_gcc_hot2:
	.p2align 5
	movl $300, %r9d
	movl $1, %ebx
.Lwl_176_gcc_t5:
	imull $-1640531527, %ebx, %ebx
	subl %ebx, %ecx
	subl %ebx, %edx
	movl %ebx, %esi
	shrl $12, %esi
	xorl %esi, %ebx
	decl %r9d
	jne .Lwl_176_gcc_t5
	ret
	.size wl_176_gcc_hot2,.-wl_176_gcc_hot2
	.type wl_176_gcc_hot3,@function
wl_176_gcc_hot3:
	.p2align 5
	movl $101, %r13d
.Lwl_176_gcc_o6:
	xorl %eax, %eax
.Lwl_176_gcc_t7:
	addl $1, %ecx
	addl $2, %edx
	addl $3, %esi
	addl $4, %edi
	addl $5, %ecx
	addl $6, %edx
	addl $7, %esi
	addl $1, %edi
	addl $2, %ecx
	addl $3, %edx
	addl $4, %esi
	addl $5, %edi
	addl $6, %ecx
	addl $1, %eax
	cmpl $120, %eax
	jl .Lwl_176_gcc_t7
	decl %r13d
	jne .Lwl_176_gcc_o6
	ret
	.size wl_176_gcc_hot3,.-wl_176_gcc_hot3
	.type wl_176_gcc_hot4,@function
wl_176_gcc_hot4:
	movl $1, %r13d
	xorps %xmm0, %xmm0
	leaq wl_176_gcc_buf(%rip), %rdi
.Lwl_176_gcc_o8:
	movl $2, %ecx
	.p2align 5
	movl %r11d, %r11d
.Lwl_176_gcc_t9:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_176_gcc_t9
	decl %r13d
	jne .Lwl_176_gcc_o8
	ret
	.size wl_176_gcc_hot4,.-wl_176_gcc_hot4
	.type wl_176_gcc_hot5,@function
wl_176_gcc_hot5:
	movl $1, %r13d
	xorps %xmm0, %xmm0
	leaq wl_176_gcc_buf(%rip), %rdi
.Lwl_176_gcc_o10:
	movl $2, %ecx
	.p2align 5
	addl $1, %r11d
	movl %r11d, %r11d
.Lwl_176_gcc_t11:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_176_gcc_t11
	decl %r13d
	jne .Lwl_176_gcc_o10
	ret
	.size wl_176_gcc_hot5,.-wl_176_gcc_hot5
	.type wl_176_gcc_hot6,@function
wl_176_gcc_hot6:
	movl $1, %r13d
	xorps %xmm0, %xmm0
	leaq wl_176_gcc_buf(%rip), %rdi
.Lwl_176_gcc_o12:
	movl $2, %ecx
	.p2align 5
	addl $1, %r11d
	addl $1, %r11d
	movl %r11d, %r11d
.Lwl_176_gcc_t13:
	movss %xmm0, (%rdi,%rcx,4)
	decl %ecx
	jne .Lwl_176_gcc_t13
	decl %r13d
	jne .Lwl_176_gcc_o12
	ret
	.size wl_176_gcc_hot6,.-wl_176_gcc_hot6
	.type wl_176_gcc_cold0,@function
wl_176_gcc_cold0:
	push %rbx
	movl $451, %ecx
	jmp .Lwl_176_gcc_its14
.Lwl_176_gcc_itd15:
	xorl %edi, %edi
	jmp *wl_176_gcc_tab(,%rdi,8)
.Lwl_176_gcc_its14:
	xorl %ebx, %ebx
	addq $17, %rcx
	movq %rdx, %rbx
	addq $20, %rcx
	movl $546, %ecx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	movq wl_176_gcc_ws+72(%rip), %rdx
	movq wl_176_gcc_ws+72(%rip), %rcx
	movl $69, %ecx
	andl $255, %eax
	mov %eax, %eax
	movl $615, %edx
	subl $16, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_rt16
	addl $1, %ecx
.Lwl_176_gcc_rt16:
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	addq $3, %rcx
	movl $54, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt17
	addl $1, %edx
.Lwl_176_gcc_pt17:
	movl $602, %edx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	pop %rbx
	ret
	.size wl_176_gcc_cold0,.-wl_176_gcc_cold0
	.type wl_176_gcc_cold1,@function
wl_176_gcc_cold1:
	push %rbx
	movl $128, %ecx
	andl $255, %eax
	mov %eax, %eax
	movl $932, %edx
	movl $83, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt18
	addl $1, %edx
.Lwl_176_gcc_pt18:
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	movl $934, %edx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	movl $832, %ecx
	andl $255, %eax
	mov %eax, %eax
	addq $3, %rcx
	subl $16, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_rt19
	addl $1, %ecx
.Lwl_176_gcc_rt19:
	movl $322, %edx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	addq $21, %rcx
	movq %rdx, %rbx
	addq $9, %rcx
	movl $27, %edx
	pop %rbx
	ret
	.size wl_176_gcc_cold1,.-wl_176_gcc_cold1
	.type wl_176_gcc_cold2,@function
wl_176_gcc_cold2:
	push %rbx
	movl $270, %edx
	andl $255, %eax
	mov %eax, %eax
	movl $10, %edx
	andl $255, %eax
	mov %eax, %eax
	movl $247, %edx
	addq $22, %rcx
	movq %rdx, %rbx
	addq $50, %rcx
	movl $394, %ecx
	movl $67, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt20
	addl $1, %edx
.Lwl_176_gcc_pt20:
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	pop %rbx
	ret
	.size wl_176_gcc_cold2,.-wl_176_gcc_cold2
	.type wl_176_gcc_cold3,@function
wl_176_gcc_cold3:
	push %rbx
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	movl $150, %ecx
	andl $255, %eax
	mov %eax, %eax
	movl $616, %edx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	addq $4, %rcx
	movq %rdx, %rbx
	addq $34, %rcx
	xorl %ebx, %ebx
	movl $94, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt21
	addl $1, %edx
.Lwl_176_gcc_pt21:
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	pop %rbx
	ret
	.size wl_176_gcc_cold3,.-wl_176_gcc_cold3
	.type wl_176_gcc_cold4,@function
wl_176_gcc_cold4:
	push %rbx
	movl $581, %edx
	andl $255, %eax
	mov %eax, %eax
	addq $3, %rcx
	andl $255, %eax
	mov %eax, %eax
	movl $885, %edx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	movl $181, %edx
	addq $64, %rcx
	movq %rdx, %rbx
	addq $5, %rcx
	movl $30, %ecx
	movl $5, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt22
	addl $1, %edx
.Lwl_176_gcc_pt22:
	movl $170, %ecx
	andl $255, %eax
	mov %eax, %eax
	movl $447, %edx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	pop %rbx
	ret
	.size wl_176_gcc_cold4,.-wl_176_gcc_cold4
	.type wl_176_gcc_cold5,@function
wl_176_gcc_cold5:
	push %rbx
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	addq $3, %rcx
	addq $10, %rcx
	movq %rdx, %rbx
	addq $36, %rcx
	addq $3, %rcx
	andl $255, %eax
	mov %eax, %eax
	addq $3, %rcx
	movl $96, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt23
	addl $1, %edx
.Lwl_176_gcc_pt23:
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	pop %rbx
	ret
	.size wl_176_gcc_cold5,.-wl_176_gcc_cold5
	.type wl_176_gcc_cold6,@function
wl_176_gcc_cold6:
	push %rbx
	movl $287, %edx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	movl $13, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt24
	addl $1, %edx
.Lwl_176_gcc_pt24:
	addq $3, %rcx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	xorl %ebx, %ebx
	andl $255, %eax
	mov %eax, %eax
	movl $757, %ecx
	andl $255, %eax
	mov %eax, %eax
	movl $908, %ecx
	addq $5, %rcx
	movq %rdx, %rbx
	addq $16, %rcx
	movl $647, %ecx
	andl $255, %eax
	mov %eax, %eax
	movl $686, %edx
	pop %rbx
	ret
	.size wl_176_gcc_cold6,.-wl_176_gcc_cold6
	.type wl_176_gcc_cold7,@function
wl_176_gcc_cold7:
	push %rbx
	movl $541, %ecx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	addq $41, %rcx
	movq %rdx, %rbx
	addq $28, %rcx
	movl $11, %ecx
	movl $15, %ebx
	testl %ebx, %ebx
	je .Lwl_176_gcc_pt25
	addl $1, %edx
.Lwl_176_gcc_pt25:
	movl $655, %ecx
	andl $255, %eax
	mov %eax, %eax
	movl $208, %edx
	andl $255, %eax
	mov %eax, %eax
	movl $309, %edx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	leaq 4(%rcx,%rcx,2), %rdx
	andl $255, %eax
	mov %eax, %eax
	movl $157, %edx
	pop %rbx
	ret
	.size wl_176_gcc_cold7,.-wl_176_gcc_cold7
	.type main_wl_176_gcc,@function
main_wl_176_gcc:
	push %rbx
	push %r12
	push %r13
	push %r14
	push %r15
	call wl_176_gcc_hot0
	call wl_176_gcc_hot1
	call wl_176_gcc_hot2
	call wl_176_gcc_hot3
	call wl_176_gcc_hot4
	call wl_176_gcc_hot5
	call wl_176_gcc_hot6
	call wl_176_gcc_cold0
	call wl_176_gcc_cold1
	call wl_176_gcc_cold2
	call wl_176_gcc_cold3
	pop %r15
	pop %r14
	pop %r13
	pop %r12
	pop %rbx
	ret
	.size main_wl_176_gcc,.-main_wl_176_gcc
	.data
	.p2align 6
wl_176_gcc_ws:
	.zero 2048
wl_176_gcc_buf:
	.zero 65536
wl_176_gcc_tab:
	.quad wl_176_gcc_ret
	.quad wl_176_gcc_ret
	.quad wl_176_gcc_ret
	.quad wl_176_gcc_ret
	.quad wl_176_gcc_ret
	.quad wl_176_gcc_ret
	.quad wl_176_gcc_ret
	.quad wl_176_gcc_ret
	.text
wl_176_gcc_ret:
	ret
