package corpus

// Named synthetic workloads standing in for the paper's SPEC 2000/2006
// benchmarks. Each workload's hot-spot geometry (loop sizes, head
// offsets, trip counts, redundancy density, dilution against a neutral
// loop) is calibrated against the simulator so that the pass-versus-
// model matrix reproduces the paper's result *shape*: which passes
// help which workloads on which machine model, and roughly by how
// much. The cold-code pattern mixes reproduce the paper's static
// transformation counts (Figure 7 columns M and T exactly, L and NOP
// approximately).
//
// Calibrated geometry constants (probed against the Core-2/Opteron
// models):
//
//   - ShortLoop Offset 9: the 9-byte body crosses a 16-byte decode
//     line but not a 32-byte window — LOOP16 helps Core-2, is neutral
//     on Opteron (the vpr/gcc/twolf row signs).
//   - ShortLoop Offset 25, Trips >= 64: crosses a 32-byte window; on
//     Core-2 the LSD hides most of it, on Opteron (no LSD) LOOP16
//     recovers it (the mcf/crafty row signs).
//   - AlignTrap Offset 32: baseline is alias-free; LOOP16's padding,
//     REDTEST's byte removal, NOPKILL's alignment stripping and
//     NOPIN's random insertion each shift the movable loop's
//     never-taken back branch into the quantized partner's predictor
//     bucket (the eon regressions).
//   - RedundantHot Offset 19 + Aligned: head lands on a 32-byte
//     boundary; REDMOV/REDTEST shrink the port-2/decode footprint
//     (the calculix +20%).
//   - TightLoop Offset 19 + Aligned: fits one 32-byte fetch window
//     only while its .p2align survives (the calculix NOPKILL -8.8%).

// diluter is the neutral hot loop every workload carries so that its
// pathological hot spot is a realistic fraction of total cycles. The
// 46-byte body fits the LSD window at any placement, so it is robust
// to every alignment-shifting pass.
func diluter(trips int) Hotspot {
	return Hotspot{Kind: DiluterLoop, Trips: trips}
}

// Spec2000Int returns the twelve SPEC 2000 integer workloads of the
// paper's Figure 7. scale (0 < scale <= 1) shrinks the cold-code
// pattern counts for fast tests; scale 1 reproduces the paper's
// static counts. Hot-spot geometry (and therefore the performance
// results) is scale-independent.
func Spec2000Int(scale float64) []Workload {
	s := scaler(scale)
	type row struct {
		name, lang string
		l, m, t    int // Figure 7 columns: L (LOOP16), M (REDMOV), T (REDTEST)
		cold       int
		hot        []Hotspot
	}
	rows := []row{
		{"164.gzip", "C", 1, 0, 5, 12, []Hotspot{
			{Kind: ShortLoop, Offset: 9, Trips: 40, Entries: 20},
			{Kind: SchedChain, Trips: 300, Body: 1},
			diluter(12000)}},
		{"175.vpr", "C", 3, 7, 4, 25, []Hotspot{
			{Kind: ShortLoop, Offset: 9, Trips: 40, Entries: 20},
			diluter(12000)}},
		{"176.gcc", "C", 62, 35, 57, 160, []Hotspot{
			{Kind: ShortLoop, Offset: 9, Trips: 40, Entries: 22},
			{Kind: NestedShort, Offset: 0, Trips: 300},
			{Kind: SchedChain, Trips: 300, Body: 1},
			diluter(12000)}},
		{"181.mcf", "C", 0, 1, 0, 4, []Hotspot{
			{Kind: ShortLoop, Offset: 25, Trips: 300, Entries: 6},
			{Kind: StreamScan, Trips: 25, Body: 100},
			diluter(8000)}},
		{"186.crafty", "C", 3, 7, 18, 45, []Hotspot{
			{Kind: ShortLoop, Offset: 25, Trips: 300, Entries: 6},
			{Kind: SchedChain, Trips: 250, Body: 1},
			diluter(8000)}},
		{"197.parser", "C", 13, 4, 0, 35, []Hotspot{
			{Kind: ShortLoop, Offset: 9, Trips: 40, Entries: 15},
			diluter(12000)}},
		{"252.eon", "C++", 1, 10, 6, 70, []Hotspot{
			{Kind: AlignTrap, Offset: 32, Body: 0, Entries: 60},
			diluter(6000)}},
		{"253.perlbmk", "C++", 21, 9, 21, 120, []Hotspot{
			{Kind: AlignTrap, Offset: 32, Body: 0, Entries: 14},
			{Kind: ShortLoop, Offset: 0, Trips: 30, Entries: 60},
			diluter(8000)}},
		{"254.gap", "C", 62, 23, 9, 110, []Hotspot{
			{Kind: ShortLoop, Offset: 9, Trips: 50, Entries: 16},
			diluter(12000)}},
		{"255.vortex", "C", 1, 3, 5, 90, []Hotspot{
			{Kind: SchedChain, Trips: 200, Body: 1},
			diluter(12000)}},
		{"256.bzip2", "C", 2, 3, 0, 10, []Hotspot{
			{Kind: ShortLoop, Offset: 9, Trips: 45, Entries: 18},
			{Kind: SchedChain, Trips: 250, Body: 1},
			diluter(10000)}},
		{"300.twolf", "C", 18, 24, 43, 40, []Hotspot{
			{Kind: ShortLoop, Offset: 9, Trips: 40, Entries: 20},
			{Kind: RedundantHot, Offset: 19, Trips: 400, Body: 1, Aligned: true},
			diluter(10000)}},
	}
	var out []Workload
	for i, r := range rows {
		out = append(out, Workload{
			Name: r.name, Lang: r.lang, Seed: uint64(1000 + i),
			Hot:       r.hot,
			ColdFuncs: maxi(1, s(r.cold)),
			Patterns: PatternMix{
				RedZext:     s(r.cold * 6),
				RedTest:     s(r.t),
				PlainTest:   s(r.t * 3),
				RedMem:      s(r.m),
				AddAdd:      s(r.cold),
				IndirectTab: s(2),
			},
		})
		// The L column: misaligned short loops planted as extra
		// rarely-executed hotspot functions, with fill-representable
		// 16-misaligned offsets.
		for j := 0; j < s(r.l); j++ {
			out[i].Hot = append(out[i].Hot, Hotspot{
				Kind: ShortLoop, Offset: 3 + 4*(j%6), Trips: 2, Entries: 1,
			})
		}
	}
	return out
}

func scaler(scale float64) func(int) int {
	return func(v int) int {
		out := int(float64(v) * scale)
		if v > 0 && out == 0 {
			out = 1
		}
		return out
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Spec2006Subset returns the SPEC 2006 workloads the paper's tables
// report: the REDMOV/REDTEST/NOPKILL table (447.dealII, 454.calculix)
// and the SCHED table (410.bwaves, 434.zeusmp, 483.xalancbmk, 429.mcf,
// 464.h264ref).
func Spec2006Subset(scale float64) []Workload {
	s := scaler(scale)
	mk := func(name, lang string, seed uint64, hot []Hotspot, cold int, m PatternMix) Workload {
		return Workload{Name: name, Lang: lang, Seed: seed, Hot: hot,
			ColdFuncs: maxi(1, s(cold)), Patterns: m}
	}
	return []Workload{
		mk("447.dealII", "C++", 2001, []Hotspot{
			{Kind: RedundantHot, Offset: 19, Trips: 1500, Body: 3, Aligned: true},
			diluter(14000),
		}, 60, PatternMix{RedTest: s(40), RedMem: s(40), PlainTest: s(120), RedZext: s(80)}),
		mk("454.calculix", "F", 2002, []Hotspot{
			{Kind: RedundantHot, Offset: 19, Trips: 12000, Body: 3, Aligned: true},
			// Several tight loops at varied fills: wherever the
			// stripped-alignment layout lands them, most straddle.
			{Kind: TightLoop, Offset: 39, Trips: 5500, Aligned: true},
			{Kind: TightLoop, Offset: 46, Trips: 5500, Aligned: true},
			{Kind: TightLoop, Offset: 50, Trips: 5500, Aligned: true},
		}, 30, PatternMix{RedTest: s(30), RedMem: s(30), PlainTest: s(60), RedZext: s(40)}),
		mk("410.bwaves", "F", 2003, []Hotspot{
			{Kind: SchedChain, Trips: 270, Body: 1},
			diluter(2500)}, 20, PatternMix{PlainTest: s(40)}),
		mk("434.zeusmp", "F", 2004, []Hotspot{
			{Kind: SchedChain, Trips: 245, Body: 1},
			diluter(2800)}, 20, PatternMix{PlainTest: s(40)}),
		mk("483.xalancbmk", "C++", 2005, []Hotspot{
			{Kind: SchedChain, Trips: 265, Body: 1},
			diluter(2600)}, 40, PatternMix{PlainTest: s(60), RedZext: s(40)}),
		mk("429.mcf", "C", 2006, []Hotspot{
			{Kind: SchedChain, Trips: 280, Body: 1},
			{Kind: StreamScan, Trips: 10, Body: 80},
			diluter(1600)}, 10, PatternMix{PlainTest: s(20)}),
		mk("464.h264ref", "C", 2007, []Hotspot{
			{Kind: SchedChain, Trips: 220, Body: 2},
			diluter(2600)}, 25, PatternMix{PlainTest: s(30)}),
	}
}

// CoreLibrary returns the stand-in for the paper's "core library at
// Google" — the corpus behind the static counts of Section III-B
// (~1000 redundant zero-extensions; 79763 test instructions of which
// 19272 are redundant; 13362 repeated-load pairs) and Section II's
// indirect-branch story (320 indirect branches: 246 resolvable only
// through the reaching-definition pattern, 70 directly, 4 never).
// scale 1 reproduces the paper's counts exactly.
func CoreLibrary(scale float64) Workload {
	s := scaler(scale)
	return Workload{
		Name: "corelib", Lang: "C++", Seed: 4242,
		// The paper describes ~80 complex C++ files.
		ColdFuncs: maxi(1, s(80)),
		Patterns: PatternMix{
			RedZext:     s(1000),
			RedTest:     s(19272),
			PlainTest:   s(79763 - 19272),
			RedMem:      s(13362),
			AddAdd:      s(800),
			IndirectReg: s(246),
			IndirectTab: s(70),
			Unresolved:  s(4),
		},
	}
}
