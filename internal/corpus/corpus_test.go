package corpus

import (
	"strings"
	"testing"
	"testing/quick"

	"mao/internal/asm"
	"mao/internal/relax"
)

func TestGenerateParses(t *testing.T) {
	for _, w := range append(Spec2000Int(0.05), Spec2006Subset(0.05)...) {
		src := Generate(w)
		u, err := asm.ParseString(w.Name+".s", src)
		if err != nil {
			t.Errorf("%s does not parse: %v", w.Name, err)
			continue
		}
		if u.Function(w.EntryName()) == nil {
			t.Errorf("%s: entry %s missing", w.Name, w.EntryName())
		}
		if _, err := relax.Relax(u, nil); err != nil {
			t.Errorf("%s does not relax: %v", w.Name, err)
		}
	}
}

func TestFillExactness(t *testing.T) {
	// Every representable fill amount must relax to exactly that many
	// bytes of real instructions.
	for _, n := range []int{0, 3, 4, 6, 7, 8, 9, 11, 19, 25, 32, 41, 50} {
		g := &gen{name: "t"}
		g.emit("\t.text")
		g.emit("\t.type f,@function")
		g.emit("f:")
		g.fill(n)
		g.emit("\tret")
		g.emit("\t.size f,.-f")
		u, err := asm.ParseString("fill.s", g.b.String())
		if err != nil {
			t.Fatalf("fill(%d): %v", n, err)
		}
		l, err := relax.Relax(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Total = fill + 1-byte ret.
		if got := l.SectionEnd[".text"]; got != int64(n+1) {
			t.Errorf("fill(%d) produced %d bytes", n, got-1)
		}
		// None of the filler may be a nop (NOPKILL immunity).
		for _, f := range u.Functions() {
			for _, in := range f.Instructions() {
				if in.Inst.IsNop() {
					t.Errorf("fill(%d) emitted a nop", n)
				}
			}
		}
	}
}

func TestFillPanicsOnUnrepresentable(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fill(%d) did not panic", n)
				}
			}()
			g := &gen{name: "t"}
			g.fill(n)
		}()
	}
}

func TestPatternCounts(t *testing.T) {
	w := Workload{
		Name: "counts", Seed: 3, ColdFuncs: 4,
		Patterns: PatternMix{
			RedZext: 11, RedTest: 7, PlainTest: 5, RedMem: 9,
			AddAdd: 6, IndirectReg: 3, IndirectTab: 2, Unresolved: 1,
		},
	}
	src := Generate(w)
	count := func(sub string) int { return strings.Count(src, sub) }
	if got := count("mov %eax, %eax"); got != 11 {
		t.Errorf("RedZext sites = %d, want 11", got)
	}
	// Each RedTest plants subl+testl; each PlainTest plants movl+testl.
	if got := count("testl %ebx, %ebx"); got != 7+5 {
		t.Errorf("test sites = %d, want 12", got)
	}
	if got := count("jmp *%rax"); got != 3+1 { // IndirectReg + Unresolved
		t.Errorf("register-indirect jumps = %d, want 4", got)
	}
	if got := count("jmp *counts_tab"); got != 2 {
		t.Errorf("table-indirect jumps = %d, want 2", got)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"164.gzip": "wl_164_gzip",
		"foo":      "foo",
		"a-b":      "a_b",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDistributeConserves(t *testing.T) {
	f := func(total uint8, parts uint8) bool {
		n := int(parts%7) + 1
		m := PatternMix{RedZext: int(total), RedTest: int(total) / 2}
		sumZ, sumT := 0, 0
		for i := 0; i < n; i++ {
			d := distribute(m, i, n)
			sumZ += d.RedZext
			sumT += d.RedTest
		}
		return sumZ == m.RedZext && sumT == m.RedTest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreLibraryFullScaleCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale corpus generation in -short mode")
	}
	w := CoreLibrary(1)
	if w.Patterns.RedTest != 19272 || w.Patterns.PlainTest != 60491 ||
		w.Patterns.RedMem != 13362 || w.Patterns.RedZext != 1000 {
		t.Errorf("full-scale pattern mix wrong: %+v", w.Patterns)
	}
	if w.Patterns.IndirectReg+w.Patterns.IndirectTab+w.Patterns.Unresolved != 320 {
		t.Errorf("indirect branch total != 320")
	}
}

func TestHotspotKindsEmit(t *testing.T) {
	kinds := []HotKind{ShortLoop, BigLoop, NestedShort, SchedChain,
		RedundantHot, StreamScan, DiluterLoop, TightLoop, AlignTrap}
	for _, k := range kinds {
		w := Workload{
			Name: "k", Seed: 1, ColdFuncs: 1,
			Hot: []Hotspot{{Kind: k, Offset: 9, Trips: 10, Entries: 3, Body: 3, Aligned: true}},
		}
		if _, err := asm.ParseString("k.s", Generate(w)); err != nil {
			t.Errorf("hotspot kind %d does not parse: %v", k, err)
		}
	}
}

func TestEntryPreservesCalleeSaved(t *testing.T) {
	// The generated entry must save/restore rbx and r12-r15 so the
	// executor's final state comparison is stable.
	src := Generate(Spec2000Int(0.02)[0])
	for _, want := range []string{"push %rbx", "push %r12", "pop %r15", "pop %rbx"} {
		if !strings.Contains(src, want) {
			t.Errorf("entry missing %q", want)
		}
	}
}
