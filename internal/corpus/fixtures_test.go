package corpus

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata fixtures")

// fixtureWorkloads are the workloads committed under testdata/ — small
// generated units that CI lints with `mao --check` as a self-test of
// both the generator and the checker (see ci.sh).
func fixtureWorkloads() []Workload {
	return Spec2000Int(0.05)[:3]
}

// TestFixturesInSync pins the committed testdata fixtures to the
// generator's output. Regenerate with:
//
//	go test ./internal/corpus -run Fixtures -update
func TestFixturesInSync(t *testing.T) {
	for _, w := range fixtureWorkloads() {
		path := filepath.Join("testdata", sanitize(w.Name)+".s")
		got := Generate(w)
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s missing (run with -update): %v", path, err)
		}
		if got != string(want) {
			t.Errorf("%s out of sync with the generator (run with -update)", path)
		}
	}
}
