// Package corpus generates the synthetic workloads this reproduction
// measures instead of SPEC 2000/2006 binaries and the paper's internal
// Google core library (neither of which is available or redistributable).
//
// Each named workload is a deterministic, seeded assembly program with
// a runnable entry point (main_<name>) whose hot spots exhibit, in
// workload-specific proportions, exactly the pathologies the paper's
// passes address: redundant zero-extensions/tests/loads, foldable
// add/add chains, short loops crossing 16-byte decode lines, loops
// straddling the LSD's 4-line window, nested short loops with aliased
// back branches, and schedulable fan-out blocks. The paper's tables
// report (a) static pattern counts and (b) runtime deltas from passes
// that fix these patterns — both are functions of this pattern mix
// plus the simulator's mechanisms, not of SPEC's actual algorithms,
// which is why the substitution preserves the shape of every result.
package corpus

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Hotspot kinds.
type HotKind int

// Hotspot kinds: each generates one hot function dominated by the
// named micro-architectural behaviour.
const (
	// ShortLoop is a <=16-byte loop placed at a configurable offset
	// from a 16-byte boundary (LOOP16 material).
	ShortLoop HotKind = iota
	// BigLoop is a multi-line loop sized/placed relative to the LSD
	// window (LSD pass material).
	BigLoop
	// NestedShort is a two-deep nest of short-running loops whose
	// back branches can alias in the predictor (BRALIGN material).
	NestedShort
	// SchedChain is the hashing-benchmark fan-out block (SCHED
	// material).
	SchedChain
	// RedundantHot is a hot loop body carrying redundant test/mov
	// instructions (REDTEST/REDMOV material: removing them shrinks
	// the loop's decode footprint).
	RedundantHot
	// StreamScan alternates a small working set with a streaming
	// scan (PREFNTA material).
	StreamScan
	// DiluterLoop is the neutral hot loop: 16 short instructions in 47
	// bytes, so decode width — not line fetch — binds on both machine
	// models at (almost) any placement. Workloads carry one so that
	// their pathological hot spot is a realistic fraction of cycles.
	DiluterLoop
	// TightLoop is a 26-byte, 5-instruction loop that fits one 32-byte
	// fetch window only when aligned — the structure whose compiler
	// alignment directive actually matters on the Opteron-like model
	// (what NOPKILL breaks for 454.calculix).
	TightLoop
	// AlignTrap is the eon-style alignment-sensitive structure: two
	// interleaved short-running loops separated by a .p2align 5, laid
	// out so their back branches occupy different predictor buckets.
	// Any pass that shifts the first loop relative to the aligned
	// second one (LOOP16's padding, NOPKILL removing the align,
	// REDTEST deleting bytes, NOPIN inserting them) can push the
	// branches into the same PC>>shift bucket and regress the
	// workload — the paper's "counter-intuitive" eon behaviour.
	AlignTrap
)

// Hotspot parameterizes one hot function.
type Hotspot struct {
	Kind HotKind
	// Offset is the loop head's byte offset past the hotspot's
	// 32-byte anchor, realized as real filler instructions (so that
	// nop- and alignment-stripping passes cannot disturb it). It must
	// be fill-representable: 0, 3, 4, or >= 6.
	Offset int
	// Trips is the iteration count per entry.
	Trips int
	// Entries is how many times the loop is entered.
	Entries int
	// Body scales the loop body size (instruction count, kind-specific).
	Body int
	// Aligned emits a compiler-style .p2align before the loop (what
	// NOPKILL removes).
	Aligned bool
}

// PatternMix sets how many of each peephole pattern the cold code of a
// workload carries (absolute counts across the whole program).
type PatternMix struct {
	RedZext     int // andl $imm; mov %eNN,%eNN pairs
	RedTest     int // sub/and + redundant test pairs
	PlainTest   int // non-redundant tests (paper counts totals too)
	RedMem      int // duplicate load pairs
	AddAdd      int // foldable add/add chains
	IndirectReg int // jump tables dispatched via register loads
	IndirectTab int // jump tables dispatched via jmp *tab(,r,8)
	Unresolved  int // deliberately unresolvable indirect branches
}

// Workload is a complete synthetic benchmark definition.
type Workload struct {
	Name string
	Lang string // "C" or "C++", for table rendering
	Seed uint64

	Hot       []Hotspot
	ColdFuncs int
	Patterns  PatternMix
}

// EntryName returns the name of the workload's runnable entry function.
func (w Workload) EntryName() string { return "main_" + sanitize(w.Name) }

func sanitize(s string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
	if out != "" && out[0] >= '0' && out[0] <= '9' {
		out = "wl_" + out // labels must not start with a digit
	}
	return out
}

// Generate renders the workload as AT&T assembly text.
func Generate(w Workload) string {
	g := &gen{
		rng:  rand.New(rand.NewPCG(w.Seed, w.Seed^0x9e3779b97f4a7c15)),
		name: sanitize(w.Name),
	}
	g.emitf("# synthetic workload %q (seed %d)", w.Name, w.Seed)
	g.emit("\t.text")

	var hotNames []string
	for i, h := range w.Hot {
		name := fmt.Sprintf("%s_hot%d", g.name, i)
		hotNames = append(hotNames, name)
		g.hotFunc(name, h)
	}
	var coldNames []string
	for i := 0; i < w.ColdFuncs; i++ {
		name := fmt.Sprintf("%s_cold%d", g.name, i)
		coldNames = append(coldNames, name)
		g.coldFunc(name, distribute(w.Patterns, i, w.ColdFuncs))
	}

	// Entry point: call every hot function; touch a few cold ones so
	// they execute at least once (their patterns must be semantically
	// neutral under the executor).
	g.beginFunc(w.EntryName())
	g.emit("\tpush %rbx")
	g.emit("\tpush %r12")
	g.emit("\tpush %r13")
	g.emit("\tpush %r14")
	g.emit("\tpush %r15")
	for _, n := range hotNames {
		g.emitf("\tcall %s", n)
	}
	for i, n := range coldNames {
		if i < 4 {
			g.emitf("\tcall %s", n)
		}
	}
	g.emit("\tpop %r15")
	g.emit("\tpop %r14")
	g.emit("\tpop %r13")
	g.emit("\tpop %r12")
	g.emit("\tpop %rbx")
	g.emit("\tret")
	g.endFunc(w.EntryName())

	// Shared data: scratch buffers the hot loops walk.
	g.emit("\t.data")
	g.emit("\t.p2align 6")
	g.emitf("%s_ws:", g.name)
	g.emit("\t.zero 2048")
	g.emitf("%s_buf:", g.name)
	g.emit("\t.zero 65536")
	g.emitf("%s_tab:", g.name)
	for i := 0; i < 8; i++ {
		g.emitf("\t.quad %s_ret", g.name)
	}
	g.emit("\t.text")
	g.emitf("%s_ret:", g.name)
	g.emit("\tret")

	return g.b.String()
}

// distribute splits a total pattern mix across cold functions.
func distribute(m PatternMix, idx, total int) PatternMix {
	share := func(v int) int {
		base := v / total
		if idx < v%total {
			base++
		}
		return base
	}
	return PatternMix{
		RedZext:     share(m.RedZext),
		RedTest:     share(m.RedTest),
		PlainTest:   share(m.PlainTest),
		RedMem:      share(m.RedMem),
		AddAdd:      share(m.AddAdd),
		IndirectReg: share(m.IndirectReg),
		IndirectTab: share(m.IndirectTab),
		Unresolved:  share(m.Unresolved),
	}
}

type gen struct {
	b    strings.Builder
	rng  *rand.Rand
	name string
	lbl  int
}

func (g *gen) emit(s string)            { g.b.WriteString(s); g.b.WriteByte('\n') }
func (g *gen) emitf(f string, a ...any) { fmt.Fprintf(&g.b, f+"\n", a...) }
func (g *gen) label(prefix string) string {
	g.lbl++
	return fmt.Sprintf(".L%s_%s%d", g.name, prefix, g.lbl)
}
func (g *gen) beginFunc(name string) { g.emitf("\t.type %s,@function", name); g.emitf("%s:", name) }
func (g *gen) endFunc(name string)   { g.emitf("\t.size %s,.-%s", name, name) }
func (g *gen) pad(n int) {
	for i := 0; i < n; i++ {
		g.emit("\tnop")
	}
}

// fill emits exactly n bytes of real (non-nop) filler instructions on
// the reserved scratch register r11, so that placement control
// survives passes that strip nops and alignment directives. n must be
// 0, 3, 4, or any value >= 6 (sums of 3s and 4s).
func (g *gen) fill(n int) {
	if n == 0 {
		return
	}
	for n%3 != 0 {
		g.emit("\taddl $1, %r11d") // 4 bytes
		n -= 4
		if n < 0 {
			panic("corpus: unrepresentable fill")
		}
	}
	for ; n > 0; n -= 3 {
		g.emit("\tmovl %r11d, %r11d") // 3 bytes
	}
}

// anchor pins the next instruction to a 32-byte boundary plus off
// bytes. The alignment directive is what compilers emit; passes that
// strip it (NOPKILL) deliberately lose the placement.
func (g *gen) anchor(off int) {
	g.emit("\t.p2align 5")
	g.fill(off)
}

// hotFunc emits one hot function of the given kind.
func (g *gen) hotFunc(name string, h Hotspot) {
	g.beginFunc(name)
	switch h.Kind {
	case ShortLoop:
		g.shortLoop(h)
	case BigLoop:
		g.bigLoop(h)
	case NestedShort:
		g.nestedShort(h)
	case SchedChain:
		g.schedChain(h)
	case RedundantHot:
		g.redundantHot(h)
	case StreamScan:
		g.streamScan(h)
	case DiluterLoop:
		g.diluterLoop(h)
	case TightLoop:
		g.tightLoop(h)
	case AlignTrap:
		g.alignTrap(h)
	}
	g.emit("\tret")
	g.endFunc(name)
}

// shortLoop: the 252.eon-style loop — movss + add + cmp + jne, 15
// bytes, placed Offset bytes past a 16-byte boundary. Entries times:
// an outer counting loop re-enters it (keeping per-entry trip counts
// below the LSD threshold is the caller's knob).
func (g *gen) shortLoop(h Hotspot) {
	outer, top := g.label("o"), g.label("t")
	g.emitf("\tmovl $%d, %%r13d", h.Entries)
	g.emit("\txorps %xmm0, %xmm0")
	g.emitf("\tleaq %s_buf(%%rip), %%rdi", g.name)
	g.emitf("%s:", outer)
	g.emitf("\tmovl $%d, %%ecx", h.Trips)
	g.anchor(h.Offset)
	if h.Aligned {
		g.emit("\t.p2align 4")
	}
	// Body: 5 + 2 + 2 = 9 bytes, 3 instructions, for any trip count
	// (the store indexes downward through the buffer).
	g.emitf("%s:", top)
	g.emit("\tmovss %xmm0, (%rdi,%rcx,4)")
	g.emit("\tdecl %ecx")
	g.emitf("\tjne %s", top)
	g.emit("\tdecl %r13d")
	g.emitf("\tjne %s", outer)
}

// bigLoop: independent 7-byte adds + compare + branch, sized by Body
// (instructions) and placed at Offset — the Figure 4/5 material.
func (g *gen) bigLoop(h Hotspot) {
	top := g.label("t")
	regs := []string{"%r8d", "%r9d", "%r10d", "%r14d", "%r15d", "%ebx"}
	g.emit("\txorl %eax, %eax")
	g.anchor(h.Offset)
	if h.Aligned {
		g.emit("\t.p2align 4")
	}
	g.emitf("%s:", top)
	for i := 0; i < h.Body; i++ {
		g.emitf("\taddl $100000, %s", regs[i%len(regs)])
	}
	g.emit("\taddl $1, %eax")
	g.emitf("\tcmpl $%d, %%eax", h.Trips)
	g.emitf("\tjl %s", top)
}

// nestedShort: the branch-alias nest — inner trip count 1, so the
// inner back branch is never taken while the outer one always is.
// Offset shifts the second branch relative to the 32-byte bucket.
func (g *gen) nestedShort(h Hotspot) {
	outer, inner := g.label("o"), g.label("i")
	g.emit("\t.p2align 5") // quantize against upstream size changes
	g.emitf("\tmovl $%d, %%r12d", h.Trips)
	g.emit("\t.p2align 5")
	g.emitf("%s:", outer)
	g.emit("\tmovl $1, %edx")
	g.emitf("%s:", inner)
	g.emit("\taddl $1, %eax")
	g.emit("\taddl $2, %ebx")
	g.emit("\tdecl %edx")
	g.emitf("\tjne %s", inner)
	g.fill(h.Offset)
	g.emit("\tdecl %r12d")
	g.emitf("\tjne %s", outer)
}

// schedChain: the Section III-F hashing block, iterated. The mix
// result feeds three consumers; compiler order puts the two sinks
// first, so the critical-path consumer (movl, which continues the
// hash chain) arrives third and eats the forwarding-bandwidth delay
// every iteration. List scheduling with the critical-path cost
// function hoists it — the paper's 15% recovery.
func (g *gen) schedChain(h Hotspot) {
	top := g.label("t")
	g.emit("\t.p2align 5") // quantize against upstream size changes
	g.emitf("\tmovl $%d, %%r9d", h.Trips)
	g.emit("\tmovl $1, %ebx")
	g.emitf("%s:", top)
	for i := 0; i < h.Body; i++ {
		g.emit("\timull $-1640531527, %ebx, %ebx")
		g.emit("\tsubl %ebx, %ecx")
		g.emit("\tsubl %ebx, %edx")
		g.emit("\tmovl %ebx, %esi")
		g.emit("\tshrl $12, %esi")
		g.emit("\txorl %esi, %ebx")
	}
	g.emit("\tdecl %r9d")
	g.emitf("\tjne %s", top)
}

// redundantHot: a hot loop whose body carries redundant tests and
// duplicate loads. Removing them (REDTEST/REDMOV) shrinks the body
// across a decode-line boundary — the calculix second-order effect.
func (g *gen) redundantHot(h Hotspot) {
	top := g.label("t")
	g.emitf("\tmovl $%d, %%r10d", h.Trips)
	g.emitf("\tleaq %s_ws(%%rip), %%rsi", g.name)
	g.anchor(h.Offset)
	if h.Aligned {
		g.emit("\t.p2align 4")
	}
	g.emitf("%s:", top)
	for i := 0; i < h.Body; i++ {
		// Redundant tests: the subs already set the flags. Removing
		// them (REDTEST) cuts instructions from the decode-width-
		// bound body.
		g.emit("\tsubl $1, %r8d")
		g.emit("\ttestl %r8d, %r8d")
		g.emit("\tsubl $2, %r9d")
		g.emit("\ttestl %r9d, %r9d")
		// Reload into the same register — the fully redundant form:
		// REDMOV deletes it outright, cutting both an instruction
		// and a load.
		g.emit("\tmovq 8(%rsi), %rdx")
		g.emit("\tmovq 8(%rsi), %rdx")
		// ALU filler keeping decode width (not the load port) the
		// binding resource.
		g.emit("\taddq %rdx, %rcx")
		g.emit("\taddl $3, %r14d")
		g.emit("\taddl $5, %r15d")
	}
	g.emit("\tdecl %r10d")
	g.emitf("\tjne %s", top)
}

// streamScan: re-reads a working set of Entries cache lines (default
// 8), then streams through Body lines of a large buffer, per iteration
// (the cache-pollution scenario behind inverse prefetching).
func (g *gen) streamScan(h Hotspot) {
	outer, ws, stream := g.label("o"), g.label("w"), g.label("s")
	wsLines := h.Entries
	if wsLines <= 0 {
		wsLines = 8
	}
	g.emit("\t.p2align 5") // quantize against upstream size changes
	g.emitf("\tmovl $%d, %%r9d", h.Trips)
	g.emitf("%s:", outer)
	g.emitf("\tleaq %s_ws(%%rip), %%rcx", g.name)
	g.emitf("\tmovl $%d, %%r8d", wsLines)
	g.emitf("%s:", ws)
	// The accumulator chain makes every working-set miss cost its
	// full latency (a dead load would be hidden by the OOO core).
	g.emit("\taddq (%rcx), %rbx")
	g.emit("\taddq $64, %rcx")
	g.emit("\tdecl %r8d")
	g.emitf("\tjne %s", ws)
	g.emitf("\tleaq %s_buf(%%rip), %%rdx", g.name)
	g.emitf("\tmovl $%d, %%r8d", h.Body)
	g.emitf("%s:", stream)
	g.emit("\tmovq (%rdx), %rax")
	g.emit("\taddq $64, %rdx")
	g.emit("\tdecl %r8d")
	g.emitf("\tjne %s", stream)
	g.emit("\tdecl %r9d")
	g.emitf("\tjne %s", outer)
}

// alignTrap: an outer loop alternating two short-running inner loops.
// Loop 1 (trip count Trips, head Offset bytes past a 16-byte boundary,
// containing one redundant test) and loop 2 (behind a .p2align 5, so
// its position is quantized regardless of earlier code). In the
// baseline layout the two back branches sit in different predictor
// buckets; passes that change loop 1's size or alignment move its
// branch relative to the quantized loop 2 and can create aliasing.
func (g *gen) alignTrap(h Hotspot) {
	outer, l1, l2 := g.label("o"), g.label("a"), g.label("b")
	g.emitf("\tmovl $%d, %%r13d", h.Entries)

	// The partner loop sits right at the 32-byte-aligned outer head,
	// so its back branch's predictor bucket is fixed. Trip count 2
	// gives the taken/not-taken pattern the paper describes.
	g.emit("\t.p2align 5")
	g.emitf("%s:", outer)
	g.emit("\tmovl $2, %edx")
	g.emitf("%s:", l2)
	g.emit("\taddl $1, %r9d")
	g.emit("\tdecl %edx")
	g.emitf("\tjne %s", l2)

	// The movable loop: trip count 1 (back branch never taken —
	// trivially predictable with its own counter, poison when it
	// shares one), placed Offset filler bytes further, with a
	// redundant test inside so REDTEST changes its size.
	g.emit("\tmovl $1, %eax")
	g.fill(h.Offset)
	g.emitf("%s:", l1)
	g.emit("\taddl $1, %r8d")
	g.emit("\tsubl $1, %eax")
	g.emit("\ttestl %eax, %eax")
	g.emitf("\tjne %s", l1)

	// Body knob: extra filler separating the outer back branch.
	g.fill(h.Body)
	g.emit("\tdecl %r13d")
	g.emitf("\tjne %s", outer)
}

// diluterLoop: 16 instructions of mostly 3-byte adds in 47 bytes. The
// decode width (4 on Core-2, 3 on Opteron) is the binding constraint
// at any placement, so the loop's cost barely depends on alignment —
// making it a neutral dilution target for every alignment-shifting
// pass. Trips is the total iteration count, run as Entries x 120
// inner iterations (the inner count stays in imm8 range).
func (g *gen) diluterLoop(h Hotspot) {
	outer, top := g.label("o"), g.label("t")
	entries := h.Trips/120 + 1
	g.emit("\t.p2align 5") // quantize against upstream size changes
	g.emitf("\tmovl $%d, %%r13d", entries)
	g.emitf("%s:", outer)
	g.emit("\txorl %eax, %eax")
	g.emitf("%s:", top)
	regs := []string{"%ecx", "%edx", "%esi", "%edi"}
	for i := 0; i < 13; i++ {
		g.emitf("\taddl $%d, %s", 1+i%7, regs[i%len(regs)])
	}
	g.emit("\taddl $1, %eax")
	g.emit("\tcmpl $120, %eax")
	g.emitf("\tjl %s", top)
	g.emit("\tdecl %r13d")
	g.emitf("\tjne %s", outer)
}

// tightLoop: a 12-byte, 3-instruction loop. Decoded in one cycle when
// it sits inside a single fetch window; two cycles when it straddles
// one (3 instructions never hide a second line fetch). The h.Aligned
// directive (the compiler's work) keeps it inside; removing it
// (NOPKILL) exposes the placement — the calculix -8.8% mechanism.
func (g *gen) tightLoop(h Hotspot) {
	top := g.label("t")
	g.emitf("\tmovl $%d, %%ebx", h.Trips)
	g.anchor(h.Offset)
	if h.Aligned {
		// Full fetch-window alignment.
		g.emit("\t.p2align 5")
	}
	g.emitf("%s:", top)
	g.emit("\taddl $100000, %r8d")
	g.emit("\tsubl $1, %ebx") // last: jne consumes its flags
	g.emitf("\tjne %s", top)
}

// coldFunc emits a mostly-straight-line function carrying the given
// pattern counts, padded with neutral filler so patterns sit in
// realistic surroundings. Cold functions must execute safely (the
// entry calls a few), so every pattern is semantically neutral.
func (g *gen) coldFunc(name string, m PatternMix) {
	g.beginFunc(name)
	g.emit("\tpush %rbx")

	emitFiller := func() {
		switch g.rng.IntN(5) {
		case 0:
			g.emitf("\tmovl $%d, %%ecx", g.rng.IntN(1000))
		case 1:
			g.emit("\taddq $3, %rcx")
		case 2:
			g.emit("\tleaq 4(%rcx,%rcx,2), %rdx")
		case 3:
			g.emit("\txorl %ebx, %ebx")
		case 4:
			g.emitf("\tmovl $%d, %%edx", g.rng.IntN(1000))
		}
	}

	type emitter func()
	var work []emitter
	addN := func(n int, f emitter) {
		for i := 0; i < n; i++ {
			work = append(work, f)
		}
	}
	addN(m.RedZext, func() {
		g.emit("\tandl $255, %eax")
		g.emit("\tmov %eax, %eax")
	})
	addN(m.RedTest, func() {
		l := g.label("rt")
		g.emit("\tsubl $16, %ebx")
		g.emit("\ttestl %ebx, %ebx")
		g.emitf("\tje %s", l)
		g.emit("\taddl $1, %ecx")
		g.emitf("%s:", l)
	})
	addN(m.PlainTest, func() {
		// Not redundant: mov doesn't set flags.
		l := g.label("pt")
		g.emitf("\tmovl $%d, %%ebx", 1+g.rng.IntN(100))
		g.emit("\ttestl %ebx, %ebx")
		g.emitf("\tje %s", l)
		g.emit("\taddl $1, %edx")
		g.emitf("%s:", l)
	})
	addN(m.RedMem, func() {
		off := 8 * g.rng.IntN(16)
		g.emitf("\tmovq %s_ws+%d(%%rip), %%rdx", g.name, off)
		g.emitf("\tmovq %s_ws+%d(%%rip), %%rcx", g.name, off)
	})
	addN(m.AddAdd, func() {
		g.emitf("\taddq $%d, %%rcx", 1+g.rng.IntN(64))
		g.emit("\tmovq %rdx, %rbx")
		g.emitf("\taddq $%d, %%rcx", 1+g.rng.IntN(64))
	})
	// Indirect dispatches are emitted on jumped-over paths: the CFG
	// builder analyses them statically (that is the experiment), but
	// the executor never reaches them, keeping cold functions safely
	// runnable. This mirrors switch statements whose hot cases the
	// benchmark inputs never select.
	addN(m.IndirectTab, func() {
		skip, dead := g.label("its"), g.label("itd")
		g.emitf("\tjmp %s", skip)
		g.emitf("%s:", dead)
		g.emit("\txorl %edi, %edi")
		g.emitf("\tjmp *%s_tab(,%%rdi,8)", g.name)
		g.emitf("%s:", skip)
	})
	addN(m.IndirectReg, func() {
		skip, dead := g.label("irs"), g.label("ird")
		g.emitf("\tjmp %s", skip)
		g.emitf("%s:", dead)
		g.emit("\txorl %edi, %edi")
		g.emitf("\tmovq %s_tab(,%%rdi,8), %%rax", g.name)
		g.emit("\tjmp *%rax")
		g.emitf("%s:", skip)
	})
	addN(m.Unresolved, func() {
		// Complex target computation no pattern matches.
		skip, dead := g.label("us"), g.label("ud")
		g.emitf("\tjmp %s", skip)
		g.emitf("%s:", dead)
		g.emit("\tjmp *%rax")
		g.emitf("%s:", skip)
	})

	// Shuffle pattern emission order deterministically.
	g.rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
	for _, f := range work {
		emitFiller()
		f()
	}
	emitFiller()

	g.emit("\tpop %rbx")
	g.emit("\tret")
	g.endFunc(name)
}
