package router

// Fleet-wide miss coalescing: when K identical /v1/optimize requests
// are in flight at the router simultaneously, only one forward reaches
// a shard; the other K-1 wait on it and replay the buffered response
// with an X-Mao-Cache: coalesced verdict. The shard coalesces its own
// concurrent misses too (internal/serve), but router-side coalescing
// keeps the duplicate requests off the wire entirely — they consume no
// shard connection, no admission slot, nothing.
//
// Identity is the routing key (routeKey): for JSON optimize requests
// that is the daemon's own content-addressed result-cache key, so two
// requests coalesce exactly when the daemon would give them the same
// cache entry. Requests that opt out of caching (no_cache) or request
// a trace (every traced response is unique — it carries that request's
// hop span) never coalesce; archive submissions stream and take a
// different path entirely.
//
// The shared forward runs on a context detached from the leader's
// client: a leader that disconnects mid-flight must not kill the
// answer its followers are waiting on. The flight is refcounted; the
// LAST waiter to abandon it cancels the forward, and an abandoned
// flight is unmapped so later arrivals start fresh instead of adopting
// a doomed run. The leader publishes a result on EVERY path — success,
// failover exhaustion (502), read error — so a waiter can never hang
// on a flight whose run died silently.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mao/internal/scope"
)

// proxyResult is one fully buffered shard response (or router-level
// error), the unit a coalesced flight shares between its waiters.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
	// shard is the backend that answered ("" when none was reachable).
	shard string
	// cache is the shard's own X-Mao-Cache verdict; followers override
	// it with "coalesced" when writing their copy.
	cache   string
	retries int
	// errMsg is non-empty for router-level failures (no shard
	// reachable); it feeds the access log and flight record.
	errMsg string
}

// routerFlight is one in-flight coalesced forward.
type routerFlight struct {
	g    *routerFlightGroup
	key  string
	done chan struct{} // closed once res is published

	// All three guarded by g.mu.
	res       proxyResult
	refs      int
	published bool
	cancel    context.CancelFunc
}

// routerFlightGroup deduplicates in-flight forwards by routing key.
type routerFlightGroup struct {
	mu sync.Mutex
	m  map[string]*routerFlight
}

func newRouterFlightGroup() *routerFlightGroup {
	return &routerFlightGroup{m: make(map[string]*routerFlight)}
}

// join returns the flight for key, creating it if absent. The second
// return is true for the caller that created it — the leader, who must
// run the forward and publish on every path.
func (g *routerFlightGroup) join(key string) (*routerFlight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.refs++
		return f, false
	}
	f := &routerFlight{g: g, key: key, done: make(chan struct{}), refs: 1}
	g.m[key] = f
	return f, true
}

// setCancel installs the shared forward's cancel before any follower
// can observe the flight as abandonable.
func (f *routerFlight) setCancel(cancel context.CancelFunc) {
	f.g.mu.Lock()
	f.cancel = cancel
	f.g.mu.Unlock()
}

// publish stores the result, retires the flight from the group, and
// wakes every waiter. Idempotent against a racing last-leaver unmap.
func (f *routerFlight) publish(res proxyResult) {
	f.g.mu.Lock()
	f.res = res
	f.published = true
	if f.g.m[f.key] == f {
		delete(f.g.m, f.key)
	}
	cancel := f.cancel
	f.g.mu.Unlock()
	close(f.done)
	if cancel != nil {
		cancel() // release the timeout timer
	}
}

// leave drops one waiter's reference. The last waiter to abandon an
// unpublished flight unmaps it and cancels the shared forward — nobody
// is left to read the answer.
func (f *routerFlight) leave() {
	f.g.mu.Lock()
	f.refs--
	var cancel context.CancelFunc
	if f.refs == 0 && !f.published {
		if f.g.m[f.key] == f {
			delete(f.g.m, f.key)
		}
		cancel = f.cancel
	}
	f.g.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// coalescible reports whether a request may share a forward: a JSON
// optimize POST that neither bypasses the cache nor requests a trace,
// in either query-parameter or body-option spelling.
func coalescible(req *http.Request, body []byte) bool {
	if req.Method != "POST" || req.URL.Path != "/v1/optimize" {
		return false
	}
	q := req.URL.Query()
	if q.Get("trace") != "" {
		return false
	}
	if v := q.Get("no_cache"); v == "1" || v == "true" {
		return false
	}
	if strings.HasPrefix(req.Header.Get("Content-Type"), "application/json") {
		var jr struct {
			Options struct {
				NoCache bool   `json:"no_cache"`
				Trace   string `json:"trace"`
			} `json:"options"`
		}
		if err := json.Unmarshal(body, &jr); err == nil &&
			(jr.Options.NoCache || jr.Options.Trace != "") {
			return false
		}
	}
	return true
}

// coalesce serves one coalescible request through the flight group:
// the leader forwards on a detached context and publishes; everyone
// waits on the flight and replays the buffered response. Followers
// report X-Mao-Cache: coalesced — the shard's verdict describes the
// leader's request, not theirs.
func (r *Router) coalesce(w http.ResponseWriter, req *http.Request, key string, body []byte, rid string, tc scope.Context, hop scope.Span, start time.Time) {
	f, leader := r.flights.join(key)
	if leader {
		// Detached from the leader's client: followers may outlive it.
		runCtx, runCancel := context.WithTimeout(
			context.WithoutCancel(req.Context()), r.cfg.CoalesceTimeout)
		f.setCancel(runCancel)
		go func() {
			f.publish(r.forwardBuffered(runCtx, req, key, body, rid, tc, hop))
		}()
	} else {
		r.met.coalesced.Add(1)
	}

	select {
	case <-f.done:
	case <-req.Context().Done():
		f.leave()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("request abandoned before the coalesced answer arrived"))
		r.finishProxy(req, start, rid, tc, "", "", http.StatusServiceUnavailable, 0,
			"client gone before the coalesced answer arrived")
		return
	}

	res := f.res
	verdict := res.cache
	if !leader {
		verdict = "coalesced"
	}
	copyHeaders(w.Header(), res.header)
	if res.shard != "" {
		w.Header().Set(shardHeader, res.shard)
	}
	if verdict != "" {
		w.Header().Set(cacheHeader, verdict)
	}
	w.Header().Del("Content-Length") // recomputed for the replayed body
	w.WriteHeader(res.status)
	w.Write(res.body)
	r.finishProxy(req, start, rid, tc, res.shard, verdict, res.status, res.retries, res.errMsg)
}

// forwardBuffered is the coalesced counterpart of proxy's forwarding
// loop: same candidate selection, same failover-once semantics, same
// passive health marking — but the response is fully buffered so it
// can fan out to every waiter.
func (r *Router) forwardBuffered(ctx context.Context, req *http.Request, key string, body []byte, rid string, tc scope.Context, hop scope.Span) proxyResult {
	seq := r.ring.seq(key)
	var candidates []*backend
	for _, idx := range seq {
		if b := r.backends[idx]; b.isHealthy() {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		candidates = []*backend{r.backends[seq[0]]}
	}
	if len(candidates) > 2 {
		candidates = candidates[:2]
	}

	var lastErr error
	for attempt, b := range candidates {
		if attempt > 0 {
			r.met.retries.Add(1)
		}
		fwdStart := time.Now()
		resp, err := r.forward(ctx, req, b, body, rid, tc.Child(hop.SpanID))
		if err != nil {
			r.setHealthy(b, false, "forward failed: "+err.Error())
			r.met.shard(b.name).errors.Add(1)
			lastErr = err
			continue
		}
		respBody, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			// The shard died mid-body. Nothing is committed to any
			// waiter (the body is buffered), so failing over is safe.
			r.setHealthy(b, false, "response read failed: "+rerr.Error())
			r.met.shard(b.name).errors.Add(1)
			lastErr = rerr
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < len(candidates)-1 {
			r.setHealthy(b, false, "shard draining (503)")
			lastErr = fmt.Errorf("shard %s answered 503 (draining)", b.name)
			continue
		}
		r.met.shard(b.name).requests.Add(1)
		r.met.shard(b.name).latency.observe(time.Since(fwdStart).Seconds())
		return proxyResult{
			status:  resp.StatusCode,
			header:  resp.Header,
			body:    respBody,
			shard:   b.name,
			cache:   resp.Header.Get(cacheHeader),
			retries: attempt,
		}
	}

	r.met.unrouted.Add(1)
	err := fmt.Errorf("no shard reachable: %w", lastErr)
	errBody, _ := json.Marshal(errorResponse{Error: err.Error()})
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", "1")
	return proxyResult{
		status:  http.StatusBadGateway,
		header:  h,
		body:    append(errBody, '\n'),
		retries: len(candidates) - 1,
		errMsg:  err.Error(),
	}
}
