package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mao/internal/cachekey"
	"mao/internal/pass"
	"mao/internal/serve"
)

// sleepPass mirrors the serve package's test pass: it holds a worker
// busy for ms[N] milliseconds so streaming tests can observe partial
// progress deterministically.
type sleepPass struct{}

func (sleepPass) Name() string        { return "SLEEPTEST" }
func (sleepPass) Description() string { return "test pass that sleeps" }

// Effectful: the sleep is the point — memoizing it away would let
// repeat content skip the delay the timing tests depend on.
func (sleepPass) Effectful() bool { return true }
func (sleepPass) RunUnit(ctx *pass.Ctx) (bool, error) {
	d := time.Duration(ctx.Opts.Int("ms", 10)) * time.Millisecond
	select {
	case <-time.After(d):
		return false, nil
	case <-ctx.Context().Done():
		return false, ctx.Context().Err()
	}
}

func init() {
	if pass.Lookup("SLEEPTEST") == nil {
		pass.Register(func() pass.Pass { return sleepPass{} })
	}
}

const testSource = `	.text
	.type f,@function
f:
	subl $16, %r15d
	testl %r15d, %r15d
	je .Lz
	movq 24(%rsp), %rdx
	movq 24(%rsp), %rcx
.Lz:
	ret
	.size f,.-f
`

// testFleet boots n real maod shards behind a router and tears
// everything down with the test. Probing is disabled by default so
// tests control health marking explicitly; pass a positive interval
// to turn it on.
func testFleet(t *testing.T, n int, probe time.Duration) (*Router, *httptest.Server, []*httptest.Server) {
	t.Helper()
	var shardURLs []string
	var shards []*httptest.Server
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		shards = append(shards, ts)
		shardURLs = append(shardURLs, ts.URL)
	}
	if probe == 0 {
		probe = -1
	}
	r, err := New(Config{Shards: shardURLs, ProbeInterval: probe, ProbeTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r)
	t.Cleanup(func() { front.Close(); r.Close() })
	return r, front, shards
}

func optimizeVia(t *testing.T, url, name string) (*http.Response, *serve.OptimizeResponse) {
	t.Helper()
	body, _ := json.Marshal(&serve.OptimizeRequest{Name: name, Source: testSource, Spec: "REDTEST"})
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	var out serve.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, &out
}

// TestRingDeterministicAndOrderIndependent: key ownership depends on
// shard names, not their position in the list, and seq is a
// permutation of all shards.
func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3"}
	reordered := []string{"http://c:3", "http://a:1", "http://b:2"}
	r1 := newRing(names, 0)
	r2 := newRing(reordered, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		s1 := r1.seq(key)
		s2 := r2.seq(key)
		if len(s1) != 3 || len(s2) != 3 {
			t.Fatalf("seq(%q) lengths = %d, %d, want 3", key, len(s1), len(s2))
		}
		for j := range s1 {
			if names[s1[j]] != reordered[s2[j]] {
				t.Fatalf("seq(%q)[%d]: %s vs %s — ownership depends on list order",
					key, j, names[s1[j]], reordered[s2[j]])
			}
		}
		seen := map[int]bool{}
		for _, s := range s1 {
			if seen[s] {
				t.Fatalf("seq(%q) repeats shard %d", key, s)
			}
			seen[s] = true
		}
	}
}

// TestRingBalance: with 128 vnodes, no shard of 4 owns more than ~2x
// its fair share of random keys.
func TestRingBalance(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := newRing(names, 0)
	counts := make([]int, len(names))
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.seq(fmt.Sprintf("unit-%d.s", i))[0]]++
	}
	fair := float64(keys) / float64(len(names))
	for s, c := range counts {
		if ratio := float64(c) / fair; ratio < 0.5 || ratio > 2.0 {
			t.Errorf("shard %d owns %d/%d keys (%.2fx fair share)", s, c, keys, ratio)
		}
	}
}

// TestRingConsistency: removing one shard (as health filtering does)
// moves only that shard's keys; everyone else's owner is unchanged.
func TestRingConsistency(t *testing.T) {
	names := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := newRing(names, 0)
	const dead = 2
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		seq := r.seq(fmt.Sprintf("unit-%d.s", i))
		if seq[0] == dead {
			moved++
			continue
		}
		// Filtering out the dead shard must not change this key's owner.
		for _, s := range seq {
			if s == dead {
				continue
			}
			if s != seq[0] {
				t.Fatalf("key %d rerouted from %d to %d though its owner is alive", i, seq[0], s)
			}
			break
		}
	}
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Errorf("losing 1 of 4 shards moved %.0f%% of keys, want ~25%%", frac*100)
	}
}

// TestRouterProxiesAndSetsHeaders: a routed optimize answers exactly
// like a direct daemon and carries X-Mao-Shard + X-Request-ID.
func TestRouterProxiesAndSetsHeaders(t *testing.T) {
	_, front, shards := testFleet(t, 2, 0)
	resp, out := optimizeVia(t, front.URL, "f.s")
	if out.Assembly == "" {
		t.Error("empty assembly through router")
	}
	shard := resp.Header.Get("X-Mao-Shard")
	if shard != shards[0].URL && shard != shards[1].URL {
		t.Errorf("X-Mao-Shard = %q, not a shard URL", shard)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("router response lacks X-Request-ID")
	}

	// Direct comparison: the shard that served it answers identically.
	dresp, direct := optimizeVia(t, shard, "f.s")
	if direct.Assembly != out.Assembly {
		t.Error("routed assembly differs from direct shard response")
	}
	_ = dresp
}

// TestRouterKeyAffinity: repeats of the same request always land on
// the same shard, and the second hit is served from that shard's
// result cache.
func TestRouterKeyAffinity(t *testing.T) {
	_, front, _ := testFleet(t, 4, 0)
	where := map[string]string{}
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("unit-%d.s", i)
			resp, out := optimizeVia(t, front.URL, name)
			shard := resp.Header.Get("X-Mao-Shard")
			if prev, ok := where[name]; ok {
				if prev != shard {
					t.Fatalf("%s moved from %s to %s between repeats", name, prev, shard)
				}
				if !out.Cached {
					t.Errorf("repeat of %s not served from shard result cache", name)
				}
				if resp.Header.Get("X-Mao-Cache") != "hit" {
					t.Errorf("repeat of %s: X-Mao-Cache = %q, want hit", name, resp.Header.Get("X-Mao-Cache"))
				}
			} else {
				where[name] = shard
			}
		}
	}
	// 8 distinct names on 4 shards should touch more than one shard.
	distinct := map[string]bool{}
	for _, s := range where {
		distinct[s] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d keys landed on one shard", len(where))
	}
}

// TestRouteKeyMatchesDaemon: the router's key for a JSON optimize
// request — including the ?verify=1 query spelling — is the daemon's
// cachekey, byte for byte.
func TestRouteKeyMatchesDaemon(t *testing.T) {
	body := []byte(`{"name":"f.s","source":"ret\n","spec":"REDTEST","options":{"check":true}}`)
	req := httptest.NewRequest("POST", "/v1/optimize?verify=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	got := routeKey(req, body)
	want := cachekey.Key(cachekey.Request{
		Name: "f.s", Source: "ret\n", Spec: "REDTEST", Check: true, Verify: true,
	})
	if got != want {
		t.Errorf("routeKey = %s, want daemon cachekey %s", got, want)
	}

	// Non-JSON and malformed bodies fall back to a raw digest — still
	// deterministic.
	raw := []byte("not json")
	req2 := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(raw))
	req2.Header.Set("Content-Type", "application/json")
	k1 := routeKey(req2, raw)
	k2 := routeKey(req2, raw)
	if k1 != k2 {
		t.Error("fallback key not deterministic")
	}
	if k1 == want {
		t.Error("fallback key collided with a cachekey")
	}
}

// TestRouterRetriesDeadShard: with the key's owner down, the request
// is retried on the failover shard, the dead shard is marked
// unhealthy, and a rebalance is counted.
func TestRouterRetriesDeadShard(t *testing.T) {
	r, front, shards := testFleet(t, 2, 0)

	// Find a name owned by shard 0, then kill shard 0.
	var victimName string
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("probe-%d.s", i)
		body, _ := json.Marshal(&serve.OptimizeRequest{Name: name, Source: testSource, Spec: "REDTEST"})
		req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if r.ring.seq(routeKey(req, body))[0] == 0 {
			victimName = name
			break
		}
	}
	if victimName == "" {
		t.Fatal("no key found owned by shard 0")
	}
	shards[0].Close()

	resp, out := optimizeVia(t, front.URL, victimName)
	if out.Assembly == "" {
		t.Error("empty assembly from failover shard")
	}
	if got := resp.Header.Get("X-Mao-Shard"); got != shards[1].URL {
		t.Errorf("served by %q, want failover shard %q", got, shards[1].URL)
	}
	if r.met.retries.Load() == 0 {
		t.Error("retry not counted")
	}
	if r.met.rebalances.Load() == 0 {
		t.Error("health transition not counted as a rebalance")
	}
	if r.backends[0].isHealthy() {
		t.Error("dead shard still marked healthy")
	}
	// Subsequent requests skip the dead shard without a retry.
	before := r.met.retries.Load()
	optimizeVia(t, front.URL, victimName)
	if r.met.retries.Load() != before {
		t.Error("request to a known-dead shard's key still burned a retry")
	}
}

// TestRouterFailsOverDrainingShard: a shard answering 503 (maod's
// drain signal) is failed over exactly like a dead one — drains are
// hitless even before a /readyz probe catches them.
func TestRouterFailsOverDrainingShard(t *testing.T) {
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(draining.Close)
	s := serve.New(serve.Config{})
	live := httptest.NewServer(s.Handler())
	t.Cleanup(func() { live.Close(); s.Close() })

	r, err := New(Config{Shards: []string{draining.URL, live.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r)
	t.Cleanup(func() { front.Close(); r.Close() })

	// Ring ownership hashes the shard URLs, which carry ephemeral
	// httptest ports — so probe the ring for names the draining shard
	// actually owns instead of hoping a fixed set spreads. Every one
	// must still come back 200, served by the live shard.
	var names []string
	for i := 0; len(names) < 4 && i < 4096; i++ {
		name := fmt.Sprintf("drain-%d.s", i)
		key := cachekey.Key(cachekey.Request{Name: name, Source: testSource, Spec: "REDTEST"})
		if r.ring.seq(key)[0] == 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		t.Fatal("draining shard owns none of 4096 probe keys")
	}
	for i, name := range names {
		resp, out := optimizeVia(t, front.URL, name)
		if out.Assembly == "" {
			t.Fatalf("empty assembly for unit %d", i)
		}
		if got := resp.Header.Get("X-Mao-Shard"); got != live.URL {
			t.Errorf("unit %d served by %q, want live shard", i, got)
		}
	}
	if r.backends[0].isHealthy() {
		t.Error("draining shard still marked healthy")
	}
}

// TestRouterNoShardReachable: every shard down → 502 with Retry-After,
// counted on maorouter_no_shard_total.
func TestRouterNoShardReachable(t *testing.T) {
	r, front, shards := testFleet(t, 2, 0)
	for _, s := range shards {
		s.Close()
	}
	body, _ := json.Marshal(&serve.OptimizeRequest{Source: testSource, Spec: "REDTEST"})
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("502 lacks Retry-After")
	}
	if r.met.unrouted.Load() == 0 {
		t.Error("maorouter_no_shard_total not incremented")
	}
}

// TestRouterProbeRecovery: a shard marked dead rejoins once its
// /readyz answers again.
func TestRouterProbeRecovery(t *testing.T) {
	var down atomic.Bool
	s := serve.New(serve.Config{})
	t.Cleanup(func() { s.Close() })
	inner := s.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	r, err := New(Config{Shards: []string{flaky.URL}, ProbeInterval: 20 * time.Millisecond, ProbeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Healthy() != 0 {
		t.Fatal("shard never marked unhealthy by probes")
	}
	down.Store(false)
	for r.Healthy() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Healthy() != 1 {
		t.Fatal("shard never recovered after /readyz returned")
	}
	if r.met.rebalances.Load() < 2 {
		t.Errorf("rebalances = %d, want ≥ 2 (down + up)", r.met.rebalances.Load())
	}
}

// TestRouterMetricsExposed: the router's own /metrics carries the
// per-shard and fleet series.
func TestRouterMetricsExposed(t *testing.T) {
	_, front, shards := testFleet(t, 2, 0)
	optimizeVia(t, front.URL, "m.s")
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(b)
	for _, want := range []string{
		"maorouter_requests_total",
		fmt.Sprintf("maorouter_shard_healthy{shard=%q} 1", shards[0].URL),
		"maorouter_request_duration_seconds_bucket",
		"maorouter_rebalances_total 0",
		"maorouter_retries_total 0",
		"maorouter_no_shard_total 0",
		"maorouter_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Exactly one shard served the request.
	total := 0
	for _, s := range shards {
		var n int
		fmt.Sscanf(metricValue(body, fmt.Sprintf("maorouter_requests_total{shard=%q}", s.URL)), "%d", &n)
		total += n
	}
	if total != 1 {
		t.Errorf("sum of per-shard requests = %d, want 1", total)
	}
}

// metricValue extracts the sample value following a series name.
func metricValue(body, series string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" ")
		}
	}
	return "0"
}

// TestRouterHealthz: the router's own liveness endpoint, independent
// of shard state.
func TestRouterHealthz(t *testing.T) {
	_, front, shards := testFleet(t, 1, 0)
	shards[0].Close()
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/healthz = %d with shards down, want 200 (router liveness, not fleet health)", resp.StatusCode)
	}
}

// TestRouterStreamsArchiveIncrementally: an NDJSON archive stream
// crosses the router record by record — the first record arrives
// while later units are still executing on the shard.
func TestRouterStreamsArchiveIncrementally(t *testing.T) {
	// One slow shard: 1 worker, 150ms per unit.
	s := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	r, err := New(Config{Shards: []string{ts.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r)
	t.Cleanup(func() { front.Close(); r.Close() })

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "maoar1 %d %d\n", len("a.s"), len(testSource))
	buf.WriteString("a.s")
	buf.WriteString(testSource)
	fmt.Fprintf(&buf, "maoar1 %d %d\n", len("b.s"), len(testSource))
	buf.WriteString("b.s")
	buf.WriteString(testSource)

	start := time.Now()
	resp, err := http.Post(front.URL+"/v1/optimize/archive?spec=SLEEPTEST=ms[150]&no_cache=1",
		"application/x-mao-archive", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first record")
	}
	firstAt := time.Since(start)
	var rest int
	for sc.Scan() {
		rest++
	}
	totalAt := time.Since(start)
	if rest != 2 { // second record + trailer
		t.Fatalf("got %d lines after the first, want 2", rest)
	}
	// The first record must land well before the full stream: unit b
	// sleeps 150ms after a completes, so a gap under 100ms would mean
	// the router buffered the stream.
	if gap := totalAt - firstAt; gap < 100*time.Millisecond {
		t.Errorf("first record at %v, stream done at %v — router buffered the stream", firstAt, totalAt)
	}
}

// TestRouterRequestIDPropagates: a caller-supplied X-Request-ID rides
// through the router to the shard and back.
func TestRouterRequestIDPropagates(t *testing.T) {
	_, front, _ := testFleet(t, 2, 0)
	body, _ := json.Marshal(&serve.OptimizeRequest{Source: testSource, Spec: "REDTEST"})
	req, _ := http.NewRequest("POST", front.URL+"/v1/optimize", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "fleet-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "fleet-trace-42" {
		t.Errorf("X-Request-ID = %q, want fleet-trace-42", got)
	}
	// Exactly one value: the shard echoes the ID too, and the router
	// must not stack the echo on top of its own (canonical-key trap —
	// http.Header stores "X-Request-Id").
	if vs := resp.Header.Values("X-Request-ID"); len(vs) != 1 {
		t.Errorf("X-Request-ID appears %d times (%q), want once", len(vs), vs)
	}
	if vs := resp.Header.Values("X-Mao-Shard"); len(vs) != 1 {
		t.Errorf("X-Mao-Shard appears %d times (%q), want once", len(vs), vs)
	}
}

// TestRouterRejectsOversizeBody: bodies beyond MaxBodyBytes are
// refused at the router with 413 before any shard sees them.
func TestRouterRejectsOversizeBody(t *testing.T) {
	r, front, _ := testFleet(t, 1, 0)
	r.cfg.MaxBodyBytes = 1024
	big := strings.Repeat("x", 4096)
	resp, err := http.Post(front.URL+"/v1/optimize", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	for _, s := range r.backends {
		if r.met.shard(s.name).requests.Load() != 0 {
			t.Error("oversize body reached a shard")
		}
	}
}

// TestNewRejectsBadConfig: empty and malformed shard lists fail fast.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no shards succeeded")
	}
	if _, err := New(Config{Shards: []string{"::not a url"}}); err == nil {
		t.Error("New with a malformed shard URL succeeded")
	}
}

// TestHistogramSum: the local histogram copy sums observations (guards
// the CAS loop).
func TestHistogramSum(t *testing.T) {
	h := newHistogram(latencyBuckets)
	h.observe(0.001)
	h.observe(0.002)
	if n := h.count.Load(); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if sum := math.Float64frombits(h.sumBits.Load()); math.Abs(sum-0.003) > 1e-9 {
		t.Fatalf("sum = %g", sum)
	}
}
