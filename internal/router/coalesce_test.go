package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mao/internal/serve"
)

// coalesceFleet boots one real maod shard behind a router, counting
// every HTTP request that actually reaches the shard's /v1/optimize.
func coalesceFleet(t *testing.T, cfg Config) (*Router, *httptest.Server, *atomic.Int64) {
	t.Helper()
	s := serve.New(serve.Config{})
	var shardHits atomic.Int64
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/v1/optimize" {
			shardHits.Add(1)
		}
		s.Handler().ServeHTTP(w, req)
	}))
	t.Cleanup(func() { shard.Close(); s.Close() })
	cfg.Shards = []string{shard.URL}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r)
	t.Cleanup(func() { front.Close(); r.Close() })
	return r, front, &shardHits
}

func postOptimize(t *testing.T, url string, req *serve.OptimizeRequest) (int, string, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header.Get(cacheHeader)
}

// TestRouterCoalesceSharesOneForward: K concurrent identical optimize
// requests cross the router as ONE shard forward. The leader relays the
// shard's "miss"; every follower replays the buffered response as
// "coalesced" — in the response header, the access log, and the flight
// recorder — and the bodies are byte-identical.
func TestRouterCoalesceSharesOneForward(t *testing.T) {
	const followers = 5
	log := &syncBuffer{}
	r, front, shardHits := coalesceFleet(t, Config{AccessLog: log})
	req := &serve.OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[300]:REDTEST"}

	type answer struct {
		status  int
		body    string
		verdict string
	}
	answers := make([]answer, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, body, v := postOptimize(t, front.URL, req)
			answers[i] = answer{st, body, v}
		}(i)
		if i == 0 {
			// Let the leader's forward start before the followers join.
			time.Sleep(75 * time.Millisecond)
		}
	}
	wg.Wait()

	misses, coalesced := 0, 0
	for i, a := range answers {
		if a.status != 200 {
			t.Fatalf("caller %d: status %d: %s", i, a.status, a.body)
		}
		if a.body != answers[0].body {
			t.Errorf("caller %d: body differs from the leader's", i)
		}
		switch a.verdict {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("caller %d: verdict %q", i, a.verdict)
		}
	}
	if misses != 1 || coalesced != followers {
		t.Errorf("verdicts: %d miss / %d coalesced, want 1/%d", misses, coalesced, followers)
	}
	if got := shardHits.Load(); got != 1 {
		t.Errorf("shard saw %d forwards, want 1 (coalescing failed)", got)
	}
	if got := r.met.coalesced.Load(); got != followers {
		t.Errorf("maorouter_coalesced_total = %d, want %d", got, followers)
	}
	if n := strings.Count(log.String(), `"cache":"coalesced"`); n != followers {
		t.Errorf("access log has %d coalesced records, want %d:\n%s", n, followers, log.String())
	}
	recorded := 0
	for _, rec := range r.flight.Recent() {
		if rec.Cache == "coalesced" {
			recorded++
		}
	}
	if recorded != followers {
		t.Errorf("flight recorder has %d coalesced records, want %d", recorded, followers)
	}
}

// TestRouterCoalesceDisabled: with DisableCoalesce every request is
// its own forward — the shard sees all K+1.
func TestRouterCoalesceDisabled(t *testing.T) {
	const n = 4
	_, front, shardHits := coalesceFleet(t, Config{DisableCoalesce: true})
	req := &serve.OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[100]:REDTEST"}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if st, body, _ := postOptimize(t, front.URL, req); st != 200 {
				t.Errorf("status %d: %s", st, body)
			}
		}()
	}
	wg.Wait()
	if got := shardHits.Load(); got != n {
		t.Errorf("shard saw %d forwards, want %d with coalescing disabled", got, n)
	}
}

// TestRouterCoalesceBypassesTraceAndNoCache: requests that carry
// ?trace= or no_cache never share a forward — a traced response is
// unique to its request, and no_cache explicitly asks for a fresh run.
func TestRouterCoalesceBypassesTraceAndNoCache(t *testing.T) {
	_, front, shardHits := coalesceFleet(t, Config{})
	body, _ := json.Marshal(&serve.OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[150]:REDTEST"})

	for _, query := range []string{"?trace=1", "?no_cache=1"} {
		shardHits.Store(0)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(front.URL+"/v1/optimize"+query, "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.Header.Get(cacheHeader) == "coalesced" {
					t.Errorf("%s request was coalesced", query)
				}
			}()
		}
		wg.Wait()
		if got := shardHits.Load(); got != 2 {
			t.Errorf("%s: shard saw %d forwards, want 2 (bypass failed)", query, got)
		}
	}
}

// TestRouterCoalesceLeaderClientGoneKeepsFollowers: the shared forward
// runs detached from the leader's client — the leader disconnecting
// mid-flight must not kill the answer its followers wait on.
func TestRouterCoalesceLeaderClientGoneKeepsFollowers(t *testing.T) {
	_, front, shardHits := coalesceFleet(t, Config{})
	body, _ := json.Marshal(&serve.OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[400]:REDTEST"})

	ctx, cancel := context.WithCancel(context.Background())
	hr, _ := http.NewRequestWithContext(ctx, "POST", front.URL+"/v1/optimize", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	leaderDone := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(hr)
		if err == nil {
			resp.Body.Close()
		}
		close(leaderDone)
	}()
	time.Sleep(75 * time.Millisecond)

	type answer struct {
		status  int
		verdict string
	}
	followerDone := make(chan answer, 1)
	go func() {
		st, _, v := postOptimize(t, front.URL, &serve.OptimizeRequest{Source: testSource, Spec: "SLEEPTEST=ms[400]:REDTEST"})
		followerDone <- answer{st, v}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel() // leader's client walks away mid-forward
	<-leaderDone

	select {
	case a := <-followerDone:
		if a.status != 200 || a.verdict != "coalesced" {
			t.Errorf("follower got status %d verdict %q after leader disconnect, want 200 coalesced", a.status, a.verdict)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never answered after leader disconnect")
	}
	if got := shardHits.Load(); got != 1 {
		t.Errorf("shard saw %d forwards, want 1", got)
	}
}
