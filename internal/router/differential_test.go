package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"mao/internal/serve"
)

// buildMao compiles the cmd/mao driver once per test invocation.
func buildMao(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mao")
	cmd := exec.Command("go", "build", "-o", bin, "mao/cmd/mao")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build cmd/mao: %v\n%s", err, out)
	}
	return bin
}

// diffSpecs mirrors the serve-package differential matrix: the fleet
// is held byte-identical to the CLI over the same pipelines.
var diffSpecs = []string{
	"",
	"REDTEST:REDMOV",
	"DCE:CONSTFOLD",
	"NOPKILL:REDZEXT",
	"SCHED",
	"LOOP16",
}

func corpusFixtures(t *testing.T) []string {
	t.Helper()
	fixtures, err := filepath.Glob(filepath.Join("..", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	return fixtures
}

// cliOutputs runs cmd/mao over every fixture × diffSpecs and returns
// the emitted assembly keyed by "fixture|spec".
func cliOutputs(t *testing.T, bin string, fixtures []string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	want := make(map[string]string)
	for i, fx := range fixtures {
		for j, spec := range diffSpecs {
			out := filepath.Join(dir, fmt.Sprintf("out_%d_%d.s", i, j))
			cliSpec := "ASM=o[" + out + "]"
			if spec != "" {
				cliSpec = spec + ":" + cliSpec
			}
			cmd := exec.Command(bin, "--mao="+cliSpec, fx)
			if msg, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("mao --mao=%s %s: %v\n%s", cliSpec, fx, err, msg)
			}
			b, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			want[fx+"|"+spec] = string(b)
		}
	}
	return want
}

func optimizeThrough(url string, req *serve.OptimizeRequest) (*serve.OptimizeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	var out serve.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TestFleetDifferentialAgainstCLI is the fleet acceptance criterion:
// the same request answered through router→shards is byte-identical
// to a direct single maod and to what cmd/mao emits, at shard counts
// 1, 2 and 4 and worker counts 1 and 8 — topology must be invisible
// in the bytes.
func TestFleetDifferentialAgainstCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds cmd/mao and runs the corpus matrix across fleet topologies")
	}
	bin := buildMao(t)
	fixtures := corpusFixtures(t)
	want := cliOutputs(t, bin, fixtures)
	sources := make(map[string]string)
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		sources[fx] = string(b)
	}

	// The direct single-daemon reference, checked once against the CLI.
	direct := serve.New(serve.Config{})
	directTS := httptest.NewServer(direct.Handler())
	t.Cleanup(func() { directTS.Close(); direct.Close() })
	for _, fx := range fixtures {
		for _, spec := range diffSpecs {
			resp, err := optimizeThrough(directTS.URL, &serve.OptimizeRequest{
				Name: fx, Source: sources[fx], Spec: spec,
			})
			if err != nil {
				t.Fatalf("direct maod %s spec=%q: %v", fx, spec, err)
			}
			if resp.Assembly != want[fx+"|"+spec] {
				t.Fatalf("direct maod differs from cmd/mao for %s spec=%q", fx, spec)
			}
		}
	}

	for _, shardCount := range []int{1, 2, 4} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("shards-%d-workers-%d", shardCount, workers)
			t.Run(name, func(t *testing.T) {
				var shardURLs []string
				for i := 0; i < shardCount; i++ {
					s := serve.New(serve.Config{Workers: workers, QueueDepth: 256})
					ts := httptest.NewServer(s.Handler())
					t.Cleanup(func() { ts.Close(); s.Close() })
					shardURLs = append(shardURLs, ts.URL)
				}
				rt, err := New(Config{Shards: shardURLs, ProbeInterval: -1})
				if err != nil {
					t.Fatal(err)
				}
				front := httptest.NewServer(rt)
				t.Cleanup(func() { front.Close(); rt.Close() })

				var wg sync.WaitGroup
				errs := make(chan string, len(fixtures)*len(diffSpecs)*2)
				for _, fx := range fixtures {
					for _, spec := range diffSpecs {
						// Two replicas: the first populates the owning
						// shard's cache, the second must return the same
						// bytes from it.
						for rep := 0; rep < 2; rep++ {
							wg.Add(1)
							go func(fx, spec string, rep int) {
								defer wg.Done()
								resp, err := optimizeThrough(front.URL, &serve.OptimizeRequest{
									Name: fx, Source: sources[fx], Spec: spec,
								})
								if err != nil {
									errs <- fmt.Sprintf("%s: %s spec=%q rep=%d: %v", name, fx, spec, rep, err)
									return
								}
								if resp.Assembly != want[fx+"|"+spec] {
									errs <- fmt.Sprintf("%s: %s spec=%q rep=%d: routed output differs from cmd/mao (cached=%v)",
										name, fx, spec, rep, resp.Cached)
								}
							}(fx, spec, rep)
						}
					}
				}
				wg.Wait()
				close(errs)
				for e := range errs {
					t.Error(e)
				}
			})
		}
	}
}
