// Package router implements MAOROUTER, the shared-nothing shard
// router that scales maod out: a reverse proxy that computes the same
// content-addressed result-cache key the daemon uses
// (internal/cachekey — one derivation, golden-vector pinned, so router
// and daemon cannot drift) and consistent-hashes it onto N shard
// backends.
//
// Why hash on the cache key rather than round-robin: every shard can
// serve every request (the optimizer is deterministic and shards are
// shared-nothing), but each shard's result cache only holds what that
// shard has seen. Key-affinity routing sends every repeat of a
// request to the shard that already computed it, so fleet-wide cache
// hit rate approaches the single-daemon rate instead of being diluted
// by a factor of N — cmd/maoload's zipf mode measures exactly this
// concentration.
//
// Identical in-flight misses coalesce (see coalesce.go): concurrent
// duplicate optimize requests share a single shard forward, with the
// followers replaying the buffered response under an
// X-Mao-Cache: coalesced verdict — a thundering herd of one hot
// request costs the fleet one pipeline run, total.
//
// Failure handling: shards are health-checked via their /readyz
// (which flips to 503 the moment a shard starts draining) and marked
// passively on transport errors. A request whose shard is down —
// or whose forward dies before a response arrives — is retried once
// on the next shard in the key's ring preference order; maod requests
// are idempotent by construction (content-addressed, deterministic),
// so the retry is safe. Responses are streamed through with
// flush-per-chunk, so NDJSON archive streams stay incremental across
// the hop.
package router

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"mao/internal/cachekey"
	"mao/internal/scope"
)

// Config parameterizes a Router.
type Config struct {
	// Shards are the backend base URLs (e.g. http://10.0.0.1:7950).
	// Required, at least one.
	Shards []string
	// VNodes is the virtual-node count per shard on the hash ring
	// (0 = 128).
	VNodes int
	// ProbeInterval is how often each shard's /readyz is polled
	// (0 = 1s; negative disables active probing — passive marking on
	// transport errors still applies).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (0 = 1s).
	ProbeTimeout time.Duration
	// MaxBodyBytes caps a proxied request body; bodies are buffered
	// for key computation and retry (0 = 64 MiB).
	MaxBodyBytes int64
	// DisableCoalesce turns off in-flight miss coalescing (on by
	// default): concurrent identical optimize requests share one shard
	// forward, followers replaying the buffered response as
	// X-Mao-Cache: coalesced. Sound because maod is deterministic.
	DisableCoalesce bool
	// CoalesceTimeout bounds a coalesced shard forward, which runs
	// detached from the leader's client context (0 = 2m).
	CoalesceTimeout time.Duration
	// Logf, when non-nil, receives shard health transitions.
	Logf func(format string, args ...any)
	// AccessLog, when non-nil, receives one JSON line per proxied
	// request (shard, cache verdict, trace ID, retries).
	AccessLog io.Writer
	// FlightRecords sizes the router's flight-recorder ring (0 = 512,
	// negative disables). Served from DebugHandler under /debug/scope/.
	FlightRecords int
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.FlightRecords == 0 {
		c.FlightRecords = 512
	}
	if c.CoalesceTimeout <= 0 {
		c.CoalesceTimeout = 2 * time.Minute
	}
	return c
}

// backend is one shard and its health/traffic state.
type backend struct {
	name string // the configured URL string, also the metrics label
	url  *url.URL

	mu      sync.Mutex
	healthy bool
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// Router is the shard router: construct with New, expose via
// Handler-style ServeHTTP, stop with Close.
type Router struct {
	cfg      Config
	ring     *ring
	backends []*backend
	client   *http.Client
	met      *routerMetrics
	flight   *scope.Recorder
	flights  *routerFlightGroup // nil when coalescing is disabled

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
	started   time.Time
}

// New builds a Router over cfg.Shards and starts the health prober.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: at least one shard is required")
	}
	names := make([]string, 0, len(cfg.Shards))
	backends := make([]*backend, 0, len(cfg.Shards))
	for _, s := range cfg.Shards {
		u, err := url.Parse(s)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: invalid shard URL %q", s)
		}
		names = append(names, s)
		backends = append(backends, &backend{name: s, url: u, healthy: true})
	}
	r := &Router{
		cfg:      cfg,
		ring:     newRing(names, cfg.VNodes),
		backends: backends,
		// The transport's defaults are fine; requests carry their own
		// deadlines end to end, so no client-level timeout (it would
		// cut long archive streams short).
		client:    &http.Client{},
		met:       newRouterMetrics(names),
		flight:    newFlightRecorder(cfg.FlightRecords),
		stopProbe: make(chan struct{}),
		started:   time.Now(),
	}
	if !cfg.DisableCoalesce {
		r.flights = newRouterFlightGroup()
	}
	if cfg.ProbeInterval > 0 {
		r.probeWG.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the health prober. In-flight proxied requests finish on
// their own (the caller owns the http.Server lifecycle).
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.stopProbe)
		r.probeWG.Wait()
	})
}

// setHealthy records a health observation, counting ring rebalances
// on transitions (a transition changes effective key ownership).
func (r *Router) setHealthy(b *backend, healthy bool, why string) {
	b.mu.Lock()
	changed := b.healthy != healthy
	b.healthy = healthy
	b.mu.Unlock()
	if changed {
		r.met.rebalances.Add(1)
		if r.cfg.Logf != nil {
			state := "healthy"
			if !healthy {
				state = "unhealthy"
			}
			r.cfg.Logf("shard %s marked %s (%s)", b.name, state, why)
		}
	}
}

// probeLoop polls every shard's /readyz. A draining or dead shard
// flips unhealthy within one interval and its keys spill clockwise;
// it rejoins the ring the moment /readyz answers 200 again.
func (r *Router) probeLoop() {
	defer r.probeWG.Done()
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopProbe:
			return
		case <-ticker.C:
			for _, b := range r.backends {
				r.probe(b)
			}
		}
	}
}

func (r *Router) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", b.url.JoinPath("/readyz").String(), nil)
	resp, err := r.client.Do(req)
	if err != nil {
		r.setHealthy(b, false, "readyz probe failed: "+err.Error())
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		r.setHealthy(b, true, "readyz ok")
	} else {
		r.setHealthy(b, false, fmt.Sprintf("readyz status %d", resp.StatusCode))
	}
}

// requestIDHeader mirrors maod's: the router propagates an inbound
// X-Request-ID (or mints one) onto the shard hop, so one ID correlates
// the client, the router access path, and the shard's spans.
const requestIDHeader = "X-Request-ID"

// shardHeader names the shard that served a response; maoload's
// per-shard report reads it.
const shardHeader = "X-Mao-Shard"

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// ServeHTTP serves the router's own endpoints (/healthz, /metrics)
// and proxies everything else to a shard.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch {
	case req.Method == "GET" && req.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case req.Method == "GET" && req.URL.Path == "/metrics":
		r.handleMetrics(w)
	default:
		r.proxy(w, req)
	}
}

// routeKey computes the routing key of a request. For JSON optimize
// requests it is the daemon's own result-cache key — cachekey.Key
// over (name, source, spec, option flags), with the ?explain/?verify
// query spellings folded in exactly as the daemon folds them — so a
// repeat request hashes onto the shard whose cache holds its answer.
// Everything else (binary bodies the daemon decodes server-side,
// archives, malformed bodies the shard will 4xx) routes by a digest
// of the raw request: still deterministic — identical requests still
// concentrate — just not aligned with a decoded-form cache entry.
func routeKey(req *http.Request, body []byte) string {
	if req.URL.Path == "/v1/optimize" &&
		strings.HasPrefix(req.Header.Get("Content-Type"), "application/json") {
		var jr struct {
			Name    string `json:"name"`
			Source  string `json:"source"`
			Spec    string `json:"spec"`
			Options struct {
				Check   bool `json:"check"`
				Explain bool `json:"explain"`
				Verify  bool `json:"verify"`
			} `json:"options"`
		}
		if err := json.Unmarshal(body, &jr); err == nil && jr.Source != "" {
			q := req.URL.Query()
			if v := q.Get("explain"); v == "1" || v == "true" {
				jr.Options.Explain = true
			}
			if v := q.Get("verify"); v == "1" || v == "true" {
				jr.Options.Verify = true
			}
			return cachekey.Key(cachekey.Request{
				Name:    jr.Name,
				Source:  jr.Source,
				Spec:    jr.Spec,
				Check:   jr.Options.Check,
				Explain: jr.Options.Explain,
				Verify:  jr.Options.Verify,
			})
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s:%s:%s:%d:", req.Method, req.URL.Path, req.URL.RawQuery, len(body))
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// proxy forwards req to the shard owning its routing key, retrying
// once on the next ring candidate if the owner is down, dies before
// answering, or is draining (503). Each forward is one MAOSCOPE hop
// span: the shard receives the router's trace context (parented under
// the hop), and a traced /v1/optimize response gets the hop span
// spliced in so the client sees the full cross-process tree.
func (r *Router) proxy(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	rid := req.Header.Get(requestIDHeader)
	if rid == "" || len(rid) > 128 {
		rid = newRequestID()
	}
	w.Header().Set(requestIDHeader, rid)
	tc := scopeContext(req)
	w.Header().Set(scope.TraceHeader, tc.Header())
	hop := hopSpan(tc, rid)

	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("reading request body: %w", err))
		r.finishProxy(req, start, rid, tc, "", "", status, 0, "reading request body: "+err.Error())
		return
	}

	key := routeKey(req, body)
	// Identical in-flight misses share one forward (coalesce.go);
	// everything else — archives, traces, no_cache — takes the
	// streaming path below.
	if r.flights != nil && coalescible(req, body) {
		r.coalesce(w, req, key, body, rid, tc, hop, start)
		return
	}

	seq := r.ring.seq(key)
	// Candidates: healthy shards in ring preference order. If every
	// shard looks down, try the primary anyway — passive marks can be
	// stale, and an honest 502 beats a guessed 503.
	var candidates []*backend
	for _, idx := range seq {
		if b := r.backends[idx]; b.isHealthy() {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		candidates = []*backend{r.backends[seq[0]]}
	}
	// One forward plus at most one retry: enough to survive a single
	// dead shard without doubling load under a systemic outage.
	if len(candidates) > 2 {
		candidates = candidates[:2]
	}

	// A ?trace= optimize response is buffered (never streamed) so the
	// router can splice its hop span into the span tree. Archive
	// streams stay passthrough: their per-unit traces ride the NDJSON
	// records untouched.
	wantSplice := req.URL.Path == "/v1/optimize" && req.URL.Query().Get("trace") != ""

	var lastErr error
	var failedOver string
	for attempt, b := range candidates {
		if attempt > 0 {
			r.met.retries.Add(1)
		}
		fwdStart := time.Now()
		resp, err := r.forward(req.Context(), req, b, body, rid, tc.Child(hop.SpanID))
		if err != nil {
			// Transport-level death before a response: the shard is
			// gone or unreachable. Mark it and try the next candidate;
			// nothing was written to the client yet, so the retry is
			// invisible.
			r.setHealthy(b, false, "forward failed: "+err.Error())
			r.met.shard(b.name).errors.Add(1)
			lastErr = err
			failedOver = b.name
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < len(candidates)-1 {
			// maod answers 503 exactly while draining: the shard is
			// shutting down but its listener is still up, so a probe
			// has not caught it yet. Nothing is committed to the
			// client — fail over exactly like a transport death, and
			// drains become hitless.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			r.setHealthy(b, false, "shard draining (503)")
			lastErr = fmt.Errorf("shard %s answered 503 (draining)", b.name)
			failedOver = b.name
			continue
		}
		r.met.shard(b.name).requests.Add(1)
		w.Header().Set(shardHeader, b.name)
		cache := resp.Header.Get(cacheHeader)
		copyHeaders(w.Header(), resp.Header)
		if wantSplice && resp.StatusCode == http.StatusOK {
			respBody, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil && attempt < len(candidates)-1 {
				// The shard died mid-body; nothing is committed yet
				// (the body was fully buffered), so fail over.
				r.setHealthy(b, false, "response read failed: "+rerr.Error())
				r.met.shard(b.name).errors.Add(1)
				lastErr = rerr
				failedOver = b.name
				continue
			}
			hop.DurNS = time.Since(start).Nanoseconds()
			hop.Attrs = map[string]string{
				"shard":   b.name,
				"attempt": strconv.Itoa(attempt + 1),
				"healthy": strconv.Itoa(r.Healthy()),
			}
			if failedOver != "" {
				hop.Attrs["failover_from"] = failedOver
				hop.Attrs["failover_reason"] = lastErr.Error()
			}
			respBody = spliceTrace(respBody, hop)
			w.Header().Del("Content-Length")
			w.WriteHeader(resp.StatusCode)
			w.Write(respBody)
		} else {
			w.WriteHeader(resp.StatusCode)
			streamBody(w, resp.Body)
			resp.Body.Close()
		}
		r.met.shard(b.name).latency.observe(time.Since(fwdStart).Seconds())
		r.finishProxy(req, start, rid, tc, b.name, cache, resp.StatusCode, attempt, "")
		return
	}
	r.met.unrouted.Add(1)
	w.Header().Set("Retry-After", "1")
	err = fmt.Errorf("no shard reachable: %w", lastErr)
	writeError(w, http.StatusBadGateway, err)
	r.finishProxy(req, start, rid, tc, "", "", http.StatusBadGateway, len(candidates)-1, err.Error())
}

// forward sends one copy of the request to b under ctx. On the
// streaming path ctx is the client's — a client that disconnects or
// times out cancels the shard hop too; a coalesced forward passes a
// detached context instead, because followers may outlive the leader's
// client. The shard sees the router's trace context — the hop span as
// parent — so its span tree stitches under the hop.
func (r *Router) forward(ctx context.Context, req *http.Request, b *backend, body []byte, rid string, tc scope.Context) (*http.Response, error) {
	target := *b.url
	target.Path = strings.TrimSuffix(target.Path, "/") + req.URL.Path
	target.RawQuery = req.URL.RawQuery
	out, err := http.NewRequestWithContext(ctx, req.Method, target.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out.Header = req.Header.Clone()
	out.Header.Set(requestIDHeader, rid)
	out.Header.Set(scope.TraceHeader, tc.Header())
	return r.client.Do(out)
}

// copyHeaders copies the shard's response headers, leaving the
// router's own (X-Request-ID, X-Mao-Shard, X-Mao-Trace) in place.
// X-Mao-Trace is router-owned because the shard echoes the re-parented
// context it received (hop span as parent); the client must see the
// context it sent (or the one the router originated). Comparison is
// against canonical keys — http.Header stores "X-Request-Id", not
// the constant's spelling.
var routerOwnedHeaders = map[string]bool{
	http.CanonicalHeaderKey(requestIDHeader):   true,
	http.CanonicalHeaderKey(shardHeader):       true,
	http.CanonicalHeaderKey(scope.TraceHeader): true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if routerOwnedHeaders[k] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// streamBody copies resp body to the client flushing after every
// chunk, so NDJSON archive records cross the router as they arrive
// instead of pooling in a proxy buffer.
func streamBody(w http.ResponseWriter, body io.Reader) {
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// Healthy reports how many shards are currently marked healthy.
func (r *Router) Healthy() int {
	n := 0
	for _, b := range r.backends {
		if b.isHealthy() {
			n++
		}
	}
	return n
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(errorResponse{Error: err.Error()})
}
