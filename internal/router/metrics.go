package router

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mao/internal/scope"
)

// routerMetrics is the router's observability plane, rendered in
// Prometheus text exposition format on its own /metrics — same
// hand-rolled, stdlib-only approach as maod's. Per-shard series are
// keyed by the configured shard URL.
type routerMetrics struct {
	order  []string // shard names in configured order (stable exposition)
	shards map[string]*shardMetrics

	retries    atomic.Int64 // forwards retried on a failover candidate
	rebalances atomic.Int64 // shard health transitions (ownership moved)
	unrouted   atomic.Int64 // requests refused: no shard reachable
	coalesced  atomic.Int64 // requests that rode another request's forward
}

type shardMetrics struct {
	requests atomic.Int64 // responses relayed from this shard
	errors   atomic.Int64 // forwards that died at the transport layer
	latency  histogram    // forward round-trip, first byte to last
}

// latencyBuckets mirror maod's request buckets: the router adds
// sub-millisecond overhead on top of shard-side queueing + pipeline.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

func newRouterMetrics(names []string) *routerMetrics {
	m := &routerMetrics{order: names, shards: make(map[string]*shardMetrics, len(names))}
	for _, n := range names {
		m.shards[n] = &shardMetrics{latency: newHistogram(latencyBuckets)}
	}
	return m
}

// shard returns the metrics bundle for a shard name. Names come from
// the router's own backend list, so the lookup cannot miss.
func (m *routerMetrics) shard(name string) *shardMetrics {
	return m.shards[name]
}

// histogram is a cumulative fixed-bucket histogram (counts[i] counts
// observations ≤ buckets[i]); a local copy of maod's unexported one.
type histogram struct {
	buckets []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) histogram {
	return histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets))}
}

func (h *histogram) observe(v float64) {
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// handleMetrics renders GET /metrics.
func (r *Router) handleMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := r.met

	writeMetric := func(help, typ, name string, pairs ...string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i := 0; i+1 < len(pairs); i += 2 {
			fmt.Fprintf(w, "%s%s %s\n", name, pairs[i], pairs[i+1])
		}
	}

	var reqPairs, errPairs, healthPairs []string
	for _, name := range m.order {
		label := fmt.Sprintf(`{shard=%q}`, name)
		reqPairs = append(reqPairs, label, strconv.FormatInt(m.shards[name].requests.Load(), 10))
		errPairs = append(errPairs, label, strconv.FormatInt(m.shards[name].errors.Load(), 10))
	}
	for _, b := range r.backends {
		h := "0"
		if b.isHealthy() {
			h = "1"
		}
		healthPairs = append(healthPairs, fmt.Sprintf(`{shard=%q}`, b.name), h)
	}
	writeMetric("Responses relayed, by shard.", "counter",
		"maorouter_requests_total", reqPairs...)
	writeMetric("Forwards that failed at the transport layer, by shard.", "counter",
		"maorouter_errors_total", errPairs...)
	writeMetric("Shard passes its /readyz probe (1) or is marked down (0).", "gauge",
		"maorouter_shard_healthy", healthPairs...)

	// Per-shard forward latency histograms.
	fmt.Fprintf(w, "# HELP maorouter_request_duration_seconds Forward round-trip latency, by shard.\n")
	fmt.Fprintf(w, "# TYPE maorouter_request_duration_seconds histogram\n")
	for _, name := range m.order {
		h := &m.shards[name].latency
		cum := int64(0)
		for i, ub := range h.buckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "maorouter_request_duration_seconds_bucket{shard=%q,le=\"%s\"} %d\n",
				name, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		n := h.count.Load()
		fmt.Fprintf(w, "maorouter_request_duration_seconds_bucket{shard=%q,le=\"+Inf\"} %d\n", name, n)
		fmt.Fprintf(w, "maorouter_request_duration_seconds_sum{shard=%q} %g\n",
			name, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "maorouter_request_duration_seconds_count{shard=%q} %d\n", name, n)
	}

	writeMetric("Forwards retried on a failover shard.", "counter",
		"maorouter_retries_total", "", strconv.FormatInt(m.retries.Load(), 10))
	writeMetric("Shard health transitions (each moves ring key ownership).", "counter",
		"maorouter_rebalances_total", "", strconv.FormatInt(m.rebalances.Load(), 10))
	writeMetric("Requests refused because no shard was reachable (502).", "counter",
		"maorouter_no_shard_total", "", strconv.FormatInt(m.unrouted.Load(), 10))
	writeMetric("Requests that coalesced onto another in-flight identical forward.", "counter",
		"maorouter_coalesced_total", "", strconv.FormatInt(m.coalesced.Load(), 10))
	writeMetric("Seconds since the router started.", "gauge",
		"maorouter_uptime_seconds", "", strconv.FormatFloat(time.Since(r.started).Seconds(), 'f', 3, 64))

	// Go runtime health: goroutine count, heap in use, GC pause
	// distribution — the signals that say "the router itself is sick"
	// when per-shard numbers look fine.
	scope.WriteRuntimeMetrics(w, "maorouter")
}
