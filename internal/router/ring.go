package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes. Each shard owns
// vnodes points on a 64-bit circle; a key routes to the shard owning
// the first point clockwise of the key's hash. Virtual nodes flatten
// the ownership distribution (with v points per shard, the expected
// imbalance shrinks as 1/sqrt(v)), and consistency means adding or
// losing one shard moves only ~1/N of the keyspace — the property
// that keeps result caches warm across fleet resizes.
//
// The ring is immutable after construction. Shard health is NOT ring
// state: seq returns the full clockwise preference order and the
// caller skips unhealthy shards, which is exactly the "replicated"
// behavior — the keys of a dead shard spill onto its clockwise
// successors and return home the moment it recovers.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int // index into the router's backend slice
}

// defaultVNodes per shard; 128 keeps the per-shard ownership within a
// few percent of uniform for small fleets.
const defaultVNodes = 128

// newRing builds the ring over the shard names (their URLs): vnode
// positions derive from the name, not the list index, so reordering
// the -shards flag does not reshuffle key ownership.
func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodes), shards: len(names)}
	for s, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", name, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// seq returns every shard index exactly once, in clockwise preference
// order from key's ring position: seq[0] is the owner, seq[1] the
// first failover target, and so on. Deterministic for a given key and
// ring, independent of health — the caller filters.
func (r *ring) seq(key string) []int {
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	if len(r.points) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; len(out) < r.shards && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
