package router

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"mao/internal/scope"
)

// MAOSCOPE wiring for the router: the hop span (one per forward,
// carrying shard choice and failover attribution), the trace-context
// relay (inbound X-Mao-Trace re-parented under the hop span before the
// shard sees it), the flight recorder, and the JSON access log.

// cacheHeader is maod's result-cache verdict header, relayed into the
// router's access log and flight records.
const cacheHeader = "X-Mao-Cache"

// newFlightRecorder maps Config.FlightRecords onto a recorder:
// negative disables (nil recorder — every call is a no-op).
func newFlightRecorder(n int) *scope.Recorder {
	if n < 0 {
		return nil
	}
	return scope.NewRecorder(n)
}

// scopeContext resolves a proxied request's trace context: adopt a
// well-formed inbound X-Mao-Trace, originate otherwise. The hop span
// interposes between the inbound parent and the shard's tree, so the
// forwarded header carries the hop span as the new parent.
func scopeContext(req *http.Request) scope.Context {
	tc, ok := scope.ParseHeader(req.Header.Get(scope.TraceHeader))
	if !ok {
		tc = scope.NewContext()
	}
	return tc
}

// hopSpan seeds the router's hop span for one proxied request. The ID
// is salted with the request ID so two requests reusing one inbound
// context still get distinct hop spans; timing and attribution are
// filled in when the forward completes.
func hopSpan(tc scope.Context, rid string) scope.Span {
	return scope.Span{
		TraceID:  tc.TraceID,
		SpanID:   scope.SpanID(tc.TraceID, tc.ParentSpanID, "hop:"+rid, 0),
		ParentID: tc.ParentSpanID,
		Process:  "maorouter",
		Kind:     "hop",
	}
}

// spliceTrace inserts the hop span into a shard's ?trace= response
// body: the hop lands at the head of the "trace" array and, when the
// response carries one, of "trace_chrome". On any parse trouble the
// body passes through untouched — tracing must never break the data
// path.
func spliceTrace(body []byte, hop scope.Span) []byte {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		return body
	}
	raw, ok := doc["trace"]
	if !ok {
		return body
	}
	var spans []scope.Span
	if err := json.Unmarshal(raw, &spans); err != nil {
		return body
	}
	spans = append([]scope.Span{hop}, spans...)
	enc, err := json.Marshal(spans)
	if err != nil {
		return body
	}
	doc["trace"] = enc
	if rawC, ok := doc["trace_chrome"]; ok {
		var events []scope.ChromeEvent
		if err := json.Unmarshal(rawC, &events); err == nil {
			events = append(scope.ChromeEvents([]scope.Span{hop}), events...)
			if encC, err := json.Marshal(events); err == nil {
				doc["trace_chrome"] = encC
			}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return body
	}
	out = append(out, '\n')
	return out
}

// accessRecord is one structured router access-log line: the shard
// that served the request and the cache verdict it reported are
// first-class fields, so a grep over the log answers "which shard, was
// it a hit" without touching metrics.
type accessRecord struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"dur_ms"`
	Remote     string  `json:"remote"`
	RequestID  string  `json:"request_id"`
	TraceID    string  `json:"trace_id,omitempty"`
	Shard      string  `json:"shard,omitempty"`
	Cache      string  `json:"cache,omitempty"`
	Retries    int     `json:"retries,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// finishProxy records one completed proxied request into the access
// log and the flight recorder.
func (r *Router) finishProxy(req *http.Request, start time.Time, rid string, tc scope.Context, shard, cache string, status, retries int, errMsg string) {
	d := time.Since(start)
	if r.cfg.AccessLog != nil {
		line, err := json.Marshal(accessRecord{
			Time:       start.UTC().Format(time.RFC3339Nano),
			Method:     req.Method,
			Path:       req.URL.Path,
			Status:     status,
			DurationMS: float64(d.Microseconds()) / 1000,
			Remote:     req.RemoteAddr,
			RequestID:  rid,
			TraceID:    tc.TraceID,
			Shard:      shard,
			Cache:      cache,
			Retries:    retries,
			Error:      errMsg,
		})
		if err == nil {
			line = append(line, '\n')
			r.cfg.AccessLog.Write(line)
		}
	}
	rec, h := r.flight.Acquire()
	if rec == nil {
		return
	}
	rec.TimeUnixNS = start.Add(d).UnixNano()
	rec.TraceID = tc.TraceID
	rec.RequestID = rid
	rec.Client = clientOf(req)
	rec.Shard = shard
	rec.Path = req.URL.Path
	rec.Cache = cache
	rec.Status = status
	rec.DurNS = d.Nanoseconds()
	rec.Retries = retries
	rec.Err = errMsg
	r.flight.Commit(rec, h)
}

// clientOf mirrors maod's quota identity: the X-Mao-Client header,
// falling back to the remote address.
func clientOf(req *http.Request) string {
	if c := req.Header.Get("X-Mao-Client"); c != "" && len(c) <= 128 {
		return c
	}
	return req.RemoteAddr
}

// DebugHandler returns the router's debug plane for the opt-in
// -debug-addr listener: pprof under /debug/pprof/ and the flight
// recorder under /debug/scope/. Never mounted on the proxy port.
func (r *Router) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/scope/recent", func(w http.ResponseWriter, _ *http.Request) {
		writeFlightView(w, "recent", r.flight.Recent(), 0)
	})
	mux.HandleFunc("GET /debug/scope/slowest", func(w http.ResponseWriter, _ *http.Request) {
		writeFlightView(w, "slowest", r.flight.Slowest(), 0)
	})
	mux.HandleFunc("GET /debug/scope/errors", func(w http.ResponseWriter, _ *http.Request) {
		recs, seen := r.flight.Errors()
		writeFlightView(w, "errors", recs, seen)
	})
	return mux
}

// flightPayload mirrors maod's /debug/scope schema
// (internal/scope/testdata/scope_flight.schema.json).
type flightPayload struct {
	Process    string               `json:"process"`
	View       string               `json:"view"`
	ErrorsSeen uint64               `json:"errors_seen,omitempty"`
	Records    []scope.FlightRecord `json:"records"`
}

func writeFlightView(w http.ResponseWriter, view string, recs []scope.FlightRecord, errsSeen uint64) {
	if recs == nil {
		recs = []scope.FlightRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(flightPayload{Process: "maorouter", View: view, ErrorsSeen: errsSeen, Records: recs})
}
