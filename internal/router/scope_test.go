package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"mao/internal/scope"
	"mao/internal/serve"
	"mao/internal/trace"
)

const (
	testTraceID    = "00010203040506070809f0e0d0c0b0a0"
	testParentSpan = "cafebabe8badf00d"
)

func testTraceHeader() string { return testTraceID + "-" + testParentSpan }

// tracedOptimize posts one optimize request through url with a fixed
// inbound X-Mao-Trace and ?trace=<mode>.
func tracedOptimize(t *testing.T, url, name, mode string) (*http.Response, *serve.OptimizeResponse) {
	t.Helper()
	body, _ := json.Marshal(&serve.OptimizeRequest{Name: name, Source: testSource, Spec: "REDTEST"})
	req, _ := http.NewRequest("POST", url+"/v1/optimize?trace="+mode, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(scope.TraceHeader, testTraceHeader())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var out serve.OptimizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding traced response: %v\n%s", err, raw)
	}
	return resp, &out
}

// checkSpanTree verifies tree integrity of a cross-process trace: one
// hop span parented under the inbound context, every other span's
// parent resolving to a span in the tree, everything under one trace
// ID. Returns the hop span.
func checkSpanTree(t *testing.T, spans []scope.Span) scope.Span {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("empty span tree")
	}
	hop := spans[0]
	if hop.Process != "maorouter" || hop.Kind != "hop" {
		t.Fatalf("first span is %s/%s, want maorouter/hop", hop.Process, hop.Kind)
	}
	if hop.ParentID != testParentSpan {
		t.Errorf("hop parent = %q, want inbound parent %q", hop.ParentID, testParentSpan)
	}
	ids := map[string]bool{}
	for _, s := range spans {
		if s.TraceID != testTraceID {
			t.Errorf("span %s/%s has trace ID %q, want %q", s.Process, s.Kind, s.TraceID, testTraceID)
		}
		if ids[s.SpanID] {
			t.Errorf("duplicate span ID %s", s.SpanID)
		}
		ids[s.SpanID] = true
	}
	kinds := map[string]int{}
	for _, s := range spans[1:] {
		kinds[s.Kind]++
		if s.Process != "maod" {
			t.Errorf("non-hop span from process %q, want maod", s.Process)
		}
		if s.ParentID == "" {
			t.Errorf("shard span %s/%s is an orphan root", s.Kind, s.Name)
		} else if !ids[s.ParentID] {
			t.Errorf("span %s/%s parent %s not in the tree", s.Kind, s.Name, s.ParentID)
		}
	}
	for _, want := range []string{"queue", "batch", "pipeline", "invocation", "function"} {
		if kinds[want] == 0 {
			t.Errorf("no %s span in shard tree (kinds: %v)", want, kinds)
		}
	}
	// The shard's queue span must hang directly under the router's hop.
	for _, s := range spans[1:] {
		if s.Kind == "queue" && s.ParentID != hop.SpanID {
			t.Errorf("queue span parent = %s, want hop span %s", s.ParentID, hop.SpanID)
		}
	}
	return hop
}

// TestRouterTraceSplice: a traced optimize through the router comes
// back with the router's hop span spliced in front of the shard's
// tree, the shard tree re-parented under the hop, and the client's
// own trace context echoed (not the shard's re-parented one).
func TestRouterTraceSplice(t *testing.T) {
	_, front, _ := testFleet(t, 2, 0)
	resp, out := tracedOptimize(t, front.URL, "tr.s", "1")
	if got := resp.Header.Get(scope.TraceHeader); got != testTraceHeader() {
		t.Errorf("response %s = %q, want inbound context %q", scope.TraceHeader, got, testTraceHeader())
	}
	hop := checkSpanTree(t, out.Trace)
	if hop.Attrs["attempt"] != "1" {
		t.Errorf("hop attempt = %q, want 1 (no failover)", hop.Attrs["attempt"])
	}
	if hop.Attrs["shard"] != resp.Header.Get("X-Mao-Shard") {
		t.Errorf("hop shard attr %q != X-Mao-Shard %q", hop.Attrs["shard"], resp.Header.Get("X-Mao-Shard"))
	}
	if _, ok := hop.Attrs["failover_from"]; ok {
		t.Error("hop carries failover attribution on a clean forward")
	}
}

// TestRouterTraceChromeSplice: ?trace=chrome responses get the hop
// event spliced into trace_chrome too.
func TestRouterTraceChromeSplice(t *testing.T) {
	_, front, _ := testFleet(t, 1, 0)
	_, out := tracedOptimize(t, front.URL, "chrome.s", "chrome")
	checkSpanTree(t, out.Trace)
	if len(out.TraceChrome) != len(out.Trace) {
		t.Fatalf("trace_chrome has %d events for %d spans", len(out.TraceChrome), len(out.Trace))
	}
	ev := out.TraceChrome[0]
	if ev.Cat != "hop" || ev.PID != 2 {
		t.Errorf("first chrome event cat=%q pid=%d, want the router hop (cat=hop pid=2)", ev.Cat, ev.PID)
	}
}

// TestRouterFailoverTracePropagation: kill the first-choice shard for
// a key, then send a traced request. The retried request's span tree
// still parents under the original trace ID, and the hop span carries
// the failover attribution (which shard died, why, attempt 2).
func TestRouterFailoverTracePropagation(t *testing.T) {
	r, front, shards := testFleet(t, 2, 0)

	var victimName string
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("failover-%d.s", i)
		body, _ := json.Marshal(&serve.OptimizeRequest{Name: name, Source: testSource, Spec: "REDTEST"})
		req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if r.ring.seq(routeKey(req, body))[0] == 0 {
			victimName = name
			break
		}
	}
	if victimName == "" {
		t.Fatal("no key found owned by shard 0")
	}
	shards[0].Close()

	resp, out := tracedOptimize(t, front.URL, victimName, "1")
	if got := resp.Header.Get("X-Mao-Shard"); got != shards[1].URL {
		t.Fatalf("served by %q, want failover shard %q", got, shards[1].URL)
	}
	hop := checkSpanTree(t, out.Trace)
	if hop.Attrs["attempt"] != "2" {
		t.Errorf("hop attempt = %q, want 2 (one failover)", hop.Attrs["attempt"])
	}
	if hop.Attrs["shard"] != shards[1].URL {
		t.Errorf("hop shard = %q, want the shard that answered", hop.Attrs["shard"])
	}
	if hop.Attrs["failover_from"] != shards[0].URL {
		t.Errorf("failover_from = %q, want dead shard %q", hop.Attrs["failover_from"], shards[0].URL)
	}
	if hop.Attrs["failover_reason"] == "" {
		t.Error("failover_reason empty")
	}
}

// TestTraceByteDeterminismAcrossWorkers: the same traced request
// fetched through the router is byte-identical whether the shard runs
// 1 worker or 8, once the only nondeterministic span fields (wall
// times) are zeroed — span IDs, parentage, order, names, and stats
// are all content-derived. The request ID is pinned because the hop
// span is salted with it, and the hop's shard-URL attribute is
// normalized because the two test fleets listen on different ports
// (deployment config, not worker-dependent).
func TestTraceByteDeterminismAcrossWorkers(t *testing.T) {
	fetch := func(workers int) []byte {
		s := serve.New(serve.Config{Workers: workers})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		r, err := New(Config{Shards: []string{ts.URL}, ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(r)
		t.Cleanup(func() { front.Close(); r.Close() })

		body, _ := json.Marshal(&serve.OptimizeRequest{Name: "det.s", Source: testSource, Spec: "REDTEST:REDMOV"})
		req, _ := http.NewRequest("POST", front.URL+"/v1/optimize?trace=1", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(scope.TraceHeader, testTraceHeader())
		req.Header.Set("X-Request-ID", "feedfacecafef00d")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out serve.OptimizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || len(out.Trace) == 0 {
			t.Fatalf("workers=%d: status %d, %d spans", workers, resp.StatusCode, len(out.Trace))
		}
		for i := range out.Trace {
			out.Trace[i].StartNS, out.Trace[i].DurNS = 0, 0
			if out.Trace[i].Kind == "hop" {
				out.Trace[i].Attrs["shard"] = "shard"
			}
		}
		enc, _ := json.Marshal(out.Trace)
		return enc
	}
	one := fetch(1)
	eight := fetch(8)
	if !bytes.Equal(one, eight) {
		t.Errorf("trace differs between workers 1 and 8:\n%s\n%s", one, eight)
	}
}

// TestRouterAccessLogAndFlight: each proxied request emits one JSON
// access-log line stamped with the shard and cache verdict, and lands
// in the router's flight recorder; the /debug/scope payload validates
// against the pinned schema.
func TestRouterAccessLogAndFlight(t *testing.T) {
	var logBuf syncBuffer
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	r, err := New(Config{Shards: []string{ts.URL}, ProbeInterval: -1, AccessLog: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r)
	t.Cleanup(func() { front.Close(); r.Close() })

	tracedOptimize(t, front.URL, "log.s", "1") // miss (trace bypasses lookup)
	optimizeVia(t, front.URL, "log.s")         // fills the cache
	optimizeVia(t, front.URL, "log.s")         // hit

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), logBuf.String())
	}
	var first, last accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, lines[0])
	}
	json.Unmarshal([]byte(lines[2]), &last)
	if first.Shard != ts.URL {
		t.Errorf("log shard = %q, want %q", first.Shard, ts.URL)
	}
	if first.TraceID != testTraceID {
		t.Errorf("log trace_id = %q, want inbound %q", first.TraceID, testTraceID)
	}
	if first.Cache != "miss" || last.Cache != "hit" {
		t.Errorf("cache verdicts = %q, %q, want miss then hit", first.Cache, last.Cache)
	}
	if first.Status != 200 || first.RequestID == "" {
		t.Errorf("log line incomplete: %+v", first)
	}

	// Flight recorder: same three requests, newest first, and the
	// payload matches the checked-in schema.
	req := httptest.NewRequest("GET", "/debug/scope/recent", nil)
	rec := httptest.NewRecorder()
	r.DebugHandler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/debug/scope/recent = %d", rec.Code)
	}
	schema, err := os.ReadFile("../scope/testdata/scope_flight.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(rec.Body.Bytes(), schema); err != nil {
		t.Errorf("flight payload fails schema: %v\n%s", err, rec.Body.String())
	}
	var payload struct {
		Process string               `json:"process"`
		Records []scope.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Process != "maorouter" {
		t.Errorf("process = %q", payload.Process)
	}
	if len(payload.Records) != 3 {
		t.Fatalf("flight recorder holds %d records, want 3", len(payload.Records))
	}
	newest := payload.Records[0]
	if newest.Cache != "hit" || newest.Shard != ts.URL || newest.Status != 200 {
		t.Errorf("newest flight record incomplete: %+v", newest)
	}
	if payload.Records[2].TraceID != testTraceID {
		t.Errorf("traced request's flight record lost the trace ID: %+v", payload.Records[2])
	}
}

// TestRouterRuntimeMetrics: the router's /metrics carries Go runtime
// health series.
func TestRouterRuntimeMetrics(t *testing.T) {
	_, front, _ := testFleet(t, 1, 0)
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m, err := scope.ParseProm(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("router /metrics does not parse: %v", err)
	}
	if v, ok := m.Value("maorouter_go_goroutines"); !ok || v < 1 {
		t.Errorf("maorouter_go_goroutines = %v, %v", v, ok)
	}
	if v, ok := m.Value("maorouter_go_heap_inuse_bytes"); !ok || v <= 0 {
		t.Errorf("maorouter_go_heap_inuse_bytes = %v, %v", v, ok)
	}
	if len(m["maorouter_go_gc_pause_seconds_bucket"]) == 0 {
		t.Error("maorouter_go_gc_pause_seconds histogram missing")
	}
}

// TestSpliceTracePassthrough: malformed or untraced bodies pass
// through spliceTrace untouched.
func TestSpliceTracePassthrough(t *testing.T) {
	hop := scope.Span{TraceID: testTraceID, SpanID: "0011223344556677"}
	for _, body := range []string{
		`not json`,
		`{"assembly":"ret\n"}`,
		`{"trace":"not an array"}`,
	} {
		if got := spliceTrace([]byte(body), hop); string(got) != body {
			t.Errorf("spliceTrace(%q) rewrote the body to %q", body, got)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: handler goroutines write
// the access log concurrently with the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
