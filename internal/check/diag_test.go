package check

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDiagString(t *testing.T) {
	d := Diag{
		Rule: "reg-uninit", Severity: SevWarn,
		File: "in.s", Line: 12, Func: "f",
		Msg: "read of %rbx before any write",
	}
	want := "in.s:12: warning: read of %rbx before any write [reg-uninit] (in f)"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// Synthesized nodes have no line; the position degrades gracefully.
	d.Line, d.Func = 0, ""
	if got := d.String(); !strings.HasPrefix(got, "in.s: warning:") {
		t.Errorf("lineless String() = %q", got)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarn, SevError} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("unknown severity decoded without error")
	}
}

func TestSortDeterministic(t *testing.T) {
	diags := []Diag{
		{File: "b.s", Line: 1, Rule: "x"},
		{File: "a.s", Line: 9, Rule: "x"},
		{File: "a.s", Line: 2, Rule: "z"},
		{File: "a.s", Line: 2, Rule: "a"},
	}
	Sort(diags)
	want := []Diag{
		{File: "a.s", Line: 2, Rule: "a"},
		{File: "a.s", Line: 2, Rule: "z"},
		{File: "a.s", Line: 9, Rule: "x"},
		{File: "b.s", Line: 1, Rule: "x"},
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, diags[i], want[i])
		}
	}
}

func TestMaxSeverity(t *testing.T) {
	if got := MaxSeverity(nil); got != SevInfo {
		t.Errorf("MaxSeverity(nil) = %v", got)
	}
	diags := []Diag{{Severity: SevWarn}, {Severity: SevError}, {Severity: SevInfo}}
	if got := MaxSeverity(diags); got != SevError {
		t.Errorf("MaxSeverity = %v, want error", got)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty set renders %q, want []", got)
	}

	buf.Reset()
	diags := []Diag{{
		Rule: "stack-depth", Severity: SevError,
		File: "in.s", Line: 3, Func: "f", Msg: "unbalanced",
	}}
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var back []Diag
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(back) != 1 || back[0] != diags[0] {
		t.Errorf("round trip = %+v, want %+v", back, diags)
	}
	if !strings.Contains(buf.String(), `"severity": "error"`) {
		t.Errorf("severity not rendered as name:\n%s", buf.String())
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	diags := []Diag{
		{Rule: "a", File: "x.s", Line: 1, Msg: "first"},
		{Rule: "b", File: "x.s", Line: 2, Msg: "second"},
	}
	if err := WriteText(&buf, diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "first") || !strings.Contains(lines[1], "second") {
		t.Errorf("WriteText output:\n%s", buf.String())
	}
}
