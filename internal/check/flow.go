package check

import (
	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/x86"
	"mao/internal/x86/sidefx"
)

// This file holds the forward must-analyses the rule catalog runs on
// top of the side-effect tables: "which flags hold defined values on
// every path from entry", "which registers have been written on every
// path from entry", and the per-path stack-depth tracking. They are
// the forward duals of the backward liveness in mao/internal/dataflow,
// and deliberately use meet-over-reached-predecessors (intersection)
// so a violation means "wrong on at least one path".

// allRegSet is the RegSet containing every modeled register family.
var allRegSet = func() dataflow.RegSet {
	var s dataflow.RegSet
	for _, r := range x86.GPR64 {
		s.Add(r)
	}
	for r := x86.XMM0; r <= x86.XMM15; r++ {
		s.Add(r)
	}
	return s
}()

// flagsDefinedIn computes, per basic block, the set of RFLAGS bits
// holding defined values on entry to the block along every path from
// function entry. reached marks blocks reachable from entry; the
// in-state of unreached blocks is meaningless. Flags are undefined at
// function entry (the System V ABI guarantees nothing), and a barrier
// (call) clobbers them.
func flagsDefinedIn(g *cfg.Graph) (in []x86.Flags, reached []bool) {
	n := len(g.Blocks)
	in = make([]x86.Flags, n)
	reached = make([]bool, n)
	for i := range in {
		in[i] = x86.AllFlags // top of the must-lattice
	}
	if n == 0 {
		return in, reached
	}
	in[0] = 0
	reached[0] = true
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !reached[b.Index] {
				continue
			}
			out := in[b.Index]
			for _, node := range b.Insts {
				out = flagsDefinedAfter(out, node.Inst)
			}
			for _, s := range b.Succs {
				ni := in[s.Index] & out
				if !reached[s.Index] || ni != in[s.Index] {
					reached[s.Index] = true
					in[s.Index] = ni
					changed = true
				}
			}
		}
	}
	return in, reached
}

// flagsDefinedAfter applies one instruction's transfer function to the
// defined-flags state.
func flagsDefinedAfter(defined x86.Flags, in *x86.Inst) x86.Flags {
	e := sidefx.InstEffects(in)
	if e.Barrier {
		return 0 // calls clobber flags under the ABI
	}
	return defined&^e.FlagsUndef | e.FlagsSet
}

// regsWrittenIn computes, per basic block, the set of register
// families written on every path from function entry, seeded with the
// registers the ABI defines at entry. Barriers (calls) conservatively
// define everything.
func regsWrittenIn(g *cfg.Graph, entry dataflow.RegSet) (in []dataflow.RegSet, reached []bool) {
	n := len(g.Blocks)
	in = make([]dataflow.RegSet, n)
	reached = make([]bool, n)
	for i := range in {
		in[i] = allRegSet
	}
	if n == 0 {
		return in, reached
	}
	in[0] = entry
	reached[0] = true
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !reached[b.Index] {
				continue
			}
			out := in[b.Index]
			for _, node := range b.Insts {
				out = regsWrittenAfter(out, node.Inst)
			}
			for _, s := range b.Succs {
				ni := in[s.Index] & out
				if !reached[s.Index] || ni != in[s.Index] {
					reached[s.Index] = true
					in[s.Index] = ni
					changed = true
				}
			}
		}
	}
	return in, reached
}

// regsWrittenAfter applies one instruction's transfer function to the
// written-registers state.
func regsWrittenAfter(written dataflow.RegSet, in *x86.Inst) dataflow.RegSet {
	e := sidefx.InstEffects(in)
	if e.Barrier {
		return allRegSet
	}
	for _, r := range e.RegsWritten {
		written.Add(r)
	}
	return written
}

// depthState is the stack-depth lattice: unreached < known(v) <
// unknown. Depth counts bytes pushed since function entry (entry = 0,
// immediately after the caller's call pushed the return address).
type depthState struct {
	reached bool
	known   bool
	v       int64
}

// meetDepth joins two states. conflict reports two reached, known
// states that disagree — a path-dependent stack imbalance.
func meetDepth(a, b depthState) (s depthState, conflict bool) {
	switch {
	case !a.reached:
		return b, false
	case !b.reached:
		return a, false
	case a.known && b.known && a.v == b.v:
		return a, false
	case a.known && b.known:
		return depthState{reached: true}, true
	default:
		return depthState{reached: true}, false
	}
}

// depthAfter applies one instruction to a known depth. ok=false means
// the instruction's effect on %rsp cannot be tracked statically
// (frame-pointer restores, alignment masking, non-immediate
// adjustments); the state degrades to unknown rather than erroring.
func depthAfter(depth int64, in *x86.Inst) (int64, bool) {
	width := func() int64 {
		if in.Width == x86.W0 {
			return 8
		}
		return int64(in.Width)
	}
	switch in.Op {
	case x86.OpPUSH:
		return depth + width(), true
	case x86.OpPOP:
		return depth - width(), true
	case x86.OpCALL, x86.OpRET:
		return depth, true // the callee balances; ret pops what call pushed
	case x86.OpSUB, x86.OpADD:
		if len(in.Args) == 2 && in.Args[1].Kind == x86.KindReg &&
			in.Args[1].Reg.Family() == x86.RSP {
			if in.Args[0].Kind != x86.KindImm || in.Args[0].Sym != "" {
				return 0, false
			}
			d := in.Args[0].Imm
			if in.Op == x86.OpADD {
				d = -d
			}
			return depth + d, true
		}
		return depth, true
	}
	if sidefx.InstEffects(in).WritesReg(x86.RSP) {
		return 0, false // leave, mov %rbp,%rsp, and $-16,%rsp, ...
	}
	return depth, true
}

// stackDepthIn computes the per-block entry depth states and the set
// of blocks whose predecessors disagree on a known depth.
func stackDepthIn(g *cfg.Graph) (in []depthState, conflicts []bool) {
	n := len(g.Blocks)
	in = make([]depthState, n)
	conflicts = make([]bool, n)
	if n == 0 {
		return in, conflicts
	}
	in[0] = depthState{reached: true, known: true}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !in[b.Index].reached {
				continue
			}
			out := in[b.Index]
			for _, node := range b.Insts {
				if !out.known {
					break
				}
				v, ok := depthAfter(out.v, node.Inst)
				if !ok {
					out.known = false
					break
				}
				out.v = v
			}
			for _, s := range b.Succs {
				ni, conflict := meetDepth(in[s.Index], out)
				if conflict && !conflicts[s.Index] {
					conflicts[s.Index] = true
					changed = true
				}
				if ni != in[s.Index] {
					in[s.Index] = ni
					changed = true
				}
			}
		}
	}
	return in, conflicts
}
