package check

import (
	"fmt"
	"io"
	"os"

	"mao/internal/pass"
)

func init() {
	pass.Register(func() pass.Pass { return &checkPass{} })
}

// checkPass exposes the static checker as a registry pass, so lint
// runs compose with optimization pipelines in the paper's command-line
// style:
//
//	mao --mao=CHECK:REDTEST:CHECK=o[post.txt] in.s
//
// Options: o[path] writes diagnostics to the named file (default
// stderr), json renders them as JSON, fatal fails the pipeline when
// any error-severity diagnostic is present. Every diagnostic also
// counts toward the pass statistics under its rule ID.
type checkPass struct{}

func (p *checkPass) Name() string { return "CHECK" }

// Effectful: diagnostic emission is an effect outside the IR, so
// pipelines containing CHECK are never answered from the memo (a hit
// would silently skip the lint).
func (p *checkPass) Effectful() bool { return true }
func (p *checkPass) Description() string {
	return "static verification & lint: run the rule catalog over the unit"
}

func (p *checkPass) RunUnit(ctx *pass.Ctx) (bool, error) {
	diags := CheckUnit(ctx.Unit)
	for _, d := range diags {
		ctx.Count(d.Rule, 1)
	}

	var w io.Writer = os.Stderr
	if path := ctx.Opts.String("o", ""); path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return false, err
		}
		defer f.Close()
		w = f
	}
	var err error
	if ctx.Opts.Bool("json", false) {
		err = WriteJSON(w, diags)
	} else if len(diags) > 0 {
		err = WriteText(w, diags)
	}
	if err != nil {
		return false, err
	}

	if ctx.Opts.Bool("fatal", false) && MaxSeverity(diags) >= SevError {
		errors := 0
		for _, d := range diags {
			if d.Severity >= SevError {
				errors++
			}
		}
		return false, fmt.Errorf("%d error diagnostics", errors)
	}
	return false, nil
}
