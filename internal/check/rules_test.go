package check

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
)

// parseFunc wraps a body in function scaffolding and parses it.
func parseFunc(t *testing.T, body string) *ir.Unit {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u
}

// byRule filters diagnostics down to one rule ID.
func byRule(diags []Diag, rule string) []Diag {
	var out []Diag
	for _, d := range diags {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// checkRule parses body and returns the diagnostics of a single rule.
func checkRule(t *testing.T, rule, body string) []Diag {
	t.Helper()
	u := parseFunc(t, body)
	return byRule(CheckUnit(u), rule)
}

func TestCalleeSavePositive(t *testing.T) {
	got := checkRule(t, "callee-save", `
	movl $1, %ebx
	ret
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "%rbx") {
		t.Fatalf("diags = %v, want one rbx clobber", got)
	}
	if got[0].Line != 5 {
		t.Errorf("line = %d, want 5", got[0].Line)
	}
}

func TestCalleeSaveNegative(t *testing.T) {
	// A saved register may be clobbered; scratch registers always may.
	got := checkRule(t, "callee-save", `
	pushq %rbx
	movl $1, %ebx
	movq %r12, -8(%rsp)
	movl $2, %r12d
	movl $3, %r10d
	popq %rbx
	ret
`)
	if len(got) != 0 {
		t.Fatalf("diags = %v, want none", got)
	}
}

func TestFlagsUndefPositive(t *testing.T) {
	// imul leaves SF/ZF/AF/PF undefined; jne reads ZF.
	got := checkRule(t, "flags-undef", `
	cmpl $1, %edi
	imull %edx, %edx
	jne .Lx
.Lx:
	ret
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "jne") || !strings.Contains(got[0].Msg, "ZF") {
		t.Fatalf("diags = %v, want one jne/ZF read", got)
	}
}

func TestFlagsUndefEntry(t *testing.T) {
	// Flags are undefined at function entry.
	got := checkRule(t, "flags-undef", `
	jne .Lx
.Lx:
	ret
`)
	if len(got) != 1 {
		t.Fatalf("diags = %v, want one entry-flags read", got)
	}
}

func TestFlagsUndefOnePathOnly(t *testing.T) {
	// Only one arm of the diamond defines the flags sete reads.
	got := checkRule(t, "flags-undef", `
	movl %edi, %eax
	jmp .Lb
	cmpl $1, %eax
.Lb:
	sete %al
	ret
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "sete") {
		t.Fatalf("diags = %v, want one sete read", got)
	}
}

func TestFlagsUndefNegative(t *testing.T) {
	got := checkRule(t, "flags-undef", `
	cmpl $1, %edi
	jne .Lx
	sete %al
.Lx:
	ret
`)
	if len(got) != 0 {
		t.Fatalf("diags = %v, want none", got)
	}
}

func TestRegUninitPositive(t *testing.T) {
	got := checkRule(t, "reg-uninit", `
	addl %ebx, %eax
	ret
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "%rbx") {
		t.Fatalf("diags = %v, want one rbx read", got)
	}
}

func TestRegUninitSomePathOnly(t *testing.T) {
	// r10 is written on the taken arm only; the join read is flagged.
	got := checkRule(t, "reg-uninit", `
	testl %edi, %edi
	je .La
	movl $1, %r10d
.La:
	movl %r10d, %eax
	ret
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "%r10") {
		t.Fatalf("diags = %v, want one r10 read", got)
	}
}

func TestRegUninitNegative(t *testing.T) {
	// ABI arguments, zeroing idioms, prologue saves, and post-call
	// reads are all fine.
	got := checkRule(t, "reg-uninit", `
	pushq %rbx
	xorl %r10d, %r10d
	movl %edi, %eax
	addl %esi, %eax
	addl %r10d, %eax
	call g
	addl %r11d, %eax
	popq %rbx
	ret
`)
	if len(got) != 0 {
		t.Fatalf("diags = %v, want none", got)
	}
}

func TestStackDepthPositive(t *testing.T) {
	got := checkRule(t, "stack-depth", `
	pushq %rax
	ret
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "+8") {
		t.Fatalf("diags = %v, want one +8 imbalance", got)
	}
}

func TestStackDepthJoinConflict(t *testing.T) {
	got := checkRule(t, "stack-depth", `
	testl %edi, %edi
	je .La
	pushq %rax
.La:
	ret
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "inconsistent") {
		t.Fatalf("diags = %v, want one join conflict", got)
	}
}

func TestStackDepthNegative(t *testing.T) {
	// Balanced frames and frame-pointer epilogues are fine; sub/add
	// pairs on %rsp are tracked.
	got := checkRule(t, "stack-depth", `
	pushq %rbp
	movq %rsp, %rbp
	subq $32, %rsp
	addq $32, %rsp
	popq %rbp
	ret
`)
	if len(got) != 0 {
		t.Fatalf("diags = %v, want none", got)
	}
}

func TestStackDepthUnknownSuppresses(t *testing.T) {
	// leave restores %rsp from %rbp; the tracker must degrade to
	// unknown, not report the dangling push.
	got := checkRule(t, "stack-depth", `
	pushq %rbp
	movq %rsp, %rbp
	pushq %rax
	leave
	ret
`)
	if len(got) != 0 {
		t.Fatalf("diags = %v, want none", got)
	}
}

func TestUndefLabelPositive(t *testing.T) {
	got := checkRule(t, "undef-label", `
	jmp .Lnowhere
`)
	if len(got) != 1 || !strings.Contains(got[0].Msg, ".Lnowhere") {
		t.Fatalf("diags = %v, want one undefined label", got)
	}
}

func TestUndefLabelNegative(t *testing.T) {
	// Defined local labels and external (tail-call) targets are fine.
	got := checkRule(t, "undef-label", `
	jne .Lx
.Lx:
	jmp memcpy
`)
	if len(got) != 0 {
		t.Fatalf("diags = %v, want none", got)
	}
}

func TestUnreachPositive(t *testing.T) {
	got := checkRule(t, "unreach", `
	ret
	movl $1, %eax
`)
	if len(got) != 1 {
		t.Fatalf("diags = %v, want one unreachable block", got)
	}
}

func TestUnreachNegative(t *testing.T) {
	got := checkRule(t, "unreach", `
	testl %edi, %edi
	je .La
	movl $1, %eax
.La:
	ret
`)
	if len(got) != 0 {
		t.Fatalf("diags = %v, want none", got)
	}
}

func TestCheckUnitSortedDeterministic(t *testing.T) {
	u := parseFunc(t, `
	addl %ebx, %eax
	movl $1, %r12d
	pushq %rax
	ret
`)
	a := CheckUnit(u)
	b := CheckUnit(u)
	if len(a) == 0 {
		t.Fatal("expected diagnostics")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Line > a[i].Line {
			t.Fatalf("diagnostics not sorted by line: %v", a)
		}
	}
}

func TestRulesCatalog(t *testing.T) {
	rs := Rules()
	if len(rs) < 6 {
		t.Fatalf("catalog has %d rules, want >= 6", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i-1].ID >= rs[i].ID {
			t.Errorf("catalog not sorted: %s >= %s", rs[i-1].ID, rs[i].ID)
		}
	}
	if RuleByID("flags-undef") == nil || RuleByID("nope") != nil {
		t.Error("RuleByID lookup broken")
	}
}
