package check

import (
	"fmt"

	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/x86"
)

// Violation is one invariant broken by a specific pass invocation: the
// certifier attributes every new diagnostic to the pass that
// introduced it.
type Violation struct {
	Pass  string `json:"pass"`
	Index int    `json:"index"` // pipeline invocation index
	Diag  Diag   `json:"diag"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%d] introduced: %s", v.Pass, v.Index, v.Diag)
}

// Certifier is a pass.Hook that runs every pass of a pipeline under
// continuous static verification. Before each pass invocation it
// snapshots the unit's diagnostic set and per-function liveness
// invariants; after the pass it re-checks them, and any new violation
// is recorded against the offending invocation — so a pass that
// clobbers live condition codes, unbalances the stack, or breaks a
// label is caught the moment it runs, not when the output misbehaves.
//
// Wire it into a pipeline with:
//
//	mgr, _ := pass.NewManager("REDTEST:SCHED:ASM=o[out.s]")
//	cert := &check.Certifier{}
//	mgr.Hook = cert
//	stats, err := mgr.Run(u)
//	// cert.Violations lists everything attributed, pass by pass.
type Certifier struct {
	// FailFast makes AfterPass return an error on the first new
	// violation, aborting the pipeline with the failure attributed to
	// the offending invocation. Without it the pipeline runs to
	// completion and Violations accumulates.
	FailFast bool

	// Violations collects every invariant broken, in pipeline order.
	Violations []Violation

	baseline     map[string]int       // diag identity -> count before the pass
	entryFlagsIn map[string]x86.Flags // per-function flags live into entry
}

// BeforePass snapshots the unit's invariants.
func (c *Certifier) BeforePass(u *ir.Unit, name string, index int) error {
	c.baseline = diagCounts(CheckUnit(u))
	c.entryFlagsIn = entryFlagsLive(u)
	return nil
}

// AfterPass re-checks the invariants and attributes every new
// violation to the invocation that just ran.
func (c *Certifier) AfterPass(u *ir.Unit, name string, index int) error {
	before := len(c.Violations)

	// Re-run the rule catalog; any diagnostic beyond the pre-pass
	// multiset is new.
	remaining := make(map[string]int, len(c.baseline))
	for k, v := range c.baseline {
		remaining[k] = v
	}
	for _, d := range CheckUnit(u) {
		if k := d.key(); remaining[k] > 0 {
			remaining[k]--
			continue
		}
		c.Violations = append(c.Violations, Violation{Pass: name, Index: index, Diag: d})
	}

	// Liveness invariant (backward analysis, independent of the rule
	// catalog's forward analyses): the flag bits live into a function's
	// entry — condition codes some path reads before defining — must
	// not grow. A pass that deletes or reorders a flag-setting
	// instruction out from under a consumer trips this.
	for fname, after := range entryFlagsLive(u) {
		grown := after &^ c.entryFlagsIn[fname]
		if grown == 0 {
			continue
		}
		c.Violations = append(c.Violations, Violation{
			Pass: name, Index: index,
			Diag: Diag{
				Rule:     "cert-flags-livein",
				Severity: SevError,
				File:     u.FileName,
				Func:     fname,
				Msg: fmt.Sprintf("flags %s newly live into function entry (read before defined)",
					grown),
			},
		})
	}

	if c.FailFast && len(c.Violations) > before {
		v := c.Violations[before]
		return fmt.Errorf("certification failed (%d new violations): %s",
			len(c.Violations)-before, v.Diag)
	}
	return nil
}

// diagCounts builds the multiset of diagnostic identities.
func diagCounts(diags []Diag) map[string]int {
	m := make(map[string]int, len(diags))
	for _, d := range diags {
		m[d.key()]++
	}
	return m
}

// entryFlagsLive computes, per function, the flag bits live into the
// entry block under dataflow.Live — non-zero means some path reads
// condition codes the function never defined.
func entryFlagsLive(u *ir.Unit) map[string]x86.Flags {
	m := make(map[string]x86.Flags, len(u.Functions()))
	for _, f := range u.Functions() {
		g := cfg.Build(f)
		if len(g.Blocks) == 0 {
			continue
		}
		m[f.Name] = dataflow.Live(g).BlockFlagsIn(g.Blocks[0])
	}
	return m
}
