package check

import (
	"strings"

	"mao/internal/dataflow"
	"mao/internal/ir"
	"mao/internal/x86"
	"mao/internal/x86/sidefx"
)

// calleeSaved lists the System V x86-64 callee-saved register
// families: a function must preserve their values across its body.
var calleeSaved = func() dataflow.RegSet {
	var s dataflow.RegSet
	for _, r := range []x86.Reg{x86.RBX, x86.RBP, x86.R12, x86.R13, x86.R14, x86.R15} {
		s.Add(r)
	}
	return s
}()

// abiEntryDefined lists the register families holding defined values
// at function entry under the System V ABI: the six integer argument
// registers, %rax (the varargs vector count lives in %al), the eight
// xmm argument registers, and %rsp.
var abiEntryDefined = func() dataflow.RegSet {
	var s dataflow.RegSet
	for _, r := range []x86.Reg{
		x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9,
		x86.RAX, x86.RSP,
	} {
		s.Add(r)
	}
	for r := x86.XMM0; r <= x86.XMM7; r++ {
		s.Add(r)
	}
	return s
}()

// savedReg returns the register a save-idiom instruction preserves:
// "push %reg" or "mov %reg, mem". Reading a callee-saved register this
// way is how prologues save it, so such reads are exempt from the
// uninitialized-read rule.
func savedReg(in *x86.Inst) (x86.Reg, bool) {
	switch in.Op {
	case x86.OpPUSH:
		if len(in.Args) == 1 && in.Args[0].Kind == x86.KindReg && !in.Args[0].Star {
			return in.Args[0].Reg, true
		}
	case x86.OpMOV:
		if len(in.Args) == 2 && in.Args[0].Kind == x86.KindReg &&
			in.Args[1].Kind == x86.KindMem {
			return in.Args[0].Reg, true
		}
	}
	return x86.RegNone, false
}

// isZeroIdiom matches the compiler idioms that "read" a register only
// formally while fully defining it: xor/sub/pxor/xorps/xorpd of a
// register with itself.
func isZeroIdiom(in *x86.Inst) bool {
	switch in.Op {
	case x86.OpXOR, x86.OpSUB, x86.OpPXOR, x86.OpXORPS, x86.OpXORPD:
	default:
		return false
	}
	return len(in.Args) == 2 &&
		in.Args[0].Kind == x86.KindReg && in.Args[1].Kind == x86.KindReg &&
		in.Args[0].Reg == in.Args[1].Reg
}

// ruleCalleeSave flags writes to a callee-saved register in functions
// that never save it (no push and no store of the register anywhere
// before the write, in layout order). Restores (pop, leave) are not
// clobbers.
var ruleCalleeSave = &Rule{
	ID:       "callee-save",
	Severity: SevWarn,
	Doc:      "callee-saved register (rbx, rbp, r12–r15) clobbered without a save",
	check: func(fc *fnCtx, report reportFn) {
		var saved, reported dataflow.RegSet
		for _, n := range fc.fn.Instructions() {
			in := n.Inst
			if r, ok := savedReg(in); ok {
				saved.Add(r)
				continue
			}
			switch in.Op {
			case x86.OpPOP, x86.OpLEAVE:
				continue // restores
			}
			e := sidefx.InstEffects(in)
			if e.Barrier {
				continue // calls preserve callee-saved registers by contract
			}
			for _, r := range e.RegsWritten {
				f := r.Family()
				if !calleeSaved.Has(f) || saved.Has(f) || reported.Has(f) {
					continue
				}
				reported.Add(f)
				report(n, "callee-saved register %%%s clobbered without save", f)
			}
		}
	},
}

// ruleFlagsUndef flags reads of condition codes that are not defined
// on every path from function entry: flags are undefined at entry,
// calls clobber them, and instructions like imul or variable shifts
// leave specific bits undefined. Built on the side-effect tables and
// the forward must-defined analysis in flow.go.
var ruleFlagsUndef = &Rule{
	ID:       "flags-undef",
	Severity: SevWarn,
	Doc:      "condition codes read without being defined on all paths",
	check: func(fc *fnCtx, report reportFn) {
		in, reached := flagsDefinedIn(fc.g)
		for _, b := range fc.g.Blocks {
			if !reached[b.Index] {
				continue
			}
			defined := in[b.Index]
			for _, n := range b.Insts {
				e := sidefx.InstEffects(n.Inst)
				if missing := e.FlagsRead &^ defined; missing != 0 && !e.Barrier {
					report(n, "%s reads flags %s not defined on all paths",
						n.Inst.Mnemonic(), missing)
				}
				defined = flagsDefinedAfter(defined, n.Inst)
			}
		}
	},
}

// ruleRegUninit flags reads of a register that no path from function
// entry has written, beyond what the ABI defines at entry (argument
// registers, %rax, %rsp, xmm0–7). Prologue saves of callee-saved
// registers and zeroing idioms (xor %r,%r) are exempt.
var ruleRegUninit = &Rule{
	ID:       "reg-uninit",
	Severity: SevWarn,
	Doc:      "register read before any write, beyond the ABI-defined entry state",
	check: func(fc *fnCtx, report reportFn) {
		in, reached := regsWrittenIn(fc.g, abiEntryDefined)
		var reported dataflow.RegSet
		for _, b := range fc.g.Blocks {
			if !reached[b.Index] {
				continue
			}
			written := in[b.Index]
			for _, n := range b.Insts {
				inst := n.Inst
				e := sidefx.InstEffects(inst)
				if e.Barrier {
					written = allRegSet
					continue
				}
				if !isZeroIdiom(inst) {
					exempt, isSave := savedReg(inst)
					for _, r := range e.RegsRead {
						f := r.Family()
						if isSave && f == exempt.Family() && calleeSaved.Has(f) {
							continue
						}
						if written.Has(f) || reported.Has(f) {
							continue
						}
						reported.Add(f)
						report(n, "read of %%%s before any write on some path (not an ABI argument)", f)
					}
				}
				written = regsWrittenAfter(written, inst)
			}
		}
	},
}

// ruleStackDepth flags push/pop and sub/add-%rsp imbalance: a return
// reached with a non-zero tracked depth, or a join whose predecessors
// disagree on the depth. Frame-pointer restores and other untrackable
// %rsp writes degrade the state to unknown instead of erroring.
var ruleStackDepth = &Rule{
	ID:       "stack-depth",
	Severity: SevError,
	Doc:      "stack depth unbalanced at return or inconsistent across CFG paths",
	check: func(fc *fnCtx, report reportFn) {
		in, conflicts := stackDepthIn(fc.g)
		for _, b := range fc.g.Blocks {
			if conflicts[b.Index] {
				report(firstNode(b.Insts), "inconsistent stack depth at join %s", b)
			}
			st := in[b.Index]
			if !st.reached {
				continue
			}
			for _, n := range b.Insts {
				if !st.known {
					break
				}
				if n.Inst.Op == x86.OpRET && st.v != 0 {
					report(n, "return with unbalanced stack (%+d bytes)", st.v)
				}
				v, ok := depthAfter(st.v, n.Inst)
				if !ok {
					st.known = false
					break
				}
				st.v = v
			}
		}
	},
}

// ruleUndefLabel flags direct jumps to assembler-local labels (.L…)
// that the unit never defines. Non-local targets are presumed external
// (tail calls, cross-unit jumps) and are not checked.
var ruleUndefLabel = &Rule{
	ID:       "undef-label",
	Severity: SevError,
	Doc:      "jump to an assembler-local label the unit does not define",
	check: func(fc *fnCtx, report reportFn) {
		for _, n := range fc.fn.Instructions() {
			in := n.Inst
			if in.Op == x86.OpCALL {
				continue
			}
			tgt, ok := in.BranchTarget()
			if !ok || !strings.HasPrefix(tgt, ".L") {
				continue
			}
			if fc.unit.FindLabel(tgt) == nil {
				report(n, "jump to undefined label %s", tgt)
			}
		}
	},
}

// ruleUnreach flags basic blocks no path from function entry reaches.
// Skipped entirely when the CFG has unresolved indirect branches — the
// edges are incomplete and reachability would be guesswork.
var ruleUnreach = &Rule{
	ID:       "unreach",
	Severity: SevWarn,
	Doc:      "basic block unreachable from function entry",
	check: func(fc *fnCtx, report reportFn) {
		if len(fc.g.Unresolved) > 0 || len(fc.g.Blocks) == 0 {
			return
		}
		seen := make([]bool, len(fc.g.Blocks))
		stack := []int{0}
		seen[0] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range fc.g.Blocks[i].Succs {
				if !seen[s.Index] {
					seen[s.Index] = true
					stack = append(stack, s.Index)
				}
			}
		}
		for _, b := range fc.g.Blocks {
			if !seen[b.Index] && len(b.Insts) > 0 {
				report(b.Insts[0], "unreachable code (%s, %d instructions)", b, len(b.Insts))
			}
		}
	},
}

// firstNode returns the first node of a slice, or nil.
func firstNode(ns []*ir.Node) *ir.Node {
	if len(ns) == 0 {
		return nil
	}
	return ns[0]
}
