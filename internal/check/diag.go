// Package check is MAO's static verification and lint subsystem: a
// diagnostics engine plus a catalog of table-driven rules over the
// IR/CFG/dataflow layers, and a pass certifier that re-checks the rule
// invariants around every pass invocation of a pipeline.
//
// MAO rewrites compiler-emitted assembly below the compiler's
// abstraction level — exactly where clobbered condition codes, broken
// ABI contracts and stack imbalance creep in unnoticed. The checker
// turns the side-effect tables and data-flow analyses the optimizer
// already owns into a correctness tool: it lints input assembly
// (cmd/mao --check) and certifies every pass transformation
// (Certifier, wired into pass.Manager as a Hook).
package check

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Severity grades a diagnostic. Errors indicate code that is wrong on
// some path (undefined jump target, unbalanced stack); warnings
// indicate contract violations that may be intentional in hand-written
// assembly; infos are observations.
type Severity int

// Severities, ordered least to most severe.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String returns the lower-case severity name used in renderings.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarn
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("check: unknown severity %q", name)
	}
	return nil
}

// Diag is one structured diagnostic: a rule violation at a source
// position.
type Diag struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"` // 1-based; 0 for synthesized nodes
	Func     string   `json:"func,omitempty"`
	Msg      string   `json:"msg"`

	// Origin and LastMut carry the provenance of the node the
	// diagnostic anchors to, rendered "NAME[idx]": the invocation that
	// synthesized it and the one that last mutated it. Both are empty
	// for nodes straight from the parser — a violation on a line the
	// input already contained names no pass. Attribution is advisory
	// and excluded from key(): the certifier diffs diagnostics by what
	// is wrong, not by who touched the node last.
	Origin  string `json:"origin,omitempty"`
	LastMut string `json:"last_mut,omitempty"`
}

// String renders the diagnostic in the familiar compiler format:
//
//	in.s:12: warning: read of %rbx before any write [reg-uninit] (in f)
func (d Diag) String() string {
	pos := d.File
	if d.Line > 0 {
		pos = fmt.Sprintf("%s:%d", d.File, d.Line)
	}
	s := fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Msg, d.Rule)
	if d.Func != "" {
		s += " (in " + d.Func + ")"
	}
	if d.Origin != "" {
		s += " {origin " + d.Origin
		if d.LastMut != "" && d.LastMut != d.Origin {
			s += ", last-mut " + d.LastMut
		}
		s += "}"
	}
	return s
}

// key is the position-independent identity of a diagnostic, used by
// the certifier to diff diagnostic sets across a pass (pass edits
// shift nothing — nodes keep their parse lines — but inserted nodes
// have line 0, so identity must not depend on position).
func (d Diag) key() string {
	return d.Rule + "\x00" + d.Func + "\x00" + d.Msg
}

// Key returns the diagnostic's position- and provenance-independent
// identity, for callers merging diagnostic streams (cmd/mao dedups a
// combined --check/-verify/-certify report with it).
func (d Diag) Key() string { return d.key() }

// Sort orders diagnostics deterministically: by file, line, rule,
// function, then message.
func Sort(diags []Diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Msg < b.Msg
	})
}

// MaxSeverity returns the highest severity present, or SevInfo for an
// empty set.
func MaxSeverity(diags []Diag) Severity {
	max := SevInfo
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// WriteText renders diagnostics one per line in the compiler format.
func WriteText(w io.Writer, diags []Diag) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as an indented JSON array (an empty
// slice renders as []). The slice order is preserved; callers wanting
// deterministic output Sort first.
func WriteJSON(w io.Writer, diags []Diag) error {
	if diags == nil {
		diags = []Diag{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
