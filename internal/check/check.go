package check

import (
	"fmt"
	"sort"

	"mao/internal/cfg"
	"mao/internal/dataflow"
	"mao/internal/ir"
)

// Version identifies the rule catalog's semantics; bump it when a
// rule is added, removed or changes meaning. The pipeline memo folds
// it into its keys so memoized results never outlive the checker that
// (implicitly) vetted them.
const Version = "check/1"

// Rule is one table-driven static check. Rules are function-scoped:
// the engine builds the CFG (and, lazily, liveness) once per function
// and runs every rule over it.
type Rule struct {
	// ID is the stable rule identifier reported in diagnostics, e.g.
	// "flags-undef".
	ID string
	// Severity of the diagnostics the rule emits.
	Severity Severity
	// Doc is a one-line description for listings and DESIGN.md.
	Doc string

	check func(fc *fnCtx, report reportFn)
}

// reportFn records one violation at node n.
type reportFn func(n *ir.Node, format string, args ...any)

// fnCtx carries the per-function analysis state shared by all rules.
type fnCtx struct {
	unit *ir.Unit
	fn   *ir.Function
	g    *cfg.Graph

	liveOnce *dataflow.Liveness
}

// live returns the function's liveness, computed on first use.
func (fc *fnCtx) live() *dataflow.Liveness {
	if fc.liveOnce == nil {
		fc.liveOnce = dataflow.Live(fc.g)
	}
	return fc.liveOnce
}

// rules is the shipped catalog, kept sorted by ID.
var rules = []*Rule{
	ruleCalleeSave,
	ruleFlagsUndef,
	ruleRegUninit,
	ruleStackDepth,
	ruleUndefLabel,
	ruleUnreach,
}

func init() {
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
}

// Rules returns the shipped rule catalog, sorted by ID.
func Rules() []*Rule { return rules }

// RuleByID returns the rule with the given ID, or nil.
func RuleByID(id string) *Rule {
	for _, r := range rules {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// CheckFunction runs every rule over one function and returns the
// sorted diagnostics.
func CheckFunction(u *ir.Unit, f *ir.Function) []Diag {
	fc := &fnCtx{unit: u, fn: f, g: cfg.Build(f)}
	var out []Diag
	for _, r := range rules {
		r := r
		report := func(n *ir.Node, format string, args ...any) {
			d := Diag{
				Rule:     r.ID,
				Severity: r.Severity,
				File:     u.FileName,
				Func:     f.Name,
			}
			if n != nil {
				d.Line = n.Line
				if n.Prov != nil {
					d.Origin = n.Prov.Origin.String()
					d.LastMut = n.Prov.LastMut.String()
				}
			}
			d.Msg = fmt.Sprintf(format, args...)
			out = append(out, d)
		}
		r.check(fc, report)
	}
	Sort(out)
	return out
}

// CheckUnit runs the full rule catalog over every function of the
// unit and returns the sorted diagnostics.
func CheckUnit(u *ir.Unit) []Diag {
	var out []Diag
	for _, f := range u.Functions() {
		out = append(out, CheckFunction(u, f)...)
	}
	Sort(out)
	return out
}
