package check

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/x86"
)

// synthInst parses one instruction line into an x86.Inst for
// pass-synthesized nodes.
func synthInst(line string) *x86.Inst {
	u, err := asm.ParseString("synth.s", "\t"+line+"\n")
	if err != nil {
		panic(err)
	}
	for _, n := range u.List.Nodes() {
		if n.Kind == ir.NodeInst {
			return n.Inst
		}
	}
	panic("no instruction in " + line)
}

// brokenClobber deliberately inserts an imul — which leaves SF, ZF, AF
// and PF undefined — right after the first cmp it finds, the classic
// micro-architectural rewrite bug the certifier exists to catch.
type brokenClobber struct{}

func (brokenClobber) Name() string        { return "TBROKEN" }
func (brokenClobber) Description() string { return "test pass clobbering condition codes" }

func (brokenClobber) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	for _, n := range f.Instructions() {
		if n.Inst.Op == x86.OpCMP {
			ctx.InsertAfter(ir.InstNode(synthInst("imull %edx, %edx")), n)
			return true, nil
		}
	}
	return false, nil
}

// brokenDelete deletes the first cmp, leaving its consumer reading
// flags no path defines — tripping both the rule catalog and the
// certifier's backward-liveness invariant.
type brokenDelete struct{}

func (brokenDelete) Name() string        { return "TDELCMP" }
func (brokenDelete) Description() string { return "test pass deleting a cmp" }

func (brokenDelete) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	for _, n := range f.Instructions() {
		if n.Inst.Op == x86.OpCMP {
			ctx.Unit.List.Remove(n)
			return true, nil
		}
	}
	return false, nil
}

// brokenSynth synthesizes a callee-save clobber through the Ctx
// helpers, so the node carries provenance into the diagnostic.
type brokenSynth struct{}

func (brokenSynth) Name() string        { return "TSYNCLOB" }
func (brokenSynth) Description() string { return "test pass synthesizing a callee-save clobber" }

func (brokenSynth) RunFunc(ctx *pass.Ctx, f *ir.Function) (bool, error) {
	ctx.InsertAfter(ir.InstNode(synthInst("movl $1, %ebx")), f.EntryLabel())
	return true, nil
}

// harmless changes nothing.
type harmless struct{}

func (harmless) Name() string                                  { return "TGOOD" }
func (harmless) Description() string                           { return "test pass doing nothing" }
func (harmless) RunFunc(*pass.Ctx, *ir.Function) (bool, error) { return false, nil }

func init() {
	pass.Register(func() pass.Pass { return brokenClobber{} })
	pass.Register(func() pass.Pass { return brokenDelete{} })
	pass.Register(func() pass.Pass { return brokenSynth{} })
	pass.Register(func() pass.Pass { return harmless{} })
}

const certSrc = `
	cmpl $1, %edi
	jne .Lx
	movl $2, %eax
.Lx:
	ret
`

func runCertified(t *testing.T, pipeline string, failFast bool) (*Certifier, error) {
	t.Helper()
	u := parseFunc(t, certSrc)
	if diags := CheckUnit(u); len(diags) != 0 {
		t.Fatalf("fixture not clean before pipeline: %v", diags)
	}
	mgr, err := pass.NewManager(pipeline)
	if err != nil {
		t.Fatalf("NewManager(%q): %v", pipeline, err)
	}
	cert := &Certifier{FailFast: failFast}
	mgr.Hook = cert
	_, err = mgr.Run(u)
	return cert, err
}

func TestCertifierAttributesClobber(t *testing.T) {
	cert, err := runCertified(t, "TGOOD:TBROKEN:TGOOD", false)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(cert.Violations) == 0 {
		t.Fatal("certifier caught nothing")
	}
	v := cert.Violations[0]
	if v.Pass != "TBROKEN" || v.Index != 1 {
		t.Errorf("attributed to %s[%d], want TBROKEN[1]", v.Pass, v.Index)
	}
	if v.Diag.Rule != "flags-undef" {
		t.Errorf("rule = %s, want flags-undef", v.Diag.Rule)
	}
	if s := v.String(); !strings.Contains(s, "TBROKEN[1] introduced:") {
		t.Errorf("String() = %q", s)
	}
	// The harmless invocations must stay clean.
	for _, v := range cert.Violations {
		if v.Pass == "TGOOD" {
			t.Errorf("violation wrongly attributed to TGOOD: %v", v)
		}
	}
}

// TestDiagCarriesProvenance: a violation anchored on a synthesized
// node names the creating pass in Origin/LastMut, both through the
// certifier and through a plain post-pipeline CheckUnit.
func TestDiagCarriesProvenance(t *testing.T) {
	cert, err := runCertified(t, "TGOOD:TSYNCLOB", false)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var found bool
	for _, v := range cert.Violations {
		if v.Diag.Rule != "callee-save" {
			continue
		}
		found = true
		if v.Diag.Origin != "TSYNCLOB[1]" {
			t.Errorf("origin = %q, want TSYNCLOB[1]", v.Diag.Origin)
		}
		if v.Diag.LastMut != "TSYNCLOB[1]" {
			t.Errorf("last-mut = %q, want TSYNCLOB[1]", v.Diag.LastMut)
		}
		if s := v.Diag.String(); !strings.Contains(s, "{origin TSYNCLOB[1]}") {
			t.Errorf("String() = %q, want origin suffix", s)
		}
	}
	if !found {
		t.Fatal("no callee-save violation recorded")
	}
	// Parsed nodes must stay attribution-free.
	u := parseFunc(t, "\tmovl $1, %ebx\n\tret\n")
	for _, d := range CheckUnit(u) {
		if d.Origin != "" || d.LastMut != "" {
			t.Errorf("parsed-node diagnostic carries provenance: %+v", d)
		}
	}
}

func TestCertifierLivenessInvariant(t *testing.T) {
	cert, err := runCertified(t, "TDELCMP", false)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var rules []string
	for _, v := range cert.Violations {
		if v.Pass != "TDELCMP" || v.Index != 0 {
			t.Errorf("attributed to %s[%d], want TDELCMP[0]", v.Pass, v.Index)
		}
		rules = append(rules, v.Diag.Rule)
	}
	joined := strings.Join(rules, " ")
	if !strings.Contains(joined, "cert-flags-livein") {
		t.Errorf("violations %v missing cert-flags-livein", rules)
	}
	if !strings.Contains(joined, "flags-undef") {
		t.Errorf("violations %v missing flags-undef", rules)
	}
}

func TestCertifierFailFast(t *testing.T) {
	_, err := runCertified(t, "TGOOD:TBROKEN", true)
	if err == nil {
		t.Fatal("FailFast pipeline succeeded, want error")
	}
	// The manager attributes the hook error to the offending invocation.
	if !strings.Contains(err.Error(), "TBROKEN[1]") ||
		!strings.Contains(err.Error(), "certification failed") {
		t.Errorf("error = %v, want TBROKEN[1] certification failure", err)
	}
}

func TestCertifierCleanPipeline(t *testing.T) {
	cert, err := runCertified(t, "TGOOD:TGOOD", true)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(cert.Violations) != 0 {
		t.Errorf("violations on a no-op pipeline: %v", cert.Violations)
	}
}

// TestCertifierPreexistingNotAttributed: diagnostics already present
// before a pass must not be re-attributed to it.
func TestCertifierPreexisting(t *testing.T) {
	u := parseFunc(t, `
	movl $1, %ebx
	ret
`)
	pre := CheckUnit(u)
	if len(pre) == 0 {
		t.Fatal("fixture should have a callee-save diagnostic")
	}
	mgr, err := pass.NewManager("TGOOD")
	if err != nil {
		t.Fatal(err)
	}
	cert := &Certifier{}
	mgr.Hook = cert
	if _, err := mgr.Run(u); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(cert.Violations) != 0 {
		t.Errorf("pre-existing diagnostics re-attributed: %v", cert.Violations)
	}
}
