// Package cachekey derives the content address of an optimization
// request — the key of maod's result cache.
//
// The derivation lives in its own package because two independent
// components must agree on it byte-for-byte: the daemon
// (internal/serve) uses it to index its LRU result cache, and the
// shard router (internal/router) uses it to consistent-hash requests
// onto shards so that repeat requests for the same content land on the
// shard that already holds the cached response. If the two ever
// computed keys differently, routing would still be *correct* (every
// shard can serve every request) but cache hits would stop
// concentrating — a silent fleet-wide performance regression. Keeping
// one exported helper, pinned by golden-vector tests, makes that drift
// impossible.
//
// The key is the SHA-256 over a length-delimited encoding of every
// request field the response bytes depend on: source, unit name, pass
// spec, and the check/explain/verify option flags. Fields that do NOT
// change the response (deadline, no_cache) are deliberately excluded.
package cachekey

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Request is the response-relevant projection of an optimize request.
// The zero value of Name means "unnamed": it is canonicalized to
// DefaultName so that an absent name and an explicit "request.s" hash
// identically, exactly as the daemon treats them.
type Request struct {
	// Name is the unit name used in diagnostics ("" = DefaultName).
	Name string
	// Source is the AT&T-syntax assembly to optimize.
	Source string
	// Spec is the ':'-separated pass pipeline.
	Spec string
	// Check, Explain and Verify are the response-shaping option flags.
	Check   bool
	Explain bool
	Verify  bool
}

// DefaultName is the unit name an unnamed JSON request gets; it is
// part of the key, so it is fixed here for both daemon and router.
const DefaultName = "request.s"

// Key returns the content address of r: 64 lowercase hex digits of
// SHA-256 over the length-delimited field encoding. The encoding
// prefixes the variable-length source with its byte length so that no
// (source, name, spec) concatenation can collide with another split of
// the same bytes.
func Key(r Request) string {
	name := r.Name
	if name == "" {
		name = DefaultName
	}
	h := sha256.New()
	fmt.Fprintf(h, "src:%d:", len(r.Source))
	h.Write([]byte(r.Source))
	fmt.Fprintf(h, ":name:%s:spec:%s:check:%t:explain:%t:verify:%t",
		name, r.Spec, r.Check, r.Explain, r.Verify)
	return hex.EncodeToString(h.Sum(nil))
}
