package cachekey

import "testing"

// TestGoldenVectors pins the key derivation to fixed hex digests. The
// daemon's result cache and the router's shard hashing both call Key;
// a change that breaks any vector here would silently scatter cache
// hits across the fleet (old entries unreachable, router affinity
// pointing at shards that cached under the old key). Changing the
// derivation therefore must be deliberate: update the vectors AND
// accept a fleet-wide cold cache on rollout.
func TestGoldenVectors(t *testing.T) {
	const src = "\t.text\nf:\n\tret\n"
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"zero value", Request{},
			"16e045c1c4dcbc210998c8cf4a51eb715aa69eec540898b46b2828ce27361cef"},
		{"unnamed source", Request{Source: src},
			"3d7506780e91b160bff96bf83634ef44425b98dee901713812158f562ec0adf3"},
		{"explicit default name", Request{Name: "request.s", Source: src},
			"3d7506780e91b160bff96bf83634ef44425b98dee901713812158f562ec0adf3"},
		{"named with spec", Request{Name: "a.s", Source: src, Spec: "REDTEST:REDMOV"},
			"5f4307157a1311e565ccc998d309e807e20de2eff8c84738edf31edab0ebeca4"},
		{"check flag", Request{Name: "a.s", Source: src, Spec: "REDTEST:REDMOV", Check: true},
			"b21703375499503d64890167ba41e790cb88434676e700332d2d158b7ad1768b"},
		{"explain flag", Request{Name: "a.s", Source: src, Spec: "REDTEST:REDMOV", Explain: true},
			"819da1403cb44e945186b978cc1e24983e75d46006086c624765227816964891"},
		{"verify flag", Request{Name: "a.s", Source: src, Spec: "REDTEST:REDMOV", Verify: true},
			"5bd8f917abf300f1022e7b2efebff2f3d0224bbb38c8567f7843059a3bed2be3"},
		{"colon in source", Request{Name: "x", Source: "abc:def"},
			"78267ee04ef948d72a4e12b2481b9f47378f217817603e013bf554b87c1966fa"},
		{"colon shifted into name+spec", Request{Name: "x:spec", Source: "abc", Spec: "def"},
			"4fa980ec328060c3a0749adc0b92cff11f86ff87d66445010ec3251ff06d46c4"},
	}
	for _, c := range cases {
		if got := Key(c.req); got != c.want {
			t.Errorf("%s: Key = %s, want %s", c.name, got, c.want)
		}
	}
	// The length prefix makes the field encoding non-ambiguous: moving
	// bytes between source and name/spec must change the key.
	if Key(Request{Name: "x", Source: "abc:def"}) == Key(Request{Name: "x:spec", Source: "abc", Spec: "def"}) {
		t.Error("field-boundary shift collided")
	}
}

// TestEveryFlagMatters asserts each option flag independently perturbs
// the key — a flag that stopped participating would serve explain-less
// cached responses to explain requests.
func TestEveryFlagMatters(t *testing.T) {
	base := Request{Name: "a.s", Source: "x", Spec: "REDTEST"}
	seen := map[string]string{"base": Key(base)}
	for name, req := range map[string]Request{
		"check":   {Name: "a.s", Source: "x", Spec: "REDTEST", Check: true},
		"explain": {Name: "a.s", Source: "x", Spec: "REDTEST", Explain: true},
		"verify":  {Name: "a.s", Source: "x", Spec: "REDTEST", Verify: true},
		"name":    {Name: "b.s", Source: "x", Spec: "REDTEST"},
		"source":  {Name: "a.s", Source: "y", Spec: "REDTEST"},
		"spec":    {Name: "a.s", Source: "x", Spec: "REDMOV"},
	} {
		k := Key(req)
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("flag %s does not perturb the key (collides with %s)", name, prev)
			}
		}
		seen[name] = k
	}
}
