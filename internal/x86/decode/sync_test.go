package decode

import (
	"reflect"
	"testing"

	"mao/internal/x86"
	"mao/internal/x86/encode"
)

// TestTableSync proves the decoder's group coverage is exactly the
// encoder's: every op in an encode/forms.go group table decodes, and
// the decoder's derived tables contain nothing else. Because the
// decoder builds its tables from encode's exported copies, a failure
// here means the reversal lost an entry (e.g. two ops colliding on a
// digit) — the drift the sync design exists to prevent.
func TestTableSync(t *testing.T) {
	want := make(map[x86.Op]bool)
	for op := range encode.ALUForms() {
		want[op] = true
	}
	for op := range encode.ShiftDigits() {
		want[op] = true
	}
	for op := range encode.Group3Digits() {
		want[op] = true
	}
	for op := range encode.PrefetchDigits() {
		want[op] = true
	}
	for op := range encode.SSEArithForms() {
		want[op] = true
	}
	got := GroupOps()
	for op := range want {
		if !got[op] {
			t.Errorf("op %v encodes (group tables) but does not decode", op)
		}
	}
	for op := range got {
		if !want[op] {
			t.Errorf("op %v decodes but is not in the encoder's group tables", op)
		}
	}
}

// syncCases builds one instruction per encoder form: every group
// member across operand shapes and widths, plus the irregular
// (non-tabular) opcodes. TestDecodeEncodeInverse pushes each through
// encode→decode and requires the identity decode(encode(x)) == x.
func syncCases() []*x86.Inst {
	ins := func(m x86.Mnem, args ...x86.Operand) *x86.Inst {
		return x86.NewInst(m, args...)
	}
	reg := func(w x86.Width) x86.Operand { // a plain non-accumulator register
		return x86.RegOp(x86.RBX.WithWidth(w))
	}
	hiReg := func(w x86.Width) x86.Operand { // a REX-extended register
		return x86.RegOp(x86.R10.WithWidth(w))
	}
	acc := func(w x86.Width) x86.Operand {
		return x86.RegOp(x86.RAX.WithWidth(w))
	}
	mems := []x86.Mem{
		{Base: x86.RDI},
		{Base: x86.RBP, Disp: -8},
		{Base: x86.R13},
		{Base: x86.RSP, Disp: 4},
		{Base: x86.R12},
		{Base: x86.RAX, Index: x86.RCX, Scale: 4, Disp: -32},
		{Index: x86.RBX, Scale: 8},
		{Base: x86.RIP, Disp: 0x40},
		{Disp: 0x1000},
		{Base: x86.RDX, Disp: 0x12345},
	}
	mem := x86.MemOp(mems[0])
	widths := []x86.Width{x86.W8, x86.W16, x86.W32, x86.W64}
	xmm0, xmm9 := x86.RegOp(x86.XMM0), x86.RegOp(x86.XMM9)

	var out []*x86.Inst

	// ALU group: imm8/imm32/acc forms, MR, RM, across widths and
	// addressing modes.
	for op := range encode.ALUForms() {
		for _, w := range widths {
			m := x86.Mnem{Op: op, Width: w}
			out = append(out,
				ins(m, x86.Imm(3), reg(w)),
				ins(m, x86.Imm(3), acc(w)), // W8 acc hits the base+4 short form
				ins(m, x86.Imm(3), mem),
				ins(m, reg(w), hiReg(w)),
				ins(m, reg(w), mem),
				ins(m, mem, reg(w)),
			)
			if w != x86.W8 {
				out = append(out,
					ins(m, x86.Imm(0x1234), acc(w)), // base+5 accumulator short form
					ins(m, x86.Imm(0x1234), reg(w)), // 81 /digit
				)
			}
		}
	}
	// Every addressing form once.
	for _, mm := range mems {
		out = append(out, ins(x86.Mnem{Op: x86.OpADD, Width: x86.W32},
			x86.Imm(7), x86.MemOp(mm)))
	}

	// Shift group: implicit-1, imm8 and %cl forms.
	for op := range encode.ShiftDigits() {
		for _, w := range widths {
			m := x86.Mnem{Op: op, Width: w}
			out = append(out,
				ins(m, reg(w)), // D0/D1 one-operand form
				ins(m, x86.Imm(5), reg(w)),
				ins(m, x86.Imm(5), mem),
				ins(m, x86.RegOp(x86.CL), reg(w)),
			)
		}
	}

	// Group 3 (not/neg/mul/imul/div/idiv), one-operand.
	for op := range encode.Group3Digits() {
		for _, w := range widths {
			m := x86.Mnem{Op: op, Width: w}
			out = append(out, ins(m, reg(w)), ins(m, hiReg(w)), ins(m, mem))
		}
	}

	// Prefetch hints.
	for op := range encode.PrefetchDigits() {
		out = append(out, ins(x86.Mnem{Op: op}, mem))
	}

	// Regular SSE arithmetic: register and memory sources.
	for op := range encode.SSEArithForms() {
		out = append(out,
			ins(x86.Mnem{Op: op}, xmm9, xmm0),
			ins(x86.Mnem{Op: op}, mem, xmm9),
		)
	}

	// MOV: MR/RM/imm forms, movabs, the mod-11 C6/C7 forms.
	for _, w := range widths {
		m := x86.Mnem{Op: x86.OpMOV, Width: w}
		out = append(out,
			ins(m, reg(w), hiReg(w)),
			ins(m, reg(w), mem),
			ins(m, mem, reg(w)),
			ins(m, x86.Imm(17), reg(w)), // B0+r / B8+r / REX.W C7
			ins(m, x86.Imm(17), mem),    // C6 / C7
		)
	}
	out = append(out,
		ins(x86.Mnem{Op: x86.OpMOVABS, Width: x86.W64},
			x86.Imm(0x123456789abcdef0), reg(x86.W64)),
		ins(x86.Mnem{Op: x86.OpMOV, Width: x86.W8}, x86.Imm(1), x86.RegOp(x86.AH)),
		ins(x86.Mnem{Op: x86.OpMOV, Width: x86.W8}, x86.Imm(1), x86.RegOp(x86.DIL)),
	)

	// MOVZX/MOVSX including movslq.
	for _, op := range []x86.Op{x86.OpMOVZX, x86.OpMOVSX} {
		out = append(out,
			ins(x86.Mnem{Op: op, Width: x86.W32, SrcWidth: x86.W8}, x86.RegOp(x86.BL), reg(x86.W32)),
			ins(x86.Mnem{Op: op, Width: x86.W64, SrcWidth: x86.W8}, mem, reg(x86.W64)),
			ins(x86.Mnem{Op: op, Width: x86.W32, SrcWidth: x86.W16}, x86.RegOp(x86.BX), reg(x86.W32)),
			ins(x86.Mnem{Op: op, Width: x86.W64, SrcWidth: x86.W16}, mem, hiReg(x86.W64)),
			ins(x86.Mnem{Op: op, Width: x86.W16, SrcWidth: x86.W8}, x86.RegOp(x86.BL), reg(x86.W16)),
		)
	}
	out = append(out, ins(x86.Mnem{Op: x86.OpMOVSX, Width: x86.W64, SrcWidth: x86.W32},
		reg(x86.W32), hiReg(x86.W64)))

	// LEA, PUSH/POP, XCHG, CMOV, INC/DEC, IMUL, TEST, SET.
	for _, w := range []x86.Width{x86.W16, x86.W32, x86.W64} {
		out = append(out, ins(x86.Mnem{Op: x86.OpLEA, Width: w}, mem, reg(w)))
	}
	out = append(out,
		ins(x86.Mnem{Op: x86.OpPUSH}, reg(x86.W64)),
		ins(x86.Mnem{Op: x86.OpPUSH}, hiReg(x86.W64)),
		ins(x86.Mnem{Op: x86.OpPUSH}, x86.Imm(5)),
		ins(x86.Mnem{Op: x86.OpPUSH}, x86.Imm(0x1234)),
		ins(x86.Mnem{Op: x86.OpPUSH}, mem),
		ins(x86.Mnem{Op: x86.OpPOP}, reg(x86.W64)),
		ins(x86.Mnem{Op: x86.OpPOP}, hiReg(x86.W64)),
		ins(x86.Mnem{Op: x86.OpPOP}, mem),
	)
	for _, w := range []x86.Width{x86.W16, x86.W32, x86.W64} {
		out = append(out,
			ins(x86.Mnem{Op: x86.OpXCHG, Width: w}, reg(w), acc(w)), // 90+r short form
			ins(x86.Mnem{Op: x86.OpXCHG, Width: w}, reg(w), hiReg(w)),
		)
	}
	out = append(out,
		ins(x86.Mnem{Op: x86.OpXCHG, Width: x86.W8}, x86.RegOp(x86.BL), x86.RegOp(x86.CL)),
		ins(x86.Mnem{Op: x86.OpXCHG, Width: x86.W32}, x86.RegOp(x86.EBX), mem),
	)
	for cc := x86.Cond(0); cc < 16; cc++ {
		out = append(out,
			ins(x86.Mnem{Op: x86.OpCMOV, Cond: cc, Width: x86.W64}, reg(x86.W64), hiReg(x86.W64)),
			ins(x86.Mnem{Op: x86.OpSET, Cond: cc}, x86.RegOp(x86.BL)),
		)
	}
	out = append(out,
		ins(x86.Mnem{Op: x86.OpCMOV, Cond: 4, Width: x86.W32}, mem, reg(x86.W32)),
		ins(x86.Mnem{Op: x86.OpSET, Cond: 5}, mem),
	)
	for _, w := range widths {
		out = append(out,
			ins(x86.Mnem{Op: x86.OpINC, Width: w}, reg(w)),
			ins(x86.Mnem{Op: x86.OpDEC, Width: w}, mem),
		)
	}
	for _, w := range []x86.Width{x86.W16, x86.W32, x86.W64} {
		out = append(out,
			ins(x86.Mnem{Op: x86.OpIMUL, Width: w}, mem, reg(w)),                  // 0F AF
			ins(x86.Mnem{Op: x86.OpIMUL, Width: w}, reg(w), hiReg(w)),             // 0F AF reg
			ins(x86.Mnem{Op: x86.OpIMUL, Width: w}, x86.Imm(7), reg(w), hiReg(w)), // 6B
			ins(x86.Mnem{Op: x86.OpIMUL, Width: w}, x86.Imm(0x1234), mem, reg(w)), // 69
		)
	}
	for _, w := range widths {
		m := x86.Mnem{Op: x86.OpTEST, Width: w}
		out = append(out,
			ins(m, x86.Imm(3), acc(w)), // A8/A9
			ins(m, x86.Imm(3), reg(w)), // F6/F7 /0
			ins(m, x86.Imm(3), mem),
			ins(m, reg(w), hiReg(w)), // 84/85
			ins(m, reg(w), mem),
		)
	}

	// No-operand opcodes and NOP widths.
	out = append(out,
		ins(x86.Mnem{Op: x86.OpRET}),
		ins(x86.Mnem{Op: x86.OpLEAVE}),
		ins(x86.Mnem{Op: x86.OpCLTQ}),
		ins(x86.Mnem{Op: x86.OpCLTD}),
		ins(x86.Mnem{Op: x86.OpCQTO}),
		ins(x86.Mnem{Op: x86.OpCWTL}),
		ins(x86.Mnem{Op: x86.OpNOP}),
		ins(x86.Mnem{Op: x86.OpNOP, Width: x86.W16}),
		ins(x86.Mnem{Op: x86.OpNOP, Width: x86.W32}, mem),
		ins(x86.Mnem{Op: x86.OpNOP, Width: x86.W16}, mem),
		ins(x86.Mnem{Op: x86.OpUD2}),
		ins(x86.Mnem{Op: x86.OpHLT}),
		ins(x86.Mnem{Op: x86.OpPAUSE}),
	)

	// Indirect branches (direct ones carry labels; they are exercised
	// by the lift tests).
	star := func(o x86.Operand) x86.Operand { o.Star = true; return o }
	out = append(out,
		ins(x86.Mnem{Op: x86.OpCALL}, star(x86.RegOp(x86.RAX))),
		ins(x86.Mnem{Op: x86.OpJMP}, star(x86.RegOp(x86.R11))),
		ins(x86.Mnem{Op: x86.OpCALL}, star(mem)),
		ins(x86.Mnem{Op: x86.OpJMP}, star(mem)),
	)

	// SSE moves, movd/movq and conversions.
	for _, op := range []x86.Op{x86.OpMOVSS, x86.OpMOVSD, x86.OpMOVAPS,
		x86.OpMOVUPS, x86.OpMOVDQA, x86.OpMOVDQU} {
		out = append(out,
			ins(x86.Mnem{Op: op}, mem, xmm9),  // load
			ins(x86.Mnem{Op: op}, xmm9, mem),  // store
			ins(x86.Mnem{Op: op}, xmm9, xmm0), // reg-reg (load form)
		)
	}
	out = append(out,
		ins(x86.Mnem{Op: x86.OpMOVD}, x86.RegOp(x86.EDI), xmm0),
		ins(x86.Mnem{Op: x86.OpMOVD}, xmm0, x86.RegOp(x86.EDI)),
		ins(x86.Mnem{Op: x86.OpMOVD}, mem, xmm9),
		ins(x86.Mnem{Op: x86.OpMOVD}, xmm9, mem),
		ins(x86.Mnem{Op: x86.OpMOVQX}, x86.RegOp(x86.RDI), xmm0),
		ins(x86.Mnem{Op: x86.OpMOVQX}, xmm0, x86.RegOp(x86.RDI)),
		ins(x86.Mnem{Op: x86.OpMOVQX}, xmm9, xmm0), // F3 0F 7E
		ins(x86.Mnem{Op: x86.OpMOVQX}, mem, xmm0),
		ins(x86.Mnem{Op: x86.OpCVTSI2SS, Width: x86.W32}, x86.RegOp(x86.EDI), xmm0),
		ins(x86.Mnem{Op: x86.OpCVTSI2SS, Width: x86.W64}, x86.RegOp(x86.RDI), xmm0),
		ins(x86.Mnem{Op: x86.OpCVTSI2SD, Width: x86.W32}, mem, xmm9),
		ins(x86.Mnem{Op: x86.OpCVTSI2SD, Width: x86.W64}, x86.RegOp(x86.R10), xmm0),
		ins(x86.Mnem{Op: x86.OpCVTTSS2SI, Width: x86.W32}, xmm9, x86.RegOp(x86.EAX)),
		ins(x86.Mnem{Op: x86.OpCVTTSS2SI, Width: x86.W64}, mem, x86.RegOp(x86.RAX)),
		ins(x86.Mnem{Op: x86.OpCVTTSD2SI, Width: x86.W32}, xmm0, x86.RegOp(x86.R10D)),
		ins(x86.Mnem{Op: x86.OpCVTTSD2SI, Width: x86.W64}, xmm0, x86.RegOp(x86.R10)),
	)

	// Lock-prefixed read-modify-write.
	locked := ins(x86.Mnem{Op: x86.OpADD, Width: x86.W32}, x86.Imm(1), mem)
	locked.Lock = true
	out = append(out, locked)

	return out
}

// TestDecodeEncodeInverse: decode(encode(x)) == x for one instance of
// every instruction form the encoder supports, and the re-encoding of
// the decoded instruction reproduces the bytes. Together with
// TestTableSync this is the decode↔encode oracle over the encoder's
// whole surface.
func TestDecodeEncodeInverse(t *testing.T) {
	for _, in := range syncCases() {
		b, err := encode.Encode(in, &encode.Ctx{})
		if err != nil {
			t.Errorf("%s: encode: %v", in, err)
			continue
		}
		r, err := One(b, 0)
		if err != nil {
			t.Errorf("%s (%x): decode: %v", in, b, err)
			continue
		}
		if r.Len != len(b) {
			t.Errorf("%s (%x): decoded %d of %d bytes", in, b, r.Len, len(b))
			continue
		}
		if !reflect.DeepEqual(r.Inst, in) {
			t.Errorf("%s (%x): decoded to %s\n got %#v\nwant %#v", in, b, r.Inst, r.Inst, in)
			continue
		}
		b2, err := encode.Encode(r.Inst, &encode.Ctx{})
		if err != nil {
			t.Errorf("%s: re-encode: %v", in, err)
			continue
		}
		if string(b2) != string(b) {
			t.Errorf("%s: re-encodes to %x, want %x", in, b2, b)
		}
	}
}
