// Package decode is the binary front end of MAO: a table-driven
// x86-64 instruction decoder covering exactly the instruction surface
// the companion encoder (mao/internal/x86/encode) can emit — legacy
// and REX prefixes, 1-3 byte opcodes, ModRM/SIB/displacement forms,
// every immediate width, and the grouped ALU/shift/group3/SSE/prefetch
// encodings, whose dispatch tables are derived from the encoder's own
// form tables at init time (see tables.go).
//
// One decodes a single instruction, All a whole buffer, and ToUnit
// (lift.go) lifts a raw .text blob into the IR so the full pipeline —
// passes, MAOCHECK, MAOVERIFY, relaxation — runs unchanged on machine
// code. Together with the encoder it forms a differential oracle: for
// encoder-produced (canonical) byte streams, encode(decode(bytes)) ==
// bytes; for arbitrary decodable input the chain reaches that
// canonical fixpoint after one re-encode. FuzzDecodeEncodeRoundtrip
// and the sync test pin both properties.
//
// Decoding never panics on malformed input: every failure is a
// structured *Error carrying the byte offset of the offending
// instruction.
package decode

import (
	"fmt"

	"mao/internal/x86"
)

// Error is a structured decode failure: the buffer offset of the
// instruction that failed to decode, plus a description.
type Error struct {
	Offset int
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("decode: offset %#x: %s", e.Offset, e.Msg)
}

// Decoded is one decoded instruction with its position metadata.
type Decoded struct {
	// Inst is the lifted instruction. For relative branches (IsRel)
	// its target operand is a placeholder label with an empty symbol;
	// ToUnit rewrites it to a synthetic label.
	Inst *x86.Inst
	// Off is the byte offset of the instruction's first byte within
	// the decoded buffer; Len its encoded length.
	Off int
	Len int
	// RelTarget is the branch target as a buffer offset (next
	// instruction + displacement) when IsRel is set: the instruction
	// is a direct call/jmp/jcc with a relative displacement.
	RelTarget int64
	IsRel     bool
	// Long marks a direct jmp/jcc that used the rel32 form.
	Long bool
}

// One decodes the first instruction of b. off is the offset of b[0]
// within the enclosing buffer; it positions RelTarget and error
// offsets, not the bytes themselves.
func One(b []byte, off int) (*Decoded, error) {
	d := &dec{b: b, off: off}
	in, err := d.insn()
	if err != nil {
		return nil, err
	}
	if d.rep != 0 && !d.repUsed {
		return nil, d.errf("dangling %#x prefix", d.rep)
	}
	if d.opsize && !d.opsizeUsed {
		return nil, d.errf("dangling 66 operand-size prefix")
	}
	if d.pos > 15 {
		return nil, d.errf("instruction exceeds 15 bytes")
	}
	r := &Decoded{Inst: in, Off: off, Len: d.pos, RelTarget: d.relTarget, IsRel: d.isRel, Long: d.long}
	return r, nil
}

// All decodes the whole buffer into consecutive instructions.
func All(b []byte) ([]*Decoded, error) {
	var out []*Decoded
	for off := 0; off < len(b); {
		r, err := One(b[off:], off)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		off += r.Len
	}
	return out, nil
}

// dec decodes one instruction. b is the remaining buffer starting at
// the instruction; pos the read cursor within it; off the
// instruction's offset in the enclosing buffer (for errors and
// relative targets).
type dec struct {
	b   []byte
	off int
	pos int

	opsize     bool // 66 seen
	opsizeUsed bool
	lock       bool // F0 seen
	rep        byte // F2 or F3 (0 = none)
	repUsed    bool
	hasREX     bool
	rex        byte // low nibble: WRXB

	relTarget int64
	isRel     bool
	long      bool
}

func (d *dec) errf(format string, args ...any) error {
	return &Error{Offset: d.off, Msg: fmt.Sprintf(format, args...)}
}

func (d *dec) errTruncated() error { return d.errf("truncated instruction") }

func (d *dec) u8() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, d.errTruncated()
	}
	c := d.b[d.pos]
	d.pos++
	return c, nil
}

// i8/i16/i32 read sign-extended little-endian immediates; i64 raw.
func (d *dec) i8() (int64, error) {
	c, err := d.u8()
	return int64(int8(c)), err
}

func (d *dec) i16() (int64, error) {
	if d.pos+2 > len(d.b) {
		return 0, d.errTruncated()
	}
	v := int64(int16(uint16(d.b[d.pos]) | uint16(d.b[d.pos+1])<<8))
	d.pos += 2
	return v, nil
}

func (d *dec) i32() (int64, error) {
	if d.pos+4 > len(d.b) {
		return 0, d.errTruncated()
	}
	v := int64(int32(uint32(d.b[d.pos]) | uint32(d.b[d.pos+1])<<8 |
		uint32(d.b[d.pos+2])<<16 | uint32(d.b[d.pos+3])<<24))
	d.pos += 4
	return v, nil
}

func (d *dec) i64() (int64, error) {
	lo, err := d.i32()
	if err != nil {
		return 0, err
	}
	hi, err := d.i32()
	if err != nil {
		return 0, err
	}
	return int64(uint64(uint32(lo)) | uint64(hi)<<32), nil
}

func (d *dec) rexW() bool { return d.hasREX && d.rex&8 != 0 }
func (d *dec) rexR() int  { return int(d.rex>>2) & 1 }
func (d *dec) rexX() int  { return int(d.rex>>1) & 1 }
func (d *dec) rexB() int  { return int(d.rex) & 1 }

// gprW resolves the operand width of a non-byte GPR instruction from
// the REX.W bit and the 66 prefix, consuming the latter.
func (d *dec) gprW() x86.Width {
	if d.rexW() {
		return x86.W64
	}
	if d.opsize {
		d.opsizeUsed = true
		return x86.W16
	}
	return x86.W32
}

// reg8 maps a byte-register number: with any REX prefix present the
// uniform set applies (4..7 are spl/bpl/sil/dil), without one the
// legacy high-byte registers (4..7 are ah/ch/dh/bh).
func (d *dec) reg8(num int) x86.Reg {
	if !d.hasREX && num >= 4 && num < 8 {
		return x86.AH + x86.Reg(num-4)
	}
	return x86.AL + x86.Reg(num)
}

// gpr maps a register number at the given width.
func (d *dec) gpr(num int, w x86.Width) x86.Reg {
	switch w {
	case x86.W8:
		return d.reg8(num)
	case x86.W16:
		return x86.AX + x86.Reg(num)
	case x86.W32:
		return x86.EAX + x86.Reg(num)
	default:
		return x86.RAX + x86.Reg(num)
	}
}

func xmm(num int) x86.Reg { return x86.XMM0 + x86.Reg(num) }

// modrm is a decoded ModRM byte (with SIB and displacement when the
// addressing form carries them). regNum and rmNum include the REX
// extension bits; mem is meaningful when mod != 3.
type modrm struct {
	mod    byte
	regNum int
	rmNum  int
	mem    x86.Mem
}

func (m *modrm) isMem() bool { return m.mod != 3 }

// modRM reads the ModRM byte and, for memory forms, the SIB byte and
// displacement.
func (d *dec) modRM() (modrm, error) {
	c, err := d.u8()
	if err != nil {
		return modrm{}, err
	}
	m := modrm{mod: c >> 6, regNum: int(c>>3&7) | d.rexR()<<3}
	rm := int(c & 7)
	if m.mod == 3 {
		m.rmNum = rm | d.rexB()<<3
		return m, nil
	}

	// Memory forms.
	if m.mod == 0 && rm == 5 {
		// RIP-relative: disp32 from the end of the instruction. The
		// raw displacement is preserved; symbolization is the
		// lifter's job (and frozen displacements re-encode
		// byte-identically at the same layout).
		disp, err := d.i32()
		if err != nil {
			return modrm{}, err
		}
		m.mem = x86.Mem{Base: x86.RIP, Disp: disp}
		return m, nil
	}

	var mem x86.Mem
	if rm == 4 {
		sib, err := d.u8()
		if err != nil {
			return modrm{}, err
		}
		idx := int(sib>>3&7) | d.rexX()<<3
		if idx != 4 { // index 100 with REX.X=0 means "no index"
			mem.Index = x86.RAX + x86.Reg(idx)
			mem.Scale = 1 << (sib >> 6)
		} else if sib>>6 != 0 {
			return modrm{}, d.errf("SIB scale with no index register")
		}
		if sib&7 == 5 && m.mod == 0 {
			// No base: disp32 is mandatory.
			disp, err := d.i32()
			if err != nil {
				return modrm{}, err
			}
			mem.Disp = disp
			m.mem = mem
			return m, nil
		}
		mem.Base = x86.RAX + x86.Reg(int(sib&7)|d.rexB()<<3)
	} else {
		mem.Base = x86.RAX + x86.Reg(rm|d.rexB()<<3)
	}
	switch m.mod {
	case 1:
		disp, err := d.i8()
		if err != nil {
			return modrm{}, err
		}
		mem.Disp = disp
	case 2:
		disp, err := d.i32()
		if err != nil {
			return modrm{}, err
		}
		mem.Disp = disp
	}
	m.mem = mem
	return m, nil
}

// rmOp renders the r/m side of a ModRM as an operand of the given GPR
// width.
func (d *dec) rmOp(m modrm, w x86.Width) x86.Operand {
	if m.isMem() {
		return x86.MemOp(m.mem)
	}
	return x86.RegOp(d.gpr(m.rmNum, w))
}

// rmXMM renders the r/m side as an XMM register or memory operand.
func rmXMM(m modrm) x86.Operand {
	if m.isMem() {
		return x86.MemOp(m.mem)
	}
	return x86.RegOp(xmm(m.rmNum))
}

// inst builds the instruction, applying the same width inference the
// assembly parser applies so decoded and parsed instructions carry
// identical field values.
func (d *dec) inst(m x86.Mnem, args ...x86.Operand) *x86.Inst {
	in := x86.NewInst(m, args...)
	in.Lock = d.lock
	return in
}

// rel records a relative-branch displacement: the target is the
// offset of the next instruction plus the displacement.
func (d *dec) rel(disp int64, long bool) {
	d.relTarget = int64(d.off+d.pos) + disp
	d.isRel = true
	d.long = long
}

// sseSelector resolves the mandatory-prefix selector of a 0F-map SSE
// opcode (0, 66, F2 or F3), consuming the prefix it selects.
func (d *dec) sseSelector() (byte, error) {
	if d.rep != 0 && d.opsize {
		return 0, d.errf("conflicting 66 and %#x prefixes", d.rep)
	}
	if d.rep != 0 {
		d.repUsed = true
		return d.rep, nil
	}
	if d.opsize {
		d.opsizeUsed = true
		return 0x66, nil
	}
	return 0, nil
}

// insn decodes prefixes, REX and the opcode, dispatching to the form
// handlers.
func (d *dec) insn() (*x86.Inst, error) {
	// Legacy prefixes, in any order.
	for {
		if d.pos >= len(d.b) {
			if d.pos > 0 {
				return nil, d.errf("dangling prefix at end of buffer")
			}
			return nil, d.errTruncated()
		}
		c := d.b[d.pos]
		switch c {
		case 0x66:
			d.opsize = true
		case 0xF0:
			d.lock = true
		case 0xF2, 0xF3:
			d.rep = c
		case 0x67:
			return nil, d.errf("unsupported prefix %#x (address-size override)", c)
		case 0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65:
			return nil, d.errf("unsupported prefix %#x (segment override)", c)
		default:
			goto prefixesDone
		}
		d.pos++
		if d.pos >= 15 {
			return nil, d.errf("instruction exceeds 15 bytes")
		}
	}
prefixesDone:

	// REX, if present, must be the last prefix.
	if c := d.b[d.pos]; c&0xF0 == 0x40 {
		d.hasREX = true
		d.rex = c & 0x0F
		d.pos++
	}

	opc, err := d.u8()
	if err != nil {
		return nil, err
	}

	// The 00-3F ALU rows: forms +0/+1 (MR), +2/+3 (RM), +4/+5
	// (accumulator, immediate).
	if opc < 0x40 && opc&7 <= 5 {
		return d.aluRow(opc)
	}

	switch {
	case opc >= 0x50 && opc <= 0x57:
		return d.inst(x86.Mnem{Op: x86.OpPUSH},
			x86.RegOp(d.gpr(int(opc-0x50)|d.rexB()<<3, x86.W64))), nil
	case opc >= 0x58 && opc <= 0x5F:
		return d.inst(x86.Mnem{Op: x86.OpPOP},
			x86.RegOp(d.gpr(int(opc-0x58)|d.rexB()<<3, x86.W64))), nil
	case opc >= 0x70 && opc <= 0x7F: // jcc rel8
		disp, err := d.i8()
		if err != nil {
			return nil, err
		}
		d.rel(disp, false)
		return d.inst(x86.Mnem{Op: x86.OpJCC, Cond: x86.Cond(opc - 0x70)}, x86.LabelOp("")), nil
	case opc >= 0x90 && opc <= 0x97:
		return d.xchgShort(opc)
	case opc >= 0xB0 && opc <= 0xB7: // mov r8, imm8
		v, err := d.i8()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOV, Width: x86.W8},
			x86.Imm(v), x86.RegOp(d.reg8(int(opc-0xB0)|d.rexB()<<3))), nil
	case opc >= 0xB8 && opc <= 0xBF:
		return d.movImmReg(opc)
	}

	switch opc {
	case 0x63: // movslq
		if !d.rexW() {
			return nil, d.errf("movslq (63) without REX.W")
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOVSX, Width: x86.W64, SrcWidth: x86.W32},
			d.rmOp(m, x86.W32), x86.RegOp(d.gpr(m.regNum, x86.W64))), nil
	case 0x68, 0x6A: // push imm32 / imm8
		var v int64
		var err error
		if opc == 0x68 {
			v, err = d.i32()
		} else {
			v, err = d.i8()
		}
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpPUSH}, x86.Imm(v)), nil
	case 0x69, 0x6B: // imul r, r/m, immv / imm8
		w := d.gprW()
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		var v int64
		switch {
		case opc == 0x6B:
			v, err = d.i8()
		case w == x86.W16:
			v, err = d.i16()
		default:
			v, err = d.i32()
		}
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpIMUL, Width: w},
			x86.Imm(v), d.rmOp(m, w), x86.RegOp(d.gpr(m.regNum, w))), nil
	case 0x80, 0x81, 0x83:
		return d.aluImmGroup(opc)
	case 0x84, 0x85: // test r, r/m
		w := x86.W8
		if opc == 0x85 {
			w = d.gprW()
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpTEST, Width: w},
			x86.RegOp(d.gpr(m.regNum, w)), d.rmOp(m, w)), nil
	case 0x86, 0x87: // xchg r, r/m
		w := x86.W8
		if opc == 0x87 {
			w = d.gprW()
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpXCHG, Width: w},
			x86.RegOp(d.gpr(m.regNum, w)), d.rmOp(m, w)), nil
	case 0x88, 0x89: // mov r, r/m (MR)
		w := x86.W8
		if opc == 0x89 {
			w = d.gprW()
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOV, Width: w},
			x86.RegOp(d.gpr(m.regNum, w)), d.rmOp(m, w)), nil
	case 0x8A, 0x8B: // mov r/m, r (RM)
		w := x86.W8
		if opc == 0x8B {
			w = d.gprW()
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOV, Width: w},
			d.rmOp(m, w), x86.RegOp(d.gpr(m.regNum, w))), nil
	case 0x8D: // lea
		w := d.gprW()
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		if !m.isMem() {
			return nil, d.errf("lea with register source")
		}
		return d.inst(x86.Mnem{Op: x86.OpLEA, Width: w},
			x86.MemOp(m.mem), x86.RegOp(d.gpr(m.regNum, w))), nil
	case 0x8F: // pop r/m
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		if m.regNum&7 != 0 {
			return nil, d.errf("8F /%d is not an instruction", m.regNum&7)
		}
		return d.inst(x86.Mnem{Op: x86.OpPOP}, d.rmOp(m, x86.W64)), nil
	case 0x98: // cwtl / cltq (REX.W)
		if d.rexW() {
			return d.inst(x86.Mnem{Op: x86.OpCLTQ}), nil
		}
		return d.inst(x86.Mnem{Op: x86.OpCWTL}), nil
	case 0x99: // cltd / cqto (REX.W)
		if d.rexW() {
			return d.inst(x86.Mnem{Op: x86.OpCQTO}), nil
		}
		return d.inst(x86.Mnem{Op: x86.OpCLTD}), nil
	case 0xA8: // test al, imm8
		v, err := d.i8()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpTEST, Width: x86.W8},
			x86.Imm(v), x86.RegOp(x86.AL)), nil
	case 0xA9: // test acc, immv
		w := d.gprW()
		v, err := d.immv(w)
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpTEST, Width: w},
			x86.Imm(v), x86.RegOp(x86.RAX.WithWidth(w))), nil
	case 0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3:
		return d.shiftGroup(opc)
	case 0xC3:
		return d.inst(x86.Mnem{Op: x86.OpRET}), nil
	case 0xC6, 0xC7: // mov r/m, imm (group 11)
		w := x86.W8
		if opc == 0xC7 {
			w = d.gprW()
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		if m.regNum&7 != 0 {
			return nil, d.errf("%#x /%d is not an instruction", opc, m.regNum&7)
		}
		var v int64
		switch w {
		case x86.W8:
			v, err = d.i8()
		case x86.W16:
			v, err = d.i16()
		default: // W32 and W64 both take a sign-extended imm32
			v, err = d.i32()
		}
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOV, Width: w}, x86.Imm(v), d.rmOp(m, w)), nil
	case 0xC9:
		return d.inst(x86.Mnem{Op: x86.OpLEAVE}), nil
	case 0xE8: // call rel32
		disp, err := d.i32()
		if err != nil {
			return nil, err
		}
		d.rel(disp, true)
		return d.inst(x86.Mnem{Op: x86.OpCALL}, x86.LabelOp("")), nil
	case 0xE9: // jmp rel32
		disp, err := d.i32()
		if err != nil {
			return nil, err
		}
		d.rel(disp, true)
		return d.inst(x86.Mnem{Op: x86.OpJMP}, x86.LabelOp("")), nil
	case 0xEB: // jmp rel8
		disp, err := d.i8()
		if err != nil {
			return nil, err
		}
		d.rel(disp, false)
		return d.inst(x86.Mnem{Op: x86.OpJMP}, x86.LabelOp("")), nil
	case 0xF4:
		return d.inst(x86.Mnem{Op: x86.OpHLT}), nil
	case 0xF6, 0xF7:
		return d.group3(opc)
	case 0xFE: // inc/dec r/m8
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		op := x86.OpINC
		switch m.regNum & 7 {
		case 0:
		case 1:
			op = x86.OpDEC
		default:
			return nil, d.errf("FE /%d is not an instruction", m.regNum&7)
		}
		return d.inst(x86.Mnem{Op: op, Width: x86.W8}, d.rmOp(m, x86.W8)), nil
	case 0xFF:
		return d.group5()
	case 0x0F:
		return d.twoByte()
	case 0x90:
		// Unreachable (0x90..0x97 handled above), kept for clarity.
		return d.nop90()
	}
	return nil, d.errf("unsupported opcode %#02x", opc)
}

// immv reads the immediate of an operand-sized form: imm16 for W16,
// sign-extended imm32 otherwise.
func (d *dec) immv(w x86.Width) (int64, error) {
	if w == x86.W16 {
		return d.i16()
	}
	return d.i32()
}

// aluRow decodes the 00-3F two-operand ALU rows.
func (d *dec) aluRow(opc byte) (*x86.Inst, error) {
	op := aluByRow[opc>>3]
	if op == x86.OpInvalid {
		return nil, d.errf("unsupported opcode %#02x", opc)
	}
	switch opc & 7 {
	case 0, 1: // r, r/m (MR)
		w := x86.W8
		if opc&1 == 1 {
			w = d.gprW()
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op, Width: w},
			x86.RegOp(d.gpr(m.regNum, w)), d.rmOp(m, w)), nil
	case 2, 3: // r/m, r (RM)
		w := x86.W8
		if opc&1 == 1 {
			w = d.gprW()
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op, Width: w},
			d.rmOp(m, w), x86.RegOp(d.gpr(m.regNum, w))), nil
	case 4: // al, imm8
		v, err := d.i8()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op, Width: x86.W8},
			x86.Imm(v), x86.RegOp(x86.AL)), nil
	default: // 5: acc, immv
		w := d.gprW()
		v, err := d.immv(w)
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op, Width: w},
			x86.Imm(v), x86.RegOp(x86.RAX.WithWidth(w))), nil
	}
}

// aluImmGroup decodes the 80/81/83 immediate group.
func (d *dec) aluImmGroup(opc byte) (*x86.Inst, error) {
	w := x86.W8
	if opc != 0x80 {
		w = d.gprW()
	}
	m, err := d.modRM()
	if err != nil {
		return nil, err
	}
	op := aluByDigit[m.regNum&7]
	if op == x86.OpInvalid {
		return nil, d.errf("%#02x /%d is not in the ALU group", opc, m.regNum&7)
	}
	var v int64
	if opc == 0x81 {
		v, err = d.immv(w)
	} else { // 80 and 83 take imm8 (83 sign-extends into w)
		v, err = d.i8()
	}
	if err != nil {
		return nil, err
	}
	return d.inst(x86.Mnem{Op: op, Width: w}, x86.Imm(v), d.rmOp(m, w)), nil
}

// shiftGroup decodes C0/C1 (imm8 count), D0/D1 (count 1) and D2/D3
// (count in %cl).
func (d *dec) shiftGroup(opc byte) (*x86.Inst, error) {
	w := x86.W8
	if opc&1 == 1 {
		w = d.gprW()
	}
	m, err := d.modRM()
	if err != nil {
		return nil, err
	}
	op := shiftByDigit[m.regNum&7]
	if op == x86.OpInvalid {
		return nil, d.errf("%#02x /%d is not in the shift group", opc, m.regNum&7)
	}
	switch opc {
	case 0xC0, 0xC1:
		v, err := d.i8()
		if err != nil {
			return nil, err
		}
		if v == 1 {
			// The encoder emits the shorter D0/D1 form for a count of
			// one; canonicalize the long spelling so re-encoding is an
			// inverse (shift-by-1 is the one-operand AT&T form).
			return d.inst(x86.Mnem{Op: op, Width: w}, d.rmOp(m, w)), nil
		}
		return d.inst(x86.Mnem{Op: op, Width: w}, x86.Imm(v), d.rmOp(m, w)), nil
	case 0xD0, 0xD1: // implicit count of 1, the one-operand AT&T form
		return d.inst(x86.Mnem{Op: op, Width: w}, d.rmOp(m, w)), nil
	default: // D2, D3: count in %cl
		return d.inst(x86.Mnem{Op: op, Width: w}, x86.RegOp(x86.CL), d.rmOp(m, w)), nil
	}
}

// group3 decodes F6/F7: /0 is TEST imm, /2../7 the group3 table.
func (d *dec) group3(opc byte) (*x86.Inst, error) {
	w := x86.W8
	if opc == 0xF7 {
		w = d.gprW()
	}
	m, err := d.modRM()
	if err != nil {
		return nil, err
	}
	if m.regNum&7 == 0 { // test r/m, imm
		var v int64
		if w == x86.W8 {
			v, err = d.i8()
		} else {
			v, err = d.immv(w)
		}
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpTEST, Width: w}, x86.Imm(v), d.rmOp(m, w)), nil
	}
	op := group3ByDigit[m.regNum&7]
	if op == x86.OpInvalid {
		return nil, d.errf("%#02x /%d is not an instruction", opc, m.regNum&7)
	}
	return d.inst(x86.Mnem{Op: op, Width: w}, d.rmOp(m, w)), nil
}

// group5 decodes FF: inc/dec, indirect call/jmp, push.
func (d *dec) group5() (*x86.Inst, error) {
	// The width prefix applies only to the inc/dec/push members; peek
	// at the digit before consuming it.
	m, err := d.modRM()
	if err != nil {
		return nil, err
	}
	switch m.regNum & 7 {
	case 0, 1:
		w := d.gprW()
		op := x86.OpINC
		if m.regNum&7 == 1 {
			op = x86.OpDEC
		}
		return d.inst(x86.Mnem{Op: op, Width: w}, d.rmOp(m, w)), nil
	case 2, 4: // call/jmp indirect
		op := x86.OpCALL
		if m.regNum&7 == 4 {
			op = x86.OpJMP
		}
		a := d.rmOp(m, x86.W64)
		a.Star = true
		return d.inst(x86.Mnem{Op: op}, a), nil
	case 6: // push r/m64
		return d.inst(x86.Mnem{Op: x86.OpPUSH}, d.rmOp(m, x86.W64)), nil
	}
	return nil, d.errf("FF /%d is not supported", m.regNum&7)
}

// nop90 decodes the bare 0x90 row member: nop, the 66 90 two-byte
// nop, or pause (F3 90).
func (d *dec) nop90() (*x86.Inst, error) {
	if d.rep == 0xF3 {
		d.repUsed = true
		return d.inst(x86.Mnem{Op: x86.OpPAUSE}), nil
	}
	if d.opsize {
		d.opsizeUsed = true
		return d.inst(x86.Mnem{Op: x86.OpNOP, Width: x86.W16}), nil
	}
	return d.inst(x86.Mnem{Op: x86.OpNOP}), nil
}

// xchgShort decodes the 90+r row: nop/pause for the plain 0x90,
// otherwise xchg acc, r.
func (d *dec) xchgShort(opc byte) (*x86.Inst, error) {
	num := int(opc-0x90) | d.rexB()<<3
	if num == 0 && !d.rexW() {
		return d.nop90()
	}
	w := d.gprW()
	return d.inst(x86.Mnem{Op: x86.OpXCHG, Width: w},
		x86.RegOp(d.gpr(num, w)), x86.RegOp(x86.RAX.WithWidth(w))), nil
}

// movImmReg decodes B8+r: mov r, immv — with REX.W the imm64 movabs
// form, the canonical encoding of 64-bit immediates.
func (d *dec) movImmReg(opc byte) (*x86.Inst, error) {
	num := int(opc-0xB8) | d.rexB()<<3
	if d.rexW() {
		v, err := d.i64()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOVABS, Width: x86.W64},
			x86.Imm(v), x86.RegOp(d.gpr(num, x86.W64))), nil
	}
	w := d.gprW()
	v, err := d.immv(w)
	if err != nil {
		return nil, err
	}
	return d.inst(x86.Mnem{Op: x86.OpMOV, Width: w},
		x86.Imm(v), x86.RegOp(d.gpr(num, w))), nil
}

// twoByte decodes the 0F map.
func (d *dec) twoByte() (*x86.Inst, error) {
	opc, err := d.u8()
	if err != nil {
		return nil, err
	}

	switch {
	case opc >= 0x40 && opc <= 0x4F: // cmovcc
		w := d.gprW()
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpCMOV, Cond: x86.Cond(opc - 0x40), Width: w},
			d.rmOp(m, w), x86.RegOp(d.gpr(m.regNum, w))), nil
	case opc >= 0x80 && opc <= 0x8F: // jcc rel32
		disp, err := d.i32()
		if err != nil {
			return nil, err
		}
		d.rel(disp, true)
		return d.inst(x86.Mnem{Op: x86.OpJCC, Cond: x86.Cond(opc - 0x80)}, x86.LabelOp("")), nil
	case opc >= 0x90 && opc <= 0x9F: // setcc
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpSET, Cond: x86.Cond(opc - 0x90)},
			d.rmOp(m, x86.W8)), nil
	}

	switch opc {
	case 0x0B:
		return d.inst(x86.Mnem{Op: x86.OpUD2}), nil
	case 0x18: // prefetch hints
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		if !m.isMem() {
			return nil, d.errf("prefetch with a register operand")
		}
		op := prefetchByDigit[m.regNum&7]
		if op == x86.OpInvalid || m.regNum&7 > 3 {
			return nil, d.errf("0F 18 /%d is not a prefetch hint", m.regNum&7)
		}
		return d.inst(x86.Mnem{Op: op}, x86.MemOp(m.mem)), nil
	case 0x1F: // multi-byte nop
		w := x86.W32
		if d.opsize {
			d.opsizeUsed = true
			w = x86.W16
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		if m.regNum&7 != 0 {
			return nil, d.errf("0F 1F /%d is not a nop form", m.regNum&7)
		}
		if !m.isMem() {
			return nil, d.errf("0F 1F with a register operand")
		}
		return d.inst(x86.Mnem{Op: x86.OpNOP, Width: w}, x86.MemOp(m.mem)), nil
	case 0xAF: // imul r, r/m
		w := d.gprW()
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpIMUL, Width: w},
			d.rmOp(m, w), x86.RegOp(d.gpr(m.regNum, w))), nil
	case 0xB6, 0xB7, 0xBE, 0xBF: // movzx/movsx
		op := x86.OpMOVZX
		if opc >= 0xBE {
			op = x86.OpMOVSX
		}
		srcW := x86.W8
		if opc&1 == 1 {
			srcW = x86.W16
		}
		w := d.gprW()
		if w <= srcW {
			return nil, d.errf("%s with a destination no wider than its source", op)
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op, Width: w, SrcWidth: srcW},
			d.rmOp(m, srcW), x86.RegOp(d.gpr(m.regNum, w))), nil
	}

	return d.twoByteSSE(opc)
}

// twoByteSSE decodes the SSE members of the 0F map, dispatching on the
// mandatory-prefix selector.
func (d *dec) twoByteSSE(opc byte) (*x86.Inst, error) {
	sel, err := d.sseSelector()
	if err != nil {
		return nil, err
	}

	// The irregular moves and conversions first.
	switch opc {
	case 0x10, 0x11: // movss/movsd/movups load & store
		var op x86.Op
		switch sel {
		case 0xF3:
			op = x86.OpMOVSS
		case 0xF2:
			op = x86.OpMOVSD
		case 0:
			op = x86.OpMOVUPS
		default:
			return nil, d.errf("unsupported SSE form %#x 0F %02X", sel, opc)
		}
		return d.sseMove(op, opc&1 == 0)
	case 0x28, 0x29: // movaps
		if sel != 0 {
			return nil, d.errf("unsupported SSE form %#x 0F %02X", sel, opc)
		}
		return d.sseMove(x86.OpMOVAPS, opc&1 == 0)
	case 0x6F, 0x7F: // movdqa/movdqu
		var op x86.Op
		switch sel {
		case 0x66:
			op = x86.OpMOVDQA
		case 0xF3:
			op = x86.OpMOVDQU
		default:
			return nil, d.errf("unsupported SSE form %#x 0F %02X", sel, opc)
		}
		return d.sseMove(op, opc == 0x6F)
	case 0x6E, 0x7E: // movd/movq GPR/mem <-> xmm
		return d.movDQ(opc, sel)
	case 0xD6: // movq xmm -> m64 (store form)
		if sel != 0x66 {
			return nil, d.errf("unsupported SSE form %#x 0F D6", sel)
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOVQX},
			x86.RegOp(xmm(m.regNum)), rmXMM(m)), nil
	case 0x2A: // cvtsi2ss/sd
		var op x86.Op
		switch sel {
		case 0xF3:
			op = x86.OpCVTSI2SS
		case 0xF2:
			op = x86.OpCVTSI2SD
		default:
			return nil, d.errf("unsupported SSE form %#x 0F 2A", sel)
		}
		w := x86.W32
		if d.rexW() {
			w = x86.W64
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op, Width: w},
			d.rmOp(m, w), x86.RegOp(xmm(m.regNum))), nil
	case 0x2C: // cvttss2si/cvttsd2si
		var op x86.Op
		switch sel {
		case 0xF3:
			op = x86.OpCVTTSS2SI
		case 0xF2:
			op = x86.OpCVTTSD2SI
		default:
			return nil, d.errf("unsupported SSE form %#x 0F 2C", sel)
		}
		w := x86.W32
		if d.rexW() {
			w = x86.W64
		}
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op, Width: w},
			rmXMM(m), x86.RegOp(d.gpr(m.regNum, w))), nil
	}

	// The regular xmm <- xmm/m arithmetic forms, straight from the
	// encoder-derived table.
	if op, ok := sseByPrefOpc[uint16(sel)<<8|uint16(opc)]; ok {
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: op}, rmXMM(m), x86.RegOp(xmm(m.regNum))), nil
	}
	return nil, d.errf("unsupported opcode 0F %02X (selector %#x)", opc, sel)
}

// sseMove decodes a load-form (rm -> xmm) or store-form (xmm -> rm)
// SSE move.
func (d *dec) sseMove(op x86.Op, load bool) (*x86.Inst, error) {
	m, err := d.modRM()
	if err != nil {
		return nil, err
	}
	if load {
		return d.inst(x86.Mnem{Op: op}, rmXMM(m), x86.RegOp(xmm(m.regNum))), nil
	}
	return d.inst(x86.Mnem{Op: op}, x86.RegOp(xmm(m.regNum)), rmXMM(m)), nil
}

// movDQ decodes 0F 6E/7E: movd/movq between GPRs/memory and xmm, and
// the F3 0F 7E xmm<-xmm/m64 movq form.
func (d *dec) movDQ(opc, sel byte) (*x86.Inst, error) {
	if sel == 0xF3 && opc == 0x7E { // movq xmm/m64 -> xmm
		m, err := d.modRM()
		if err != nil {
			return nil, err
		}
		return d.inst(x86.Mnem{Op: x86.OpMOVQX}, rmXMM(m), x86.RegOp(xmm(m.regNum))), nil
	}
	if sel != 0x66 {
		return nil, d.errf("unsupported SSE form %#x 0F %02X", sel, opc)
	}
	op := x86.OpMOVD
	w := x86.W32
	if d.rexW() {
		op, w = x86.OpMOVQX, x86.W64
	}
	m, err := d.modRM()
	if err != nil {
		return nil, err
	}
	if opc == 0x6E { // GPR/mem -> xmm
		return d.inst(x86.Mnem{Op: op}, d.rmOp(m, w), x86.RegOp(xmm(m.regNum))), nil
	}
	// xmm -> GPR/mem
	return d.inst(x86.Mnem{Op: op}, x86.RegOp(xmm(m.regNum)), d.rmOp(m, w)), nil
}
