package decode

import (
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

// The decoder's group dispatch tables are not hand-written: they are
// the encoder's own form tables (encode.ALUForms and friends) reversed
// at init time. An opcode added to an encoder group therefore decodes
// with no decoder change, and the sync test in sync_test.go pins the
// remaining, non-tabular forms against the encoder behaviorally.
var (
	// aluByRow maps a 00-3F opcode row (opcode>>3) to its ALU op.
	aluByRow [8]x86.Op
	// aluByDigit maps the /digit of the 80/81/83 immediate group.
	aluByDigit [8]x86.Op
	// shiftByDigit maps the /digit of the C0/C1/D0-D3 shift group.
	shiftByDigit [8]x86.Op
	// group3ByDigit maps the /digit of the F6/F7 group (digits 0 and 1
	// stay OpInvalid: /0 is the TEST immediate form, handled apart).
	group3ByDigit [8]x86.Op
	// prefetchByDigit maps the /digit of the 0F 18 prefetch hints.
	prefetchByDigit [8]x86.Op
	// sseByPrefOpc maps mandatory-prefix<<8|opcode to the regular SSE
	// arithmetic op.
	sseByPrefOpc map[uint16]x86.Op
)

func init() {
	for op, f := range encode.ALUForms() {
		aluByRow[f.Base>>3] = op
		aluByDigit[f.Digit] = op
	}
	for op, d := range encode.ShiftDigits() {
		shiftByDigit[d] = op
	}
	for op, d := range encode.Group3Digits() {
		group3ByDigit[d] = op
	}
	for op, d := range encode.PrefetchDigits() {
		prefetchByDigit[d] = op
	}
	sseByPrefOpc = make(map[uint16]x86.Op)
	for op, f := range encode.SSEArithForms() {
		sseByPrefOpc[uint16(f.Prefix)<<8|uint16(f.Opc)] = op
	}
}

// GroupOps returns every opcode the derived group tables cover. The
// sync test compares this set against the encoder's group tables to
// prove the two sides can never drift.
func GroupOps() map[x86.Op]bool {
	out := make(map[x86.Op]bool)
	for _, t := range [][8]x86.Op{aluByRow, shiftByDigit, group3ByDigit, prefetchByDigit} {
		for _, op := range t {
			if op != x86.OpInvalid {
				out[op] = true
			}
		}
	}
	for _, op := range sseByPrefOpc {
		out[op] = true
	}
	return out
}
