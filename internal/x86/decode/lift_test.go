package decode

import (
	"errors"
	"strings"
	"testing"

	"mao/internal/ir"
	"mao/internal/relax"
	"mao/internal/trace"
)

// countdown is a 7-byte loop:
//
//	0: xorl %eax,%eax;  2: decl %eax;  4: jne 2;  6: ret
const countdownHex = "31c0ffc875fcc3"

func TestToUnit(t *testing.T) {
	code := mustHex(t, countdownHex)
	tr := trace.NewCollector()
	u, err := ToUnit(code, UnitOptions{FileName: "loop.bin", Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}

	// The unit is one analyzed .text function.
	fns := u.Functions()
	if len(fns) != 1 || fns[0].Name != "text" {
		t.Fatalf("functions = %v, want one function %q", fns, "text")
	}

	// The branch target became a synthetic label and the branch was
	// retargeted to it.
	if u.FindLabel(".Lmaodec_2") == nil {
		t.Error("no .Lmaodec_2 label for the branch target at offset 2")
	}
	var branch *ir.Node
	for _, n := range fns[0].Instructions() {
		if sym, ok := n.Inst.BranchTarget(); ok {
			if sym != ".Lmaodec_2" {
				t.Errorf("branch targets %q, want .Lmaodec_2", sym)
			}
			branch = n
		}
	}
	if branch == nil {
		t.Fatal("no direct branch in the lifted unit")
	}

	// Byte-range provenance: the branch was decoded at offset 4.
	if branch.Prov == nil || branch.Prov.Origin.String() != "MAODEC[4]" {
		t.Errorf("branch provenance = %v, want MAODEC[4]", branch.Prov)
	}

	// One KindDecode span with the buffer's stats.
	var span *trace.Span
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindDecode {
			s := s
			span = &s
		}
	}
	if span == nil {
		t.Fatal("no KindDecode span collected")
	}
	if span.Stats["bytes"] != len(code) || span.Stats["instructions"] != 4 ||
		span.Stats["branch_labels"] != 1 {
		t.Errorf("span stats = %v", span.Stats)
	}

	// Relaxation closes the roundtrip: the lifted unit re-encodes to
	// the original bytes.
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img := layout.Image(u, ".text"); string(img) != string(code) {
		t.Errorf("re-encoded image %x, want %x", img, code)
	}
}

// TestToUnitBase: the load address shapes the synthetic label names.
func TestToUnitBase(t *testing.T) {
	u, err := ToUnit(mustHex(t, countdownHex), UnitOptions{Base: 0x401000})
	if err != nil {
		t.Fatal(err)
	}
	if u.FindLabel(".Lmaodec_401002") == nil {
		t.Errorf("no .Lmaodec_401002 label; unit:\n%s", u.String())
	}
}

// TestToUnitEndLabel: a call with a zero rel32 (the encoder's
// unresolved-symbol placeholder) targets the end of the buffer, which
// must lift to a label after the last instruction.
func TestToUnitEndLabel(t *testing.T) {
	// 0: call +0 (target 5); 5: (end)
	u, err := ToUnit(mustHex(t, "e800000000"), UnitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if u.FindLabel(".Lmaodec_5") == nil {
		t.Errorf("no end-of-buffer label; unit:\n%s", u.String())
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img := layout.Image(u, ".text"); string(img) != string(mustHex(t, "e800000000")) {
		t.Errorf("re-encoded image %x", img)
	}
}

// TestToUnitBadTarget: branches into the middle of an instruction or
// outside the buffer are structured errors naming the branch's offset.
func TestToUnitBadTarget(t *testing.T) {
	cases := []struct {
		name string
		hex  string
		want string
	}{
		// 0: jmp 3 — but 3 is inside the movl at 2.
		{"mid-instruction", "eb0131c0c3", "not an instruction boundary"},
		// 0: jmp -3 — before the buffer.
		{"before buffer", "ebfbc3", "outside the buffer"},
		// 0: jmp 9 — past the end.
		{"past end", "eb07c3", "outside the buffer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ToUnit(mustHex(t, c.hex), UnitOptions{})
			var derr *Error
			if !errors.As(err, &derr) {
				t.Fatalf("error is %T (%v), want *decode.Error", err, err)
			}
			if derr.Offset != 0 {
				t.Errorf("offset %d, want 0 (the branch)", derr.Offset)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}
