package decode

import (
	"errors"
	"strings"
	"testing"
)

// TestMalformed: every malformed input class returns a structured
// *Error carrying the byte offset of the offending instruction —
// never a panic, never a zero-length success.
func TestMalformed(t *testing.T) {
	cases := []struct {
		name string
		hex  string
		want string // substring of the error message
	}{
		{"empty buffer", "", "truncated"},
		{"bare REX", "48", "truncated"},
		{"truncated ModRM", "8b", "truncated"},
		{"truncated disp8", "8b45", "truncated"},
		{"truncated disp32", "8b8500", "truncated"},
		{"truncated SIB", "8b04", "truncated"},
		{"ModRM past buffer", "488b8424e803", "truncated"},
		{"truncated imm32", "05341200", "truncated"},
		{"truncated imm64 movabs", "48b8efcdab", "truncated"},
		{"dangling 66 at end", "66", "dangling prefix"},
		{"dangling F3 at end", "f3", "dangling prefix"},
		{"dangling rep on ret", "f3c3", "dangling 0xf3"},
		{"dangling repnz on mov", "f289d8", "dangling 0xf2"},
		{"dangling 66 on pushq", "6650", "dangling 66"},
		{"address-size prefix", "6789d8", "unsupported prefix 0x67"},
		{"cs segment override", "2e89d8", "unsupported prefix 0x2e"},
		{"gs segment override", "6589d8", "unsupported prefix 0x65"},
		{"15-byte prefix overflow", strings.Repeat("f0", 15) + "90", "exceeds 15 bytes"},
		{"undefined opcode", "0fff", "unsupported opcode"},
		{"invalid group digit", "8ff8", "not an instruction"},
		{"F6 digit 1 hole", "f6c801", "not an instruction"},
		{"SIB scale without index", "8b44e000", "scale with no index"},
		{"lea register source", "8dc0", "register source"},
		{"66 with F3 on SSE", "66f30f58c1", "conflicting"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := mustHex(t, c.hex)
			r, err := One(b, 0)
			if err == nil {
				t.Fatalf("decoded %x as %s, want error containing %q", b, r.Inst, c.want)
			}
			var derr *Error
			if !errors.As(err, &derr) {
				t.Fatalf("error is %T, want *decode.Error", err)
			}
			if derr.Offset != 0 {
				t.Errorf("offset %d, want 0", derr.Offset)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// TestMalformedOffset: an error in the middle of a stream reports the
// offset of the instruction that failed, not zero.
func TestMalformedOffset(t *testing.T) {
	// 0: nop; 1: ret; 2: truncated mov
	_, err := All(mustHex(t, "90c38b"))
	var derr *Error
	if !errors.As(err, &derr) {
		t.Fatalf("error is %T (%v), want *decode.Error", err, err)
	}
	if derr.Offset != 2 {
		t.Errorf("offset %#x, want 0x2", derr.Offset)
	}
}

// TestDecodeNeverPanics drives One over a byte sweep of single-byte
// and prefix-wrapped opcodes so every dispatch arm sees short buffers.
func TestDecodeNeverPanics(t *testing.T) {
	prefixes := [][]byte{nil, {0x66}, {0xF2}, {0xF3}, {0x48}, {0x4F}, {0x66, 0x41}, {0x0F}}
	for _, p := range prefixes {
		for b0 := 0; b0 < 256; b0++ {
			for b1 := 0; b1 < 256; b1 += 17 {
				buf := append(append([]byte{}, p...), byte(b0), byte(b1))
				One(buf, 0) // outcome irrelevant; must not panic
			}
		}
	}
}
