package decode

import (
	"encoding/hex"
	"testing"

	"mao/internal/x86/encode"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// reencode re-encodes a decoded instruction at its original position,
// resolving the placeholder branch label to the recorded target and
// pinning the rel8/rel32 choice to the decoded form.
func reencode(t *testing.T, r *Decoded) []byte {
	t.Helper()
	ctx := &encode.Ctx{Addr: int64(r.Off), ForceLong: r.Long}
	if r.IsRel {
		target := r.RelTarget
		ctx.SymAddr = func(string) (int64, bool) { return target, true }
	}
	b, err := encode.Encode(r.Inst, ctx)
	if err != nil {
		t.Fatalf("re-encode %s: %v", r.Inst, err)
	}
	return b
}

// TestGolden pins byte patterns to their decoded rendering and proves
// each re-encodes byte-identically (the streams below are canonical:
// they are what the encoder itself emits for these instructions).
func TestGolden(t *testing.T) {
	cases := []struct {
		hex  string
		want string
	}{
		// Stack / frame idiom.
		{"55", "pushq\t%rbp"},
		{"4889e5", "movq\t%rsp, %rbp"},
		{"5d", "popq\t%rbp"},
		{"c3", "ret"},
		{"c9", "leave"},
		{"4157", "pushq\t%r15"},
		// MOV forms.
		{"488b4708", "movq\t8(%rdi), %rax"},
		{"89d0", "movl\t%edx, %eax"},
		{"8a07", "movb\t(%rdi), %al"},
		{"b001", "movb\t$1, %al"},
		{"b402", "movb\t$2, %ah"},
		{"40b602", "movb\t$2, %sil"},
		{"b878563412", "movl\t$305419896, %eax"},
		{"48c7c02a000000", "movq\t$42, %rax"},
		{"48b8efcdab8967452301", "movabsq\t$81985529216486895, %rax"},
		{"66b83412", "movw\t$4660, %ax"},
		{"c604255000000007", "movb\t$7, 80"},
		// ALU.
		{"4801d8", "addq\t%rbx, %rax"},
		{"01d8", "addl\t%ebx, %eax"},
		{"83c001", "addl\t$1, %eax"},
		{"0534120000", "addl\t$4660, %eax"},
		{"2c05", "subb\t$5, %al"},
		{"4183e87f", "subl\t$127, %r8d"},
		{"813c24d2040000", "cmpl\t$1234, (%rsp)"},
		{"4531ed", "xorl\t%r13d, %r13d"},
		{"662b4702", "subw\t2(%rdi), %ax"},
		// Addressing forms.
		{"8b0cb8", "movl\t(%rax,%rdi,4), %ecx"},
		{"8b0c8500000000", "movl\t(,%rax,4), %ecx"},
		{"488d05ffffffff", "leaq\t-1(%rip), %rax"},
		{"488d0500000000", "leaq\t(%rip), %rax"},
		{"418b442410", "movl\t16(%r12), %eax"},
		{"498b4500", "movq\t(%r13), %rax"},
		{"8b8424e8030000", "movl\t1000(%rsp), %eax"},
		// Shift group.
		{"d1f8", "sarl\t%eax"},
		{"48c1e71f", "shlq\t$31, %rdi"},
		{"d3e8", "shrl\t%cl, %eax"},
		{"41c0ed03", "shrb\t$3, %r13b"},
		// Group 3 / inc-dec.
		{"f7d8", "negl\t%eax"},
		{"48f7d1", "notq\t%rcx"},
		{"f7ef", "imull\t%edi"},
		{"48f7f6", "divq\t%rsi"},
		{"ffc0", "incl\t%eax"},
		{"48ffc8", "decq\t%rax"},
		{"fec0", "incb\t%al"},
		// IMUL and TEST.
		{"0fafc7", "imull\t%edi, %eax"},
		{"486bc710", "imulq\t$16, %rdi, %rax"},
		{"4869c7e8030000", "imulq\t$1000, %rdi, %rax"},
		{"a901000000", "testl\t$1, %eax"},
		{"a880", "testb\t$-128, %al"},
		{"4885c0", "testq\t%rax, %rax"},
		{"f6c301", "testb\t$1, %bl"},
		// XCHG.
		{"4891", "xchgq\t%rcx, %rax"},
		{"91", "xchgl\t%ecx, %eax"},
		{"4887d9", "xchgq\t%rbx, %rcx"},
		{"8607", "xchgb\t%al, (%rdi)"},
		// CMOV / SET.
		{"480f44c1", "cmove\t%rcx, %rax"},
		{"0f95c0", "setne\t%al"},
		{"410f94c4", "sete\t%r12b"},
		// Sign extension.
		{"0fb6c0", "movzbl\t%al, %eax"},
		{"480fbfc0", "movswq\t%ax, %rax"},
		{"4863c7", "movslq\t%edi, %rax"},
		{"4898", "cltq"},
		{"99", "cltd"},
		{"4899", "cqto"},
		// NOP forms and friends.
		{"90", "nop"},
		{"6690", "nopw"},
		{"f390", "pause"},
		{"0f1f00", "nopl\t(%rax)"},
		{"660f1f0400", "nopw\t(%rax,%rax,1)"},
		{"0f0b", "ud2"},
		{"f4", "hlt"},
		// Branches.
		{"ebfe", "jmp\t"},
		{"e900010000", "jmp\t"},
		{"7405", "je\t"},
		{"0f8480000000", "je\t"},
		{"e800000000", "call\t"},
		{"ffd0", "call\t*%rax"},
		{"ff2425a0860100", "jmp\t*100000"},
		{"ff17", "call\t*(%rdi)"},
		// Push/pop r/m and immediates.
		{"6a05", "pushq\t$5"},
		{"6800010000", "pushq\t$256"},
		{"ff7708", "pushq\t8(%rdi)"},
		{"8f4010", "popq\t16(%rax)"},
		// Prefetch.
		{"0f1807", "prefetchnta\t(%rdi)"},
		{"0f185340", "prefetcht1\t64(%rbx)"},
		// SSE moves.
		{"f30f10442404", "movss\t4(%rsp), %xmm0"},
		{"f20f1107", "movsd\t%xmm0, (%rdi)"},
		{"0f28c8", "movaps\t%xmm0, %xmm1"},
		{"660f6f00", "movdqa\t(%rax), %xmm0"},
		{"f30f7f0411", "movdqu\t%xmm0, (%rcx,%rdx,1)"},
		{"660f6ec7", "movd\t%edi, %xmm0"},
		{"66480f7ec0", "movq\t%xmm0, %rax"},
		{"f30f7ec1", "movq\t%xmm1, %xmm0"},
		{"660fd60424", "movq\t%xmm0, (%rsp)"},
		// SSE arithmetic and conversions.
		{"f20f58c1", "addsd\t%xmm1, %xmm0"},
		{"f30f5ec8", "divss\t%xmm0, %xmm1"},
		{"660fefc0", "pxor\t%xmm0, %xmm0"},
		{"0f57c0", "xorps\t%xmm0, %xmm0"},
		{"660f2ec1", "ucomisd\t%xmm1, %xmm0"},
		{"f2480f2ac7", "cvtsi2sdq\t%rdi, %xmm0"},
		{"f30f2cc1", "cvttss2sil\t%xmm1, %eax"},
		// Lock prefix.
		{"f0830c2400", "lock orl\t$0, (%rsp)"},
	}
	for _, c := range cases {
		b := mustHex(t, c.hex)
		r, err := One(b, 0)
		if err != nil {
			t.Errorf("%s: decode error: %v", c.hex, err)
			continue
		}
		if r.Len != len(b) {
			t.Errorf("%s: decoded %d of %d bytes", c.hex, r.Len, len(b))
			continue
		}
		if got := r.Inst.String(); got != c.want {
			t.Errorf("%s: decoded %q, want %q", c.hex, got, c.want)
		}
		if got := reencode(t, r); string(got) != string(b) {
			t.Errorf("%s: re-encodes to %x", c.hex, got)
		}
	}
}

// TestAllPositions checks that All reports correct per-instruction
// offsets and that relative branches resolve to buffer offsets.
func TestAllPositions(t *testing.T) {
	// 0: xorl %eax,%eax; 2: decl %eax; 4: jne 2; 6: ret
	b := mustHex(t, "31c0ffc875fcc3")
	decs, err := All(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 4 {
		t.Fatalf("decoded %d instructions, want 4", len(decs))
	}
	wantOff := []int{0, 2, 4, 6}
	for i, r := range decs {
		if r.Off != wantOff[i] {
			t.Errorf("inst %d at offset %d, want %d", i, r.Off, wantOff[i])
		}
	}
	j := decs[2]
	if !j.IsRel || j.RelTarget != 2 || j.Long {
		t.Errorf("jne: IsRel=%v RelTarget=%d Long=%v, want true 2 false", j.IsRel, j.RelTarget, j.Long)
	}
}
