package decode_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mao"
	"mao/internal/x86/decode"
	"mao/internal/x86/encode"
)

// fixtureImages encodes every checked-in .s fixture through the
// existing parse→relax pipeline and returns the raw .text images —
// the canonical byte streams that seed the fuzz corpus.
func fixtureImages(tb testing.TB) [][]byte {
	tb.Helper()
	var images [][]byte
	for _, dir := range []string{"../../../internal/corpus/testdata", "../../../cmd/mao/testdata"} {
		err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || filepath.Ext(path) != ".s" {
				return nil
			}
			u, err := mao.ParseFile(path)
			if err != nil {
				return nil // non-unit fixtures (e.g. plugin sources) are not seeds
			}
			layout, err := mao.Relax(u)
			if err != nil {
				return nil
			}
			if img := layout.Image(u, ".text"); len(img) > 0 {
				images = append(images, img)
			}
			return nil
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	if len(images) == 0 {
		tb.Fatal("no fixture images produced")
	}
	return images
}

// reencodeAt re-encodes a decoded instruction at its original
// position, resolving the placeholder branch label to the recorded
// target and pinning the rel8/rel32 choice to the decoded form.
func reencodeAt(r *decode.Decoded) ([]byte, error) {
	ctx := &encode.Ctx{Addr: int64(r.Off), ForceLong: r.Long}
	if r.IsRel {
		target := r.RelTarget
		ctx.SymAddr = func(string) (int64, bool) { return target, true }
	}
	return encode.Encode(r.Inst, ctx)
}

// FuzzDecodeEncodeRoundtrip is the decode↔encode oracle under
// mutation. For any byte stream that decodes:
//
//   - every decoded instruction must re-encode (decoding implies
//     encodability), and decode(encode(inst)) == inst — the decoder's
//     image is a fixpoint of the encoder;
//   - re-encoding the re-decoded instruction is byte-stable, so
//     encode∘decode reaches its fixpoint in one step (and is the
//     identity on canonical streams, which the corpus seeds are).
//
// Malformed streams must fail with a structured error, never a panic.
func FuzzDecodeEncodeRoundtrip(f *testing.F) {
	for _, img := range fixtureImages(f) {
		f.Add(img)
	}
	f.Add([]byte{0x31, 0xc0, 0xff, 0xc8, 0x75, 0xfc, 0xc3})
	f.Add([]byte{0x66, 0x48, 0x0f, 0x7e, 0xc0})
	f.Add([]byte{0xf0, 0x83, 0x0c, 0x24, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		decs, err := decode.All(data)
		if err != nil {
			return // malformed input; All returning is the no-panic assertion
		}
		for _, r := range decs {
			b, err := reencodeAt(r)
			if err != nil {
				t.Fatalf("offset %#x: decoded %s does not re-encode: %v", r.Off, r.Inst, err)
			}
			r2, err := decode.One(b, r.Off)
			if err != nil {
				t.Fatalf("offset %#x: re-encoding %x of %s does not decode: %v", r.Off, b, r.Inst, err)
			}
			if !reflect.DeepEqual(r2.Inst, r.Inst) {
				t.Fatalf("offset %#x: decode(encode(x)) != x\n  x  = %#v\n got = %#v", r.Off, r.Inst, r2.Inst)
			}
			b2, err := reencodeAt(r2)
			if err != nil {
				t.Fatalf("offset %#x: fixpoint re-encode failed: %v", r.Off, err)
			}
			if string(b2) != string(b) {
				t.Fatalf("offset %#x: encode∘decode not a one-step fixpoint: %x then %x", r.Off, b, b2)
			}
		}
	})
}

// TestCanonicalStreamsRoundtrip asserts the strict identity
// encode(decode(bytes)) == bytes over every corpus fixture image —
// the canonical-stream half of the oracle, deterministic (no fuzzing
// involved).
func TestCanonicalStreamsRoundtrip(t *testing.T) {
	for i, img := range fixtureImages(t) {
		decs, err := decode.All(img)
		if err != nil {
			t.Errorf("image %d: decode: %v", i, err)
			continue
		}
		var rebuilt []byte
		for _, r := range decs {
			b, err := reencodeAt(r)
			if err != nil {
				t.Fatalf("image %d offset %#x: %v", i, r.Off, err)
			}
			rebuilt = append(rebuilt, b...)
		}
		if string(rebuilt) != string(img) {
			t.Errorf("image %d: encode(decode(bytes)) != bytes (%d vs %d bytes)",
				i, len(rebuilt), len(img))
		}
	}
}
