package decode

import (
	"fmt"

	"mao/internal/ir"
	"mao/internal/trace"
)

// LiftPass is the pass name stamped as provenance origin on lifted
// nodes. The invocation index carries the node's byte offset in the
// decoded buffer, so `mao --explain` renders byte-range provenance as
// MAODEC[offset].
const LiftPass = "MAODEC"

// UnitOptions configures ToUnit.
type UnitOptions struct {
	// FileName names the synthesized unit ("<binary>" when empty).
	FileName string
	// FuncName is the symbol given to the single function wrapping the
	// decoded buffer ("text" when empty).
	FuncName string
	// Base is the load address of the buffer's first byte. It offsets
	// the synthetic label names (.Lmaodec_<addr>) only; decoding is
	// position-independent.
	Base int64
	// Tracer, when enabled, receives one KindDecode span covering the
	// lift.
	Tracer *trace.Collector
}

// ToUnit decodes a raw machine-code buffer and lifts it into an IR
// unit the rest of the pipeline consumes unchanged: byte offsets that
// are branch targets become synthetic local labels (.Lmaodec_<addr>),
// relative branches are re-targeted to those labels, and the whole
// buffer is wrapped as one .text function so Unit.Analyze, the passes,
// MAOCHECK, MAOVERIFY and relaxation all see an ordinary unit.
// Every lifted instruction node carries MAODEC[byte-offset] origin
// provenance.
func ToUnit(code []byte, opts UnitOptions) (*ir.Unit, error) {
	start := opts.Tracer.Now()

	decs, err := All(code)
	if err != nil {
		return nil, err
	}

	fileName := opts.FileName
	if fileName == "" {
		fileName = "<binary>"
	}
	fn := opts.FuncName
	if fn == "" {
		fn = "text"
	}

	// First pass over the decoded stream: collect branch targets and
	// check every one lands on an instruction boundary (or exactly at
	// the end of the buffer, where the encoder's unresolved-symbol
	// rel32 of zero points).
	starts := make(map[int64]bool, len(decs))
	for _, r := range decs {
		starts[int64(r.Off)] = true
	}
	starts[int64(len(code))] = true
	labels := make(map[int64]string)
	for _, r := range decs {
		if !r.IsRel {
			continue
		}
		if r.RelTarget < 0 || r.RelTarget > int64(len(code)) {
			return nil, &Error{Offset: r.Off, Msg: fmt.Sprintf(
				"branch target %#x outside the buffer [0, %#x]", r.RelTarget, len(code))}
		}
		if !starts[r.RelTarget] {
			return nil, &Error{Offset: r.Off, Msg: fmt.Sprintf(
				"branch target %#x is not an instruction boundary", r.RelTarget)}
		}
		if _, ok := labels[r.RelTarget]; !ok {
			labels[r.RelTarget] = fmt.Sprintf(".Lmaodec_%x", opts.Base+r.RelTarget)
		}
	}

	u := ir.NewUnit(fileName)
	u.Append(ir.DirectiveNode(".text"))
	u.Append(ir.DirectiveNode(".type", fn, "@function"))
	u.Append(ir.LabelNode(fn))
	for _, r := range decs {
		if l, ok := labels[int64(r.Off)]; ok {
			u.Append(ir.LabelNode(l))
		}
		if r.IsRel {
			// The decoder left a placeholder empty label; point it at
			// the synthetic target label.
			r.Inst.Args[len(r.Inst.Args)-1].Sym = labels[r.RelTarget]
		}
		n := ir.InstNode(r.Inst)
		n.Prov = &ir.Provenance{Origin: ir.PassRef{Pass: LiftPass, Index: r.Off}}
		u.Append(n)
	}
	if l, ok := labels[int64(len(code))]; ok {
		u.Append(ir.LabelNode(l))
	}
	u.Append(ir.DirectiveNode(".size", fn, ".-"+fn))

	if err := u.Analyze(); err != nil {
		return nil, err
	}

	if opts.Tracer.Enabled() {
		opts.Tracer.Add(trace.Span{
			Kind:       trace.KindDecode,
			Ref:        trace.Ref{Pass: LiftPass, Index: 0},
			Start:      start,
			Dur:        opts.Tracer.Now() - start,
			NodesAfter: u.List.Len(),
			Changed:    true,
			Parent:     -1,
			Stats: map[string]int{
				"bytes":         len(code),
				"instructions":  len(decs),
				"branch_labels": len(labels),
			},
		})
	}
	return u, nil
}
