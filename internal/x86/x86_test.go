package x86

import (
	"testing"
	"testing/quick"
)

func TestRegByName(t *testing.T) {
	cases := []struct {
		name string
		want Reg
	}{
		{"rax", RAX}, {"r15", R15}, {"eax", EAX}, {"r8d", R8D},
		{"ax", AX}, {"al", AL}, {"ah", AH}, {"sil", SIL},
		{"xmm0", XMM0}, {"xmm15", XMM15}, {"rip", RIP},
	}
	for _, c := range cases {
		got, ok := RegByName(c.name)
		if !ok || got != c.want {
			t.Errorf("RegByName(%q) = %v, %v; want %v", c.name, got, ok, c.want)
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName accepted bogus register")
	}
}

func TestRegNameRoundTrip(t *testing.T) {
	for r := Reg(1); r < numRegs; r++ {
		got, ok := RegByName(r.String())
		if !ok || got != r {
			t.Errorf("round trip failed for %v", r)
		}
	}
}

func TestRegFamilyAndWidth(t *testing.T) {
	cases := []struct {
		r      Reg
		family Reg
		width  Width
	}{
		{RAX, RAX, W64}, {EAX, RAX, W32}, {AX, RAX, W16}, {AL, RAX, W8},
		{AH, RAX, W8}, {R8D, R8, W32}, {R15B, R15, W8},
		{SPL, RSP, W8}, {XMM3, XMM3, W128},
	}
	for _, c := range cases {
		if got := c.r.Family(); got != c.family {
			t.Errorf("%v.Family() = %v, want %v", c.r, got, c.family)
		}
		if got := c.r.Width(); got != c.width {
			t.Errorf("%v.Width() = %v, want %v", c.r, got, c.width)
		}
	}
}

func TestWithWidth(t *testing.T) {
	if got := RAX.WithWidth(W32); got != EAX {
		t.Errorf("RAX.WithWidth(W32) = %v", got)
	}
	if got := R10B.WithWidth(W64); got != R10 {
		t.Errorf("R10B.WithWidth(W64) = %v", got)
	}
	if got := EDI.WithWidth(W8); got != DIL {
		t.Errorf("EDI.WithWidth(W8) = %v", got)
	}
}

func TestRegNum(t *testing.T) {
	if RAX.Num() != 0 || RDI.Num() != 7 || R8.Num() != 8 || R15.Num() != 15 {
		t.Error("64-bit register numbers wrong")
	}
	if AH.Num() != 4 || BH.Num() != 7 {
		t.Error("high-byte register numbers wrong")
	}
	if XMM9.Num() != 9 {
		t.Error("xmm register number wrong")
	}
}

func TestNeedsREX(t *testing.T) {
	for _, r := range []Reg{R8, R12D, R9W, R14B, SIL, SPL, XMM12} {
		if !r.NeedsREX() {
			t.Errorf("%v.NeedsREX() = false", r)
		}
	}
	for _, r := range []Reg{RAX, EBX, CX, DL, AH, XMM7} {
		if r.NeedsREX() {
			t.Errorf("%v.NeedsREX() = true", r)
		}
	}
}

func TestParseMnemonic(t *testing.T) {
	cases := []struct {
		in   string
		want Mnem
	}{
		{"movl", Mnem{Op: OpMOV, Width: W32}},
		{"mov", Mnem{Op: OpMOV}},
		{"addq", Mnem{Op: OpADD, Width: W64}},
		{"testb", Mnem{Op: OpTEST, Width: W8}},
		{"sall", Mnem{Op: OpSHL, Width: W32}},
		{"jne", Mnem{Op: OpJCC, Cond: CondNE}},
		{"jz", Mnem{Op: OpJCC, Cond: CondE}},
		{"jnle", Mnem{Op: OpJCC, Cond: CondG}},
		{"jmp", Mnem{Op: OpJMP}},
		{"sete", Mnem{Op: OpSET, Cond: CondE, Width: W8}},
		{"cmovle", Mnem{Op: OpCMOV, Cond: CondLE}},
		{"cmovll", Mnem{Op: OpCMOV, Cond: CondL, Width: W32}},
		{"cmovnel", Mnem{Op: OpCMOV, Cond: CondNE, Width: W32}},
		{"movzbl", Mnem{Op: OpMOVZX, Width: W32, SrcWidth: W8}},
		{"movsbl", Mnem{Op: OpMOVSX, Width: W32, SrcWidth: W8}},
		{"movslq", Mnem{Op: OpMOVSX, Width: W64, SrcWidth: W32}},
		{"movswq", Mnem{Op: OpMOVSX, Width: W64, SrcWidth: W16}},
		{"leaq", Mnem{Op: OpLEA, Width: W64}},
		{"cltq", Mnem{Op: OpCLTQ}},
		{"retq", Mnem{Op: OpRET}},
		{"nop", Mnem{Op: OpNOP}},
		{"movss", Mnem{Op: OpMOVSS}},
		{"movsd", Mnem{Op: OpMOVSD}},
		{"prefetchnta", Mnem{Op: OpPREFETCHNTA}},
		{"cvtsi2sdq", Mnem{Op: OpCVTSI2SD, Width: W64}},
		{"cvttsd2si", Mnem{Op: OpCVTTSD2SI}},
		{"pxor", Mnem{Op: OpPXOR}},
	}
	for _, c := range cases {
		got, ok := ParseMnemonic(c.in)
		if !ok {
			t.Errorf("ParseMnemonic(%q) failed", c.in)
			continue
		}
		if got != c.want {
			t.Errorf("ParseMnemonic(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"bogus", "movzlq", "jxx", "setxx", "addx"} {
		if m, ok := ParseMnemonic(bad); ok {
			t.Errorf("ParseMnemonic(%q) = %+v, want failure", bad, m)
		}
	}
}

func TestMnemonicRoundTrip(t *testing.T) {
	// Every canonical mnemonic must parse back to the same Mnem.
	mnems := []Mnem{
		{Op: OpMOV, Width: W64},
		{Op: OpADD, Width: W8},
		{Op: OpJCC, Cond: CondLE},
		{Op: OpSET, Cond: CondA, Width: W8},
		{Op: OpMOVZX, Width: W64, SrcWidth: W16},
		{Op: OpMOVSX, Width: W32, SrcWidth: W8},
		{Op: OpJMP}, {Op: OpRET}, {Op: OpLEAVE}, {Op: OpNOP},
		{Op: OpMOVSD}, {Op: OpMULSS},
	}
	for _, m := range mnems {
		s := m.Mnemonic()
		got, ok := ParseMnemonic(s)
		if !ok {
			t.Errorf("canonical mnemonic %q does not parse", s)
			continue
		}
		if got != m {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, m)
		}
	}
}

func TestCondNegate(t *testing.T) {
	pairs := [][2]Cond{{CondE, CondNE}, {CondL, CondGE}, {CondB, CondAE}, {CondO, CondNO}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("negate broken for %v/%v", p[0], p[1])
		}
	}
}

func TestCondNegateInvolution(t *testing.T) {
	f := func(c uint8) bool {
		cond := Cond(c & 0xF)
		return cond.Negate().Negate() == cond && cond.Negate() != cond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondFlagsRead(t *testing.T) {
	if CondE.FlagsRead() != ZF || CondNE.FlagsRead() != ZF {
		t.Error("e/ne must read ZF")
	}
	if CondL.FlagsRead() != SF|OF {
		t.Error("l must read SF|OF")
	}
	if CondBE.FlagsRead() != CF|ZF {
		t.Error("be must read CF|ZF")
	}
	if CondLE.FlagsRead() != SF|OF|ZF {
		t.Error("le must read SF|OF|ZF")
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{Imm(5), "$5"},
		{Imm(-1), "$-1"},
		{RegOp(RAX), "%rax"},
		{MemOp(Mem{Disp: 8, Base: RSP}), "8(%rsp)"},
		{MemOp(Mem{Base: RSI, Index: R8, Scale: 4}), "(%rsi,%r8,4)"},
		{MemOp(Mem{Disp: 1, Base: RDI, Index: R8, Scale: 4}), "1(%rdi,%r8,4)"},
		{MemOp(Mem{Disp: -4, Base: RBP}), "-4(%rbp)"},
		{MemOp(Mem{Sym: "x", Base: RIP}), "x(%rip)"},
		{MemOp(Mem{Sym: "tbl", Disp: 8, Base: RIP}), "tbl+8(%rip)"},
		{MemOp(Mem{Disp: 0}), "0"},
		{LabelOp(".L5"), ".L5"},
		{Operand{Kind: KindReg, Reg: RAX, Star: true}, "*%rax"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("operand %#v prints %q, want %q", c.op, got, c.want)
		}
	}
}

func TestInstString(t *testing.T) {
	in := NewInst(Mnem{Op: OpMOV, Width: W32},
		RegOp(EDX), MemOp(Mem{Base: RSI, Index: R8, Scale: 4}))
	if got := in.String(); got != "movl\t%edx, (%rsi,%r8,4)" {
		t.Errorf("got %q", got)
	}
	j := NewInst(Mnem{Op: OpJCC, Cond: CondG}, LabelOp(".L3"))
	if got := j.String(); got != "jg\t.L3" {
		t.Errorf("got %q", got)
	}
}

func TestInferWidth(t *testing.T) {
	in := NewInst(Mnem{Op: OpMOV}, RegOp(EAX), RegOp(EAX))
	if in.Width != W32 {
		t.Errorf("inferred width %v, want W32", in.Width)
	}
	in = NewInst(Mnem{Op: OpADD}, Imm(1), RegOp(R8))
	if in.Width != W64 {
		t.Errorf("inferred width %v, want W64", in.Width)
	}
}

func TestBranchTarget(t *testing.T) {
	j := NewInst(Mnem{Op: OpJMP}, LabelOp(".L9"))
	if tgt, ok := j.BranchTarget(); !ok || tgt != ".L9" {
		t.Errorf("BranchTarget = %q, %v", tgt, ok)
	}
	ind := NewInst(Mnem{Op: OpJMP}, Operand{Kind: KindReg, Reg: RAX, Star: true})
	if _, ok := ind.BranchTarget(); ok {
		t.Error("indirect jump reported a direct target")
	}
	if !ind.IsIndirectBranch() {
		t.Error("indirect jump not detected")
	}
}

func TestMemoryEffects(t *testing.T) {
	load := NewInst(Mnem{Op: OpMOV, Width: W64}, MemOp(Mem{Disp: 24, Base: RSP}), RegOp(RDX))
	if !load.ReadsMemory() || load.WritesMemory() {
		t.Error("load classified wrong")
	}
	store := NewInst(Mnem{Op: OpMOV, Width: W32}, RegOp(EDX), MemOp(Mem{Base: RSI}))
	if store.ReadsMemory() || !store.WritesMemory() {
		t.Error("store classified wrong")
	}
	rmw := NewInst(Mnem{Op: OpADD, Width: W32}, Imm(1), MemOp(Mem{Disp: -4, Base: RBP}))
	if !rmw.ReadsMemory() || !rmw.WritesMemory() {
		t.Error("read-modify-write classified wrong")
	}
	cmp := NewInst(Mnem{Op: OpCMP, Width: W32}, Imm(0), MemOp(Mem{Disp: -4, Base: RBP}))
	if !cmp.ReadsMemory() || cmp.WritesMemory() {
		t.Error("cmp-with-memory classified wrong")
	}
	lea := NewInst(Mnem{Op: OpLEA, Width: W64}, MemOp(Mem{Base: R8, Index: RDI, Scale: 1}), RegOp(RBX))
	if lea.ReadsMemory() || lea.WritesMemory() {
		t.Error("lea classified wrong")
	}
	pf := NewInst(Mnem{Op: OpPREFETCHNTA}, MemOp(Mem{Base: RAX}))
	if pf.WritesMemory() {
		t.Error("prefetch classified as store")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := NewInst(Mnem{Op: OpADD, Width: W64}, Imm(1), RegOp(RAX))
	cp := in.Clone()
	cp.Args[1] = RegOp(RBX)
	if in.Args[1].Reg != RAX {
		t.Error("Clone shares operand storage")
	}
}
