package x86

import (
	"fmt"
	"strings"
)

// Op is a base opcode, independent of operand width and (for
// conditional instructions) of the condition code. The AT&T mnemonic
// "addq" parses to OpADD with Width W64; "jne" parses to OpJCC with
// Cond CondNE.
type Op uint16

// Base opcodes.
const (
	OpInvalid Op = iota

	// Data movement.
	OpMOV
	OpMOVABS
	OpMOVZX // movz{b,w}{w,l,q}
	OpMOVSX // movs{b,w,l}{w,l,q}; movslq is OpMOVSX with SrcWidth W32
	OpLEA
	OpPUSH
	OpPOP
	OpXCHG
	OpCMOV // cmovcc

	// Integer arithmetic.
	OpADD
	OpSUB
	OpADC
	OpSBB
	OpCMP
	OpINC
	OpDEC
	OpNEG
	OpIMUL
	OpMUL
	OpIDIV
	OpDIV

	// Logic.
	OpAND
	OpOR
	OpXOR
	OpNOT
	OpTEST

	// Shifts and rotates.
	OpSHL
	OpSHR
	OpSAR
	OpROL
	OpROR

	// Control flow.
	OpJMP
	OpJCC // jcc
	OpCALL
	OpRET
	OpLEAVE
	OpSET // setcc

	// Sign-extension idioms.
	OpCLTQ // cltq: sign-extend eax into rax
	OpCLTD // cltd: sign-extend eax into edx:eax
	OpCQTO // cqto: sign-extend rax into rdx:rax
	OpCWTL // cwtl: sign-extend ax into eax

	// Miscellaneous.
	OpNOP
	OpUD2
	OpHLT
	OpPAUSE
	OpPREFETCHNTA
	OpPREFETCHT0
	OpPREFETCHT1
	OpPREFETCHT2

	// SSE scalar/packed (the subset compiler output in our domain uses).
	OpMOVSS
	OpMOVSD
	OpMOVAPS
	OpMOVUPS
	OpMOVDQA
	OpMOVDQU
	OpMOVD  // movd: GPR32/mem <-> xmm
	OpMOVQX // SSE movq: GPR64/mem <-> xmm
	OpADDSS
	OpADDSD
	OpSUBSS
	OpSUBSD
	OpMULSS
	OpMULSD
	OpDIVSS
	OpDIVSD
	OpXORPS
	OpXORPD
	OpANDPS
	OpANDPD
	OpSQRTSS
	OpSQRTSD
	OpUCOMISS
	OpUCOMISD
	OpCOMISS
	OpCOMISD
	OpCVTSI2SS
	OpCVTSI2SD
	OpCVTTSS2SI
	OpCVTTSD2SI
	OpCVTSS2SD
	OpCVTSD2SS
	OpPXOR

	numOps
)

// NumOps is the number of defined opcodes (including OpInvalid); valid
// Op values are strictly below it. Dense per-opcode tables size
// themselves with it.
const NumOps = int(numOps)

var opNames = map[Op]string{
	OpMOV: "mov", OpMOVABS: "movabs", OpMOVZX: "movz", OpMOVSX: "movs",
	OpLEA: "lea", OpPUSH: "push", OpPOP: "pop", OpXCHG: "xchg", OpCMOV: "cmov",
	OpADD: "add", OpSUB: "sub", OpADC: "adc", OpSBB: "sbb", OpCMP: "cmp",
	OpINC: "inc", OpDEC: "dec", OpNEG: "neg",
	OpIMUL: "imul", OpMUL: "mul", OpIDIV: "idiv", OpDIV: "div",
	OpAND: "and", OpOR: "or", OpXOR: "xor", OpNOT: "not", OpTEST: "test",
	OpSHL: "shl", OpSHR: "shr", OpSAR: "sar", OpROL: "rol", OpROR: "ror",
	OpJMP: "jmp", OpJCC: "j", OpCALL: "call", OpRET: "ret", OpLEAVE: "leave",
	OpSET:  "set",
	OpCLTQ: "cltq", OpCLTD: "cltd", OpCQTO: "cqto", OpCWTL: "cwtl",
	OpNOP: "nop", OpUD2: "ud2", OpHLT: "hlt", OpPAUSE: "pause",
	OpPREFETCHNTA: "prefetchnta", OpPREFETCHT0: "prefetcht0",
	OpPREFETCHT1: "prefetcht1", OpPREFETCHT2: "prefetcht2",
	OpMOVSS: "movss", OpMOVSD: "movsd", OpMOVAPS: "movaps", OpMOVUPS: "movups",
	OpMOVDQA: "movdqa", OpMOVDQU: "movdqu", OpMOVD: "movd", OpMOVQX: "movq",
	OpADDSS: "addss", OpADDSD: "addsd", OpSUBSS: "subss", OpSUBSD: "subsd",
	OpMULSS: "mulss", OpMULSD: "mulsd", OpDIVSS: "divss", OpDIVSD: "divsd",
	OpXORPS: "xorps", OpXORPD: "xorpd", OpANDPS: "andps", OpANDPD: "andpd",
	OpSQRTSS: "sqrtss", OpSQRTSD: "sqrtsd",
	OpUCOMISS: "ucomiss", OpUCOMISD: "ucomisd",
	OpCOMISS: "comiss", OpCOMISD: "comisd",
	OpCVTSI2SS: "cvtsi2ss", OpCVTSI2SD: "cvtsi2sd",
	OpCVTTSS2SI: "cvttss2si", OpCVTTSD2SI: "cvttsd2si",
	OpCVTSS2SD: "cvtss2sd", OpCVTSD2SS: "cvtsd2ss",
	OpPXOR: "pxor",
}

// String returns the base (unsuffixed) name of the opcode.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint16(o))
}

// IsBranch reports whether the opcode transfers control (jumps, calls,
// returns). Conditional moves and sets are not branches.
func (o Op) IsBranch() bool {
	switch o {
	case OpJMP, OpJCC, OpCALL, OpRET:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o == OpJCC }

// IsSSE reports whether the opcode is an SSE floating-point/integer
// vector operation.
func (o Op) IsSSE() bool { return o >= OpMOVSS && o <= OpPXOR }

// HasWidthSuffix reports whether AT&T syntax spells this opcode with an
// optional b/w/l/q width suffix (e.g. "addl"). Opcodes with fixed
// spellings (jmp, ret, SSE ops, ...) return false.
func (o Op) HasWidthSuffix() bool {
	switch o {
	case OpMOV, OpMOVABS, OpLEA, OpPUSH, OpPOP, OpXCHG,
		OpADD, OpSUB, OpADC, OpSBB, OpCMP, OpINC, OpDEC, OpNEG,
		OpIMUL, OpMUL, OpIDIV, OpDIV,
		OpAND, OpOR, OpXOR, OpNOT, OpTEST,
		OpSHL, OpSHR, OpSAR, OpROL, OpROR, OpCMOV:
		return true
	}
	return false
}

var suffixWidth = map[byte]Width{'b': W8, 'w': W16, 'l': W32, 'q': W64}

// widthSuffix is the inverse of suffixWidth.
func widthSuffix(w Width) string {
	switch w {
	case W8:
		return "b"
	case W16:
		return "w"
	case W32:
		return "l"
	case W64:
		return "q"
	}
	return ""
}

// fixedMnemonics maps spellings that are complete mnemonics on their
// own (no suffix or condition processing required).
var fixedMnemonics = map[string]Op{
	"lea": OpLEA, "leave": OpLEAVE, "ret": OpRET, "retq": OpRET,
	"jmp": OpJMP, "jmpq": OpJMP, "call": OpCALL, "callq": OpCALL,
	"cltq": OpCLTQ, "cltd": OpCLTD, "cqto": OpCQTO, "cwtl": OpCWTL,
	"nop": OpNOP, "ud2": OpUD2, "hlt": OpHLT, "pause": OpPAUSE,
	"prefetchnta": OpPREFETCHNTA, "prefetcht0": OpPREFETCHT0,
	"prefetcht1": OpPREFETCHT1, "prefetcht2": OpPREFETCHT2,
	"movss": OpMOVSS, "movaps": OpMOVAPS, "movups": OpMOVUPS,
	"movdqa": OpMOVDQA, "movdqu": OpMOVDQU, "movd": OpMOVD,
	"addss": OpADDSS, "addsd": OpADDSD, "subss": OpSUBSS, "subsd": OpSUBSD,
	"mulss": OpMULSS, "mulsd": OpMULSD, "divss": OpDIVSS, "divsd": OpDIVSD,
	"xorps": OpXORPS, "xorpd": OpXORPD, "andps": OpANDPS, "andpd": OpANDPD,
	"sqrtss": OpSQRTSS, "sqrtsd": OpSQRTSD,
	"ucomiss": OpUCOMISS, "ucomisd": OpUCOMISD,
	"comiss": OpCOMISS, "comisd": OpCOMISD,
	"cvtss2sd": OpCVTSS2SD, "cvtsd2ss": OpCVTSD2SS,
	"pxor": OpPXOR,
}

// suffixedBases maps the stem of width-suffixed ALU/mov mnemonics.
var suffixedBases = map[string]Op{
	"mov": OpMOV, "movabs": OpMOVABS, "lea": OpLEA,
	"push": OpPUSH, "pop": OpPOP, "xchg": OpXCHG,
	"add": OpADD, "sub": OpSUB, "adc": OpADC, "sbb": OpSBB, "cmp": OpCMP,
	"inc": OpINC, "dec": OpDEC, "neg": OpNEG,
	"imul": OpIMUL, "mul": OpMUL, "idiv": OpIDIV, "div": OpDIV,
	"and": OpAND, "or": OpOR, "xor": OpXOR, "not": OpNOT, "test": OpTEST,
	"shl": OpSHL, "shr": OpSHR, "sal": OpSHL, "sar": OpSAR,
	"rol": OpROL, "ror": OpROR, "nop": OpNOP,
}

// Mnem is the decoded form of an AT&T mnemonic.
type Mnem struct {
	Op       Op
	Cond     Cond  // condition for jcc/setcc/cmovcc
	Width    Width // operand width implied by the suffix (W0 if none)
	SrcWidth Width // source width for movzx/movsx
}

// ParseMnemonic decodes an AT&T mnemonic like "addq", "jne", "movzbl",
// "cmovle" or "cvtsi2sdq" into its constituents. The boolean result is
// false for unrecognized mnemonics.
//
// Width is left W0 where the suffix is absent; the parser later infers
// the width from register operands.
func ParseMnemonic(m string) (Mnem, bool) {
	m = strings.ToLower(m)

	// movsd: SSE scalar double move. (String-move movs is unsupported,
	// so there is no ambiguity in this implementation.)
	if m == "movsd" {
		return Mnem{Op: OpMOVSD}, true
	}
	if op, ok := fixedMnemonics[m]; ok {
		return Mnem{Op: op}, true
	}

	// cvtsi2ss/sd and cvttss/sd2si allow a GPR width suffix.
	for stem, op := range map[string]Op{
		"cvtsi2ss": OpCVTSI2SS, "cvtsi2sd": OpCVTSI2SD,
		"cvttss2si": OpCVTTSS2SI, "cvttsd2si": OpCVTTSD2SI,
	} {
		if m == stem {
			return Mnem{Op: op}, true
		}
		if len(m) == len(stem)+1 && strings.HasPrefix(m, stem) {
			if w, ok := suffixWidth[m[len(stem)]]; ok {
				return Mnem{Op: op, Width: w}, true
			}
		}
	}

	// Conditional families: jcc, setcc, cmovcc.
	if rest, ok := strings.CutPrefix(m, "cmov"); ok {
		if c, tail, ok := cutCond(rest); ok {
			mn := Mnem{Op: OpCMOV, Cond: c}
			if tail == "" {
				return mn, true
			}
			if len(tail) == 1 {
				if w, ok := suffixWidth[tail[0]]; ok {
					mn.Width = w
					return mn, true
				}
			}
		}
		return Mnem{}, false
	}
	if rest, ok := strings.CutPrefix(m, "set"); ok {
		if c, tail, ok := cutCond(rest); ok && tail == "" {
			return Mnem{Op: OpSET, Cond: c, Width: W8}, true
		}
		return Mnem{}, false
	}
	if rest, ok := strings.CutPrefix(m, "j"); ok && m != "jmp" && m != "jmpq" {
		if c, tail, ok := cutCond(rest); ok && tail == "" {
			return Mnem{Op: OpJCC, Cond: c}, true
		}
		return Mnem{}, false
	}

	// movz/movs with two width letters: movzbl, movsbq, movswl, movslq...
	if len(m) == 6 && (strings.HasPrefix(m, "movz") || strings.HasPrefix(m, "movs")) {
		src, okS := suffixWidth[m[4]]
		dst, okD := suffixWidth[m[5]]
		if okS && okD && src < dst {
			op := OpMOVZX
			if m[3] == 's' {
				op = OpMOVSX
			}
			// movzlq does not exist (32-bit ops zero-extend implicitly).
			if op == OpMOVZX && src == W32 {
				return Mnem{}, false
			}
			return Mnem{Op: op, Width: dst, SrcWidth: src}, true
		}
		return Mnem{}, false
	}

	// Width-suffixed stems: addq, movl, testb, ...
	if len(m) >= 2 {
		if w, ok := suffixWidth[m[len(m)-1]]; ok {
			if op, ok := suffixedBases[m[:len(m)-1]]; ok {
				return Mnem{Op: op, Width: w}, true
			}
		}
	}
	if op, ok := suffixedBases[m]; ok {
		return Mnem{Op: op}, true
	}
	return Mnem{}, false
}

// Mnemonic renders the canonical AT&T mnemonic for an instruction with
// the given decoded fields. It is the inverse of ParseMnemonic up to
// suffix normalization (the canonical form always carries an explicit
// width suffix where the syntax allows one).
func (m Mnem) Mnemonic() string {
	switch m.Op {
	case OpJCC:
		return "j" + m.Cond.String()
	case OpSET:
		return "set" + m.Cond.String()
	case OpCMOV:
		return "cmov" + m.Cond.String()
	case OpMOVZX:
		return "movz" + widthSuffix(m.SrcWidth) + widthSuffix(m.Width)
	case OpMOVSX:
		return "movs" + widthSuffix(m.SrcWidth) + widthSuffix(m.Width)
	case OpCVTSI2SS, OpCVTSI2SD, OpCVTTSS2SI, OpCVTTSD2SI:
		return m.Op.String() + widthSuffix(m.Width)
	case OpNOP:
		// Multi-byte nops are spelled nopw/nopl like gas emits them.
		return "nop" + widthSuffix(m.Width)
	}
	if m.Op.HasWidthSuffix() && m.Width != W0 && m.Op != OpCMOV {
		return m.Op.String() + widthSuffix(m.Width)
	}
	return m.Op.String()
}
