package encode

import "mao/internal/x86"

// nopForms[k] is an instruction whose encoding under this package's
// canonical encoder is exactly k bytes, for k in 1..9. The memory
// operands are never accessed — 0F 1F forms are architectural no-ops
// regardless of their addressing bytes.
var nopForms = [...]func() *x86.Inst{
	1: func() *x86.Inst { return x86.NewInst(x86.Mnem{Op: x86.OpNOP}) },
	2: func() *x86.Inst { return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W16}) },
	3: func() *x86.Inst {
		return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W32},
			x86.MemOp(x86.Mem{Base: x86.RAX}))
	},
	4: func() *x86.Inst {
		return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W32},
			x86.MemOp(x86.Mem{Base: x86.RAX, Index: x86.RAX, Scale: 1}))
	},
	5: func() *x86.Inst {
		return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W32},
			x86.MemOp(x86.Mem{Disp: 8, Base: x86.RAX, Index: x86.RAX, Scale: 1}))
	},
	6: func() *x86.Inst {
		return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W16},
			x86.MemOp(x86.Mem{Disp: 8, Base: x86.RAX, Index: x86.RAX, Scale: 1}))
	},
	7: func() *x86.Inst {
		return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W32},
			x86.MemOp(x86.Mem{Disp: 128, Base: x86.RAX}))
	},
	8: func() *x86.Inst {
		return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W32},
			x86.MemOp(x86.Mem{Disp: 128, Base: x86.RAX, Index: x86.RAX, Scale: 1}))
	},
	9: func() *x86.Inst {
		return x86.NewInst(x86.Mnem{Op: x86.OpNOP, Width: x86.W16},
			x86.MemOp(x86.Mem{Disp: 128, Base: x86.RAX, Index: x86.RAX, Scale: 1}))
	},
}

// Nop returns a single no-op instruction that encodes to exactly n
// bytes, for n in 1..9 (the longest single form MAO synthesizes). It
// panics outside that range; callers padding larger gaps use
// NopSequence.
func Nop(n int) *x86.Inst {
	if n < 1 || n >= len(nopForms) {
		panic("encode: Nop length out of range")
	}
	return nopForms[n]()
}

// NopSequence returns instructions whose total encoded length is
// exactly n bytes, preferring the fewest instructions (gas pads with
// maximal multi-byte nops the same way).
func NopSequence(n int) []*x86.Inst {
	var out []*x86.Inst
	for n > 0 {
		k := n
		if k > 9 {
			k = 9
			// Avoid leaving a 1-byte remainder after a 9-byte nop
			// when an 8+2 split reads better; any split works, but
			// never leave k = n (which would loop forever on n > 9).
			if n == 10 {
				k = 8
			}
		}
		out = append(out, Nop(k))
		n -= k
	}
	return out
}

// OneByteNops returns n plain one-byte nop instructions — the form the
// paper's experiments insert ("inserting six nop instructions").
func OneByteNops(n int) []*x86.Inst {
	out := make([]*x86.Inst, n)
	for i := range out {
		out[i] = Nop(1)
	}
	return out
}
