package encode

// Cross-validation against the real GNU assembler. When as/objdump are
// installed, every instruction in the sample below is assembled with
// gas and the bytes are compared against this package's encoder. The
// test skips silently on machines without binutils, keeping the suite
// hermetic; the golden-byte tests in encode_test.go are authoritative.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var gasSamples = []string{
	"push %rbp",
	"push %r12",
	"pop %rbx",
	"pop %r15",
	"mov %rsp,%rbp",
	"mov %eax,%eax",
	"movq 24(%rsp), %rdx",
	"movq %rdx, %rcx",
	"movl %edx, (%rsi,%r8,4)",
	"movsbl 1(%rdi,%r8,4),%edx",
	"movzbl (%rdi),%eax",
	"movzwl 2(%rax),%ecx",
	"movswl %dx,%ecx",
	"movsbq %al,%rbx",
	"movslq %edi, %rax",
	"movb $1, %al",
	"movw $7, %cx",
	"movl $5, %eax",
	"movq $-1, %rax",
	"movq $2147483647, %r11",
	"movabsq $81985529216486895, %r10",
	"movl $7, -4(%rbp)",
	"movb $0, (%rax)",
	"andl $255,%eax",
	"addq $1, %r8",
	"addl $200, %edi",
	"addl $100000, %esi",
	"addl $100000, %eax",
	"adcq $0, %rdx",
	"sbbl %eax, %eax",
	"subl $16, %r15d",
	"subl %ebx, %ecx",
	"cmpl %r8d, %r9d",
	"cmpl $0, -4(%rbp)",
	"cmpq %rax, 8(%rsp)",
	"orl %esi, %edi",
	"orq $4096, %rax",
	"xorl %edi, %ebx",
	"xorb $1, %dl",
	"xorps %xmm0, %xmm0",
	"testl %r15d, %r15d",
	"testb $4, %dil",
	"testl $8, %eax",
	"testq $256, %rdx",
	"testb %al, %al",
	"incl %eax",
	"incq 8(%rsp)",
	"decl %r10d",
	"negl %edx",
	"notq %rax",
	"imull %esi, %edi",
	"imulq %r8, %r9",
	"imulq $8, %rax, %rdx",
	"imull $1000, %ecx, %eax",
	"mull %esi",
	"idivl %ecx",
	"divq %r8",
	"leaq 8(%rsp), %rdi",
	"leal (%r8,%rdi,1), %ebx",
	"leal 2(%rdx), %r8d",
	"leaq 0(,%rax,8), %rdx",
	"shrl $12, %edi",
	"shll %cl, %ebx",
	"shlq $3, %rdi",
	"sarl %ecx",
	"sarq $63, %rax",
	"rolw $5, %dx",
	"rorl $7, %r9d",
	"cltq",
	"cltd",
	"cqto",
	"cwtl",
	"ret",
	"leave",
	"nop",
	"ud2",
	"hlt",
	"pause",
	"sete %al",
	"setg %dl",
	"setbe %r10b",
	"setne -1(%rbp)",
	"cmovne %eax, %ebx",
	"cmovle %rax, %rbx",
	"cmovaq 8(%rdi), %rsi",
	"xchg %rbx, %rcx",
	"xchg %eax, %ecx",
	"xchg %rax, %r8",
	"xchgl %r9d, (%rdx)",
	"prefetchnta (%r9)",
	"prefetcht0 16(%rax)",
	"prefetcht1 (%rsi,%rdi,2)",
	"prefetcht2 64(%rbx)",
	"movl -4(%rbp), %eax",
	"movq (%r13), %rax",
	"movl 0(%r12), %eax",
	"movq %rax, (%rsp)",
	"jmp *%rax",
	"jmp *16(%rbx)",
	"call *%r11",
	"call *8(%rax,%rbx,4)",
	"pushq $3",
	"pushq $300",
	"pushq 16(%rbp)",
	"popq 8(%rsp)",
	"movss (%rax), %xmm1",
	"movss %xmm0,(%rdi,%rax,4)",
	"movsd %xmm2, 8(%rsp)",
	"movsd (%rbx,%rcx,8), %xmm5",
	"movaps %xmm1, %xmm2",
	"movups (%rdi), %xmm3",
	"movdqa %xmm0, %xmm8",
	"movdqu %xmm9, (%rsi)",
	"addss %xmm1, %xmm0",
	"addsd 8(%rax), %xmm2",
	"subsd %xmm3, %xmm4",
	"mulss %xmm3, %xmm3",
	"divsd %xmm1, %xmm0",
	"sqrtsd %xmm5, %xmm6",
	"andps %xmm1, %xmm2",
	"xorpd %xmm7, %xmm7",
	"pxor %xmm1, %xmm1",
	"ucomisd %xmm0, %xmm1",
	"ucomiss %xmm2, %xmm3",
	"comisd %xmm4, %xmm5",
	"cvtsi2sdq %rax, %xmm0",
	"cvtsi2ssl %edi, %xmm1",
	"cvttsd2si %xmm0, %eax",
	"cvttss2siq %xmm1, %rdx",
	"cvtss2sd %xmm0, %xmm1",
	"cvtsd2ss %xmm2, %xmm3",
	"movd %eax, %xmm0",
	"movd %xmm1, %edx",
	"movq %rax, %xmm0",
	"movq %xmm0, %rax",
	"movq %xmm1, %xmm2",
	"lock addl $1, (%rdi)",
	"lock xchgq %rax, (%rbx)",
	"movb %ah, %dl",
	"shrl $1, %eax",
	"addb %cl, %al",
	"cmpb $10, %r14b",
	"movw %ax, 6(%rsi)",
	"addw $12, %dx",
}

func TestCrossValidateAgainstGas(t *testing.T) {
	asPath, err1 := exec.LookPath("as")
	objdump, err2 := exec.LookPath("objdump")
	if err1 != nil || err2 != nil {
		t.Skip("binutils not installed; skipping gas cross-validation")
	}

	dir := t.TempDir()
	src := filepath.Join(dir, "x.s")
	obj := filepath.Join(dir, "x.o")

	var b strings.Builder
	b.WriteString(".text\n")
	for _, s := range gasSamples {
		b.WriteString("\t" + s + "\n")
	}
	if err := os.WriteFile(src, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(asPath, "--64", "-o", obj, src).CombinedOutput(); err != nil {
		t.Fatalf("as failed: %v\n%s", err, out)
	}
	out, err := exec.Command(objdump, "-d", "-j", ".text", obj).Output()
	if err != nil {
		t.Fatalf("objdump failed: %v", err)
	}
	gasBytes := parseObjdumpBytes(t, string(out))

	var mine []byte
	addr := int64(0)
	for _, s := range gasSamples {
		in := inst(t, s)
		eb, err := Encode(in, &Ctx{Addr: addr})
		if err != nil {
			t.Fatalf("Encode(%q): %v", s, err)
		}
		mine = append(mine, eb...)
		addr += int64(len(eb))
	}

	if len(mine) != len(gasBytes) {
		t.Errorf("total size mismatch: mine=%d gas=%d", len(mine), len(gasBytes))
	}
	limit := min(len(mine), len(gasBytes))
	for i := 0; i < limit; i++ {
		if mine[i] != gasBytes[i] {
			t.Fatalf("first divergence at offset %#x: mine=%02x gas=%02x\nmine: % x\ngas:  % x",
				i, mine[i], gasBytes[i],
				tail(mine, i), tail(gasBytes, i))
		}
	}
}

func tail(b []byte, i int) []byte {
	end := i + 16
	if end > len(b) {
		end = len(b)
	}
	return b[i:end]
}

// parseObjdumpBytes extracts the raw byte image from objdump -d text.
func parseObjdumpBytes(t *testing.T, out string) []byte {
	t.Helper()
	var img []byte
	for _, line := range strings.Split(out, "\n") {
		// Byte-carrying lines look like "   0:\t48 89 e5  \tmov ...".
		parts := strings.SplitN(line, ":\t", 2)
		if len(parts) != 2 {
			continue
		}
		hexPart := parts[1]
		if i := strings.IndexByte(hexPart, '\t'); i >= 0 {
			hexPart = hexPart[:i]
		}
		for _, f := range strings.Fields(hexPart) {
			var v byte
			if _, err := fmt.Sscanf(f, "%02x", &v); err != nil {
				t.Fatalf("bad objdump byte %q in line %q", f, line)
			}
			img = append(img, v)
		}
	}
	return img
}
