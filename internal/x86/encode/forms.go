package encode

import (
	"fmt"

	"mao/internal/x86"
)

// aluInfo describes the classic two-operand ALU group whose encodings
// share a regular structure: /digit selects the operation in the
// 80/81/83 immediate forms, and base is the 00-3F opcode row.
var aluInfo = map[x86.Op]struct {
	digit byte // /digit for 80/81/83 forms
	base  byte // opcode row: base+0 r8, +1 rv, +2/+3 RM forms
}{
	x86.OpADD: {0, 0x00},
	x86.OpOR:  {1, 0x08},
	x86.OpADC: {2, 0x10},
	x86.OpSBB: {3, 0x18},
	x86.OpAND: {4, 0x20},
	x86.OpSUB: {5, 0x28},
	x86.OpXOR: {6, 0x30},
	x86.OpCMP: {7, 0x38},
}

var shiftDigit = map[x86.Op]byte{
	x86.OpROL: 0, x86.OpROR: 1, x86.OpSHL: 4, x86.OpSHR: 5, x86.OpSAR: 7,
}

var group3Digit = map[x86.Op]byte{
	x86.OpNOT: 2, x86.OpNEG: 3, x86.OpMUL: 4, x86.OpIMUL: 5,
	x86.OpDIV: 6, x86.OpIDIV: 7,
}

// sseInfo describes the regular xmm <- xmm/m SSE arithmetic forms:
// mandatory prefix (0 = none) and the 0F xx opcode.
var sseInfo = map[x86.Op]struct {
	prefix byte
	opc    byte
}{
	x86.OpADDSS: {0xF3, 0x58}, x86.OpADDSD: {0xF2, 0x58},
	x86.OpSUBSS: {0xF3, 0x5C}, x86.OpSUBSD: {0xF2, 0x5C},
	x86.OpMULSS: {0xF3, 0x59}, x86.OpMULSD: {0xF2, 0x59},
	x86.OpDIVSS: {0xF3, 0x5E}, x86.OpDIVSD: {0xF2, 0x5E},
	x86.OpSQRTSS: {0xF3, 0x51}, x86.OpSQRTSD: {0xF2, 0x51},
	x86.OpXORPS: {0, 0x57}, x86.OpXORPD: {0x66, 0x57},
	x86.OpANDPS: {0, 0x54}, x86.OpANDPD: {0x66, 0x54},
	x86.OpUCOMISS: {0, 0x2E}, x86.OpUCOMISD: {0x66, 0x2E},
	x86.OpCOMISS: {0, 0x2F}, x86.OpCOMISD: {0x66, 0x2F},
	x86.OpCVTSS2SD: {0xF3, 0x5A}, x86.OpCVTSD2SS: {0xF2, 0x5A},
	x86.OpPXOR: {0x66, 0xEF},
}

var prefetchDigit = map[x86.Op]byte{
	x86.OpPREFETCHNTA: 0, x86.OpPREFETCHT0: 1,
	x86.OpPREFETCHT1: 2, x86.OpPREFETCHT2: 3,
}

func (e *enc) unsupported() error {
	return fmt.Errorf("encode: unsupported instruction form: %s", e.in)
}

func (e *enc) wantArgs(n int) error {
	if len(e.in.Args) != n {
		return fmt.Errorf("encode: %s: want %d operands, have %d", e.in, n, len(e.in.Args))
	}
	return nil
}

// encode dispatches on the opcode and operand shapes.
func (e *enc) encode() error {
	in := e.in
	if in.Lock {
		e.prefix(0xF0)
	}
	switch in.Op {
	case x86.OpMOV, x86.OpMOVABS:
		return e.encodeMOV()
	case x86.OpMOVZX, x86.OpMOVSX:
		return e.encodeMOVX()
	case x86.OpLEA:
		return e.encodeLEA()
	case x86.OpPUSH, x86.OpPOP:
		return e.encodePushPop()
	case x86.OpXCHG:
		return e.encodeXCHG()
	case x86.OpCMOV:
		return e.encodeCMOV()
	case x86.OpADD, x86.OpOR, x86.OpADC, x86.OpSBB,
		x86.OpAND, x86.OpSUB, x86.OpXOR, x86.OpCMP:
		return e.encodeALU()
	case x86.OpINC, x86.OpDEC:
		return e.encodeIncDec()
	case x86.OpNOT, x86.OpNEG, x86.OpMUL, x86.OpIDIV, x86.OpDIV:
		return e.encodeGroup3()
	case x86.OpIMUL:
		return e.encodeIMUL()
	case x86.OpTEST:
		return e.encodeTEST()
	case x86.OpSHL, x86.OpSHR, x86.OpSAR, x86.OpROL, x86.OpROR:
		return e.encodeShift()
	case x86.OpJMP, x86.OpJCC, x86.OpCALL:
		return e.encodeBranch()
	case x86.OpRET:
		e.op(0xC3)
		return nil
	case x86.OpLEAVE:
		e.op(0xC9)
		return nil
	case x86.OpSET:
		return e.encodeSET()
	case x86.OpCLTQ:
		e.rexBit(8)
		e.op(0x98)
		return nil
	case x86.OpCWTL:
		e.op(0x98)
		return nil
	case x86.OpCLTD:
		e.op(0x99)
		return nil
	case x86.OpCQTO:
		e.rexBit(8)
		e.op(0x99)
		return nil
	case x86.OpNOP:
		return e.encodeNOP()
	case x86.OpUD2:
		e.op(0x0F, 0x0B)
		return nil
	case x86.OpHLT:
		e.op(0xF4)
		return nil
	case x86.OpPAUSE:
		e.prefix(0xF3)
		e.op(0x90)
		return nil
	case x86.OpPREFETCHNTA, x86.OpPREFETCHT0, x86.OpPREFETCHT1, x86.OpPREFETCHT2:
		if err := e.wantArgs(1); err != nil {
			return err
		}
		if e.in.Args[0].Kind != x86.KindMem {
			return e.unsupported()
		}
		e.op(0x0F, 0x18)
		return e.memModRM(prefetchDigit[in.Op], e.in.Args[0].Mem)
	case x86.OpMOVSS, x86.OpMOVSD, x86.OpMOVAPS, x86.OpMOVUPS,
		x86.OpMOVDQA, x86.OpMOVDQU:
		return e.encodeSSEMove()
	case x86.OpMOVD, x86.OpMOVQX:
		return e.encodeMOVDQ()
	case x86.OpCVTSI2SS, x86.OpCVTSI2SD:
		return e.encodeCVTToSSE()
	case x86.OpCVTTSS2SI, x86.OpCVTTSD2SI:
		return e.encodeCVTToGPR()
	default:
		if info, ok := sseInfo[in.Op]; ok {
			return e.encodeSSEArith(info.prefix, info.opc)
		}
	}
	return e.unsupported()
}

func (e *enc) encodeMOV() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	w := e.in.Width

	if src.Kind == x86.KindImm || (src.Kind == x86.KindImm && src.Sym != "") {
		if src.Sym != "" {
			return e.unsupported() // symbolic immediates need relocations
		}
		v := src.Imm
		if dst.Kind == x86.KindReg {
			if err := e.useReg(dst.Reg, 1); err != nil {
				return err
			}
			switch w {
			case x86.W8:
				e.op(0xB0 + byte(dst.Reg.Num()&7))
				e.imm8(v)
			case x86.W16:
				e.prefix(0x66)
				e.op(0xB8 + byte(dst.Reg.Num()&7))
				e.imm16(v)
			case x86.W32:
				e.op(0xB8 + byte(dst.Reg.Num()&7))
				e.imm32(v)
			case x86.W64:
				if e.in.Op == x86.OpMOVABS || !fitsInt32(v) {
					e.rexBit(8)
					e.op(0xB8 + byte(dst.Reg.Num()&7))
					e.imm64(v)
				} else {
					e.rexBit(8)
					e.op(0xC7)
					if err := e.regDirect(0, dst.Reg); err != nil {
						return err
					}
					e.imm32(v)
				}
			default:
				return e.unsupported()
			}
			return nil
		}
		if dst.Kind == x86.KindMem {
			e.widthPrefixREX(w)
			if w == x86.W8 {
				e.op(0xC6)
			} else {
				e.op(0xC7)
			}
			if err := e.memModRM(0, dst.Mem); err != nil {
				return err
			}
			switch w {
			case x86.W8:
				e.imm8(v)
			case x86.W16:
				e.imm16(v)
			case x86.W32, x86.W64:
				if !fitsInt32(v) {
					return fmt.Errorf("encode: %s: immediate does not fit imm32", e.in)
				}
				e.imm32(v)
			default:
				return e.unsupported()
			}
			return nil
		}
		return e.unsupported()
	}

	// mov r, r/m (MR) — gas' choice for register-to-register.
	if src.Kind == x86.KindReg && src.Reg.IsGPR() {
		e.widthPrefixREX(w)
		if err := e.useReg(src.Reg, 4); err != nil {
			return err
		}
		if w == x86.W8 {
			e.op(0x88)
		} else {
			e.op(0x89)
		}
		return e.rmOperand(byte(src.Reg.Num()), dst)
	}
	// mov r/m, r (RM).
	if dst.Kind == x86.KindReg && dst.Reg.IsGPR() && src.Kind == x86.KindMem {
		e.widthPrefixREX(w)
		if err := e.useReg(dst.Reg, 4); err != nil {
			return err
		}
		if w == x86.W8 {
			e.op(0x8A)
		} else {
			e.op(0x8B)
		}
		return e.rmOperand(byte(dst.Reg.Num()), src)
	}
	return e.unsupported()
}

func (e *enc) encodeMOVX() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	if dst.Kind != x86.KindReg {
		return e.unsupported()
	}
	e.widthPrefixREX(e.in.Width)
	if err := e.useReg(dst.Reg, 4); err != nil {
		return err
	}
	switch {
	case e.in.Op == x86.OpMOVZX && e.in.SrcWidth == x86.W8:
		e.op(0x0F, 0xB6)
	case e.in.Op == x86.OpMOVZX && e.in.SrcWidth == x86.W16:
		e.op(0x0F, 0xB7)
	case e.in.Op == x86.OpMOVSX && e.in.SrcWidth == x86.W8:
		e.op(0x0F, 0xBE)
	case e.in.Op == x86.OpMOVSX && e.in.SrcWidth == x86.W16:
		e.op(0x0F, 0xBF)
	case e.in.Op == x86.OpMOVSX && e.in.SrcWidth == x86.W32:
		e.op(0x63) // movslq
	default:
		return e.unsupported()
	}
	return e.rmOperand(byte(dst.Reg.Num()), src)
}

func (e *enc) encodeLEA() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	if src.Kind != x86.KindMem || dst.Kind != x86.KindReg {
		return e.unsupported()
	}
	e.widthPrefixREX(e.in.Width)
	if err := e.useReg(dst.Reg, 4); err != nil {
		return err
	}
	e.op(0x8D)
	return e.memModRM(byte(dst.Reg.Num()), src.Mem)
}

func (e *enc) encodePushPop() error {
	if err := e.wantArgs(1); err != nil {
		return err
	}
	a := e.in.Args[0]
	push := e.in.Op == x86.OpPUSH
	switch a.Kind {
	case x86.KindReg:
		if a.Reg.Width() != x86.W64 {
			return e.unsupported() // only 64-bit pushes in 64-bit mode
		}
		if err := e.useReg(a.Reg, 1); err != nil {
			return err
		}
		if push {
			e.op(0x50 + byte(a.Reg.Num()&7))
		} else {
			e.op(0x58 + byte(a.Reg.Num()&7))
		}
		return nil
	case x86.KindImm:
		if !push {
			return e.unsupported()
		}
		if fitsInt8(a.Imm) {
			e.op(0x6A)
			e.imm8(a.Imm)
		} else if fitsInt32(a.Imm) {
			e.op(0x68)
			e.imm32(a.Imm)
		} else {
			return fmt.Errorf("encode: %s: push immediate too large", e.in)
		}
		return nil
	case x86.KindMem:
		if push {
			e.op(0xFF)
			return e.memModRM(6, a.Mem)
		}
		e.op(0x8F)
		return e.memModRM(0, a.Mem)
	}
	return e.unsupported()
}

func (e *enc) encodeXCHG() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	if src.Kind != x86.KindReg {
		src, dst = dst, src
	}
	if src.Kind != x86.KindReg {
		return e.unsupported()
	}
	w := e.in.Width
	// Accumulator short form 90+r, as gas emits it. xchg of the
	// accumulator with itself keeps the 87 form (90 would be NOP,
	// which is not semantically equivalent in 64-bit mode).
	if w != x86.W8 && dst.Kind == x86.KindReg && src.Reg != dst.Reg {
		other := x86.RegNone
		if src.Reg.Family() == x86.RAX {
			other = dst.Reg
		} else if dst.Reg.Family() == x86.RAX {
			other = src.Reg
		}
		if other != x86.RegNone {
			e.widthPrefixREX(w)
			if err := e.useReg(other, 1); err != nil {
				return err
			}
			e.op(0x90 + byte(other.Num()&7))
			return nil
		}
	}
	e.widthPrefixREX(w)
	if err := e.useReg(src.Reg, 4); err != nil {
		return err
	}
	if w == x86.W8 {
		e.op(0x86)
	} else {
		e.op(0x87)
	}
	return e.rmOperand(byte(src.Reg.Num()), dst)
}

func (e *enc) encodeCMOV() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	if dst.Kind != x86.KindReg {
		return e.unsupported()
	}
	e.widthPrefixREX(e.in.Width)
	if err := e.useReg(dst.Reg, 4); err != nil {
		return err
	}
	e.op(0x0F, 0x40+byte(e.in.Cond))
	return e.rmOperand(byte(dst.Reg.Num()), src)
}

func (e *enc) encodeALU() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	info := aluInfo[e.in.Op]
	src, dst := e.in.Args[0], e.in.Args[1]
	w := e.in.Width
	e.widthPrefixREX(w)

	if src.Kind == x86.KindImm {
		if src.Sym != "" {
			return e.unsupported()
		}
		v := src.Imm
		switch {
		case w == x86.W8:
			if dst.IsReg(x86.AL) {
				e.op(info.base + 4)
				e.imm8(v)
				return nil
			}
			e.op(0x80)
			if err := e.rmOperand(info.digit, dst); err != nil {
				return err
			}
			e.imm8(v)
			return nil
		case fitsInt8(v):
			e.op(0x83)
			if err := e.rmOperand(info.digit, dst); err != nil {
				return err
			}
			e.imm8(v)
			return nil
		default:
			if w == x86.W64 && !fitsInt32(v) {
				return fmt.Errorf("encode: %s: immediate does not fit imm32", e.in)
			}
			// Accumulator short form saves the ModRM byte.
			if dst.Kind == x86.KindReg && dst.Reg.Family() == x86.RAX &&
				dst.Reg.Width() == w {
				e.op(info.base + 5)
			} else {
				e.op(0x81)
				if err := e.rmOperand(info.digit, dst); err != nil {
					return err
				}
			}
			if w == x86.W16 {
				e.imm16(v)
			} else {
				e.imm32(v)
			}
			return nil
		}
	}
	// r, r/m (MR).
	if src.Kind == x86.KindReg && src.Reg.IsGPR() {
		if err := e.useReg(src.Reg, 4); err != nil {
			return err
		}
		if w == x86.W8 {
			e.op(info.base + 0)
		} else {
			e.op(info.base + 1)
		}
		return e.rmOperand(byte(src.Reg.Num()), dst)
	}
	// m, r (RM).
	if src.Kind == x86.KindMem && dst.Kind == x86.KindReg {
		if err := e.useReg(dst.Reg, 4); err != nil {
			return err
		}
		if w == x86.W8 {
			e.op(info.base + 2)
		} else {
			e.op(info.base + 3)
		}
		return e.rmOperand(byte(dst.Reg.Num()), src)
	}
	return e.unsupported()
}

func (e *enc) encodeIncDec() error {
	if err := e.wantArgs(1); err != nil {
		return err
	}
	w := e.in.Width
	e.widthPrefixREX(w)
	digit := byte(0)
	if e.in.Op == x86.OpDEC {
		digit = 1
	}
	if w == x86.W8 {
		e.op(0xFE)
	} else {
		e.op(0xFF)
	}
	return e.rmOperand(digit, e.in.Args[0])
}

func (e *enc) encodeGroup3() error {
	if err := e.wantArgs(1); err != nil {
		return err
	}
	w := e.in.Width
	e.widthPrefixREX(w)
	if w == x86.W8 {
		e.op(0xF6)
	} else {
		e.op(0xF7)
	}
	return e.rmOperand(group3Digit[e.in.Op], e.in.Args[0])
}

func (e *enc) encodeIMUL() error {
	switch len(e.in.Args) {
	case 1:
		e.widthPrefixREX(e.in.Width)
		if e.in.Width == x86.W8 {
			e.op(0xF6)
		} else {
			e.op(0xF7)
		}
		return e.rmOperand(group3Digit[x86.OpIMUL], e.in.Args[0])
	case 2:
		src, dst := e.in.Args[0], e.in.Args[1]
		if dst.Kind != x86.KindReg || e.in.Width == x86.W8 {
			return e.unsupported()
		}
		e.widthPrefixREX(e.in.Width)
		if err := e.useReg(dst.Reg, 4); err != nil {
			return err
		}
		e.op(0x0F, 0xAF)
		return e.rmOperand(byte(dst.Reg.Num()), src)
	case 3:
		// imul imm, r/m, r.
		imm, src, dst := e.in.Args[0], e.in.Args[1], e.in.Args[2]
		if imm.Kind != x86.KindImm || dst.Kind != x86.KindReg || e.in.Width == x86.W8 {
			return e.unsupported()
		}
		e.widthPrefixREX(e.in.Width)
		if err := e.useReg(dst.Reg, 4); err != nil {
			return err
		}
		if fitsInt8(imm.Imm) {
			e.op(0x6B)
			if err := e.rmOperand(byte(dst.Reg.Num()), src); err != nil {
				return err
			}
			e.imm8(imm.Imm)
			return nil
		}
		if !fitsInt32(imm.Imm) {
			return fmt.Errorf("encode: %s: immediate does not fit imm32", e.in)
		}
		e.op(0x69)
		if err := e.rmOperand(byte(dst.Reg.Num()), src); err != nil {
			return err
		}
		if e.in.Width == x86.W16 {
			e.imm16(imm.Imm)
		} else {
			e.imm32(imm.Imm)
		}
		return nil
	}
	return e.unsupported()
}

func (e *enc) encodeTEST() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	w := e.in.Width
	e.widthPrefixREX(w)
	if src.Kind == x86.KindImm {
		if dst.Kind == x86.KindReg && dst.Reg.Family() == x86.RAX && dst.Reg.Width() == w {
			if w == x86.W8 {
				e.op(0xA8)
				e.imm8(src.Imm)
				return nil
			}
			e.op(0xA9)
		} else {
			if w == x86.W8 {
				e.op(0xF6)
			} else {
				e.op(0xF7)
			}
			if err := e.rmOperand(0, dst); err != nil {
				return err
			}
			if w == x86.W8 {
				e.imm8(src.Imm)
				return nil
			}
		}
		switch w {
		case x86.W16:
			e.imm16(src.Imm)
		default:
			if w == x86.W64 && !fitsInt32(src.Imm) {
				return fmt.Errorf("encode: %s: immediate does not fit imm32", e.in)
			}
			e.imm32(src.Imm)
		}
		return nil
	}
	if src.Kind == x86.KindReg {
		if err := e.useReg(src.Reg, 4); err != nil {
			return err
		}
		if w == x86.W8 {
			e.op(0x84)
		} else {
			e.op(0x85)
		}
		return e.rmOperand(byte(src.Reg.Num()), dst)
	}
	return e.unsupported()
}

func (e *enc) encodeShift() error {
	digit := shiftDigit[e.in.Op]
	w := e.in.Width
	e.widthPrefixREX(w)
	opc1, opcImm, opcCL := byte(0xD1), byte(0xC1), byte(0xD3)
	if w == x86.W8 {
		opc1, opcImm, opcCL = 0xD0, 0xC0, 0xD2
	}
	switch len(e.in.Args) {
	case 1: // implicit count of 1: "sarl %ecx"
		e.op(opc1)
		return e.rmOperand(digit, e.in.Args[0])
	case 2:
		cnt, dst := e.in.Args[0], e.in.Args[1]
		if cnt.Kind == x86.KindImm {
			if cnt.Imm == 1 {
				e.op(opc1)
				return e.rmOperand(digit, dst)
			}
			e.op(opcImm)
			if err := e.rmOperand(digit, dst); err != nil {
				return err
			}
			e.imm8(cnt.Imm)
			return nil
		}
		if cnt.IsReg(x86.CL) {
			e.op(opcCL)
			return e.rmOperand(digit, dst)
		}
	}
	return e.unsupported()
}

func (e *enc) encodeBranch() error {
	if err := e.wantArgs(1); err != nil {
		return err
	}
	a := e.in.Args[0]

	// Indirect forms.
	if a.Star {
		e.op(0xFF)
		digit := byte(4) // jmp
		if e.in.Op == x86.OpCALL {
			digit = 2
		} else if e.in.Op == x86.OpJCC {
			return e.unsupported()
		}
		switch a.Kind {
		case x86.KindReg:
			return e.regDirect(digit, a.Reg)
		case x86.KindMem:
			return e.memModRM(digit, a.Mem)
		case x86.KindLabel:
			return e.memModRM(digit, x86.Mem{Sym: a.Sym, Disp: a.Off})
		}
		return e.unsupported()
	}

	if a.Kind != x86.KindLabel {
		return e.unsupported()
	}
	target, known := e.ctx.symAddr(a.Sym)
	target += a.Off

	switch e.in.Op {
	case x86.OpCALL:
		e.op(0xE8)
		rel := int64(0)
		if known {
			rel = target - (e.ctx.Addr + 5)
		}
		e.imm32(rel)
		return nil
	case x86.OpJMP:
		if known && !e.ctx.ForceLong {
			if rel := target - (e.ctx.Addr + 2); fitsInt8(rel) {
				e.op(0xEB)
				e.imm8(rel)
				return nil
			}
		}
		e.op(0xE9)
		rel := int64(0)
		if known {
			rel = target - (e.ctx.Addr + 5)
		}
		e.imm32(rel)
		return nil
	case x86.OpJCC:
		if known && !e.ctx.ForceLong {
			if rel := target - (e.ctx.Addr + 2); fitsInt8(rel) {
				e.op(0x70 + byte(e.in.Cond))
				e.imm8(rel)
				return nil
			}
		}
		e.op(0x0F, 0x80+byte(e.in.Cond))
		rel := int64(0)
		if known {
			rel = target - (e.ctx.Addr + 6)
		}
		e.imm32(rel)
		return nil
	}
	return e.unsupported()
}

func (e *enc) encodeSET() error {
	if err := e.wantArgs(1); err != nil {
		return err
	}
	e.op(0x0F, 0x90+byte(e.in.Cond))
	return e.rmOperand(0, e.in.Args[0])
}

// encodeNOP handles the plain one-byte nop and the gas multi-byte
// "nopw/nopl mem" forms.
func (e *enc) encodeNOP() error {
	if len(e.in.Args) == 0 {
		if e.in.Width == x86.W16 {
			e.prefix(0x66) // the canonical 2-byte nop, 66 90
		}
		e.op(0x90)
		return nil
	}
	if len(e.in.Args) == 1 && e.in.Args[0].Kind == x86.KindMem {
		if e.in.Width == x86.W16 {
			e.prefix(0x66)
		}
		e.op(0x0F, 0x1F)
		return e.memModRM(0, e.in.Args[0].Mem)
	}
	return e.unsupported()
}

// encodeSSEMove handles movss/movsd/movaps/movups/movdqa/movdqu.
func (e *enc) encodeSSEMove() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	var prefix byte
	var loadOpc, storeOpc byte
	switch e.in.Op {
	case x86.OpMOVSS:
		prefix, loadOpc, storeOpc = 0xF3, 0x10, 0x11
	case x86.OpMOVSD:
		prefix, loadOpc, storeOpc = 0xF2, 0x10, 0x11
	case x86.OpMOVAPS:
		prefix, loadOpc, storeOpc = 0, 0x28, 0x29
	case x86.OpMOVUPS:
		prefix, loadOpc, storeOpc = 0, 0x10, 0x11
	case x86.OpMOVDQA:
		prefix, loadOpc, storeOpc = 0x66, 0x6F, 0x7F
	case x86.OpMOVDQU:
		prefix, loadOpc, storeOpc = 0xF3, 0x6F, 0x7F
	}
	if prefix != 0 {
		e.prefix(prefix)
	}
	if dst.Kind == x86.KindReg && dst.Reg.IsXMM() {
		if err := e.useReg(dst.Reg, 4); err != nil {
			return err
		}
		e.op(0x0F, loadOpc)
		return e.rmOperand(byte(dst.Reg.Num()), src)
	}
	if src.Kind == x86.KindReg && src.Reg.IsXMM() {
		if err := e.useReg(src.Reg, 4); err != nil {
			return err
		}
		e.op(0x0F, storeOpc)
		return e.rmOperand(byte(src.Reg.Num()), dst)
	}
	return e.unsupported()
}

// encodeMOVDQ handles movd/movq between GPRs/memory and xmm.
func (e *enc) encodeMOVDQ() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	w64 := e.in.Op == x86.OpMOVQX

	srcX := src.Kind == x86.KindReg && src.Reg.IsXMM()
	dstX := dst.Kind == x86.KindReg && dst.Reg.IsXMM()

	switch {
	case srcX && dstX:
		// movq xmm, xmm: F3 0F 7E.
		e.prefix(0xF3)
		if err := e.useReg(dst.Reg, 4); err != nil {
			return err
		}
		e.op(0x0F, 0x7E)
		return e.regDirect(byte(dst.Reg.Num()), src.Reg)
	case dstX:
		// GPR/mem -> xmm: 66 (REX.W) 0F 6E.
		e.prefix(0x66)
		if w64 {
			e.rexBit(8)
		}
		if err := e.useReg(dst.Reg, 4); err != nil {
			return err
		}
		e.op(0x0F, 0x6E)
		return e.rmOperand(byte(dst.Reg.Num()), src)
	case srcX:
		// xmm -> GPR/mem: 66 (REX.W) 0F 7E; xmm -> m64 via 66 0F D6.
		if w64 && dst.Kind == x86.KindMem {
			e.prefix(0x66)
			if err := e.useReg(src.Reg, 4); err != nil {
				return err
			}
			e.op(0x0F, 0xD6)
			return e.memModRM(byte(src.Reg.Num()), dst.Mem)
		}
		e.prefix(0x66)
		if w64 {
			e.rexBit(8)
		}
		if err := e.useReg(src.Reg, 4); err != nil {
			return err
		}
		e.op(0x0F, 0x7E)
		return e.rmOperand(byte(src.Reg.Num()), dst)
	}
	return e.unsupported()
}

func (e *enc) encodeCVTToSSE() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	if dst.Kind != x86.KindReg || !dst.Reg.IsXMM() {
		return e.unsupported()
	}
	if e.in.Op == x86.OpCVTSI2SS {
		e.prefix(0xF3)
	} else {
		e.prefix(0xF2)
	}
	if e.in.Width == x86.W64 {
		e.rexBit(8)
	}
	if err := e.useReg(dst.Reg, 4); err != nil {
		return err
	}
	e.op(0x0F, 0x2A)
	return e.rmOperand(byte(dst.Reg.Num()), src)
}

func (e *enc) encodeCVTToGPR() error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	if dst.Kind != x86.KindReg || !dst.Reg.IsGPR() {
		return e.unsupported()
	}
	if e.in.Op == x86.OpCVTTSS2SI {
		e.prefix(0xF3)
	} else {
		e.prefix(0xF2)
	}
	if dst.Reg.Width() == x86.W64 {
		e.rexBit(8)
	}
	if err := e.useReg(dst.Reg, 4); err != nil {
		return err
	}
	e.op(0x0F, 0x2C)
	return e.rmOperand(byte(dst.Reg.Num()), src)
}

// encodeSSEArith handles the regular xmm <- xmm/m forms.
func (e *enc) encodeSSEArith(prefix, opc byte) error {
	if err := e.wantArgs(2); err != nil {
		return err
	}
	src, dst := e.in.Args[0], e.in.Args[1]
	if dst.Kind != x86.KindReg || !dst.Reg.IsXMM() {
		return e.unsupported()
	}
	if prefix != 0 {
		e.prefix(prefix)
	}
	if err := e.useReg(dst.Reg, 4); err != nil {
		return err
	}
	e.op(0x0F, opc)
	return e.rmOperand(byte(dst.Reg.Num()), src)
}
