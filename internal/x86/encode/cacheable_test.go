package encode

import (
	"testing"

	"mao/internal/x86"
)

func TestPositionIndependent(t *testing.T) {
	tests := []struct {
		in   *x86.Inst
		want bool
	}{
		{x86.NewInst(x86.Mnem{Op: x86.OpNOP}), true},
		{x86.NewInst(x86.Mnem{Op: x86.OpMOV, Width: x86.W32}, x86.Imm(5), x86.RegOp(x86.RAX)), true},
		{x86.NewInst(x86.Mnem{Op: x86.OpMOV, Width: x86.W64},
			x86.MemOp(x86.Mem{Disp: 8, Base: x86.RSP}), x86.RegOp(x86.RDI)), true},
		// Direct branch target: size depends on distance.
		{x86.NewInst(x86.Mnem{Op: x86.OpJMP}, x86.LabelOp(".L1")), false},
		// Symbolic displacement resolves to an address.
		{x86.NewInst(x86.Mnem{Op: x86.OpMOV, Width: x86.W64},
			x86.MemOp(x86.Mem{Sym: "counter", Base: x86.RIP}), x86.RegOp(x86.RAX)), false},
		// RIP-relative without a symbol is still address-dependent.
		{x86.NewInst(x86.Mnem{Op: x86.OpLEA, Width: x86.W64},
			x86.MemOp(x86.Mem{Disp: 16, Base: x86.RIP}), x86.RegOp(x86.RAX)), false},
	}
	for _, tt := range tests {
		if got := PositionIndependent(tt.in); got != tt.want {
			t.Errorf("PositionIndependent(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
