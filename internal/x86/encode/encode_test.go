package encode

import (
	"encoding/hex"
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/x86"
)

// inst parses a single instruction from AT&T text.
func inst(t *testing.T, src string) *x86.Inst {
	t.Helper()
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			return n.Inst
		}
	}
	t.Fatalf("no instruction in %q", src)
	return nil
}

func checkBytes(t *testing.T, src, wantHex string, ctx *Ctx) {
	t.Helper()
	got, err := Encode(inst(t, src), ctx)
	if err != nil {
		t.Errorf("Encode(%q): %v", src, err)
		return
	}
	want, err := hex.DecodeString(strings.ReplaceAll(wantHex, " ", ""))
	if err != nil {
		t.Fatalf("bad hex in test: %q", wantHex)
	}
	if string(got) != string(want) {
		t.Errorf("Encode(%q) = %x, want %x", src, got, want)
	}
}

// TestPaperSection2Listing encodes the paper's Section II example with
// the first listing's layout and verifies each encoding byte-for-byte.
// (The paper's printed rel32 for the final jne, "7a ff ff ff", is
// internally inconsistent with its own stated offsets — the
// arithmetically correct value from offset 0x90 to target 0xd is
// -0x89 = "77 ff ff ff" — so this test uses the computed value; the
// second listing in the paper is self-consistent and is checked
// verbatim in the relax package's tests.)
func TestPaperSection2Listing(t *testing.T) {
	syms := map[string]int64{".Lbody": 0xd, ".Lcheck": 0x8c}
	ctxAt := func(addr int64) *Ctx {
		return &Ctx{Addr: addr, SymAddr: func(s string) (int64, bool) {
			v, ok := syms[s]
			return v, ok
		}}
	}
	checkBytes(t, "push %rbp", "55", nil)
	checkBytes(t, "mov %rsp,%rbp", "48 89 e5", nil)
	checkBytes(t, "movl $0x5,-0x4(%rbp)", "c7 45 fc 05 00 00 00", nil)
	checkBytes(t, "jmp .Lcheck", "eb 7f", ctxAt(0xb))
	checkBytes(t, "addl $0x1,-0x4(%rbp)", "83 45 fc 01", nil)
	checkBytes(t, "subl $0x1,-0x4(%rbp)", "83 6d fc 01", nil)
	checkBytes(t, "cmpl $0x0,-0x4(%rbp)", "83 7d fc 00", nil)
	checkBytes(t, "jne .Lbody", "0f 85 77 ff ff ff", ctxAt(0x90))
}

// TestPaperSection2AfterNop checks the second (post-insertion) listing,
// which is self-consistent in the paper.
func TestPaperSection2AfterNop(t *testing.T) {
	syms := map[string]int64{".Lbody": 0x10, ".Lcheck": 0x90}
	ctxAt := func(addr int64) *Ctx {
		return &Ctx{Addr: addr, SymAddr: func(s string) (int64, bool) {
			v, ok := syms[s]
			return v, ok
		}}
	}
	// The jmp no longer fits rel8 and becomes e9 rel32 = 0x80.
	checkBytes(t, "jmpq .Lcheck", "e9 80 00 00 00", ctxAt(0xb))
	checkBytes(t, "nop", "90", nil)
	checkBytes(t, "jne .Lbody", "0f 85 76 ff ff ff", ctxAt(0x94))
}

func TestBasicEncodings(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"mov %eax,%eax", "89 c0"}, // the redundant zero-extension idiom
		{"andl $255,%eax", "25 ff 00 00 00"},
		{"subl $16, %r15d", "41 83 ef 10"},
		{"testl %r15d, %r15d", "45 85 ff"},
		{"movq 24(%rsp), %rdx", "48 8b 54 24 18"},
		{"movq 24(%rsp), %rcx", "48 8b 4c 24 18"},
		{"movq %rdx, %rcx", "48 89 d1"},
		{"movsbl 1(%rdi,%r8,4),%edx", "42 0f be 54 87 01"},
		{"movsbl (%rdi,%r8,4),%eax", "42 0f be 04 87"},
		{"movl %edx, (%rsi,%r8,4)", "42 89 14 86"},
		{"addq $1, %r8", "49 83 c0 01"},
		{"cmpl %r8d, %r9d", "45 39 c1"},
		{"movss %xmm0,(%rdi,%rax,4)", "f3 0f 11 04 87"},
		{"add $0x1,%rax", "48 83 c0 01"},
		{"cmp $0x8,%rax", "48 83 f8 08"},
		{"xorl %edi, %ebx", "31 fb"},
		{"subl %ebx, %ecx", "29 d9"},
		{"movl %ebx, %edi", "89 df"},
		{"shrl $12, %edi", "c1 ef 0c"},
		{"xorl %edi, %edx", "31 fa"},
		{"leal (%r8,%rdi,1), %ebx", "41 8d 1c 38"},
		{"movl %ebx, %ecx", "89 d9"},
		{"sarl %ecx", "d1 f9"},
		{"xorb $1, %dl", "80 f2 01"},
		{"leal 2(%rdx), %r8d", "44 8d 42 02"},
		{"movzbl %al, %eax", "0f b6 c0"},
		{"movslq %edi, %rax", "48 63 c7"},
		{"movl $5, %eax", "b8 05 00 00 00"},
		{"movb $1, %al", "b0 01"},
		{"movw $7, %cx", "66 b9 07 00"},
		{"movq $-1, %rax", "48 c7 c0 ff ff ff ff"},
		{"movabsq $81985529216486895, %r10", "49 ba ef cd ab 89 67 45 23 01"},
		{"push %rbp", "55"},
		{"push %r12", "41 54"},
		{"pop %rbx", "5b"},
		{"pushq $3", "6a 03"},
		{"pushq $300", "68 2c 01 00 00"},
		{"incl %eax", "ff c0"},
		{"decq %r9", "49 ff c9"},
		{"negl %edx", "f7 da"},
		{"notq %rax", "48 f7 d0"},
		{"imull %esi, %edi", "0f af fe"},
		{"imulq $8, %rax, %rdx", "48 6b d0 08"},
		{"idivl %ecx", "f7 f9"},
		{"cltq", "48 98"},
		{"cltd", "99"},
		{"cqto", "48 99"},
		{"ret", "c3"},
		{"leave", "c9"},
		{"nop", "90"},
		{"ud2", "0f 0b"},
		{"pause", "f3 90"},
		{"sete %al", "0f 94 c0"},
		{"setg %dl", "0f 9f c2"},
		{"cmovne %eax, %ebx", "0f 45 d8"},
		{"cmovle %rax, %rbx", "48 0f 4e d8"},
		{"xchg %rbx, %rcx", "48 87 d9"},
		{"xchg %eax, %ecx", "91"},
		{"xchg %rax, %r8", "49 90"},
		{"prefetchnta (%r9)", "41 0f 18 01"},
		{"prefetcht0 16(%rax)", "0f 18 48 10"},
		{"movl -4(%rbp), %eax", "8b 45 fc"},
		{"movq (%r13), %rax", "49 8b 45 00"},
		{"movl 0(%r12), %eax", "41 8b 04 24"},
		{"movl tbl(,%rdi,8), %eax", "8b 04 fd 00 00 00 00"},
		{"jmp *%rax", "ff e0"},
		{"jmp *16(%rbx)", "ff 63 10"},
		{"call *%r11", "41 ff d3"},
		{"movss (%rax), %xmm1", "f3 0f 10 08"},
		{"movsd %xmm2, 8(%rsp)", "f2 0f 11 54 24 08"},
		{"addsd %xmm1, %xmm0", "f2 0f 58 c1"},
		{"mulss %xmm3, %xmm3", "f3 0f 59 db"},
		{"xorps %xmm0, %xmm0", "0f 57 c0"},
		{"pxor %xmm1, %xmm1", "66 0f ef c9"},
		{"ucomisd %xmm0, %xmm1", "66 0f 2e c8"},
		{"cvtsi2sdq %rax, %xmm0", "f2 48 0f 2a c0"},
		{"cvttsd2si %xmm0, %eax", "f2 0f 2c c0"},
		{"movd %eax, %xmm0", "66 0f 6e c0"},
		{"movq %rax, %xmm0", "66 48 0f 6e c0"},
		{"movq %xmm0, %rax", "66 48 0f 7e c0"},
		{"movq %xmm1, %xmm2", "f3 0f 7e d1"},
		{"lock addl $1, (%rdi)", "f0 83 07 01"},
		{"testb $4, %dil", "40 f6 c7 04"},
		{"testq $256, %rdx", "48 f7 c2 00 01 00 00"},
		{"testl $8, %eax", "a9 08 00 00 00"},
		{"movb %ah, %dl", "88 e2"},
		{"shlq $3, %rdi", "48 c1 e7 03"},
		{"shll %cl, %ebx", "d3 e3"},
		{"shrl $1, %eax", "d1 e8"},
		{"rolw $5, %dx", "66 c1 c2 05"},
	}
	for _, c := range cases {
		checkBytes(t, c.src, c.want, nil)
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []string{
		"movq $0x123456789, (%rax)", // imm64 to memory
		"addq $0x123456789, %rax",   // imm64 ALU
		"movb %ah, %sil",            // high-byte with REX
	}
	for _, src := range bad {
		if b, err := Encode(inst(t, src), nil); err == nil {
			t.Errorf("Encode(%q) = %x, want error", src, b)
		}
	}
	// rsp as index register is unencodable.
	in := x86.NewInst(x86.Mnem{Op: x86.OpMOV, Width: x86.W32},
		x86.MemOp(x86.Mem{Base: x86.RAX, Index: x86.RSP, Scale: 2}), x86.RegOp(x86.EAX))
	if _, err := Encode(in, nil); err == nil {
		t.Error("rsp index accepted")
	}
}

func TestBranchSizing(t *testing.T) {
	syms := func(s string) (int64, bool) {
		if s == "near" {
			return 10, true
		}
		if s == "far" {
			return 10000, true
		}
		return 0, false
	}
	short, err := Length(inst(t, "jmp near"), &Ctx{Addr: 0, SymAddr: syms})
	if err != nil || short != 2 {
		t.Errorf("short jmp length = %d, %v", short, err)
	}
	long, err := Length(inst(t, "jmp far"), &Ctx{Addr: 0, SymAddr: syms})
	if err != nil || long != 5 {
		t.Errorf("long jmp length = %d, %v", long, err)
	}
	forced, err := Length(inst(t, "jmp near"), &Ctx{Addr: 0, SymAddr: syms, ForceLong: true})
	if err != nil || forced != 5 {
		t.Errorf("forced long jmp length = %d, %v", forced, err)
	}
	jcc, err := Length(inst(t, "jne far"), &Ctx{Addr: 0, SymAddr: syms})
	if err != nil || jcc != 6 {
		t.Errorf("long jcc length = %d, %v", jcc, err)
	}
	// Unknown symbols assemble to the long form with a placeholder.
	ext, err := Encode(inst(t, "call printf"), nil)
	if err != nil || len(ext) != 5 || ext[0] != 0xE8 {
		t.Errorf("external call = %x, %v", ext, err)
	}
}

func TestBackwardBranchRel8(t *testing.T) {
	syms := func(s string) (int64, bool) { return 0, s == ".L3" }
	b, err := Encode(inst(t, "jg .L3"), &Ctx{Addr: 0x20, SymAddr: syms})
	if err != nil {
		t.Fatal(err)
	}
	// rel8 = 0 - (0x20+2) = -0x22.
	if len(b) != 2 || b[0] != 0x7F || b[1] != 0xDE {
		t.Errorf("jg backward = %x", b)
	}
}

func TestRIPRelative(t *testing.T) {
	syms := func(s string) (int64, bool) {
		if s == "counter" {
			return 0x2000, true
		}
		return 0, false
	}
	b, err := Encode(inst(t, "movl counter(%rip), %eax"), &Ctx{Addr: 0x1000, SymAddr: syms})
	if err != nil {
		t.Fatal(err)
	}
	// 8b 05 disp32; disp = 0x2000 - (0x1000 + 6) = 0xffa.
	want := []byte{0x8B, 0x05, 0xFA, 0x0F, 0x00, 0x00}
	if string(b) != string(want) {
		t.Errorf("rip-relative = %x, want %x", b, want)
	}
	// Unknown symbol still has a fixed length.
	n, err := Length(inst(t, "movl extvar(%rip), %eax"), nil)
	if err != nil || n != 6 {
		t.Errorf("unknown rip-relative length = %d, %v", n, err)
	}
}

func TestNopLengths(t *testing.T) {
	for n := 1; n <= 9; n++ {
		in := Nop(n)
		got, err := Length(in, nil)
		if err != nil {
			t.Fatalf("Nop(%d): %v", n, err)
		}
		if got != n {
			t.Errorf("Nop(%d) encodes to %d bytes", n, got)
		}
	}
}

func TestNopSequence(t *testing.T) {
	for total := 1; total <= 64; total++ {
		sum := 0
		for _, in := range NopSequence(total) {
			n, err := Length(in, nil)
			if err != nil {
				t.Fatalf("NopSequence(%d): %v", total, err)
			}
			sum += n
		}
		if sum != total {
			t.Errorf("NopSequence(%d) sums to %d", total, sum)
		}
	}
	if got := len(OneByteNops(6)); got != 6 {
		t.Errorf("OneByteNops(6) returned %d instructions", got)
	}
}

func TestNopRoundTripThroughParser(t *testing.T) {
	// Synthesized nops must survive print -> parse -> encode with the
	// same length (alignment passes depend on this).
	for n := 1; n <= 9; n++ {
		in := Nop(n)
		re := inst(t, in.String())
		got, err := Length(re, nil)
		if err != nil || got != n {
			t.Errorf("Nop(%d) -> %q -> %d bytes (%v)", n, in.String(), got, err)
		}
	}
}
