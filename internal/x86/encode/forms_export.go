package encode

import "mao/internal/x86"

// The accessors below expose read-only copies of the encoder's form
// tables. They exist for exactly one consumer: the decoder
// (mao/internal/x86/decode) derives its reverse dispatch tables from
// them at init time, so the two sides of the decode↔encode oracle can
// never drift — an opcode added to a group here decodes without any
// decoder change, and the sync test fails if structural coverage ever
// diverges.

// ALUForm is one member of the two-operand ALU group: the /digit used
// by the 80/81/83 immediate forms and the 00-3F opcode row base.
type ALUForm struct {
	Digit byte
	Base  byte
}

// ALUForms returns a copy of the ALU group table (add/or/adc/sbb/and/
// sub/xor/cmp).
func ALUForms() map[x86.Op]ALUForm {
	out := make(map[x86.Op]ALUForm, len(aluInfo))
	for op, f := range aluInfo {
		out[op] = ALUForm{Digit: f.digit, Base: f.base}
	}
	return out
}

// ShiftDigits returns a copy of the shift/rotate group's /digit table
// (the C0/C1/D0-D3 forms).
func ShiftDigits() map[x86.Op]byte {
	return copyDigits(shiftDigit)
}

// Group3Digits returns a copy of the F6/F7 group's /digit table
// (not/neg/mul/imul/div/idiv).
func Group3Digits() map[x86.Op]byte {
	return copyDigits(group3Digit)
}

// PrefetchDigits returns a copy of the 0F 18 prefetch-hint /digit
// table.
func PrefetchDigits() map[x86.Op]byte {
	return copyDigits(prefetchDigit)
}

// SSEForm is one regular xmm <- xmm/m SSE arithmetic form: the
// mandatory prefix (0 = none) and the 0F xx opcode byte.
type SSEForm struct {
	Prefix byte
	Opc    byte
}

// SSEArithForms returns a copy of the regular SSE arithmetic table.
func SSEArithForms() map[x86.Op]SSEForm {
	out := make(map[x86.Op]SSEForm, len(sseInfo))
	for op, f := range sseInfo {
		out[op] = SSEForm{Prefix: f.prefix, Opc: f.opc}
	}
	return out
}

func copyDigits(src map[x86.Op]byte) map[x86.Op]byte {
	out := make(map[x86.Op]byte, len(src))
	for op, d := range src {
		out[op] = d
	}
	return out
}
