// Package encode computes x86-64 binary encodings — and therefore
// byte-accurate instruction lengths — for the instruction subset MAO
// supports. Lengths are the foundation of everything alignment-related
// in MAO: repeated relaxation, decode-line placement, branch-predictor
// aliasing, and sample-to-instruction mapping all depend on them.
//
// Encoding follows the Intel SDM rules: optional legacy prefixes
// (66/F0/F2/F3), an optional REX prefix, a 1–3 byte opcode, ModRM/SIB,
// displacement, immediate. Encodings are chosen the way GNU gas
// chooses them (shortest form first, accumulator short forms, sign-
// extended imm8 ALU forms) so that relaxation reproduces the paper's
// Section II example byte-for-byte.
package encode

import (
	"fmt"

	"mao/internal/x86"
)

// Ctx supplies the positional context an encoding depends on.
type Ctx struct {
	// Addr is the address of the instruction being encoded.
	Addr int64
	// SymAddr resolves a symbol to its address. A false result means
	// the symbol is external/unknown; branches to it use rel32 with a
	// zero placeholder, and RIP-relative references use disp32 zero.
	SymAddr func(sym string) (int64, bool)
	// ForceLong forces the rel32 form of jmp/jcc even when a rel8
	// displacement would fit. The relaxation driver uses this to grow
	// branches monotonically.
	ForceLong bool
}

func (c *Ctx) symAddr(sym string) (int64, bool) {
	if c == nil || c.SymAddr == nil {
		return 0, false
	}
	return c.SymAddr(sym)
}

// Encode returns the binary encoding of in.
func Encode(in *x86.Inst, ctx *Ctx) ([]byte, error) {
	if ctx == nil {
		ctx = &Ctx{}
	}
	e := &enc{ctx: ctx, in: in}
	if err := e.encode(); err != nil {
		return nil, err
	}
	if e.usedHighByte && (e.rex != 0 || e.rexMust) {
		return nil, fmt.Errorf("encode: %s: cannot combine a high-byte register with a REX prefix", in)
	}
	b := e.bytes()
	if len(b) > 15 {
		return nil, fmt.Errorf("encode: %s: encoding exceeds 15 bytes", in)
	}
	return b, nil
}

// Length returns the encoded length of in in bytes.
func Length(in *x86.Inst, ctx *Ctx) (int, error) {
	b, err := Encode(in, ctx)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// enc accumulates the parts of one encoding.
type enc struct {
	ctx *Ctx
	in  *x86.Inst

	prefixes []byte
	rex      byte // 0x40-based; 0 means "no REX yet"
	rexMust  bool // force emitting 0x40 even with no bits set (sil/dil/...)
	opcode   []byte
	modrm    byte
	hasModRM bool
	sib      byte
	hasSIB   bool
	disp     []byte
	imm      []byte

	// RIP-relative displacement fixup: when set, the 4-byte disp is
	// patched to target-(addr+len) after the length is known.
	ripRelTarget int64
	ripRelKnown  bool

	// usedHighByte records that ah/ch/dh/bh appeared in any operand,
	// for the REX-compatibility check after all operands are seen.
	usedHighByte bool
}

func (e *enc) bytes() []byte {
	var out []byte
	out = append(out, e.prefixes...)
	if e.rex != 0 || e.rexMust {
		out = append(out, 0x40|e.rex)
	}
	out = append(out, e.opcode...)
	if e.hasModRM {
		out = append(out, e.modrm)
	}
	if e.hasSIB {
		out = append(out, e.sib)
	}
	dispOff := len(out)
	out = append(out, e.disp...)
	out = append(out, e.imm...)
	if e.ripRelKnown {
		rel := e.ripRelTarget - (e.ctx.Addr + int64(len(out)))
		putInt32(out[dispOff:], int32(rel))
	}
	return out
}

func (e *enc) prefix(p byte) { e.prefixes = append(e.prefixes, p) }

// rexBit sets one REX bit: 8=W, 4=R, 2=X, 1=B.
func (e *enc) rexBit(bit byte) { e.rex |= bit }

func (e *enc) op(bs ...byte) { e.opcode = append(e.opcode, bs...) }

// setModRM assembles the ModRM byte from its fields.
func (e *enc) setModRM(mod, reg, rm byte) {
	e.modrm = mod<<6 | (reg&7)<<3 | rm&7
	e.hasModRM = true
}

func (e *enc) imm8(v int64)  { e.imm = append(e.imm, byte(v)) }
func (e *enc) imm16(v int64) { e.imm = append(e.imm, byte(v), byte(v>>8)) }
func (e *enc) imm32(v int64) {
	e.imm = append(e.imm, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) imm64(v int64) {
	e.imm32(v)
	e.imm = append(e.imm, byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (e *enc) disp8(v int64) { e.disp = append(e.disp, byte(v)) }
func (e *enc) disp32(v int64) {
	e.disp = append(e.disp, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putInt32(b []byte, v int32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func fitsInt8(v int64) bool  { return v >= -128 && v <= 127 }
func fitsInt32(v int64) bool { return v >= -1<<31 && v <= 1<<31-1 }

// useReg records REX requirements of a register used in the reg field
// (bit 4=R), rm field (bit 1=B) or index field (bit 2=X).
func (e *enc) useReg(r x86.Reg, rexBit byte) error {
	if r.NeedsREX() {
		if r >= x86.SPL && r <= x86.DIL {
			e.rexMust = true
		}
		if r.Num() >= 8 {
			e.rexBit(rexBit)
		}
	}
	if r.IsHighByte() {
		e.usedHighByte = true
	}
	return nil
}

// regDirect encodes a register-direct ModRM (mod=11).
func (e *enc) regDirect(regField byte, rm x86.Reg) error {
	if err := e.useReg(rm, 1); err != nil {
		return err
	}
	e.setModRM(3, regField, byte(rm.Num()))
	return nil
}

// memModRM encodes a memory reference into ModRM/SIB/disp.
func (e *enc) memModRM(regField byte, m x86.Mem) error {
	// RIP-relative.
	if m.IsRIPRel() {
		e.setModRM(0, regField, 5)
		if m.Sym != "" {
			if t, ok := e.ctx.symAddr(m.Sym); ok {
				e.ripRelTarget = t + m.Disp
				e.ripRelKnown = true
			}
			e.disp32(0)
		} else {
			e.disp32(m.Disp)
		}
		return nil
	}

	disp := m.Disp
	if m.Sym != "" {
		// Absolute symbolic reference; resolve if possible, else zero
		// placeholder. Either way the encoding is disp32.
		if t, ok := e.ctx.symAddr(m.Sym); ok {
			disp += t
		}
	}

	base, index := m.Base, m.Index
	if index == x86.RSP {
		return fmt.Errorf("encode: %s: %%rsp cannot be an index register", e.in)
	}

	needSIB := index != x86.RegNone || base == x86.RegNone ||
		base == x86.RSP || base == x86.R12

	if !needSIB {
		if err := e.useReg(base, 1); err != nil {
			return err
		}
		rm := byte(base.Num())
		switch {
		case m.Sym != "":
			e.setModRM(2, regField, rm)
			e.disp32(disp)
		case disp == 0 && base != x86.RBP && base != x86.R13:
			e.setModRM(0, regField, rm)
		case fitsInt8(disp):
			e.setModRM(1, regField, rm)
			e.disp8(disp)
		default:
			e.setModRM(2, regField, rm)
			e.disp32(disp)
		}
		return nil
	}

	// SIB path.
	var scaleBits byte
	switch m.EffScale() {
	case 1:
		scaleBits = 0
	case 2:
		scaleBits = 1
	case 4:
		scaleBits = 2
	case 8:
		scaleBits = 3
	default:
		return fmt.Errorf("encode: %s: bad scale %d", e.in, m.Scale)
	}
	idxBits := byte(4) // none
	if index != x86.RegNone {
		if err := e.useReg(index, 2); err != nil {
			return err
		}
		idxBits = byte(index.Num())
	}
	if base == x86.RegNone {
		// No base: mod=00, SIB base=101, disp32 mandatory.
		e.setModRM(0, regField, 4)
		e.sib = scaleBits<<6 | (idxBits&7)<<3 | 5
		e.hasSIB = true
		e.disp32(disp)
		return nil
	}
	if err := e.useReg(base, 1); err != nil {
		return err
	}
	baseBits := byte(base.Num())
	e.sib = scaleBits<<6 | (idxBits&7)<<3 | baseBits&7
	e.hasSIB = true
	switch {
	case m.Sym != "":
		e.setModRM(2, regField, 4)
		e.disp32(disp)
	case disp == 0 && base != x86.RBP && base != x86.R13:
		e.setModRM(0, regField, 4)
	case fitsInt8(disp):
		e.setModRM(1, regField, 4)
		e.disp8(disp)
	default:
		e.setModRM(2, regField, 4)
		e.disp32(disp)
	}
	return nil
}

// rmOperand dispatches a ModRM r/m operand (register or memory).
func (e *enc) rmOperand(regField byte, o x86.Operand) error {
	switch o.Kind {
	case x86.KindReg:
		return e.regDirect(regField, o.Reg)
	case x86.KindMem:
		return e.memModRM(regField, o.Mem)
	}
	return fmt.Errorf("encode: %s: operand %s is not r/m", e.in, o)
}

// widthPrefixREX applies the operand-size prefix / REX.W bit for the
// given GPR operand width.
func (e *enc) widthPrefixREX(w x86.Width) {
	switch w {
	case x86.W16:
		e.prefix(0x66)
	case x86.W64:
		e.rexBit(8)
	}
}
