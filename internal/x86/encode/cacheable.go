package encode

import "mao/internal/x86"

// PositionIndependent reports whether the instruction's encoding is the
// same at every address: no direct branch target, no symbolic
// displacement, no RIP-relative reference. Only such encodings may be
// reused across addresses, relaxation iterations and pipeline runs —
// the contract the relaxation cache (mao/internal/relax.Cache) is built
// on. Everything else (jmp/jcc/call to a label, sym(%rip), sym+8
// absolute references) re-encodes at its current address.
func PositionIndependent(in *x86.Inst) bool {
	for i := range in.Args {
		a := &in.Args[i]
		switch a.Kind {
		case x86.KindLabel:
			return false
		case x86.KindMem:
			if a.Mem.Sym != "" || a.Mem.IsRIPRel() {
				return false
			}
		}
	}
	return true
}
