package sidefx

import (
	"reflect"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/x86"
)

func inst(t *testing.T, src string) *x86.Inst {
	t.Helper()
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			return n.Inst
		}
	}
	t.Fatalf("no instruction in %q", src)
	return nil
}

// TestGeneratedTableInSync re-parses the embedded configuration and
// compares it against the committed generator output. A failure means
// "go generate ./internal/x86/sidefx" must be re-run.
func TestGeneratedTableInSync(t *testing.T) {
	parsed, err := ParseConfig(ConfigSource())
	if err != nil {
		t.Fatalf("embedded config does not parse: %v", err)
	}
	if len(parsed) != len(genTable) {
		t.Fatalf("config has %d entries, generated table has %d", len(parsed), len(genTable))
	}
	for k, want := range parsed {
		got, ok := genTable[k]
		if !ok {
			t.Errorf("generated table missing %q", k)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("entry %q out of sync:\n generated: %+v\n config:    %+v", k, got, want)
		}
	}
}

// TestCoverage ensures the table covers a representative instruction
// for every opcode the parser can produce.
func TestCoverage(t *testing.T) {
	samples := []string{
		"mov %eax, %ebx", "movabsq $99999999999, %rax",
		"movzbl %al, %ebx", "movsbl %al, %ebx", "leaq 4(%rax), %rbx",
		"push %rbp", "pop %rbx", "xchg %rax, %rdx", "cmovne %eax, %ebx",
		"addl $1, %eax", "subq %rax, %rbx", "adcl %ecx, %edx",
		"sbbl %eax, %eax", "cmpl $0, %edi", "incl %eax", "decq %rcx",
		"negl %edx", "imulq %rsi", "imull %esi, %edi",
		"imull $10, %esi, %edi", "mull %ecx", "idivl %ecx", "divq %rbx",
		"andl $7, %eax", "orl %ebx, %ecx", "xorl %edx, %edx",
		"notl %eax", "testl %eax, %eax",
		"shll $2, %eax", "shrl %cl, %ebx", "sarq $1, %rax",
		"roll $3, %ecx", "rorl $3, %ecx", "sarl %edx",
		"jmp .L1", "jne .L1", "call f", "ret", "leave", "sete %al",
		"cltq", "cltd", "cqto", "cwtl",
		"nop", "ud2", "hlt", "pause",
		"prefetchnta (%rax)", "prefetcht0 (%rax)",
		"prefetcht1 (%rax)", "prefetcht2 (%rax)",
		"movss %xmm0, %xmm1", "movsd (%rax), %xmm0",
		"movaps %xmm0, %xmm1", "movups %xmm0, (%rax)",
		"movdqa %xmm0, %xmm1", "movdqu %xmm0, %xmm1",
		"movd %eax, %xmm0", "movq %xmm0, %xmm1",
		"addss %xmm0, %xmm1", "addsd %xmm0, %xmm1",
		"subss %xmm0, %xmm1", "subsd %xmm0, %xmm1",
		"mulss %xmm0, %xmm1", "mulsd %xmm0, %xmm1",
		"divss %xmm0, %xmm1", "divsd %xmm0, %xmm1",
		"sqrtss %xmm0, %xmm1", "sqrtsd %xmm0, %xmm1",
		"xorps %xmm0, %xmm0", "xorpd %xmm0, %xmm0",
		"andps %xmm0, %xmm1", "andpd %xmm0, %xmm1",
		"pxor %xmm0, %xmm0",
		"ucomiss %xmm0, %xmm1", "ucomisd %xmm0, %xmm1",
		"comiss %xmm0, %xmm1", "comisd %xmm0, %xmm1",
		"cvtsi2ssl %eax, %xmm0", "cvtsi2sdq %rax, %xmm0",
		"cvttss2si %xmm0, %eax", "cvttsd2si %xmm0, %eax",
		"cvtss2sd %xmm0, %xmm1", "cvtsd2ss %xmm0, %xmm1",
	}
	for _, s := range samples {
		in := inst(t, s)
		if !Known(in) {
			t.Errorf("no side-effect entry for %q (op %v, %d args)", s, in.Op, len(in.Args))
		}
	}
}

func TestALUEffects(t *testing.T) {
	e := InstEffects(inst(t, "addl %ebx, %ecx"))
	if !e.ReadsReg(x86.EBX) || !e.ReadsReg(x86.ECX) {
		t.Error("add must read both operands")
	}
	if !e.WritesReg(x86.ECX) || e.WritesReg(x86.EBX) {
		t.Error("add must write only the destination")
	}
	if e.FlagsSet != x86.AllFlags {
		t.Errorf("add FlagsSet = %v", e.FlagsSet)
	}
	if e.Barrier || e.MemRead || e.MemWrite {
		t.Error("register add has no memory effects")
	}
}

func TestRedundantTestScenario(t *testing.T) {
	// The paper's III-B.b example: subl sets all flags; the following
	// testl writes SZP (+CF/OF zeroed) and leaves AF undefined.
	sub := InstEffects(inst(t, "subl $16, %r15d"))
	test := InstEffects(inst(t, "testl %r15d, %r15d"))
	if sub.FlagsSet != x86.AllFlags {
		t.Errorf("sub FlagsSet = %v", sub.FlagsSet)
	}
	if test.FlagsSet != x86.CF|x86.OF|x86.SF|x86.ZF|x86.PF || test.FlagsUndef != x86.AF {
		t.Errorf("test flags = set %v undef %v", test.FlagsSet, test.FlagsUndef)
	}
	if len(test.RegsWritten) != 0 {
		t.Error("test must not write registers")
	}
}

func TestMemoryOperandEffects(t *testing.T) {
	e := InstEffects(inst(t, "movl %edx, (%rsi,%r8,4)"))
	if !e.MemWrite || e.MemRead {
		t.Error("store misclassified")
	}
	if !e.ReadsReg(x86.RSI) || !e.ReadsReg(x86.R8) || !e.ReadsReg(x86.EDX) {
		t.Errorf("store reads = %v", e.RegsRead)
	}
	e = InstEffects(inst(t, "addl $1, -4(%rbp)"))
	if !e.MemRead || !e.MemWrite {
		t.Error("memory RMW misclassified")
	}
	e = InstEffects(inst(t, "leaq 8(%rax,%rbx,2), %rcx"))
	if e.MemRead || e.MemWrite {
		t.Error("lea must not touch memory")
	}
	if !e.ReadsReg(x86.RAX) || !e.ReadsReg(x86.RBX) || !e.WritesReg(x86.RCX) {
		t.Error("lea register effects wrong")
	}
}

func TestImplicitRegisters(t *testing.T) {
	e := InstEffects(inst(t, "push %rbp"))
	if !e.ReadsReg(x86.RSP) || !e.WritesReg(x86.RSP) || !e.ReadsReg(x86.RBP) {
		t.Error("push implicit effects wrong")
	}
	if !e.MemWrite {
		t.Error("push must write memory")
	}
	e = InstEffects(inst(t, "pop %rbx"))
	if !e.MemRead || !e.WritesReg(x86.RBX) || !e.WritesReg(x86.RSP) {
		t.Error("pop effects wrong")
	}
	e = InstEffects(inst(t, "imulq %rbx"))
	if !e.ReadsReg(x86.RAX) || !e.WritesReg(x86.RDX) || !e.WritesReg(x86.RAX) || !e.ReadsReg(x86.RBX) {
		t.Error("one-operand imul effects wrong")
	}
	e = InstEffects(inst(t, "cltq"))
	if !e.ReadsReg(x86.EAX) || !e.WritesReg(x86.RAX) {
		t.Error("cltq effects wrong")
	}
	e = InstEffects(inst(t, "cqto"))
	if !e.ReadsReg(x86.RAX) || !e.WritesReg(x86.RDX) {
		t.Error("cqto effects wrong")
	}
}

func TestCallBarrier(t *testing.T) {
	e := InstEffects(inst(t, "call memset"))
	if !e.Barrier {
		t.Error("call must be a barrier")
	}
	e = InstEffects(inst(t, "ret"))
	if !e.Barrier || !e.MemRead {
		t.Error("ret must be a barrier that reads the stack")
	}
}

func TestCondReads(t *testing.T) {
	e := InstEffects(inst(t, "jne .L1"))
	if e.FlagsRead != x86.ZF {
		t.Errorf("jne FlagsRead = %v", e.FlagsRead)
	}
	e = InstEffects(inst(t, "jle .L1"))
	if e.FlagsRead != x86.SF|x86.OF|x86.ZF {
		t.Errorf("jle FlagsRead = %v", e.FlagsRead)
	}
	e = InstEffects(inst(t, "cmovge %eax, %ebx"))
	if e.FlagsRead != x86.SF|x86.OF {
		t.Errorf("cmovge FlagsRead = %v", e.FlagsRead)
	}
	if !e.ReadsReg(x86.EBX) {
		t.Error("cmov must read its destination (conditional preservation)")
	}
}

func TestVariableShiftDemotesFlags(t *testing.T) {
	imm := InstEffects(inst(t, "shll $2, %eax"))
	if imm.FlagsSet == 0 {
		t.Error("immediate shift should define flags")
	}
	cl := InstEffects(inst(t, "shll %cl, %eax"))
	if cl.FlagsSet != 0 {
		t.Errorf("cl shift FlagsSet = %v, want none defined", cl.FlagsSet)
	}
	if cl.FlagsUndef == 0 {
		t.Error("cl shift should clobber flags as undefined")
	}
	if !cl.ReadsReg(x86.CL) {
		t.Error("cl shift must read the cl register")
	}
}

func TestIndirectBranchReadsTarget(t *testing.T) {
	e := InstEffects(inst(t, "jmp *%rax"))
	if !e.ReadsReg(x86.RAX) {
		t.Error("indirect jump must read its target register")
	}
	e = InstEffects(inst(t, "jmp *16(%rbx)"))
	if !e.ReadsReg(x86.RBX) {
		t.Error("memory-indirect jump must read its base register")
	}
}

func TestUnknownInstructionIsBarrier(t *testing.T) {
	// An instruction shape with no table entry must degrade to a
	// conservative barrier, never to "no effects".
	weird := x86.NewInst(x86.Mnem{Op: x86.OpIMUL, Width: x86.W32}) // imul with 0 args
	e := InstEffects(weird)
	if !e.Barrier {
		t.Error("uncovered instruction must be a barrier")
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"add r=x",
		"add q=1",
		"add fset=QF",
		"add impr=nosuchreg",
		"add r=0",
		"dup r=1\ndup r=1",
	}
	for _, src := range bad {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("ParseConfig(%q) succeeded, want error", src)
		}
	}
}
