package sidefx

import (
	_ "embed"
	"fmt"
	"strconv"
	"strings"

	"mao/internal/x86"
)

// configSrc is the side-effect configuration the tables are generated
// from, embedded so tests can verify tables.gen.go is in sync.
//
//go:embed sidefx.cfg
var configSrc string

// ConfigSource returns the embedded configuration text (used by the
// generator's self-test).
func ConfigSource() string { return configSrc }

// ParseConfig parses the side-effect configuration language.
//
// Each non-comment line specifies one opcode:
//
//	name[/arity]  field...
//
// with whitespace-separated fields:
//
//	r=1,2        operand positions read (1-based, AT&T order)
//	w=2          operand positions written
//	impr=rax,rdx implicit register reads
//	impw=rsp     implicit register writes
//	fset=ALL     flags written with defined values
//	fread=CF     flags read
//	fundef=OF,AF flags left undefined
//	cond         reads the flags of the instruction's condition code
//	barrier      conservative everything-barrier (call/ret)
//
// Flag sets use the names CF PF AF ZF SF OF plus the shorthands ALL
// (all six), NOTCF (all but CF) and SZP (SF|ZF|PF). '#' starts a
// comment.
func ParseConfig(src string) (map[string]Spec, error) {
	table := make(map[string]Spec)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key := fields[0]
		if _, dup := table[key]; dup {
			return nil, fmt.Errorf("sidefx.cfg:%d: duplicate entry %q", lineNo+1, key)
		}
		var spec Spec
		for _, f := range fields[1:] {
			if err := parseField(&spec, f); err != nil {
				return nil, fmt.Errorf("sidefx.cfg:%d: %v", lineNo+1, err)
			}
		}
		table[key] = spec
	}
	return table, nil
}

func parseField(spec *Spec, f string) error {
	switch f {
	case "cond":
		spec.CondRead = true
		return nil
	case "barrier":
		spec.Barrier = true
		return nil
	}
	k, v, ok := strings.Cut(f, "=")
	if !ok {
		return fmt.Errorf("bad field %q", f)
	}
	switch k {
	case "r", "w":
		idxs, err := parseIndices(v)
		if err != nil {
			return err
		}
		if k == "r" {
			spec.Reads = idxs
		} else {
			spec.Writes = idxs
		}
	case "impr", "impw":
		regs, err := parseRegs(v)
		if err != nil {
			return err
		}
		if k == "impr" {
			spec.ImpReads = regs
		} else {
			spec.ImpWrites = regs
		}
	case "fset", "fread", "fundef":
		flags, err := parseFlags(v)
		if err != nil {
			return err
		}
		switch k {
		case "fset":
			spec.FlagsSet = flags
		case "fread":
			spec.FlagsRead = flags
		case "fundef":
			spec.FlagsUndef = flags
		}
	default:
		return fmt.Errorf("unknown field %q", k)
	}
	return nil
}

func parseIndices(v string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(v, ",") {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad operand index %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseRegs(v string) ([]x86.Reg, error) {
	var out []x86.Reg
	for _, p := range strings.Split(v, ",") {
		r, ok := x86.RegByName(p)
		if !ok {
			return nil, fmt.Errorf("unknown register %q", p)
		}
		out = append(out, r)
	}
	return out, nil
}

var flagNames = map[string]x86.Flags{
	"CF": x86.CF, "PF": x86.PF, "AF": x86.AF,
	"ZF": x86.ZF, "SF": x86.SF, "OF": x86.OF,
	"ALL":   x86.AllFlags,
	"NOTCF": x86.AllFlags &^ x86.CF,
	"SZP":   x86.SF | x86.ZF | x86.PF,
}

func parseFlags(v string) (x86.Flags, error) {
	var out x86.Flags
	for _, p := range strings.Split(v, ",") {
		f, ok := flagNames[p]
		if !ok {
			return 0, fmt.Errorf("unknown flag %q", p)
		}
		out |= f
	}
	return out, nil
}
