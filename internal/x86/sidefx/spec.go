// Package sidefx models instruction side effects: which operands are
// read and written, which implicit registers participate, and which
// RFLAGS bits are set, read, or left undefined.
//
// Like the original MAO, the model is table-driven: a tiny
// configuration language (sidefx.cfg) specifies the effects per
// opcode, and a generator program (cmd/sidefxgen) constructs Go tables
// from it. The committed tables.gen.go is the generator's output; a
// test asserts it stays in sync with the embedded configuration.
package sidefx

import (
	"mao/internal/x86"
)

//go:generate go run mao/cmd/sidefxgen -in sidefx.cfg -out tables.gen.go

// Spec is the static side-effect specification for one opcode (at one
// arity). Operand indices are 1-based positions in AT&T order.
type Spec struct {
	Reads  []int // operand positions read
	Writes []int // operand positions written

	ImpReads  []x86.Reg // implicit register reads
	ImpWrites []x86.Reg // implicit register writes

	FlagsSet   x86.Flags // flags written with defined values
	FlagsRead  x86.Flags // flags read unconditionally
	FlagsUndef x86.Flags // flags left undefined (written with junk)
	CondRead   bool      // additionally reads the instruction's Cond flags

	// Barrier marks instructions the data-flow layer must treat as
	// reading and writing every register and all of memory (calls,
	// returns — the function-boundary conservative assumption).
	Barrier bool
}

// Effects is the resolved side-effect set of one concrete instruction.
type Effects struct {
	RegsRead    []x86.Reg // registers read, including address components
	RegsWritten []x86.Reg // registers written

	FlagsSet   x86.Flags
	FlagsRead  x86.Flags
	FlagsUndef x86.Flags

	MemRead  bool
	MemWrite bool

	Barrier bool
}

// WritesFlags reports whether the instruction defines or clobbers any
// flag bit.
func (e Effects) WritesFlags() bool { return e.FlagsSet|e.FlagsUndef != 0 }

// ReadsReg reports whether the effect set reads any register aliasing r.
func (e Effects) ReadsReg(r x86.Reg) bool { return containsFamily(e.RegsRead, r) }

// WritesReg reports whether the effect set writes any register aliasing r.
func (e Effects) WritesReg(r x86.Reg) bool { return containsFamily(e.RegsWritten, r) }

func containsFamily(rs []x86.Reg, r x86.Reg) bool {
	f := r.Family()
	for _, x := range rs {
		if x.Family() == f {
			return true
		}
	}
	return false
}

// maxCachedArity bounds the dense (opcode, arity) resolution cache; no
// x86 instruction this front end accepts has more than three operands.
const maxCachedArity = 4

type cachedSpec struct {
	s  Spec
	ok bool
}

// specCache resolves (opcode, arity) → Spec without per-call string
// building: the "name/arity" and bare-name lookups of specFor, run
// once per combination at package init. InstEffects sits on the hot
// path of every data-flow analysis, so the lookup must be an array
// index.
var specCache = func() [x86.NumOps][maxCachedArity + 1]cachedSpec {
	var t [x86.NumOps][maxCachedArity + 1]cachedSpec
	for op := 1; op < x86.NumOps; op++ {
		name := x86.Op(op).String()
		for ar := 0; ar <= maxCachedArity; ar++ {
			if s, ok := genTable[specKey(name, ar)]; ok {
				t[op][ar] = cachedSpec{s, true}
				continue
			}
			if s, ok := genTable[name]; ok {
				t[op][ar] = cachedSpec{s, true}
			}
		}
	}
	return t
}()

// specFor finds the Spec for an instruction: first "name/arity", then
// the bare opcode name.
func specFor(in *x86.Inst) (Spec, bool) {
	if op, ar := int(in.Op), len(in.Args); op > 0 && op < x86.NumOps && ar <= maxCachedArity {
		e := &specCache[op][ar]
		return e.s, e.ok
	}
	name := in.Op.String()
	if s, ok := genTable[specKey(name, len(in.Args))]; ok {
		return s, true
	}
	s, ok := genTable[name]
	return s, ok
}

func specKey(name string, arity int) string {
	return name + "/" + string(rune('0'+arity))
}

// Known reports whether the side-effect tables cover the instruction.
func Known(in *x86.Inst) bool {
	_, ok := specFor(in)
	return ok
}

// InstEffects resolves the side effects of one concrete instruction.
// Instructions missing from the tables resolve to a Barrier effect so
// that analyses stay conservative rather than wrong.
func InstEffects(in *x86.Inst) Effects {
	spec, ok := specFor(in)
	if !ok {
		return Effects{Barrier: true}
	}
	var e Effects
	e.Barrier = spec.Barrier
	e.FlagsSet = spec.FlagsSet
	e.FlagsRead = spec.FlagsRead
	e.FlagsUndef = spec.FlagsUndef
	if spec.CondRead {
		e.FlagsRead |= in.Cond.FlagsRead()
	}
	// Exact-capacity preallocation: InstEffects runs per instruction in
	// every analysis, so the two slices must not regrow.
	if rcap := len(spec.ImpReads) + 2*len(in.Args) + len(spec.Reads); rcap > 0 {
		e.RegsRead = append(make([]x86.Reg, 0, rcap), spec.ImpReads...)
	}
	if wcap := len(spec.ImpWrites) + len(spec.Writes); wcap > 0 {
		e.RegsWritten = append(make([]x86.Reg, 0, wcap), spec.ImpWrites...)
	}

	addRead := func(r x86.Reg) {
		if r != x86.RegNone && r != x86.RIP {
			e.RegsRead = append(e.RegsRead, r)
		}
	}

	// Address components of every memory operand are read regardless
	// of the operand's data role.
	for _, a := range in.Args {
		if a.Kind == x86.KindMem {
			addRead(a.Mem.Base)
			addRead(a.Mem.Index)
		}
		if a.Star && a.Kind == x86.KindReg {
			addRead(a.Reg)
		}
	}

	for _, idx := range spec.Reads {
		if idx < 1 || idx > len(in.Args) {
			continue
		}
		a := in.Args[idx-1]
		switch a.Kind {
		case x86.KindReg:
			addRead(a.Reg)
		case x86.KindMem:
			e.MemRead = true
		}
	}
	for _, idx := range spec.Writes {
		if idx < 1 || idx > len(in.Args) {
			continue
		}
		a := in.Args[idx-1]
		switch a.Kind {
		case x86.KindReg:
			if !a.Star {
				e.RegsWritten = append(e.RegsWritten, a.Reg)
			}
		case x86.KindMem:
			e.MemWrite = true
		}
	}

	// Instruction-level refinements the static table cannot express.
	switch in.Op {
	case x86.OpPUSH, x86.OpCALL:
		e.MemWrite = true // stack store
	case x86.OpPOP, x86.OpRET:
		e.MemRead = true // stack load
	case x86.OpLEAVE:
		e.MemRead = true
	case x86.OpSHL, x86.OpSHR, x86.OpSAR, x86.OpROL, x86.OpROR:
		// A zero shift count leaves every flag unchanged, so for a
		// variable (%cl) count no flag is reliably defined.
		if len(in.Args) == 2 && in.Args[0].Kind == x86.KindReg {
			e.FlagsUndef |= e.FlagsSet
			e.FlagsSet = 0
		}
	}
	return e
}
