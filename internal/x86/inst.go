package x86

import (
	"strings"
)

// Inst is the single concrete instruction representation used
// throughout MAO, mirroring the original system's one-C-struct-per-
// instruction design. Operands are stored in AT&T order (sources
// first, destination last).
type Inst struct {
	Op       Op
	Cond     Cond  // condition for OpJCC/OpSET/OpCMOV
	Width    Width // principal (destination) operand width
	SrcWidth Width // source width for OpMOVZX/OpMOVSX
	Args     []Operand
	Lock     bool // lock prefix
}

// NewInst builds an instruction from a decoded mnemonic and operands,
// inferring the width from register operands when the mnemonic carried
// no suffix.
func NewInst(m Mnem, args ...Operand) *Inst {
	in := &Inst{Op: m.Op, Cond: m.Cond, Width: m.Width, SrcWidth: m.SrcWidth, Args: args}
	in.InferWidth()
	return in
}

// InferWidth fills in Width from register operands if it is unset.
// AT&T syntax permits "mov %eax, %ebx" without a suffix; the operand
// registers determine the width. For movzx/movsx the first operand
// determines SrcWidth when it is a register.
func (in *Inst) InferWidth() {
	if in.Width == W0 {
		// The destination (last operand) wins; fall back to any
		// register operand.
		for i := len(in.Args) - 1; i >= 0; i-- {
			a := in.Args[i]
			if a.Kind == KindReg && !a.Star && a.Reg.IsGPR() {
				in.Width = a.Reg.Width()
				break
			}
		}
	}
	if (in.Op == OpMOVZX || in.Op == OpMOVSX) && in.SrcWidth == W0 {
		if len(in.Args) > 0 && in.Args[0].Kind == KindReg {
			in.SrcWidth = in.Args[0].Reg.Width()
		}
	}
	// Fixed-width opcodes.
	switch in.Op {
	case OpSET:
		in.Width = W8
	case OpPUSH, OpPOP, OpCALL, OpRET, OpLEAVE:
		if in.Width == W0 {
			in.Width = W64
		}
	}
}

// Mnem returns the decoded mnemonic fields of the instruction.
func (in *Inst) Mnem() Mnem {
	return Mnem{Op: in.Op, Cond: in.Cond, Width: in.Width, SrcWidth: in.SrcWidth}
}

// Mnemonic returns the canonical AT&T mnemonic, e.g. "addq" or "jne".
func (in *Inst) Mnemonic() string { return in.Mnem().Mnemonic() }

// String renders the instruction in AT&T syntax, e.g.
// "movl %edx, (%rsi,%r8,4)".
func (in *Inst) String() string {
	var b strings.Builder
	if in.Lock {
		b.WriteString("lock ")
	}
	b.WriteString(in.Mnemonic())
	for i, a := range in.Args {
		if i == 0 {
			b.WriteByte('\t')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Clone returns a deep copy of the instruction.
func (in *Inst) Clone() *Inst {
	cp := *in
	cp.Args = append([]Operand(nil), in.Args...)
	return &cp
}

// Dst returns the destination operand (the last one) or a zero Operand
// for operand-less instructions.
func (in *Inst) Dst() Operand {
	if len(in.Args) == 0 {
		return Operand{}
	}
	return in.Args[len(in.Args)-1]
}

// Src returns the first source operand or a zero Operand.
func (in *Inst) Src() Operand {
	if len(in.Args) == 0 {
		return Operand{}
	}
	return in.Args[0]
}

// BranchTarget returns the direct branch-target symbol and true when
// the instruction is a direct jump/call/conditional branch. Indirect
// branches and non-branches return "", false.
func (in *Inst) BranchTarget() (string, bool) {
	if !in.Op.IsBranch() || in.Op == OpRET {
		return "", false
	}
	if len(in.Args) == 1 && in.Args[0].Kind == KindLabel && !in.Args[0].Star {
		return in.Args[0].Sym, true
	}
	return "", false
}

// IsIndirectBranch reports whether the instruction is an indirect jump
// or call (*%rax, *(%rax,...)).
func (in *Inst) IsIndirectBranch() bool {
	if in.Op != OpJMP && in.Op != OpCALL {
		return false
	}
	return len(in.Args) == 1 && in.Args[0].Star
}

// IsNop reports whether the instruction is a no-op of any encoding MAO
// emits (plain nop; the multi-byte forms are represented as OpNOP with
// a width hint via Args in the encoder, not here).
func (in *Inst) IsNop() bool { return in.Op == OpNOP }

// MemArg returns a pointer to the first memory operand and its index,
// or nil, -1 when the instruction has none.
func (in *Inst) MemArg() (*Operand, int) {
	for i := range in.Args {
		if in.Args[i].Kind == KindMem {
			return &in.Args[i], i
		}
	}
	return nil, -1
}

// ReadsMemory reports whether the instruction loads from memory
// (ignoring instruction fetch). Stores that also read (read-modify-
// write ALU ops on memory) count as reads.
func (in *Inst) ReadsMemory() bool {
	m, i := in.MemArg()
	if m == nil {
		return false
	}
	if m.Star {
		return true // indirect jump/call through memory loads the target
	}
	if in.Op == OpLEA {
		return false // lea only computes the address
	}
	switch in.Op {
	case OpMOV, OpMOVABS, OpMOVZX, OpMOVSX, OpMOVSS, OpMOVSD, OpMOVAPS,
		OpMOVUPS, OpMOVDQA, OpMOVDQU, OpMOVD, OpMOVQX:
		// Pure moves read memory only when memory is the source.
		return i != len(in.Args)-1
	case OpPUSH:
		return true
	case OpPOP:
		return false
	case OpSET:
		return false
	}
	return true
}

// WritesMemory reports whether the instruction stores to memory.
func (in *Inst) WritesMemory() bool {
	m, i := in.MemArg()
	if m == nil {
		return in.Op == OpPUSH || in.Op == OpCALL
	}
	if m.Star {
		return in.Op == OpCALL // the call still pushes a return address
	}
	if in.Op == OpLEA || in.Op == OpCMP || in.Op == OpTEST ||
		in.Op == OpUCOMISS || in.Op == OpUCOMISD ||
		in.Op == OpCOMISS || in.Op == OpCOMISD ||
		in.Op == OpPREFETCHNTA || in.Op == OpPREFETCHT0 ||
		in.Op == OpPREFETCHT1 || in.Op == OpPREFETCHT2 {
		return false
	}
	// For everything else a memory destination means a store.
	return i == len(in.Args)-1 || in.Op == OpPUSH
}
