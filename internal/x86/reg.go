// Package x86 defines the register, operand, opcode and condition-code
// model shared by every layer of MAO: the assembly parser, the binary
// encoder, the side-effect tables, the data-flow analyses and the
// micro-architectural simulator.
//
// The design mirrors the original MAO's use of a single instruction
// struct for every x86 instruction (there, gas' internal C struct; here,
// Inst): all passes manipulate the same concrete representation, so a
// pass written against this package works on anything the parser
// accepts.
package x86

import "fmt"

// Reg names an architectural register. The zero value RegNone means
// "no register" (e.g. an absent index register in a memory operand).
type Reg uint16

// General-purpose register encodings. The order within each width group
// follows the hardware encoding (rax=0, rcx=1, ... r15=15), so
// Reg.Num() can be computed by subtraction.
const (
	RegNone Reg = iota

	// 64-bit GPRs.
	RAX
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// 32-bit GPRs.
	EAX
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	R8D
	R9D
	R10D
	R11D
	R12D
	R13D
	R14D
	R15D

	// 16-bit GPRs.
	AX
	CX
	DX
	BX
	SP
	BP
	SI
	DI
	R8W
	R9W
	R10W
	R11W
	R12W
	R13W
	R14W
	R15W

	// 8-bit low GPRs (REX-compatible set).
	AL
	CL
	DL
	BL
	SPL
	BPL
	SIL
	DIL
	R8B
	R9B
	R10B
	R11B
	R12B
	R13B
	R14B
	R15B

	// 8-bit high legacy registers (not addressable with a REX prefix).
	AH
	CH
	DH
	BH

	// SSE registers.
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15

	// Instruction pointer (only valid as a memory-operand base).
	RIP

	// RFLAGS pseudo-register, used by the data-flow layer to model
	// condition-code dependences uniformly with register dependences.
	RFLAGS

	numRegs
)

// NumRegs is one past the largest register encoding — the size for
// dense per-register tables.
const NumRegs = int(numRegs)

// Width is an operand width in bytes: 1, 2, 4, 8, or 16 for XMM.
type Width uint8

// Operand widths.
const (
	W0   Width = 0 // unknown/none
	W8   Width = 1
	W16  Width = 2
	W32  Width = 4
	W64  Width = 8
	W128 Width = 16
)

var regNames = map[Reg]string{
	RAX: "rax", RCX: "rcx", RDX: "rdx", RBX: "rbx",
	RSP: "rsp", RBP: "rbp", RSI: "rsi", RDI: "rdi",
	R8: "r8", R9: "r9", R10: "r10", R11: "r11",
	R12: "r12", R13: "r13", R14: "r14", R15: "r15",

	EAX: "eax", ECX: "ecx", EDX: "edx", EBX: "ebx",
	ESP: "esp", EBP: "ebp", ESI: "esi", EDI: "edi",
	R8D: "r8d", R9D: "r9d", R10D: "r10d", R11D: "r11d",
	R12D: "r12d", R13D: "r13d", R14D: "r14d", R15D: "r15d",

	AX: "ax", CX: "cx", DX: "dx", BX: "bx",
	SP: "sp", BP: "bp", SI: "si", DI: "di",
	R8W: "r8w", R9W: "r9w", R10W: "r10w", R11W: "r11w",
	R12W: "r12w", R13W: "r13w", R14W: "r14w", R15W: "r15w",

	AL: "al", CL: "cl", DL: "dl", BL: "bl",
	SPL: "spl", BPL: "bpl", SIL: "sil", DIL: "dil",
	R8B: "r8b", R9B: "r9b", R10B: "r10b", R11B: "r11b",
	R12B: "r12b", R13B: "r13b", R14B: "r14b", R15B: "r15b",

	AH: "ah", CH: "ch", DH: "dh", BH: "bh",

	XMM0: "xmm0", XMM1: "xmm1", XMM2: "xmm2", XMM3: "xmm3",
	XMM4: "xmm4", XMM5: "xmm5", XMM6: "xmm6", XMM7: "xmm7",
	XMM8: "xmm8", XMM9: "xmm9", XMM10: "xmm10", XMM11: "xmm11",
	XMM12: "xmm12", XMM13: "xmm13", XMM14: "xmm14", XMM15: "xmm15",

	RIP: "rip", RFLAGS: "rflags",
}

var regByName map[string]Reg

func init() {
	regByName = make(map[string]Reg, len(regNames))
	for r, n := range regNames {
		regByName[n] = r
	}
}

// RegByName returns the register with the given AT&T name (without the
// '%' sigil), e.g. "rax" or "xmm3". It returns RegNone, false if the
// name is unknown.
func RegByName(name string) (Reg, bool) {
	r, ok := regByName[name]
	return r, ok
}

// String returns the bare register name without the AT&T '%' sigil.
func (r Reg) String() string {
	if n, ok := regNames[r]; ok {
		return n
	}
	return fmt.Sprintf("reg(%d)", uint16(r))
}

// ATT returns the AT&T-syntax spelling of the register, e.g. "%rax".
func (r Reg) ATT() string {
	return "%" + r.String()
}

// IsGPR reports whether r is a general-purpose register of any width.
func (r Reg) IsGPR() bool { return r >= RAX && r <= BH }

// IsXMM reports whether r is an SSE register.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM15 }

// Width returns the operand width of the register.
func (r Reg) Width() Width {
	switch {
	case r >= RAX && r <= R15:
		return W64
	case r >= EAX && r <= R15D:
		return W32
	case r >= AX && r <= R15W:
		return W16
	case r >= AL && r <= BH:
		return W8
	case r.IsXMM():
		return W128
	case r == RIP:
		return W64
	default:
		return W0
	}
}

// Num returns the 4-bit hardware encoding number of the register
// (0..15). The caller is responsible for placing bit 3 into the
// appropriate REX field. Num panics on registers without a hardware
// number (RegNone, RFLAGS).
func (r Reg) Num() int {
	switch {
	case r >= RAX && r <= R15:
		return int(r - RAX)
	case r >= EAX && r <= R15D:
		return int(r - EAX)
	case r >= AX && r <= R15W:
		return int(r - AX)
	case r >= AL && r <= R15B:
		return int(r - AL)
	case r >= AH && r <= BH:
		return int(r-AH) + 4 // ah=4, ch=5, dh=6, bh=7
	case r.IsXMM():
		return int(r - XMM0)
	}
	panic(fmt.Sprintf("x86: register %v has no hardware number", r))
}

// Family returns the canonical 64-bit register that r aliases, e.g.
// Family(EAX) == Family(AL) == RAX. XMM registers are their own family.
// Registers without aliasing families (RIP, RFLAGS, RegNone) return
// themselves. The data-flow layer treats any two registers of the same
// family as overlapping.
func (r Reg) Family() Reg {
	switch {
	case r >= RAX && r <= R15:
		return r
	case r >= EAX && r <= R15D:
		return r - EAX + RAX
	case r >= AX && r <= R15W:
		return r - AX + RAX
	case r >= AL && r <= R15B:
		return r - AL + RAX
	case r >= AH && r <= BH:
		return r - AH + RAX // ah aliases rax, etc.
	default:
		return r
	}
}

// WithWidth returns the register of the same family with the given
// width, e.g. RAX.WithWidth(W32) == EAX. It panics for widths the
// family does not support.
func (r Reg) WithWidth(w Width) Reg {
	f := r.Family()
	if f >= RAX && f <= R15 {
		switch w {
		case W64:
			return f
		case W32:
			return f - RAX + EAX
		case W16:
			return f - RAX + AX
		case W8:
			return f - RAX + AL
		}
	}
	if r.IsXMM() && w == W128 {
		return r
	}
	panic(fmt.Sprintf("x86: no %d-byte form of register %v", w, r))
}

// NeedsREX reports whether using this register forces a REX prefix:
// the extended registers r8..r15 (any width) and the uniform byte
// registers spl/bpl/sil/dil.
func (r Reg) NeedsREX() bool {
	if r >= SPL && r <= DIL {
		return true
	}
	switch {
	case r >= R8 && r <= R15,
		r >= R8D && r <= R15D,
		r >= R8W && r <= R15W,
		r >= R8B && r <= R15B,
		r >= XMM8 && r <= XMM15:
		return true
	}
	return false
}

// IsHighByte reports whether r is one of the legacy high-byte registers
// (ah/ch/dh/bh), which cannot be encoded in an instruction carrying a
// REX prefix.
func (r Reg) IsHighByte() bool { return r >= AH && r <= BH }

// GPR64 lists the sixteen 64-bit general-purpose registers in hardware
// encoding order.
var GPR64 = []Reg{RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R9, R10, R11, R12, R13, R14, R15}
