package x86

import (
	"fmt"
	"strconv"
	"strings"
)

// OperandKind discriminates the Operand union.
type OperandKind uint8

// Operand kinds.
const (
	KindNone  OperandKind = iota
	KindImm               // $42
	KindReg               // %rax
	KindMem               // 8(%rsp,%rdi,4), sym(%rip), ...
	KindLabel             // direct branch/call target: .L5, printf
)

// Operand is one instruction operand. Exactly the fields relevant to
// Kind are meaningful. Operands are small value types; instructions
// hold them by value so that copying an Inst deep-copies its operands.
type Operand struct {
	Kind OperandKind

	Imm int64  // KindImm
	Reg Reg    // KindReg
	Mem Mem    // KindMem
	Sym string // KindLabel: target symbol
	Off int64  // KindLabel: constant addend (sym+8)

	// Star marks AT&T indirect call/jump targets (*%rax, *(%rax)):
	// the operand (register or memory) holds the target address.
	Star bool
}

// Mem describes an x86 memory reference disp(base,index,scale),
// possibly with a symbolic displacement and possibly RIP-relative.
type Mem struct {
	Disp    int64
	Sym     string // symbolic displacement: sym or sym+Disp
	Base    Reg    // RegNone if absent; RIP for RIP-relative
	Index   Reg    // RegNone if absent
	Scale   uint8  // 1, 2, 4, 8 (0 treated as 1)
	Segment Reg    // reserved; always RegNone in this implementation
}

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// MemOp returns a memory operand.
func MemOp(m Mem) Operand { return Operand{Kind: KindMem, Mem: m} }

// LabelOp returns a direct branch-target operand.
func LabelOp(sym string) Operand { return Operand{Kind: KindLabel, Sym: sym} }

// IsReg reports whether the operand is the given register.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KindReg && o.Reg == r }

// IsImm reports whether the operand is the given immediate.
func (o Operand) IsImm(v int64) bool { return o.Kind == KindImm && o.Imm == v }

// String renders the operand in AT&T syntax.
func (o Operand) String() string {
	var s string
	switch o.Kind {
	case KindNone:
		return "<none>"
	case KindImm:
		return "$" + strconv.FormatInt(o.Imm, 10)
	case KindReg:
		s = o.Reg.ATT()
	case KindMem:
		s = o.Mem.String()
	case KindLabel:
		s = o.Sym
		if o.Off != 0 {
			s += fmt.Sprintf("%+d", o.Off)
		}
	}
	if o.Star {
		s = "*" + s
	}
	return s
}

// String renders the memory reference in AT&T syntax.
func (m Mem) String() string {
	var b strings.Builder
	if m.Sym != "" {
		b.WriteString(m.Sym)
		if m.Disp != 0 {
			fmt.Fprintf(&b, "%+d", m.Disp)
		}
	} else if m.Disp != 0 || (m.Base == RegNone && m.Index == RegNone) {
		b.WriteString(strconv.FormatInt(m.Disp, 10))
	}
	if m.Base != RegNone || m.Index != RegNone {
		b.WriteByte('(')
		if m.Base != RegNone {
			b.WriteString(m.Base.ATT())
		}
		if m.Index != RegNone {
			b.WriteByte(',')
			b.WriteString(m.Index.ATT())
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(int(m.EffScale())))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// EffScale returns the effective index scale, normalizing 0 to 1.
func (m Mem) EffScale() uint8 {
	if m.Scale == 0 {
		return 1
	}
	return m.Scale
}

// IsRIPRel reports whether the reference is RIP-relative.
func (m Mem) IsRIPRel() bool { return m.Base == RIP }
