package x86

import "strings"

// Cond is an x86 condition code as used by jcc, setcc and cmovcc. The
// numeric values are the hardware condition encodings (the low nibble
// of the 0F 8x jcc opcodes), so the encoder can emit 0x70+Cond or
// 0x0F 0x80+Cond directly.
type Cond uint8

// Condition codes, in hardware encoding order.
const (
	CondO  Cond = 0x0 // overflow
	CondNO Cond = 0x1
	CondB  Cond = 0x2 // below (carry)
	CondAE Cond = 0x3
	CondE  Cond = 0x4 // equal (zero)
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8 // sign
	CondNS Cond = 0x9
	CondP  Cond = 0xA // parity
	CondNP Cond = 0xB
	CondL  Cond = 0xC // less (signed)
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF
)

var condNames = [...]string{
	CondO: "o", CondNO: "no", CondB: "b", CondAE: "ae",
	CondE: "e", CondNE: "ne", CondBE: "be", CondA: "a",
	CondS: "s", CondNS: "ns", CondP: "p", CondNP: "np",
	CondL: "l", CondGE: "ge", CondLE: "le", CondG: "g",
}

// condAliases maps every accepted spelling to its canonical condition.
var condAliases = map[string]Cond{
	"o": CondO, "no": CondNO,
	"b": CondB, "c": CondB, "nae": CondB,
	"ae": CondAE, "nb": CondAE, "nc": CondAE,
	"e": CondE, "z": CondE,
	"ne": CondNE, "nz": CondNE,
	"be": CondBE, "na": CondBE,
	"a": CondA, "nbe": CondA,
	"s": CondS, "ns": CondNS,
	"p": CondP, "pe": CondP,
	"np": CondNP, "po": CondNP,
	"l": CondL, "nge": CondL,
	"ge": CondGE, "nl": CondGE,
	"le": CondLE, "ng": CondLE,
	"g": CondG, "nle": CondG,
}

// String returns the canonical spelling ("ne", "ge", ...).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "??"
}

// Negate returns the logically inverted condition (e <-> ne, l <-> ge,
// ...). In the hardware encoding this is just a flip of the low bit.
func (c Cond) Negate() Cond { return c ^ 1 }

// FlagsRead returns the set of RFLAGS bits the condition tests.
func (c Cond) FlagsRead() Flags {
	switch c &^ 1 { // pairs share their flag set
	case CondO:
		return OF
	case CondB:
		return CF
	case CondE:
		return ZF
	case CondBE:
		return CF | ZF
	case CondS:
		return SF
	case CondP:
		return PF
	case CondL:
		return SF | OF
	case CondLE:
		return SF | OF | ZF
	}
	return 0
}

// cutCond splits a condition spelling off the front of s, longest
// match first ("nle..." must not parse as "n"+garbage). It returns the
// condition, the remaining tail, and whether a condition was found.
func cutCond(s string) (Cond, string, bool) {
	for _, n := range []int{3, 2, 1} {
		if len(s) >= n {
			if c, ok := condAliases[s[:n]]; ok {
				// A valid tail is empty or a width suffix; reject
				// splits like "ne" + "x". The caller validates the
				// tail further, but refusing non-suffix tails here
				// lets shorter prefixes win (e.g. "nel" -> ne + l).
				tail := s[n:]
				if tail == "" || (len(tail) == 1 && strings.ContainsRune("bwlq", rune(tail[0]))) {
					return c, tail, true
				}
			}
		}
	}
	return 0, "", false
}

// Flags is a bit set of RFLAGS condition bits.
type Flags uint8

// RFLAGS condition bits.
const (
	CF Flags = 1 << iota // carry
	PF                   // parity
	AF                   // adjust
	ZF                   // zero
	SF                   // sign
	OF                   // overflow
)

// AllFlags is the full arithmetic status set.
const AllFlags = CF | PF | AF | ZF | SF | OF

// String lists the set flags, e.g. "CF|ZF".
func (f Flags) String() string {
	if f == 0 {
		return "-"
	}
	var parts []string
	for _, e := range []struct {
		bit  Flags
		name string
	}{{CF, "CF"}, {PF, "PF"}, {AF, "AF"}, {ZF, "ZF"}, {SF, "SF"}, {OF, "OF"}} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "|")
}
