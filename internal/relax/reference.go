package relax

import (
	"fmt"

	"mao/internal/ir"
	"mao/internal/x86/encode"
)

// RefLayout is the result of Reference: the same information as Layout
// but map-backed and self-contained (no State views), so it survives
// any later relaxation and can be diffed field by field.
type RefLayout struct {
	Addr       map[*ir.Node]int64
	Len        map[*ir.Node]int
	Bytes      map[*ir.Node][]byte
	SectionEnd map[string]int64
	Iterations int

	labelAddr map[string]int64
}

// SymAddr resolves a label to its relaxed address.
func (l *RefLayout) SymAddr(sym string) (int64, bool) {
	a, ok := l.labelAddr[sym]
	return a, ok
}

// Reference is the straight-line relaxation algorithm: every iteration
// walks and re-encodes the entire unit. It is kept verbatim as the
// oracle for the differential test suite — the fragment engine must
// produce byte- and address-identical layouts — and as the baseline
// for the repeated-relaxation benchmarks. Options.State is ignored.
func Reference(u *ir.Unit, opts *Options) (*RefLayout, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}

	l := &RefLayout{
		Addr:       make(map[*ir.Node]int64),
		Len:        make(map[*ir.Node]int),
		Bytes:      make(map[*ir.Node][]byte),
		SectionEnd: make(map[string]int64),
		labelAddr:  make(map[string]int64),
	}
	forceLong := make(map[*ir.Node]bool)

	resolver := func(sym string) (int64, bool) {
		a, ok := l.labelAddr[sym]
		return a, ok
	}

	for iter := 1; ; iter++ {
		if iter > o.MaxIterations {
			return nil, fmt.Errorf("relax: no fixpoint after %d iterations", o.MaxIterations)
		}
		l.Iterations = iter

		cursor := make(map[string]int64) // per-section location counter
		newLabels := make(map[string]int64)
		grew := false

		for n := u.List.Front(); n != nil; n = n.Next() {
			sec := n.Section
			addr, ok := cursor[sec]
			if !ok {
				addr = o.Base
			}
			l.Addr[n] = addr

			size := 0
			switch n.Kind {
			case ir.NodeLabel:
				newLabels[n.Label] = addr
			case ir.NodeDirective:
				var err error
				size, err = directiveSize(n, addr)
				if err != nil {
					return nil, nodeErr(u, n, err)
				}
			case ir.NodeInst:
				// Grow-only sizing: a relaxable branch to an internal
				// label starts short (2 bytes) while the label's
				// address is still unknown; once known, the encoder
				// picks short or long by fit, and a long choice is
				// made sticky so sizes never shrink across iterations
				// (the property that guarantees termination).
				if tgt, relaxable := relaxTarget(n.Inst); relaxable && !forceLong[n] {
					if _, known := l.labelAddr[tgt]; !known && u.FindLabel(tgt) != nil {
						size = 2
						l.Len[n] = size
						cursor[sec] = addr + int64(size)
						continue
					}
				}
				ctx := &encode.Ctx{Addr: addr, SymAddr: resolver, ForceLong: forceLong[n]}
				b, err := encodeCached(o.Cache, n, ctx)
				if err != nil {
					return nil, nodeErr(u, n, err)
				}
				size = len(b)
				l.Bytes[n] = b
				if _, relaxable := relaxTarget(n.Inst); relaxable && size > 2 && !forceLong[n] {
					forceLong[n] = true
					grew = true
				}
			}
			l.Len[n] = size
			cursor[sec] = addr + int64(size)
		}

		stable := !grew && len(newLabels) == len(l.labelAddr)
		if stable {
			for k, v := range newLabels {
				if l.labelAddr[k] != v {
					stable = false
					break
				}
			}
		}
		l.labelAddr = newLabels
		for sec, end := range cursor {
			l.SectionEnd[sec] = end
		}
		if stable {
			return l, nil
		}
	}
}
