// Differential tests: the fragment engine (State) against the
// reference full-walk algorithm (Reference). The hard invariant of the
// incremental engine is byte-identity — every address, length, byte
// sequence, section size and iteration count must match the reference
// on every fixture, after every pass, and across randomized edit
// sequences. The file lives in the external test package so it can run
// real pipelines from the pass catalog over the corpus fixtures.
package relax_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/ir"
	"mao/internal/pass"
	_ "mao/internal/passes" // register the pass catalog
	"mao/internal/relax"
	"mao/internal/trace"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

// diffSources returns every differential fixture: the committed corpus
// units plus hand-written relaxation edge cases.
func diffSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	fixtures, err := filepath.Glob(filepath.Join("..", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures found: %v", err)
	}
	for _, path := range fixtures {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(path)] = string(b)
	}
	out["paper"] = `
	push %rbp
	mov %rsp,%rbp
	movl $0x5,-0x4(%rbp)
	jmp .Lcheck
.Lbody:
	addl $0x1,-0x4(%rbp)
	subl $0x1,-0x4(%rbp)
	.skip 119
.Lcheck:
	cmpl $0x0,-0x4(%rbp)
	jne .Lbody
`
	out["sections"] = `
	.text
	nop
	jmp .Ldone
	.data
	.quad 1
	.byte 1,2,3
	.text
	.p2align 4
.Ldone:
	ret
	.section .rodata
	.string "hello"
`
	out["external"] = `
	jmp printf
	call exit
	nop
.Llocal:
	jne .Llocal
	jmp missing_symbol
`
	out["alignchain"] = `
	nop
	.p2align 3
	nop
	.p2align 4,,7
	jmp .Lend
	.skip 120
	.balign 8
.Lend:
	ret
`
	return out
}

// assertSameLayout compares the fragment engine's layout against the
// reference's over every node and label of u.
func assertSameLayout(t *testing.T, tag string, u *ir.Unit, got *relax.Layout, want *relax.RefLayout) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Errorf("%s: iterations %d, reference %d", tag, got.Iterations, want.Iterations)
	}
	i := 0
	for n := u.List.Front(); n != nil; n = n.Next() {
		if ga, wa := got.Addr(n), want.Addr[n]; ga != wa {
			t.Errorf("%s: node %d (%s): addr %#x, reference %#x", tag, i, n, ga, wa)
		}
		if gl, wl := got.Len(n), want.Len[n]; gl != wl {
			t.Errorf("%s: node %d (%s): len %d, reference %d", tag, i, n, gl, wl)
		}
		if gb, wb := got.Bytes(n), want.Bytes[n]; string(gb) != string(wb) {
			t.Errorf("%s: node %d (%s): bytes %x, reference %x", tag, i, n, gb, wb)
		}
		if n.Kind == ir.NodeLabel {
			ga, gok := got.SymAddr(n.Label)
			wa, wok := want.SymAddr(n.Label)
			if gok != wok || ga != wa {
				t.Errorf("%s: label %s: %#x/%v, reference %#x/%v", tag, n.Label, ga, gok, wa, wok)
			}
		}
		i++
	}
	if len(got.SectionEnd) != len(want.SectionEnd) {
		t.Errorf("%s: %d sections, reference %d", tag, len(got.SectionEnd), len(want.SectionEnd))
	}
	for sec, end := range want.SectionEnd {
		if got.SectionEnd[sec] != end {
			t.Errorf("%s: section %s ends at %#x, reference %#x", tag, sec, got.SectionEnd[sec], end)
		}
	}
	if t.Failed() {
		t.FailNow() // one diverged layout produces thousands of lines; stop at the first
	}
}

func mustParse(t *testing.T, name, src string) *ir.Unit {
	t.Helper()
	u, err := asm.ParseString(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return u
}

// TestDifferentialFixtures: cold build, warm fast path, and a
// stateless call all match the reference on every fixture.
func TestDifferentialFixtures(t *testing.T) {
	for name, src := range diffSources(t) {
		t.Run(name, func(t *testing.T) {
			u := mustParse(t, name, src)
			want, err := relax.Reference(u, nil)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			st := relax.NewState()
			got, err := relax.Relax(u, &relax.Options{State: st})
			if err != nil {
				t.Fatalf("relax: %v", err)
			}
			assertSameLayout(t, "cold", u, got, want)

			// Warm path on the untouched unit: same result, no rebuild.
			got2, err := relax.Relax(u, &relax.Options{State: st})
			if err != nil {
				t.Fatalf("warm relax: %v", err)
			}
			assertSameLayout(t, "warm", u, got2, want)
			if m := st.Metrics(); m.FastPath == 0 {
				t.Errorf("warm relax of untouched unit missed the fast path: %+v", m)
			}
		})
	}
}

// TestDifferentialAfterPasses runs every pass of the catalog over every
// fixture — at 1 and 8 workers, traced and untraced — with the
// relaxation state threaded through the manager, then checks the warm
// incremental layout of the transformed unit against the reference.
func TestDifferentialAfterPasses(t *testing.T) {
	specs := []string{"DCE:NOPKILL:REDTEST:REDMOV:REDZEXT:ADDADD:CONSTFOLD", "LOOP16", "LSD", "BRALIGN", "SCHED", "NOPIN", "LFIND", "INSTRUMENT"}
	for name, src := range diffSources(t) {
		for _, spec := range specs {
			for _, workers := range []int{1, 8} {
				for _, traced := range []bool{false, true} {
					tag := fmt.Sprintf("%s/%s/w%d/traced=%v", name, spec, workers, traced)
					t.Run(tag, func(t *testing.T) {
						u := mustParse(t, name, src)
						mgr, err := pass.NewManager(spec)
						if err != nil {
							t.Fatal(err)
						}
						mgr.Workers = workers
						mgr.Cache = relax.NewCache()
						if traced {
							mgr.Tracer = trace.NewCollector()
						}
						st := relax.NewState()
						mgr.RelaxState = st
						if _, err := mgr.Run(u); err != nil {
							t.Fatalf("pipeline %s: %v", spec, err)
						}
						if err := u.Analyze(); err != nil {
							t.Fatal(err)
						}
						want, err := relax.Reference(u, nil)
						if err != nil {
							t.Fatalf("reference: %v", err)
						}
						got, err := st.Relax(u, nil)
						if err != nil {
							t.Fatalf("warm relax: %v", err)
						}
						assertSameLayout(t, "after "+spec, u, got, want)
					})
				}
			}
		}
	}
}

// TestDifferentialRandomEdits drives one State through randomized
// label/branch edit sequences — insertions, deletions, new labels,
// branches to internal and external targets — checking byte-identity
// with a from-scratch reference after every single edit.
func TestDifferentialRandomEdits(t *testing.T) {
	srcs := diffSources(t)
	for _, name := range []string{"paper", "sections", "wl_164_gzip.s"} {
		t.Run(name, func(t *testing.T) {
			u := mustParse(t, name, srcs[name])
			st := relax.NewState()
			opts := &relax.Options{State: st, Cache: relax.NewCache()}
			rng := rand.New(rand.NewSource(20260806))

			randNode := func() *ir.Node {
				nodes := u.List.Nodes()
				return nodes[rng.Intn(len(nodes))]
			}
			labelNames := func() []string {
				var out []string
				for n := u.List.Front(); n != nil; n = n.Next() {
					if n.Kind == ir.NodeLabel {
						out = append(out, n.Label)
					}
				}
				return out
			}
			var inserted []*ir.Node
			nextLabel := 0

			for step := 0; step < 60; step++ {
				switch op := rng.Intn(6); op {
				case 0: // insert a NOP
					n := ir.InstNode(encode.Nop(1))
					u.List.InsertBefore(n, randNode())
					st.NodeInserted(n)
					inserted = append(inserted, n)
				case 1: // insert a jmp to a random existing label
					if ls := labelNames(); len(ls) > 0 {
						in := x86.NewInst(x86.Mnem{Op: x86.OpJMP}, x86.LabelOp(ls[rng.Intn(len(ls))]))
						n := ir.InstNode(in)
						u.List.InsertAfter(n, randNode())
						st.NodeInserted(n)
						inserted = append(inserted, n)
					}
				case 2: // insert a jcc to a random existing label
					if ls := labelNames(); len(ls) > 0 {
						in := x86.NewInst(x86.Mnem{Op: x86.OpJCC, Cond: x86.CondNE}, x86.LabelOp(ls[rng.Intn(len(ls))]))
						n := ir.InstNode(in)
						u.List.InsertBefore(n, randNode())
						st.NodeInserted(n)
						inserted = append(inserted, n)
					}
				case 3: // insert a jmp to an external symbol
					in := x86.NewInst(x86.Mnem{Op: x86.OpJMP}, x86.LabelOp("extern_sym"))
					n := ir.InstNode(in)
					u.List.InsertBefore(n, randNode())
					st.NodeInserted(n)
					inserted = append(inserted, n)
				case 4: // remove a previously inserted node
					if len(inserted) > 0 {
						i := rng.Intn(len(inserted))
						n := inserted[i]
						inserted = append(inserted[:i], inserted[i+1:]...)
						u.List.Remove(n)
						st.NodeRemoved(n)
					}
				case 5: // define a new label and re-analyze
					n := ir.LabelNode(fmt.Sprintf(".Lrand%d", nextLabel))
					nextLabel++
					u.List.InsertBefore(n, randNode())
					st.NodeInserted(n)
					if err := u.Analyze(); err != nil {
						t.Fatalf("step %d: analyze: %v", step, err)
					}
				}
				want, err := relax.Reference(u, &relax.Options{Cache: opts.Cache})
				if err != nil {
					t.Fatalf("step %d: reference: %v", step, err)
				}
				got, err := relax.Relax(u, opts)
				if err != nil {
					t.Fatalf("step %d: relax: %v", step, err)
				}
				assertSameLayout(t, fmt.Sprintf("step %d", step), u, got, want)
			}
		})
	}
}

// adversarialChain builds k forward branches whose targets sit exactly
// at the rel8 limit while all later branches are short — except the
// last, which is one byte over. Each round of relaxation grows exactly
// one more branch, so the fixpoint needs ~k rounds: a termination and
// equivalence stress for the sweep's grow-only stickiness.
func adversarialChain(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "\tjmp .L%d\n", i)
	}
	gap := 0
	for i := 0; i < k; i++ {
		want := 127 - 2*(k-i-1)
		if i == k-1 {
			want = 128 // pushes the last branch out of rel8 range
		}
		fmt.Fprintf(&b, "\t.skip %d\n.L%d:\n", want-gap, i)
		gap = want
	}
	b.WriteString("\tret\n")
	return b.String()
}

func TestAdversarialGrowChain(t *testing.T) {
	const k = 40
	src := adversarialChain(k)
	u := mustParse(t, "chain.s", src)
	want, err := relax.Reference(u, nil)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	st := relax.NewState()
	got, err := st.Relax(u, nil)
	if err != nil {
		t.Fatalf("relax: %v", err)
	}
	if got.Iterations < k {
		t.Errorf("chain converged in %d iterations; want >= %d (one growth per round)", got.Iterations, k)
	}
	assertSameLayout(t, "chain", u, got, want)

	// Both engines must hit the iteration cap identically when it is
	// too low for the chain.
	u2 := mustParse(t, "chain.s", src)
	if _, err := relax.Reference(u2, &relax.Options{MaxIterations: 10}); err == nil {
		t.Error("reference: expected iteration-cap error")
	}
	if _, err := relax.Relax(u2, &relax.Options{MaxIterations: 10}); err == nil {
		t.Error("relax: expected iteration-cap error")
	}
}

// Benchmark wrappers: bodies live in internal/bench so cmd/maobench
// -json runs the identical workloads via testing.Benchmark.

func TestDifferentialWorkloadGenerated(t *testing.T) {
	// One larger generated workload beyond the committed fixtures, so
	// the differential suite sees realistic function/section density.
	w := corpus.Spec2000Int(0.1)[3]
	u := mustParse(t, w.Name, corpus.Generate(w))
	want, err := relax.Reference(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := relax.Relax(u, &relax.Options{State: relax.NewState()})
	if err != nil {
		t.Fatal(err)
	}
	assertSameLayout(t, w.Name, u, got, want)
}
