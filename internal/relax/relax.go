// Package relax implements repeated relaxation: the iterative
// computation of instruction sizes and addresses in the presence of
// variable-length branches and alignment directives.
//
// Relaxation is the process of finding proper instruction sizes for
// branches based on branch-target distances. Inserting a single byte
// can push a branch target out of rel8 range, growing the branch from
// 2 to 5 (jmp) or 6 (jcc) bytes, which moves every following
// instruction, which can grow further branches — so the computation
// iterates. In the general case the problem is NP-complete; following
// the original MAO (and gas), branch sizes only ever grow, and an
// iteration cap of 100 bounds the computation. In practice almost
// every relaxation converges in a few iterations.
package relax

import (
	"fmt"
	"strconv"
	"strings"

	"mao/internal/ir"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

// Layout is the result of relaxation: byte-accurate addresses and
// lengths for every node of the unit, per section.
type Layout struct {
	// Addr is the address of each node within its section (labels and
	// directives included; a label's address is that of the following
	// byte of code/data).
	Addr map[*ir.Node]int64
	// Len is the encoded length in bytes of each node (zero for
	// labels and non-emitting directives; padding length for
	// alignment directives).
	Len map[*ir.Node]int
	// Bytes is the final encoding of each instruction node.
	Bytes map[*ir.Node][]byte
	// SectionEnd maps each section name to its end address (== size,
	// since sections start at the base address).
	SectionEnd map[string]int64
	// Iterations is the number of fixpoint iterations performed.
	Iterations int

	labelAddr map[string]int64
}

// SymAddr resolves a label to its relaxed address (implements the
// encoder's resolver signature).
func (l *Layout) SymAddr(sym string) (int64, bool) {
	a, ok := l.labelAddr[sym]
	return a, ok
}

// Options configures relaxation.
type Options struct {
	// MaxIterations caps the fixpoint loop; 0 means the MAO default
	// of 100.
	MaxIterations int
	// Base is the starting address of every section; sections are
	// laid out independently.
	Base int64
	// Cache, when non-nil, memoizes position-independent instruction
	// encodings across iterations and across Relax calls. See Cache
	// for the invalidation protocol.
	Cache *Cache
}

// Relax computes the layout of every section of u.
func Relax(u *ir.Unit, opts *Options) (*Layout, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}

	l := &Layout{
		Addr:       make(map[*ir.Node]int64),
		Len:        make(map[*ir.Node]int),
		Bytes:      make(map[*ir.Node][]byte),
		SectionEnd: make(map[string]int64),
		labelAddr:  make(map[string]int64),
	}
	forceLong := make(map[*ir.Node]bool)

	resolver := func(sym string) (int64, bool) {
		a, ok := l.labelAddr[sym]
		return a, ok
	}

	for iter := 1; ; iter++ {
		if iter > o.MaxIterations {
			return nil, fmt.Errorf("relax: no fixpoint after %d iterations", o.MaxIterations)
		}
		l.Iterations = iter

		cursor := make(map[string]int64) // per-section location counter
		newLabels := make(map[string]int64)
		grew := false

		for n := u.List.Front(); n != nil; n = n.Next() {
			sec := n.Section
			addr, ok := cursor[sec]
			if !ok {
				addr = o.Base
			}
			l.Addr[n] = addr

			size := 0
			switch n.Kind {
			case ir.NodeLabel:
				newLabels[n.Label] = addr
			case ir.NodeDirective:
				var err error
				size, err = directiveSize(n, addr)
				if err != nil {
					return nil, err
				}
			case ir.NodeInst:
				// Grow-only sizing: a relaxable branch to an internal
				// label starts short (2 bytes) while the label's
				// address is still unknown; once known, the encoder
				// picks short or long by fit, and a long choice is
				// made sticky so sizes never shrink across iterations
				// (the property that guarantees termination).
				if tgt, relaxable := relaxTarget(n.Inst); relaxable && !forceLong[n] {
					if _, known := l.labelAddr[tgt]; !known && u.FindLabel(tgt) != nil {
						size = 2
						l.Len[n] = size
						cursor[sec] = addr + int64(size)
						continue
					}
				}
				ctx := &encode.Ctx{Addr: addr, SymAddr: resolver, ForceLong: forceLong[n]}
				b, err := encodeCached(o.Cache, n, ctx)
				if err != nil {
					return nil, fmt.Errorf("relax: %v", err)
				}
				size = len(b)
				l.Bytes[n] = b
				if _, relaxable := relaxTarget(n.Inst); relaxable && size > 2 && !forceLong[n] {
					forceLong[n] = true
					grew = true
				}
			}
			l.Len[n] = size
			cursor[sec] = addr + int64(size)
		}

		stable := !grew && len(newLabels) == len(l.labelAddr)
		if stable {
			for k, v := range newLabels {
				if l.labelAddr[k] != v {
					stable = false
					break
				}
			}
		}
		l.labelAddr = newLabels
		for sec, end := range cursor {
			l.SectionEnd[sec] = end
		}
		if stable {
			return l, nil
		}
	}
}

// relaxTarget returns the branch target and whether the instruction's
// size depends on branch distance (jmp and jcc with direct targets;
// call is always rel32).
func relaxTarget(in *x86.Inst) (string, bool) {
	if in.Op != x86.OpJMP && in.Op != x86.OpJCC {
		return "", false
	}
	return in.BranchTarget()
}

// directiveSize returns the emitted size of a data/alignment directive
// at the given address. Non-emitting directives return 0.
func directiveSize(n *ir.Node, addr int64) (int, error) {
	d := n.Dir
	switch d.Name {
	case ".byte":
		return len(d.Args), nil
	case ".word", ".value", ".short":
		return 2 * len(d.Args), nil
	case ".long", ".int":
		return 4 * len(d.Args), nil
	case ".quad", ".8byte":
		return 8 * len(d.Args), nil
	case ".zero", ".skip", ".space":
		if len(d.Args) == 0 {
			return 0, fmt.Errorf("relax: %s without size", d.Name)
		}
		v, err := strconv.Atoi(strings.TrimSpace(d.Args[0]))
		if err != nil || v < 0 {
			return 0, fmt.Errorf("relax: bad %s size %q", d.Name, d.Args[0])
		}
		return v, nil
	case ".ascii", ".string", ".asciz":
		total := 0
		for _, a := range d.Args {
			s, err := unquote(a)
			if err != nil {
				return 0, fmt.Errorf("relax: %v", err)
			}
			total += len(s)
			if d.Name != ".ascii" {
				total++ // trailing NUL
			}
		}
		return total, nil
	}
	if align, ok := n.IsAlignDirective(); ok {
		pad := int((int64(align) - addr%int64(align)) % int64(align))
		if max := n.AlignMax(); max >= 0 && pad > max {
			pad = 0
		}
		return pad, nil
	}
	return 0, nil
}

// unquote decodes a gas string literal (double quotes, C escapes).
func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in %s", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\', '"':
			b.WriteByte(body[i])
		default:
			b.WriteByte(body[i])
		}
	}
	return b.String(), nil
}

// Image assembles the final byte image of one section (instruction
// bytes, data directives as zero placeholders, alignment as NOP-style
// 0x90 padding). It is primarily a testing and inspection aid; the
// optimizer itself only needs addresses and lengths.
func (l *Layout) Image(u *ir.Unit, section string) []byte {
	size := l.SectionEnd[section]
	img := make([]byte, size)
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Section != section {
			continue
		}
		if b, ok := l.Bytes[n]; ok {
			copy(img[l.Addr[n]:], b)
			continue
		}
		if _, ok := n.IsAlignDirective(); ok {
			for i := 0; i < l.Len[n]; i++ {
				img[l.Addr[n]+int64(i)] = 0x90
			}
		}
	}
	return img
}
