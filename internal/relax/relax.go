// Package relax implements repeated relaxation: the iterative
// computation of instruction sizes and addresses in the presence of
// variable-length branches and alignment directives.
//
// Relaxation is the process of finding proper instruction sizes for
// branches based on branch-target distances. Inserting a single byte
// can push a branch target out of rel8 range, growing the branch from
// 2 to 5 (jmp) or 6 (jcc) bytes, which moves every following
// instruction, which can grow further branches — so the computation
// iterates. In the general case the problem is NP-complete; following
// the original MAO (and gas), branch sizes only ever grow, and an
// iteration cap of 100 bounds the computation. In practice almost
// every relaxation converges in a few iterations.
//
// The engine is fragment-based (see State): each section is partitioned
// into runs of fixed-size nodes ending at a size-variable tail — a
// relaxable branch or an alignment directive — so the fixpoint sweeps
// O(fragments) integers per round instead of re-encoding O(nodes), and
// a reusable State re-partitions only the fragments an edit touched.
// Reference is the straight-line full-walk implementation the
// differential tests compare against.
package relax

import (
	"fmt"
	"strconv"
	"strings"

	"mao/internal/ir"
	"mao/internal/x86"
)

// Layout is the result of relaxation: byte-accurate addresses and
// lengths for every node of the unit, per section. A Layout is a view
// into the State that produced it — reading it is cheap (slice
// indexing off the node's dense ir.Node.Index), but it is invalidated
// by that State's next Relax call.
type Layout struct {
	// SectionEnd maps each section name to its end address (== size,
	// since sections start at the base address).
	SectionEnd map[string]int64
	// Iterations is the number of fixpoint iterations performed.
	Iterations int

	s *State
}

// Addr returns the address of n within its section (labels and
// directives included; a label's address is that of the following byte
// of code/data). Nodes unknown to the layout report 0.
func (l *Layout) Addr(n *ir.Node) int64 {
	f := l.s.fragAt(n)
	if f == nil {
		return 0
	}
	return f.start + l.s.off[n.Index()]
}

// Len returns the encoded length of n in bytes (zero for labels and
// non-emitting directives; padding length for alignment directives).
func (l *Layout) Len(n *ir.Node) int {
	if l.s.fragAt(n) == nil {
		return 0
	}
	return l.s.lenv[n.Index()]
}

// Bytes returns the final encoding of an instruction node (nil for
// labels, directives and unresolved short branches).
func (l *Layout) Bytes(n *ir.Node) []byte {
	if l.s.fragAt(n) == nil {
		return nil
	}
	return l.s.byt[n.Index()]
}

// SymAddr resolves a label to its relaxed address (implements the
// encoder's resolver signature).
func (l *Layout) SymAddr(sym string) (int64, bool) { return l.s.symAddr(sym) }

// Options configures relaxation.
type Options struct {
	// MaxIterations caps the fixpoint loop; 0 means the MAO default
	// of 100.
	MaxIterations int
	// Base is the starting address of every section; sections are
	// laid out independently.
	Base int64
	// Cache, when non-nil, memoizes position-independent instruction
	// encodings across iterations and across Relax calls. See Cache
	// for the invalidation protocol.
	Cache *Cache
	// State, when non-nil, carries fragment state across Relax calls:
	// repeated relaxation of the same (possibly edited) unit rescans
	// only the fragments that changed and re-encodes only the bytes
	// whose addresses or targets moved. See State for the reuse and
	// invalidation protocol. When nil, Relax builds a throwaway State.
	State *State
}

// Relax computes the layout of every section of u. With opts.State set
// the call is incremental; otherwise it performs a full build.
func Relax(u *ir.Unit, opts *Options) (*Layout, error) {
	st := (*State)(nil)
	if opts != nil {
		st = opts.State
	}
	if st == nil {
		st = NewState()
	}
	return st.Relax(u, opts)
}

// nodeErr attributes a relaxation error to its node's source position:
// "relax: file:line: ..." when the parser stamped a line (PR 1),
// "relax: ..." for synthesized nodes.
func nodeErr(u *ir.Unit, n *ir.Node, err error) error {
	if n != nil && n.Line > 0 && u != nil {
		return fmt.Errorf("relax: %s:%d: %v", u.FileName, n.Line, err)
	}
	return fmt.Errorf("relax: %v", err)
}

// relaxTarget returns the branch target and whether the instruction's
// size depends on branch distance (jmp and jcc with direct targets;
// call is always rel32).
func relaxTarget(in *x86.Inst) (string, bool) {
	if in.Op != x86.OpJMP && in.Op != x86.OpJCC {
		return "", false
	}
	return in.BranchTarget()
}

// longLen is the rel32 form length of a relaxable branch: jmp is
// E9 imm32 (5 bytes), jcc is 0F 8x imm32 (6 bytes). The emit phase
// cross-checks every predicted size against the encoder's output, so
// these constants cannot drift silently.
func longLen(in *x86.Inst) int {
	if in.Op == x86.OpJCC {
		return 6
	}
	return 5
}

// directiveSize returns the emitted size of a data/alignment directive
// at the given address. Non-emitting directives return 0. Errors are
// bare; callers attribute them with nodeErr.
func directiveSize(n *ir.Node, addr int64) (int, error) {
	d := n.Dir
	switch d.Name {
	case ".byte":
		return len(d.Args), nil
	case ".word", ".value", ".short":
		return 2 * len(d.Args), nil
	case ".long", ".int":
		return 4 * len(d.Args), nil
	case ".quad", ".8byte":
		return 8 * len(d.Args), nil
	case ".zero", ".skip", ".space":
		if len(d.Args) == 0 {
			return 0, fmt.Errorf("%s without size", d.Name)
		}
		v, err := strconv.Atoi(strings.TrimSpace(d.Args[0]))
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad %s size %q", d.Name, d.Args[0])
		}
		return v, nil
	case ".ascii", ".string", ".asciz":
		total := 0
		for _, a := range d.Args {
			s, err := unquote(a)
			if err != nil {
				return 0, err
			}
			total += len(s)
			if d.Name != ".ascii" {
				total++ // trailing NUL
			}
		}
		return total, nil
	}
	if align, ok := n.IsAlignDirective(); ok {
		pad := int((int64(align) - addr%int64(align)) % int64(align))
		if max := n.AlignMax(); max >= 0 && pad > max {
			pad = 0
		}
		return pad, nil
	}
	return 0, nil
}

// unquote decodes a gas string literal (double quotes, C escapes).
func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in %s", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\', '"':
			b.WriteByte(body[i])
		default:
			b.WriteByte(body[i])
		}
	}
	return b.String(), nil
}

// Image assembles the final byte image of one section (instruction
// bytes, data directives as zero placeholders, alignment as NOP-style
// 0x90 padding). It is primarily a testing and inspection aid; the
// optimizer itself only needs addresses and lengths.
func (l *Layout) Image(u *ir.Unit, section string) []byte {
	size := l.SectionEnd[section]
	img := make([]byte, size)
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Section != section {
			continue
		}
		if b := l.Bytes(n); b != nil {
			copy(img[l.Addr(n):], b)
			continue
		}
		if _, ok := n.IsAlignDirective(); ok {
			for i := 0; i < l.Len(n); i++ {
				img[l.Addr(n)+int64(i)] = 0x90
			}
		}
	}
	return img
}
