package relax_test

import (
	"testing"

	"mao/internal/bench"
)

// The benchmark bodies live in internal/bench so cmd/maobench -json
// runs the identical workloads through testing.Benchmark and records
// them in BENCH_relax.json; these wrappers expose them to `go test
// -bench` (and ci.sh's bench smoke).

// BenchmarkRelaxRepeated is the acceptance benchmark for incremental
// relaxation: a steady-state edit→relax cycle with one reused State.
func BenchmarkRelaxRepeated(b *testing.B) { bench.RelaxRepeated(b) }

// BenchmarkRelaxRepeatedReference is the same cycle on the pre-fragment
// full-walk algorithm — the baseline for the speedup ratio.
func BenchmarkRelaxRepeatedReference(b *testing.B) { bench.RelaxRepeatedReference(b) }

// BenchmarkPipelineRepeated measures repeated alignment pipelines over
// one unit through one manager with a persistent relaxation state.
func BenchmarkPipelineRepeated(b *testing.B) { bench.PipelineRepeated(b) }

// BenchmarkMemoWarm is BenchmarkPipelineRepeated plus a pipeline memo:
// after warm-up, every run is answered from the memo. The ratio of the
// two is the memoization speedup recorded in BENCH_memo.json.
func BenchmarkMemoWarm(b *testing.B) { bench.MemoWarm(b) }
