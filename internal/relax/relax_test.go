package relax

import (
	"encoding/hex"
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

func parse(t *testing.T, src string) *ir.Unit {
	t.Helper()
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u
}

func relaxed(t *testing.T, src string) (*ir.Unit, *Layout) {
	t.Helper()
	u := parse(t, src)
	l, err := Relax(u, nil)
	if err != nil {
		t.Fatalf("relax: %v", err)
	}
	return u, l
}

// paperBefore reconstructs the paper's Section II example: the
// <instructions> elision is a 119-byte filler so that the cmpl lands
// at offset 0x8c exactly as printed.
const paperBefore = `
	push %rbp
	mov %rsp,%rbp
	movl $0x5,-0x4(%rbp)
	jmp .Lcheck
.Lbody:
	addl $0x1,-0x4(%rbp)
	subl $0x1,-0x4(%rbp)
	.skip 119
.Lcheck:
	cmpl $0x0,-0x4(%rbp)
	jne .Lbody
`

func findInsts(u *ir.Unit) []*ir.Node {
	var out []*ir.Node
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind == ir.NodeInst {
			out = append(out, n)
		}
	}
	return out
}

func TestPaperSection2Before(t *testing.T) {
	u, l := relaxed(t, paperBefore)
	insts := findInsts(u)

	wantAddrs := []int64{0x0, 0x1, 0x4, 0xb, 0xd, 0x11, 0x8c, 0x90}
	for i, n := range insts {
		if got := l.Addr(n); got != wantAddrs[i] {
			t.Errorf("inst %d (%s) at %#x, want %#x", i, n.Inst, got, wantAddrs[i])
		}
	}
	// jmp fits rel8: eb 7f.
	jmp := insts[3]
	if got := hex.EncodeToString(l.Bytes(jmp)); got != "eb7f" {
		t.Errorf("jmp bytes = %s, want eb7f", got)
	}
	// jne needs rel32 (backward -0x89).
	jne := insts[7]
	if got := hex.EncodeToString(l.Bytes(jne)); got != "0f8577ffffff" {
		t.Errorf("jne bytes = %s", got)
	}
}

// TestPaperSection2AfterNop inserts the single nop right before
// .Lcheck and verifies the paper's second listing: the jmp grows to 5
// bytes (e9 80 00 00 00), moving the loop body down by 3+1 bytes.
func TestPaperSection2AfterNop(t *testing.T) {
	u := parse(t, paperBefore)
	check := u.FindLabel(".Lcheck")
	u.List.InsertBefore(ir.InstNode(x86.NewInst(x86.Mnem{Op: x86.OpNOP})), check)

	l, err := Relax(u, nil)
	if err != nil {
		t.Fatalf("relax: %v", err)
	}
	insts := findInsts(u)
	// push, mov, movl, jmp, addl, subl, nop, cmpl, jne
	wantAddrs := []int64{0x0, 0x1, 0x4, 0xb, 0x10, 0x14, 0x8f, 0x90, 0x94}
	for i, n := range insts {
		if got := l.Addr(n); got != wantAddrs[i] {
			t.Errorf("inst %d (%s) at %#x, want %#x", i, n.Inst, got, wantAddrs[i])
		}
	}
	jmp := insts[3]
	if got := hex.EncodeToString(l.Bytes(jmp)); got != "e980000000" {
		t.Errorf("jmp bytes = %s, want e980000000", got)
	}
	jne := insts[8]
	if got := hex.EncodeToString(l.Bytes(jne)); got != "0f8576ffffff" {
		t.Errorf("jne bytes = %s, want 0f8576ffffff (paper listing)", got)
	}
	if l.Iterations < 2 {
		t.Errorf("iterations = %d; growth requires at least one extra pass", l.Iterations)
	}
}

func TestShortLoopStaysShort(t *testing.T) {
	_, l := relaxed(t, `
.Ltop:
	addl $1, %eax
	cmpl $10, %eax
	jl .Ltop
`)
	if end := l.SectionEnd[".text"]; end != 3+3+2 {
		t.Errorf("section size = %d, want 8 (short backward branch)", end)
	}
}

func TestCascadingGrowth(t *testing.T) {
	// Two branches: growing the first pushes the second's target out
	// of range, forcing it to grow too — the repeated part of
	// repeated relaxation.
	var b strings.Builder
	b.WriteString("\tjmp .La\n\tjmp .Lb\n")
	// 120 bytes of filler: .La is reachable rel8 from jmp1 only while
	// jmp2 stays short.
	b.WriteString("\t.skip 120\n.La:\n\tnop\n")
	b.WriteString("\t.skip 1\n.Lb:\n\tret\n")
	u, l := relaxed(t, b.String())

	insts := findInsts(u)
	jmp1, jmp2 := insts[0], insts[1]
	// jmp1: target at 2+2+120 = 124 if both short; rel = 124-4 = 120,
	// fits. But jmp2's target .Lb = 124+1+1 = 126; rel = 126-4 = 122,
	// fits too. Verify both stayed short.
	if l.Len(jmp1) != 2 || l.Len(jmp2) != 2 {
		t.Fatalf("lengths = %d, %d; want both short", l.Len(jmp1), l.Len(jmp2))
	}

	// Now add 10 more filler bytes, pushing .Lb (but not .La) out of
	// rel8 range for jmp2; jmp2 grows, which must NOT grow jmp1
	// (backward-stable).
	u2 := parse(t, strings.Replace(b.String(), ".skip 1\n", ".skip 11\n", 1))
	l2, err := Relax(u2, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts2 := findInsts(u2)
	if l2.Len(insts2[0]) != 2 {
		t.Errorf("jmp1 grew unnecessarily to %d", l2.Len(insts2[0]))
	}
	if l2.Len(insts2[1]) != 5 {
		t.Errorf("jmp2 length = %d, want 5", l2.Len(insts2[1]))
	}
}

func TestAlignmentPadding(t *testing.T) {
	u, l := relaxed(t, `
	nop
	.p2align 4
.Laligned:
	ret
`)
	lbl := u.FindLabel(".Laligned")
	if got := l.Addr(lbl); got != 16 {
		t.Errorf("aligned label at %d, want 16", got)
	}
	insts := findInsts(u)
	if got := l.Addr(insts[1]); got != 16 {
		t.Errorf("ret at %d, want 16", got)
	}
}

func TestAlignmentMaxSkip(t *testing.T) {
	// .p2align 4,,3 must not pad when more than 3 bytes are needed.
	u, l := relaxed(t, `
	nop
	.p2align 4,,3
.Lx:
	ret
`)
	if got := l.Addr(u.FindLabel(".Lx")); got != 1 {
		t.Errorf("label at %d, want 1 (padding suppressed)", got)
	}
	// With 15 allowed it pads.
	u2, l2 := relaxed(t, "\tnop\n\t.p2align 4,,15\n.Lx:\n\tret\n")
	if got := l2.Addr(u2.FindLabel(".Lx")); got != 16 {
		t.Errorf("label at %d, want 16", got)
	}
}

func TestDataDirectiveSizes(t *testing.T) {
	_, l := relaxed(t, `
	.data
	.byte 1,2,3
	.word 5
	.long 1,2
	.quad 9
	.zero 7
	.string "ab"
	.ascii "cd"
`)
	if got := l.SectionEnd[".data"]; got != 3+2+8+8+7+3+2 {
		t.Errorf(".data size = %d, want 33", got)
	}
}

func TestSectionsLayoutIndependently(t *testing.T) {
	_, l := relaxed(t, `
	.text
	nop
	.data
	.quad 1
	.text
	ret
`)
	if l.SectionEnd[".text"] != 2 {
		t.Errorf(".text size = %d, want 2", l.SectionEnd[".text"])
	}
	if l.SectionEnd[".data"] != 8 {
		t.Errorf(".data size = %d, want 8", l.SectionEnd[".data"])
	}
}

func TestLabelResolution(t *testing.T) {
	_, l := relaxed(t, "\tnop\n.La:\n\tnop\n.Lb:\n")
	if a, ok := l.SymAddr(".La"); !ok || a != 1 {
		t.Errorf(".La = %d, %v", a, ok)
	}
	if b, ok := l.SymAddr(".Lb"); !ok || b != 2 {
		t.Errorf(".Lb = %d, %v", b, ok)
	}
	if _, ok := l.SymAddr("missing"); ok {
		t.Error("missing label resolved")
	}
}

func TestImage(t *testing.T) {
	u, l := relaxed(t, "\tmovl $1, %eax\n\tret\n")
	img := l.Image(u, ".text")
	want := []byte{0xB8, 1, 0, 0, 0, 0xC3}
	if string(img) != string(want) {
		t.Errorf("image = %x, want %x", img, want)
	}
}

func TestRelaxationIdempotent(t *testing.T) {
	// Re-relaxing an already-relaxed unit must converge to identical
	// addresses (fixpoint property).
	u, l1 := relaxed(t, paperBefore)
	l2, err := Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := u.List.Front(); n != nil; n = n.Next() {
		if l1.Addr(n) != l2.Addr(n) || l1.Len(n) != l2.Len(n) {
			t.Fatalf("non-deterministic layout at %v", n)
		}
	}
}

func TestIterationCap(t *testing.T) {
	u := parse(t, "\tjmp .La\n.La:\n\tret\n")
	if _, err := Relax(u, &Options{MaxIterations: 1}); err == nil {
		t.Error("expected iteration-cap error with MaxIterations=1")
	}
}

// Property: inserting any single-byte nop never shrinks any section
// and never invalidates branch reachability (every branch still
// encodes).
func TestNopInsertionMonotonic(t *testing.T) {
	u, l1 := relaxed(t, paperBefore)
	before := l1.SectionEnd[".text"]
	insts := findInsts(u)
	for i := range insts {
		u2 := parse(t, paperBefore)
		insts2 := findInsts(u2)
		u2.List.InsertBefore(ir.InstNode(encode.Nop(1)), insts2[i])
		l2, err := Relax(u2, nil)
		if err != nil {
			t.Fatalf("insert before inst %d: %v", i, err)
		}
		after := l2.SectionEnd[".text"]
		if after < before+1 {
			t.Errorf("inserting nop before inst %d shrank section: %d -> %d", i, before, after)
		}
	}
}
