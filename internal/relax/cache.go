package relax

import (
	"sync"
	"sync/atomic"

	"mao/internal/ir"
	"mao/internal/x86/encode"
)

// Cache memoizes instruction encodings across relaxation iterations and
// across repeated Relax calls — the phase-ordering / profile-guided
// re-run workload, where the same unit is relaxed many times with only
// a few functions changing in between. Only position-independent
// encodings (encode.PositionIndependent) are cached; branches and
// symbolic references always re-encode at their current address.
//
// The cache has two tiers:
//
//   - A node tier keyed on the *ir.Node identity. It is the fast path
//     (no key computation at all) but is only sound under the
//     invalidation protocol: passes mutate instructions in place, so
//     whoever runs passes over the unit must call InvalidateFunction
//     for every function a pass changed (pass.Manager does this
//     whenever a FuncPass reports changed, and InvalidateAll after a
//     changed UnitPass). A stale node entry returns the bytes of the
//     pre-mutation instruction.
//   - A content tier keyed on the instruction's canonical text. It is
//     unconditionally sound — mutating an instruction changes its key —
//     and catches repeated idioms (the same "decl %ecx" encodes once
//     per unit, not once per occurrence).
//
// A Cache is safe for concurrent use; a nil *Cache disables caching.
type Cache struct {
	mu      sync.Mutex
	node    map[*ir.Node][]byte
	content map[string][]byte

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty encoding cache.
func NewCache() *Cache {
	return &Cache{
		node:    make(map[*ir.Node][]byte),
		content: make(map[string][]byte),
	}
}

// lookup returns the cached encoding for the node, trying the node tier
// first and falling back to the content tier (promoting the entry to
// the node tier on a content hit). The caller must have established
// that the node's instruction is position-independent.
func (c *Cache) lookup(n *ir.Node) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.node[n]; ok {
		c.hits.Add(1)
		return b, true
	}
	if b, ok := c.content[n.Inst.String()]; ok {
		c.node[n] = b
		c.hits.Add(1)
		return b, true
	}
	c.misses.Add(1)
	return nil, false
}

// store records a freshly computed position-independent encoding in
// both tiers.
func (c *Cache) store(n *ir.Node, b []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.node[n] = b
	c.content[n.Inst.String()] = b
}

// InvalidateFunction drops the node-tier entries of every node in the
// function's span. Call it after a pass reported changing the function:
// passes mutate instructions in place, and a stale node entry would
// silently encode the pre-mutation instruction. The content tier needs
// no invalidation (its keys are the instruction text).
func (c *Cache) InvalidateFunction(f *ir.Function) {
	if c == nil || f == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range f.Entries() {
		delete(c.node, n)
	}
}

// InvalidateAll drops the whole node tier (after a unit-wide mutation
// whose extent is unknown). The content tier survives.
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.node)
}

// Counters returns the cumulative hit and miss counts.
func (c *Cache) Counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	h, m := c.Counters()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// encodeCached is the cache-aware encoding path of the relaxation
// loop: position-independent instructions go through the cache, every
// other instruction encodes at its current address.
func encodeCached(c *Cache, n *ir.Node, ctx *encode.Ctx) ([]byte, error) {
	if c == nil || !encode.PositionIndependent(n.Inst) {
		return encode.Encode(n.Inst, ctx)
	}
	if b, ok := c.lookup(n); ok {
		return b, nil
	}
	b, err := encode.Encode(n.Inst, ctx)
	if err != nil {
		return nil, err
	}
	c.store(n, b)
	return b, nil
}
