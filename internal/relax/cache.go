package relax

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mao/internal/ir"
	"mao/internal/x86/encode"
)

// Default per-tier entry caps. They are sized for the committed corpus
// with an order of magnitude of headroom: the largest corpus unit holds
// a few thousand instruction nodes (node tier) and a few hundred
// distinct instruction texts (content tier), so one-shot pipelines
// never evict. The caps exist for long-lived daemons (cmd/maod), where
// an unbounded cache keyed on node identity would retain entries for
// every unit ever optimized.
const (
	DefaultNodeEntries    = 1 << 16 // 65536
	DefaultContentEntries = 1 << 14 // 16384
)

// Cache memoizes instruction encodings across relaxation iterations and
// across repeated Relax calls — the phase-ordering / profile-guided
// re-run workload, where the same unit is relaxed many times with only
// a few functions changing in between. Only position-independent
// encodings (encode.PositionIndependent) are cached; branches and
// symbolic references always re-encode at their current address.
//
// The cache has two tiers:
//
//   - A node tier keyed on the *ir.Node identity. It is the fast path
//     (no key computation at all) but is only sound under the
//     invalidation protocol: passes mutate instructions in place, so
//     whoever runs passes over the unit must call InvalidateFunction
//     for every function a pass changed (pass.Manager does this
//     whenever a FuncPass reports changed, and InvalidateAll after a
//     changed UnitPass). A stale node entry returns the bytes of the
//     pre-mutation instruction.
//   - A content tier keyed on the instruction's canonical text. It is
//     unconditionally sound — mutating an instruction changes its key —
//     and catches repeated idioms (the same "decl %ecx" encodes once
//     per unit, not once per occurrence).
//
// Both tiers are bounded: each holds at most its configured entry cap
// and evicts least-recently-used entries beyond it, so a shared cache
// in a long-lived process (the maod daemon keeps one for its whole
// lifetime) has a fixed memory ceiling. Eviction only ever forgets —
// an evicted entry re-encodes on next use — so it cannot affect
// soundness, only the hit rate.
//
// A Cache is safe for concurrent use; a nil *Cache disables caching.
type Cache struct {
	mu         sync.Mutex
	node       map[*ir.Node]*list.Element
	content    map[string]*list.Element
	nodeLRU    *list.List // of nodeEntry, front = most recent
	contentLRU *list.List // of contentEntry, front = most recent
	nodeCap    int
	contentCap int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type nodeEntry struct {
	key *ir.Node
	b   []byte
}

type contentEntry struct {
	key string
	b   []byte
}

// NewCache returns an empty encoding cache with the default entry caps.
func NewCache() *Cache {
	return NewCacheLimits(DefaultNodeEntries, DefaultContentEntries)
}

// NewCacheLimits returns an empty encoding cache holding at most
// nodeEntries node-tier and contentEntries content-tier entries
// (values <= 0 select the defaults). Beyond a cap the least recently
// used entry is evicted.
func NewCacheLimits(nodeEntries, contentEntries int) *Cache {
	if nodeEntries <= 0 {
		nodeEntries = DefaultNodeEntries
	}
	if contentEntries <= 0 {
		contentEntries = DefaultContentEntries
	}
	return &Cache{
		node:       make(map[*ir.Node]*list.Element),
		content:    make(map[string]*list.Element),
		nodeLRU:    list.New(),
		contentLRU: list.New(),
		nodeCap:    nodeEntries,
		contentCap: contentEntries,
	}
}

// lookup returns the cached encoding for the node, trying the node tier
// first and falling back to the content tier (promoting the entry to
// the node tier on a content hit). The caller must have established
// that the node's instruction is position-independent.
func (c *Cache) lookup(n *ir.Node) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.node[n]; ok {
		c.nodeLRU.MoveToFront(e)
		c.hits.Add(1)
		return e.Value.(nodeEntry).b, true
	}
	if e, ok := c.content[n.Inst.String()]; ok {
		c.contentLRU.MoveToFront(e)
		b := e.Value.(contentEntry).b
		c.storeNodeLocked(n, b)
		c.hits.Add(1)
		return b, true
	}
	c.misses.Add(1)
	return nil, false
}

// store records a freshly computed position-independent encoding in
// both tiers.
func (c *Cache) store(n *ir.Node, b []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeNodeLocked(n, b)
	key := n.Inst.String()
	if e, ok := c.content[key]; ok {
		c.contentLRU.MoveToFront(e)
		return
	}
	c.content[key] = c.contentLRU.PushFront(contentEntry{key, b})
	for c.contentLRU.Len() > c.contentCap {
		back := c.contentLRU.Back()
		delete(c.content, back.Value.(contentEntry).key)
		c.contentLRU.Remove(back)
		c.evictions.Add(1)
	}
}

// storeNodeLocked inserts or refreshes a node-tier entry and enforces
// the node cap. Callers hold c.mu.
func (c *Cache) storeNodeLocked(n *ir.Node, b []byte) {
	if e, ok := c.node[n]; ok {
		e.Value = nodeEntry{n, b}
		c.nodeLRU.MoveToFront(e)
		return
	}
	c.node[n] = c.nodeLRU.PushFront(nodeEntry{n, b})
	for c.nodeLRU.Len() > c.nodeCap {
		back := c.nodeLRU.Back()
		delete(c.node, back.Value.(nodeEntry).key)
		c.nodeLRU.Remove(back)
		c.evictions.Add(1)
	}
}

// InvalidateFunction drops the node-tier entries of every node in the
// function's span. Call it after a pass reported changing the function:
// passes mutate instructions in place, and a stale node entry would
// silently encode the pre-mutation instruction. The content tier needs
// no invalidation (its keys are the instruction text).
func (c *Cache) InvalidateFunction(f *ir.Function) {
	if c == nil || f == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range f.Entries() {
		if e, ok := c.node[n]; ok {
			c.nodeLRU.Remove(e)
			delete(c.node, n)
		}
	}
}

// InvalidateAll drops the whole node tier (after a unit-wide mutation
// whose extent is unknown). The content tier survives.
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.node)
	c.nodeLRU.Init()
}

// Len returns the current number of node- and content-tier entries.
func (c *Cache) Len() (nodes, contents int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.node), len(c.content)
}

// Counters returns the cumulative hit and miss counts.
func (c *Cache) Counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns the cumulative count of entries dropped by the
// LRU caps (invalidations are not evictions).
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	h, m := c.Counters()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// encodeCached is the cache-aware encoding path of the relaxation
// loop: position-independent instructions go through the cache, every
// other instruction encodes at its current address.
func encodeCached(c *Cache, n *ir.Node, ctx *encode.Ctx) ([]byte, error) {
	if c == nil || !encode.PositionIndependent(n.Inst) {
		return encode.Encode(n.Inst, ctx)
	}
	if b, ok := c.lookup(n); ok {
		return b, nil
	}
	b, err := encode.Encode(n.Inst, ctx)
	if err != nil {
		return nil, err
	}
	c.store(n, b)
	return b, nil
}
