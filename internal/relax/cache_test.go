package relax

import (
	"testing"

	"mao/internal/ir"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

const cacheSrc = `
	.text
.globl f
.type f, @function
f:
	push %rbp
	mov %rsp,%rbp
	movl $5, %eax
	movl $5, %ecx
	decl %ecx
	decl %ecx
	jne .Lf
.Lf:
	addl $1, %eax
	pop %rbp
	ret
.size f, .-f
.globl g
.type g, @function
g:
	movl $5, %eax
	decl %ecx
	ret
.size g, .-g
`

// TestCacheTransparent: a cached relaxation produces exactly the
// layout an uncached one does.
func TestCacheTransparent(t *testing.T) {
	u1, plain := relaxed(t, cacheSrc)
	u2 := parse(t, cacheSrc)
	c := NewCache()
	cached, err := Relax(u2, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := findInsts(u1), findInsts(u2)
	if len(i1) != len(i2) {
		t.Fatalf("instruction counts differ")
	}
	for k := range i1 {
		if plain.Addr(i1[k]) != cached.Addr(i2[k]) {
			t.Errorf("inst %d: addr %#x (plain) vs %#x (cached)", k, plain.Addr(i1[k]), cached.Addr(i2[k]))
		}
		if string(plain.Bytes(i1[k])) != string(cached.Bytes(i2[k])) {
			t.Errorf("inst %d: bytes differ", k)
		}
	}
	if h, m := c.Counters(); h == 0 || m == 0 {
		t.Errorf("expected both hits and misses on first relaxation, got %d/%d", h, m)
	}
}

// TestCacheHitRateSecondRun: relaxing the same unchanged unit a second
// time through the same cache serves at least half of all lookups from
// cache — the acceptance bar for the repeated-pipeline workload.
func TestCacheHitRateSecondRun(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	h0, m0 := c.Counters()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	h1, m1 := c.Counters()
	hits, misses := h1-h0, m1-m0
	if misses != 0 {
		t.Errorf("second identical relaxation missed %d times", misses)
	}
	if total := hits + misses; total == 0 || float64(hits)/float64(total) < 0.5 {
		t.Errorf("second-run hit rate %d/%d below 50%%", hits, total)
	}
	if c.HitRate() <= 0 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
}

// TestCacheInvalidation: after an in-place instruction mutation plus
// the protocol's InvalidateFunction call, relaxation re-encodes the
// changed instruction rather than serving stale bytes.
func TestCacheInvalidation(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	l1, err := Relax(u, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	f := u.Functions()[0]
	target := f.Instructions()[2] // movl $5, %eax
	before := string(l1.Bytes(target))

	// Mutate in place, as passes do, then invalidate the span.
	target.Inst.Args[0].Imm = 7
	c.InvalidateFunction(f)

	l2, err := Relax(u, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	after := string(l2.Bytes(target))
	if before == after {
		t.Errorf("mutated instruction re-encoded to identical bytes % x", after)
	}
	uncached, err := Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(uncached.Bytes(target)) != after {
		t.Errorf("cached encoding % x differs from uncached % x", after, uncached.Bytes(target))
	}
}

// TestCacheContentTierSurvivesInvalidateAll: the content tier is keyed
// on instruction text, so InvalidateAll still leaves repeated idioms
// served from cache.
func TestCacheContentTierSurvivesInvalidateAll(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	c.InvalidateAll()
	h0, m0 := c.Counters()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	h1, m1 := c.Counters()
	if m1 != m0 {
		t.Errorf("content tier should have absorbed all lookups, missed %d", m1-m0)
	}
	if h1 == h0 {
		t.Error("no hits after InvalidateAll")
	}
}

// TestNilCacheSafe: every method of a nil *Cache is a no-op.
func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.InvalidateAll()
	c.InvalidateFunction(nil)
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Error("nil counters nonzero")
	}
	if c.HitRate() != 0 {
		t.Error("nil hit rate nonzero")
	}
	u := parse(t, cacheSrc)
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
}

// TestBranchesNeverCached: position-dependent instructions bypass the
// cache entirely, so branch re-encoding at new addresses stays exact.
func TestBranchesNeverCached(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for n := range c.node {
		if op := n.Inst.Op; op == x86.OpJCC || op == x86.OpJMP {
			t.Errorf("branch %v found in cache", n.Inst)
		}
	}
	for k := range c.content {
		if k == "" {
			t.Error("empty content key")
		}
	}
}

// TestCacheBounded: the tiers never exceed their configured caps, the
// caps evict LRU-first, and an evicting cache still produces exactly
// the uncached layout (eviction forgets, it never corrupts).
func TestCacheBounded(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCacheLimits(4, 2)
	bounded, err := Relax(u, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	nodes, contents := c.Len()
	if nodes > 4 || contents > 2 {
		t.Errorf("tier sizes %d/%d exceed caps 4/2", nodes, contents)
	}
	if c.Evictions() == 0 {
		t.Error("tiny caps over the fixture must evict")
	}
	// Compare the bounded-cache layout against a fresh uncached one.
	u2 := parse(t, cacheSrc)
	plain, err := Relax(u2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := findInsts(u), findInsts(u2)
	if len(a) != len(b) {
		t.Fatal("instruction counts differ")
	}
	for k := range a {
		if string(bounded.Bytes(a[k])) != string(plain.Bytes(b[k])) {
			t.Errorf("inst %d: bounded-cache bytes differ from uncached", k)
		}
		if bounded.Addr(a[k]) != plain.Addr(b[k]) {
			t.Errorf("inst %d: bounded-cache addr differs from uncached", k)
		}
	}
}

// TestCacheDefaultsNeverEvictOnCorpusUnit: the default caps are sized
// so one-shot pipelines over a unit of this scale never evict.
func TestCacheDefaultsNeverEvictOnCorpusUnit(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	for i := 0; i < 3; i++ {
		if _, err := Relax(u, &Options{Cache: c}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Evictions() != 0 {
		t.Errorf("default caps evicted %d entries on a small unit", c.Evictions())
	}
}

// TestCacheLRUOrder: with a content cap of 2, touching entry A keeps
// it resident while the untouched entry is evicted. The node cap of 1
// forces every lookup through the content tier (a node-tier hit
// deliberately skips content recency — it would cost the string key
// the node tier exists to avoid).
func TestCacheLRUOrder(t *testing.T) {
	u := parse(t, cacheSrc)
	insts := findInsts(u)
	var cacheable []*ir.Node
	for _, n := range insts {
		if encode.PositionIndependent(n.Inst) {
			dup := false
			for _, m := range cacheable {
				if m.Inst.String() == n.Inst.String() {
					dup = true
					break
				}
			}
			if !dup {
				cacheable = append(cacheable, n)
			}
		}
	}
	if len(cacheable) < 3 {
		t.Skipf("fixture has only %d distinct cacheable instructions", len(cacheable))
	}
	c := NewCacheLimits(1, 2)
	ctx := &encode.Ctx{}
	enc := func(n *ir.Node) {
		t.Helper()
		if _, err := encodeCached(c, n, ctx); err != nil {
			t.Fatal(err)
		}
	}
	enc(cacheable[0]) // content: {0}
	enc(cacheable[1]) // content: {0,1}
	enc(cacheable[0]) // refresh 0 → LRU order 1,0
	enc(cacheable[2]) // evicts 1 → {0,2}
	c.mu.Lock()
	_, has0 := c.content[cacheable[0].Inst.String()]
	_, has1 := c.content[cacheable[1].Inst.String()]
	_, has2 := c.content[cacheable[2].Inst.String()]
	c.mu.Unlock()
	if !has0 || has1 || !has2 {
		t.Errorf("LRU order wrong: have0=%v have1=%v have2=%v (want t,f,t)", has0, has1, has2)
	}
}
