package relax

import (
	"testing"

	"mao/internal/x86"
)

const cacheSrc = `
	.text
.globl f
.type f, @function
f:
	push %rbp
	mov %rsp,%rbp
	movl $5, %eax
	movl $5, %ecx
	decl %ecx
	decl %ecx
	jne .Lf
.Lf:
	addl $1, %eax
	pop %rbp
	ret
.size f, .-f
.globl g
.type g, @function
g:
	movl $5, %eax
	decl %ecx
	ret
.size g, .-g
`

// TestCacheTransparent: a cached relaxation produces exactly the
// layout an uncached one does.
func TestCacheTransparent(t *testing.T) {
	u1, plain := relaxed(t, cacheSrc)
	u2 := parse(t, cacheSrc)
	c := NewCache()
	cached, err := Relax(u2, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := findInsts(u1), findInsts(u2)
	if len(i1) != len(i2) {
		t.Fatalf("instruction counts differ")
	}
	for k := range i1 {
		if plain.Addr[i1[k]] != cached.Addr[i2[k]] {
			t.Errorf("inst %d: addr %#x (plain) vs %#x (cached)", k, plain.Addr[i1[k]], cached.Addr[i2[k]])
		}
		if string(plain.Bytes[i1[k]]) != string(cached.Bytes[i2[k]]) {
			t.Errorf("inst %d: bytes differ", k)
		}
	}
	if h, m := c.Counters(); h == 0 || m == 0 {
		t.Errorf("expected both hits and misses on first relaxation, got %d/%d", h, m)
	}
}

// TestCacheHitRateSecondRun: relaxing the same unchanged unit a second
// time through the same cache serves at least half of all lookups from
// cache — the acceptance bar for the repeated-pipeline workload.
func TestCacheHitRateSecondRun(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	h0, m0 := c.Counters()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	h1, m1 := c.Counters()
	hits, misses := h1-h0, m1-m0
	if misses != 0 {
		t.Errorf("second identical relaxation missed %d times", misses)
	}
	if total := hits + misses; total == 0 || float64(hits)/float64(total) < 0.5 {
		t.Errorf("second-run hit rate %d/%d below 50%%", hits, total)
	}
	if c.HitRate() <= 0 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
}

// TestCacheInvalidation: after an in-place instruction mutation plus
// the protocol's InvalidateFunction call, relaxation re-encodes the
// changed instruction rather than serving stale bytes.
func TestCacheInvalidation(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	l1, err := Relax(u, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	f := u.Functions()[0]
	target := f.Instructions()[2] // movl $5, %eax
	before := string(l1.Bytes[target])

	// Mutate in place, as passes do, then invalidate the span.
	target.Inst.Args[0].Imm = 7
	c.InvalidateFunction(f)

	l2, err := Relax(u, &Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	after := string(l2.Bytes[target])
	if before == after {
		t.Errorf("mutated instruction re-encoded to identical bytes % x", after)
	}
	uncached, err := Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(uncached.Bytes[target]) != after {
		t.Errorf("cached encoding % x differs from uncached % x", after, uncached.Bytes[target])
	}
}

// TestCacheContentTierSurvivesInvalidateAll: the content tier is keyed
// on instruction text, so InvalidateAll still leaves repeated idioms
// served from cache.
func TestCacheContentTierSurvivesInvalidateAll(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	c.InvalidateAll()
	h0, m0 := c.Counters()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	h1, m1 := c.Counters()
	if m1 != m0 {
		t.Errorf("content tier should have absorbed all lookups, missed %d", m1-m0)
	}
	if h1 == h0 {
		t.Error("no hits after InvalidateAll")
	}
}

// TestNilCacheSafe: every method of a nil *Cache is a no-op.
func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.InvalidateAll()
	c.InvalidateFunction(nil)
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Error("nil counters nonzero")
	}
	if c.HitRate() != 0 {
		t.Error("nil hit rate nonzero")
	}
	u := parse(t, cacheSrc)
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
}

// TestBranchesNeverCached: position-dependent instructions bypass the
// cache entirely, so branch re-encoding at new addresses stays exact.
func TestBranchesNeverCached(t *testing.T) {
	u := parse(t, cacheSrc)
	c := NewCache()
	if _, err := Relax(u, &Options{Cache: c}); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for n := range c.node {
		if op := n.Inst.Op; op == x86.OpJCC || op == x86.OpJMP {
			t.Errorf("branch %v found in cache", n.Inst)
		}
	}
	for k := range c.content {
		if k == "" {
			t.Error("empty content key")
		}
	}
}
