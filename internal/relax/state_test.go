package relax

import (
	"strings"
	"testing"

	"mao/internal/ir"
	"mao/internal/x86/encode"
)

// TestFastPathNoAllocs: re-relaxing an untouched unit through a reused
// State answers from the converged layout without allocating.
func TestFastPathNoAllocs(t *testing.T) {
	u := parse(t, paperBefore)
	st := NewState()
	if _, err := st.Relax(u, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := st.Relax(u, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("fast-path relax allocates %.1f times per call, want 0", allocs)
	}
	if m := st.Metrics(); m.FastPath == 0 || m.FullBuilds != 1 {
		t.Errorf("metrics = %+v; want one full build and fast-path hits", m)
	}
}

// TestSteadyStateProbeNoAllocs: the insert-probe → relax → remove →
// relax cycle — the alignment passes' inner loop — settles to zero
// allocations per cycle once partition, pools and cache are warm.
func TestSteadyStateProbeNoAllocs(t *testing.T) {
	u := parse(t, paperBefore+"\tret\n\tret\n")
	st := NewState()
	opts := &Options{State: st, Cache: NewCache()}
	if _, err := Relax(u, opts); err != nil {
		t.Fatal(err)
	}
	probe := ir.InstNode(encode.Nop(1))
	anchor := u.List.Back()
	cycle := func() {
		u.List.InsertBefore(probe, anchor)
		st.NodeInserted(probe)
		if _, err := Relax(u, opts); err != nil {
			t.Fatal(err)
		}
		u.List.Remove(probe)
		st.NodeRemoved(probe)
		if _, err := Relax(u, opts); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the rescan double-buffer and the encoding cache
	allocs := testing.AllocsPerRun(50, cycle)
	if allocs != 0 {
		t.Errorf("steady-state probe cycle allocates %.1f times, want 0", allocs)
	}
	m := st.Metrics()
	if m.Rescans == 0 || m.FullBuilds != 1 {
		t.Errorf("metrics = %+v; want incremental rescans after one full build", m)
	}
	if r := m.ReuseRate(); r < 0.5 {
		t.Errorf("fragment reuse rate = %.2f, want > 0.5 for single-fragment edits", r)
	}
}

// TestUnnotifiedEditDetected: an edit through raw list ops (no
// notification) must not produce a stale layout — the version counter
// forces a sound full rebuild.
func TestUnnotifiedEditDetected(t *testing.T) {
	u := parse(t, paperBefore)
	st := NewState()
	l1, err := st.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := l1.SectionEnd[".text"]

	// Bypass the notification API entirely.
	u.List.InsertBefore(ir.InstNode(encode.Nop(1)), u.FindLabel(".Lcheck"))
	l2, err := st.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's example: one nop grows the jmp, +4 bytes total.
	if got := l2.SectionEnd[".text"]; got != before+4 {
		t.Errorf("section end after unnotified nop = %#x, want %#x", got, before+4)
	}
	if m := st.Metrics(); m.FullBuilds != 2 {
		t.Errorf("full builds = %d; an unnotified edit must trigger a rebuild", m.FullBuilds)
	}
}

// TestInPlaceMutationDetected: editing an instruction in place and
// reporting it only through BumpVersion (no NodeMutated) still
// invalidates the cached layout.
func TestInPlaceMutationDetected(t *testing.T) {
	u := parse(t, "\tmovl $1, %eax\n\tret\n")
	st := NewState()
	l1, err := st.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := findInsts(u)[0]
	sizeBefore := l1.Len(n)

	n.Inst.Args[0].Imm = 0x11223344 // same encoding size, new bytes
	u.List.BumpVersion()
	l2, err := st.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len(n) != sizeBefore {
		t.Fatalf("size changed: %d -> %d", sizeBefore, l2.Len(n))
	}
	want := []byte{0xB8, 0x44, 0x33, 0x22, 0x11}
	if got := l2.Bytes(n); string(got) != string(want) {
		t.Errorf("bytes after in-place edit = %x, want %x", got, want)
	}
}

// TestNotifiedMutationRescans: the same in-place edit via the precise
// notification path rescans instead of rebuilding.
func TestNotifiedMutationRescans(t *testing.T) {
	u := parse(t, "\tmovl $1, %eax\n\tnop\n\tret\n")
	st := NewState()
	if _, err := st.Relax(u, nil); err != nil {
		t.Fatal(err)
	}
	n := findInsts(u)[0]
	n.Inst.Args[0].Imm = 7
	u.List.BumpVersion()
	st.NodeMutated(n)
	l, err := st.Relax(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{0xB8, 7, 0, 0, 0}; string(l.Bytes(n)) != string(want) {
		t.Errorf("bytes = %x, want %x", l.Bytes(n), want)
	}
	if m := st.Metrics(); m.FullBuilds != 1 || m.Rescans != 1 {
		t.Errorf("metrics = %+v; want exactly one rescan, no second build", m)
	}
}

// TestStateAcrossUnits: one State serially reused over different units
// rebuilds cleanly for each (the maod worker pattern).
func TestStateAcrossUnits(t *testing.T) {
	st := NewState()
	u1 := parse(t, "\tnop\n\tret\n")
	l1, err := st.Relax(u1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l1.SectionEnd[".text"] != 2 {
		t.Fatalf("u1 size = %d", l1.SectionEnd[".text"])
	}
	u2 := parse(t, "\tmovl $1, %eax\n\tret\n")
	l2, err := st.Relax(u2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l2.SectionEnd[".text"] != 6 {
		t.Fatalf("u2 size = %d", l2.SectionEnd[".text"])
	}
	// Back to u1: a unit switch always rebuilds (node indices are
	// per-list), never reuses stale tables.
	l3, err := st.Relax(u1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l3.SectionEnd[".text"] != 2 {
		t.Fatalf("u1 again size = %d", l3.SectionEnd[".text"])
	}
}

// TestForeignNodeReportsZero: Layout accessors mirror the old map-miss
// semantics for nodes outside the relaxed unit.
func TestForeignNodeReportsZero(t *testing.T) {
	u, l := relaxed(t, "\tnop\n\tret\n")
	stray := ir.InstNode(encode.Nop(1)) // never linked anywhere
	if l.Addr(stray) != 0 || l.Len(stray) != 0 || l.Bytes(stray) != nil {
		t.Error("unlinked node must report zero addr/len and nil bytes")
	}
	removed := findInsts(u)[0]
	u.List.Remove(removed)
	if l.Addr(removed) != 0 || l.Len(removed) != 0 || l.Bytes(removed) != nil {
		t.Error("removed node must report zero addr/len and nil bytes")
	}
}

// TestErrorLineAttribution: relaxation errors name the offending
// node's source position.
func TestErrorLineAttribution(t *testing.T) {
	u := parse(t, "\tnop\n\t.skip bogus\n")
	_, err := Relax(u, nil)
	if err == nil {
		t.Fatal("expected error for bad .skip operand")
	}
	if !strings.Contains(err.Error(), "t.s:2:") {
		t.Errorf("error %q does not carry file:line attribution", err)
	}
	if !strings.Contains(err.Error(), ".skip") {
		t.Errorf("error %q does not name the directive", err)
	}
	// Reference path attributes identically.
	if _, rerr := Reference(u, nil); rerr == nil || rerr.Error() != err.Error() {
		t.Errorf("reference error %q differs from %q", rerr, err)
	}
}

// TestBaseChangeRebuilds: changing Options.Base cannot reuse cached
// addresses.
func TestBaseChangeRebuilds(t *testing.T) {
	u := parse(t, "\tnop\n.La:\n\tret\n")
	st := NewState()
	if _, err := st.Relax(u, &Options{Base: 0}); err != nil {
		t.Fatal(err)
	}
	l, err := st.Relax(u, &Options{Base: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := l.SymAddr(".La"); a != 0x1001 {
		t.Errorf(".La at %#x after base change, want 0x1001", a)
	}
}
