package relax

import (
	"fmt"
	"math"

	"mao/internal/ir"
	"mao/internal/x86"
	"mao/internal/x86/encode"
)

// The fragment model, in brief (DESIGN.md §11 has the full argument):
//
// Each section is partitioned, in list order, into fragments — maximal
// runs of fixed-size nodes optionally ended by one size-variable tail
// (a relaxable jmp/jcc or an alignment directive). Labels are interior
// to fragments, stored as (label, offset) pairs; a label's address is
// its fragment's start plus that offset, so moving a fragment moves
// all its labels for free. Fixed-size nodes are encoded once, when
// their fragment is (re)scanned; the fixpoint then sweeps fragments —
// a few integer operations each — instead of re-encoding nodes.
//
// Correctness hinges on trajectory equivalence: alignment padding
// makes relaxation non-monotonic (growth upstream can shrink a pad
// downstream), so the fixpoint's intermediate states matter, not just
// its end point. Every State.Relax therefore resets the sticky
// force-long bits and replays the cold fixpoint exactly, round for
// round — round 1 guesses internal branches short, later rounds size
// each branch against the previous round's label addresses, and a long
// choice is sticky (grow-only, which bounds the rounds by the branch
// count). What makes the warm path fast is that each round is a
// fragment sweep, and the emit phase re-encodes only tails and
// position-dependent nodes whose address or target actually moved
// since the bytes were last produced.

const (
	tailNone uint8 = iota
	tailBranch
	tailAlign
)

// unknownAddr is the "unresolved symbol" sentinel in emit-phase change
// tracking (never a real address: sections start at Options.Base >= 0).
const unknownAddr = math.MinInt64

type labelRef struct {
	idx int   // index into State.labelNames et al.
	off int64 // offset of the label within its fragment
}

// frag is one fragment: frag.count nodes starting at frag.head, of
// which all but an optional tail have address-independent sizes.
type frag struct {
	sect  string
	head  *ir.Node
	last  *ir.Node
	count int
	fixed int64 // byte size of the fixed-size run (tail excluded)
	start int64 // section-relative address, set by each sweep

	labels []labelRef
	pd     []*ir.Node // fixed-size but position-dependent (calls, RIP-rel, sym refs)
	pdSyms []string   // symbols the pd encodings depend on
	pdAddr []int64    // pdSyms' resolved addresses at last emit

	tailKind     uint8
	tail         *ir.Node
	tailSym      string // branch target symbol
	tailOff      int64  // branch target addend (jmp sym+8)
	tailIdx      int    // interned index of tailSym, -1 if unseen at scan
	tailInternal bool   // unit.FindLabel(tailSym) != nil at scan time
	tailLong     int    // rel32 form length (5 jmp, 6 jcc)
	tailLen      int    // current size, set by each sweep
	alignBytes   int64  // alignment in bytes (tailAlign, parsed at scan)
	alignMax     int    // max padding, -1 unbounded (tailAlign)
	forceLong    bool   // sticky long bit, reset at every Relax

	// Emit-phase change tracking: bytes produced for this fragment are
	// valid for these inputs and are reused while they hold.
	emitted      bool
	emitStart    int64
	emitTailAddr int64
	emitTailTgt  int64
	emitTailLen  int

	dirty bool // content must be rescanned before the next fixpoint
	index int  // position in State.frags
}

// Metrics counts what a State did over its lifetime; cmd/maobench
// reports the fragment-reuse rate derived from them.
type Metrics struct {
	Relaxes    int64 // successful Relax calls
	FastPath   int64 // calls answered from the converged layout, no sweep
	FullBuilds int64 // full partitions (first call, or staleness detected)
	Rescans    int64 // incremental partial rescans
	Rounds     int64 // total fixpoint rounds swept
	FragsNew   int64 // fragments scanned and encoded
	FragsKept  int64 // fragments carried across a Relax untouched
}

// ReuseRate returns the fraction of fragment-relaxations served by a
// carried-over fragment (0 when nothing ran).
func (m Metrics) ReuseRate() float64 {
	if m.FragsNew+m.FragsKept == 0 {
		return 0
	}
	return float64(m.FragsKept) / float64(m.FragsNew+m.FragsKept)
}

// State is reusable relaxation state: the fragment partition of one
// unit plus node-indexed address/length/byte tables. A zero-cost way
// to use it is through Options.State; passes get one on pass.Ctx.
//
// Reuse protocol: a State tracks the unit's ir.List.Version. Callers
// that edit the unit through the pass.Ctx mutation helpers notify the
// state precisely (NodeInserted/NodeRemoved/NodeMutated), and the next
// Relax rescans only the touched fragments. Any edit the state was not
// told about — raw ir.List calls, Unit.Analyze, in-place instruction
// edits reported via ir.List.BumpVersion — leaves the notification
// count behind the version counter, and the next Relax falls back to a
// sound full rebuild. Layouts returned by Relax are views into the
// state and are invalidated by the next Relax call.
//
// A State is single-goroutine: share nothing, or give each worker its
// own (pass.Manager does).
type State struct {
	u     *ir.Unit
	base  int64
	cache *Cache

	frags  []*frag
	fragOf []*frag // node index → owning fragment
	off    []int64 // node index → offset within fragment
	lenv   []int   // node index → encoded length
	byt    [][]byte

	labelIdx   map[string]int // name → index (never removed)
	labelNames []string
	labelCur   []int64 // address this round
	labelPrev  []int64 // address previous round
	labelOwner []*frag // defining fragment; nil = not in the unit
	liveLabels int     // count of non-nil owners

	cursor map[string]int64 // per-section location counter, per sweep

	// scanCtx and emitCtx are reusable encoder contexts (a fresh
	// composite literal per encode call would escape to the heap and
	// break the zero-allocation steady state). scanCtx stays zero —
	// scan-time encodes are address-free; emitCtx is re-filled per
	// emit-phase encode, with resolver bound once to this state.
	scanCtx  encode.Ctx
	emitCtx  encode.Ctx
	resolver func(string) (int64, bool)

	layout      Layout
	valid       bool
	needRebuild bool
	anyDirty    bool
	baseVersion int64
	accounted   int64

	free    []*frag // recycled fragments
	scratch []*frag // double-buffer for the fragment list
	newly   []*frag // fragments produced by the current (re)scan

	metrics Metrics
}

// NewState returns an empty reusable relaxation state.
func NewState() *State {
	s := &State{
		labelIdx: make(map[string]int),
		cursor:   make(map[string]int64),
	}
	s.layout.SectionEnd = make(map[string]int64)
	s.layout.s = s
	s.resolver = s.symAddr
	s.emitCtx.SymAddr = s.resolver
	return s
}

// Metrics returns lifetime counters for this state.
func (s *State) Metrics() Metrics { return s.metrics }

// fragAt returns the fragment owning n, or nil when the layout does
// not cover n (unlinked, foreign or never-scanned nodes).
func (s *State) fragAt(n *ir.Node) *frag {
	if n == nil || !n.InList() {
		return nil
	}
	id := n.Index()
	if id <= 0 || id >= len(s.fragOf) {
		return nil
	}
	return s.fragOf[id]
}

// symAddr resolves a live label to its current address.
func (s *State) symAddr(sym string) (int64, bool) {
	idx, ok := s.labelIdx[sym]
	if !ok || s.labelOwner[idx] == nil {
		return 0, false
	}
	return s.labelCur[idx], true
}

// resolveOr is symAddr with the unknownAddr sentinel, for emit-phase
// change tracking.
func (s *State) resolveOr(sym string) int64 {
	a, ok := s.symAddr(sym)
	if !ok {
		return unknownAddr
	}
	return a
}

// NodeInserted notifies the state that n was just linked into the
// unit's list; the surrounding fragment is rescanned on the next
// Relax. Precise notification is an optimization, never a soundness
// requirement — unnotified edits are caught by version accounting.
func (s *State) NodeInserted(n *ir.Node) {
	if s == nil || !s.valid {
		return
	}
	s.accounted++
	p := n.Prev()
	for p != nil && s.ownerOf(p) == nil {
		p = p.Prev() // skip over other not-yet-scanned insertions
	}
	if p == nil {
		if len(s.frags) == 0 {
			s.needRebuild = true
			return
		}
		s.markDirty(s.frags[0])
		return
	}
	s.markDirty(s.ownerOf(p))
}

// NodeRemoved notifies the state that n was just unlinked.
func (s *State) NodeRemoved(n *ir.Node) {
	if s == nil || !s.valid {
		return
	}
	s.accounted++
	f := s.ownerOf(n)
	if f == nil {
		s.needRebuild = true
		return
	}
	s.markDirty(f)
}

// NodeMutated notifies the state that n's content changed in place
// (after ir.List.BumpVersion); its fragment is rescanned.
func (s *State) NodeMutated(n *ir.Node) {
	if s == nil || !s.valid {
		return
	}
	s.accounted++
	f := s.ownerOf(n)
	if f == nil {
		s.needRebuild = true
		return
	}
	s.markDirty(f)
}

// ownerOf is fragAt without the linked check (removal notifications
// arrive after the unlink).
func (s *State) ownerOf(n *ir.Node) *frag {
	id := n.Index()
	if id <= 0 || id >= len(s.fragOf) {
		return nil
	}
	return s.fragOf[id]
}

func (s *State) markDirty(f *frag) {
	f.dirty = true
	s.anyDirty = true
}

// Relax computes the layout of u, reusing as much of the previous
// call's work as the edits since then allow.
func (s *State) Relax(u *ir.Unit, opts *Options) (*Layout, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	s.cache = o.Cache

	version := u.List.Version()
	switch {
	case !s.valid || s.u != u || s.needRebuild || s.base != o.Base ||
		version != s.baseVersion+s.accounted:
		if err := s.rebuild(u, o.Base); err != nil {
			s.valid = false
			return nil, err
		}
	case !s.anyDirty:
		// Converged and untouched: the previous layout still holds.
		s.metrics.FastPath++
		s.metrics.FragsKept += int64(len(s.frags))
		return &s.layout, nil
	default:
		if err := s.rescanDirty(); err != nil {
			s.valid = false
			return nil, err
		}
	}

	// Replay the cold trajectory: reset stickiness so the warm fixpoint
	// makes exactly the decisions a from-scratch relaxation would.
	for _, f := range s.frags {
		f.forceLong = false
	}

	rounds := 0
	for {
		rounds++
		if rounds > o.MaxIterations {
			s.valid = false
			return nil, fmt.Errorf("relax: no fixpoint after %d iterations", o.MaxIterations)
		}
		if s.sweep(rounds) {
			break
		}
	}
	s.layout.Iterations = rounds
	s.metrics.Rounds += int64(rounds)

	if err := s.emit(); err != nil {
		s.valid = false
		return nil, err
	}

	clear(s.layout.SectionEnd)
	for sec, end := range s.cursor {
		s.layout.SectionEnd[sec] = end
	}

	s.valid = true
	s.baseVersion = u.List.Version()
	s.accounted = 0
	s.metrics.Relaxes++
	return &s.layout, nil
}

// rebuild partitions the whole unit from scratch (first call, new
// unit, changed base, or an edit the state was not notified about).
func (s *State) rebuild(u *ir.Unit, base int64) error {
	s.metrics.FullBuilds++
	s.u = u
	s.base = base
	s.needRebuild = false
	s.anyDirty = false

	for _, f := range s.frags {
		s.release(f)
	}
	s.frags = s.frags[:0]
	s.newly = s.newly[:0]
	for i := range s.labelOwner {
		s.labelOwner[i] = nil
	}
	s.liveLabels = 0
	s.grow(u.List.IndexBound())
	for i := range s.fragOf {
		s.fragOf[i] = nil
	}

	out, err := s.scanRange(u.List.Front(), nil, s.frags)
	if err != nil {
		return err
	}
	s.frags = out
	s.finishScan()
	return nil
}

// rescanDirty re-partitions every run of dirty fragments, reusing the
// clean ones. Region boundaries need no repair: a fragment boundary is
// semantically free anywhere except that a tail must end its fragment,
// which scanRange guarantees for any range.
func (s *State) rescanDirty() error {
	s.metrics.Rescans++
	old := s.frags
	out := s.scratch[:0]
	s.newly = s.newly[:0]
	var err error
	for i := 0; i < len(old); {
		f := old[i]
		if !f.dirty {
			out = append(out, f)
			s.metrics.FragsKept++
			i++
			continue
		}
		// Maximal dirty run [i, j).
		j := i
		for j < len(old) && old[j].dirty {
			s.disown(old[j])
			j++
		}
		// The region spans from the end of the last clean fragment (its
		// last node is intact — otherwise it would be dirty) to the head
		// of the next clean one.
		start := s.u.List.Front()
		if len(out) > 0 {
			start = out[len(out)-1].last.Next()
		}
		var end *ir.Node
		if j < len(old) {
			end = old[j].head
		}
		out, err = s.scanRange(start, end, out)
		if err != nil {
			return err
		}
		i = j
	}
	s.scratch = s.frags[:0]
	s.frags = out
	s.anyDirty = false
	s.finishScan()
	return nil
}

// finishScan resolves branch-target indices for freshly scanned
// fragments (targets may be interned later than the branch during one
// scan) and renumbers the fragment list.
func (s *State) finishScan() {
	for _, f := range s.newly {
		if f.tailKind == tailBranch {
			f.tailIdx = -1
			if idx, ok := s.labelIdx[f.tailSym]; ok {
				f.tailIdx = idx
			}
		}
	}
	s.metrics.FragsNew += int64(len(s.newly))
	s.newly = s.newly[:0]
	for i, f := range s.frags {
		f.index = i
	}
}

// scanRange partitions the node range [start, end) into fragments
// appended to dst: fixed-size nodes are encoded (through the cache)
// and accumulated, labels interned at their offsets, and a relaxable
// branch or alignment directive closes the open fragment as its tail.
func (s *State) scanRange(start, end *ir.Node, dst []*frag) ([]*frag, error) {
	var f *frag
	closeOpen := func() {
		if f == nil {
			return
		}
		if f.count == 0 {
			s.release(f)
		} else {
			dst = append(dst, f)
			s.newly = append(s.newly, f)
		}
		f = nil
	}
	for n := start; n != end; n = n.Next() {
		s.grow(n.Index() + 1)
		if f == nil || n.Section != f.sect {
			closeOpen()
			f = s.acquire()
			f.sect = n.Section
			f.head = n
		}
		id := n.Index()
		s.fragOf[id] = f
		s.off[id] = f.fixed
		s.lenv[id] = 0
		s.byt[id] = nil
		f.last = n
		f.count++

		switch n.Kind {
		case ir.NodeLabel:
			idx := s.intern(n.Label)
			if s.labelOwner[idx] == nil {
				s.liveLabels++
			}
			s.labelOwner[idx] = f
			f.labels = append(f.labels, labelRef{idx: idx, off: f.fixed})

		case ir.NodeDirective:
			if align, ok := n.IsAlignDirective(); ok {
				f.tailKind = tailAlign
				f.tail = n
				f.tailLen = 0
				// The directive's parameters are parsed once here; the
				// sweep recomputes only the address-dependent padding.
				f.alignBytes = int64(align)
				f.alignMax = n.AlignMax()
				closeOpen()
				continue
			}
			size, err := directiveSize(n, 0)
			if err != nil {
				return dst, nodeErr(s.u, n, err)
			}
			s.lenv[id] = size
			f.fixed += int64(size)

		case ir.NodeInst:
			if sym, ok := relaxTarget(n.Inst); ok {
				f.tailKind = tailBranch
				f.tail = n
				f.tailSym = sym
				f.tailOff = n.Inst.Args[0].Off
				f.tailInternal = s.u.FindLabel(sym) != nil
				f.tailLong = longLen(n.Inst)
				f.tailLen = 0
				closeOpen()
				continue
			}
			b, err := encodeCached(s.cache, n, &s.scanCtx)
			if err != nil {
				return dst, nodeErr(s.u, n, err)
			}
			s.lenv[id] = len(b)
			s.byt[id] = b
			if !encode.PositionIndependent(n.Inst) {
				// Final bytes depend on the address and/or symbols; the
				// emit phase re-encodes them (size is address-free).
				f.pd = append(f.pd, n)
				s.pdSymsOf(f, n)
			}
			f.fixed += int64(len(b))
		}
	}
	closeOpen()
	return dst, nil
}

// pdSymsOf records the symbols n's encoding depends on in f's
// dependency list (deduplicated; the lists are tiny).
func (s *State) pdSymsOf(f *frag, n *ir.Node) {
	add := func(sym string) {
		if sym == "" {
			return
		}
		for _, have := range f.pdSyms {
			if have == sym {
				return
			}
		}
		f.pdSyms = append(f.pdSyms, sym)
		f.pdAddr = append(f.pdAddr, unknownAddr)
	}
	for i := range n.Inst.Args {
		a := &n.Inst.Args[i]
		switch a.Kind {
		case x86.KindLabel:
			add(a.Sym)
		case x86.KindMem:
			add(a.Mem.Sym)
		}
	}
}

// sweep runs one fixpoint round over the fragment list: assign
// fragment starts per section, update label addresses, size tails.
// It mirrors one full walk of the reference implementation exactly —
// tail decisions read the previous round's label addresses — and
// returns whether the round was stable.
func (s *State) sweep(round int) (stable bool) {
	grew := false
	moved := false
	copy(s.labelPrev, s.labelCur)
	clear(s.cursor)
	for _, f := range s.frags {
		cur, ok := s.cursor[f.sect]
		if !ok {
			cur = s.base
		}
		f.start = cur
		for _, lr := range f.labels {
			if a := cur + lr.off; s.labelCur[lr.idx] != a {
				s.labelCur[lr.idx] = a
				moved = true
			}
		}
		cur += f.fixed
		switch f.tailKind {
		case tailAlign:
			pad := int((f.alignBytes - cur%f.alignBytes) % f.alignBytes)
			if f.alignMax >= 0 && pad > f.alignMax {
				pad = 0
			}
			if pad != f.tailLen {
				f.tailLen = pad
				s.lenv[f.tail.Index()] = pad
			}
			cur += int64(pad)
		case tailBranch:
			size := s.fit(f, cur, round, &grew)
			if size != f.tailLen {
				f.tailLen = size
				s.lenv[f.tail.Index()] = size
			}
			cur += int64(size)
		}
		s.cursor[f.sect] = cur
	}
	if round == 1 {
		// The reference's first iteration starts from an empty label
		// map, so it is stable only for label-free units.
		return !grew && s.liveLabels == 0
	}
	return !grew && !moved
}

// fit sizes one relaxable branch for this round, replicating the
// reference decision procedure: sticky long; short-guess while an
// internal target is unknown; otherwise rel8 fit against the previous
// round's label address, growing sticky-long on failure.
func (s *State) fit(f *frag, addr int64, round int, grew *bool) int {
	if f.forceLong {
		return f.tailLong
	}
	if round >= 2 && f.tailIdx >= 0 && s.labelOwner[f.tailIdx] != nil {
		target := s.labelPrev[f.tailIdx] + f.tailOff
		if rel := target - (addr + 2); rel >= -128 && rel <= 127 {
			return 2
		}
	} else if f.tailInternal {
		return 2
	}
	f.forceLong = true
	*grew = true
	return f.tailLong
}

// emit produces final bytes, re-encoding only what moved: a fragment's
// position-dependent nodes when its start or a referenced symbol
// changed since their bytes were produced, and its branch tail when
// its (address, target, size) triple changed.
func (s *State) emit() error {
	for _, f := range s.frags {
		startChanged := !f.emitted || f.start != f.emitStart
		if len(f.pd) > 0 {
			need := startChanged
			if !need {
				for i, sym := range f.pdSyms {
					if s.resolveOr(sym) != f.pdAddr[i] {
						need = true
						break
					}
				}
			}
			if need {
				for _, n := range f.pd {
					s.emitCtx.Addr = f.start + s.off[n.Index()]
					s.emitCtx.ForceLong = false
					b, err := encodeCached(s.cache, n, &s.emitCtx)
					if err != nil {
						return nodeErr(s.u, n, err)
					}
					s.byt[n.Index()] = b
				}
				for i, sym := range f.pdSyms {
					f.pdAddr[i] = s.resolveOr(sym)
				}
			}
		}
		if f.tailKind == tailBranch {
			id := f.tail.Index()
			addr := f.start + f.fixed
			tgt := s.resolveOr(f.tailSym)
			if !f.emitted || addr != f.emitTailAddr || tgt != f.emitTailTgt || f.tailLen != f.emitTailLen {
				if tgt == unknownAddr && f.tailInternal && !f.forceLong {
					// Internal target that never resolved (a stale label
					// map): the reference never encodes such a branch.
					s.byt[id] = nil
				} else {
					s.emitCtx.Addr = addr
					s.emitCtx.ForceLong = f.forceLong
					b, err := encodeCached(s.cache, f.tail, &s.emitCtx)
					if err != nil {
						return nodeErr(s.u, f.tail, err)
					}
					if len(b) != f.tailLen {
						return fmt.Errorf("relax: internal error: predicted %d-byte branch encoded to %d bytes (%v)",
							f.tailLen, len(b), f.tail.Inst)
					}
					s.byt[id] = b
				}
				f.emitTailAddr, f.emitTailTgt, f.emitTailLen = addr, tgt, f.tailLen
			}
		}
		f.emitStart = f.start
		f.emitted = true
	}
	return nil
}

// intern returns the dense index of a label name, growing the label
// tables on first sight.
func (s *State) intern(name string) int {
	if idx, ok := s.labelIdx[name]; ok {
		return idx
	}
	idx := len(s.labelNames)
	s.labelIdx[name] = idx
	s.labelNames = append(s.labelNames, name)
	s.labelCur = append(s.labelCur, 0)
	s.labelPrev = append(s.labelPrev, 0)
	s.labelOwner = append(s.labelOwner, nil)
	return idx
}

// disown releases a fragment's label ownership and recycles it.
func (s *State) disown(f *frag) {
	for _, lr := range f.labels {
		if s.labelOwner[lr.idx] == f {
			s.labelOwner[lr.idx] = nil
			s.liveLabels--
		}
	}
	s.release(f)
}

// grow extends the node-indexed tables to cover indices < bound.
func (s *State) grow(bound int) {
	for len(s.fragOf) < bound {
		s.fragOf = append(s.fragOf, nil)
		s.off = append(s.off, 0)
		s.lenv = append(s.lenv, 0)
		s.byt = append(s.byt, nil)
	}
}

func (s *State) acquire() *frag {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		return f
	}
	return new(frag)
}

func (s *State) release(f *frag) {
	f.head, f.last, f.tail = nil, nil, nil
	f.count = 0
	f.fixed = 0
	f.labels = f.labels[:0]
	f.pd = f.pd[:0]
	f.pdSyms = f.pdSyms[:0]
	f.pdAddr = f.pdAddr[:0]
	f.tailKind = tailNone
	f.tailSym = ""
	f.tailOff = 0
	f.tailIdx = -1
	f.tailInternal = false
	f.alignBytes = 0
	f.alignMax = 0
	f.forceLong = false
	f.emitted = false
	f.dirty = false
	s.free = append(s.free, f)
}
