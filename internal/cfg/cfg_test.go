package cfg

import (
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/x86"
)

func parseFn(t *testing.T, body string) *ir.Function {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := u.Function("f")
	if f == nil {
		t.Fatal("function f not found")
	}
	return f
}

func TestStraightLine(t *testing.T) {
	f := parseFn(t, "\tmovl $1, %eax\n\taddl $2, %eax\n\tret\n")
	g := Build(f)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	b := g.Blocks[0]
	if len(b.Insts) != 3 || len(b.Succs) != 0 {
		t.Errorf("entry block: %d insts, %d succs", len(b.Insts), len(b.Succs))
	}
	if f.Unresolved {
		t.Error("straight-line function flagged unresolved")
	}
}

func TestDiamond(t *testing.T) {
	f := parseFn(t, `
	testl %edi, %edi
	je .Lelse
	movl $1, %eax
	jmp .Lend
.Lelse:
	movl $2, %eax
.Lend:
	ret
`)
	g := Build(f)
	// entry, then-block (fallthrough of je), else, end.
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(entry.Succs))
	}
	end := g.BlockByLabel(".Lend")
	if end == nil || len(end.Preds) != 2 {
		t.Fatalf("end block preds wrong: %+v", end)
	}
	then := g.Blocks[1]
	if len(then.Succs) != 1 || then.Succs[0] != end {
		t.Error("then block must jump to end")
	}
}

func TestLoop(t *testing.T) {
	f := parseFn(t, `
	xorl %eax, %eax
.Ltop:
	addl $1, %eax
	cmpl $10, %eax
	jl .Ltop
	ret
`)
	g := Build(f)
	top := g.BlockByLabel(".Ltop")
	if top == nil {
		t.Fatal("loop head missing")
	}
	// The loop head must be its own successor's target: back edge.
	var hasBackEdge bool
	for _, p := range top.Preds {
		for _, s := range p.Succs {
			if s == top && p.Index >= top.Index {
				hasBackEdge = true
			}
		}
	}
	if !hasBackEdge {
		t.Error("no back edge to loop head")
	}
	if term := top.Terminator(); term == nil || term.Op != x86.OpJCC {
		t.Error("loop block terminator wrong")
	}
}

func TestCallDoesNotEndBlock(t *testing.T) {
	f := parseFn(t, "\tcall g\n\tmovl $1, %eax\n\tret\n")
	g := Build(f)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (call must not end a block)", len(g.Blocks))
	}
}

const jumpTablePattern1 = `
	cmpl $3, %edi
	ja .Ldefault
	movl %edi, %edi
	jmp *.Ltab(,%rdi,8)
.Lcase0:
	movl $10, %eax
	ret
.Lcase1:
	movl $11, %eax
	ret
.Ldefault:
	xorl %eax, %eax
	ret
`

func parseFnWithTable(t *testing.T, body string) *ir.Function {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n" +
		"\t.section .rodata\n.Ltab:\n\t.quad .Lcase0\n\t.quad .Lcase1\n\t.quad .Lcase0\n\t.quad .Ldefault\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return u.Function("f")
}

func TestJumpTableDirect(t *testing.T) {
	f := parseFnWithTable(t, jumpTablePattern1)
	g := Build(f)
	if f.Unresolved {
		t.Fatalf("direct jump-table pattern should resolve; unresolved=%v", g.Unresolved)
	}
	// The dispatch block must have the three distinct case targets.
	var dispatch *BasicBlock
	for _, b := range g.Blocks {
		if term := b.Terminator(); term != nil && term.IsIndirectBranch() {
			dispatch = b
		}
	}
	if dispatch == nil {
		t.Fatal("no dispatch block found")
	}
	if len(dispatch.Succs) != 3 {
		t.Errorf("dispatch succs = %d, want 3 (deduplicated)", len(dispatch.Succs))
	}
}

const jumpTablePattern2 = `
	cmpl $3, %edi
	ja .Ldefault
	movl %edi, %edi
	movq .Ltab(,%rdi,8), %rax
	jmp *%rax
.Lcase0:
	movl $10, %eax
	ret
.Lcase1:
	movl $11, %eax
	ret
.Ldefault:
	xorl %eax, %eax
	ret
`

func TestJumpTableViaRegister(t *testing.T) {
	f := parseFnWithTable(t, jumpTablePattern2)

	// Without the reaching-definitions pattern the branch must be
	// flagged unresolved (the paper's "246 out of 320" situation).
	g := BuildWith(f, Options{ResolveWithDataflow: false})
	if !f.Unresolved || len(g.Unresolved) != 1 {
		t.Fatal("register-indirect jump should be unresolved without dataflow pattern")
	}

	// With it, resolution succeeds (the "4 out of 320 remain" fix).
	g = BuildWith(f, Options{ResolveWithDataflow: true})
	if f.Unresolved {
		t.Fatalf("register-indirect jump should resolve with dataflow pattern; %v", g.Unresolved)
	}
	var dispatch *BasicBlock
	for _, b := range g.Blocks {
		if term := b.Terminator(); term != nil && term.IsIndirectBranch() {
			dispatch = b
		}
	}
	if len(dispatch.Succs) != 3 {
		t.Errorf("dispatch succs = %d, want 3", len(dispatch.Succs))
	}
}

func TestUnresolvableIndirect(t *testing.T) {
	f := parseFn(t, "\tjmp *%rax\n")
	g := Build(f)
	if !f.Unresolved || len(g.Unresolved) != 1 {
		t.Error("computed jump with no table must stay unresolved")
	}
}

func TestIndirectThroughCallBarrier(t *testing.T) {
	// A call between the table load and the jump kills the pattern.
	f := parseFnWithTable(t, `
	movq .Ltab(,%rdi,8), %rax
	call clobber
	jmp *%rax
.Lcase0:
	ret
.Lcase1:
	ret
.Ldefault:
	ret
`)
	Build(f)
	if !f.Unresolved {
		t.Error("pattern must not match across a call")
	}
}

func TestBlockOf(t *testing.T) {
	f := parseFn(t, "\tnop\n.Lx:\n\tnop\n\tret\n")
	g := Build(f)
	insts := f.Instructions()
	if g.BlockOf(insts[0]) == g.BlockOf(insts[1]) {
		t.Error("label must split blocks")
	}
	if g.BlockOf(insts[1]) != g.BlockOf(insts[2]) {
		t.Error("straight-line insts must share a block")
	}
}

func TestEmptyFunction(t *testing.T) {
	f := parseFn(t, "")
	g := Build(f)
	if len(g.Blocks) == 0 {
		t.Error("even an empty function needs an entry block")
	}
}

func TestTailJumpOutOfFunction(t *testing.T) {
	f := parseFn(t, "\ttestl %edi, %edi\n\tje .Lout\n\tjmp other_function\n.Lout:\n\tret\n")
	g := Build(f)
	if f.Unresolved {
		t.Error("direct tail jump must not flag the function")
	}
	// The tail-jump block simply has no intra-function successor.
	for _, b := range g.Blocks {
		if term := b.Terminator(); term != nil && term.Op == x86.OpJMP {
			if len(b.Succs) != 0 {
				t.Error("tail jump block must have no intra-function successors")
			}
		}
	}
}

func TestDOT(t *testing.T) {
	f := parseFn(t, `
	testl %edi, %edi
	je .Lelse
	movl $1, %eax
	jmp .Lend
.Lelse:
	jmp *%rax
.Lend:
	ret
`)
	g := Build(f)
	dot := g.DOT()
	for _, want := range []string{"digraph f", "b0 ->", "je .Lelse",
		"unresolved [shape=diamond"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if strings.Count(dot, "\"")%2 != 0 {
		t.Error("unbalanced quotes in DOT output")
	}
}
