// Package cfg builds per-function control-flow graphs over the MAO IR.
//
// Indirect jumps make CFG construction undecidable in general; like
// the original MAO, this package relies on the fact that it sees
// compiler-generated assembly and recognizes a small set of jump-table
// patterns. When a branch cannot be resolved the function is flagged
// (ir.Function.Unresolved) and optimization passes decide for
// themselves whether to proceed.
package cfg

import (
	"fmt"

	"mao/internal/ir"
	"mao/internal/x86"
)

// BasicBlock is a maximal straight-line instruction sequence.
type BasicBlock struct {
	Index int
	// Label is the name of the block's leading label, if any.
	Label string
	// Insts are the instruction nodes of the block in order.
	Insts []*ir.Node

	Succs []*BasicBlock
	Preds []*BasicBlock
}

// Last returns the block's final instruction node, or nil for an empty
// block.
func (b *BasicBlock) Last() *ir.Node {
	if len(b.Insts) == 0 {
		return nil
	}
	return b.Insts[len(b.Insts)-1]
}

// Terminator returns the block-ending branch instruction, or nil when
// the block falls through.
func (b *BasicBlock) Terminator() *x86.Inst {
	last := b.Last()
	if last == nil || !last.Inst.Op.IsBranch() || last.Inst.Op == x86.OpCALL {
		return nil
	}
	return last.Inst
}

func (b *BasicBlock) String() string {
	if b.Label != "" {
		return fmt.Sprintf("B%d(%s)", b.Index, b.Label)
	}
	return fmt.Sprintf("B%d", b.Index)
}

// Graph is a function's control-flow graph. Blocks[0] is the entry.
type Graph struct {
	Fn     *ir.Function
	Blocks []*BasicBlock

	// Unresolved lists indirect branches no pattern could resolve.
	// When non-empty the function was flagged and the graph's edges
	// are incomplete.
	Unresolved []*ir.Node

	// nodeBlocks records (node, block) pairs in construction order;
	// the blockOf map is materialized from it on the first BlockOf
	// query, so builds that never ask (the verifier's) skip the
	// per-node map fill.
	nodeBlocks []nodeBlock
	blockOf    map[*ir.Node]*BasicBlock
	byLabel    map[string]*BasicBlock
}

type nodeBlock struct {
	n *ir.Node
	b *BasicBlock
}

// Options controls CFG construction.
type Options struct {
	// ResolveWithDataflow enables the second jump-table pattern the
	// paper describes: following the reaching definition of an
	// indirect jump's target register back to a table load. Without
	// it, only direct "jmp *table(,r,8)" forms resolve.
	ResolveWithDataflow bool
}

// Build constructs the CFG of f with default options.
func Build(f *ir.Function) *Graph { return BuildWith(f, Options{ResolveWithDataflow: true}) }

// BuildWith constructs the CFG of f.
func BuildWith(f *ir.Function, opts Options) *Graph {
	g := &Graph{
		Fn:      f,
		byLabel: make(map[string]*BasicBlock),
	}

	entries := f.CodeEntries()
	g.nodeBlocks = make([]nodeBlock, 0, len(entries))

	// Pass 1: identify leaders. Every label starts a block; every
	// instruction after a control transfer starts a block.
	leader := make([]bool, len(entries))
	afterBranch := true // function entry
	for i, n := range entries {
		switch n.Kind {
		case ir.NodeLabel:
			leader[i] = true
			afterBranch = false
		case ir.NodeInst:
			if afterBranch {
				leader[i] = true
			}
			afterBranch = n.Inst.Op.IsBranch() && n.Inst.Op != x86.OpCALL
		}
	}

	// Pass 2: materialize blocks.
	var cur *BasicBlock
	newBlock := func(label string) *BasicBlock {
		b := &BasicBlock{Index: len(g.Blocks), Label: label}
		g.Blocks = append(g.Blocks, b)
		if label != "" {
			g.byLabel[label] = b
		}
		return b
	}
	for i, n := range entries {
		switch n.Kind {
		case ir.NodeLabel:
			if cur == nil || len(cur.Insts) > 0 || cur.Label != "" && cur.Label != n.Label {
				cur = newBlock(n.Label)
			} else if cur.Label == "" {
				cur.Label = n.Label
				g.byLabel[n.Label] = cur
			}
			g.nodeBlocks = append(g.nodeBlocks, nodeBlock{n, cur})
		case ir.NodeInst:
			if cur == nil || leader[i] && len(cur.Insts) > 0 {
				cur = newBlock("")
			}
			cur.Insts = append(cur.Insts, n)
			g.nodeBlocks = append(g.nodeBlocks, nodeBlock{n, cur})
		}
	}
	if len(g.Blocks) == 0 {
		newBlock("")
	}

	// Pass 3: edges.
	addEdge := func(from, to *BasicBlock) {
		if from == nil || to == nil {
			return
		}
		for _, s := range from.Succs {
			if s == to {
				return
			}
		}
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	for i, b := range g.Blocks {
		var next *BasicBlock
		if i+1 < len(g.Blocks) {
			next = g.Blocks[i+1]
		}
		last := b.Last()
		if last == nil {
			addEdge(b, next)
			continue
		}
		in := last.Inst
		switch {
		case in.Op == x86.OpRET:
			// no successors
		case in.Op == x86.OpJMP:
			if tgt, ok := in.BranchTarget(); ok {
				addEdge(b, g.targetBlock(tgt))
			} else if targets, ok := g.resolveIndirect(b, last, opts); ok {
				for _, t := range targets {
					addEdge(b, g.targetBlock(t))
				}
			} else {
				g.Unresolved = append(g.Unresolved, last)
			}
		case in.Op == x86.OpJCC:
			if tgt, ok := in.BranchTarget(); ok {
				addEdge(b, g.targetBlock(tgt))
			} else {
				g.Unresolved = append(g.Unresolved, last)
			}
			addEdge(b, next)
		default:
			addEdge(b, next)
		}
	}

	f.Unresolved = len(g.Unresolved) > 0
	return g
}

// targetBlock maps a branch-target label to its block. Targets outside
// the function (tail calls, cross-function jumps) return nil.
func (g *Graph) targetBlock(label string) *BasicBlock {
	return g.byLabel[label]
}

// BlockOf returns the block containing node n, or nil.
func (g *Graph) BlockOf(n *ir.Node) *BasicBlock {
	if g.blockOf == nil {
		g.blockOf = make(map[*ir.Node]*BasicBlock, len(g.nodeBlocks))
		for _, nb := range g.nodeBlocks {
			g.blockOf[nb.n] = nb.b
		}
	}
	return g.blockOf[n]
}

// BlockByLabel returns the block led by the given label, or nil.
func (g *Graph) BlockByLabel(label string) *BasicBlock { return g.byLabel[label] }

// resolveIndirect attempts to enumerate the targets of an indirect
// jump via jump-table pattern matching.
func (g *Graph) resolveIndirect(b *BasicBlock, jmp *ir.Node, opts Options) ([]string, bool) {
	in := jmp.Inst
	if len(in.Args) != 1 || !in.Args[0].Star {
		return nil, false
	}
	a := in.Args[0]

	// Pattern 1: jmp *table(,%reg,8) — the jump-table dispatch older
	// GCC emits for position-dependent code.
	if a.Kind == x86.KindMem && a.Mem.Sym != "" && a.Mem.Base != x86.RIP {
		if targets, ok := g.readJumpTable(a.Mem.Sym); ok {
			return targets, true
		}
	}

	// Pattern 2 (added after the compiler upgrade described in the
	// paper): the target register is loaded from a jump table by a
	// reaching definition, e.g.
	//
	//	movq table(,%rdi,8), %rax
	//	...
	//	jmp *%rax
	if opts.ResolveWithDataflow && a.Kind == x86.KindReg {
		if def := g.reachingDefInBlock(b, jmp, a.Reg); def != nil {
			di := def.Inst
			if (di.Op == x86.OpMOV || di.Op == x86.OpMOVSX) &&
				len(di.Args) == 2 && di.Args[0].Kind == x86.KindMem &&
				di.Args[0].Mem.Sym != "" {
				if targets, ok := g.readJumpTable(di.Args[0].Mem.Sym); ok {
					return targets, true
				}
			}
		}
	}
	return nil, false
}

// reachingDefInBlock walks backward from use within its block (and
// through straight-line single-predecessor chains) to find the unique
// instruction writing reg, giving up at barriers or joins. This is the
// block-local slice of reaching definitions that jump-table resolution
// needs; the full iterative analysis lives in mao/internal/dataflow.
func (g *Graph) reachingDefInBlock(b *BasicBlock, use *ir.Node, reg x86.Reg) *ir.Node {
	idx := -1
	for i, n := range b.Insts {
		if n == use {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	for depth := 0; depth < 8; depth++ { // bound single-pred chain walks
		for i := idx - 1; i >= 0; i-- {
			n := b.Insts[i]
			if writesReg(n.Inst, reg) {
				return n
			}
			if isBarrier(n.Inst) {
				return nil
			}
		}
		if len(b.Preds) != 1 {
			return nil
		}
		b = b.Preds[0]
		idx = len(b.Insts)
	}
	return nil
}

func writesReg(in *x86.Inst, reg x86.Reg) bool {
	if len(in.Args) == 0 {
		return false
	}
	dst := in.Args[len(in.Args)-1]
	return dst.Kind == x86.KindReg && dst.Reg.Family() == reg.Family() &&
		in.Op != x86.OpCMP && in.Op != x86.OpTEST && !in.Op.IsBranch()
}

func isBarrier(in *x86.Inst) bool {
	return in.Op == x86.OpCALL || in.Op == x86.OpRET
}

// readJumpTable reads the .quad label entries at the given table
// symbol. It returns ok=false when the symbol is unknown or holds no
// label entries.
func (g *Graph) readJumpTable(sym string) ([]string, bool) {
	start := g.Fn.Unit().FindLabel(sym)
	if start == nil {
		return nil, false
	}
	var targets []string
	for n := start.Next(); n != nil; n = n.Next() {
		if n.Kind != ir.NodeDirective {
			break
		}
		if n.Dir.Name != ".quad" && n.Dir.Name != ".long" {
			break
		}
		targets = append(targets, n.Dir.Args...)
	}
	if len(targets) == 0 {
		return nil, false
	}
	return targets, true
}
