package cfg

import (
	"fmt"
	"strings"
)

// DOT renders the control-flow graph in Graphviz format — one of the
// "various formats" the original framework could dump IR state in.
// Blocks show their label (if any) and instruction listing; dashed
// red edges mark the unresolved indirect branches.
func (g *Graph) DOT() string {
	var b strings.Builder
	name := "cfg"
	if g.Fn != nil {
		name = sanitizeDOT(g.Fn.Name)
	}
	fmt.Fprintf(&b, "digraph %s {\n", name)
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")

	for _, blk := range g.Blocks {
		var lines []string
		if blk.Label != "" {
			lines = append(lines, blk.Label+":")
		}
		for _, n := range blk.Insts {
			lines = append(lines, n.Inst.String())
		}
		if len(lines) == 0 {
			lines = append(lines, "(empty)")
		}
		fmt.Fprintf(&b, "\tb%d [label=\"%s\"];\n", blk.Index,
			escapeDOT(strings.Join(lines, "\\l"))+"\\l")
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, "\tb%d -> b%d;\n", blk.Index, s.Index)
		}
	}
	for _, n := range g.Unresolved {
		if blk := g.BlockOf(n); blk != nil {
			fmt.Fprintf(&b, "\tb%d -> unresolved [style=dashed, color=red];\n", blk.Index)
		}
	}
	if len(g.Unresolved) > 0 {
		b.WriteString("\tunresolved [shape=diamond, color=red, label=\"?\"];\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// escapeDOT escapes characters special inside DOT double-quoted
// labels, preserving the \l line terminators already present.
func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\t", " ")
	return s
}

func sanitizeDOT(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}
