// Package bench wires the full MAO pipeline into runnable experiments:
// generate (or accept) an assembly unit, optionally run an optimization
// pipeline over it, relax it, execute it, and time it on a simulated
// micro-architecture. Every table and figure reproduction in
// cmd/maobench and bench_test.go goes through this package.
package bench

import (
	"fmt"
	"math"
	"sync"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/ir"
	"mao/internal/pass"
	_ "mao/internal/passes" // register the full pass catalog
	"mao/internal/relax"
	"mao/internal/trace"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
	"mao/internal/uarch/sim"
)

// Run is the outcome of one measured configuration.
type Run struct {
	Workload string
	Pipeline string
	Model    string

	Stats    *pass.Stats   // pass statistics (transformation counts)
	Counters *sim.Counters // simulated PMU counters
	CodeSize int64         // bytes of .text after relaxation
	Executed int64         // dynamic instructions
}

// MaxInsts bounds each simulated execution.
const MaxInsts = 4_000_000

// Workers bounds the pass manager's worker pool for every pipeline
// this package runs (0 = GOMAXPROCS, 1 = sequential). cmd/maobench's
// -j flag sets it; results are identical at any value.
var Workers = 0

// EncodeCache, when non-nil, is threaded into every pipeline run so
// repeated relaxations share position-independent encodings.
var EncodeCache *relax.Cache

// Tracer, when non-nil, collects pipeline spans for every Optimize
// call (cmd/maobench's -timings flag sets it). Span collection is
// byte- and stats-transparent, so measured results are unaffected.
var Tracer *trace.Collector

// relaxStates recycles relaxation states across Optimize calls (each
// call builds a fresh Manager, so without this pool every benchmarked
// pipeline would start from an empty fragment partition). States are
// never shared: each Optimize call owns one for its duration.
var relaxStates sync.Pool

func acquireRelaxState() *relax.State {
	if v := relaxStates.Get(); v != nil {
		return v.(*relax.State)
	}
	return relax.NewState()
}

// Prepare parses a workload into a unit (no passes yet).
func Prepare(w corpus.Workload) (*ir.Unit, error) {
	return asm.ParseString(w.Name+".s", corpus.Generate(w))
}

// Optimize runs a pass pipeline over a unit in place. An empty
// pipeline is a no-op. The unit is re-analyzed afterwards.
func Optimize(u *ir.Unit, pipeline string) (*pass.Stats, error) {
	if pipeline == "" {
		return pass.NewStats(), nil
	}
	mgr, err := pass.NewManager(pipeline)
	if err != nil {
		return nil, err
	}
	mgr.Workers = Workers
	mgr.Cache = EncodeCache
	mgr.Tracer = Tracer
	st := acquireRelaxState()
	defer relaxStates.Put(st)
	mgr.RelaxState = st
	stats, err := mgr.Run(u)
	if err != nil {
		return nil, err
	}
	return stats, u.Analyze()
}

// Measure relaxes, executes and simulates a prepared unit. The layout
// gets its own relaxation state (not a pooled one): it is returned to
// the caller, and a Layout is a live view into the State that built it.
func Measure(u *ir.Unit, entry string, model *uarch.CPUModel) (*sim.Counters, *relax.Layout, int64, error) {
	layout, err := relax.Relax(u, nil)
	if err != nil {
		return nil, nil, 0, err
	}
	s := sim.New(model)
	res, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: entry,
		MaxInsts: MaxInsts,
		OnEvent:  func(ev exec.Event) { s.Feed(ev) },
	})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("bench: executing %s: %w", entry, err)
	}
	return s.Finish(), layout, res.Executed, nil
}

// RunWorkload generates, optimizes, and measures one workload under
// one pipeline and model.
func RunWorkload(w corpus.Workload, pipeline string, model *uarch.CPUModel) (*Run, error) {
	u, err := Prepare(w)
	if err != nil {
		return nil, err
	}
	stats, err := Optimize(u, pipeline)
	if err != nil {
		return nil, fmt.Errorf("bench: %s pipeline %q: %w", w.Name, pipeline, err)
	}
	counters, layout, executed, err := Measure(u, w.EntryName(), model)
	if err != nil {
		return nil, err
	}
	return &Run{
		Workload: w.Name,
		Pipeline: pipeline,
		Model:    model.Name,
		Stats:    stats,
		Counters: counters,
		CodeSize: layout.SectionEnd[".text"],
		Executed: executed,
	}, nil
}

// DeltaPct returns the speedup of opt over base in percent: positive
// means opt is faster (the paper's sign convention).
func DeltaPct(base, opt *sim.Counters) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return (float64(base.Cycles) - float64(opt.Cycles)) / float64(base.Cycles) * 100
}

// Compare measures a workload with and without a pipeline on a model.
func Compare(w corpus.Workload, pipeline string, model *uarch.CPUModel) (base, opt *Run, delta float64, err error) {
	base, err = RunWorkload(w, "", model)
	if err != nil {
		return nil, nil, 0, err
	}
	opt, err = RunWorkload(w, pipeline, model)
	if err != nil {
		return nil, nil, 0, err
	}
	return base, opt, DeltaPct(base.Counters, opt.Counters), nil
}

// Geomean computes the geometric mean of (1 + delta/100) percentage
// deltas, returned again as a percentage — the aggregation of the
// paper's Figure 7.
func Geomean(deltas []float64) float64 {
	if len(deltas) == 0 {
		return 0
	}
	prod := 1.0
	for _, d := range deltas {
		prod *= 1 + d/100
	}
	return (math.Pow(prod, 1/float64(len(deltas))) - 1) * 100
}
