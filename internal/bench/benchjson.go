package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// BenchResult is one benchmark's measurement as written to the
// BENCH_*.json files by `maobench -json` and compared against the
// checked-in baselines by ci.sh's bench smoke.
type BenchResult struct {
	Benchmark   string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	// Relaxation-specific facts (zero for pipeline results).
	ReferenceNsPerOp  float64 `json:"reference_ns_per_op,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	RelaxIterations   int     `json:"relax_iterations,omitempty"`
	FragmentReuseRate float64 `json:"fragment_reuse_rate,omitempty"`
}

// MeasureRelaxBench runs the incremental and reference repeated-
// relaxation benchmarks through testing.Benchmark — the exact bodies
// `go test -bench` runs — and folds in the workload stats.
func MeasureRelaxBench() (*BenchResult, error) {
	inc := testing.Benchmark(RelaxRepeated)
	if inc.N == 0 {
		return nil, fmt.Errorf("RelaxRepeated benchmark failed to run")
	}
	ref := testing.Benchmark(RelaxRepeatedReference)
	if ref.N == 0 {
		return nil, fmt.Errorf("RelaxRepeatedReference benchmark failed to run")
	}
	iters, reuse, err := RelaxBenchStats()
	if err != nil {
		return nil, err
	}
	r := &BenchResult{
		Benchmark:         "RelaxRepeated",
		NsPerOp:           float64(inc.NsPerOp()),
		BytesPerOp:        inc.AllocedBytesPerOp(),
		AllocsPerOp:       inc.AllocsPerOp(),
		ReferenceNsPerOp:  float64(ref.NsPerOp()),
		RelaxIterations:   iters,
		FragmentReuseRate: reuse,
	}
	if r.NsPerOp > 0 {
		r.Speedup = r.ReferenceNsPerOp / r.NsPerOp
	}
	return r, nil
}

// MeasurePipelineBench runs the repeated-pipeline benchmark through
// testing.Benchmark.
func MeasurePipelineBench() (*BenchResult, error) {
	res := testing.Benchmark(PipelineRepeated)
	if res.N == 0 {
		return nil, fmt.Errorf("PipelineRepeated benchmark failed to run")
	}
	return &BenchResult{
		Benchmark:   "PipelineRepeated",
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

// WriteBenchJSON writes one result as indented JSON.
func WriteBenchJSON(path string, r *BenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON loads a previously written result.
func ReadBenchJSON(path string) (*BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CompareBaseline fails when the current measurement regresses by more
// than factor× in ns/op against the baseline at path. Benchmarks are
// noisy in CI, so the factor is deliberately loose: it catches
// "incremental relaxation silently fell back to full rebuilds", not
// single-digit-percent drift.
func CompareBaseline(cur *BenchResult, path string, factor float64) error {
	base, err := ReadBenchJSON(path)
	if err != nil {
		return err
	}
	if base.NsPerOp > 0 && cur.NsPerOp > factor*base.NsPerOp {
		return fmt.Errorf("%s: %.0f ns/op is a >%.1fx regression vs baseline %.0f ns/op (%s)",
			cur.Benchmark, cur.NsPerOp, factor, base.NsPerOp, path)
	}
	return nil
}
