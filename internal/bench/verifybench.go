package bench

import (
	"fmt"
	"testing"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/pass"
	"mao/internal/verify"
)

// verifyBenchPipeline is a representative transforming pipeline mix
// for the overhead measurement: peepholes, folding and scheduling all
// change the unit, so each invocation really is validated.
const verifyBenchPipeline = "REDTEST:REDMOV:REDZEXT:ADDADD:SCHED"

func verifyBenchSource() string {
	return corpus.Generate(corpus.Spec2000Int(0.05)[0])
}

// runVerifyBench is the shared benchmark body: parse and optimize the
// corpus unit once per iteration, with or without the translation
// validator hooked into the manager.
func runVerifyBench(b *testing.B, src string, validated bool) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := asm.ParseString("bench.s", src)
		if err != nil {
			b.Fatal(err)
		}
		mgr, err := pass.NewManager(verifyBenchPipeline)
		if err != nil {
			b.Fatal(err)
		}
		mgr.Workers = 1
		if validated {
			vcert := &verify.Certifier{}
			mgr.Hook = vcert
			if _, err := mgr.Run(u); err != nil {
				b.Fatal(err)
			}
			if len(vcert.Violations) != 0 {
				b.Fatalf("benchmark pipeline refuted: %v", vcert.Violations[0])
			}
			continue
		}
		if _, err := mgr.Run(u); err != nil {
			b.Fatal(err)
		}
	}
}

// VerifyOverhead is the -verify measurement of cmd/maobench: the cost
// of translation-validating every pass invocation, as a ratio over the
// plain pipeline.
type VerifyOverhead struct {
	Pipeline      string  `json:"pipeline"`
	PlainNsPerOp  float64 `json:"plain_ns_per_op"`
	VerifyNsPerOp float64 `json:"verify_ns_per_op"`
	Overhead      float64 `json:"overhead"` // VerifyNsPerOp / PlainNsPerOp
}

// MeasureVerifyOverhead times the pipeline with and without the
// verify.Certifier hook over a corpus unit.
func MeasureVerifyOverhead() (*VerifyOverhead, error) {
	src := verifyBenchSource()
	plain := testing.Benchmark(func(b *testing.B) { runVerifyBench(b, src, false) })
	if plain.N == 0 {
		return nil, fmt.Errorf("plain pipeline benchmark failed to run")
	}
	validated := testing.Benchmark(func(b *testing.B) { runVerifyBench(b, src, true) })
	if validated.N == 0 {
		return nil, fmt.Errorf("verified pipeline benchmark failed to run")
	}
	r := &VerifyOverhead{
		Pipeline:      verifyBenchPipeline,
		PlainNsPerOp:  float64(plain.NsPerOp()),
		VerifyNsPerOp: float64(validated.NsPerOp()),
	}
	if r.PlainNsPerOp > 0 {
		r.Overhead = r.VerifyNsPerOp / r.PlainNsPerOp
	}
	return r, nil
}
