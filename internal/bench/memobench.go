package bench

import (
	"fmt"
	"testing"

	"mao/internal/asm"
	"mao/internal/check"
	"mao/internal/corpus"
	"mao/internal/memo"
	"mao/internal/pass"
	"mao/internal/relax"
	"mao/internal/verify"
)

// This file holds the pipeline-memo benchmark and verification bodies:
// BENCH_memo.json measures the warm repeat-pipeline against the
// unmemoized PipelineRepeated reference, and `maobench -memo` replays
// the synthetic corpus through a shared memo asserting hit rate and
// byte-identity for ci.sh.

// benchMemo builds a memo salted exactly like mao.NewMemo, so the
// measured keys pay the same derivation cost production pays.
func benchMemo() *memo.Memo {
	return memo.New(0, pass.CatalogVersion(), check.Version, verify.Version)
}

// MemoWarm measures the warm memoized repeat-pipeline: the identical
// workload, spec and manager configuration as PipelineRepeated, plus a
// pipeline memo. Two warm-up runs reach steady state — the first
// optimizes to the fixpoint and fills the memo under the pre-run
// content, the second fills identity entries for the optimized content
// and arms the repeat fast path — after which every timed run is
// answered from the memo without touching the unit.
func MemoWarm(b *testing.B) {
	u, err := relaxBenchUnit()
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := pass.NewManager("LOOP16:LSD:BRALIGN")
	if err != nil {
		b.Fatal(err)
	}
	mgr.Workers = 1
	mgr.Cache = relax.NewCache()
	mgr.RelaxState = relax.NewState()
	mgr.Memo = benchMemo()
	for i := 0; i < 2; i++ {
		if _, err := mgr.Run(u); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Run(u); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	h, m := mgr.Memo.Counters()
	if h+m > 0 {
		b.ReportMetric(float64(h)/float64(h+m), "memo-hit-rate")
	}
}

// MeasureMemoBench runs the warm-memo benchmark through
// testing.Benchmark and records the unmemoized repeat-pipeline result
// as the reference, yielding the memoization speedup.
func MeasureMemoBench(pipeline *BenchResult) (*BenchResult, error) {
	res := testing.Benchmark(MemoWarm)
	if res.N == 0 {
		return nil, fmt.Errorf("MemoWarm benchmark failed to run")
	}
	r := &BenchResult{
		Benchmark:   "MemoWarm",
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if pipeline != nil && r.NsPerOp > 0 {
		r.ReferenceNsPerOp = pipeline.NsPerOp
		r.Speedup = r.ReferenceNsPerOp / r.NsPerOp
	}
	return r, nil
}

// MemoVerifyResult summarizes one MemoCorpusVerify run.
type MemoVerifyResult struct {
	Spec      string  // pipeline verified
	Sources   int     // corpus units replayed per round
	Functions int     // functions per round
	Rounds    int     // repeat rounds (round 1 fills, the rest hit)
	HitRate   float64 // memo hits / (hits + misses) across all rounds
}

// MemoCorpusVerify replays the synthetic corpus repeatedly through one
// shared memo: for each spec it runs every workload cold (no memo) to
// pin the expected bytes, then rounds× from a fresh parse through the
// memo, failing on the first output that is not byte-identical to the
// cold run. The returned results carry the observed hit rates; policy
// (ci.sh demands > 0.9) lives in the caller.
func MemoCorpusVerify(scale float64, rounds int) ([]MemoVerifyResult, error) {
	if rounds < 2 {
		rounds = 2
	}
	specs := []string{"REDTEST:REDMOV:DCE:CONSTFOLD", "LOOP16:LSD:BRALIGN"}
	type source struct {
		name, src, want string
		functions       int
	}
	var out []MemoVerifyResult
	for _, spec := range specs {
		var sources []source
		for _, w := range corpus.Spec2000Int(scale) {
			u, err := asm.ParseString(w.Name+".s", corpus.Generate(w))
			if err != nil {
				return nil, err
			}
			mgr, err := pass.NewManager(spec)
			if err != nil {
				return nil, err
			}
			if _, err := mgr.Run(u); err != nil {
				return nil, fmt.Errorf("%s %s: cold run: %w", spec, w.Name, err)
			}
			sources = append(sources, source{
				name:      w.Name,
				src:       corpus.Generate(w),
				want:      u.String(),
				functions: len(u.Functions()),
			})
		}
		m := benchMemo()
		res := MemoVerifyResult{Spec: spec, Sources: len(sources), Rounds: rounds}
		for _, s := range sources {
			res.Functions += s.functions
		}
		for round := 1; round <= rounds; round++ {
			for _, s := range sources {
				u, err := asm.ParseString(s.name+".s", s.src)
				if err != nil {
					return nil, err
				}
				mgr, err := pass.NewManager(spec)
				if err != nil {
					return nil, err
				}
				mgr.Memo = m
				if _, err := mgr.Run(u); err != nil {
					return nil, fmt.Errorf("%s %s round %d: %w", spec, s.name, round, err)
				}
				if got := u.String(); got != s.want {
					return nil, fmt.Errorf("%s %s round %d: memoized output differs from cold run",
						spec, s.name, round)
				}
			}
		}
		h, miss := m.Counters()
		if h+miss > 0 {
			res.HitRate = float64(h) / float64(h+miss)
		}
		out = append(out, res)
	}
	return out, nil
}
