package bench

import (
	"fmt"
	"strings"
	"testing"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/relax"
	"mao/internal/uarch"
	"mao/internal/uarch/exec"
	"mao/internal/uarch/sim"
)

// execState runs a workload unit and returns its final architectural
// register state plus the number of executed store events — the
// observable semantics every optimization pass must preserve. (Memory
// itself is not compared: stale stack frames hold return addresses and
// data tables hold label addresses, both of which legitimately shift
// when code size changes.)
func execState(t *testing.T, w corpus.Workload, pipeline string) ([16]uint64, [16]uint64, int64) {
	t.Helper()
	u, err := Prepare(w)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if _, err := Optimize(u, pipeline); err != nil {
		t.Fatalf("%s pipeline %q: %v", w.Name, pipeline, err)
	}
	layout, err := relax.Relax(u, nil)
	if err != nil {
		t.Fatalf("%s: relax: %v", w.Name, err)
	}
	var stores int64
	res, err := exec.Run(&exec.Config{
		Unit: u, Layout: layout, Entry: w.EntryName(),
		MaxInsts: MaxInsts,
		OnEvent: func(ev exec.Event) {
			if ev.HasStore {
				stores++
			}
		},
	})
	if err != nil {
		t.Fatalf("%s after %q: exec: %v", w.Name, pipeline, err)
	}
	return res.State.GPR, res.State.XMM, stores
}

// TestSemanticPreservation is the repository's strongest invariant:
// every transforming pass, applied to every synthetic workload, must
// leave the program's observable results (final registers, store
// count) unchanged. This is the dynamic analog of the paper's
// disassemble-and-compare verification, extended from "no
// transformation" to "every transformation".
func TestSemanticPreservation(t *testing.T) {
	passes := []string{
		"REDZEXT", "REDTEST", "REDMOV", "ADDADD",
		"LOOP16", "LSD", "BRALIGN",
		"NOPIN=seed[9],density[10],maxlen[2]", "NOPKILL",
		"INSTRUMENT", "SCHED", "SCHED=costfn[ports]",
		"DCE", "CONSTFOLD",
		// The paper's Figure 7 combination.
		"LOOP16:NOPIN=seed[3],density[2]:REDMOV:REDTEST:SCHED",
	}
	workloads := append(corpus.Spec2000Int(0.02), corpus.Spec2006Subset(0.02)...)
	// A sampled cross product keeps the test fast while every pass
	// and every workload appears several times.
	for wi, w := range workloads {
		w := w
		for pi, p := range passes {
			if (wi+pi)%4 != 0 && !testing.Verbose() {
				continue
			}
			name := fmt.Sprintf("%s/%s", w.Name, strings.SplitN(p, "=", 2)[0])
			t.Run(name, func(t *testing.T) {
				gprA, xmmA, storesA := execState(t, w, "")
				gprB, xmmB, storesB := execState(t, w, p)
				if gprA != gprB {
					t.Errorf("pass %q changed final GPR state\n base: %x\n opt:  %x", p, gprA, gprB)
				}
				if xmmA != xmmB {
					t.Errorf("pass %q changed final XMM state", p)
				}
				if storesA != storesB {
					t.Errorf("pass %q changed store count: %d -> %d", p, storesA, storesB)
				}
			})
		}
	}
}

// TestRoundTripVerification is the paper's Section III-A check: with
// no transformations, parse -> emit -> parse -> emit must be a fixed
// point, and the relaxed binary encodings of both emissions must be
// byte-identical (our analog of assembling both and comparing
// disassembly).
func TestRoundTripVerification(t *testing.T) {
	for _, w := range append(corpus.Spec2000Int(0.02), corpus.CoreLibrary(0.01)) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			u1, err := Prepare(w)
			if err != nil {
				t.Fatal(err)
			}
			s1 := u1.String()
			// Parse the emission and emit again.
			u3, err := asm.ParseString(w.Name+".s", s1)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			s2 := u3.String()
			if s1 != s2 {
				t.Fatal("emission is not a parse/print fixed point")
			}
			l1, err := relax.Relax(u1, nil)
			if err != nil {
				t.Fatal(err)
			}
			l3, err := relax.Relax(u3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if l1.SectionEnd[".text"] != l3.SectionEnd[".text"] {
				t.Fatalf("relaxed sizes differ: %d vs %d",
					l1.SectionEnd[".text"], l3.SectionEnd[".text"])
			}
			img1 := l1.Image(u1, ".text")
			img3 := l3.Image(u3, ".text")
			if string(img1) != string(img3) {
				t.Fatal("relaxed byte images differ")
			}
		})
	}
}

// TestCorpusDeterminism: the same workload definition must generate
// byte-identical assembly (the experiments depend on it).
func TestCorpusDeterminism(t *testing.T) {
	w := corpus.Spec2000Int(0.05)[3]
	if corpus.Generate(w) != corpus.Generate(w) {
		t.Fatal("corpus generation is not deterministic")
	}
}

// TestCorpusStaticCountsScale: CoreLibrary at scale 1 must carry the
// paper's exact planted pattern counts (spot-checked via pass stats at
// a smaller scale for speed; the full-scale check runs in maobench).
func TestCorpusStaticCounts(t *testing.T) {
	u, err := Prepare(corpus.CoreLibrary(0.02))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Optimize(u, "REDZEXT:REDTEST:REDMOV")
	if err != nil {
		t.Fatal(err)
	}
	// At scale 0.02: 20 zexts, 385 redundant tests, 267 load pairs.
	if got := stats.Get("REDZEXT", "removed"); got < 15 || got > 25 {
		t.Errorf("REDZEXT removed %d, want ~20", got)
	}
	if got := stats.Get("REDTEST", "removed"); got < 350 || got > 420 {
		t.Errorf("REDTEST removed %d, want ~385", got)
	}
	rm := stats.Get("REDMOV", "rewritten") + stats.Get("REDMOV", "removed")
	if rm < 240 || rm > 300 {
		t.Errorf("REDMOV handled %d, want ~267", rm)
	}
}

// TestAllWorkloadsExecute: every named workload must parse, relax and
// run to completion on both machine models.
func TestAllWorkloadsExecute(t *testing.T) {
	for _, w := range append(corpus.Spec2000Int(0.02), corpus.Spec2006Subset(0.02)...) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, m := range []*uarch.CPUModel{uarch.Core2(), uarch.Opteron()} {
				r, err := RunWorkload(w, "", m)
				if err != nil {
					t.Fatalf("%s: %v", m.Name, err)
				}
				if r.Counters.Cycles == 0 || r.Executed == 0 {
					t.Errorf("%s: empty run", m.Name)
				}
			}
		})
	}
}

func TestDeltaAndGeomean(t *testing.T) {
	a := &sim.Counters{Cycles: 100}
	b := &sim.Counters{Cycles: 95}
	if d := DeltaPct(a, b); d < 4.99 || d > 5.01 {
		t.Errorf("DeltaPct(100, 95) = %f, want 5", d)
	}
	if d := Geomean([]float64{10, -10}); d > 0.01 || d < -1.5 {
		t.Errorf("Geomean(10,-10) = %f", d)
	}
	if d := Geomean(nil); d != 0 {
		t.Errorf("Geomean(nil) = %f", d)
	}
}
