package bench

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/ir"
	"mao/internal/pass"
	"mao/internal/relax"
	"mao/internal/x86/encode"
)

// This file holds the repeated-relaxation benchmark bodies as plain
// functions so both `go test -bench` (thin wrappers in the relax test
// suite) and cmd/maobench -json (via testing.Benchmark) run the exact
// same workloads.

// relaxBenchUnit builds the unit the relaxation benchmarks edit: one
// mid-size generated workload, full of branches, labels and alignment
// directives.
func relaxBenchUnit() (*ir.Unit, error) {
	w := corpus.Spec2000Int(0.3)[0]
	return asm.ParseString(w.Name+".s", corpus.Generate(w))
}

// RelaxRepeated measures the steady-state edit→relax cycle on the
// fragment engine: insert a probe NOP near the end of the unit, relax,
// remove it, relax again, with one reused State and cache throughout.
// Steady state performs zero allocations (asserted by the relax test
// suite); almost every fragment is reused between relaxations.
func RelaxRepeated(b *testing.B) {
	u, err := relaxBenchUnit()
	if err != nil {
		b.Fatal(err)
	}
	st := relax.NewState()
	opts := &relax.Options{Cache: relax.NewCache(), State: st}
	probe := ir.InstNode(encode.Nop(1))
	anchor := u.List.Back()

	cycle := func() error {
		u.List.InsertBefore(probe, anchor)
		st.NodeInserted(probe)
		if _, err := relax.Relax(u, opts); err != nil {
			return err
		}
		u.List.Remove(probe)
		st.NodeRemoved(probe)
		_, err := relax.Relax(u, opts)
		return err
	}
	if err := cycle(); err != nil { // warm up the partition and pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := st.Metrics()
	b.ReportMetric(m.ReuseRate(), "frag-reuse")
}

// RelaxRepeatedReference is the identical edit→relax cycle on the
// pre-fragment full-walk algorithm — the baseline the fragment engine
// is measured against.
func RelaxRepeatedReference(b *testing.B) {
	u, err := relaxBenchUnit()
	if err != nil {
		b.Fatal(err)
	}
	opts := &relax.Options{Cache: relax.NewCache()}
	probe := ir.InstNode(encode.Nop(1))
	anchor := u.List.Back()

	cycle := func() error {
		u.List.InsertBefore(probe, anchor)
		if _, err := relax.Reference(u, opts); err != nil {
			return err
		}
		u.List.Remove(probe)
		_, err := relax.Reference(u, opts)
		return err
	}
	if err := cycle(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cycle(); err != nil {
			b.Fatal(err)
		}
	}
}

// PipelineRepeated measures repeated alignment pipelines over one unit
// through a single manager: after the first run reaches a fixpoint,
// every further run is pure relaxation traffic, which the per-run
// relaxation state serves incrementally.
func PipelineRepeated(b *testing.B) {
	u, err := relaxBenchUnit()
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := pass.NewManager("LOOP16:LSD:BRALIGN")
	if err != nil {
		b.Fatal(err)
	}
	mgr.Workers = 1
	mgr.Cache = relax.NewCache()
	mgr.RelaxState = relax.NewState()
	if _, err := mgr.Run(u); err != nil { // reach the pipeline fixpoint
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Run(u); err != nil {
			b.Fatal(err)
		}
	}
}

// RelaxBenchStats reports workload facts the benchmark JSON records
// alongside the timings: fixpoint iteration count of the bench unit and
// the fragment-reuse rate of a probe cycle.
func RelaxBenchStats() (iterations int, reuseRate float64, err error) {
	u, err := relaxBenchUnit()
	if err != nil {
		return 0, 0, err
	}
	st := relax.NewState()
	opts := &relax.Options{Cache: relax.NewCache(), State: st}
	l, err := relax.Relax(u, opts)
	if err != nil {
		return 0, 0, err
	}
	iterations = l.Iterations
	probe := ir.InstNode(encode.Nop(1))
	anchor := u.List.Back()
	for i := 0; i < 8; i++ {
		u.List.InsertBefore(probe, anchor)
		st.NodeInserted(probe)
		if _, err := relax.Relax(u, opts); err != nil {
			return 0, 0, err
		}
		u.List.Remove(probe)
		st.NodeRemoved(probe)
		if _, err := relax.Relax(u, opts); err != nil {
			return 0, 0, err
		}
	}
	return iterations, st.Metrics().ReuseRate(), nil
}
