package scope

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const promPage = `# HELP maod_requests_total Requests by endpoint and status.
# TYPE maod_requests_total counter
maod_requests_total{path="/v1/optimize",status="200"} 42
maod_requests_total{path="/v1/optimize",status="429"} 3
maod_queue_depth 7
maod_latency_seconds_bucket{le="0.001"} 10
maod_latency_seconds_bucket{le="0.01"} 90
maod_latency_seconds_bucket{le="0.1"} 100
maod_latency_seconds_bucket{le="+Inf"} 100
maod_latency_seconds_sum 1.5
maod_latency_seconds_count 100
weird_label{msg="a \"quoted\" value, with commas"} 1
`

func TestParseProm(t *testing.T) {
	m, err := ParseProm(strings.NewReader(promPage))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("maod_queue_depth"); !ok || v != 7 {
		t.Fatalf("queue_depth = %v ok=%v", v, ok)
	}
	if v, ok := m.Labeled("maod_requests_total", map[string]string{"status": "429"}); !ok || v != 3 {
		t.Fatalf("429 total = %v ok=%v", v, ok)
	}
	if _, ok := m.Labeled("maod_requests_total", map[string]string{"status": "500"}); ok {
		t.Fatal("found nonexistent label set")
	}
	if v, ok := m.Labeled("weird_label", nil); !ok || v != 1 {
		t.Fatalf("weird_label = %v ok=%v", v, ok)
	}
	if m["weird_label"][0].Labels["msg"] != `a "quoted" value, with commas` {
		t.Fatalf("escaped label = %q", m["weird_label"][0].Labels["msg"])
	}

	// Quantiles: p50 ranks at 50 of 100 → inside the (0.001, 0.01]
	// bucket, interpolated.
	p50, ok := m.Quantile("maod_latency_seconds", nil, 0.5)
	if !ok || p50 <= 0.001 || p50 > 0.01 {
		t.Fatalf("p50 = %v ok=%v", p50, ok)
	}
	want := 0.001 + (0.01-0.001)*40/80
	if math.Abs(p50-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", p50, want)
	}
	p99, ok := m.Quantile("maod_latency_seconds", nil, 0.99)
	if !ok || p99 <= 0.01 || p99 > 0.1 {
		t.Fatalf("p99 = %v ok=%v", p99, ok)
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	bad := []string{
		"metric_name\n",       // no value
		"metric 1 2 3\n",      // too many fields
		`m{le="0.1} 1` + "\n", // unterminated quote
		"m{le=0.1} 1\n",       // unquoted label
		"m notanumber\n",      // bad value
		`{le="0.1"} 1` + "\n", // missing name
	}
	for _, page := range bad {
		if _, err := ParseProm(strings.NewReader(page)); err == nil {
			t.Errorf("ParseProm(%q) accepted", page)
		}
	}
}

func TestWriteRuntimeMetricsParses(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeMetrics(&buf, "maod")
	m, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("runtime exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, ok := m.Value("maod_go_goroutines"); !ok || v < 1 {
		t.Fatalf("goroutines = %v ok=%v", v, ok)
	}
	if v, ok := m.Value("maod_go_heap_inuse_bytes"); !ok || v <= 0 {
		t.Fatalf("heap_inuse = %v ok=%v", v, ok)
	}
	// The pause histogram must be present and cumulative.
	buckets := m["maod_go_gc_pause_seconds_bucket"]
	if len(buckets) != len(gcPauseBounds)+1 {
		t.Fatalf("pause buckets = %d, want %d", len(buckets), len(gcPauseBounds)+1)
	}
	prev := -1.0
	for _, b := range buckets {
		if b.Value < prev {
			t.Fatalf("pause histogram not cumulative: %+v", buckets)
		}
		prev = b.Value
	}
}
