// Package scope is MAOSCOPE, the fleet observability plane: it turns
// the single-process MAOTRACE span streams of PR 4 into end-to-end
// distributed traces across the MAOFLEET topology (maoload →
// maorouter → maod shard), and gives every process a flight recorder
// for postmortem visibility without a metrics scrape.
//
// Three pieces live here:
//
//   - Trace context (Context, ParseHeader): a W3C-traceparent-style
//     X-Mao-Trace header carrying a 128-bit trace ID and the 64-bit
//     span ID of the caller's span. maoload originates one per
//     request, maorouter interposes a hop span and forwards the
//     context, and the shard daemon parents its whole MAOTRACE span
//     tree (queue → batch → pipeline → invocation → function →
//     verify) under it. Span IDs are derived deterministically from
//     (trace ID, parent, salt, index), so the stitched tree is
//     byte-deterministic at any worker count — only recorded wall
//     times vary, exactly like the rest of MAOTRACE.
//
//   - Span and Project: the cross-process export schema. Project maps
//     a trace.Collector's index-parented spans onto globally
//     addressable spans (trace_id / span_id / parent_id), and
//     ChromeEvents renders the same tree in Chrome trace-event form
//     for chrome://tracing and Perfetto.
//
//   - The flight recorder (flight.go): a bounded lock-free ring of
//     the last N completed request records plus a reservoir of the
//     slowest and all errored requests, served from the opt-in debug
//     listener as /debug/scope/{recent,slowest,errors}.
package scope

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"mao/internal/trace"
)

// Trace modes of the service's ?trace= / options.trace request knob.
const (
	// TraceSpans returns the stitched span tree as a "trace" array.
	TraceSpans = "spans"
	// TraceChrome additionally renders the tree as Chrome trace events
	// in "trace_chrome".
	TraceChrome = "chrome"
)

// TraceHeader is the cross-process trace-context header:
//
//	X-Mao-Trace: <32 hex trace ID>-<16 hex parent span ID>
//
// The trace ID names the whole distributed request; the span ID names
// the sender's span, which the receiver's root spans parent under.
// Malformed or oversized values are ignored (the receiver originates
// a fresh context), mirroring how X-Mao-Request-ID is length-capped:
// attacker-controlled bytes are never reflected into logs or spans.
const TraceHeader = "X-Mao-Trace"

// Context is one hop's view of a distributed trace.
type Context struct {
	// TraceID is 32 lowercase hex digits (128 bits), shared by every
	// span of the distributed request.
	TraceID string
	// ParentSpanID is the 16-hex-digit span the receiver parents
	// under; empty when this process originated the trace.
	ParentSpanID string
}

// Valid reports whether c carries a usable trace ID.
func (c Context) Valid() bool { return isHex(c.TraceID, 32) }

// Header renders c in X-Mao-Trace form. An origin context (no parent
// span) uses the all-zero span ID, which ParseHeader maps back to "".
func (c Context) Header() string {
	p := c.ParentSpanID
	if p == "" {
		p = "0000000000000000"
	}
	return c.TraceID + "-" + p
}

// Child returns c with the parent span replaced — what a process
// forwards downstream after interposing its own span.
func (c Context) Child(spanID string) Context {
	return Context{TraceID: c.TraceID, ParentSpanID: spanID}
}

// ParseHeader parses an X-Mao-Trace value. ok is false for anything
// but the exact <32 hex>-<16 hex> shape (the caller then originates a
// fresh context instead of trusting the input).
func ParseHeader(v string) (Context, bool) {
	if len(v) != 49 || v[32] != '-' {
		return Context{}, false
	}
	tid, sid := v[:32], v[33:]
	if !isHex(tid, 32) || !isHex(sid, 16) {
		return Context{}, false
	}
	if sid == "0000000000000000" {
		sid = ""
	}
	return Context{TraceID: tid, ParentSpanID: sid}, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// NewContext originates a trace: a fresh random 128-bit trace ID and
// a fresh origin span ID (the caller's own span).
func NewContext() Context {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand.Read failing means larger problems; a fixed ID keeps
		// the request serviceable.
		return Context{TraceID: "00000000000000000000deadbeef0000", ParentSpanID: "deadbeef00000000"}
	}
	return Context{
		TraceID:      hex.EncodeToString(b[:16]),
		ParentSpanID: hex.EncodeToString(b[16:]),
	}
}

// SpanID deterministically derives the ID of the index-th span of a
// (trace, parent, salt) scope: the first 8 bytes of SHA-256 over the
// length-delimited inputs. Determinism is what makes a stitched trace
// byte-identical at any worker count — the span stream's order is
// deterministic (the pass manager merges in invocation/function
// order), so index-derived IDs are too. The salt separates span trees
// that share a trace and parent (each unit of an archive request, for
// example, salts with its content address).
func SpanID(traceID, parentID, salt string, index int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s:%d:%s:%d:%s:%d", len(traceID), traceID, len(parentID), parentID, len(salt), salt, index)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// Span is one node of a stitched cross-process trace — the schema of
// the ?trace=1 payload, pinned by testdata/scope_trace.schema.json.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// ParentID is the enclosing span, possibly in another process;
	// empty only for the origin root of the whole trace.
	ParentID string `json:"parent_id,omitempty"`
	// Process names the process class that recorded the span: "maod",
	// "maorouter", "maoload".
	Process string `json:"process"`
	Kind    string `json:"kind"`
	// Name is the human handle: the pass ref ("REDTEST[0]") for
	// invocation/function/verify spans, the shard URL for hop spans.
	Name     string `json:"name,omitempty"`
	Function string `json:"function,omitempty"`
	Worker   int    `json:"worker,omitempty"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
	// NodesBefore/NodesAfter carry the IR size around pipeline-layer
	// spans (0 for queue/batch/hop spans).
	NodesBefore int  `json:"nodes_before,omitempty"`
	NodesAfter  int  `json:"nodes_after,omitempty"`
	Changed     bool `json:"changed,omitempty"`
	// Stats is the span's counter delta (invocation spans) or
	// span-specific accounting (batch size under "jobs").
	Stats map[string]int `json:"stats,omitempty"`
	// Attrs carries hop attribution: shard choice, probe state,
	// attempt number, failover reason.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Project stitches a collector's span stream into the cross-process
// schema: every span gets a deterministic SpanID, index parents become
// span-ID parents, and roots (Parent == -1) parent under the inbound
// context. The collector's span order is preserved.
func Project(spans []trace.Span, tc Context, process, salt string) []Span {
	out := make([]Span, len(spans))
	ids := make([]string, len(spans))
	for i := range spans {
		ids[i] = SpanID(tc.TraceID, tc.ParentSpanID, salt, i)
	}
	for i, s := range spans {
		parent := tc.ParentSpanID
		if s.Parent >= 0 && s.Parent < len(spans) {
			parent = ids[s.Parent]
		}
		name := s.Ref.String()
		out[i] = Span{
			TraceID:     tc.TraceID,
			SpanID:      ids[i],
			ParentID:    parent,
			Process:     process,
			Kind:        string(s.Kind),
			Name:        name,
			Function:    s.Function,
			Worker:      s.Worker,
			StartNS:     int64(s.Start),
			DurNS:       int64(s.Dur),
			NodesBefore: s.NodesBefore,
			NodesAfter:  s.NodesAfter,
			Changed:     s.Changed,
			Stats:       s.Stats,
		}
	}
	return out
}

// ChromeEvent is one complete ("ph":"X") Chrome trace event — the
// ?trace=chrome payload element, loadable in chrome://tracing and
// Perfetto. Pinned by testdata/scope_chrome.schema.json.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// chromePIDs fixes one pid per process class so stitched traces render
// as separate process tracks.
var chromePIDs = map[string]int{"maoload": 1, "maorouter": 2, "maod": 3}

// ChromeEvents renders stitched spans as Chrome trace events. Spans of
// different processes land on different pid tracks; function spans
// spread over tid worker+1 like trace.WriteChromeTrace.
func ChromeEvents(spans []Span) []ChromeEvent {
	events := make([]ChromeEvent, 0, len(spans))
	for _, s := range spans {
		name := s.Name
		if name == "" {
			name = s.Kind
		}
		if s.Function != "" {
			name += " " + s.Function
		}
		tid := 0
		if s.Kind == string(trace.KindFunction) {
			tid = s.Worker + 1
		}
		pid := chromePIDs[s.Process]
		if pid == 0 {
			pid = 9
		}
		args := map[string]any{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		if len(s.Stats) > 0 {
			args["stats"] = s.Stats
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		events = append(events, ChromeEvent{
			Name: name,
			Cat:  s.Kind,
			Ph:   "X",
			TS:   float64(s.StartNS) / float64(time.Microsecond),
			Dur:  float64(s.DurNS) / float64(time.Microsecond),
			PID:  pid,
			TID:  tid,
			Args: args,
		})
	}
	return events
}
