package scope

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"mao/internal/trace"
)

func TestParseHeaderRoundTrip(t *testing.T) {
	tc := NewContext()
	if !tc.Valid() {
		t.Fatalf("NewContext invalid: %+v", tc)
	}
	got, ok := ParseHeader(tc.Header())
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}

	// Origin context: empty parent renders as the zero span ID and
	// parses back to empty.
	origin := Context{TraceID: tc.TraceID}
	h := origin.Header()
	if !strings.HasSuffix(h, "-0000000000000000") {
		t.Fatalf("origin header = %q", h)
	}
	got, ok = ParseHeader(h)
	if !ok || got.ParentSpanID != "" || got.TraceID != tc.TraceID {
		t.Fatalf("origin round trip: %+v ok=%v", got, ok)
	}
}

func TestParseHeaderRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"short",
		strings.Repeat("a", 32), // no span part
		strings.Repeat("a", 32) + ":" + strings.Repeat("b", 16), // wrong separator
		strings.Repeat("g", 32) + "-" + strings.Repeat("b", 16), // non-hex trace
		strings.Repeat("a", 32) + "-" + strings.Repeat("G", 16), // non-hex span
		strings.Repeat("A", 32) + "-" + strings.Repeat("b", 16), // uppercase
		strings.Repeat("a", 33) + "-" + strings.Repeat("b", 16), // too long
		strings.Repeat("a", 32) + "-" + strings.Repeat("b", 17),
	}
	for _, v := range bad {
		if _, ok := ParseHeader(v); ok {
			t.Errorf("ParseHeader(%q) accepted", v)
		}
	}
}

func TestSpanIDDeterministicAndDistinct(t *testing.T) {
	a := SpanID("t", "p", "s", 0)
	if a != SpanID("t", "p", "s", 0) {
		t.Fatal("SpanID not deterministic")
	}
	if len(a) != 16 || !isHex(a, 16) {
		t.Fatalf("SpanID shape: %q", a)
	}
	seen := map[string]string{a: "base"}
	variants := map[string]string{
		"index": SpanID("t", "p", "s", 1),
		"salt":  SpanID("t", "p", "s2", 0),
		"trace": SpanID("t2", "p", "s", 0),
		"paren": SpanID("t", "p2", "s", 0),
		// Length-delimited inputs: shifting a byte across the boundary
		// must not collide.
		"shift": SpanID("tp", "", "s", 0),
	}
	for name, id := range variants {
		if prev, dup := seen[id]; dup {
			t.Errorf("SpanID collision between %s and %s: %s", name, prev, id)
		}
		seen[id] = name
	}
}

func TestProjectStitchesParents(t *testing.T) {
	tc := Context{TraceID: strings.Repeat("a", 32), ParentSpanID: "00000000000000ff"}
	spans := []trace.Span{
		{Kind: trace.KindQueue, Parent: -1, Dur: 5 * time.Millisecond},
		{Kind: trace.KindBatch, Parent: 0, Stats: map[string]int{"jobs": 2}},
		{Kind: trace.KindPipeline, Parent: 1},
		{Kind: trace.KindInvocation, Ref: trace.Ref{Pass: "REDTEST"}, Parent: 2},
		{Kind: trace.KindFunction, Ref: trace.Ref{Pass: "REDTEST"}, Function: "f", Worker: 3, Parent: 3},
	}
	out := Project(spans, tc, "maod", "salt")
	if len(out) != len(spans) {
		t.Fatalf("len = %d", len(out))
	}
	// Root parents under the inbound context.
	if out[0].ParentID != tc.ParentSpanID {
		t.Fatalf("root parent = %q, want %q", out[0].ParentID, tc.ParentSpanID)
	}
	// Index parents become span-ID parents.
	for i := 1; i < len(out); i++ {
		if out[i].ParentID != out[i-1].SpanID {
			t.Fatalf("span %d parent = %q, want %q", i, out[i].ParentID, out[i-1].SpanID)
		}
	}
	for i, s := range out {
		if s.TraceID != tc.TraceID || s.Process != "maod" {
			t.Fatalf("span %d: %+v", i, s)
		}
	}
	if out[4].Worker != 3 || out[4].Function != "f" {
		t.Fatalf("function span fields lost: %+v", out[4])
	}
	if out[1].Stats["jobs"] != 2 {
		t.Fatalf("batch stats lost: %+v", out[1])
	}
	// Same input → byte-identical projection (determinism is the whole
	// point of derived span IDs).
	again := Project(spans, tc, "maod", "salt")
	if !reflect.DeepEqual(out, again) {
		t.Fatal("Project not deterministic")
	}
	// A different salt must shift every span ID (archive units share a
	// trace context but must not collide).
	salted := Project(spans, tc, "maod", "other")
	for i := range out {
		if salted[i].SpanID == out[i].SpanID {
			t.Fatalf("span %d ID identical across salts", i)
		}
	}
}

func TestChromeEventsTracks(t *testing.T) {
	spans := []Span{
		{TraceID: "t", SpanID: "a", Process: "maorouter", Kind: "hop", Name: "http://s1",
			Attrs: map[string]string{"shard": "http://s1", "attempt": "1"}},
		{TraceID: "t", SpanID: "b", ParentID: "a", Process: "maod", Kind: "function",
			Name: "REDTEST[0]", Function: "f", Worker: 2, StartNS: int64(3 * time.Microsecond)},
	}
	ev := ChromeEvents(spans)
	if len(ev) != 2 {
		t.Fatalf("len = %d", len(ev))
	}
	if ev[0].PID != 2 || ev[1].PID != 3 {
		t.Fatalf("pids = %d, %d", ev[0].PID, ev[1].PID)
	}
	if ev[1].TID != 3 { // worker+1
		t.Fatalf("function tid = %d", ev[1].TID)
	}
	if ev[0].Args["shard"] != "http://s1" {
		t.Fatalf("attrs not in args: %+v", ev[0].Args)
	}
	if ev[1].Args["parent_id"] != "a" {
		t.Fatalf("parent not in args: %+v", ev[1].Args)
	}
	if ev[1].TS != 3 {
		t.Fatalf("ts = %v, want microseconds", ev[1].TS)
	}
}

// TestSchemasPinPayloads validates representative payloads against the
// checked-in schemas — the same files CI uses against live fleet
// output.
func TestSchemasPinPayloads(t *testing.T) {
	tc := Context{TraceID: strings.Repeat("a", 32), ParentSpanID: "00000000000000ff"}
	spans := Project([]trace.Span{
		{Kind: trace.KindQueue, Parent: -1},
		{Kind: trace.KindBatch, Parent: 0, Stats: map[string]int{"jobs": 1}},
		{Kind: trace.KindPipeline, Parent: 1},
		{Kind: trace.KindInvocation, Ref: trace.Ref{Pass: "REDTEST"}, Parent: 2, Changed: true, NodesBefore: 3, NodesAfter: 2},
	}, tc, "maod", "salt")
	hop := Span{TraceID: tc.TraceID, SpanID: "00000000000000ff", Process: "maorouter",
		Kind: "hop", Name: "http://s1", Attrs: map[string]string{"shard": "http://s1"}}
	all := append([]Span{hop}, spans...)

	schema := readFileT(t, "testdata/scope_trace.schema.json")
	doc, _ := json.Marshal(map[string]any{"trace": all})
	if err := trace.ValidateJSON(schema, doc); err != nil {
		t.Errorf("trace schema: %v", err)
	}

	schema = readFileT(t, "testdata/scope_chrome.schema.json")
	doc, _ = json.Marshal(map[string]any{"trace_chrome": ChromeEvents(all)})
	if err := trace.ValidateJSON(schema, doc); err != nil {
		t.Errorf("chrome schema: %v", err)
	}

	rec := FlightRecord{
		Seq: 1, TimeUnixNS: 1, TraceID: tc.TraceID, RequestID: "0011223344556677",
		Client: "c", Shard: "http://s1", Path: "/v1/optimize", Cache: "miss",
		Status: 200, DurNS: 1000, QueueNS: 10,
		Passes: []PassNS{{Pass: "REDTEST[0]", DurNS: 900}},
	}
	schema = readFileT(t, "testdata/scope_flight.schema.json")
	doc, _ = json.Marshal(map[string]any{
		"process": "maod", "view": "recent", "records": []FlightRecord{rec},
	})
	if err := trace.ValidateJSON(schema, doc); err != nil {
		t.Errorf("flight schema: %v", err)
	}
	doc, _ = json.Marshal(map[string]any{
		"process": "maorouter", "view": "errors", "errors_seen": 3,
		"records": []FlightRecord{{Seq: 2, TimeUnixNS: 1, Status: 502, Err: "no shard", DurNS: 5}},
	})
	if err := trace.ValidateJSON(schema, doc); err != nil {
		t.Errorf("flight errors schema: %v", err)
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
