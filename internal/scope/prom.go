package scope

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition parser. maotop polls the
// router's and every shard's /metrics through it, and the CI fleet
// step uses it (via maotop -once -json) to validate that both
// exposition planes stay well-formed. It supports exactly what the
// hand-rolled exporters emit: # HELP / # TYPE comments, and samples
// of the form
//
//	name{label="value",...} 1.23
//
// with no escaping beyond \" and \\ inside label values (the
// exporters quote with %q).

// Sample is one exposition line: a metric name, its label set, and
// the value.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// Metrics is a parsed exposition page: metric name → samples in page
// order.
type Metrics map[string][]Sample

// ParseProm parses a Prometheus text-format page. It returns an error
// for any line it cannot parse — the CI step leans on this to keep
// the exposition format honest.
func ParseProm(r io.Reader) (Metrics, error) {
	out := Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out[name] = append(out[name], Sample{Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		end := strings.LastIndex(rest, "}")
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parsePromLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("missing metric name in %q", line)
	}
	v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if perr != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %v", line, perr)
	}
	return name, labels, v, nil
}

func parsePromLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		key := s[:eq]
		// Scan the quoted value honoring \" and \\.
		var val strings.Builder
		i := eq + 2
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				val.WriteByte(s[i+1])
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

// Value returns the single unlabeled (or first) sample of a metric,
// ok=false when absent.
func (m Metrics) Value(name string) (float64, bool) {
	ss := m[name]
	if len(ss) == 0 {
		return 0, false
	}
	return ss[0].Value, true
}

// Labeled returns the value of the sample of name whose labels
// include all of want.
func (m Metrics) Labeled(name string, want map[string]string) (float64, bool) {
	for _, s := range m[name] {
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Quantile estimates quantile q (0..1) from a Prometheus cumulative
// histogram's _bucket samples (filtered by want, which may be nil),
// using linear interpolation within the winning bucket — the same
// estimate PromQL's histogram_quantile computes. ok is false when the
// histogram is absent or empty.
func (m Metrics) Quantile(name string, want map[string]string, q float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range m[name+"_bucket"] {
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		leStr := s.Labels["le"]
		le := 0.0
		if leStr == "+Inf" {
			le = inf()
		} else {
			var err error
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
		}
		buckets = append(buckets, bucket{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	prevLE, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if b.le == inf() {
				return prevLE, true // open-ended bucket: report its lower bound
			}
			width := b.le - prevLE
			inBucket := b.cum - prevCum
			if inBucket <= 0 {
				return b.le, true
			}
			return prevLE + width*(rank-prevCum)/inBucket, true
		}
		prevLE, prevCum = b.le, b.cum
	}
	return buckets[len(buckets)-1].le, true
}

func inf() float64 { return math.Inf(1) }
