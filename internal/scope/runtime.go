package scope

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
)

// Go runtime health exposition (satellite of MAOSCOPE): goroutine
// count, GC pause-time histogram, and heap in-use bytes, read from
// runtime/metrics and rendered in the same hand-rolled Prometheus
// text format the daemon and router /metrics handlers emit. Both
// processes call WriteRuntimeMetrics at the end of their handler, so
// maotop (and any real Prometheus) can watch runtime pressure next to
// request metrics.

// gcPauseBounds are the le bounds the runtime's pause histogram is
// collapsed onto — fixed so the exposition shape is stable across Go
// releases (the runtime's own bucket layout is not).
var gcPauseBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// runtimeSamples is the fixed sample set WriteRuntimeMetrics reads.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/gc/pauses:seconds",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/unused:bytes",
	"/gc/cycles/total:gc-cycles",
}

// WriteRuntimeMetrics writes the Go runtime health metrics with the
// given name prefix (e.g. "maod" → maod_go_goroutines). It allocates;
// it is only ever called from a /metrics scrape, never the request
// path.
func WriteRuntimeMetrics(w io.Writer, prefix string) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	byName := make(map[string]metrics.Sample, len(samples))
	for _, s := range samples {
		byName[s.Name] = s
	}

	if v, ok := sampleUint(byName, "/sched/goroutines:goroutines"); ok {
		fmt.Fprintf(w, "# HELP %s_go_goroutines Number of live goroutines.\n", prefix)
		fmt.Fprintf(w, "# TYPE %s_go_goroutines gauge\n", prefix)
		fmt.Fprintf(w, "%s_go_goroutines %d\n", prefix, v)
	}

	objs, ok1 := sampleUint(byName, "/memory/classes/heap/objects:bytes")
	unused, ok2 := sampleUint(byName, "/memory/classes/heap/unused:bytes")
	if ok1 && ok2 {
		fmt.Fprintf(w, "# HELP %s_go_heap_inuse_bytes Bytes of heap memory in use (live objects plus unused span capacity).\n", prefix)
		fmt.Fprintf(w, "# TYPE %s_go_heap_inuse_bytes gauge\n", prefix)
		fmt.Fprintf(w, "%s_go_heap_inuse_bytes %d\n", prefix, objs+unused)
	}

	if v, ok := sampleUint(byName, "/gc/cycles/total:gc-cycles"); ok {
		fmt.Fprintf(w, "# HELP %s_go_gc_cycles_total Completed GC cycles.\n", prefix)
		fmt.Fprintf(w, "# TYPE %s_go_gc_cycles_total counter\n", prefix)
		fmt.Fprintf(w, "%s_go_gc_cycles_total %d\n", prefix, v)
	}

	if s, ok := byName["/gc/pauses:seconds"]; ok && s.Value.Kind() == metrics.KindFloat64Histogram {
		writePauseHistogram(w, prefix, s.Value.Float64Histogram())
	}
}

func sampleUint(byName map[string]metrics.Sample, name string) (uint64, bool) {
	s, ok := byName[name]
	if !ok || s.Value.Kind() != metrics.KindUint64 {
		return 0, false
	}
	return s.Value.Uint64(), true
}

// writePauseHistogram collapses the runtime's variable-bucket pause
// histogram onto gcPauseBounds, emitting a standard cumulative
// Prometheus histogram. The _sum is approximated from bucket
// midpoints — pause totals are for trend-watching, not accounting.
func writePauseHistogram(w io.Writer, prefix string, h *metrics.Float64Histogram) {
	counts := make([]uint64, len(gcPauseBounds)+1) // +1 for +Inf
	var sum float64
	var total uint64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo := math.Inf(-1)
		if i < len(h.Buckets) {
			lo = h.Buckets[i]
		}
		hi := math.Inf(1)
		if i+1 < len(h.Buckets) {
			hi = h.Buckets[i+1]
		}
		mid := lo
		if !math.IsInf(lo, -1) && !math.IsInf(hi, 1) {
			mid = (lo + hi) / 2
		} else if math.IsInf(lo, -1) {
			mid = hi
		}
		if mid < 0 || math.IsInf(mid, 1) {
			mid = 0
		}
		// A runtime bucket lands in the first fixed bound that holds
		// its upper edge.
		idx := sort.SearchFloat64s(gcPauseBounds, hi)
		counts[idx] += n
		sum += mid * float64(n)
		total += n
	}
	fmt.Fprintf(w, "# HELP %s_go_gc_pause_seconds Stop-the-world GC pause durations.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_go_gc_pause_seconds histogram\n", prefix)
	var cum uint64
	for i, b := range gcPauseBounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_go_gc_pause_seconds_bucket{le=\"%g\"} %d\n", prefix, b, cum)
	}
	cum += counts[len(gcPauseBounds)]
	fmt.Fprintf(w, "%s_go_gc_pause_seconds_bucket{le=\"+Inf\"} %d\n", prefix, cum)
	fmt.Fprintf(w, "%s_go_gc_pause_seconds_sum %g\n", prefix, sum)
	fmt.Fprintf(w, "%s_go_gc_pause_seconds_count %d\n", prefix, total)
}
