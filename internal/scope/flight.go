package scope

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The flight recorder: postmortem visibility with zero steady-state
// allocations on the request hot path. Both the daemon and the router
// keep one; every completed request writes one FlightRecord into a
// bounded ring (the last N requests), and two side reservoirs retain
// what a ring would age out too fast — the slowest requests seen and
// every errored request.
//
// The ring takes no mutex: slots are claimed with a per-slot atomic
// sequence (odd = owned, even = published), writers claim by CAS and
// publish by increment, and readers (the /debug/scope/{recent,
// slowest,errors} endpoints) claim the same way to copy out — a few
// dozen nanoseconds per slot, so a debug scrape never stalls the
// request path measurably and the memory accesses stay data-race-free
// under the race detector.
//
// Hot-path contract (pinned by an AllocsPerRun test): Acquire +
// fill + Commit performs zero heap allocations once every ring slot
// has been written once — the record's Passes vector reuses the
// slot's slice capacity, and the slowest-reservoir check is one
// atomic load in the common case.

// FlightRecord is one completed request, the element of every
// /debug/scope payload (pinned by testdata/scope_flight.schema.json).
type FlightRecord struct {
	// Seq is the record's global sequence number (monotonic per
	// process); readers use it to order and de-duplicate.
	Seq uint64 `json:"seq"`
	// TimeUnixNS is the completion wall-clock time.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// TraceID / RequestID correlate the record with the distributed
	// trace and the X-Request-ID plane.
	TraceID   string `json:"trace_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	// Client is the quota identity (X-Mao-Client or remote address).
	Client string `json:"client,omitempty"`
	// Shard is the backend that served the request (router-side).
	Shard string `json:"shard,omitempty"`
	Path  string `json:"path,omitempty"`
	// Cache is the result-cache verdict: "hit", "miss", "coalesced"
	// (the request rode another in-flight identical run), or "".
	Cache  string `json:"cache,omitempty"`
	Status int    `json:"status"`
	Err    string `json:"error,omitempty"`
	// QueueNS is the admission-to-pickup wait (daemon-side).
	QueueNS int64 `json:"queue_ns,omitempty"`
	DurNS   int64 `json:"dur_ns"`
	// Retries counts failover forwards (router-side).
	Retries int `json:"retries,omitempty"`
	// Passes is the per-pass latency vector of the request's pipeline
	// run, in invocation order.
	Passes []PassNS `json:"passes,omitempty"`
}

// PassNS is one entry of the per-pass latency vector.
type PassNS struct {
	Pass  string `json:"pass"`
	DurNS int64  `json:"dur_ns"`
}

// reset clears r for reuse, keeping the Passes capacity — the reuse
// that makes the steady-state hot path allocation-free.
func (r *FlightRecord) reset() {
	passes := r.Passes[:0]
	*r = FlightRecord{}
	r.Passes = passes
}

// copyFrom deep-copies src into r (reservoir insertion; off the hot
// path, allocation is fine here).
func (r *FlightRecord) copyFrom(src *FlightRecord) {
	passes := append(r.Passes[:0], src.Passes...)
	*r = *src
	r.Passes = passes
}

// flightSlot is one seqlock-guarded ring slot: seq is odd while a
// writer owns the slot, and bumps by 2 per completed write.
type flightSlot struct {
	seq atomic.Uint64
	rec FlightRecord
}

// Recorder is the flight recorder. The zero value is unusable;
// construct with NewRecorder. A nil *Recorder is the disabled
// recorder: Acquire returns nil and Commit is a no-op, so callers
// need no branching beyond what they'd write anyway.
type Recorder struct {
	slots []flightSlot
	mask  uint64
	next  atomic.Uint64 // next sequence number to assign

	// slowThresholdNS is the fast-path gate for the slowest
	// reservoir: requests at or below it cannot enter, so the common
	// case costs one atomic load.
	slowThresholdNS atomic.Int64

	slowMu  sync.Mutex
	slowest []FlightRecord // at most slowCap, unordered heap by DurNS (min at [0])

	errMu   sync.Mutex
	errs    []FlightRecord // bounded ring of errored requests
	errNext int
	errSeen uint64
}

// slowCap bounds the slowest-requests reservoir; errCap the errored
// ring.
const (
	slowCap = 32
	errCap  = 256
)

// NewRecorder returns a recorder retaining the last n completed
// requests (n is rounded up to a power of two, minimum 16).
func NewRecorder(n int) *Recorder {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Recorder{
		slots: make([]flightSlot, size),
		mask:  uint64(size - 1),
	}
}

// Acquire claims the next ring slot and returns its record, reset for
// filling, plus an opaque handle for Commit. The claimed slot is
// invisible to readers until Commit. Nil receiver: returns nil, 0.
func (r *Recorder) Acquire() (*FlightRecord, uint64) {
	if r == nil {
		return nil, 0
	}
	seq := r.next.Add(1) - 1
	slot := &r.slots[seq&r.mask]
	// Claim the slot. Contention here means the ring wrapped within
	// one write's duration (a writer lapped us) or a reader is mid
	// copy-out; both hold the slot for a handful of field copies, so
	// spinning is bounded and tiny.
	slot.claim()
	slot.rec.reset()
	slot.rec.Seq = seq
	return &slot.rec, seq
}

// claim flips the slot's sequence odd, spinning out other owners.
func (s *flightSlot) claim() {
	for {
		v := s.seq.Load()
		if v&1 == 0 && s.seq.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// Commit publishes a record claimed by Acquire and feeds the
// reservoirs. Safe on a nil receiver (no-op when rec is nil).
func (r *Recorder) Commit(rec *FlightRecord, handle uint64) {
	if r == nil || rec == nil {
		return
	}
	slot := &r.slots[handle&r.mask]
	// Reservoirs first: they copy out of the slot, and publication
	// makes the slot fair game for lapping writers.
	if rec.Status >= 400 || rec.Err != "" {
		r.recordError(rec)
	}
	r.maybeSlow(rec)
	slot.seq.Add(1) // odd → even: published
}

// recordError appends rec to the bounded errored-requests ring.
func (r *Recorder) recordError(rec *FlightRecord) {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	r.errSeen++
	if len(r.errs) < errCap {
		var cp FlightRecord
		cp.copyFrom(rec)
		r.errs = append(r.errs, cp)
		return
	}
	r.errs[r.errNext].copyFrom(rec)
	r.errNext = (r.errNext + 1) % errCap
}

// maybeSlow inserts rec into the slowest reservoir when it beats the
// current floor. The atomic threshold makes the common case (request
// not slower than the floor of a full reservoir) one load + compare.
func (r *Recorder) maybeSlow(rec *FlightRecord) {
	if rec.DurNS <= r.slowThresholdNS.Load() {
		return
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if len(r.slowest) < slowCap {
		var cp FlightRecord
		cp.copyFrom(rec)
		r.slowest = append(r.slowest, cp)
		if len(r.slowest) == slowCap {
			r.slowThresholdNS.Store(r.slowMin())
		}
		return
	}
	// Replace the current minimum if rec beats it.
	minIdx := 0
	for i := range r.slowest {
		if r.slowest[i].DurNS < r.slowest[minIdx].DurNS {
			minIdx = i
		}
	}
	if rec.DurNS > r.slowest[minIdx].DurNS {
		r.slowest[minIdx].copyFrom(rec)
		r.slowThresholdNS.Store(r.slowMin())
	}
}

func (r *Recorder) slowMin() int64 {
	min := r.slowest[0].DurNS
	for i := range r.slowest {
		if r.slowest[i].DurNS < min {
			min = r.slowest[i].DurNS
		}
	}
	return min
}

// Recent snapshots the ring, newest first. Each slot is claimed for
// the duration of one record copy; records lapped by faster writers
// between the sequence read and the claim are dropped.
func (r *Recorder) Recent() []FlightRecord {
	if r == nil {
		return nil
	}
	hi := r.next.Load()
	n := uint64(len(r.slots))
	if hi < n {
		n = hi
	}
	out := make([]FlightRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		seq := hi - 1 - i
		slot := &r.slots[seq&r.mask]
		slot.claim()
		var cp FlightRecord
		cp.copyFrom(&slot.rec)
		slot.seq.Add(1)
		if cp.Seq != seq {
			continue // lapped: the slot now holds a newer record
		}
		out = append(out, cp)
	}
	return out
}

// Slowest snapshots the slowest-requests reservoir, slowest first.
func (r *Recorder) Slowest() []FlightRecord {
	if r == nil {
		return nil
	}
	r.slowMu.Lock()
	out := make([]FlightRecord, len(r.slowest))
	for i := range r.slowest {
		out[i].copyFrom(&r.slowest[i])
	}
	r.slowMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurNS > out[j].DurNS })
	return out
}

// Errors snapshots the errored-requests ring, newest first, plus the
// total number of errors seen (the ring may have dropped older ones).
func (r *Recorder) Errors() ([]FlightRecord, uint64) {
	if r == nil {
		return nil, 0
	}
	r.errMu.Lock()
	defer r.errMu.Unlock()
	out := make([]FlightRecord, 0, len(r.errs))
	// r.errNext is the oldest entry once the ring wrapped.
	for i := 0; i < len(r.errs); i++ {
		idx := r.errNext - 1 - i
		for idx < 0 {
			idx += len(r.errs)
		}
		if len(r.errs) < errCap {
			// Not wrapped yet: entries are append-ordered.
			idx = len(r.errs) - 1 - i
		}
		var cp FlightRecord
		cp.copyFrom(&r.errs[idx])
		out = append(out, cp)
	}
	return out, r.errSeen
}
