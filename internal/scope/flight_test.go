package scope

import (
	"fmt"
	"sync"
	"testing"
)

func fill(rec *FlightRecord, durNS int64, status int, errStr string) {
	rec.TimeUnixNS = 1
	rec.TraceID = "t"
	rec.Client = "c"
	rec.Path = "/v1/optimize"
	rec.Cache = "miss"
	rec.Status = status
	rec.Err = errStr
	rec.DurNS = durNS
	rec.Passes = append(rec.Passes, PassNS{Pass: "REDTEST[0]", DurNS: durNS / 2})
}

func TestRecorderRecentNewestFirst(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 10; i++ {
		rec, h := r.Acquire()
		fill(rec, int64(i+1), 200, "")
		r.Commit(rec, h)
	}
	recent := r.Recent()
	if len(recent) != 10 {
		t.Fatalf("len = %d", len(recent))
	}
	for i, rec := range recent {
		if rec.Seq != uint64(9-i) {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, rec.Seq, 9-i)
		}
	}
	// Overflow the ring: only the newest 16 survive.
	for i := 10; i < 40; i++ {
		rec, h := r.Acquire()
		fill(rec, int64(i+1), 200, "")
		r.Commit(rec, h)
	}
	recent = r.Recent()
	if len(recent) != 16 {
		t.Fatalf("post-wrap len = %d", len(recent))
	}
	if recent[0].Seq != 39 || recent[15].Seq != 24 {
		t.Fatalf("post-wrap range: %d..%d", recent[0].Seq, recent[15].Seq)
	}
	if len(recent[0].Passes) != 1 || recent[0].Passes[0].Pass != "REDTEST[0]" {
		t.Fatalf("passes lost: %+v", recent[0].Passes)
	}
}

func TestRecorderSlowestReservoir(t *testing.T) {
	r := NewRecorder(16)
	// 100 requests with distinct durations; the reservoir must retain
	// the top slowCap.
	for i := 1; i <= 100; i++ {
		rec, h := r.Acquire()
		fill(rec, int64(i), 200, "")
		r.Commit(rec, h)
	}
	slow := r.Slowest()
	if len(slow) != slowCap {
		t.Fatalf("len = %d, want %d", len(slow), slowCap)
	}
	for i, rec := range slow {
		want := int64(100 - i)
		if rec.DurNS != want {
			t.Fatalf("slowest[%d].DurNS = %d, want %d", i, rec.DurNS, want)
		}
	}
}

func TestRecorderErrors(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 5; i++ {
		rec, h := r.Acquire()
		fill(rec, 10, 200, "")
		r.Commit(rec, h)
	}
	for i := 0; i < 3; i++ {
		rec, h := r.Acquire()
		fill(rec, 10, 500, fmt.Sprintf("boom %d", i))
		r.Commit(rec, h)
	}
	errs, seen := r.Errors()
	if seen != 3 || len(errs) != 3 {
		t.Fatalf("seen=%d len=%d", seen, len(errs))
	}
	if errs[0].Err != "boom 2" || errs[2].Err != "boom 0" {
		t.Fatalf("order: %q .. %q", errs[0].Err, errs[2].Err)
	}
	// Status >= 400 without an Err string also counts.
	rec, h := r.Acquire()
	fill(rec, 10, 404, "")
	r.Commit(rec, h)
	_, seen = r.Errors()
	if seen != 4 {
		t.Fatalf("seen = %d", seen)
	}
	// Overflow the error ring; the count keeps the truth.
	for i := 0; i < errCap+10; i++ {
		rec, h := r.Acquire()
		fill(rec, 10, 500, "x")
		r.Commit(rec, h)
	}
	errs, seen = r.Errors()
	if len(errs) != errCap || seen != uint64(4+errCap+10) {
		t.Fatalf("post-wrap len=%d seen=%d", len(errs), seen)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	rec, h := r.Acquire()
	if rec != nil {
		t.Fatal("nil recorder returned a record")
	}
	r.Commit(rec, h)
	if r.Recent() != nil || r.Slowest() != nil {
		t.Fatal("nil recorder returned records")
	}
	if errs, seen := r.Errors(); errs != nil || seen != 0 {
		t.Fatal("nil recorder returned errors")
	}
}

// TestRecorderHotPathZeroAlloc pins the acceptance criterion: once the
// ring is warm, Acquire + fill + Commit performs zero heap
// allocations.
func TestRecorderHotPathZeroAlloc(t *testing.T) {
	r := NewRecorder(64)
	// Warm-up: write every slot once (slot Passes slices get capacity)
	// and saturate the slowest reservoir so maybeSlow stays on its
	// atomic fast path.
	for i := 0; i < 256; i++ {
		rec, h := r.Acquire()
		fill(rec, 1_000_000_000, 200, "")
		r.Commit(rec, h)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rec, h := r.Acquire()
		fill(rec, 5, 200, "") // faster than the reservoir floor
		r.Commit(rec, h)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", allocs)
	}
}

// TestRecorderConcurrent exercises writers racing readers; run under
// -race this validates the claim protocol.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(32)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec, h := r.Acquire()
				fill(rec, int64(i%1000+1), 200+(i%2)*300, "")
				r.Commit(rec, h)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				for _, rec := range r.Recent() {
					if rec.DurNS < 1 || rec.DurNS > 1000 {
						t.Errorf("torn read: %+v", rec)
						return
					}
					if len(rec.Passes) != 1 {
						t.Errorf("torn passes: %+v", rec)
						return
					}
				}
				r.Slowest()
				r.Errors()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
