// Package memo implements MAO's content-addressed, function-granular
// pipeline memo.
//
// The optimizer's hot path in a fleet is re-optimizing code it has
// seen moments ago: repeated requests for the same unit, archives
// whose members share functions, and editors re-submitting after a
// local change. The memo makes that path O(new work): every function
// of a unit is fingerprinted by content, and a unit whose functions
// all hit skips the pass pipeline entirely — the memoized optimized
// spans are spliced in as cloned IR, byte-identical to a cold run.
//
// # Key derivation
//
// A function's fingerprint is sha256 over length-delimited fields,
// following the internal/cachekey conventions:
//
//   - the canonical IR bytes of the function span (every node's
//     rendered line, length-prefixed) and its section name;
//   - the canonical pipeline spec;
//   - the configuration salt: pass-catalog version, static-check
//     version, translation-validation version and the memo format
//     version, fixed at construction.
//
// Two key modes exist, chosen by the caller per pipeline:
//
//   - local: the span content alone identifies the result. Sound only
//     for pipelines of ParallelSafe function passes, whose output for
//     a function is a pure function of that function's span. Local
//     keys let different units share entries for identical functions.
//   - unit: the whole unit's content is folded into every function's
//     key. Sound for any pipeline whose effects stay inside function
//     spans (alignment passes consult unit-wide layout, so a
//     function's optimized form depends on its neighbors).
//
// Invalidation is structural: a changed function, spec, or catalog
// version composes a different key, so stale entries are simply never
// found again and age out of the LRU.
//
// # Fill-time self-validation
//
// The memo never assumes a pipeline was span-confined: Fill re-walks
// the unit after the run and compares the interstitial content (every
// node outside a function span) against the pre-run plan. If a pass
// mutated anything between functions, nothing is stored and the run
// is counted unmemoizable. Entries are therefore only ever created
// for runs the splice path can reproduce exactly.
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"

	"mao/internal/ir"
)

// formatVersion is baked into every key; bump it when the entry
// layout or fingerprint composition changes incompatibly.
const formatVersion = "maomemo/1"

// Memo is a bounded, content-addressed store of per-function pipeline
// results. It is safe for concurrent use; stored spans are immutable
// and cloned on every splice.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*entry
	// order is an intrusive LRU list over entries (most recent at
	// head). A plain doubly-linked list keeps eviction O(1) without
	// container/list's interface boxing.
	head, tail *entry
	max        int
	salt       string

	hits, misses, stores, evictions, unmemoizable atomic.Uint64
}

// entry is one memoized function result. nodes is nil when the
// pipeline left the span byte-identical (the common fixpoint case):
// splicing such an entry is a no-op.
type entry struct {
	key        string
	nodes      []*ir.Node
	identical  bool
	prev, next *entry
}

// New returns a memo bounded to maxEntries function entries (<= 0
// selects the 65536 default). The version strings — conventionally
// the pass-catalog, static-check and translation-validation versions
// — are folded length-delimited into every key, so results produced
// under a different configuration can never be returned.
func New(maxEntries int, versions ...string) *Memo {
	if maxEntries <= 0 {
		maxEntries = 65536
	}
	h := sha256.New()
	writeField(h, formatVersion)
	fmt.Fprintf(h, "nver:%d:", len(versions))
	for _, v := range versions {
		writeField(h, v)
	}
	return &Memo{
		entries: make(map[string]*entry),
		max:     maxEntries,
		salt:    hex.EncodeToString(h.Sum(nil)),
	}
}

// writeField writes one length-delimited field into h, so adjacent
// fields can never alias across boundaries (the internal/cachekey
// convention).
func writeField(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

// Metrics is a snapshot of the memo's counters.
type Metrics struct {
	Hits         uint64 // function probes answered from the memo
	Misses       uint64 // function probes that found no usable entry
	Stores       uint64 // entries written by Fill
	Evictions    uint64 // entries dropped by the LRU bound
	Unmemoizable uint64 // runs Fill refused (boundary or interstitial drift)
	Entries      int    // current entry count
}

// Metrics returns a counter snapshot.
func (m *Memo) Metrics() Metrics {
	m.mu.Lock()
	n := len(m.entries)
	m.mu.Unlock()
	return Metrics{
		Hits:         m.hits.Load(),
		Misses:       m.misses.Load(),
		Stores:       m.stores.Load(),
		Evictions:    m.evictions.Load(),
		Unmemoizable: m.unmemoizable.Load(),
		Entries:      n,
	}
}

// Counters returns the hit and miss totals (function granularity).
func (m *Memo) Counters() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Len returns the current number of entries.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// CountHits adds n probe hits to the counters on behalf of a caller
// that short-circuited the content path (the pass manager's
// version-revalidation fast path answers repeat runs without
// recomputing fingerprints, but they are memo hits all the same).
func (m *Memo) CountHits(n int) { m.hits.Add(uint64(n)) }

// Plan holds the per-function fingerprints of one unit under one
// pipeline configuration, computed by NewPlan before a run and
// consumed by Lookup (before) and Fill (after). A Plan is tied to the
// unit's current content; recompute it after any edit.
type Plan struct {
	memo    *Memo
	keys    []string
	fns     []*ir.Function
	spanFPs []string // input content fingerprint per span
	interFP string   // fingerprint of everything outside the spans
}

// Functions returns the number of functions the plan covers.
func (p *Plan) Functions() int { return len(p.fns) }

// NewPlan fingerprints every function of u under the canonical
// pipeline spec. local selects span-content keys (sound only for
// pipelines of ParallelSafe function passes); otherwise the whole
// unit's content is folded into every key. It returns nil when the
// unit has no recognized functions — there is nothing to memoize.
func (m *Memo) NewPlan(u *ir.Unit, spec string, local bool) *Plan {
	fns := u.Functions()
	if len(fns) == 0 {
		return nil
	}
	spanFPs, interFP, unitFP, ok := contentFingerprints(u, fns, !local)
	if !ok {
		return nil
	}
	p := &Plan{memo: m, fns: fns, spanFPs: spanFPs, interFP: interFP}
	p.keys = make([]string, len(fns))
	for i, f := range fns {
		h := sha256.New()
		writeField(h, m.salt)
		writeField(h, spec)
		if local {
			writeField(h, "local")
			writeField(h, f.SectionName)
			writeField(h, spanFPs[i])
		} else {
			writeField(h, "unit")
			writeField(h, unitFP)
			writeField(h, f.Name)
		}
		p.keys[i] = hex.EncodeToString(h.Sum(nil))
	}
	return p
}

// contentFingerprints walks the unit once, hashing every function
// span, the interstitial content, and (when wantUnit) the whole unit.
// ok is false when the function spans do not partition the list into
// the expected well-nested shape (overlapping or dangling spans).
func contentFingerprints(u *ir.Unit, fns []*ir.Function, wantUnit bool) (spanFPs []string, interFP, unitFP string, ok bool) {
	spanFPs = make([]string, len(fns))
	inter := sha256.New()
	var unit hash.Hash
	if wantUnit {
		unit = sha256.New()
	}
	var span hash.Hash
	fi := 0
	for n := u.List.Front(); n != nil; n = n.Next() {
		if span == nil && fi < len(fns) && n == fns[fi].EntryLabel() {
			span = sha256.New()
			writeField(span, fns[fi].SectionName)
		}
		line := n.String()
		if span != nil {
			writeField(span, line)
		} else {
			writeField(inter, line)
		}
		if unit != nil {
			writeField(unit, line)
		}
		if span != nil && n == fns[fi].End() {
			spanFPs[fi] = hex.EncodeToString(span.Sum(nil))
			span = nil
			fi++
		}
	}
	if span != nil || fi != len(fns) {
		return nil, "", "", false // a span never closed or never opened
	}
	if unit != nil {
		unitFP = hex.EncodeToString(unit.Sum(nil))
	}
	return spanFPs, hex.EncodeToString(inter.Sum(nil)), unitFP, true
}

// Hit is a successful whole-unit lookup: one entry per function of
// the plan, ready to splice.
type Hit struct {
	plan    *Plan
	nodes   [][]*ir.Node // nil per function when the span is unchanged
	spliced int
}

// Lookup probes every function key of the plan. It succeeds only when
// all functions hit — a partial hit cannot shortcut the pipeline, so
// it counts every function as a miss and returns false.
func (m *Memo) Lookup(p *Plan) (*Hit, bool) {
	if p == nil {
		return nil, false
	}
	h := &Hit{plan: p, nodes: make([][]*ir.Node, len(p.keys))}
	m.mu.Lock()
	for i, key := range p.keys {
		e, ok := m.entries[key]
		if !ok {
			m.mu.Unlock()
			m.misses.Add(uint64(len(p.keys)))
			return nil, false
		}
		m.touch(e)
		if !e.identical {
			h.nodes[i] = e.nodes
		}
	}
	m.mu.Unlock()
	m.hits.Add(uint64(len(p.keys)))
	return h, true
}

// Splice replaces every changed function span of u with clones of the
// memoized optimized nodes and re-analyzes the unit. u must be the
// unit the plan was computed from, unedited since. It returns the
// number of spans spliced; zero means the unit was already at the
// pipeline's fixpoint and was not touched at all.
func (h *Hit) Splice(u *ir.Unit) (int, error) {
	for i, nodes := range h.nodes {
		if nodes == nil {
			continue
		}
		f := h.plan.fns[i]
		start, end := f.EntryLabel(), f.End()
		for _, n := range nodes {
			u.List.InsertBefore(n.Clone(), start)
		}
		for n := start; n != nil; {
			next := n.Next()
			u.List.Remove(n)
			if n == end {
				break
			}
			n = next
		}
		h.spliced++
	}
	if h.spliced > 0 {
		if err := u.Analyze(); err != nil {
			return h.spliced, err
		}
	}
	return h.spliced, nil
}

// Spliced returns how many spans Splice replaced.
func (h *Hit) Spliced() int { return h.spliced }

// Fill stores the unit's post-run spans under the plan's (pre-run)
// keys. It re-walks the unit, validating that every function boundary
// survived the run and that the interstitial content is untouched; on
// any drift nothing is stored and Fill reports false. Spans that the
// run left byte-identical are stored without nodes — splicing them is
// free.
func (m *Memo) Fill(p *Plan, u *ir.Unit) bool {
	if p == nil {
		return false
	}
	fns := p.fns
	inter := sha256.New()
	var span hash.Hash
	var spanNodes []*ir.Node
	type result struct {
		fp    string
		nodes []*ir.Node
	}
	results := make([]result, 0, len(fns))
	fi := 0
	for n := u.List.Front(); n != nil; n = n.Next() {
		if span == nil && fi < len(fns) && n == fns[fi].EntryLabel() {
			span = sha256.New()
			writeField(span, fns[fi].SectionName)
			spanNodes = spanNodes[:0]
		}
		if span != nil {
			writeField(span, n.String())
			spanNodes = append(spanNodes, n)
		} else {
			writeField(inter, n.String())
		}
		if span != nil && n == fns[fi].End() {
			results = append(results, result{
				fp:    hex.EncodeToString(span.Sum(nil)),
				nodes: append([]*ir.Node(nil), spanNodes...),
			})
			span = nil
			fi++
		}
	}
	if span != nil || fi != len(fns) ||
		hex.EncodeToString(inter.Sum(nil)) != p.interFP {
		m.unmemoizable.Add(1)
		return false
	}
	for i, r := range results {
		e := &entry{key: p.keys[i], identical: r.fp == p.spanFPs[i]}
		if !e.identical {
			e.nodes = make([]*ir.Node, len(r.nodes))
			for j, n := range r.nodes {
				e.nodes[j] = n.Clone()
			}
		}
		m.store(e)
	}
	return true
}

// store inserts or refreshes an entry, evicting from the LRU tail
// past the bound.
func (m *Memo) store(e *entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.entries[e.key]; ok {
		m.unlink(old)
		delete(m.entries, e.key)
	}
	m.entries[e.key] = e
	m.pushFront(e)
	m.stores.Add(1)
	for len(m.entries) > m.max && m.tail != nil {
		victim := m.tail
		m.unlink(victim)
		delete(m.entries, victim.key)
		m.evictions.Add(1)
	}
}

// touch moves e to the LRU head. Caller holds m.mu.
func (m *Memo) touch(e *entry) {
	if m.head == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}

// pushFront links e at the LRU head. Caller holds m.mu.
func (m *Memo) pushFront(e *entry) {
	e.prev = nil
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds m.mu.
func (m *Memo) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if m.head == e {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if m.tail == e {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
