package memo_test

import (
	"strings"
	"testing"

	"mao/internal/asm"
	_ "mao/internal/check" // register the CHECK pass
	"mao/internal/ir"
	"mao/internal/memo"
	"mao/internal/pass"
	_ "mao/internal/passes" // register the catalog
)

// srcTwo holds two functions; g carries a redundant test after xor
// that REDTEST removes, so local-mode pipelines visibly transform it.
const srcTwo = `	.text
	.globl f
	.type f,@function
f:
	movq %rdi, %rax
	addq $1, %rax
	ret
	.size f, .-f
	.globl g
	.type g,@function
g:
	xorq %rax, %rax
	testq %rax, %rax
	je .Lg1
	nop
.Lg1:
	ret
	.size g, .-g
`

// srcGOnly is g alone, byte-identical to its span in srcTwo.
const srcGOnly = `	.text
	.globl g
	.type g,@function
g:
	xorq %rax, %rax
	testq %rax, %rax
	je .Lg1
	nop
.Lg1:
	ret
	.size g, .-g
`

func parse(t *testing.T, src string) *ir.Unit {
	t.Helper()
	u, err := asm.ParseString("memo_test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func newManager(t *testing.T, spec string, m *memo.Memo) *pass.Manager {
	t.Helper()
	mgr, err := pass.NewManager(spec)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Workers = 1
	mgr.Memo = m
	return mgr
}

// TestMemoHitByteIdentity: a fresh parse of the same source must hit
// the memo and come out byte-identical to the cold run.
func TestMemoHitByteIdentity(t *testing.T) {
	for _, spec := range []string{"REDTEST:REDMOV", "LOOP16:LSD:BRALIGN"} {
		t.Run(spec, func(t *testing.T) {
			cold := parse(t, srcTwo)
			mgrCold, _ := pass.NewManager(spec)
			if _, err := mgrCold.Run(cold); err != nil {
				t.Fatal(err)
			}
			want := cold.String()

			m := memo.New(0, "v1")
			u1 := parse(t, srcTwo)
			if _, err := newManager(t, spec, m).Run(u1); err != nil {
				t.Fatal(err)
			}
			if got := u1.String(); got != want {
				t.Fatalf("fill run differs from cold run:\n%s\nvs\n%s", got, want)
			}
			if mm := m.Metrics(); mm.Stores == 0 {
				t.Fatalf("fill run stored nothing: %+v", mm)
			}

			u2 := parse(t, srcTwo)
			stats, err := newManager(t, spec, m).Run(u2)
			if err != nil {
				t.Fatal(err)
			}
			if got := u2.String(); got != want {
				t.Fatalf("memo-hit run differs from cold run:\n%s\nvs\n%s", got, want)
			}
			if stats.Get("MEMO", "functions") != 2 {
				t.Fatalf("expected a 2-function memo hit, stats:\n%s", stats)
			}
			if h, _ := m.Counters(); h == 0 {
				t.Fatal("no hits counted")
			}
		})
	}
}

// TestMemoLocalSharing: with a ParallelSafe-only pipeline, a unit
// whose functions are a subset of previously seen ones hits fully —
// cross-unit sharing at function granularity. A whole-unit-keyed
// pipeline must not share across units.
func TestMemoLocalSharing(t *testing.T) {
	const spec = "REDTEST:REDMOV"
	m := memo.New(0, "v1")
	u1 := parse(t, srcTwo)
	if _, err := newManager(t, spec, m).Run(u1); err != nil {
		t.Fatal(err)
	}

	coldG := parse(t, srcGOnly)
	mgrCold, _ := pass.NewManager(spec)
	if _, err := mgrCold.Run(coldG); err != nil {
		t.Fatal(err)
	}

	u2 := parse(t, srcGOnly)
	stats, err := newManager(t, spec, m).Run(u2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Get("MEMO", "functions") != 1 {
		t.Fatalf("expected cross-unit hit for g, stats:\n%s", stats)
	}
	if u2.String() != coldG.String() {
		t.Fatalf("shared-function splice differs from cold run:\n%s\nvs\n%s",
			u2.String(), coldG.String())
	}

	// Unit-keyed pipelines fold the whole unit into every key: no
	// cross-unit sharing.
	mu := memo.New(0, "v1")
	u3 := parse(t, srcTwo)
	if _, err := newManager(t, "LOOP16", mu).Run(u3); err != nil {
		t.Fatal(err)
	}
	u4 := parse(t, srcGOnly)
	stats, err = newManager(t, "LOOP16", mu).Run(u4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Get("MEMO", "functions") != 0 {
		t.Fatalf("unit-keyed pipeline shared across units, stats:\n%s", stats)
	}
}

// TestMemoInvalidation: a different spec, or a memo constructed under
// different versions, never returns an entry.
func TestMemoInvalidation(t *testing.T) {
	m := memo.New(0, "v1")
	u1 := parse(t, srcTwo)
	if _, err := newManager(t, "REDTEST", m).Run(u1); err != nil {
		t.Fatal(err)
	}
	// Same memo, different spec: miss.
	u2 := parse(t, srcTwo)
	stats, err := newManager(t, "REDMOV", m).Run(u2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Get("MEMO", "functions") != 0 {
		t.Fatal("different spec hit the memo")
	}
	// Same spec, different version salt: miss.
	m2 := memo.New(0, "v2")
	u3 := parse(t, srcTwo)
	if _, err := newManager(t, "REDTEST", m2).Run(u3); err != nil {
		t.Fatal(err)
	}
	if h, _ := m2.Counters(); h != 0 {
		t.Fatal("version-salted memo hit entries from another salt")
	}
}

// TestMemoRepeatFastPath: repeated runs over the same unedited unit
// through one manager return identical stats without touching the
// unit; an edit defeats the fast path.
func TestMemoRepeatFastPath(t *testing.T) {
	m := memo.New(0, "v1")
	mgr := newManager(t, "REDTEST:REDMOV", m)
	u := parse(t, srcTwo)
	if _, err := mgr.Run(u); err != nil { // cold: optimizes + fills
		t.Fatal(err)
	}
	s2, err := mgr.Run(u) // fixpoint: fills identity entries, remembers
	if err != nil {
		t.Fatal(err)
	}
	want := u.String()
	verBefore := u.List.Version()
	s3, err := mgr.Run(u) // fast path: no re-fingerprinting, no edits
	if err != nil {
		t.Fatal(err)
	}
	if u.List.Version() != verBefore {
		t.Fatal("fast-path run mutated the unit")
	}
	if u.String() != want {
		t.Fatal("fast-path run changed the output")
	}
	if s2.String() != s3.String() {
		t.Fatalf("fast-path stats differ:\n%s\nvs\n%s", s2, s3)
	}
	// An edit bumps the list version and must defeat both the fast
	// path and the content lookup (the edited content has no entry).
	n := ir.DirectiveNode(".p2align", "4")
	u.List.InsertBefore(n, u.List.Back())
	s4, err := mgr.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Get("MEMO", "functions") != 0 {
		t.Fatal("edited unit still answered from the memo")
	}
	if !strings.Contains(u.String(), ".p2align") {
		t.Fatal("edit lost after post-edit run")
	}
}

// TestMemoBypasses: hooks, effectful passes and dump options disable
// memoization.
func TestMemoBypasses(t *testing.T) {
	type hook struct{ pass.Hooks }
	cases := []struct {
		name string
		prep func(mgr *pass.Manager)
		spec string
	}{
		{"hook", func(mgr *pass.Manager) { mgr.Hook = hook{} }, "REDTEST"},
		{"effectful", nil, "REDTEST:CHECK"},
		{"dump", nil, "REDTEST=dump_after[/dev/null]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := memo.New(0, "v1")
			for i := 0; i < 2; i++ {
				u := parse(t, srcTwo)
				mgr := newManager(t, tc.spec, m)
				if tc.prep != nil {
					tc.prep(mgr)
				}
				if _, err := mgr.Run(u); err != nil {
					t.Fatal(err)
				}
			}
			if mm := m.Metrics(); mm.Hits != 0 || mm.Stores != 0 {
				t.Fatalf("memo engaged for %s: %+v", tc.name, mm)
			}
		})
	}
}

// TestMemoEviction: the LRU bound holds and evicted entries miss.
func TestMemoEviction(t *testing.T) {
	m := memo.New(1, "v1")
	u := parse(t, srcTwo)
	if _, err := newManager(t, "REDTEST", m).Run(u); err != nil {
		t.Fatal(err)
	}
	mm := m.Metrics()
	if mm.Entries > 1 {
		t.Fatalf("LRU bound violated: %+v", mm)
	}
	if mm.Evictions == 0 {
		t.Fatalf("expected evictions filling 2 functions into 1 slot: %+v", mm)
	}
	// With one of the two functions evicted, the unit cannot fully hit.
	u2 := parse(t, srcTwo)
	stats, err := newManager(t, "REDTEST", m).Run(u2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Get("MEMO", "functions") != 0 {
		t.Fatal("partially evicted unit still hit")
	}
}
