package memo_test

import (
	"os"
	"path/filepath"
	"testing"

	"mao/internal/asm"
	"mao/internal/corpus"
	"mao/internal/memo"
	"mao/internal/pass"
)

// The acceptance criterion for memoization: across every corpus
// fixture, a representative pipeline matrix and worker counts 1 and
// 8, a memoized run — both the run that fills the memo and the run
// answered from it — emits assembly byte-identical to a cold,
// unmemoized run.

var diffSpecs = []string{
	"",                   // parse + canonical re-emission
	"REDTEST:REDMOV",     // local keys (ParallelSafe only)
	"DCE:CONSTFOLD",      // local keys
	"SCHED",              // local keys
	"LOOP16",             // unit keys (whole-unit layout)
	"LOOP16:LSD:BRALIGN", // unit keys, the BENCH_memo pipeline
}

func diffSources(t *testing.T) map[string]string {
	t.Helper()
	fixtures, err := filepath.Glob(filepath.Join("..", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	out := make(map[string]string)
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(fx)] = string(b)
	}
	// One generated mid-size workload on top of the checked-in corpus.
	w := corpus.Spec2000Int(0.1)[0]
	out[w.Name+".gen.s"] = corpus.Generate(w)
	return out
}

func TestMemoDifferentialCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the corpus × spec × workers matrix three times over")
	}
	sources := diffSources(t)
	for _, spec := range diffSpecs {
		for _, workers := range []int{1, 8} {
			m := memo.New(0, "diff")
			for name, src := range sources {
				cold, err := asm.ParseString(name, src)
				if err != nil {
					t.Fatal(err)
				}
				mgrCold, err := pass.NewManager(spec)
				if err != nil {
					t.Fatal(err)
				}
				mgrCold.Workers = workers
				if _, err := mgrCold.Run(cold); err != nil {
					t.Fatalf("%s spec=%q: cold run: %v", name, spec, err)
				}
				want := cold.String()

				run := func(label string) *pass.Stats {
					u, err := asm.ParseString(name, src)
					if err != nil {
						t.Fatal(err)
					}
					mgr, err := pass.NewManager(spec)
					if err != nil {
						t.Fatal(err)
					}
					mgr.Workers = workers
					mgr.Memo = m
					stats, err := mgr.Run(u)
					if err != nil {
						t.Fatalf("%s spec=%q workers=%d: %s run: %v",
							name, spec, workers, label, err)
					}
					if got := u.String(); got != want {
						t.Errorf("%s spec=%q workers=%d: %s run differs from cold run",
							name, spec, workers, label)
					}
					return stats
				}
				run("fill")
				stats := run("warm")
				if fns := len(cold.Functions()); fns > 0 &&
					stats.Get("MEMO", "functions") != fns {
					t.Errorf("%s spec=%q workers=%d: warm run did not hit (%d of %d functions), stats:\n%s",
						name, spec, workers, stats.Get("MEMO", "functions"), fns, stats)
				}
			}
		}
	}
}
