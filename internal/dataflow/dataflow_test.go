package dataflow

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/cfg"
	"mao/internal/ir"
	"mao/internal/x86"
)

func buildGraph(t *testing.T, body string) (*ir.Function, *cfg.Graph) {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := u.Function("f")
	return f, cfg.Build(f)
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s.Add(x86.EAX)
	if !s.Has(x86.RAX) || !s.Has(x86.AL) {
		t.Error("family aliasing broken in RegSet")
	}
	if s.Has(x86.RBX) {
		t.Error("spurious member")
	}
	s.Add(x86.XMM5)
	if !s.Has(x86.XMM5) || s.Has(x86.XMM4) {
		t.Error("xmm bits broken")
	}
	s.Remove(x86.RAX)
	if s.Has(x86.EAX) {
		t.Error("Remove failed")
	}
}

func TestInstDefUse(t *testing.T) {
	u, err := asm.ParseString("t.s", "addl %ebx, %ecx")
	if err != nil {
		t.Fatal(err)
	}
	in := u.List.Front().Inst
	d := InstDefUse(in)
	if !d.Uses.Has(x86.EBX) || !d.Uses.Has(x86.ECX) || !d.Defs.Has(x86.ECX) {
		t.Errorf("add def/use wrong: %+v", d)
	}
	if d.FlagDefs != x86.AllFlags || d.FlagUses != 0 {
		t.Errorf("add flags wrong: %+v", d)
	}
}

func TestPartialWriteDoesNotKill(t *testing.T) {
	u, err := asm.ParseString("t.s", "movb $1, %al")
	if err != nil {
		t.Fatal(err)
	}
	d := InstDefUse(u.List.Front().Inst)
	// The byte write must merge, so rax counts as used (upper bits
	// survive) even though it is also defined.
	if !d.Uses.Has(x86.RAX) {
		t.Error("partial write must keep the family alive")
	}
}

func TestLiveness(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	movl $2, %ebx
	addl %ebx, %eax
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// After "movl $1, %eax": eax live (used by add), ebx not yet.
	if !l.LiveOut(insts[0]).Has(x86.EAX) {
		t.Error("eax must be live after its def")
	}
	// After the add, ret is a barrier: everything live.
	if !l.LiveOut(insts[2]).Has(x86.EAX) {
		t.Error("barrier must keep registers live")
	}
}

func TestDeadDef(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %ecx
	movl $2, %ecx
	movl %ecx, %eax
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// Between the two defs of ecx the first value is dead... but the
	// live-out of inst0 includes ecx only if some path reads it before
	// a redefinition. It does not.
	if l.LiveOut(insts[0]).Has(x86.ECX) {
		t.Error("overwritten value must be dead")
	}
	if !l.LiveOut(insts[1]).Has(x86.ECX) {
		t.Error("used value must be live")
	}
}

func TestFlagsLiveness(t *testing.T) {
	f, g := buildGraph(t, `
	subl $16, %r15d
	testl %r15d, %r15d
	jne .Lx
	movl $1, %eax
.Lx:
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// After the test, ZF is live (jne reads it).
	if l.FlagsLiveOut(insts[1])&x86.ZF == 0 {
		t.Error("ZF must be live after test (jne follows)")
	}
	// After the jne, no flags are live (nothing reads them; the ret
	// barrier clobbers rather than reads flags).
	if l.FlagsLiveOut(insts[2]) != 0 {
		t.Errorf("flags live after jne = %v, want none", l.FlagsLiveOut(insts[2]))
	}
}

func TestFlagsDeadAcrossCall(t *testing.T) {
	f, g := buildGraph(t, `
	cmpl $0, %edi
	call g
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	if l.FlagsLiveOut(insts[0]) != 0 {
		t.Error("flags must be dead before a call (ABI)")
	}
}

func TestLivenessLoop(t *testing.T) {
	f, g := buildGraph(t, `
	xorl %eax, %eax
	xorl %ecx, %ecx
.Ltop:
	addl %ecx, %eax
	addl $1, %ecx
	cmpl $10, %ecx
	jl .Ltop
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// ecx is live around the back edge: after "addl %ecx, %eax" it
	// must still be live (read next iteration and below).
	if !l.LiveOut(insts[2]).Has(x86.ECX) {
		t.Error("loop-carried register must be live across the back edge")
	}
	if !l.LiveOut(insts[5]).Has(x86.EAX) {
		t.Error("accumulator must stay live at loop exit (ret barrier)")
	}
}

func TestReachingDefs(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	testl %edi, %edi
	je .Lelse
	movl $2, %eax
	jmp .Lend
.Lelse:
	movl $3, %eax
.Lend:
	movl %eax, %ebx
	ret
`)
	r := Reach(g)
	insts := f.Instructions()
	use := insts[6] // movl %eax, %ebx
	defs := r.DefsReaching(use, x86.EAX)
	if len(defs) != 2 {
		t.Fatalf("defs reaching merge = %d, want 2", len(defs))
	}
	if r.UniqueDefReaching(use, x86.EAX) != nil {
		t.Error("merge point must not have a unique def")
	}
	// Inside the then-branch the $2 def is unique... check at jmp? The
	// use at "jmp .Lend" has no eax use, so check the reach-in of the
	// final use for ebx instead: none defined.
	if got := r.DefsReaching(use, x86.EBX); len(got) != 0 {
		t.Errorf("ebx has %d reaching defs, want 0", len(got))
	}
}

func TestReachingDefsKill(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	movl $2, %eax
	movl %eax, %ebx
	ret
`)
	r := Reach(g)
	insts := f.Instructions()
	def := r.UniqueDefReaching(insts[2], x86.EAX)
	if def != insts[1] {
		t.Errorf("unique def = %v, want the second mov", def)
	}
}

func TestReachingDefsBarrier(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	call g
	movl %eax, %ebx
	ret
`)
	r := Reach(g)
	insts := f.Instructions()
	defs := r.DefsReaching(insts[2], x86.EAX)
	// The call defines everything; the mov's def must be killed, and
	// the call itself is the reaching def.
	if len(defs) != 1 || defs[0] != insts[1] {
		t.Errorf("defs across call = %v", defs)
	}
}

func TestRegSetHighRegisters(t *testing.T) {
	var s RegSet
	// High-byte and REX-byte names alias their 64-bit family.
	s.Add(x86.AH)
	if !s.Has(x86.RAX) || !s.Has(x86.AL) {
		t.Error("ah must alias the rax family")
	}
	s.Add(x86.SPL)
	if !s.Has(x86.RSP) {
		t.Error("spl must alias the rsp family")
	}
	s.Add(x86.R15B)
	if !s.Has(x86.R15) || s.Has(x86.R14) {
		t.Error("r15b must alias r15 and nothing else")
	}
	// The last modeled xmm family must fit the bitset.
	s.Add(x86.XMM15)
	if !s.Has(x86.XMM15) || s.Has(x86.XMM14) {
		t.Error("xmm15 bit wrong")
	}
}

func TestHighBytePartialWrite(t *testing.T) {
	for _, src := range []string{"movb $1, %ah", "movw $1, %ax"} {
		u, err := asm.ParseString("t.s", src)
		if err != nil {
			t.Fatal(err)
		}
		d := InstDefUse(u.List.Front().Inst)
		// Byte and word writes merge into the family: the old bits
		// survive, so the family must count as used as well as defined.
		if !d.Defs.Has(x86.RAX) || !d.Uses.Has(x86.RAX) {
			t.Errorf("%s: partial write def/use wrong: %+v", src, d)
		}
	}
}

func TestFlagOnlyInstructions(t *testing.T) {
	u, err := asm.ParseString("t.s", "setg %al")
	if err != nil {
		t.Fatal(err)
	}
	d := InstDefUse(u.List.Front().Inst)
	if d.FlagUses&(x86.ZF|x86.SF|x86.OF) != x86.ZF|x86.SF|x86.OF {
		t.Errorf("setg flag uses = %v", d.FlagUses)
	}
	if !d.Defs.Has(x86.RAX) {
		t.Error("setg must define its destination byte's family")
	}

	// Shifts leave OF/AF undefined: undefined counts as a def for
	// liveness (the old value is destroyed).
	u, err = asm.ParseString("t.s", "shll $3, %eax")
	if err != nil {
		t.Fatal(err)
	}
	d = InstDefUse(u.List.Front().Inst)
	if d.FlagDefs&x86.OF == 0 || d.FlagDefs&x86.CF == 0 {
		t.Errorf("shl flag defs = %v, want CF and OF covered", d.FlagDefs)
	}
}

func TestFlagsLiveOutDiamond(t *testing.T) {
	// Different flag consumers on each arm of a diamond: the flags
	// live after the cmp are the union over both paths.
	f, g := buildGraph(t, `
	cmpl $1, %edi
	je .La
	setg %al
	ret
.La:
	setb %al
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	got := l.FlagsLiveOut(insts[0])
	want := x86.ZF | x86.SF | x86.OF | x86.CF
	if got&want != want {
		t.Errorf("flags live after cmp = %v, want at least %v", got, want)
	}
	// After the je only the fallthrough consumer's flags remain live on
	// that edge, plus .La's via the taken edge is gone — the je node's
	// live-out is the union of its successors' live-ins: setg needs
	// ZF|SF|OF, setb needs CF.
	if out := l.FlagsLiveOut(insts[1]); out&want != want {
		t.Errorf("flags live after je = %v, want %v", out, want)
	}
}

func TestBlockLiveIn(t *testing.T) {
	f, g := buildGraph(t, `
	jne .Lx
	addl %ebx, %eax
.Lx:
	ret
`)
	_ = f
	l := Live(g)
	entry := g.Blocks[0]
	// The entry jne reads ZF before anything defines it.
	if l.BlockFlagsIn(entry)&x86.ZF == 0 {
		t.Error("ZF must be live into entry (jne reads it undefined)")
	}
	// ebx is read on the fallthrough path with no prior def.
	if !l.BlockLiveIn(entry).Has(x86.RBX) {
		t.Error("rbx must be live into entry")
	}
	// Out-of-range blocks return zero values rather than panicking.
	fake := &cfg.BasicBlock{Index: 99}
	var zero RegSet
	if l.BlockLiveIn(fake) != zero || l.BlockFlagsIn(fake) != 0 {
		t.Error("out-of-range block must yield zero sets")
	}
}

func TestLivenessLoopFlags(t *testing.T) {
	// A flag set inside the loop and consumed by the back-edge jcc:
	// live across the body tail, dead before the cmp defines it.
	f, g := buildGraph(t, `
	xorl %ecx, %ecx
.Ltop:
	addl $1, %ecx
	cmpl $10, %ecx
	jl .Ltop
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	if l.FlagsLiveOut(insts[2])&(x86.SF|x86.OF) == 0 {
		t.Error("cmp flags must be live before jl")
	}
	if l.FlagsLiveOut(insts[0]) != 0 {
		t.Errorf("no flags should be live after the xor init, got %v",
			l.FlagsLiveOut(insts[0]))
	}
}
