package dataflow

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/cfg"
	"mao/internal/ir"
	"mao/internal/x86"
)

func buildGraph(t *testing.T, body string) (*ir.Function, *cfg.Graph) {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := u.Function("f")
	return f, cfg.Build(f)
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s.Add(x86.EAX)
	if !s.Has(x86.RAX) || !s.Has(x86.AL) {
		t.Error("family aliasing broken in RegSet")
	}
	if s.Has(x86.RBX) {
		t.Error("spurious member")
	}
	s.Add(x86.XMM5)
	if !s.Has(x86.XMM5) || s.Has(x86.XMM4) {
		t.Error("xmm bits broken")
	}
	s.Remove(x86.RAX)
	if s.Has(x86.EAX) {
		t.Error("Remove failed")
	}
}

func TestInstDefUse(t *testing.T) {
	u, err := asm.ParseString("t.s", "addl %ebx, %ecx")
	if err != nil {
		t.Fatal(err)
	}
	in := u.List.Front().Inst
	d := InstDefUse(in)
	if !d.Uses.Has(x86.EBX) || !d.Uses.Has(x86.ECX) || !d.Defs.Has(x86.ECX) {
		t.Errorf("add def/use wrong: %+v", d)
	}
	if d.FlagDefs != x86.AllFlags || d.FlagUses != 0 {
		t.Errorf("add flags wrong: %+v", d)
	}
}

func TestPartialWriteDoesNotKill(t *testing.T) {
	u, err := asm.ParseString("t.s", "movb $1, %al")
	if err != nil {
		t.Fatal(err)
	}
	d := InstDefUse(u.List.Front().Inst)
	// The byte write must merge, so rax counts as used (upper bits
	// survive) even though it is also defined.
	if !d.Uses.Has(x86.RAX) {
		t.Error("partial write must keep the family alive")
	}
}

func TestLiveness(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	movl $2, %ebx
	addl %ebx, %eax
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// After "movl $1, %eax": eax live (used by add), ebx not yet.
	if !l.LiveOut(insts[0]).Has(x86.EAX) {
		t.Error("eax must be live after its def")
	}
	// After the add, ret is a barrier: everything live.
	if !l.LiveOut(insts[2]).Has(x86.EAX) {
		t.Error("barrier must keep registers live")
	}
}

func TestDeadDef(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %ecx
	movl $2, %ecx
	movl %ecx, %eax
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// Between the two defs of ecx the first value is dead... but the
	// live-out of inst0 includes ecx only if some path reads it before
	// a redefinition. It does not.
	if l.LiveOut(insts[0]).Has(x86.ECX) {
		t.Error("overwritten value must be dead")
	}
	if !l.LiveOut(insts[1]).Has(x86.ECX) {
		t.Error("used value must be live")
	}
}

func TestFlagsLiveness(t *testing.T) {
	f, g := buildGraph(t, `
	subl $16, %r15d
	testl %r15d, %r15d
	jne .Lx
	movl $1, %eax
.Lx:
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// After the test, ZF is live (jne reads it).
	if l.FlagsLiveOut(insts[1])&x86.ZF == 0 {
		t.Error("ZF must be live after test (jne follows)")
	}
	// After the jne, no flags are live (nothing reads them; the ret
	// barrier clobbers rather than reads flags).
	if l.FlagsLiveOut(insts[2]) != 0 {
		t.Errorf("flags live after jne = %v, want none", l.FlagsLiveOut(insts[2]))
	}
}

func TestFlagsDeadAcrossCall(t *testing.T) {
	f, g := buildGraph(t, `
	cmpl $0, %edi
	call g
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	if l.FlagsLiveOut(insts[0]) != 0 {
		t.Error("flags must be dead before a call (ABI)")
	}
}

func TestLivenessLoop(t *testing.T) {
	f, g := buildGraph(t, `
	xorl %eax, %eax
	xorl %ecx, %ecx
.Ltop:
	addl %ecx, %eax
	addl $1, %ecx
	cmpl $10, %ecx
	jl .Ltop
	ret
`)
	l := Live(g)
	insts := f.Instructions()
	// ecx is live around the back edge: after "addl %ecx, %eax" it
	// must still be live (read next iteration and below).
	if !l.LiveOut(insts[2]).Has(x86.ECX) {
		t.Error("loop-carried register must be live across the back edge")
	}
	if !l.LiveOut(insts[5]).Has(x86.EAX) {
		t.Error("accumulator must stay live at loop exit (ret barrier)")
	}
}

func TestReachingDefs(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	testl %edi, %edi
	je .Lelse
	movl $2, %eax
	jmp .Lend
.Lelse:
	movl $3, %eax
.Lend:
	movl %eax, %ebx
	ret
`)
	r := Reach(g)
	insts := f.Instructions()
	use := insts[6] // movl %eax, %ebx
	defs := r.DefsReaching(use, x86.EAX)
	if len(defs) != 2 {
		t.Fatalf("defs reaching merge = %d, want 2", len(defs))
	}
	if r.UniqueDefReaching(use, x86.EAX) != nil {
		t.Error("merge point must not have a unique def")
	}
	// Inside the then-branch the $2 def is unique... check at jmp? The
	// use at "jmp .Lend" has no eax use, so check the reach-in of the
	// final use for ebx instead: none defined.
	if got := r.DefsReaching(use, x86.EBX); len(got) != 0 {
		t.Errorf("ebx has %d reaching defs, want 0", len(got))
	}
}

func TestReachingDefsKill(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	movl $2, %eax
	movl %eax, %ebx
	ret
`)
	r := Reach(g)
	insts := f.Instructions()
	def := r.UniqueDefReaching(insts[2], x86.EAX)
	if def != insts[1] {
		t.Errorf("unique def = %v, want the second mov", def)
	}
}

func TestReachingDefsBarrier(t *testing.T) {
	f, g := buildGraph(t, `
	movl $1, %eax
	call g
	movl %eax, %ebx
	ret
`)
	r := Reach(g)
	insts := f.Instructions()
	defs := r.DefsReaching(insts[2], x86.EAX)
	// The call defines everything; the mov's def must be killed, and
	// the call itself is the reaching def.
	if len(defs) != 1 || defs[0] != insts[1] {
		t.Errorf("defs across call = %v", defs)
	}
}
