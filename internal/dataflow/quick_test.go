package dataflow

import (
	"testing"
	"testing/quick"

	"mao/internal/x86"
)

// TestRegSetProperties: set algebra over register families.
func TestRegSetProperties(t *testing.T) {
	regs := []x86.Reg{x86.RAX, x86.EAX, x86.AX, x86.AL, x86.AH, x86.RBX,
		x86.R8, x86.R8D, x86.R15B, x86.XMM0, x86.XMM15, x86.ESI}

	// Add/Has respect family aliasing.
	addHas := func(i, j uint8) bool {
		a := regs[int(i)%len(regs)]
		b := regs[int(j)%len(regs)]
		var s RegSet
		s.Add(a)
		if a.Family() == b.Family() {
			return s.Has(b)
		}
		return !s.Has(b)
	}
	if err := quick.Check(addHas, nil); err != nil {
		t.Error(err)
	}

	// Remove undoes Add.
	addRemove := func(i uint8) bool {
		r := regs[int(i)%len(regs)]
		var s RegSet
		s.Add(r)
		s.Remove(r)
		return s == 0
	}
	if err := quick.Check(addRemove, nil); err != nil {
		t.Error(err)
	}

	// Union is commutative and idempotent.
	union := func(a, b uint64) bool {
		x, y := RegSet(a)&allRegs, RegSet(b)&allRegs
		return x.Union(y) == y.Union(x) && x.Union(x) == x
	}
	if err := quick.Check(union, nil); err != nil {
		t.Error(err)
	}
}

// TestBitvecProperties: the packed bit vector behind reaching defs.
func TestBitvecProperties(t *testing.T) {
	setHasClear := func(idxs []uint16) bool {
		v := newBitvec(1 << 16)
		seen := map[int]bool{}
		for _, raw := range idxs {
			i := int(raw)
			v.set(i)
			seen[i] = true
		}
		for _, raw := range idxs {
			if !v.has(int(raw)) {
				return false
			}
		}
		for _, raw := range idxs {
			v.clear(int(raw))
		}
		for _, raw := range idxs {
			if v.has(int(raw)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(setHasClear, nil); err != nil {
		t.Error(err)
	}

	// or() is monotone and reports change correctly.
	orMonotone := func(a, b []uint64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x := bitvec(append([]uint64(nil), a[:n]...))
		y := bitvec(b[:n])
		before := x.clone()
		changed := x.or(y)
		for i := range x {
			if x[i] != before[i]|y[i] {
				return false
			}
		}
		// changed iff some word grew.
		grew := false
		for i := range x {
			if x[i] != before[i] {
				grew = true
			}
		}
		return changed == grew
	}
	if err := quick.Check(orMonotone, nil); err != nil {
		t.Error(err)
	}
}
