// Package dataflow implements the register-level data-flow analyses
// MAO offers its passes: liveness and reaching definitions, plus
// bit-precise condition-code liveness. There is no alias or points-to
// analysis — as in the original system, memory is modeled as a single
// location and calls as conservative barriers, which is enough to
// solve most problems passes encounter on compiler-generated assembly.
package dataflow

import (
	"mao/internal/cfg"
	"mao/internal/ir"
	"mao/internal/x86"
	"mao/internal/x86/sidefx"
)

// RegSet is a bit set over register families: bits 0–15 are the GPR
// families rax..r15, bits 16–31 are xmm0..xmm15.
type RegSet uint64

const allRegs RegSet = 0xFFFFFFFF

func regBit(r x86.Reg) (int, bool) {
	f := r.Family()
	switch {
	case f >= x86.RAX && f <= x86.R15:
		return int(f - x86.RAX), true
	case f.IsXMM():
		return 16 + f.Num(), true
	}
	return 0, false
}

// Add inserts the family of r into the set.
func (s *RegSet) Add(r x86.Reg) {
	if b, ok := regBit(r); ok {
		*s |= 1 << b
	}
}

// Remove deletes the family of r from the set.
func (s *RegSet) Remove(r x86.Reg) {
	if b, ok := regBit(r); ok {
		*s &^= 1 << b
	}
}

// Has reports whether the family of r is in the set.
func (s RegSet) Has(r x86.Reg) bool {
	b, ok := regBit(r)
	return ok && s&(1<<b) != 0
}

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// DefUse is the data-flow view of one instruction: the register
// families and flag bits it uses and defines.
type DefUse struct {
	Uses RegSet
	Defs RegSet

	FlagUses x86.Flags
	FlagDefs x86.Flags // set or clobbered (undefined counts as a def)

	MemUse  bool
	MemDef  bool
	Barrier bool
}

// InstDefUse computes the def/use sets of an instruction from the
// side-effect tables.
func InstDefUse(in *x86.Inst) DefUse {
	e := sidefx.InstEffects(in)
	var d DefUse
	for _, r := range e.RegsRead {
		d.Uses.Add(r)
	}
	for _, r := range e.RegsWritten {
		d.Defs.Add(r)
	}
	d.FlagUses = e.FlagsRead
	d.FlagDefs = e.FlagsSet | e.FlagsUndef
	d.MemUse = e.MemRead
	d.MemDef = e.MemWrite
	d.Barrier = e.Barrier
	if d.Barrier {
		// Calls and returns conservatively use and define every
		// register and all of memory. Flags, however, are dead across
		// calls under the System V ABI: the callee neither reads nor
		// preserves the caller's flags, so a barrier clobbers them.
		d.Uses = allRegs
		d.Defs = allRegs
		d.MemUse, d.MemDef = true, true
		d.FlagDefs = x86.AllFlags
	}

	// A sub-64-bit write does not fully define its family (the upper
	// bits survive), except that 32-bit writes zero-extend. For
	// liveness, a partial def must not kill the family; drop partial
	// defs from Defs but keep them as uses of the old value.
	if len(in.Args) > 0 && !d.Barrier {
		for _, r := range e.RegsWritten {
			if r.IsGPR() && (r.Width() == x86.W8 || r.Width() == x86.W16) {
				d.Uses.Add(r) // merge with surviving upper bits
			}
		}
	}
	return d
}

// Liveness holds per-node live-out register and flag sets for one
// function CFG.
type Liveness struct {
	liveOut  map[*ir.Node]RegSet
	flagsOut map[*ir.Node]x86.Flags

	blockLiveIn  []RegSet
	blockFlagsIn []x86.Flags
}

// Live computes backward liveness over g. Values possibly live on
// function exit (return registers, callee-saved restores) are handled
// by treating ret as a barrier that uses everything.
//
// The fixpoint runs on per-block composite transfers — one (kill,
// gen) pair per block, precomputed from the per-instruction def/use
// sets — so each iteration is a handful of mask operations per block.
// The per-node live-out sets are filled in by one final backward walk.
func Live(g *cfg.Graph) *Liveness { return live(g, true) }

// LiveBlocks computes liveness at block boundaries only: BlockLiveIn
// and BlockFlagsIn are exact, but the per-node LiveOut/FlagsLiveOut
// maps are not filled and answer conservatively (everything live).
// Callers that never ask per-node questions — the verifier compares
// states at cut points, which are block boundaries — skip the final
// materialization walk, the dominant cost on large functions.
func LiveBlocks(g *cfg.Graph) *Liveness { return live(g, false) }

func live(g *cfg.Graph, fillNodes bool) *Liveness {
	l := &Liveness{}
	if fillNodes {
		l.liveOut = make(map[*ir.Node]RegSet)
		l.flagsOut = make(map[*ir.Node]x86.Flags)
	}

	nb := len(g.Blocks)
	blockLiveIn := make([]RegSet, nb)
	blockFlagsIn := make([]x86.Flags, nb)

	// Per-inst def/use, resolved once, and the per-block composition:
	// live-in = (live-out &^ kill) | gen. Prepending instruction f
	// (live = live&^Defs | Uses) to composite T gives kill' = kill |
	// Defs, gen' = (gen &^ Defs) | Uses.
	var du [][]DefUse
	if fillNodes {
		du = make([][]DefUse, nb)
	}
	killR := make([]RegSet, nb)
	genR := make([]RegSet, nb)
	killF := make([]x86.Flags, nb)
	genF := make([]x86.Flags, nb)
	for i, b := range g.Blocks {
		if fillNodes {
			du[i] = make([]DefUse, len(b.Insts))
		}
		for j := len(b.Insts) - 1; j >= 0; j-- {
			d := InstDefUse(b.Insts[j].Inst)
			if fillNodes {
				du[i][j] = d
			}
			killR[i] |= d.Defs
			genR[i] = genR[i]&^d.Defs | d.Uses
			killF[i] |= d.FlagDefs
			genF[i] = genF[i]&^d.FlagDefs | d.FlagUses
		}
	}

	changed := true
	for changed {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := g.Blocks[i]
			var live RegSet
			var flags x86.Flags
			for _, s := range b.Succs {
				live |= blockLiveIn[s.Index]
				flags |= blockFlagsIn[s.Index]
			}
			// An unresolved indirect branch can reach anywhere; stay
			// conservative.
			if term := b.Terminator(); term != nil && term.IsIndirectBranch() && len(b.Succs) == 0 {
				live = allRegs
				flags = x86.AllFlags
			}
			live = live&^killR[i] | genR[i]
			flags = flags&^killF[i] | genF[i]
			if live != blockLiveIn[i] || flags != blockFlagsIn[i] {
				blockLiveIn[i] = live
				blockFlagsIn[i] = flags
				changed = true
			}
		}
	}

	// Final walk: materialize per-node live-out from the solved block
	// boundaries.
	if !fillNodes {
		l.blockLiveIn = blockLiveIn
		l.blockFlagsIn = blockFlagsIn
		return l
	}
	for i, b := range g.Blocks {
		var live RegSet
		var flags x86.Flags
		for _, s := range b.Succs {
			live |= blockLiveIn[s.Index]
			flags |= blockFlagsIn[s.Index]
		}
		if term := b.Terminator(); term != nil && term.IsIndirectBranch() && len(b.Succs) == 0 {
			live = allRegs
			flags = x86.AllFlags
		}
		for j := len(b.Insts) - 1; j >= 0; j-- {
			n := b.Insts[j]
			l.liveOut[n] = live
			l.flagsOut[n] = flags
			d := &du[i][j]
			live = live&^d.Defs | d.Uses
			flags = flags&^d.FlagDefs | d.FlagUses
		}
	}
	l.blockLiveIn = blockLiveIn
	l.blockFlagsIn = blockFlagsIn
	return l
}

// LiveOut returns the registers live immediately after n. On a
// LiveBlocks result it answers conservatively: everything live.
func (l *Liveness) LiveOut(n *ir.Node) RegSet {
	if l.liveOut == nil {
		return allRegs
	}
	return l.liveOut[n]
}

// FlagsLiveOut returns the flag bits live immediately after n. On a
// LiveBlocks result it answers conservatively: all flags live.
func (l *Liveness) FlagsLiveOut(n *ir.Node) x86.Flags {
	if l.flagsOut == nil {
		return x86.AllFlags
	}
	return l.flagsOut[n]
}

// BlockLiveIn returns the registers live on entry to block b. For the
// entry block this is the set of registers some path may read before
// writing.
func (l *Liveness) BlockLiveIn(b *cfg.BasicBlock) RegSet {
	if b.Index >= len(l.blockLiveIn) {
		return 0
	}
	return l.blockLiveIn[b.Index]
}

// BlockFlagsIn returns the flag bits live on entry to block b. For the
// entry block a non-empty set means some path reads condition codes the
// function never defined — an invariant the static checker enforces.
func (l *Liveness) BlockFlagsIn(b *cfg.BasicBlock) x86.Flags {
	if b.Index >= len(l.blockFlagsIn) {
		return 0
	}
	return l.blockFlagsIn[b.Index]
}

// bitvec is a packed bit vector over definition-site indices.
type bitvec []uint64

func newBitvec(n int) bitvec { return make(bitvec, (n+63)/64) }

func (v bitvec) set(i int)      { v[i/64] |= 1 << (i % 64) }
func (v bitvec) clear(i int)    { v[i/64] &^= 1 << (i % 64) }
func (v bitvec) has(i int) bool { return v[i/64]&(1<<(i%64)) != 0 }

// or merges src into v, reporting change.
func (v bitvec) or(src bitvec) bool {
	changed := false
	for i, w := range src {
		if v[i]|w != v[i] {
			v[i] |= w
			changed = true
		}
	}
	return changed
}

func (v bitvec) clone() bitvec {
	cp := make(bitvec, len(v))
	copy(cp, v)
	return cp
}

// ReachingDefs maps each instruction and register family to the set
// of definitions that may reach it.
type ReachingDefs struct {
	defs    []*ir.Node          // all def sites, indexed
	defIdx  map[*ir.Node][]int  // def-site indices per node
	reachIn map[*ir.Node]bitvec // def bits reaching each node
	byReg   map[int]RegSet      // def index -> families defined
}

// Reach computes reaching definitions over g. Barriers (calls) define
// every register, so definitions never flow across them.
func Reach(g *cfg.Graph) *ReachingDefs {
	r := &ReachingDefs{
		defIdx:  make(map[*ir.Node][]int),
		reachIn: make(map[*ir.Node]bitvec),
	}

	// Enumerate definition sites.
	var defRegs []RegSet
	for _, b := range g.Blocks {
		for _, n := range b.Insts {
			d := InstDefUse(n.Inst)
			if d.Defs != 0 {
				r.defIdx[n] = append(r.defIdx[n], len(r.defs))
				r.defs = append(r.defs, n)
				defRegs = append(defRegs, d.Defs)
			}
		}
	}
	nd := len(r.defs)
	r.byReg = make(map[int]RegSet, nd)
	for i, s := range defRegs {
		r.byReg[i] = s
	}

	// killMask[S] would be per def-set; precompute per single family
	// slot (32 slots) the defs wholly contained in that slot set —
	// kills require defRegs[i] ⊆ killed set, so build per-slot masks
	// of defs whose families are a subset of any superset containing
	// the slot. For kill computation we use: def i killed by set S
	// iff defRegs[i] & S == defRegs[i]. Precompute per-slot "defs
	// mentioning slot" masks; a kill candidate must mention only
	// killed slots.
	slotDefs := make([]bitvec, 32)
	for s := 0; s < 32; s++ {
		slotDefs[s] = newBitvec(nd)
	}
	for i, regs := range defRegs {
		for s := 0; s < 32; s++ {
			if regs&(1<<s) != 0 {
				slotDefs[s].set(i)
			}
		}
	}
	// kills(S) = defs whose every slot is in S = union over slots in
	// S of slotDefs minus defs mentioning any slot outside S. Compute
	// on demand per distinct def set (few distinct sets in practice).
	killCache := make(map[RegSet]bitvec)
	kills := func(S RegSet) bitvec {
		if v, ok := killCache[S]; ok {
			return v
		}
		v := newBitvec(nd)
		for s := 0; s < 32; s++ {
			if S&(1<<s) != 0 {
				v.or(slotDefs[s])
			}
		}
		// Remove defs that also touch slots outside S.
		for i := 0; i < nd; i++ {
			if v.has(i) && defRegs[i]&^S != 0 {
				v.clear(i)
			}
		}
		killCache[S] = v
		return v
	}

	blockOut := make([]bitvec, len(g.Blocks))
	for i := range blockOut {
		blockOut[i] = newBitvec(nd)
	}

	changed := true
	for changed {
		changed = false
		for _, b := range g.Blocks {
			in := newBitvec(nd)
			for _, p := range b.Preds {
				in.or(blockOut[p.Index])
			}
			for _, n := range b.Insts {
				r.reachIn[n] = in.clone()

				d := InstDefUse(n.Inst)
				if d.Defs != 0 {
					k := kills(d.Defs)
					for i := range in {
						in[i] &^= k[i]
					}
					for _, idx := range r.defIdx[n] {
						in.set(idx)
					}
				}
			}
			if blockOut[b.Index].or(in) {
				changed = true
			}
		}
	}
	return r
}

// DefsReaching returns the definition sites of reg that may reach the
// use at n.
func (r *ReachingDefs) DefsReaching(n *ir.Node, reg x86.Reg) []*ir.Node {
	in := r.reachIn[n]
	var out []*ir.Node
	var want RegSet
	want.Add(reg)
	for i := range r.defs {
		if in.has(i) && r.byReg[i]&want != 0 {
			out = append(out, r.defs[i])
		}
	}
	return out
}

// UniqueDefReaching returns the single definition of reg reaching n,
// or nil when there are zero or several.
func (r *ReachingDefs) UniqueDefReaching(n *ir.Node, reg x86.Reg) *ir.Node {
	ds := r.DefsReaching(n, reg)
	if len(ds) == 1 {
		return ds[0]
	}
	return nil
}
