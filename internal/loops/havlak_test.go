package loops

import (
	"testing"

	"mao/internal/asm"
	"mao/internal/cfg"
	"mao/internal/ir"
)

func buildGraph(t *testing.T, body string) (*ir.Function, *cfg.Graph) {
	t.Helper()
	src := "\t.text\n\t.type f,@function\nf:\n" + body + "\t.size f,.-f\n"
	u, err := asm.ParseString("t.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := u.Function("f")
	return f, cfg.Build(f)
}

func TestNoLoops(t *testing.T) {
	_, g := buildGraph(t, "\tmovl $1, %eax\n\tret\n")
	lsg := Find(g)
	if len(lsg.Loops) != 0 {
		t.Errorf("found %d loops in straight-line code", len(lsg.Loops))
	}
}

func TestSimpleLoop(t *testing.T) {
	_, g := buildGraph(t, `
	xorl %eax, %eax
.Ltop:
	addl $1, %eax
	cmpl $10, %eax
	jl .Ltop
	ret
`)
	lsg := Find(g)
	if len(lsg.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(lsg.Loops))
	}
	l := lsg.Loops[0]
	if !l.Reducible {
		t.Error("natural loop must be reducible")
	}
	if l.Header == nil || l.Header.Label != ".Ltop" {
		t.Errorf("header = %v", l.Header)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
}

func TestSelfLoop(t *testing.T) {
	_, g := buildGraph(t, `
.Lspin:
	decl %edi
	jne .Lspin
	ret
`)
	lsg := Find(g)
	if len(lsg.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(lsg.Loops))
	}
	if !lsg.Loops[0].Reducible {
		t.Error("self loop must be reducible")
	}
}

func TestNestedLoops(t *testing.T) {
	_, g := buildGraph(t, `
	xorl %eax, %eax
	xorl %ecx, %ecx
.Louter:
	xorl %edx, %edx
.Linner:
	addl $1, %eax
	addl $1, %edx
	cmpl $3, %edx
	jl .Linner
	addl $1, %ecx
	cmpl $5, %ecx
	jl .Louter
	ret
`)
	lsg := Find(g)
	if len(lsg.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(lsg.Loops))
	}
	var outer, inner *Loop
	for _, l := range lsg.Loops {
		switch l.Header.Label {
		case ".Louter":
			outer = l
		case ".Linner":
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("loop headers not identified")
	}
	if inner.Parent != outer {
		t.Error("inner loop must nest inside outer")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", outer.Depth, inner.Depth)
	}
	if got := lsg.InnerLoops(); len(got) != 1 || got[0] != inner {
		t.Error("InnerLoops must return only the innermost loop")
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop must contain the inner header transitively")
	}
}

// TestIrreducible builds the classic two-entry loop:
//
//	entry -> A -> B -> A (cycle), entry -> B (second entry)
func TestIrreducible(t *testing.T) {
	_, g := buildGraph(t, `
	testl %edi, %edi
	jne .Lb
.La:
	decl %edi
	testl %esi, %esi
	jne .Lb
	ret
.Lb:
	incl %esi
	cmpl $100, %esi
	jl .La
	ret
`)
	lsg := Find(g)
	if len(lsg.Loops) == 0 {
		t.Fatal("irreducible region not detected as a loop")
	}
	var sawIrreducible bool
	for _, l := range lsg.Loops {
		if !l.Reducible {
			sawIrreducible = true
		}
	}
	if !sawIrreducible {
		t.Error("expected an irreducible loop in two-entry cycle")
	}
}

func TestTwoDeepShortLoops(t *testing.T) {
	// The paper's branch-alignment scenario: a two-deep nest of two
	// short-running loops with back branches near each other.
	_, g := buildGraph(t, `
.Louter:
	movl $0, %edx
.Linner:
	addl $1, %eax
	addl $2, %ebx
	decl %edx
	je .Linner
	decl %ecx
	je .Louter
	ret
`)
	lsg := Find(g)
	if len(lsg.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(lsg.Loops))
	}
}

func TestLoopOf(t *testing.T) {
	_, g := buildGraph(t, `
.Ltop:
	addl $1, %eax
	cmpl $10, %eax
	jl .Ltop
	ret
`)
	lsg := Find(g)
	top := g.BlockByLabel(".Ltop")
	if lsg.LoopOf(top) == nil {
		t.Error("loop header must map to its loop")
	}
	// The exit block (ret) is not in the loop.
	exit := g.Blocks[len(g.Blocks)-1]
	if lsg.LoopOf(exit) != nil {
		t.Error("exit block must not be in the loop")
	}
}

func TestMultipleDisjointLoops(t *testing.T) {
	_, g := buildGraph(t, `
.L1:
	decl %eax
	jne .L1
.L2:
	decl %ebx
	jne .L2
	ret
`)
	lsg := Find(g)
	if len(lsg.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(lsg.Loops))
	}
	for _, l := range lsg.Loops {
		if l.Depth != 1 || l.Parent != lsg.Root {
			t.Error("disjoint loops must both be top-level")
		}
	}
}
