// Package loops implements loop detection based on Havlak's algorithm
// ("Nesting of reducible and irreducible loops", TOPLAS 1997), as the
// original MAO does. It builds a hierarchical loop structure graph
// (LSG) representing the nesting relationships of a loop nest and
// distinguishes reducible from irreducible loops; passes decide for
// themselves how to proceed in the presence of irreducible ones.
package loops

import (
	"mao/internal/cfg"
)

// Loop is one node of the loop structure graph.
type Loop struct {
	// Header is the loop-entry block (nil for the artificial root).
	Header *cfg.BasicBlock
	// Blocks are the basic blocks directly contained in this loop,
	// excluding blocks of nested loops (those belong to the children).
	// The header itself is included.
	Blocks []*cfg.BasicBlock

	Parent   *Loop
	Children []*Loop

	// Reducible is false for loops entered at more than one point.
	Reducible bool
	// Depth is the nesting depth; top-level loops have depth 1.
	Depth int
}

// Contains reports whether b is in the loop or any nested loop.
func (l *Loop) Contains(b *cfg.BasicBlock) bool {
	for _, x := range l.Blocks {
		if x == b {
			return true
		}
	}
	for _, c := range l.Children {
		if c.Contains(b) {
			return true
		}
	}
	return false
}

// AllBlocks returns the blocks of the loop including nested loops.
func (l *Loop) AllBlocks() []*cfg.BasicBlock {
	out := append([]*cfg.BasicBlock(nil), l.Blocks...)
	for _, c := range l.Children {
		out = append(out, c.AllBlocks()...)
	}
	return out
}

// LSG is the loop structure graph of one function.
type LSG struct {
	// Root is the artificial outermost region containing everything.
	Root *Loop
	// Loops lists every real loop (excluding Root), outermost first
	// within each DFS region.
	Loops []*Loop
}

// InnerLoops returns the loops with no children (the innermost ones).
func (g *LSG) InnerLoops() []*Loop {
	var out []*Loop
	for _, l := range g.Loops {
		if len(l.Children) == 0 {
			out = append(out, l)
		}
	}
	return out
}

// LoopOf returns the innermost loop containing b, or nil.
func (g *LSG) LoopOf(b *cfg.BasicBlock) *Loop {
	var best *Loop
	for _, l := range g.Loops {
		for _, x := range l.Blocks {
			if x == b && (best == nil || l.Depth > best.Depth) {
				best = l
			}
		}
	}
	return best
}

// block type classification used by the algorithm.
type bbKind uint8

const (
	bbNonHeader bbKind = iota
	bbReducible
	bbSelf
	bbIrreducible
	bbDead
)

// unionFind is the path-compressing disjoint-set forest Havlak uses to
// collapse inner loops into their headers.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(x, header int) { u.parent[u.find(x)] = u.find(header) }

// Find runs Havlak's algorithm over the CFG and returns the LSG.
func Find(g *cfg.Graph) *LSG {
	n := len(g.Blocks)
	lsg := &LSG{Root: &Loop{Reducible: true}}
	if n == 0 {
		return lsg
	}

	// Depth-first numbering from the entry block.
	number := make([]int, n) // block index -> preorder number (-1 unreached)
	last := make([]int, n)   // preorder -> highest preorder in subtree
	nodes := make([]*cfg.BasicBlock, 0, n)
	for i := range number {
		number[i] = -1
	}
	var dfs func(b *cfg.BasicBlock) int
	dfs = func(b *cfg.BasicBlock) int {
		num := len(nodes)
		number[b.Index] = num
		nodes = append(nodes, b)
		lastNum := num
		for _, s := range b.Succs {
			if number[s.Index] == -1 {
				lastNum = dfs(s)
			}
		}
		last[num] = lastNum
		return lastNum
	}
	dfs(g.Blocks[0])
	nn := len(nodes) // reachable node count

	isAncestor := func(w, v int) bool { return w <= v && v <= last[w] }

	// Edge classification.
	backPreds := make([][]int, nn)
	nonBackPreds := make([][]int, nn)
	for w := 0; w < nn; w++ {
		for _, p := range nodes[w].Preds {
			v := number[p.Index]
			if v == -1 {
				continue // predecessor unreachable from entry
			}
			if isAncestor(w, v) {
				backPreds[w] = append(backPreds[w], v)
			} else {
				nonBackPreds[w] = append(nonBackPreds[w], v)
			}
		}
	}

	kind := make([]bbKind, nn)
	uf := newUnionFind(nn)
	loopOfHeader := make(map[int]*Loop)

	// Process in reverse preorder: inner loops first.
	for w := nn - 1; w >= 0; w-- {
		var body []int // collapsed nodes forming the loop body (sans header)
		inBody := make(map[int]bool)
		kind[w] = bbNonHeader

		for _, v := range backPreds[w] {
			if v != w {
				root := uf.find(v)
				if !inBody[root] && root != w {
					inBody[root] = true
					body = append(body, root)
				}
			} else {
				kind[w] = bbSelf
			}
		}
		if len(body) > 0 {
			kind[w] = bbReducible
		}

		worklist := append([]int(nil), body...)
		for len(worklist) > 0 {
			x := worklist[len(worklist)-1]
			worklist = worklist[:len(worklist)-1]
			for _, y := range nonBackPreds[x] {
				yy := uf.find(y)
				if !isAncestor(w, yy) {
					// Entry from outside the DFS subtree: the loop is
					// entered at more than one point.
					kind[w] = bbIrreducible
					nonBackPreds[w] = append(nonBackPreds[w], yy)
				} else if yy != w && !inBody[yy] {
					inBody[yy] = true
					body = append(body, yy)
					worklist = append(worklist, yy)
				}
			}
		}

		if len(body) == 0 && kind[w] != bbSelf {
			continue
		}

		loop := &Loop{
			Header:    nodes[w],
			Reducible: kind[w] != bbIrreducible,
		}
		loop.Blocks = append(loop.Blocks, nodes[w])
		for _, x := range body {
			uf.union(x, w)
			if child, ok := loopOfHeader[x]; ok {
				child.Parent = loop
				loop.Children = append(loop.Children, child)
			} else {
				loop.Blocks = append(loop.Blocks, nodes[x])
			}
		}
		loopOfHeader[w] = loop
		lsg.Loops = append(lsg.Loops, loop)
	}

	// Attach top-level loops to the root and assign depths.
	for _, l := range lsg.Loops {
		if l.Parent == nil {
			l.Parent = lsg.Root
			lsg.Root.Children = append(lsg.Root.Children, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	setDepth(lsg.Root, 0)
	return lsg
}
