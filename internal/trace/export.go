package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSON exports the collector's spans as JSON lines, one span per
// line, in collection order. The stream is deterministic apart from
// the recorded times.
func WriteJSON(w io.Writer, c *Collector) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for _, s := range c.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one complete ("ph":"X") trace event in the Chrome
// trace-event JSON array format, loadable by chrome://tracing and
// Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports spans in Chrome trace-event format: a JSON
// array of complete events. Pipeline- and invocation-level spans land
// on tid 0 (the manager); function spans on tid worker+1, so the
// timeline shows the worker pool's actual occupancy.
func WriteChromeTrace(w io.Writer, c *Collector) error {
	spans := c.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		name := s.Ref.String()
		if name == "" {
			name = string(s.Kind)
		}
		if s.Function != "" {
			name += " " + s.Function
		}
		tid := 0
		if s.Kind == KindFunction {
			tid = s.Worker + 1
		}
		args := map[string]any{
			"kind":         string(s.Kind),
			"nodes_before": s.NodesBefore,
			"nodes_after":  s.NodesAfter,
			"changed":      s.Changed,
		}
		if s.Function != "" {
			args["function"] = s.Function
		}
		if len(s.Stats) > 0 {
			args["stats"] = s.Stats
		}
		if s.TraceID != "" {
			args["trace_id"] = s.TraceID
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  string(s.Kind),
			Ph:   "X",
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
		})
		events[len(events)-1].Args = args
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(events)
}

// summaryRow aggregates the spans of one invocation for WriteSummary.
type summaryRow struct {
	ref     Ref
	kind    Kind
	total   time.Duration
	funcs   int
	changed int
	delta   int
	stats   int
}

// WriteSummary renders the terminal timing table `mao -timings`
// prints: one row per pass invocation in pipeline order, with wall
// time, function count, how many regions changed, the IR-size delta
// and the total of the invocation's statistics counters.
func WriteSummary(w io.Writer, c *Collector) error {
	spans := c.Spans()
	rows := map[Ref]*summaryRow{}
	var order []Ref
	var pipeline time.Duration
	for _, s := range spans {
		if s.Kind == KindPipeline {
			pipeline += s.Dur
			continue
		}
		r, ok := rows[s.Ref]
		if !ok {
			r = &summaryRow{ref: s.Ref, kind: s.Kind}
			rows[s.Ref] = r
			order = append(order, s.Ref)
		}
		switch s.Kind {
		case KindInvocation:
			// The invocation span carries the authoritative wall time
			// and unit-level IR delta; function spans fill in detail.
			// Accumulating (not assigning) lets one collector aggregate
			// several pipeline runs (maobench -timings).
			r.total += s.Dur
			r.delta += s.NodesAfter - s.NodesBefore
			if s.Changed {
				r.changed++
			}
		case KindFunction:
			r.kind = KindFunction
			r.funcs++
			if s.Changed {
				r.changed++
			}
		}
		for _, v := range s.Stats {
			r.stats += v
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].Index < order[j].Index })

	fmt.Fprintf(w, "%-16s %12s %6s %8s %8s %8s\n",
		"PASS", "WALL", "FUNCS", "CHANGED", "ΔNODES", "COUNTS")
	for _, ref := range order {
		r := rows[ref]
		funcs := "-"
		changed := fmt.Sprintf("%d", 0)
		if r.funcs > 0 {
			funcs = fmt.Sprintf("%d", r.funcs)
			changed = fmt.Sprintf("%d", r.changed)
		} else if r.changed > 0 {
			changed = "1"
		}
		fmt.Fprintf(w, "%-16s %12s %6s %8s %+8d %8d\n",
			ref, r.total.Round(time.Microsecond), funcs, changed, r.delta, r.stats)
	}
	if pipeline > 0 {
		fmt.Fprintf(w, "%-16s %12s\n", "TOTAL", pipeline.Round(time.Microsecond))
	}
	return nil
}
