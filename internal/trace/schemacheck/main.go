// Schemacheck validates a JSON document against one of MAO's
// checked-in observability schemas (internal/trace/testdata). CI runs
// it over `mao --explain=json` output and Chrome trace exports so the
// formats cannot drift from their documented shape:
//
//	go run ./internal/trace/schemacheck -schema internal/trace/testdata/explain.schema.json explain.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mao/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schemacheck: ")
	schemaPath := flag.String("schema", "", "path to the schema file (required)")
	flag.Parse()
	if *schemaPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: schemacheck -schema schema.json doc.json [doc.json ...]")
		os.Exit(2)
	}
	schema, err := os.ReadFile(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	for _, path := range flag.Args() {
		doc, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.ValidateJSON(schema, doc); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: ok (%s)\n", path, *schemaPath)
	}
}
