package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// This file implements the minimal JSON-schema dialect MAO's CI uses
// to pin its observability artifacts: `mao --explain=json` documents
// and Chrome trace exports are validated against checked-in schema
// files (internal/trace/testdata/*.schema.json) so the formats cannot
// drift silently. The dialect is the subset the schemas need —
// type / required / properties / additionalProperties / items / enum —
// interpreted structurally; no third-party validator, no network.

// ValidateJSON checks a JSON document against a schema written in the
// supported dialect. It returns nil when the document conforms, or an
// error naming the first offending path.
func ValidateJSON(schema, doc []byte) error {
	var sch, val any
	if err := json.Unmarshal(schema, &sch); err != nil {
		return fmt.Errorf("schema: %w", err)
	}
	if err := json.Unmarshal(doc, &val); err != nil {
		return fmt.Errorf("document: %w", err)
	}
	return validate(sch, val, "$")
}

func validate(schema, val any, path string) error {
	sch, ok := schema.(map[string]any)
	if !ok {
		return fmt.Errorf("%s: schema node is not an object", path)
	}
	if t, ok := sch["type"].(string); ok {
		if err := checkType(t, val, path); err != nil {
			return err
		}
	}
	if enum, ok := sch["enum"].([]any); ok {
		found := false
		for _, e := range enum {
			if e == val {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: value %v not in enum %v", path, val, enum)
		}
	}
	switch v := val.(type) {
	case map[string]any:
		if req, ok := sch["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := v[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		props, _ := sch["properties"].(map[string]any)
		for name, pv := range v {
			psch, known := props[name]
			if !known {
				if add, ok := sch["additionalProperties"].(bool); ok && !add {
					return fmt.Errorf("%s: unexpected property %q", path, name)
				}
				continue
			}
			if err := validate(psch, pv, path+"."+name); err != nil {
				return err
			}
		}
	case []any:
		if items, ok := sch["items"]; ok {
			for i, e := range v {
				if err := validate(items, e, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkType(want string, val any, path string) error {
	ok := false
	switch want {
	case "object":
		_, ok = val.(map[string]any)
	case "array":
		_, ok = val.([]any)
	case "string":
		_, ok = val.(string)
	case "boolean":
		_, ok = val.(bool)
	case "number":
		_, ok = val.(float64)
	case "integer":
		if f, isNum := val.(float64); isNum {
			ok = f == math.Trunc(f)
		}
	case "null":
		ok = val == nil
	default:
		return fmt.Errorf("%s: unsupported schema type %q", path, want)
	}
	if !ok {
		return fmt.Errorf("%s: want %s, got %s", path, want, jsonTypeName(val))
	}
	return nil
}

func jsonTypeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case nil:
		return "null"
	}
	return strings.TrimPrefix(fmt.Sprintf("%T", v), "*")
}
