package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mao/internal/ir"
)

// InstLineage is the machine-readable provenance of one emitted IR
// node — the per-instruction record `mao --explain=json` dumps and a
// phase-ordering searcher consumes.
type InstLineage struct {
	// Index is the node's position in emission order (over all nodes
	// of the unit).
	Index int `json:"index"`
	// Kind is "inst", "label" or "directive".
	Kind string `json:"kind"`
	// Text is the node rendered as one line of assembly.
	Text string `json:"text"`
	// Function is the enclosing function ("" outside any function).
	Function string `json:"function,omitempty"`
	// SourceLine is the 1-based input line the node was parsed from;
	// 0 for nodes a pass synthesized.
	SourceLine int `json:"source_line,omitempty"`
	// Origin names the pass invocation that created the node
	// ("NAME[idx]"), empty for source nodes.
	Origin string `json:"origin,omitempty"`
	// LastMutator names the invocation that last rewrote the node in
	// place (or created it), empty for untouched source nodes.
	LastMutator string `json:"last_mutator,omitempty"`
}

func nodeKind(n *ir.Node) string {
	switch n.Kind {
	case ir.NodeInst:
		return "inst"
	case ir.NodeLabel:
		return "label"
	case ir.NodeDirective:
		return "directive"
	}
	return "unknown"
}

// Lineage extracts the per-node lineage of the whole unit in emission
// order. Call it after the pipeline (and after Unit.Analyze, so
// function attribution is current).
func Lineage(u *ir.Unit) []InstLineage {
	// Function attribution by span walk: node → enclosing function.
	inFunc := map[*ir.Node]string{}
	for _, f := range u.Functions() {
		for _, n := range f.Entries() {
			inFunc[n] = f.Name
		}
	}
	var out []InstLineage
	i := 0
	for n := u.List.Front(); n != nil; n = n.Next() {
		l := InstLineage{
			Index:      i,
			Kind:       nodeKind(n),
			Text:       n.String(),
			Function:   inFunc[n],
			SourceLine: n.Line,
		}
		if n.Prov != nil {
			l.Origin = n.Prov.Origin.String()
			l.LastMutator = n.Prov.LastMut.String()
		}
		out = append(out, l)
		i++
	}
	return out
}

// ExplainDoc is the top-level document of `mao --explain=json`.
type ExplainDoc struct {
	// Unit is the unit's file name.
	Unit string `json:"unit"`
	// Nodes is the per-node lineage in emission order.
	Nodes []InstLineage `json:"nodes"`
}

// WriteExplainJSON dumps the unit's lineage as one JSON document
// (schema: internal/trace/testdata/explain.schema.json).
func WriteExplainJSON(w io.Writer, u *ir.Unit) error {
	doc := ExplainDoc{Unit: u.FileName, Nodes: Lineage(u)}
	if doc.Nodes == nil {
		doc.Nodes = []InstLineage{}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(doc)
}

// WriteExplainText emits the unit as assembly with provenance
// comments: nodes a pass created or rewrote gain a trailing
// "# pass: NAME[idx]" (with "(rewrite)" appended when a source node
// was mutated in place). Untouched source nodes emit verbatim, so the
// output assembles exactly like the plain emission.
func WriteExplainText(w io.Writer, u *ir.Unit) error {
	for n := u.List.Front(); n != nil; n = n.Next() {
		line := n.String()
		if n.Prov != nil {
			switch {
			case !n.Prov.Origin.IsZero():
				line += "\t# pass: " + n.Prov.Origin.String()
			case !n.Prov.LastMut.IsZero():
				line += "\t# pass: " + n.Prov.LastMut.String() + " (rewrite)"
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
