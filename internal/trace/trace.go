// Package trace is MAO's structured observability subsystem: pipeline
// spans and instruction provenance, turned into artifacts humans and
// tools consume.
//
// A Collector gathers one Span per pass invocation (and, for function
// passes, one per invocation × function) while pass.Manager runs a
// pipeline. Collection is designed around the parallel manager's
// merge discipline: workers record into private storage and the
// manager adds spans in deterministic (invocation, function) order, so
// the span stream is identical at any worker count — only the recorded
// wall times differ.
//
// Exporters turn the span stream into:
//
//   - JSON lines (WriteJSON), one span per line, for log pipelines;
//   - Chrome trace-event format (WriteChromeTrace), loadable in
//     chrome://tracing and Perfetto;
//   - a terminal summary table (WriteSummary), what `mao -timings`
//     prints.
//
// The companion explain.go renders instruction provenance (ir.Node
// Prov records stamped by pass.Ctx helpers) as annotated assembly and
// machine-readable per-instruction lineage — the data a phase-ordering
// searcher consumes.
package trace

import (
	"sync"
	"time"

	"mao/internal/ir"
)

// Ref identifies one pass invocation, NAME[idx]. It is the same type
// the IR uses for provenance records.
type Ref = ir.PassRef

// Kind discriminates span granularities.
type Kind string

// Span kinds.
const (
	// KindPipeline is the root span of one pipeline run.
	KindPipeline Kind = "pipeline"
	// KindInvocation covers one pass invocation end to end.
	KindInvocation Kind = "invocation"
	// KindFunction covers one function within a function-pass
	// invocation.
	KindFunction Kind = "function"
	// KindVerify covers the translation-validation check that follows
	// one pass invocation when the pipeline runs under a
	// verify.Certifier.
	KindVerify Kind = "verify"
	// KindDecode covers lifting a machine-code buffer into IR (the
	// binary front end, decode.ToUnit). Its Stats carry the byte and
	// instruction counts of the decoded buffer.
	KindDecode Kind = "decode"
	// KindQueue covers the time a service request spent admitted but
	// waiting for a worker (maod's queue). It is the root of the
	// daemon-side span tree: queue → batch → pipeline.
	KindQueue Kind = "queue"
	// KindBatch covers a request's execution slot inside a same-spec
	// batch; its Stats carry the batch's job count.
	KindBatch Kind = "batch"
	// KindHop covers one router forward (maorouter → shard), stamped
	// by the router with shard choice and failover attribution.
	KindHop Kind = "hop"
)

// Span is one timed region of a pipeline run.
type Span struct {
	// Kind is the span's granularity.
	Kind Kind `json:"kind"`
	// Ref names the pass invocation (zero for the pipeline root).
	Ref Ref `json:"ref"`
	// Function is the function the span covers ("" for unit-level and
	// invocation-level spans).
	Function string `json:"function,omitempty"`
	// Worker is the worker-pool slot that executed the span (0 for the
	// manager goroutine / sequential execution).
	Worker int `json:"worker"`
	// Start is the offset from the collector's epoch; Dur the span's
	// wall time. Times are the only nondeterministic span fields.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// NodesBefore/NodesAfter are the IR size (node count) around the
	// span — the whole unit for unit-level spans, the function span
	// for function-level ones. Their difference is the span's IR-size
	// delta.
	NodesBefore int `json:"nodes_before"`
	NodesAfter  int `json:"nodes_after"`
	// Changed reports what the pass returned for this region.
	Changed bool `json:"changed"`
	// Stats is the span's own statistics delta (key → count under the
	// invocation's pass name), nil when the pass counted nothing here.
	Stats map[string]int `json:"stats,omitempty"`
	// Parent is the index (in collector order) of the enclosing span,
	// -1 for the root.
	Parent int `json:"parent"`
	// TraceID correlates the span with a request (maod's X-Request-ID);
	// empty outside the service.
	TraceID string `json:"trace_id,omitempty"`
}

// Collector accumulates the spans of one pipeline run (or one maod
// request). A nil *Collector is the disabled tracer: pass.Manager
// checks for nil before doing any span work, so the disabled-mode cost
// is one pointer comparison per potential span.
type Collector struct {
	// TraceID, when set before the run, is stamped on every span added
	// (and echoed by the exporters).
	TraceID string

	epoch time.Time // monotonic anchor for Start offsets
	wall  time.Time // wall-clock epoch, for absolute export timestamps

	mu    sync.Mutex
	spans []Span
}

// NewCollector returns an empty collector anchored at the current
// time.
func NewCollector() *Collector {
	now := time.Now()
	return &Collector{epoch: now, wall: now}
}

// Enabled reports whether the collector is non-nil, readable on a nil
// receiver.
func (c *Collector) Enabled() bool { return c != nil }

// Now returns the offset of the current instant from the collector's
// epoch (monotonic). Safe on a nil receiver (returns 0) so callers can
// stamp span starts unconditionally.
func (c *Collector) Now() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch)
}

// Add appends a span, stamping the collector's TraceID, and returns
// its index (the value later spans use as Parent). Add is serialized:
// the pass manager's merge discipline already orders spans
// deterministically, the mutex only guards against concurrent
// collectors sharing a Collector by mistake.
func (c *Collector) Add(s Span) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.TraceID == "" {
		s.TraceID = c.TraceID
	}
	c.spans = append(c.spans, s)
	return len(c.spans) - 1
}

// Update applies fn to span i under the collector lock. The pass
// manager uses it to finish placeholder parent spans (pipeline root,
// invocation) once their children have completed.
func (c *Collector) Update(i int, fn func(*Span)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.spans) {
		fn(&c.spans[i])
	}
}

// Spans returns a snapshot of the collected spans in collection order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Epoch returns the collector's wall-clock epoch (what Start offsets
// are relative to).
func (c *Collector) Epoch() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.wall
}
