package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mao/internal/asm"
	"mao/internal/ir"
	"mao/internal/trace"
)

// TestCollectorNilSafety pins the disabled-tracer contract: every
// read-side method is callable on a nil *Collector, because pass
// execution stamps span starts unconditionally.
func TestCollectorNilSafety(t *testing.T) {
	var c *trace.Collector
	if c.Enabled() {
		t.Error("nil collector reports Enabled")
	}
	if d := c.Now(); d != 0 {
		t.Errorf("nil collector Now() = %v, want 0", d)
	}
	if s := c.Spans(); s != nil {
		t.Errorf("nil collector Spans() = %v, want nil", s)
	}
	if !c.Epoch().IsZero() {
		t.Error("nil collector Epoch() not zero")
	}
}

// TestCollectorAddUpdateSpans covers index stability, trace-ID
// stamping, placeholder finishing via Update, and snapshot isolation.
func TestCollectorAddUpdateSpans(t *testing.T) {
	c := trace.NewCollector()
	c.TraceID = "req-42"
	if !c.Enabled() {
		t.Fatal("fresh collector not enabled")
	}
	root := c.Add(trace.Span{Kind: trace.KindPipeline, Parent: -1})
	inv := c.Add(trace.Span{
		Kind:   trace.KindInvocation,
		Ref:    trace.Ref{Pass: "REDTEST", Index: 0},
		Parent: root,
	})
	if root != 0 || inv != 1 {
		t.Fatalf("Add indices = %d, %d; want 0, 1", root, inv)
	}
	c.Update(root, func(s *trace.Span) { s.Dur = time.Second })
	c.Update(99, func(s *trace.Span) { t.Error("Update ran on out-of-range index") })

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans() len = %d, want 2", len(spans))
	}
	if spans[0].Dur != time.Second {
		t.Errorf("Update did not reach span 0: Dur = %v", spans[0].Dur)
	}
	for i, s := range spans {
		if s.TraceID != "req-42" {
			t.Errorf("span %d TraceID = %q, want req-42", i, s.TraceID)
		}
	}
	// The snapshot must be isolated from later mutation.
	c.Update(0, func(s *trace.Span) { s.Dur = 2 * time.Second })
	if spans[0].Dur != time.Second {
		t.Error("Spans() snapshot aliases collector storage")
	}
	// An explicit per-span trace ID wins over the collector's.
	c.Add(trace.Span{Kind: trace.KindFunction, TraceID: "other"})
	if got := c.Spans()[2].TraceID; got != "other" {
		t.Errorf("explicit span TraceID overwritten: %q", got)
	}
}

// sampleCollector builds a small deterministic span tree for the
// exporter tests.
func sampleCollector() *trace.Collector {
	c := trace.NewCollector()
	c.TraceID = "t-1"
	root := c.Add(trace.Span{Kind: trace.KindPipeline, Parent: -1, Dur: 5 * time.Millisecond,
		NodesBefore: 10, NodesAfter: 12})
	// A function-pass invocation span leaves Changed false and carries
	// no Stats — its function spans hold the detail (the manager's
	// discipline, so the summary doesn't double-count).
	inv := c.Add(trace.Span{Kind: trace.KindInvocation, Ref: trace.Ref{Pass: "NOPIN", Index: 0},
		Parent: root, Dur: 3 * time.Millisecond, NodesBefore: 10, NodesAfter: 12})
	c.Add(trace.Span{Kind: trace.KindFunction, Ref: trace.Ref{Pass: "NOPIN", Index: 0},
		Function: "f", Worker: 2, Parent: inv, Start: time.Millisecond, Dur: time.Millisecond,
		NodesBefore: 5, NodesAfter: 7, Changed: true, Stats: map[string]int{"nops": 2}})
	c.Add(trace.Span{Kind: trace.KindInvocation, Ref: trace.Ref{Pass: "REDTEST", Index: 1},
		Parent: root, Start: 3 * time.Millisecond, Dur: 2 * time.Millisecond,
		NodesBefore: 12, NodesAfter: 12})
	return c
}

func TestWriteJSONLines(t *testing.T) {
	c := sampleCollector()
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, c); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var s trace.Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d does not round-trip as a Span: %v", lines, err)
		}
		if s.TraceID != "t-1" {
			t.Errorf("line %d lost the trace ID: %q", lines, s.TraceID)
		}
		lines++
	}
	if want := len(c.Spans()); lines != want {
		t.Errorf("JSONL lines = %d, want %d (one per span)", lines, want)
	}
}

func TestWriteChromeTraceAgainstSchema(t *testing.T) {
	c := sampleCollector()
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	schema, err := os.ReadFile(filepath.Join("testdata", "chrome_trace.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(schema, buf.Bytes()); err != nil {
		t.Fatalf("chrome trace export violates the checked-in schema: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	// Manager-level spans render on tid 0; function spans on worker+1.
	for _, e := range events {
		tid := int(e["tid"].(float64))
		if e["cat"] == "function" {
			if tid != 3 {
				t.Errorf("function span tid = %d, want worker+1 = 3", tid)
			}
		} else if tid != 0 {
			t.Errorf("%s span tid = %d, want 0", e["cat"], tid)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	c := sampleCollector()
	var buf bytes.Buffer
	if err := trace.WriteSummary(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PASS", "NOPIN[0]", "REDTEST[1]", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// NOPIN[0] ran one function that changed, grew the unit by 2 nodes
	// and counted 2 transformations.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "NOPIN[0]") {
			f := strings.Fields(line)
			if got := f[len(f)-3:]; got[0] != "1" || got[1] != "+2" || got[2] != "2" {
				t.Errorf("NOPIN[0] row = %q, want changed=1 Δnodes=+2 counts=2", line)
			}
		}
	}
}

// TestExplainWriters stamps provenance by hand on a parsed unit and
// checks both renderings: the text form annotates exactly the touched
// nodes, the JSON form validates against the checked-in schema.
func TestExplainWriters(t *testing.T) {
	u, err := asm.ParseString("t.s", "\t.text\n\t.globl\tf\n\t.type\tf, @function\nf:\n\tmovq\t%rdi, %rax\n\tret\n\t.size\tf, .-f\n")
	if err != nil {
		t.Fatal(err)
	}
	nopin := ir.PassRef{Pass: "NOPIN", Index: 0}
	sched := ir.PassRef{Pass: "SCHED", Index: 1}
	var synth, rewritten *ir.Node
	for n := u.List.Front(); n != nil; n = n.Next() {
		if n.Kind != ir.NodeInst {
			continue
		}
		if synth == nil {
			// Simulate a pass-created node: no source line, full record.
			synth = n
			synth.Line = 0
			synth.Prov = &ir.Provenance{Origin: nopin, LastMut: nopin}
			continue
		}
		// Simulate an in-place rewrite of a source node.
		rewritten = n
		rewritten.Prov = &ir.Provenance{LastMut: sched}
	}
	if synth == nil || rewritten == nil {
		t.Fatal("fixture did not yield two instructions")
	}

	var text bytes.Buffer
	if err := trace.WriteExplainText(&text, u); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	if !strings.Contains(out, "# pass: NOPIN[0]") {
		t.Errorf("synthesized node not annotated:\n%s", out)
	}
	if !strings.Contains(out, "# pass: SCHED[1] (rewrite)") {
		t.Errorf("rewritten node not annotated as rewrite:\n%s", out)
	}
	if n := strings.Count(out, "# pass:"); n != 2 {
		t.Errorf("annotations = %d, want exactly 2 (untouched nodes stay verbatim)", n)
	}
	// Stripping the annotations must recover the plain emission.
	var plain []string
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "\t# pass:"); i >= 0 {
			line = line[:i]
		}
		plain = append(plain, line)
	}
	if got := strings.Join(plain, "\n"); got != u.String() {
		t.Errorf("explain text is not the plain emission plus comments:\n got %q\nwant %q", got, u.String())
	}

	var js bytes.Buffer
	if err := trace.WriteExplainJSON(&js, u); err != nil {
		t.Fatal(err)
	}
	schema, err := os.ReadFile(filepath.Join("testdata", "explain.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(schema, js.Bytes()); err != nil {
		t.Fatalf("explain JSON violates the checked-in schema: %v", err)
	}
	var doc trace.ExplainDoc
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var origins, mutators int
	for _, n := range doc.Nodes {
		if n.Origin != "" {
			origins++
			if n.Origin != "NOPIN[0]" || n.SourceLine != 0 {
				t.Errorf("synthesized node lineage wrong: %+v", n)
			}
		}
		if n.LastMutator == "SCHED[1]" {
			mutators++
			if n.Origin != "" || n.SourceLine == 0 {
				t.Errorf("rewrite lineage wrong: %+v", n)
			}
		}
	}
	if origins != 1 || mutators != 1 {
		t.Errorf("lineage counts: origins=%d mutators=%d, want 1 and 1", origins, mutators)
	}
}

// TestValidateJSONRejects exercises the validator's failure modes so
// the CI schema check can actually fail when a format drifts.
func TestValidateJSONRejects(t *testing.T) {
	schema := []byte(`{
		"type": "object",
		"required": ["name"],
		"additionalProperties": false,
		"properties": {
			"name": {"type": "string"},
			"n": {"type": "integer"},
			"kind": {"type": "string", "enum": ["a", "b"]},
			"tags": {"type": "array", "items": {"type": "string"}}
		}
	}`)
	cases := []struct {
		doc  string
		want string // substring of the error, "" = must pass
	}{
		{`{"name": "x", "n": 3, "kind": "a", "tags": ["t"]}`, ""},
		{`{"n": 1}`, `missing required property "name"`},
		{`{"name": 5}`, "want string"},
		{`{"name": "x", "n": 1.5}`, "want integer"},
		{`{"name": "x", "kind": "c"}`, "not in enum"},
		{`{"name": "x", "extra": 1}`, `unexpected property "extra"`},
		{`{"name": "x", "tags": ["t", 7]}`, "$.tags[1]"},
		{`[]`, "want object"},
	}
	for _, c := range cases {
		err := trace.ValidateJSON(schema, []byte(c.doc))
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.doc, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.doc, err, c.want)
		}
	}
}
