package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// countdownBlob is a 7-byte loop the binary tests decode:
//
//	0: xorl %eax,%eax;  2: decl %eax;  4: jne 2;  6: ret
var countdownBlob = []byte{0x31, 0xc0, 0xff, 0xc8, 0x75, 0xfc, 0xc3}

// redTestBlob ends a flag-setting subl with a redundant testl, so
// REDTEST fires on the decoded unit:
//
//	0: subl $16,%ebx;  3: testl %ebx,%ebx;  5: je 7;  7: ret
var redTestBlob = []byte{0x83, 0xeb, 0x10, 0x85, 0xdb, 0x74, 0x00, 0xc3}

// postBinary sends one octet-stream request (knobs in the query
// string) and decodes the response body.
func postBinary(t *testing.T, url, query string, blob []byte) (int, *OptimizeResponse, *errorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/optimize"+query, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out OptimizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding 200 body: %v", err)
		}
		return resp.StatusCode, &out, nil
	}
	var out errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %d body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &out
}

func TestBinaryOptimizeBasic(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out, _ := postBinary(t, ts.URL, "", countdownBlob)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"text:", ".Lmaodec_2:", "jne\t.Lmaodec_2", "xorl\t%eax, %eax"} {
		if !strings.Contains(out.Assembly, want) {
			t.Errorf("assembly missing %q:\n%s", want, out.Assembly)
		}
	}
	if out.Cached {
		t.Error("first request reported cached")
	}
}

func TestBinaryOptimizeRunsPasses(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out, _ := postBinary(t, ts.URL, "?spec=REDTEST&explain=1&verify=1", redTestBlob)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if strings.Contains(out.Assembly, "testl") {
		t.Errorf("redundant testl survived REDTEST:\n%s", out.Assembly)
	}
	if out.Stats["REDTEST"]["removed"] != 1 {
		t.Errorf("stats = %v", out.Stats)
	}
	// explain=1: the service runs the pipeline on a fresh parse of the
	// decoded listing, so lineage attributes surviving instructions to
	// lines of that listing (byte-range MAODEC provenance is the
	// in-process — CLI — form). Every surviving instruction must carry
	// a source line of the decoded assembly.
	sawInst := false
	for _, lin := range out.Lineage {
		if lin.Kind != "inst" {
			continue
		}
		sawInst = true
		if lin.SourceLine == 0 && lin.Origin == "" {
			t.Errorf("instruction %q has neither source line nor origin", lin.Text)
		}
	}
	if !sawInst {
		t.Errorf("no instructions in lineage: %+v", out.Lineage)
	}
	// verify=1 translation-validates the decoded pipeline.
	if len(out.Verify) != 1 || out.Verify[0].Pass != "REDTEST" {
		t.Fatalf("verify verdicts = %+v", out.Verify)
	}
	if len(out.Verify[0].Refuted) != 0 {
		t.Errorf("REDTEST refuted on decoded unit: %v", out.Verify[0].Refuted)
	}
}

// TestBinaryCacheKey: identical blobs share a result-cache entry; a
// different base address changes the decoded form and must miss.
func TestBinaryCacheKey(t *testing.T) {
	_, ts := testServer(t, Config{})
	if code, out, _ := postBinary(t, ts.URL, "?spec=REDTEST", redTestBlob); code != 200 || out.Cached {
		t.Fatalf("first: status %d, cached %v", code, out != nil && out.Cached)
	}
	if code, out, _ := postBinary(t, ts.URL, "?spec=REDTEST", redTestBlob); code != 200 || !out.Cached {
		t.Fatalf("identical blob missed the result cache (status %d)", code)
	}
	code, out, _ := postBinary(t, ts.URL, "?spec=REDTEST&base=0x400000", redTestBlob)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if out.Cached {
		t.Error("different base address shared a cache entry")
	}
	if !strings.Contains(out.Assembly, ".Lmaodec_400007") {
		t.Errorf("base address not reflected in labels:\n%s", out.Assembly)
	}
}

// TestBinaryJSONCacheSharing: a binary request and a JSON request
// whose source is the decoded assembly are the same unit under the
// same spec, so they share a cache entry.
func TestBinaryJSONCacheSharing(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out, _ := postBinary(t, ts.URL, "?name=request.bin", countdownBlob)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	// The decoded assembly is canonical: submitting it via the JSON
	// path reproduces the same result key.
	code, jout, _ := postOptimize(t, ts.URL, &OptimizeRequest{Name: "request.bin", Source: out.Assembly})
	if code != 200 {
		t.Fatalf("JSON status = %d", code)
	}
	if !jout.Cached {
		t.Error("decoded assembly resubmitted as JSON missed the cache")
	}
}

func TestBinaryErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name  string
		query string
		blob  []byte
		code  int
		want  string
	}{
		{"undecodable", "", []byte{0x48}, 422, "truncated"},
		{"error carries offset", "", append(append([]byte{}, countdownBlob...), 0x8b), 422, "offset 0x7"},
		{"empty body", "", nil, 400, "machine-code body is required"},
		{"bad base", "?base=zzz", countdownBlob, 400, "invalid base"},
		{"bad spec", "?spec=NOSUCH", countdownBlob, 400, "NOSUCH"},
		{"bad deadline", "?deadline_ms=x", countdownBlob, 400, "deadline_ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, errResp := postBinary(t, ts.URL, c.query, c.blob)
			if code != c.code {
				t.Fatalf("status = %d, want %d", code, c.code)
			}
			if !strings.Contains(errResp.Error, c.want) {
				t.Errorf("error %q does not contain %q", errResp.Error, c.want)
			}
		})
	}
}

func TestBinaryOversize(t *testing.T) {
	_, ts := testServer(t, Config{MaxSourceBytes: 4})
	code, _, errResp := postBinary(t, ts.URL, "", countdownBlob)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", code)
	}
	if !strings.Contains(errResp.Error, "exceeds") {
		t.Errorf("error = %q", errResp.Error)
	}
}
