package serve

import (
	"context"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// clientIDHeader names the tenant a request belongs to for quota
// accounting. Requests without it fall back to the remote address's
// host, so unlabeled clients are still isolated from each other by
// origin instead of sharing one global bucket.
const clientIDHeader = "X-Mao-Client"

// clientID resolves the quota identity of a request. Inbound IDs are
// length-capped like request IDs: the value is reflected into metrics
// labels, and unbounded attacker-controlled label values have no
// business there.
func clientID(r *http.Request) string {
	if id := r.Header.Get(clientIDHeader); id != "" && len(id) <= 128 {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// maxQuotaClients bounds the bucket table. Beyond it, idle-and-full
// buckets (which a fresh bucket is indistinguishable from) are evicted
// on insert, so the table tracks active tenants, not address history.
const maxQuotaClients = 4096

// quotas is the per-client token-bucket layer UNDER the global
// admission control: a request must hold a client token before it may
// compete for a global queue slot. A tenant that exhausts its bucket
// is answered 429 + Retry-After without touching the queue, so one
// hot client saturating its quota consumes none of the capacity the
// other tenants share — exactly the isolation the global bound alone
// cannot give (it is first-come, first-served across clients).
//
// The bucket is the classic lazy-refill kind: tokens accrue at rate/s
// up to burst, one token per request, refill computed from the elapsed
// time at each take. No background goroutine, O(1) per request.
type quotas struct {
	rate  float64 // tokens per second per client
	burst float64 // bucket capacity

	mu sync.Mutex
	m  map[string]*bucket

	// rejectsTotal and grantedTotal survive bucket eviction; the
	// per-client counters live in the buckets themselves.
	rejectsTotal atomic.Int64
	grantedTotal atomic.Int64
}

type bucket struct {
	tokens  float64
	last    time.Time
	granted int64
	rejects int64
}

// newQuotas returns the quota layer, or nil when rate <= 0 (quotas
// disabled — every call admits). All methods are nil-safe.
func newQuotas(rate float64, burst int) *quotas {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 16
	}
	return &quotas{rate: rate, burst: float64(burst), m: make(map[string]*bucket)}
}

// refillLocked brings b's token count current as of now.
func (q *quotas) refillLocked(b *bucket, now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
	}
	b.last = now
}

// bucketLocked returns client's bucket, creating (and, at the table
// cap, evicting an idle-full bucket to make room for) it.
func (q *quotas) bucketLocked(client string, now time.Time) *bucket {
	b, ok := q.m[client]
	if ok {
		return b
	}
	if len(q.m) >= maxQuotaClients {
		for id, old := range q.m {
			q.refillLocked(old, now)
			if old.tokens >= q.burst {
				delete(q.m, id)
				break
			}
		}
	}
	b = &bucket{tokens: q.burst, last: now}
	q.m[client] = b
	return b
}

// take attempts to consume one token for client. On refusal it
// returns the whole seconds (>= 1) until a token will be available —
// the Retry-After value.
func (q *quotas) take(client string) (ok bool, retryAfter int) {
	if q == nil {
		return true, 0
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.bucketLocked(client, now)
	q.refillLocked(b, now)
	if b.tokens >= 1 {
		b.tokens--
		b.granted++
		q.grantedTotal.Add(1)
		return true, 0
	}
	b.rejects++
	q.rejectsTotal.Add(1)
	wait := (1 - b.tokens) / q.rate
	return false, int(math.Max(1, math.Ceil(wait)))
}

// wait blocks until client holds a token or ctx is done. It is the
// archive stream's admission: a stream cannot answer 429 per unit
// mid-response, so an over-quota tenant's archive is *paced* to its
// refill rate instead of refused — same isolation, different
// surfacing. Waiting does not count as a reject.
func (q *quotas) wait(ctx context.Context, client string) error {
	if q == nil {
		return nil
	}
	for {
		now := time.Now()
		q.mu.Lock()
		b := q.bucketLocked(client, now)
		q.refillLocked(b, now)
		if b.tokens >= 1 {
			b.tokens--
			b.granted++
			q.grantedTotal.Add(1)
			q.mu.Unlock()
			return nil
		}
		d := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
		q.mu.Unlock()
		if d < time.Millisecond {
			d = time.Millisecond
		}
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// snapshot returns the per-client counters for /metrics, plus the
// resident client count.
func (q *quotas) snapshot() (perClient map[string][2]int64, clients int) {
	if q == nil {
		return nil, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	perClient = make(map[string][2]int64, len(q.m))
	for id, b := range q.m {
		perClient[id] = [2]int64{b.granted, b.rejects}
	}
	return perClient, len(q.m)
}
