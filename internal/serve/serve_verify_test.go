package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestOptimizeVerify: options.verify returns one clean verdict per
// pass invocation and no refutation diagnostics.
func TestOptimizeVerify(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, out, _ := postOptimize(t, ts.URL, &OptimizeRequest{
		Source: testSource, Spec: "REDTEST:REDMOV",
		Options: OptimizeOptions{Verify: true},
	})
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(out.Verify) != 2 {
		t.Fatalf("verdicts = %d, want 2: %+v", len(out.Verify), out.Verify)
	}
	wantPasses := []string{"REDTEST", "REDMOV"}
	for i, v := range out.Verify {
		if v.Pass != wantPasses[i] || v.Index != i {
			t.Errorf("verdict %d = %s[%d], want %s[%d]", i, v.Pass, v.Index, wantPasses[i], i)
		}
		if len(v.Refuted) != 0 || v.Statuses["refuted"] != 0 {
			t.Errorf("clean pipeline refuted: %+v", v)
		}
		total := 0
		for _, n := range v.Statuses {
			total += n
		}
		if total == 0 {
			t.Errorf("verdict %d verified no functions: %+v", i, v)
		}
	}
	for _, d := range out.Diags {
		if d.Rule == "verify-equiv" {
			t.Errorf("spurious refutation diagnostic: %+v", d)
		}
	}
}

// TestOptimizeVerifyQueryParam: ?verify=1 is equivalent to
// options.verify in the body.
func TestOptimizeVerifyQueryParam(t *testing.T) {
	_, ts := testServer(t, Config{})
	body, _ := json.Marshal(&OptimizeRequest{Source: testSource, Spec: "REDTEST"})
	resp, err := http.Post(ts.URL+"/v1/optimize?verify=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Verify) != 1 || out.Verify[0].Pass != "REDTEST" {
		t.Errorf("verdicts = %+v, want one REDTEST verdict", out.Verify)
	}
}

// TestVerifyJoinsCacheKey: verify on/off are distinct result-cache
// entries, and a verified response replays from cache with verdicts.
func TestVerifyJoinsCacheKey(t *testing.T) {
	_, ts := testServer(t, Config{})
	plain := &OptimizeRequest{Source: testSource, Spec: "REDTEST"}
	verified := &OptimizeRequest{Source: testSource, Spec: "REDTEST",
		Options: OptimizeOptions{Verify: true}}

	if _, out, _ := postOptimize(t, ts.URL, plain); out.Cached {
		t.Fatal("first plain request reported cached")
	}
	_, first, _ := postOptimize(t, ts.URL, verified)
	if first.Cached {
		t.Fatal("verify request hit the plain request's cache entry")
	}
	_, second, _ := postOptimize(t, ts.URL, verified)
	if !second.Cached {
		t.Fatal("repeated verify request missed the cache")
	}
	if len(second.Verify) != 1 {
		t.Errorf("cached response lost verdicts: %+v", second.Verify)
	}
}

// TestMetricsVerify: verification latency and refutation counters are
// exposed on /metrics.
func TestMetricsVerify(t *testing.T) {
	_, ts := testServer(t, Config{})
	postOptimize(t, ts.URL, &OptimizeRequest{
		Source: testSource, Spec: "REDTEST:REDMOV",
		Options: OptimizeOptions{Verify: true},
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	if !strings.Contains(text, "maod_verify_duration_seconds_count 2") {
		t.Errorf("verify latency histogram missing or wrong count:\n%s", grepLines(text, "maod_verify"))
	}
	if !strings.Contains(text, "maod_verify_refutations_total 0") {
		t.Errorf("refutation counter missing:\n%s", grepLines(text, "maod_verify"))
	}
}

// grepLines returns the lines of text containing substr, for failure
// messages.
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
