package serve

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Two identical requests: one computed, one result-cache hit.
	req := &OptimizeRequest{Source: testSource, Spec: "REDTEST:REDMOV"}
	postOptimize(t, ts.URL, req)
	postOptimize(t, ts.URL, req)

	text := scrape(t, ts.URL)
	for _, want := range []string{
		`maod_requests_total{code="200"} 2`,
		"maod_request_duration_seconds_bucket{le=\"+Inf\"} 2",
		"maod_request_duration_seconds_count 2",
		"maod_request_duration_seconds_sum ",
		"maod_queue_depth 0",
		"maod_inflight 0",
		"maod_queue_rejects_total 0",
		"maod_batches_total 1",
		"maod_batch_jobs_total 1",
		"maod_result_cache_hits_total 1",
		"maod_result_cache_misses_total 1",
		"maod_result_cache_entries 1",
		"maod_relaxcache_hits_total ",
		"maod_relaxcache_misses_total ",
		`maod_pass_counters_total{pass="REDTEST",key="removed"} 1`,
		"maod_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}

	// Every non-comment line is "name[{labels}] value".
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEIna]+$`)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

func TestMetricsHistogramCumulative(t *testing.T) {
	_, ts := testServer(t, Config{})
	for i := 0; i < 5; i++ {
		postOptimize(t, ts.URL, &OptimizeRequest{
			Source: testSource, Options: OptimizeOptions{NoCache: true},
		})
	}
	text := scrape(t, ts.URL)
	// Bucket counts must be monotonically non-decreasing in le order.
	re := regexp.MustCompile(`maod_request_duration_seconds_bucket\{le="[^"]+"\} (\d+)`)
	last := -1
	n := 0
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v := 0
		for _, c := range m[1] {
			v = v*10 + int(c-'0')
		}
		if v < last {
			t.Errorf("histogram not cumulative: %d after %d", v, last)
		}
		last = v
		n++
	}
	if n != len(latencyBuckets)+1 {
		t.Errorf("bucket lines = %d, want %d", n, len(latencyBuckets)+1)
	}
}

func TestMetricsCountsRejectsAndErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	postOptimize(t, ts.URL, &OptimizeRequest{Source: testSource, Spec: "NOSUCHPASS"})
	text := scrape(t, ts.URL)
	if !strings.Contains(text, `maod_requests_total{code="400"} 1`) {
		t.Errorf("400 not counted:\n%s", text)
	}
}
