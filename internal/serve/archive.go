package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mao/internal/check"
	"mao/internal/scope"
	"mao/internal/trace"
)

// The archive request path: POST /v1/optimize/archive accepts a whole
// build tree's worth of units in one request and streams results back
// as each unit finishes the pipeline — a client optimizing hundreds of
// functions sees the first result after one pipeline latency, not
// after the last.
//
// Framing ("maoar1", tar-lite): the body is a sequence of entries,
// each a header line followed by raw bytes —
//
//	maoar1 <nameLen> <srcLen>\n
//	<nameLen bytes of unit name><srcLen bytes of assembly source>
//
// Lengths are decimal byte counts; there are no separators between the
// name, the source, and the next header — the lengths delimit
// everything, so sources may contain anything (including lines that
// look like headers). The whole archive shares one pass spec and one
// option set, carried in query parameters exactly like the binary
// request path: spec, check, explain, verify, no_cache, deadline_ms.
//
// The response is NDJSON (application/x-ndjson): one ArchiveRecord
// per unit in COMPLETION order (the index field maps a record back to
// its archive position), flushed as written, followed by exactly one
// ArchiveTrailer. Units flow through the same queue → batcher → worker
// pipeline as single requests — same admission, same batching, same
// result cache (archive units and single requests share entries) —
// with a bounded in-flight window so one archive cannot monopolize the
// global queue.

// archiveMagic opens every entry header line.
const archiveMagic = "maoar1"

// maxArchiveNameLen bounds a unit name; names appear in diagnostics
// and records, not in bulk data.
const maxArchiveNameLen = 4096

// archiveUnit is one parsed entry.
type archiveUnit struct {
	name   string
	source string
}

// ArchiveRecord is one NDJSON line of an archive response: the
// outcome of one unit. Status mirrors the HTTP status the same unit
// would have received as a single /v1/optimize request (200, 422,
// 503/504 when aborted by cancellation, drain or deadline).
type ArchiveRecord struct {
	Index    int                       `json:"index"`
	Name     string                    `json:"name"`
	Status   int                       `json:"status"`
	Assembly string                    `json:"assembly,omitempty"`
	Stats    map[string]map[string]int `json:"stats,omitempty"`
	Diags    []check.Diag              `json:"diags,omitempty"`
	Verify   []VerifyVerdict           `json:"verify,omitempty"`
	Cached   bool                      `json:"cached,omitempty"`
	// Cache is the result-cache verdict of completed units — "hit",
	// "miss", or "coalesced" (the unit rode another in-flight
	// identical run) — the same disposition the X-Mao-Cache header
	// reports for single requests.
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
	// Trace is the unit's stitched span tree when ?trace= was set on
	// the archive request. Each unit salts its span IDs with its own
	// content address, so units sharing the archive's trace context
	// never collide.
	Trace []scope.Span `json:"trace,omitempty"`
}

// ArchiveTrailer is the final NDJSON line: per-archive accounting and,
// when the stream was cut short, the reason. Its presence is the
// client's proof of clean termination — a stream that ends without a
// trailer was truncated by the transport.
type ArchiveTrailer struct {
	Done    bool   `json:"done"`
	Units   int    `json:"units"`
	OK      int    `json:"ok"`
	Failed  int    `json:"failed"`
	Aborted int    `json:"aborted,omitempty"`
	Error   string `json:"error,omitempty"`
}

// parseArchive reads maoar1 framing from r (already length-capped by
// the caller). Errors carry the entry index for actionable 400s.
func parseArchive(r io.Reader, maxUnits int, maxSource int64) ([]archiveUnit, error) {
	br := bufio.NewReader(r)
	var units []archiveUnit
	for {
		header, err := br.ReadString('\n')
		if err == io.EOF && header == "" {
			return units, nil
		}
		if err != nil {
			return nil, fmt.Errorf("entry %d: reading header: %w", len(units), err)
		}
		var nameLen, srcLen int64
		if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"), archiveMagic+" %d %d", &nameLen, &srcLen); err != nil {
			return nil, fmt.Errorf("entry %d: malformed header %q (want %q)",
				len(units), strings.TrimSuffix(header, "\n"), archiveMagic+" <nameLen> <srcLen>")
		}
		if nameLen <= 0 || nameLen > maxArchiveNameLen {
			return nil, fmt.Errorf("entry %d: name length %d out of range (1..%d)", len(units), nameLen, maxArchiveNameLen)
		}
		if srcLen < 0 || srcLen > maxSource {
			return nil, fmt.Errorf("entry %d: source length %d exceeds the %d-byte unit cap", len(units), srcLen, maxSource)
		}
		if len(units) >= maxUnits {
			return nil, fmt.Errorf("archive exceeds %d units", maxUnits)
		}
		buf := make([]byte, nameLen+srcLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("entry %d: truncated body: %w", len(units), err)
		}
		units = append(units, archiveUnit{name: string(buf[:nameLen]), source: string(buf[nameLen:])})
	}
}

// handleArchive is POST /v1/optimize/archive.
func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	client := clientID(r)
	// One token opens the stream (429 if the client has none); each
	// unit then pays a token via quota.wait — pacing, not refusal,
	// because a committed 200 stream cannot turn into a 429.
	if ok, retryAfter := s.quota.take(client); !ok {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
		writeError(w, http.StatusTooManyRequests, errors.New("client quota exhausted"))
		return
	}

	// Archives are multi-unit: the body cap scales per unit, bounded
	// by the unit count cap.
	maxBody := s.cfg.MaxSourceBytes * int64(s.cfg.MaxArchiveUnits)
	units, err := parseArchive(http.MaxBytesReader(w, r.Body, maxBody), s.cfg.MaxArchiveUnits, s.cfg.MaxSourceBytes)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("archive exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid archive: %w", err))
		return
	}
	if len(units) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("archive carries no units"))
		return
	}

	// The archive-wide spec and options, validated once for all units.
	q := r.URL.Query()
	proto := OptimizeRequest{Spec: q.Get("spec")}
	for _, p := range []struct {
		name string
		dst  *bool
	}{
		{"check", &proto.Options.Check},
		{"no_cache", &proto.Options.NoCache},
		{"explain", &proto.Options.Explain},
		{"verify", &proto.Options.Verify},
	} {
		if v := q.Get(p.name); v == "1" || v == "true" {
			*p.dst = true
		}
	}
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid deadline_ms %q", v))
			return
		}
		proto.Options.DeadlineMS = ms
	}
	if status, err := s.validateRequest(r, &proto); err != nil {
		writeError(w, status, err)
		return
	}

	// The deadline covers the whole stream: queueing and execution of
	// every unit.
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(&proto))
	defer cancel()

	// The stream commits here: from now on, failures surface as
	// per-unit records and the trailer, never as an HTTP error.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	outcomes := make(chan ArchiveRecord, len(units))
	go s.submitArchive(ctx, client, units, &proto, scopeContextFrom(r.Context()), outcomes)

	trailer := ArchiveTrailer{Units: len(units)}
	for i := 0; i < len(units); i++ {
		rec := <-outcomes
		switch rec.Status {
		case http.StatusOK:
			trailer.OK++
		case 503, 504:
			trailer.Aborted++
			if trailer.Error == "" {
				trailer.Error = rec.Error
			}
		default:
			trailer.Failed++
		}
		// A write error means the client is gone; cancel the remaining
		// work but keep draining outcomes so the submitter never blocks.
		if err := enc.Encode(rec); err != nil {
			cancel()
			continue
		}
		rc.Flush()
	}
	trailer.Done = true
	enc.Encode(trailer)
	rc.Flush()
}

// archiveWindow bounds how many of one archive's units may occupy the
// global queue at once, so a single archive shares the queue with
// other tenants' single requests instead of monopolizing it.
func (s *Server) archiveWindow() int {
	w := s.cfg.QueueDepth / 4
	if w < 1 {
		w = 1
	}
	if w > 16 {
		w = 16
	}
	return w
}

// submitArchive pushes every unit through quota pacing → result cache
// → admission, bounded by the in-flight window, and posts exactly one
// outcome per unit. It never blocks forever: admission refusals are
// retried while the context lives, drain (503) and context death
// abort the remaining units with one record each — which is what lets
// the writer loop, and therefore Server.Close, always terminate.
func (s *Server) submitArchive(ctx context.Context, client string, units []archiveUnit, proto *OptimizeRequest, tc scope.Context, outcomes chan<- ArchiveRecord) {
	window := make(chan struct{}, s.archiveWindow())
	abort := func(i int, status int, why string) {
		outcomes <- ArchiveRecord{Index: i, Name: units[i].name, Status: status, Error: why}
	}
	abortRest := func(from int, status int, why string) {
		for i := from; i < len(units); i++ {
			abort(i, status, why)
		}
	}
	for i, u := range units {
		// Token pacing: an over-quota archive proceeds at the client's
		// refill rate.
		if err := s.quota.wait(ctx, client); err != nil {
			abortRest(i, statusForCtx(err), "archive aborted: "+err.Error())
			return
		}
		req := &OptimizeRequest{Name: u.name, Source: u.source, Spec: proto.Spec, Options: proto.Options}
		key := resultKey(req)
		// Traced archives bypass the cache lookup exactly like traced
		// single requests: every unit executes, so every record carries
		// a span tree.
		if !req.Options.NoCache && req.Options.Trace == "" {
			if resp, ok := s.results.get(key); ok {
				outcomes <- recordFor(i, u.name, resp, true)
				continue
			}
		}
		// In-flight miss coalescing, archive grain: a unit identical to
		// one already running — in this archive or any concurrent
		// request — waits on the shared run instead of admitting its
		// own. Followers consume neither a queue slot nor a window slot.
		var f *flight
		leader := true
		if s.flights != nil && !req.Options.NoCache && req.Options.Trace == "" {
			f, leader = s.flights.join(key)
		}
		if f != nil && !leader {
			s.met.coalescedTotal.Add(1)
			go func(i int, name string) {
				select {
				case <-f.done:
					outcomes <- flightRecord(i, name, f.res, "coalesced")
				case <-ctx.Done():
					f.leave()
					outcomes <- ArchiveRecord{
						Index: i, Name: name, Status: statusForCtx(ctx.Err()),
						Error: "unit abandoned: " + ctx.Err().Error(),
					}
				}
			}(i, u.name)
			continue
		}
		select {
		case window <- struct{}{}:
		case <-ctx.Done():
			if f != nil {
				// The leader publishes on every path, so cross-request
				// waiters never hang on a run that will not start.
				f.publish(jobResult{status: statusForCtx(ctx.Err()),
					err: fmt.Errorf("archive aborted: %w", ctx.Err())})
			}
			abortRest(i, statusForCtx(ctx.Err()), "archive aborted: "+ctx.Err().Error())
			return
		}
		col := trace.NewCollector()
		col.TraceID = requestIDFrom(ctx)
		runCtx := ctx
		if f != nil {
			// The shared run must survive this archive's cancellation
			// for waiters on other requests; the last waiter out
			// cancels it.
			rc, rcancel := context.WithTimeout(context.WithoutCancel(ctx), s.deadlineFor(proto))
			f.setCancel(rcancel)
			runCtx = rc
		}
		j := &job{req: req, key: key, ctx: runCtx, done: make(chan jobResult, 1),
			col: col, admitted: col.Now()}
		if !s.admitArchiveJob(ctx, j) {
			if f != nil {
				if ctx.Err() != nil {
					f.publish(jobResult{status: statusForCtx(ctx.Err()),
						err: fmt.Errorf("archive aborted: %w", ctx.Err())})
				} else {
					f.publish(jobResult{status: http.StatusServiceUnavailable,
						err: errors.New("server is draining")})
				}
			}
			<-window
			if ctx.Err() != nil {
				abortRest(i, statusForCtx(ctx.Err()), "archive aborted: "+ctx.Err().Error())
			} else {
				abortRest(i, http.StatusServiceUnavailable, "archive aborted: server is draining")
			}
			return
		}
		if f != nil {
			go func(f *flight, j *job) { f.publish(<-j.done) }(f, j)
		}
		go func(i int, name, key string, f *flight) {
			defer func() { <-window }()
			if f != nil {
				select {
				case <-f.done:
					outcomes <- flightRecord(i, name, f.res, "miss")
				case <-ctx.Done():
					f.leave()
					outcomes <- ArchiveRecord{
						Index: i, Name: name, Status: statusForCtx(ctx.Err()),
						Error: "unit abandoned: " + ctx.Err().Error(),
					}
				}
				return
			}
			select {
			case res := <-j.done:
				if res.err != nil {
					outcomes <- ArchiveRecord{Index: i, Name: name, Status: res.status, Error: res.err.Error()}
					return
				}
				rec := recordFor(i, name, res.resp, false)
				if proto.Options.Trace != "" {
					// The unit's content address salts its span IDs, so
					// sibling units under the shared trace context get
					// disjoint ID spaces.
					rec.Trace = scope.Project(res.spans, tc, "maod", key)
				}
				outcomes <- rec
			case <-ctx.Done():
				outcomes <- ArchiveRecord{
					Index: i, Name: name, Status: statusForCtx(ctx.Err()),
					Error: "unit abandoned: " + ctx.Err().Error(),
				}
			}
		}(i, u.name, key, f)
	}
}

// flightRecord projects a shared-flight outcome onto the record
// schema: verdict is "miss" for the unit that led the run, "coalesced"
// for units that rode along.
func flightRecord(i int, name string, res jobResult, verdict string) ArchiveRecord {
	if res.err != nil {
		return ArchiveRecord{Index: i, Name: name, Status: res.status, Error: res.err.Error()}
	}
	rec := recordFor(i, name, res.resp, false)
	rec.Cache = verdict
	return rec
}

// admitArchiveJob admits j, retrying while the queue is full. It
// returns false when the server is draining or ctx dies — the two
// conditions under which the archive must abort instead of waiting.
func (s *Server) admitArchiveJob(ctx context.Context, j *job) bool {
	for {
		ok, retryAfter := s.admit(j)
		if ok {
			return true
		}
		if retryAfter == 0 { // draining
			return false
		}
		timer := time.NewTimer(2 * time.Millisecond)
		select {
		case <-ctx.Done():
			timer.Stop()
			return false
		case <-timer.C:
		}
	}
}

// recordFor projects a completed response onto the NDJSON record
// schema. BatchSize is deliberately absent: it depends on arrival
// timing, and archive records are byte-compared across fleet
// topologies by the differential suite.
func recordFor(index int, name string, resp *OptimizeResponse, cached bool) ArchiveRecord {
	verdict := "miss"
	if cached {
		verdict = "hit"
	}
	return ArchiveRecord{
		Index:    index,
		Name:     name,
		Status:   http.StatusOK,
		Assembly: resp.Assembly,
		Stats:    resp.Stats,
		Diags:    resp.Diags,
		Verify:   resp.Verify,
		Cached:   cached,
		Cache:    verdict,
	}
}
