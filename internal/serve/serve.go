// Package serve implements MAOD, the optimization-as-a-service form of
// MAO: a long-lived, stdlib-only HTTP daemon that accepts
// assembly-optimization requests and answers with optimized assembly,
// per-pass statistics and (on request) static-checker diagnostics.
//
// The paper positions MAO as a reusable optimization layer other
// toolchains call into; phase-ordering and profile-guided workloads
// re-optimize the same units over and over with varying pipelines.
// This package gives those callers a server with the properties such
// traffic needs:
//
//   - A bounded worker pool with admission control: at most QueueDepth
//     requests wait for a worker; beyond that the service answers 429
//     with a Retry-After hint instead of collapsing under load.
//   - Per-request deadlines, plumbed as context.Context all the way
//     into pass.Manager — a request canceled or timed out while queued
//     never occupies a worker, and one mid-pipeline aborts between
//     passes/functions.
//   - Batching: requests with the same pass spec arriving within a
//     short window are grouped, so one dispatch (and one spec
//     validation) serves the whole group and the shared encoding cache
//     stays hot across the batch. Output is per-request and identical
//     to unbatched execution.
//   - A content-addressed result cache keyed on (source hash, spec,
//     options) with LRU eviction: re-optimizing an unchanged unit with
//     an unchanged pipeline is a cache hit and touches no worker.
//   - An observability plane: /metrics in Prometheus text format
//     (request counts, latency histogram, queue depth, batch sizes,
//     result-cache and RELAXCACHE hit rates, aggregated pass
//     counters), /healthz, /readyz, and structured JSON access logs.
//   - Graceful drain: Close stops admission, finishes every admitted
//     request, and only then returns — zero dropped requests on
//     SIGTERM (cmd/maod wires the signal to Close).
//
// The functional contract is exact: for any source and pass spec, the
// assembly returned by POST /v1/optimize is byte-identical to what
// cmd/mao emits for the same spec (the differential tests pin this,
// including under concurrent load).
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mao/internal/asm"
	"mao/internal/check"
	"mao/internal/memo"
	"mao/internal/pass"
	_ "mao/internal/passes" // register the pass catalog
	"mao/internal/relax"
	"mao/internal/scope"
	"mao/internal/trace"
	"mao/internal/verify"
)

// Config parameterizes a Server. The zero value selects production
// defaults (see withDefaults).
type Config struct {
	// Workers is the number of pipeline worker goroutines (0 =
	// GOMAXPROCS). Each worker executes one batch at a time.
	Workers int
	// QueueDepth caps the number of admitted-but-unstarted requests;
	// beyond it POST /v1/optimize answers 429 + Retry-After (0 = 64).
	QueueDepth int
	// BatchWindow is how long the first request of a spec waits for
	// same-spec companions before its batch dispatches (0 = 2ms).
	BatchWindow time.Duration
	// BatchMax caps a batch's size; a full batch dispatches
	// immediately (0 = 16).
	BatchMax int
	// ResultCacheEntries caps the content-addressed result cache
	// (0 = 512, negative disables the cache).
	ResultCacheEntries int
	// MemoEntries caps the shared function-granular pipeline memo:
	// a unit whose functions were all optimized before (under the same
	// spec, by any request) skips the pipeline and splices the memoized
	// spans, byte-identical to a cold run (0 = the memo default 65536,
	// negative disables memoization).
	MemoEntries int
	// DisableCoalesce turns off in-flight miss coalescing (concurrent
	// identical misses sharing one pipeline run). On by default: the
	// optimizer is deterministic, so sharing a run is always sound.
	DisableCoalesce bool
	// RelaxNodeEntries / RelaxContentEntries bound the shared
	// relaxation/encoding cache tiers (0 = relax defaults).
	RelaxNodeEntries    int
	RelaxContentEntries int
	// PipelineWorkers is the per-pipeline worker count handed to
	// pass.Manager (mao -j). The default 1 runs each pipeline
	// sequentially: under server load, parallelism across requests
	// beats parallelism within one (0 = 1).
	PipelineWorkers int
	// DefaultDeadline bounds a request that names no deadline_ms
	// (0 = 30s); MaxDeadline caps what a request may ask for
	// (0 = 2m). The deadline covers queueing and execution.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxSourceBytes caps the request body (0 = 16 MiB).
	MaxSourceBytes int64
	// MaxArchiveUnits caps the number of units one archive request may
	// carry (0 = 256).
	MaxArchiveUnits int
	// QuotaRate enables per-client token-bucket quotas: each client
	// (X-Mao-Client header, fallback remote address) accrues QuotaRate
	// tokens per second up to QuotaBurst, and each request consumes
	// one. A client out of tokens is answered 429 + Retry-After
	// BEFORE global admission — it consumes no queue slot, so one hot
	// tenant cannot starve the rest (0 = quotas disabled).
	QuotaRate float64
	// QuotaBurst is the per-client bucket capacity (0 = 16).
	QuotaBurst int
	// AccessLog, when non-nil, receives one JSON line per completed
	// HTTP request.
	AccessLog io.Writer
	// FlightRecords sizes the flight recorder's ring of recently
	// completed requests, served on the debug listener as
	// /debug/scope/{recent,slowest,errors} (0 = 512, negative
	// disables the recorder).
	FlightRecords int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 512
	}
	if c.PipelineWorkers <= 0 {
		c.PipelineWorkers = 1
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 16 << 20
	}
	if c.MaxArchiveUnits <= 0 {
		c.MaxArchiveUnits = 256
	}
	if c.FlightRecords == 0 {
		c.FlightRecords = 512
	}
	return c
}

// job is one admitted optimization request on its way through the
// queue → batcher → worker pipeline.
type job struct {
	req  *OptimizeRequest
	key  string // content address; "" when the result cache is off
	ctx  context.Context
	done chan jobResult // buffered(1); the worker always sends exactly once

	// col is the request's span collector, created at admission so its
	// epoch anchors the queue-wait span; admitted is the admission
	// instant as a collector offset.
	col      *trace.Collector
	admitted time.Duration
}

// jobResult is what a worker posts back to the waiting handler.
type jobResult struct {
	resp   *OptimizeResponse
	status int // HTTP status (200, or the error class)
	err    error
	// spans is the request's full span stream (queue → batch →
	// pipeline → ...); the handler projects it into the ?trace=
	// payload and the flight record's pass-latency vector.
	spans []trace.Span
	// queueNS is the admission-to-pickup wait.
	queueNS int64
}

// Server is the MAOD service: construct with New, expose via Handler,
// stop with Close (graceful drain).
type Server struct {
	cfg        Config
	relaxCache *relax.Cache
	results    *resultCache
	memo       *memo.Memo   // nil when Config.MemoEntries < 0
	flights    *flightGroup // nil when Config.DisableCoalesce
	met        *metrics
	quota      *quotas         // nil when Config.QuotaRate == 0
	flight     *scope.Recorder // nil when Config.FlightRecords < 0

	queue   chan *job
	batches chan *batch
	grouper *batcher

	queued   atomic.Int64 // admitted, not yet picked up by a worker
	inflight atomic.Int64 // being executed by a worker

	admitMu   sync.RWMutex
	accepting bool

	draining     atomic.Bool
	dispatchDone chan struct{}
	workerWG     sync.WaitGroup
	closeOnce    sync.Once
	started      time.Time
}

// New builds a Server and starts its dispatcher and worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		relaxCache:   relax.NewCacheLimits(cfg.RelaxNodeEntries, cfg.RelaxContentEntries),
		results:      newResultCache(cfg.ResultCacheEntries),
		met:          newMetrics(),
		quota:        newQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		flight:       newFlightRecorder(cfg.FlightRecords),
		queue:        make(chan *job, cfg.QueueDepth),
		batches:      make(chan *batch, cfg.QueueDepth),
		accepting:    true,
		dispatchDone: make(chan struct{}),
		started:      time.Now(),
	}
	if cfg.MemoEntries >= 0 {
		// Salted exactly like mao.NewMemo: entries never outlive the
		// pass catalog or validator semantics they were filled under.
		s.memo = memo.New(cfg.MemoEntries, pass.CatalogVersion(), check.Version, verify.Version)
	}
	if !cfg.DisableCoalesce {
		s.flights = newFlightGroup()
	}
	s.grouper = newBatcher(cfg.BatchWindow, cfg.BatchMax, s.batches)
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Draining reports whether Close has begun (readyz answers 503 then).
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth returns the number of admitted requests not yet picked up
// by a worker.
func (s *Server) QueueDepth() int64 { return s.queued.Load() }

// Close drains the server: admission stops (new optimize requests get
// 503, readyz flips), every batch still waiting out its window is
// flushed, every already-admitted request is executed to completion,
// and the worker pool exits. It is safe to call more than once.
// When fronted by an http.Server, call Close first and Shutdown
// second: Close unblocks the waiting handlers (no admitted job sits
// out its batch timer), and Shutdown then only waits for response
// writes — cmd/maod does exactly that.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.admitMu.Lock()
		s.accepting = false
		s.admitMu.Unlock()
		close(s.queue)
		<-s.dispatchDone
		s.workerWG.Wait()
	})
}

// admit performs admission control. It returns (true, 0) and enqueues
// on success; (false, retryAfter>0) when the queue is full (429); and
// (false, 0) when the server is draining (503).
func (s *Server) admit(j *job) (ok bool, retryAfter int) {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if !s.accepting {
		return false, 0
	}
	for {
		n := s.queued.Load()
		if n >= int64(s.cfg.QueueDepth) {
			s.met.queueRejects.Add(1)
			return false, 1
		}
		if s.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	// queued ≥ channel occupancy always (the dispatcher drains the
	// channel before a worker decrements), so this send cannot block.
	s.queue <- j
	return true, 0
}

// dispatch moves admitted jobs into per-spec batches. It owns the
// batches channel: when the queue closes (drain), it flushes every
// pending batch and then closes batches so the workers exit.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	for j := range s.queue {
		s.grouper.add(j)
	}
	s.grouper.closeFlush()
	close(s.batches)
}

// worker executes batches until the batches channel closes. Each
// worker owns one relaxation state for its lifetime — a relax.State is
// single-goroutine, and per-worker ownership lets back-to-back jobs
// over similar units reuse fragment partitions without locking.
func (s *Server) worker() {
	defer s.workerWG.Done()
	st := relax.NewState()
	for bt := range s.batches {
		s.runBatch(bt, st)
	}
}

// runBatch executes every job of one same-spec batch. The spec was
// validated at admission; it is parsed once here, and the shared
// relaxation cache carries encodings across the batch. Pass instances
// are deliberately created fresh per unit (via pass.NewManager):
// passes like SIMADDR accumulate per-run instance state, so sharing
// instances across units would cross-contaminate results.
func (s *Server) runBatch(bt *batch, st *relax.State) {
	n := int64(len(bt.jobs))
	s.queued.Add(-n)
	s.inflight.Add(n)
	defer s.inflight.Add(-n)
	s.met.batchesTotal.Add(1)
	s.met.batchJobsTotal.Add(n)
	for _, j := range bt.jobs {
		s.runJob(j, len(bt.jobs), st)
	}
}

// runJob executes one request end to end and posts the result. The
// execution path mirrors cmd/mao exactly — parse, pass.Manager with
// the shared cache, Analyze, emit — so responses are byte-identical
// to the CLI.
func (s *Server) runJob(j *job, batchSize int, st *relax.State) {
	if err := j.ctx.Err(); err != nil {
		j.done <- jobResult{status: statusForCtx(err), err: err}
		return
	}
	// Every request's pipeline is traced: the collector carries the
	// request's trace ID (X-Request-ID) into the spans, and the
	// invocation spans feed the per-pass latency histograms on /metrics.
	// The handler created the collector at admission, so its epoch
	// anchors the queue-wait span; a missing one (direct runJob callers
	// in tests) is created here with zero queue time.
	col := j.col
	if col == nil {
		col = trace.NewCollector()
		col.TraceID = requestIDFrom(j.ctx)
	}
	// The daemon-side span tree roots at the queue span: admitted →
	// picked up, then the batch span covers this request's execution
	// slot, and the pipeline root (added by pass.Manager) is re-parented
	// under it after the run.
	wait := col.Now() - j.admitted
	s.met.queueWait.observe(wait.Seconds())
	queueIdx := col.Add(trace.Span{Kind: trace.KindQueue, Start: j.admitted, Dur: wait, Parent: -1})
	batchIdx := col.Add(trace.Span{
		Kind: trace.KindBatch, Start: col.Now(), Parent: queueIdx,
		Stats: map[string]int{"jobs": batchSize},
	})
	finish := func(res jobResult) {
		col.Update(batchIdx, func(sp *trace.Span) { sp.Dur = col.Now() - sp.Start })
		res.spans = col.Spans()
		res.queueNS = int64(wait)
		s.met.observePassSpans(res.spans)
		j.done <- res
	}
	u, err := asm.ParseString(j.req.unitName(), j.req.Source)
	if err != nil {
		finish(jobResult{status: 422, err: err})
		return
	}
	mgr, err := pass.NewManager(j.req.Spec)
	if err != nil {
		// Unreachable for admitted jobs (the handler validated the
		// spec), but kept as defense in depth.
		finish(jobResult{status: 400, err: err})
		return
	}
	mgr.Workers = s.cfg.PipelineWorkers
	mgr.Cache = s.relaxCache
	mgr.RelaxState = st
	mgr.Tracer = col
	// The shared pipeline memo makes repeat content O(splice). Verified
	// runs install a Hook (the manager disables memoization under one —
	// the certifier must observe every invocation); traced runs bypass
	// so ?trace= always describes a full execution (its span tree is
	// pinned byte-identical across worker counts by the differential
	// suite, and a memo hit has no invocation spans to offer).
	if s.memo != nil && !j.req.Options.Verify && j.req.Options.Trace == "" {
		mgr.Memo = s.memo
	}
	var vcert *verify.Certifier
	if j.req.Options.Verify {
		vcert = &verify.Certifier{Tracer: col, SpanParent: batchIdx + 1}
		mgr.Hook = vcert
	}
	stats, err := mgr.RunContext(j.ctx, u)
	// pass.Manager added its pipeline root right after the batch span
	// with Parent -1; stitch it under the batch span.
	col.Update(batchIdx+1, func(sp *trace.Span) {
		if sp.Kind == trace.KindPipeline {
			sp.Parent = batchIdx
		}
	})
	if err != nil {
		finish(jobResult{status: statusForRun(err), err: err})
		return
	}
	if err := u.Analyze(); err != nil {
		finish(jobResult{status: 422, err: err})
		return
	}
	resp := &OptimizeResponse{
		Assembly:  u.String(),
		Stats:     stats.Map(),
		BatchSize: batchSize,
	}
	if j.req.Options.Explain {
		resp.Lineage = trace.Lineage(u)
	}
	if j.req.Options.Check {
		resp.Diags = check.CheckUnit(u)
		if resp.Diags == nil {
			resp.Diags = []check.Diag{}
		}
	}
	if vcert != nil {
		resp.Verify = verifyVerdicts(vcert)
		for _, v := range vcert.Violations {
			d := v.Diag
			if d.Origin == "" {
				d.Origin = fmt.Sprintf("%s[%d]", v.Pass, v.Index)
			}
			resp.Diags = append(resp.Diags, d)
			s.met.verifyRefutations.Add(1)
		}
		check.Sort(resp.Diags)
	}
	s.met.mergePassStats(stats)
	s.results.put(j.key, resp)
	finish(jobResult{resp: resp, status: 200})
}

// verifyVerdicts projects the certifier's per-invocation results onto
// the response schema.
func verifyVerdicts(vcert *verify.Certifier) []VerifyVerdict {
	out := make([]VerifyVerdict, 0, len(vcert.Invocations))
	for _, inv := range vcert.Invocations {
		v := VerifyVerdict{
			Pass:     inv.Pass,
			Index:    inv.Index,
			Statuses: make(map[string]int),
			DurMS:    float64(inv.Dur) / float64(time.Millisecond),
		}
		for st, n := range inv.Result.Counts() {
			v.Statuses[string(st)] = n
		}
		for _, fr := range inv.Result.Refuted() {
			v.Refuted = append(v.Refuted, fr.Func)
		}
		out = append(out, v)
	}
	return out
}

// statusForCtx maps a context error to the HTTP status the handler
// reports: 504 for an expired deadline, 503 for a canceled request.
func statusForCtx(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return 504
	}
	return 503
}

// statusForRun classifies a pipeline error: context errors keep their
// timeout/cancel status, everything else is an unprocessable unit.
func statusForRun(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return statusForCtx(err)
	}
	return 422
}
