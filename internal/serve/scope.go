package serve

import (
	"context"
	"encoding/json"
	"net/http"

	"mao/internal/scope"
	"mao/internal/trace"
)

// MAOSCOPE wiring for the daemon: the distributed-trace context rides
// the request context from the instrument middleware into the worker
// (where the span tree parents under it), and the flight carrier lets
// handlers report per-request facts (cache verdict, queue wait, span
// stream) back to the middleware, which writes the flight record after
// the response is committed.

// newFlightRecorder maps Config.FlightRecords onto a recorder:
// negative disables (nil recorder — every scope call is a no-op).
func newFlightRecorder(n int) *scope.Recorder {
	if n < 0 {
		return nil
	}
	return scope.NewRecorder(n)
}

// scopeKey carries the request's scope.Context.
type scopeKey struct{}

// withScopeContext resolves the request's distributed-trace context:
// a well-formed inbound X-Mao-Trace is adopted (the daemon's spans
// parent under the sender's span), anything else originates a fresh
// trace. The effective context is echoed on the response so callers
// can correlate even when they did not originate.
func withScopeContext(r *http.Request) (*http.Request, scope.Context) {
	tc, ok := scope.ParseHeader(r.Header.Get(scope.TraceHeader))
	if !ok {
		tc = scope.NewContext()
	}
	return r.WithContext(context.WithValue(r.Context(), scopeKey{}, tc)), tc
}

// scopeContextFrom returns the trace context carried by ctx (zero
// context when the request did not pass through instrument).
func scopeContextFrom(ctx context.Context) scope.Context {
	tc, _ := ctx.Value(scopeKey{}).(scope.Context)
	return tc
}

// flightInfo is the per-request carrier the handler fills and the
// instrument middleware drains into the flight recorder.
type flightInfo struct {
	cache   string // result-cache verdict: "hit", "miss", "coalesced", ""
	queueNS int64
	errMsg  string
	spans   []trace.Span // the request's span stream (pass latency vector)
}

type flightKey struct{}

func withFlightInfo(r *http.Request) (*http.Request, *flightInfo) {
	fi := &flightInfo{}
	return r.WithContext(context.WithValue(r.Context(), flightKey{}, fi)), fi
}

func flightFrom(ctx context.Context) *flightInfo {
	fi, _ := ctx.Value(flightKey{}).(*flightInfo)
	return fi
}

// recordFlight writes one flight record for a completed /v1/* request.
// It is the only writer on the daemon's request path; the recorder's
// Acquire/Commit contract keeps it allocation-free once the ring is
// warm (the pass-name strings are shared with the span stream, not
// copied).
func (s *Server) recordFlight(r *http.Request, status int, durNS int64, nowUnixNS int64, fi *flightInfo) {
	rec, h := s.flight.Acquire()
	if rec == nil {
		return
	}
	rec.TimeUnixNS = nowUnixNS
	rec.TraceID = scopeContextFrom(r.Context()).TraceID
	rec.RequestID = requestIDFrom(r.Context())
	rec.Client = clientID(r)
	rec.Path = r.URL.Path
	rec.Status = status
	rec.DurNS = durNS
	if fi != nil {
		rec.Cache = fi.cache
		rec.QueueNS = fi.queueNS
		rec.Err = fi.errMsg
		for _, sp := range fi.spans {
			if sp.Kind != trace.KindInvocation {
				continue
			}
			rec.Passes = append(rec.Passes, scope.PassNS{Pass: sp.Ref.String(), DurNS: int64(sp.Dur)})
		}
	}
	s.flight.Commit(rec, h)
}

// flightPayload is the JSON shape of every /debug/scope endpoint,
// pinned by internal/scope/testdata/scope_flight.schema.json.
type flightPayload struct {
	Process    string               `json:"process"`
	View       string               `json:"view"`
	ErrorsSeen uint64               `json:"errors_seen,omitempty"`
	Records    []scope.FlightRecord `json:"records"`
}

// writeFlightView serves one flight-recorder view as JSON. Records is
// never null — an empty recorder answers an empty array.
func writeFlightView(w http.ResponseWriter, process, view string, recs []scope.FlightRecord, errsSeen uint64) {
	if recs == nil {
		recs = []scope.FlightRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(flightPayload{Process: process, View: view, ErrorsSeen: errsSeen, Records: recs})
}

// parseTraceMode maps the ?trace= query parameter onto the
// OptimizeOptions.Trace values: 1/true → "spans", chrome → "chrome".
func parseTraceMode(q string) (string, bool) {
	switch q {
	case "":
		return "", true
	case "1", "true", "spans":
		return scope.TraceSpans, true
	case "chrome":
		return scope.TraceChrome, true
	}
	return "", false
}

// traceResponse clones resp with the request's stitched span tree
// attached (the cached copy stays trace-free: spans belong to one
// execution, not to the content-addressed result).
func traceResponse(resp *OptimizeResponse, spans []trace.Span, tc scope.Context, salt, mode string) *OptimizeResponse {
	tr := *resp
	tr.Trace = scope.Project(spans, tc, "maod", salt)
	if mode == scope.TraceChrome {
		tr.TraceChrome = scope.ChromeEvents(tr.Trace)
	}
	return &tr
}
