package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// buildMao compiles the cmd/mao driver once per test run.
func buildMao(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mao")
	cmd := exec.Command("go", "build", "-o", bin, "mao/cmd/mao")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build cmd/mao: %v\n%s", err, out)
	}
	return bin
}

// diffSpecs is the pipeline matrix the service is held byte-identical
// to the CLI over. Covers the empty pipeline (parse + canonical
// re-emission), peepholes, whole-function rewrites, scheduling, and
// the relaxation-driven alignment passes.
var diffSpecs = []string{
	"",
	"REDTEST:REDMOV",
	"DCE:CONSTFOLD",
	"NOPKILL:REDZEXT",
	"SCHED",
	"LOOP16",
}

// cliOutputs runs cmd/mao over every corpus fixture × diffSpecs and
// returns the emitted assembly keyed by "fixture|spec".
func cliOutputs(t *testing.T, bin string, fixtures []string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	want := make(map[string]string)
	for i, fx := range fixtures {
		for j, spec := range diffSpecs {
			out := filepath.Join(dir, fmt.Sprintf("out_%d_%d.s", i, j))
			cliSpec := "ASM=o[" + out + "]"
			if spec != "" {
				cliSpec = spec + ":" + cliSpec
			}
			cmd := exec.Command(bin, "--mao="+cliSpec, fx)
			if msg, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("mao --mao=%s %s: %v\n%s", cliSpec, fx, err, msg)
			}
			b, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			want[fx+"|"+spec] = string(b)
		}
	}
	return want
}

func corpusFixtures(t *testing.T) []string {
	t.Helper()
	fixtures, err := filepath.Glob(filepath.Join("..", "corpus", "testdata", "*.s"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no corpus fixtures: %v", err)
	}
	return fixtures
}

// postOptimizeErr is the goroutine-safe flavor of postOptimize: it
// reports failures as errors instead of calling t.Fatal.
func postOptimizeErr(url string, req *OptimizeRequest) (*OptimizeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TestDifferentialAgainstCLI asserts the acceptance criterion: for the
// same source and spec, POST /v1/optimize returns assembly
// byte-identical to what cmd/mao emits through its ASM pass — both
// sequentially and under concurrent load at workers=8.
func TestDifferentialAgainstCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds cmd/mao and runs the corpus matrix")
	}
	bin := buildMao(t)
	fixtures := corpusFixtures(t)
	want := cliOutputs(t, bin, fixtures)
	sources := make(map[string]string)
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		sources[fx] = string(b)
	}

	t.Run("sequential", func(t *testing.T) {
		_, ts := testServer(t, Config{})
		for _, fx := range fixtures {
			for _, spec := range diffSpecs {
				code, resp, e := postOptimize(t, ts.URL, &OptimizeRequest{
					Name: fx, Source: sources[fx], Spec: spec,
				})
				if code != 200 {
					t.Fatalf("%s spec=%q: status %d (%+v)", fx, spec, code, e)
				}
				if resp.Assembly != want[fx+"|"+spec] {
					t.Errorf("%s spec=%q: service output differs from cmd/mao", fx, spec)
				}
			}
		}
	})

	t.Run("concurrent-workers-8", func(t *testing.T) {
		_, ts := testServer(t, Config{Workers: 8, QueueDepth: 256})
		const replicas = 3 // each combination raced three times
		var wg sync.WaitGroup
		errs := make(chan string, len(fixtures)*len(diffSpecs)*replicas)
		for _, fx := range fixtures {
			for _, spec := range diffSpecs {
				for rep := 0; rep < replicas; rep++ {
					wg.Add(1)
					go func(fx, spec string, rep int) {
						defer wg.Done()
						resp, err := postOptimizeErr(ts.URL, &OptimizeRequest{
							Name: fx, Source: sources[fx], Spec: spec,
							// Odd replicas bypass the result cache so
							// concurrent pipelines actually run.
							Options: OptimizeOptions{NoCache: rep%2 == 1},
						})
						if err != nil {
							errs <- fmt.Sprintf("%s spec=%q rep=%d: %v", fx, spec, rep, err)
							return
						}
						if resp.Assembly != want[fx+"|"+spec] {
							errs <- fmt.Sprintf("%s spec=%q rep=%d: output differs from cmd/mao (cached=%v)",
								fx, spec, rep, resp.Cached)
						}
					}(fx, spec, rep)
				}
			}
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Error(e)
		}
	})
}
